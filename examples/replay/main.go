// Replay: feed your own flow-level trace through the simulator. This
// example exports a generated trace to CSV, reads it back through
// trace.ReadFlowsCSV — the entry point you would use for a converted real
// packet trace (e.g. a CRAWDAD download) — and simulates it.
//
//	go run ./examples/replay
package main

import (
	"bytes"
	"fmt"
	"log"

	"insomnia/internal/sim"
	"insomnia/internal/topology"
	"insomnia/internal/trace"
)

func main() {
	// Stand-in for your real trace: a generated one, exported to CSV.
	orig, err := trace.Generate(trace.Config{
		Clients: 60, APs: 10, Profile: trace.OfficeProfile, Seed: 5,
		FlowsOnly: true, // CSV carries flows; keepalives are optional extras
	})
	if err != nil {
		log.Fatal(err)
	}
	var csvFile bytes.Buffer
	if err := orig.WriteFlowsCSV(&csvFile); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exported %d flows (%d bytes of CSV)\n", len(orig.Flows), csvFile.Len())

	// Import: you provide the static layout the flow list doesn't carry.
	tr, err := trace.ReadFlowsCSV(&csvFile, trace.Config{
		Clients: 60, APs: 10,
	}, orig.ClientAP)
	if err != nil {
		log.Fatal(err)
	}

	graph, err := topology.OverlapGraph(10, 5, 5)
	if err != nil {
		log.Fatal(err)
	}
	topo, err := topology.FromOverlap(graph, tr.ClientAP)
	if err != nil {
		log.Fatal(err)
	}
	base, err := sim.Run(sim.Config{Trace: tr, Topo: topo, Scheme: sim.NoSleep, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(sim.Config{Trace: tr, Topo: topo, Scheme: sim.BH2KSwitch, Seed: 5, K: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replayed trace: BH2+k-switch saves %.1f%% vs no-sleep\n", res.SavingsVs(base)*100)
}
