// Switchsizing: use Eq (2) (Fig 5) to pick how big the HDF k-switches must
// be: for each switch size k, the probability that the l-th line card of a
// group can sleep, given per-line activity p — plus the expected number of
// sleeping cards and a comparison against plain SoI's (1-p)^m.
//
// The second half validates the analytic ordering in the simulator: a
// multi-seed k-sweep on an 8-card shelf fans out through the parallel
// experiment runner (one job per (k, seed), one shared trace/topology per
// seed) and reports online cards during the busy window.
//
//	go run ./examples/switchsizing
package main

import (
	"context"
	"fmt"
	"log"

	"insomnia/internal/analytic"
	"insomnia/internal/dsl"
	"insomnia/internal/runner"
	"insomnia/internal/sim"
	"insomnia/internal/stats"
	"insomnia/internal/topology"
	"insomnia/internal/trace"
)

func main() {
	const m = 24 // modems per line card
	for _, p := range []float64{0.5, 0.25} {
		fmt.Printf("modem online probability p = %.2f, %d modems/card\n", p, m)
		fmt.Printf("  plain SoI card-sleep probability (1-p)^m = %.2g\n",
			analytic.CardSleepNoSwitch(m, p))
		for _, k := range []int{2, 4, 8} {
			fmt.Printf("  %d-switch: card-sleep probabilities ", k)
			for l := 1; l <= k; l++ {
				v, err := analytic.CardSleepProbability(l, k, m, p)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("l=%d:%.3f ", l, v)
			}
			exp, err := analytic.ExpectedSleepingCards(k, m, p)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("=> %.2f of %d cards sleep on average\n", exp, k)
		}
		fmt.Println()
	}
	fmt.Println("conclusion (paper §4.2): even 4- and 8-switches put a good number of")
	fmt.Println("cards to sleep; plain SoI effectively never sleeps a card.")

	simulateKSweep()
}

// simulateKSweep cross-checks the Eq (2) ordering end-to-end: BH2 over an
// 8-card DSLAM with k in {2,4,8}, three seeds each, all runs in parallel.
func simulateKSweep() {
	seeds := []int64{5, 6, 7}
	ks := []int{2, 4, 8}
	shelf := dsl.DSLAM{Cards: 8, PortsPerCard: 6}

	// One scenario per seed, shared read-only by that seed's three k jobs.
	scenarios := make(map[int64]sim.Config, len(seeds))
	for _, seed := range seeds {
		tr, topo, err := scenario(seed)
		if err != nil {
			log.Fatal(err)
		}
		scenarios[seed] = sim.Config{Trace: tr, Topo: topo, Scheme: sim.BH2KSwitch, Seed: seed, DSLAM: shelf}
	}
	var jobs []runner.Job
	for _, k := range ks {
		for _, seed := range seeds {
			cfg := scenarios[seed]
			cfg.K = k
			jobs = append(jobs, runner.Job{Name: fmt.Sprintf("k%d/seed%d", k, seed), Config: cfg})
		}
	}
	outs := runner.Run(context.Background(), jobs)
	if err := runner.FirstErr(outs); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nsimulated check (BH2, 8-card shelf, busy 2 h, 3 seeds):")
	for ki, k := range ks {
		var w stats.Welford
		for si := range seeds {
			res := outs[ki*len(seeds)+si].Result
			w.Add(sim.MeanOver(res.OnlineCards, 0, 2))
		}
		fmt.Printf("  k=%d: %.2f ±%.2f of 8 cards online\n", k, w.Mean(), w.Std())
	}
	fmt.Println("bigger switches concentrate active lines on fewer cards, as Eq (2) predicts.")
}

// scenario builds a busy two-hour 48-client workload; each seed draws its
// own trace and topology, shared read-only by that seed's jobs.
func scenario(seed int64) (*trace.Trace, *topology.Topology, error) {
	var busy trace.Profile
	for i := range busy {
		busy[i] = 0.55
	}
	tr, err := trace.Generate(trace.Config{
		Clients: 48, APs: 8, Profile: busy, Seed: seed, Duration: 2 * 3600,
	})
	if err != nil {
		return nil, nil, err
	}
	g, err := topology.OverlapGraph(8, 5.0, seed)
	if err != nil {
		return nil, nil, err
	}
	topo, err := topology.FromOverlap(g, tr.ClientAP)
	if err != nil {
		return nil, nil, err
	}
	return tr, topo, nil
}
