// Switchsizing: use Eq (2) (Fig 5) to pick how big the HDF k-switches must
// be: for each switch size k, the probability that the l-th line card of a
// group can sleep, given per-line activity p — plus the expected number of
// sleeping cards and a comparison against plain SoI's (1-p)^m.
//
//	go run ./examples/switchsizing
package main

import (
	"fmt"
	"log"

	"insomnia/internal/analytic"
)

func main() {
	const m = 24 // modems per line card
	for _, p := range []float64{0.5, 0.25} {
		fmt.Printf("modem online probability p = %.2f, %d modems/card\n", p, m)
		fmt.Printf("  plain SoI card-sleep probability (1-p)^m = %.2g\n",
			analytic.CardSleepNoSwitch(m, p))
		for _, k := range []int{2, 4, 8} {
			fmt.Printf("  %d-switch: card-sleep probabilities ", k)
			for l := 1; l <= k; l++ {
				v, err := analytic.CardSleepProbability(l, k, m, p)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("l=%d:%.3f ", l, v)
			}
			exp, err := analytic.ExpectedSleepingCards(k, m, p)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("=> %.2f of %d cards sleep on average\n", exp, k)
		}
		fmt.Println()
	}
	fmt.Println("conclusion (paper §4.2): even 4- and 8-switches put a good number of")
	fmt.Println("cards to sleep; plain SoI effectively never sleeps a card.")
}
