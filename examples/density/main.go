// Density: the Fig 10 experiment — how the number of gateways BH2 keeps
// online during peak hours shrinks as wireless density (the mean number of
// gateways a client can reach) grows from 1 to 10.
//
// The sweep itself is figures.Fig10Sweep: every (density, seed) pair is
// one job for the parallel experiment runner over a single shared trace,
// and the series carries the cross-seed mean ± std this table renders.
//
//	go run ./examples/density
package main

import (
	"fmt"
	"log"

	"insomnia/internal/figures"
)

func main() {
	seeds := []int64{7, 8, 9}
	s, err := figures.Fig10Sweep(seeds, nil, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mean available gateways -> online gateways during peak (11-19h), %d seeds\n", len(seeds))
	for i, density := range s.X {
		fmt.Printf("  %4.1f -> %5.1f ±%4.1f  %s\n", density, s.Y[i], s.Err[i], bar(s.Y[i], 40))
	}
	fmt.Println("\npaper: density 1 -> ~29 online; density 2 -> 19 (35% fewer); falling further with density")
}

func bar(v float64, max int) string {
	out := make([]byte, 0, max)
	for i := 0; float64(i) < v && i < max; i++ {
		out = append(out, '#')
	}
	return string(out)
}
