// Density: the Fig 10 experiment — how the number of gateways BH2 keeps
// online during peak hours shrinks as wireless density (the mean number of
// gateways a client can reach) grows from 1 to 10.
//
//	go run ./examples/density
package main

import (
	"fmt"
	"log"

	"insomnia/internal/sim"
	"insomnia/internal/topology"
	"insomnia/internal/trace"
)

func main() {
	tr, err := trace.Generate(trace.DefaultSimConfig(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("mean available gateways -> online gateways during peak (11-19h)")
	for _, density := range []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10} {
		// Binomial connectivity: each client reaches its home plus every
		// other gateway independently, tuned to the target mean.
		topo, err := topology.Binomial(tr.Cfg.APs, tr.ClientAP, density, 7)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run(sim.Config{Trace: tr, Topo: topo, Scheme: sim.BH2KSwitch, Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		online := sim.MeanOver(res.OnlineGWs, 11, 19)
		fmt.Printf("  %4.1f -> %5.1f  %s\n", density, online, bar(online, 40))
	}
	fmt.Println("\npaper: density 1 -> ~29 online; density 2 -> 19 (35% fewer); falling further with density")
}

func bar(v float64, max int) string {
	out := make([]byte, 0, max)
	for i := 0; float64(i) < v && i < max; i++ {
		out = append(out, '#')
	}
	return string(out)
}
