// Crosstalk: the §6 DSLAM experiment (Fig 14) — how much faster the
// remaining VDSL2 lines sync as more lines in the same 25-pair bundle are
// powered off, for both service profiles and both loop-length setups.
//
//	go run ./examples/crosstalk
package main

import (
	"fmt"
	"log"

	"insomnia/internal/crosstalk"
)

func main() {
	configs := []struct {
		name  string
		fixed float64
		prof  crosstalk.ServiceProfile
	}{
		{"62 Mbps plan, loops 50-600 m", 0, crosstalk.Profile62},
		{"62 Mbps plan, fixed 600 m ", 600, crosstalk.Profile62},
		{"30 Mbps plan, loops 50-600 m", 0, crosstalk.Profile30},
		{"30 Mbps plan, fixed 600 m ", 600, crosstalk.Profile30},
	}
	for _, c := range configs {
		cfg := crosstalk.ExperimentConfig{FixedLength: c.fixed, Profile: c.prof, Seed: 1, LengthSeed: 1}
		base, err := crosstalk.BaselineMeanBps(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := crosstalk.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s  (baseline %.1f Mbps, all 24 lines active)\n", c.name, base/1e6)
		fmt.Println("  inactive lines -> average speedup of the survivors")
		for _, r := range res {
			fmt.Printf("  %4d -> %5.1f%% ± %.1f\n", r.Inactive, r.MeanPct, r.StdPct)
		}
		fmt.Println()
	}
	fmt.Println("paper (62 Mbps, 600 m): ~1.1-1.2%/line, 13.6% at half off, ~25% at 75% off")
}
