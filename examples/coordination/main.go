// Coordination: how much of the energy-saving margin does each level of
// coordination recover? Compares plain SoI (none), distributed BH²
// (neighbour gossip via passive observation), the §3.3-style centralized
// controller (global knowledge, physical constraints), and the idealized
// Optimal (global knowledge plus instant, disruption-free migration).
//
//	go run ./examples/coordination
package main

import (
	"fmt"
	"log"

	"insomnia/internal/sim"
	"insomnia/internal/topology"
	"insomnia/internal/trace"
)

func main() {
	tr, err := trace.Generate(trace.DefaultSimConfig(11))
	if err != nil {
		log.Fatal(err)
	}
	graph, err := topology.OverlapGraph(tr.Cfg.APs, topology.DefaultMeanInRange, 11)
	if err != nil {
		log.Fatal(err)
	}
	topo, err := topology.FromOverlap(graph, tr.ClientAP)
	if err != nil {
		log.Fatal(err)
	}

	base, err := sim.Run(sim.Config{Trace: tr, Topo: topo, Scheme: sim.NoSleep, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("scheme                    savings   peak online gateways (11-19h)")
	for _, sch := range []sim.Scheme{sim.SoI, sim.BH2KSwitch, sim.Centralized, sim.Optimal} {
		res, err := sim.Run(sim.Config{Trace: tr, Topo: topo, Scheme: sch, Seed: 11})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-25s %5.1f%%    %.1f of %d\n",
			sch, res.SavingsVs(base)*100, sim.MeanOver(res.OnlineGWs, 11, 19), tr.Cfg.APs)
	}
	fmt.Println("\nreading: the distributed heuristic needs no controller and no gateway")
	fmt.Println("changes; the centralized variant shows what coordination alone adds;")
	fmt.Println("Optimal adds physically-impossible instant migration on top.")
}
