// Quickstart: generate a day of access-network traffic, build a wireless
// overlap topology, run Broadband Hitch-Hiking with k-switches against the
// no-sleep baseline, and print the energy savings.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"insomnia/internal/sim"
	"insomnia/internal/topology"
	"insomnia/internal/trace"
)

func main() {
	// 1. A UCSD-like trace: 272 clients on 40 access points, 6 Mbps lines.
	tr, err := trace.Generate(trace.DefaultSimConfig(42))
	if err != nil {
		log.Fatal(err)
	}

	// 2. Who can hear whom: a random overlap topology with on average 5.6
	// networks in range of every client.
	graph, err := topology.OverlapGraph(tr.Cfg.APs, topology.DefaultMeanInRange, 42)
	if err != nil {
		log.Fatal(err)
	}
	topo, err := topology.FromOverlap(graph, tr.ClientAP)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Simulate the no-sleep baseline and BH2 + k-switch.
	base, err := sim.Run(sim.Config{Trace: tr, Topo: topo, Scheme: sim.NoSleep, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	bh2run, err := sim.Run(sim.Config{Trace: tr, Topo: topo, Scheme: sim.BH2KSwitch, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Report.
	fmt.Printf("no-sleep energy:   %.1f kWh/day\n", base.Energy.Total()/3.6e6)
	fmt.Printf("BH2+k-switch:      %.1f kWh/day\n", bh2run.Energy.Total()/3.6e6)
	fmt.Printf("savings:           %.1f%%\n", bh2run.SavingsVs(base)*100)
	fmt.Printf("gateways at 15-17h: %.1f of %d online\n",
		sim.MeanOver(bh2run.OnlineGWs, 15, 17), tr.Cfg.APs)
	fmt.Printf("hitch-hiking moves: %d, gateway wakeups: %d\n", bh2run.Moves, bh2run.Wakeups)
}
