// Quickstart: declare a day of access-network evaluation as a scenario
// spec — the same YAML a `cmd/campaign` spec file holds — run Broadband
// Hitch-Hiking with k-switches against the no-sleep baseline through the
// campaign engine, and print the energy savings.
//
//	go run ./examples/quickstart
//
// Everything here (trace profile, topology, schemes, seeds) is plain
// configuration: change the spec string, or move it to a file and run it
// with `go run ./cmd/campaign run myspec.yaml`.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"insomnia/internal/campaign"
	"insomnia/internal/dsl"
)

// spec is the paper's §5.1 evaluation scenario: a UCSD-like office day,
// 272 clients on 40 gateways, random overlap topology with on average
// 5.6 networks in range of every client.
const spec = `
name: quickstart
schemes: [no-sleep, BH2+k-switch]
seeds: [42]
trace:
  profile: office
  clients: 272
  gateways: 40
topology:
  kind: overlap
  mean_in_range: 5.6
outputs: [summary]
`

func main() {
	log.SetFlags(0)

	parsed, err := dsl.ParseSpec([]byte(spec))
	if err != nil {
		log.Fatal(err)
	}
	plan, err := campaign.Compile(parsed)
	if err != nil {
		log.Fatal(err)
	}
	out, err := os.MkdirTemp("", "quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(out)

	job, err := plan.Submit(context.Background(), campaign.Options{OutDir: out})
	if err != nil {
		log.Fatal(err)
	}
	res, err := job.Wait()
	if err != nil {
		log.Fatal(err)
	}

	base, bh2 := res.Rows[0], res.Rows[1]
	fmt.Printf("no-sleep energy:   %.1f kWh/day\n", base.EnergyKWh)
	fmt.Printf("BH2+k-switch:      %.1f kWh/day\n", bh2.EnergyKWh)
	fmt.Printf("savings:           %.1f%%\n", (1-bh2.EnergyKWh/base.EnergyKWh)*100)
	fmt.Printf("mean online gateways: %.1f of %d (no-sleep: %.0f)\n",
		bh2.MeanOnlineGWs, parsed.Trace.Gateways, base.MeanOnlineGWs)
	fmt.Printf("hitch-hiking moves: %d, gateway wakeups: %d\n", bh2.Moves, bh2.Wakeups)
	fmt.Printf("(summary.csv was written to a temp dir; see cmd/campaign for persistent runs)\n")
}
