// Command mdcheck validates the repo's markdown cross-references: every
// relative link must point at an existing file and every #fragment at a
// real heading (GitHub slug rules). CI runs it over README.md and docs/
// as a lint step; it needs no dependencies and no network.
//
// Usage: mdcheck FILE.md [FILE.md ...]
//
// Exit status 0 when every link resolves, 1 with one "file:line: problem"
// diagnostic per broken link otherwise.
package main

import (
	"flag"
	"fmt"
	"os"

	"insomnia/internal/cli"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mdcheck FILE.md [FILE.md ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	problems, err := cli.CheckMarkdownLinks(flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "mdcheck: %v\n", err)
		os.Exit(2)
	}
	for _, p := range problems {
		fmt.Println(p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "mdcheck: %d broken link(s)\n", len(problems))
		os.Exit(1)
	}
}
