package main

import (
	"os/exec"
	"strings"
	"testing"
)

// TestRejectsStrayArguments pins the CLI contract: `figures 10` (instead
// of `figures -fig 10`) must exit non-zero with a usage message, not
// silently regenerate everything with defaults.
func TestRejectsStrayArguments(t *testing.T) {
	out, err := exec.Command("go", "run", ".", "10").CombinedOutput()
	if err == nil {
		t.Fatalf("figures with a stray argument must exit non-zero; output:\n%s", out)
	}
	s := string(out)
	// `go run` itself exits 1 but reports the child's status on stderr.
	if !strings.Contains(s, "exit status 2") {
		t.Errorf("want exit status 2, got:\n%s", s)
	}
	if !strings.Contains(s, "unexpected argument") || !strings.Contains(s, "Usage") {
		t.Errorf("expected usage message, got:\n%s", s)
	}
}
