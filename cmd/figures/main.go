// Command figures regenerates every table and figure of the paper's
// evaluation section into an output directory (CSV per figure plus a
// summary on stdout).
//
// Usage:
//
//	figures [-out out] [-seed 1] [-runs 1] [-fig all|2|3|4|5|6|7|8|9a|9b|10|12|14|15|table|headline]
//
// The -runs flag averages the day simulations over several seeds (the
// paper averaged 10 runs; 1-3 give the same shapes much faster).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"

	"insomnia/internal/cli"
	"insomnia/internal/figures"
	"insomnia/internal/perf"
	"insomnia/internal/sim"
	"insomnia/internal/testbed"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")
	out := flag.String("out", "out", "output directory")
	seed := flag.Int64("seed", 1, "base RNG seed")
	runs := flag.Int("runs", 1, "day-simulation repetitions to average (distinct seeds)")
	fig := flag.String("fig", "all", "which figure to regenerate")
	liveScale := flag.Float64("livescale", 0.005, "testbed wall-seconds per virtual second (fig 12)")
	workers := flag.Int("workers", 0, "parallel simulation workers (0 = GOMAXPROCS, 1 = serial)")
	shards := flag.Int("shards", 0, "engine shards per simulation (0 = serial engine; results identical at every value)")
	cpuprofile := flag.String("cpuprofile", "", "write CPU profile to file")
	memprofile := flag.String("memprofile", "", "write heap profile to file at exit")
	flag.Parse()
	if err := cli.RejectArgs("figures", flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, err)
		flag.Usage()
		os.Exit(2)
	}

	// check routes every fatal path through this idempotent cleanup so the
	// CPU profile is finalized even on errors (log.Fatal skips defers).
	cleanup, err := perf.Profile(*cpuprofile, *memprofile)
	if err != nil {
		log.Fatal(err)
	}
	defer cleanup()
	cleanupProfiles = cleanup

	check(os.MkdirAll(*out, 0o755))
	want := func(name string) bool { return *fig == "all" || *fig == name }

	var day *figures.DayRuns
	needDay := want("6") || want("7") || want("8") || want("9a") || want("9b") || want("table") || want("headline")
	if needDay {
		log.Printf("running day simulations (%d run(s), 8 schemes; the Optimal ILP dominates runtime)...", *runs)
		var err error
		day, err = averagedDayRuns(*seed, *runs, *workers, *shards)
		check(err)
	}

	if want("2") {
		series, err := figures.Fig2(2000, *seed)
		check(err)
		writeSeries(*out, "fig2_residential_utilization.csv", "hour", series)
	}
	if want("3") {
		s, err := figures.Fig3(*seed)
		check(err)
		writeSeries(*out, "fig3_ap_utilization.csv", "hour", []figures.Series{s})
		fmt.Print(figures.RenderASCII(s, 40))
	}
	if want("4") {
		labels, fracs, err := figures.Fig4(*seed)
		check(err)
		f := create(*out, "fig4_gap_histogram.csv")
		check(figures.WriteHistogramCSV(f, labels, fracs))
		f.Close()
	}
	if want("5") {
		for _, p := range []float64{0.5, 0.25} {
			series, err := figures.Fig5(24, p)
			check(err)
			writeSeries(*out, fmt.Sprintf("fig5_card_sleep_p%02.0f.csv", p*100), "card", series)
		}
	}
	if want("6") {
		writeSeries(*out, "fig6_energy_savings.csv", "hour", figures.Fig6(day))
	}
	if want("7") {
		writeSeries(*out, "fig7_online_gateways.csv", "hour", figures.Fig7(day))
	}
	if want("8") {
		writeSeries(*out, "fig8_isp_share.csv", "hour", figures.Fig8(day))
	}
	if want("9a") {
		writeSeries(*out, "fig9a_fct_cdf.csv", "fct-increase-pct", figures.Fig9a(day))
		writeSeries(*out, "fig9a_fct_cdf_contention.csv", "fct-increase-pct", figures.Fig9aContention(day))
	}
	if want("9b") {
		writeSeries(*out, "fig9b_ontime_cdf.csv", "ontime-variation-pct", figures.Fig9b(day))
	}
	if want("10") {
		// -runs > 1 turns Fig 10 into a multi-seed sweep with error bars.
		seeds := make([]int64, *runs)
		for i := range seeds {
			seeds[i] = *seed + int64(i)
		}
		s, err := figures.Fig10Sweep(seeds, nil, *workers)
		check(err)
		writeSeries(*out, "fig10_density_sweep.csv", "mean-available-gateways", []figures.Series{s})
		fmt.Print(figures.RenderASCII(s, 40))
	}
	if want("12") {
		log.Printf("running live testbed (twice: SoI then BH2)...")
		var series []figures.Series
		for _, mode := range []bool{false, true} {
			res, err := testbed.Run(testbed.Config{UseBH2: mode, Seed: *seed, TimeScale: *liveScale})
			check(err)
			name := "SoI"
			if mode {
				name = "BH2"
			}
			s := figures.Series{Name: name}
			for i := 0; i < len(res.OnlineSeries); i += 60 {
				s.X = append(s.X, float64(i)/60)
				var sum int
				n := 0
				for j := i; j < i+60 && j < len(res.OnlineSeries); j++ {
					sum += res.OnlineSeries[j]
					n++
				}
				s.Y = append(s.Y, float64(sum)/float64(n))
			}
			log.Printf("  %s: mean online %.2f of 9 (paper: SoI 5.28, BH2 3.54)", name, res.MeanOnline)
			series = append(series, s)
		}
		writeSeries(*out, "fig12_testbed_online_aps.csv", "minute", series)
	}
	if want("14") {
		series, err := figures.Fig14(*seed)
		check(err)
		writeSeries(*out, "fig14_crosstalk_speedup.csv", "inactive-lines", series)
	}
	if want("15") {
		series, err := figures.Fig15(*seed)
		check(err)
		writeSeries(*out, "fig15_attenuations.csv", "card", series)
	}
	if want("table") {
		t := figures.LineCardTable(day)
		f := create(*out, "table_online_linecards.csv")
		fmt.Fprintln(f, "scheme,online-cards-11-19h")
		for _, k := range sortedKeys(t) {
			fmt.Fprintf(f, "%s,%.2f\n", k, t[k])
		}
		f.Close()
		fmt.Println("\nOnline line cards during peak hours (paper: optimal 1, BH2+full 2, BH2+k 2.88, SoI+full 3, SoI+k 3.74, SoI 3.99):")
		for _, k := range sortedKeys(t) {
			fmt.Printf("  %-24s %.2f\n", k, t[k])
		}
	}
	if want("headline") {
		h := figures.Summarize(day)
		fmt.Println("\nHeadline (§5.4):")
		for _, k := range sortedKeys(h.Savings) {
			fmt.Printf("  %-24s %5.1f%% day-average savings\n", k, h.Savings[k]*100)
		}
		fmt.Printf("  optimal margin          %5.1f%% (paper: 80%%)\n", h.OptimalMargin*100)
		fmt.Printf("  BH2 user/ISP split      %.0f%% / %.0f%% (paper: 2/3 vs 1/3)\n", h.UserShare*100, h.ISPShare*100)
		fmt.Printf("  world-wide extrapolation %.1f TWh/yr (paper: ~33)\n", h.WorldTWh)
	}
	log.Printf("wrote outputs to %s/", *out)
}

// averagedDayRuns merges per-seed runs by averaging the derived series is
// overkill for shape reproduction; instead we run the requested seeds and
// keep the first (figures are per-run like the paper's averaged plots, and
// additional runs are summarized on stdout for variance inspection). Each
// seed's 8 schemes fan out over the worker pool.
func averagedDayRuns(seed int64, runs, workers, shards int) (*figures.DayRuns, error) {
	var first *figures.DayRuns
	for i := 0; i < runs; i++ {
		sc, err := figures.NewScenario(seed + int64(i))
		if err != nil {
			return nil, err
		}
		sc.Shards = shards
		day, err := figures.RunDayWorkers(sc, nil, workers)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			first = day
		} else {
			h := figures.Summarize(day)
			log.Printf("  seed %d: BH2+k savings %.1f%%, optimal %.1f%%",
				seed+int64(i), h.Savings[sim.BH2KSwitch.String()]*100, h.OptimalMargin*100)
		}
	}
	return first, nil
}

func writeSeries(dir, name, xLabel string, series []figures.Series) {
	f := create(dir, name)
	check(figures.WriteSeriesCSV(f, xLabel, series))
	f.Close()
	log.Printf("wrote %s", filepath.Join(dir, name))
}

func create(dir, name string) *os.File {
	f, err := os.Create(filepath.Join(dir, name))
	check(err)
	return f
}

// cleanupProfiles finalizes -cpuprofile/-memprofile output; main replaces
// it once profiling is configured (it is idempotent and safe to call more
// than once).
var cleanupProfiles = func() {}

func check(err error) {
	if err != nil {
		cleanupProfiles()
		log.Fatal(err)
	}
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
