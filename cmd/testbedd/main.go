// Command testbedd runs the live localhost testbed of §5.3: a status server
// emulating gateway sleep states and one BH² terminal per line, all talking
// real HTTP. It prints the Fig 12 series (online APs per minute).
//
// Usage:
//
//	testbedd [-gateways 9] [-minutes 30] [-scale 0.01] [-soi] [-seed 1]
//
// -scale is wall-seconds per virtual second: 0.01 replays the 30-minute
// experiment in 18 s; 1.0 runs it in real time.
package main

import (
	"flag"
	"fmt"
	"log"

	"insomnia/internal/testbed"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("testbedd: ")
	gateways := flag.Int("gateways", 9, "number of gateways/terminals")
	minutes := flag.Int("minutes", 30, "virtual experiment length")
	scale := flag.Float64("scale", 0.01, "wall seconds per virtual second")
	soi := flag.Bool("soi", false, "run plain SoI instead of BH2")
	seed := flag.Int64("seed", 1, "RNG seed")
	flag.Parse()

	mode := "BH2"
	if *soi {
		mode = "SoI"
	}
	log.Printf("running %s over %d gateways for %d virtual minutes (scale %gx)...",
		mode, *gateways, *minutes, *scale)

	res, err := testbed.Run(testbed.Config{
		Gateways:  *gateways,
		Duration:  float64(*minutes) * 60,
		TimeScale: *scale,
		UseBH2:    !*soi,
		Seed:      *seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("minute,online_aps")
	for i := 0; i < len(res.OnlineSeries); i += 60 {
		sum, n := 0, 0
		for j := i; j < i+60 && j < len(res.OnlineSeries); j++ {
			sum += res.OnlineSeries[j]
			n++
		}
		fmt.Printf("%d,%.2f\n", i/60, float64(sum)/float64(n))
	}
	fmt.Printf("\nmean online APs (after 2-minute warm-up): %.2f of %d\n", res.MeanOnline, *gateways)
	fmt.Printf("mean sleeping: %.2f (paper Fig 12: BH2 5.46, SoI 3.72 of 9)\n", res.MeanSleeping)
	fmt.Printf("gateway wakeups: %d, BH2 moves: %d, transport errors: %d\n",
		res.Wakeups, res.Moves, res.TrafficErrors)
}
