// Command insomnia runs one scheme over the evaluation scenario and prints
// its energy and device metrics — the quick way to poke at the simulator.
//
// Usage:
//
//	insomnia [-scheme bh2k] [-seed 1] [-clients 272] [-gateways 40]
//	         [-density 5.6] [-low 0.1] [-high 0.5] [-backup 1] [-csv]
package main

import (
	"flag"
	"fmt"
	"log"

	"insomnia/internal/bh2"
	"insomnia/internal/perf"
	"insomnia/internal/sim"
	"insomnia/internal/topology"
	"insomnia/internal/trace"
)

var schemes = map[string]sim.Scheme{
	"nosleep": sim.NoSleep,
	"soi":     sim.SoI,
	"soik":    sim.SoIKSwitch,
	"soifull": sim.SoIFullSwitch,
	"bh2k":    sim.BH2KSwitch,
	"bh2full": sim.BH2FullSwitch,
	"bh2nb":   sim.BH2NoBackup,
	"optimal": sim.Optimal,
	"central": sim.Centralized,
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("insomnia: ")
	schemeName := flag.String("scheme", "bh2k", "scheme: nosleep|soi|soik|soifull|bh2k|bh2full|bh2nb|optimal|central")
	seed := flag.Int64("seed", 1, "RNG seed")
	clients := flag.Int("clients", 272, "number of terminal devices")
	gateways := flag.Int("gateways", 40, "number of gateways")
	density := flag.Float64("density", topology.DefaultMeanInRange, "mean gateways in range per client")
	low := flag.Float64("low", 0.10, "BH2 low threshold")
	high := flag.Float64("high", 0.50, "BH2 high threshold")
	backup := flag.Int("backup", 1, "BH2 backup gateways")
	csvOut := flag.Bool("csv", false, "emit hourly CSV instead of a summary")
	cpuprofile := flag.String("cpuprofile", "", "write CPU profile to file")
	memprofile := flag.String("memprofile", "", "write heap profile to file at exit")
	flag.Parse()

	scheme, ok := schemes[*schemeName]
	if !ok {
		log.Fatalf("unknown scheme %q", *schemeName)
	}

	// cleanup is idempotent: deferred for the normal path, called
	// explicitly before Fatal (which skips defers) so profiles are always
	// finalized.
	cleanup, err := perf.Profile(*cpuprofile, *memprofile)
	if err != nil {
		log.Fatal(err)
	}
	defer cleanup()
	if err := run(options{
		scheme: scheme, seed: *seed,
		clients: *clients, gateways: *gateways, density: *density,
		low: *low, high: *high, backup: *backup, csv: *csvOut,
	}); err != nil {
		cleanup()
		log.Fatal(err)
	}
}

// options mirrors the flag set so run's call site names every value —
// adjacent same-typed parameters (density/low/high) transpose too easily
// positionally.
type options struct {
	scheme            sim.Scheme
	seed              int64
	clients, gateways int
	density           float64
	low, high         float64
	backup            int
	csv               bool
}

func run(o options) error {
	cfg := trace.DefaultSimConfig(o.seed)
	cfg.Clients, cfg.APs = o.clients, o.gateways
	tr, err := trace.Generate(cfg)
	if err != nil {
		return err
	}
	g, err := topology.OverlapGraph(o.gateways, o.density, o.seed)
	if err != nil {
		return err
	}
	tp, err := topology.FromOverlap(g, tr.ClientAP)
	if err != nil {
		return err
	}

	params := bh2.DefaultParams()
	params.Low, params.High, params.Backup = o.low, o.high, o.backup

	base, err := sim.Run(sim.Config{Trace: tr, Topo: tp, Scheme: sim.NoSleep, Seed: o.seed})
	if err != nil {
		return err
	}
	res, err := sim.Run(sim.Config{Trace: tr, Topo: tp, Scheme: o.scheme, Seed: o.seed, BH2: params})
	if err != nil {
		return err
	}

	if o.csv {
		sav := sim.SavingsSeries(res, base)
		fmt.Println("hour,savings_pct,online_gateways,online_cards")
		bins := res.OnlineGWs.Bins()
		per := bins / 24
		for h := 0; h < 24; h++ {
			var s, gws, cards float64
			for i := h * per; i < (h+1)*per; i++ {
				s += sav[i] * 100
				gws += res.OnlineGWs.MeanAt(i)
				cards += res.OnlineCards.MeanAt(i)
			}
			n := float64(per)
			fmt.Printf("%d,%.2f,%.2f,%.2f\n", h, s/n, gws/n, cards/n)
		}
		return nil
	}

	fmt.Printf("scheme:            %v\n", o.scheme)
	fmt.Printf("trace:             %d flows, %d keepalives over %d clients / %d gateways\n",
		len(tr.Flows), len(tr.Keepalives), o.clients, o.gateways)
	fmt.Printf("energy:            %.1f kWh (no-sleep %.1f kWh)\n",
		res.Energy.Total()/3.6e6, base.Energy.Total()/3.6e6)
	fmt.Printf("savings:           %.1f%%\n", res.SavingsVs(base)*100)
	fmt.Printf("ISP share:         %.0f%% of savings\n", res.Energy.ISPShareOfSavings(base.Energy)*100)
	fmt.Printf("online gateways:   %.1f peak (15-17h), %.1f night (3-5h)\n",
		sim.MeanOver(res.OnlineGWs, 15, 17), sim.MeanOver(res.OnlineGWs, 3, 5))
	fmt.Printf("online line cards: %.2f peak hours (11-19h)\n", sim.MeanOver(res.OnlineCards, 11, 19))
	fmt.Printf("gateway wakeups:   %d\n", res.Wakeups)
	if res.Moves > 0 {
		fmt.Printf("BH2 moves:         %d\n", res.Moves)
	}
	if res.Resolves > 0 {
		fmt.Printf("ILP resolves:      %d (%d hit the node budget)\n", res.Resolves, res.OptGap)
	}
	return nil
}
