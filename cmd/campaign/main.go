// Command campaign runs declarative scenario campaigns: a YAML/JSON spec
// (see internal/dsl and README "Scenario campaigns") is compiled into the
// cross-product of scenario variants, seeds and schemes, simulated over a
// worker pool with checkpoint/resume, and reduced to deterministic CSV and
// JSON artifacts.
//
// Usage:
//
//	campaign run spec.yaml [-workers N] [-shards N] [-collapse auto|off] [-out dir] [-resume] [-q]
//	campaign check spec.yaml
//
// `run` executes the campaign. Progress is checkpointed to
// <out>/manifest.jsonl after every completed cell; re-running with
// -resume skips finished cells and still writes artifacts byte-identical
// to an uninterrupted run. `check` validates the spec and prints the cell
// plan without simulating anything.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"insomnia/internal/campaign"
	"insomnia/internal/cli"
	"insomnia/internal/dsl"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  campaign run spec.yaml [-workers N] [-shards N] [-collapse auto|off] [-out dir] [-resume] [-q]
  campaign check spec.yaml

commands:
  run    execute the campaign and write artifacts
  check  validate the spec and print the cell plan
`)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("campaign: ")
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch cmd := os.Args[1]; cmd {
	case "run":
		cmdRun(os.Args[2:])
	case "check":
		cmdCheck(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "campaign: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
}

// splitSpecArg supports the documented `campaign run spec.yaml -flags`
// order: the spec path may come before the flags (Go's flag package stops
// at the first positional otherwise).
func splitSpecArg(args []string) (spec string, rest []string) {
	if len(args) > 0 && len(args[0]) > 0 && args[0][0] != '-' {
		return args[0], args[1:]
	}
	return "", args
}

func parseCommand(name string, fs *flag.FlagSet, args []string) string {
	fs.Usage = func() {
		usage()
		fmt.Fprintf(os.Stderr, "\nflags of %s:\n", name)
		fs.PrintDefaults()
	}
	spec, rest := splitSpecArg(args)
	fs.Parse(rest) // ExitOnError: exits 2 on unknown flags
	if spec == "" && fs.NArg() > 0 {
		spec = fs.Arg(0)
		rest = fs.Args()[1:]
		fs.Parse(rest)
	}
	if err := cli.RejectArgs("campaign "+name, fs.Args()); err != nil {
		fmt.Fprintln(os.Stderr, err)
		fs.Usage()
		os.Exit(2)
	}
	if spec == "" {
		fmt.Fprintf(os.Stderr, "campaign %s: missing spec file\n", name)
		fs.Usage()
		os.Exit(2)
	}
	return spec
}

func loadPlan(path string) *campaign.Plan {
	buf, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	spec, err := dsl.ParseSpec(buf)
	if err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	plan, err := campaign.Compile(spec)
	if err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	return plan
}

func cmdRun(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	workers := fs.Int("workers", 0, "parallel simulation workers (0 = GOMAXPROCS)")
	shards := fs.Int("shards", 0, "engine shards per simulation (0 = spec's shards key, else auto; results identical at every value)")
	out := fs.String("out", "campaign-out", "output directory (manifest + artifacts)")
	resume := fs.Bool("resume", false, "continue an interrupted campaign in -out")
	collapse := fs.String("collapse", "", `symmetry collapse: "auto" or "off" (default: the spec's collapse key; artifacts identical either way)`)
	quiet := fs.Bool("q", false, "suppress per-cell progress")
	specPath := parseCommand("run", fs, args)

	switch *collapse {
	case "", "auto", "off":
	default:
		log.Fatalf("unknown -collapse mode %q (known: auto, off)", *collapse)
	}
	plan := loadPlan(specPath)
	// Ctrl-C cancels the job cleanly: in-flight cells abort at their next
	// epoch barrier and the manifest keeps everything completed, so the
	// same command with -resume continues where this one stopped.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	job, err := plan.Submit(ctx, campaign.Options{
		Workers: *workers, Shards: *shards, OutDir: *out, Resume: *resume,
		Collapse: *collapse,
	})
	if err != nil {
		log.Fatal(err)
	}
	for ev := range job.Rows() {
		if *quiet {
			continue
		}
		switch {
		case ev.Err != "":
			log.Printf("  [%d/%d] %s FAILED: %s", ev.Done, ev.Total, ev.Key, ev.Err)
		case ev.Cached:
			log.Printf("  [%d/%d] %s (cached)", ev.Done, ev.Total, ev.Key)
		case ev.Retry:
			log.Printf("  [%d/%d] %s (retry)", ev.Done, ev.Total, ev.Key)
		default:
			log.Printf("  [%d/%d] %s", ev.Done, ev.Total, ev.Key)
		}
	}
	res, err := job.Wait()
	if err != nil && !errors.Is(err, campaign.ErrCellsFailed) {
		log.Fatal(err)
	}
	if !*quiet {
		for _, n := range res.Collapsed {
			log.Printf("scenario %s seed %d: collapsed %d gateways -> %d classes",
				n.Scenario, n.Seed, n.FullGateways, n.Classes)
		}
		for _, a := range res.Artifacts {
			log.Printf("wrote %s", a)
		}
	}
	log.Printf("%s: %d cells (%d simulated, %d resumed), %d artifact(s) in %s",
		plan.Spec.Name, len(res.Rows), res.Ran, res.Skipped, len(res.Artifacts), *out)
	if len(res.Failed) > 0 {
		// Failed cells (each already retried once) are recorded in the
		// manifest; `campaign run -resume` re-executes exactly these.
		log.Printf("%d cell(s) failed:", len(res.Failed))
		for _, key := range res.Failed {
			log.Printf("  FAILED %s", key)
		}
		os.Exit(1)
	}
}

func cmdCheck(args []string) {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	specPath := parseCommand("check", fs, args)
	plan := loadPlan(specPath)
	fmt.Printf("campaign %q: %d cell(s)\n", plan.Spec.Name, len(plan.Cells))
	for _, c := range plan.Cells {
		fmt.Printf("  %4d  %s\n", c.Index, c.Key())
	}
}
