package main

import (
	"os/exec"
	"strings"
	"testing"
)

// runCampaign execs the CLI via `go run`, which exits 1 on any child
// failure but reports the child's status on stderr; failed reports the
// "exit status 2" marker so tests can pin the usage-error exit code.
func runCampaign(t *testing.T, args ...string) (out string, failed bool) {
	t.Helper()
	buf, err := exec.Command("go", append([]string{"run", "."}, args...)...).CombinedOutput()
	out = string(buf)
	if err != nil && !strings.Contains(out, "exit status") {
		t.Fatalf("running campaign: %v\n%s", err, out)
	}
	return out, strings.Contains(out, "exit status 2")
}

func TestUnknownSubcommand(t *testing.T) {
	out, failed := runCampaign(t, "rnu", "spec.yaml")
	if !failed || !strings.Contains(out, "unknown command") || !strings.Contains(out, "usage") {
		t.Errorf("unknown subcommand: failed=%v, output:\n%s", failed, out)
	}
}

func TestMissingSpec(t *testing.T) {
	out, failed := runCampaign(t, "run")
	if !failed || !strings.Contains(out, "missing spec") {
		t.Errorf("missing spec: failed=%v, output:\n%s", failed, out)
	}
}

func TestStrayArgument(t *testing.T) {
	out, failed := runCampaign(t, "check", "../../examples/campaign/spec.yaml", "extra")
	if !failed || !strings.Contains(out, "unexpected argument") {
		t.Errorf("stray arg: failed=%v, output:\n%s", failed, out)
	}
}

// TestCheckExampleSpec keeps the committed example spec parseable: check
// compiles it and prints the plan without simulating.
func TestCheckExampleSpec(t *testing.T) {
	out, failed := runCampaign(t, "check", "../../examples/campaign/spec.yaml")
	if failed || strings.Contains(out, "exit status") {
		t.Fatalf("check failed:\n%s", out)
	}
	if !strings.Contains(out, "metro-flash-crowd") || !strings.Contains(out, "12 cell(s)") {
		t.Errorf("unexpected plan output:\n%s", out)
	}
}
