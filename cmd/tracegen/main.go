// Command tracegen generates a synthetic access-network trace and either
// stores it (binary or CSV) or prints its Fig 2/3/4 statistics.
//
// Usage:
//
//	tracegen -profile office|sim|residential [-seed 1] [-clients N] [-aps N]
//	         [-o trace.bin] [-csv flows.csv] [-stats]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"insomnia/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")
	profile := flag.String("profile", "office", "office | sim | residential")
	seed := flag.Int64("seed", 1, "RNG seed")
	clients := flag.Int("clients", 0, "override client count")
	aps := flag.Int("aps", 0, "override AP count")
	out := flag.String("o", "", "write binary trace to this path")
	csvPath := flag.String("csv", "", "write flow CSV to this path")
	showStats := flag.Bool("stats", true, "print trace statistics")
	flag.Parse()

	var cfg trace.Config
	switch *profile {
	case "office":
		cfg = trace.DefaultOfficeConfig(*seed)
	case "sim":
		cfg = trace.DefaultSimConfig(*seed)
	case "residential":
		n := 2000
		if *clients > 0 {
			n = *clients
		}
		cfg = trace.DefaultResidentialConfig(n, *seed)
	default:
		log.Fatalf("unknown profile %q", *profile)
	}
	if *clients > 0 {
		cfg.Clients = *clients
	}
	if *aps > 0 {
		cfg.APs = *aps
	}

	tr, err := trace.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		if err := tr.WriteBinary(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
		log.Printf("wrote %s", *out)
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := tr.WriteFlowsCSV(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
		log.Printf("wrote %s", *csvPath)
	}
	if !*showStats {
		return
	}

	fmt.Printf("clients=%d aps=%d flows=%d keepalives=%d downlink-bytes=%.1f GB\n",
		tr.Cfg.Clients, tr.Cfg.APs, len(tr.Flows), len(tr.Keepalives),
		float64(tr.TotalBytes(false))/1e9)

	mean := trace.MeanUtilization(tr.UtilizationMatrix(false, 24))
	fmt.Println("\nhourly mean downlink utilization (%):")
	for h, u := range mean {
		fmt.Printf("  %02dh %6.2f\n", h, u*100)
	}

	h := tr.GapHistogram(16*3600, 17*3600)
	fmt.Printf("\npeak-hour idle-gap structure: %.1f%% of idle time in gaps < 60 s (paper: >80%%)\n",
		h.FractionBelow(60)*100)
}
