// Command tracegen generates a synthetic access-network trace and either
// stores it (binary or CSV) or prints its Fig 2/3/4 statistics. With
// -adversarial it instead hill-climbs a worst-case keepalive trace
// against a named scheme's wakeup count.
//
// Usage:
//
//	tracegen -profile office|sim|residential [-seed 1] [-clients N] [-aps N]
//	         [-o trace.bin] [-csv flows.csv] [-stats]
//	tracegen -adversarial SoI [-clients N] [-aps N] [-duration 3600]
//	         [-iters 100] [-seed 1] [-o trace.bin]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"insomnia/internal/campaign"
	"insomnia/internal/sim"
	"insomnia/internal/topology"
	"insomnia/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")
	profile := flag.String("profile", "office", "office | sim | residential")
	seed := flag.Int64("seed", 1, "RNG seed")
	clients := flag.Int("clients", 0, "override client count")
	aps := flag.Int("aps", 0, "override AP count")
	out := flag.String("o", "", "write binary trace to this path")
	csvPath := flag.String("csv", "", "write flow CSV to this path")
	showStats := flag.Bool("stats", true, "print trace statistics")
	adversarial := flag.String("adversarial", "", "search a worst-case keepalive trace against this scheme (canonical name, e.g. SoI)")
	iters := flag.Int("iters", 100, "adversarial hill-climb iterations")
	duration := flag.Float64("duration", 3600, "adversarial trace duration in seconds")
	flag.Parse()

	if *adversarial != "" {
		runAdversarial(*adversarial, *clients, *aps, *seed, *duration, *iters, *out)
		return
	}

	var cfg trace.Config
	switch *profile {
	case "office":
		cfg = trace.DefaultOfficeConfig(*seed)
	case "sim":
		cfg = trace.DefaultSimConfig(*seed)
	case "residential":
		n := 2000
		if *clients > 0 {
			n = *clients
		}
		cfg = trace.DefaultResidentialConfig(n, *seed)
	default:
		log.Fatalf("unknown profile %q", *profile)
	}
	if *clients > 0 {
		cfg.Clients = *clients
	}
	if *aps > 0 {
		cfg.APs = *aps
	}

	tr, err := trace.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		if err := tr.WriteBinary(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
		log.Printf("wrote %s", *out)
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := tr.WriteFlowsCSV(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
		log.Printf("wrote %s", *csvPath)
	}
	if !*showStats {
		return
	}

	fmt.Printf("clients=%d aps=%d flows=%d keepalives=%d downlink-bytes=%.1f GB\n",
		tr.Cfg.Clients, tr.Cfg.APs, len(tr.Flows), len(tr.Keepalives),
		float64(tr.TotalBytes(false))/1e9)

	mean := trace.MeanUtilization(tr.UtilizationMatrix(false, 24))
	fmt.Println("\nhourly mean downlink utilization (%):")
	for h, u := range mean {
		fmt.Printf("  %02dh %6.2f\n", h, u*100)
	}

	h := tr.GapHistogram(16*3600, 17*3600)
	fmt.Printf("\npeak-hour idle-gap structure: %.1f%% of idle time in gaps < 60 s (paper: >80%%)\n",
		h.FractionBelow(60)*100)
}

// runAdversarial hill-climbs keepalive schedules against the named
// scheme's wakeup count and reports (and optionally stores) the worst
// case found.
func runAdversarial(scheme string, clients, aps int, seed int64, duration float64, iters int, out string) {
	sc, err := campaign.SchemeByName(scheme)
	if err != nil {
		log.Fatal(err)
	}
	if clients == 0 {
		clients = 48
	}
	if aps == 0 {
		aps = 8
	}
	acfg := trace.AdversaryConfig{
		Clients: clients, APs: aps, Duration: duration, Seed: seed, Iters: iters,
	}
	// Client placement is identical for every candidate pattern, so one
	// topology serves the whole search.
	var tp *topology.Topology
	score := func(tr *trace.Trace) float64 {
		if tp == nil {
			g, err := topology.OverlapGraph(aps, topology.DefaultMeanInRange, seed)
			if err != nil {
				log.Fatal(err)
			}
			if tp, err = topology.FromOverlap(g, tr.ClientAP); err != nil {
				log.Fatal(err)
			}
		}
		res, err := sim.Run(sim.Config{Trace: tr, Topo: tp, Scheme: sc, Seed: seed})
		if err != nil {
			log.Fatal(err)
		}
		return float64(res.Wakeups)
	}
	a, err := trace.SearchAdversarial(acfg, score)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("adversarial search vs %s: %d clients / %d gateways / %.0f s, %d iterations\n",
		sc, clients, aps, duration, iters)
	fmt.Printf("wakeups: %.0f (random seed pattern) -> %.0f (worst case found, %+.1f%%)\n",
		a.Initial, a.Score, (a.Score/a.Initial-1)*100)
	fmt.Printf("keepalives in worst-case trace: %d\n", len(a.Trace.Keepalives))
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			log.Fatal(err)
		}
		if err := a.Trace.WriteBinary(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", out)
	}
}
