package main

import (
	"os/exec"
	"strings"
	"testing"
)

// TestRejectsStrayArguments pins the CLI contract: a typo'd positional
// argument must exit non-zero with a usage message, not silently run the
// (minutes-long) default benchmarks.
func TestRejectsStrayArguments(t *testing.T) {
	out, err := exec.Command("go", "run", ".", "tyop").CombinedOutput()
	if err == nil {
		t.Fatalf("bench with a stray argument must exit non-zero; output:\n%s", out)
	}
	s := string(out)
	// `go run` itself exits 1 but reports the child's status on stderr.
	if !strings.Contains(s, "exit status 2") {
		t.Errorf("want exit status 2, got:\n%s", s)
	}
	if !strings.Contains(s, "unexpected argument") || !strings.Contains(s, "tyop") || !strings.Contains(s, "Usage") {
		t.Errorf("expected usage message naming the stray argument, got:\n%s", s)
	}
}
