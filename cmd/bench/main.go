// Command bench measures the repository's macro performance scenarios and
// writes one benchmark-trajectory record (BENCH_<date>.json, see
// internal/perf) so successive PRs leave comparable performance data:
//
//   - the §5 four-scheme day comparison over the office scenario (the same
//     workload as BenchmarkSchemeComparisonSerial in bench_test.go);
//   - the city scenario: a 10k-gateway / 100k-client residential metro
//     (trace.DefaultCityConfig over topology.GridCity), duration-bounded so
//     a trajectory point costs minutes, not hours — each scheme measured
//     serially and again on the sharded engine (-shards lanes; identical
//     results, so the pair reads as a speedup measurement);
//   - the symmetric-city sweep (-collapse): the same metro scale with
//     `placement: symmetric`, run as a campaign with `collapse: off` and
//     `collapse: auto`, recording the symmetry-collapse speedup ratio;
//   - optionally (-xl) the million-client metro: 100k gateways / 1M
//     clients on the sharded engine, the scale target the sharding work
//     exists for.
//
// Usage:
//
//	bench [-out BENCH_2026-07-29.json] [-seed 2] [-shards NumCPU]
//	      [-city=true] [-city-gateways 10000] [-city-clients 100000] [-city-duration 1800]
//	      [-collapse=true] [-xl] [-xl-gateways 100000] [-xl-clients 1000000] [-xl-duration 600]
//	      [-comparison=true] [-cpuprofile cpu.out] [-memprofile mem.out]
//	      [-against auto|off|FILE] [-gate-tol 0.35] [-gate-wall-tol 3]
//
// With -against, bench becomes the CI regression gate: after measuring,
// it compares wall time and allocation per entry against a reference
// trajectory ("auto" picks the newest committed BENCH_*.json, excluding
// the file this run writes) and exits non-zero when any shared entry
// regressed beyond its tolerance. Allocations are machine-stable; wall
// time is only comparable on similar hardware, so cross-machine gates
// (CI vs a locally-recorded reference) pass a loose -gate-wall-tol.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"insomnia/internal/campaign"
	"insomnia/internal/cli"
	"insomnia/internal/dsl"
	"insomnia/internal/perf"
	"insomnia/internal/runner"
	"insomnia/internal/sim"
	"insomnia/internal/topology"
	"insomnia/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bench: ")
	out := flag.String("out", perf.DefaultPath(time.Now()), "trajectory output file")
	seed := flag.Int64("seed", 2, "RNG seed")
	comparison := flag.Bool("comparison", true, "run the four-scheme day comparison")
	city := flag.Bool("city", true, "run the city scenario")
	cityGWs := flag.Int("city-gateways", 10000, "city gateways")
	cityClients := flag.Int("city-clients", 100000, "city terminal devices")
	cityDur := flag.Float64("city-duration", 1800, "simulated seconds for the city runs")
	shards := flag.Int("shards", runtime.NumCPU(), "engine shards for the city-sharded entries (results identical at every value)")
	collapse := flag.Bool("collapse", true, "run the symmetric-city sweep full and collapsed (records the speedup ratio)")
	xl := flag.Bool("xl", false, "also run the million-client metro on the sharded engine")
	xlGWs := flag.Int("xl-gateways", 100000, "xl metro gateways")
	xlClients := flag.Int("xl-clients", 1000000, "xl metro terminal devices")
	xlDur := flag.Float64("xl-duration", 600, "simulated seconds for the xl run")
	cpuprofile := flag.String("cpuprofile", "", "write CPU profile to file")
	memprofile := flag.String("memprofile", "", "write heap profile to file at exit")
	against := flag.String("against", "off", `regression gate reference: "off", "auto" (newest committed BENCH_*.json) or a file`)
	gateTol := flag.Float64("gate-tol", 0.35, "tolerated fractional regression on allocated bytes (and wall time unless -gate-wall-tol is set)")
	gateWallTol := flag.Float64("gate-wall-tol", math.NaN(), "tolerated fractional wall-time regression; negative disables the wall check (use a loose value when the reference came from different hardware)")
	flag.Parse()
	if err := cli.RejectArgs("bench", flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, err)
		flag.Usage()
		os.Exit(2)
	}

	// cleanup is idempotent: deferred for the normal path, called
	// explicitly before Fatal (which skips defers) so a failed scenario
	// still leaves a parseable CPU profile.
	cleanup, err := perf.Profile(*cpuprofile, *memprofile)
	if err != nil {
		log.Fatal(err)
	}
	defer cleanup()

	rep := perf.NewReport(time.Now().Format("2006-01-02"))
	err = func() error {
		if *comparison {
			if err := benchComparison(rep, *seed); err != nil {
				return err
			}
		}
		if *city {
			if err := benchCity(rep, *seed, *cityGWs, *cityClients, *cityDur, *shards); err != nil {
				return err
			}
		}
		if *collapse {
			if err := benchCollapse(rep, *seed, *cityGWs, *cityClients, *cityDur); err != nil {
				return err
			}
		}
		if *xl {
			if err := benchXL(rep, *seed, *xlGWs, *xlClients, *xlDur, *shards); err != nil {
				return err
			}
		}
		return rep.WriteFile(*out)
	}()
	if err != nil {
		cleanup()
		log.Fatal(err)
	}
	for _, e := range rep.Entries {
		log.Printf("%-28s %8.2fs  %6.1f MB alloc", e.Name, e.WallSeconds, float64(e.AllocBytes)/1e6)
	}
	log.Printf("wrote %s", *out)

	if *against != "off" && *against != "" {
		wallTol := *gateWallTol
		if math.IsNaN(wallTol) {
			wallTol = *gateTol
		}
		if err := gate(rep, *against, *out, wallTol, *gateTol); err != nil {
			cleanup()
			log.Fatal(err)
		}
	}
}

// gate compares the fresh report against a reference trajectory and
// errors when any shared entry regressed beyond its tolerance.
func gate(fresh *perf.Report, against, selfPath string, wallTol, allocTol float64) error {
	refPath := against
	if against == "auto" {
		var err error
		refPath, err = perf.NewestRecord(".", selfPath)
		if err != nil {
			return err
		}
	}
	ref, err := perf.ReadFile(refPath)
	if err != nil {
		return err
	}
	regs, skipped := perf.Compare(ref, fresh, wallTol, allocTol)
	// An unmatched entry is not a pass — it is coverage the gate lost
	// (renamed scenario, re-parameterized run, dropped measurement). Warn
	// loudly so a rename cannot silently retire a regression check.
	for _, s := range skipped {
		log.Printf("WARNING: gate skipped %s", s)
	}
	if len(regs) == 0 {
		log.Printf("regression gate ok vs %s (wall tol %.0f%%, alloc tol %.0f%%, %d entr(ies) skipped)",
			refPath, wallTol*100, allocTol*100, len(skipped))
		return nil
	}
	for _, r := range regs {
		log.Printf("REGRESSION %s", r)
	}
	return fmt.Errorf("%d entr(ies) regressed vs %s", len(regs), refPath)
}

// benchComparison mirrors BenchmarkSchemeComparisonSerial: one shared
// office-day scenario, four schemes on one worker.
func benchComparison(rep *perf.Report, seed int64) error {
	tr, err := trace.Generate(trace.DefaultSimConfig(seed))
	if err != nil {
		return err
	}
	g, err := topology.OverlapGraph(tr.Cfg.APs, topology.DefaultMeanInRange, seed)
	if err != nil {
		return err
	}
	tp, err := topology.FromOverlap(g, tr.ClientAP)
	if err != nil {
		return err
	}
	scenario := fmt.Sprintf("office-day: %d clients / %d gateways / %.0fs, seed %d",
		tr.Cfg.Clients, tr.Cfg.APs, tr.Cfg.Duration, seed)
	return rep.Measure("scheme-comparison-serial", scenario, func() (map[string]float64, error) {
		schemes := []sim.Scheme{sim.NoSleep, sim.SoI, sim.SoIKSwitch, sim.BH2KSwitch}
		jobs := runner.SchemeJobs(sim.Config{Trace: tr, Topo: tp, Seed: seed}, schemes)
		outs := (runner.Runner{Workers: 1}).Run(context.Background(), jobs)
		if err := runner.FirstErr(outs); err != nil {
			return nil, err
		}
		return map[string]float64{
			"flows":          float64(len(tr.Flows)),
			"keepalives":     float64(len(tr.Keepalives)),
			"soi_savings":    outs[1].Result.SavingsVs(outs[0].Result),
			"bh2k_savings":   outs[3].Result.SavingsVs(outs[0].Result),
			"bh2k_wakeups":   float64(outs[3].Result.Wakeups),
			"schemes_per_op": float64(len(schemes)),
		}, nil
	})
}

// cityFixture generates the metro workload and topology, measuring trace
// generation as its own trajectory entry under the given name.
func cityFixture(rep *perf.Report, name, scenario string, seed int64, gws, clients int, duration float64) (*trace.Trace, *topology.Topology, dsl.DSLAM, error) {
	cfg := trace.DefaultCityConfig(seed)
	cfg.APs, cfg.Clients, cfg.Duration = gws, clients, duration

	var tr *trace.Trace
	err := rep.Measure(name, scenario, func() (map[string]float64, error) {
		var err error
		tr, err = trace.Generate(cfg)
		if err != nil {
			return nil, err
		}
		return map[string]float64{
			"flows":      float64(len(tr.Flows)),
			"keepalives": float64(len(tr.Keepalives)),
		}, nil
	})
	if err != nil {
		return nil, nil, dsl.DSLAM{}, err
	}
	g, err := topology.GridCity(gws, topology.DefaultMeanInRange, seed)
	if err != nil {
		return nil, nil, dsl.DSLAM{}, err
	}
	tp, err := topology.FromOverlap(g, tr.ClientAP)
	if err != nil {
		return nil, nil, dsl.DSLAM{}, err
	}
	// A metro head-end: enough 48-port cards for every gateway, card count
	// rounded to the k-switch group size.
	cards := (gws + 47) / 48
	if r := cards % 4; r != 0 {
		cards += 4 - r
	}
	return tr, tp, dsl.DSLAM{Cards: cards, PortsPerCard: 48}, nil
}

// benchCity runs the city scenario: trace generation is measured as its own
// entry, then NoSleep (baseline), SoI and BH2 each get a serial trajectory
// point and a sharded one ("city-sharded-*", shards lanes). Serial and
// sharded results are byte-identical, so each pair is a pure speedup
// measurement; the recorded shards/gomaxprocs metrics say whether the
// machine could actually exploit the lanes.
func benchCity(rep *perf.Report, seed int64, gws, clients int, duration float64, shards int) error {
	scenario := fmt.Sprintf("city: %d clients / %d gateways / %.0fs, seed %d",
		clients, gws, duration, seed)
	tr, tp, shelf, err := cityFixture(rep, "city-trace-gen", scenario, seed, gws, clients, duration)
	if err != nil {
		return err
	}

	var base *sim.Result
	for _, v := range []struct {
		prefix string
		shards int
	}{
		{"city-", 0},
		{"city-sharded-", shards},
	} {
		for _, sc := range []sim.Scheme{sim.NoSleep, sim.SoI, sim.BH2KSwitch} {
			sc := sc
			err := rep.Measure(v.prefix+sc.String(), scenario, func() (map[string]float64, error) {
				res, err := sim.Run(sim.Config{
					Trace: tr, Topo: tp, Scheme: sc, Seed: seed, DSLAM: shelf, K: 4,
					Shards: v.shards,
				})
				if err != nil {
					return nil, err
				}
				m := perf.Parallelism(map[string]float64{
					"wakeups":         float64(res.Wakeups),
					"mean_online_gws": sim.MeanOver(res.OnlineGWs, 0, duration/3600),
				}, max(v.shards, 1))
				if sc == sim.NoSleep {
					if base == nil {
						base = res
					}
				} else if base != nil {
					m["savings"] = res.SavingsVs(base)
				}
				if res.Moves > 0 {
					m["moves"] = float64(res.Moves)
				}
				return m, nil
			})
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// benchCollapse measures the symmetry-collapse pass end to end: one
// symmetric grid-city campaign (three collapsible schemes over the metro
// scale of the city entries), simulated full (`collapse: off`) and
// collapsed (`collapse: auto`). The two runs write byte-identical
// artifacts — pinned by the campaign tests — so the pair is a pure
// speedup measurement; the ratio is recorded as the collapsed entry's
// "speedup" metric, which perf.Compare gates as higher-is-better.
func benchCollapse(rep *perf.Report, seed int64, gws, clients int, duration float64) error {
	spec := dsl.Spec{
		Name:     "bench-collapse",
		Schemes:  []string{"no-sleep", "SoI", "SoI+full-switch"},
		Seeds:    []int64{seed},
		Duration: duration,
		Trace: dsl.TraceSpec{
			Profile: "residential", Clients: clients, Gateways: gws,
			Placement: "symmetric",
		},
		Topology: dsl.TopoSpec{Kind: "grid-city", MeanInRange: 4.5},
		Outputs:  []string{"summary"},
	}
	scenario := fmt.Sprintf("symmetric city sweep: %d clients / %d gateways / %.0fs x %d schemes, seed %d",
		clients, gws, duration, len(spec.Schemes), seed)
	tmp, err := os.MkdirTemp("", "bench-collapse-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	run := func(mode string) (*campaign.RunResult, error) {
		p, err := campaign.Compile(spec)
		if err != nil {
			return nil, err
		}
		// One worker, one shard: both runs measure the same serial pipeline,
		// so the ratio isolates the collapse itself.
		job, err := p.Submit(context.Background(), campaign.Options{
			Workers: 1, Shards: 1, OutDir: filepath.Join(tmp, mode), Collapse: mode,
		})
		if err != nil {
			return nil, err
		}
		return job.Wait()
	}
	err = rep.Measure("city-sweep-full", scenario, func() (map[string]float64, error) {
		if _, err := run("off"); err != nil {
			return nil, err
		}
		return nil, nil
	})
	if err != nil {
		return err
	}
	fullWall := rep.Entries[len(rep.Entries)-1].WallSeconds
	err = rep.Measure("city-sweep-collapsed", scenario, func() (map[string]float64, error) {
		res, err := run("auto")
		if err != nil {
			return nil, err
		}
		classes := 0.0
		for _, r := range res.Rows {
			if r.CollapsedClasses > 0 {
				classes = float64(r.CollapsedClasses)
			}
		}
		if classes == 0 {
			return nil, fmt.Errorf("symmetric sweep did not collapse")
		}
		return map[string]float64{"collapsed_classes": classes}, nil
	})
	if err != nil {
		return err
	}
	e := &rep.Entries[len(rep.Entries)-1]
	e.Metrics["speedup"] = fullWall / e.WallSeconds
	return nil
}

// benchXL runs the million-client metro once, on the sharded engine only —
// the serial run at this scale is the thing the sharding work retires.
func benchXL(rep *perf.Report, seed int64, gws, clients int, duration float64, shards int) error {
	scenario := fmt.Sprintf("xl-metro: %d clients / %d gateways / %.0fs, seed %d",
		clients, gws, duration, seed)
	tr, tp, shelf, err := cityFixture(rep, "xl-trace-gen", scenario, seed, gws, clients, duration)
	if err != nil {
		return err
	}
	return rep.Measure("xl-sharded-"+sim.SoI.String(), scenario, func() (map[string]float64, error) {
		res, err := sim.Run(sim.Config{
			Trace: tr, Topo: tp, Scheme: sim.SoI, Seed: seed, DSLAM: shelf, K: 4,
			Shards: shards,
		})
		if err != nil {
			return nil, err
		}
		return perf.Parallelism(map[string]float64{
			"wakeups":         float64(res.Wakeups),
			"mean_online_gws": sim.MeanOver(res.OnlineGWs, 0, duration/3600),
		}, max(shards, 1)), nil
	})
}
