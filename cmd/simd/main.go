// Command simd serves simulation campaigns over HTTP: the same YAML/JSON
// specs cmd/campaign runs from files, submitted as jobs, streamed as
// Server-Sent Events and collected as byte-deterministic artifacts.
//
// Usage:
//
//	simd [-addr :8080] [-data simd-data] [-budget N]
//
// Endpoints (see README "Simulation as a service"):
//
//	POST   /v1/campaigns                       submit a spec, get a job ID
//	GET    /v1/campaigns                       list jobs
//	GET    /v1/campaigns/{id}                  job status/summary
//	GET    /v1/campaigns/{id}/events           per-cell rows over SSE
//	GET    /v1/campaigns/{id}/artifacts/{name} summary.csv | results.json | power.csv
//	DELETE /v1/campaigns/{id}                  cancel the job
//
// -budget caps concurrent simulations across all jobs. Job state lives
// under -data; killing the server mid-campaign loses nothing — on restart
// every unfinished job resumes from its manifest checkpoint.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"time"

	"insomnia/internal/runner"
	"insomnia/internal/simd"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("simd: ")
	addr := flag.String("addr", ":8080", "listen address")
	data := flag.String("data", "simd-data", "data directory (one subdirectory per job)")
	budget := flag.Int("budget", 0, "max concurrent simulations across all jobs (0 = GOMAXPROCS)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	srv, err := simd.New(ctx, *data, runner.NewBudget(*budget))
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	go func() {
		<-ctx.Done()
		// Jobs first: cancellation leaves their manifests resumable, and
		// in-flight SSE streams end with the jobs. Then drain HTTP.
		srv.Close()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(shutdownCtx)
	}()
	log.Printf("listening on %s (data: %s, budget: %d)", *addr, *data, runner.NewBudget(*budget).Slots())
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	log.Printf("shut down; unfinished jobs resume on restart")
}
