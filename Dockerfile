# Multi-stage build for cmd/simd, the HTTP campaign server. The module
# has no external dependencies, so the build stage needs nothing beyond
# the Go toolchain; the runtime stage is distroless with one static
# binary in it.
FROM golang:1.23 AS build
WORKDIR /src
COPY go.mod ./
COPY . .
RUN CGO_ENABLED=0 go build -trimpath -ldflags="-s -w" -o /out/simd ./cmd/simd \
    && mkdir -p /out/data

FROM gcr.io/distroless/static-debian12:nonroot
COPY --from=build /out/simd /simd
# Job state (specs, manifests, artifacts) lives under /data; mount a
# volume there to keep campaigns resumable across container restarts.
COPY --from=build --chown=nonroot:nonroot /out/data /data
EXPOSE 8080
ENTRYPOINT ["/simd", "-addr", ":8080", "-data", "/data"]
