// Package bench is the paper's evaluation harness: one benchmark per table
// and figure. Each benchmark regenerates its figure through the same
// internal/figures code the CLI uses and reports the headline values as
// benchmark metrics, so
//
//	go test -bench=. -benchmem
//
// prints the full reproduction in one run. Day-simulation figures (6-9,
// line-card table, headline) share a single cached set of runs.
package bench

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"insomnia/internal/analytic"
	"insomnia/internal/crosstalk"
	"insomnia/internal/dsl"
	"insomnia/internal/figures"
	"insomnia/internal/runner"
	"insomnia/internal/sim"
	"insomnia/internal/testbed"
	"insomnia/internal/trace"
)

var (
	dayOnce sync.Once
	dayRuns *figures.DayRuns
	dayErr  error
)

// day lazily runs the §5 scenario once for all day-based benchmarks. The
// eight schemes fan out through the experiment runner's worker pool
// (internal/runner), so the fixture costs roughly one Optimal run of
// wall-clock instead of the serial sum.
func day(b *testing.B) *figures.DayRuns {
	b.Helper()
	dayOnce.Do(func() {
		var sc *figures.Scenario
		sc, dayErr = figures.NewScenario(1)
		if dayErr != nil {
			return
		}
		dayRuns, dayErr = figures.RunDay(sc, nil)
	})
	if dayErr != nil {
		b.Fatal(dayErr)
	}
	return dayRuns
}

// BenchmarkSchemeComparisonSerial and ...Parallel measure the experiment
// runner itself: the same four-scheme comparison over one shared scenario,
// scheduled on 1 worker vs GOMAXPROCS workers. The per-scheme results are
// identical (runner_test.go proves it); only wall-clock differs.
func benchSchemeComparison(b *testing.B, workers int) {
	sc := benchScenario(b)
	schemes := []sim.Scheme{sim.NoSleep, sim.SoI, sim.SoIKSwitch, sim.BH2KSwitch}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		jobs := runner.SchemeJobs(sim.Config{Trace: sc.Trace, Topo: sc.Topo, Seed: 2}, schemes)
		outs := (runner.Runner{Workers: workers}).Run(context.Background(), jobs)
		if err := runner.FirstErr(outs); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(outs[3].Result.SavingsVs(outs[0].Result)*100, "bh2k-savings-%")
	}
}

func BenchmarkSchemeComparisonSerial(b *testing.B)   { benchSchemeComparison(b, 1) }
func BenchmarkSchemeComparisonParallel(b *testing.B) { benchSchemeComparison(b, 0) }

func BenchmarkFig2_ResidentialUtilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := figures.Fig2(400, 1)
		if err != nil {
			b.Fatal(err)
		}
		peak := 0.0
		for _, y := range series[0].Y {
			if y > peak {
				peak = y
			}
		}
		b.ReportMetric(peak, "peak-util-%")
	}
}

func BenchmarkFig3_APUtilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := figures.Fig3(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(s.Y[16], "peak-hour-util-%")
	}
}

func BenchmarkFig4_GapHistogram(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr, err := trace.Generate(trace.DefaultOfficeConfig(1))
		if err != nil {
			b.Fatal(err)
		}
		h := tr.GapHistogram(16*3600, 17*3600)
		b.ReportMetric(h.FractionBelow(60)*100, "idle-below-60s-%")
	}
}

func BenchmarkFig5_SwitchSleepProbability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := figures.Fig5(24, 0.5)
		if err != nil {
			b.Fatal(err)
		}
		// The 8-switch first-card probability is the figure's anchor.
		b.ReportMetric(series[2].Y[0], "k8-card1-sleep-prob")
	}
}

func BenchmarkFig6_EnergySavings(b *testing.B) {
	runs := day(b)
	for i := 0; i < b.N; i++ {
		series := figures.Fig6(runs)
		for _, s := range series {
			if s.Name == sim.BH2KSwitch.String() {
				var peak float64
				for h := 11; h < 19; h++ {
					peak += s.Y[h]
				}
				b.ReportMetric(peak/8, "bh2k-peak-savings-%")
			}
		}
	}
}

func BenchmarkFig7_OnlineGateways(b *testing.B) {
	runs := day(b)
	for i := 0; i < b.N; i++ {
		for _, s := range figures.Fig7(runs) {
			if s.Name == sim.BH2KSwitch.String() {
				var peak float64
				for h := 11; h < 19; h++ {
					peak += s.Y[h]
				}
				b.ReportMetric(peak/8, "bh2k-peak-online-gws")
			}
		}
	}
}

func BenchmarkFig8_ISPShare(b *testing.B) {
	runs := day(b)
	for i := 0; i < b.N; i++ {
		for _, s := range figures.Fig8(runs) {
			if s.Name == sim.Optimal.String() {
				var mean float64
				for _, y := range s.Y {
					mean += y
				}
				b.ReportMetric(mean/float64(len(s.Y)), "optimal-isp-share-%")
			}
		}
	}
}

func BenchmarkFig9a_FCT(b *testing.B) {
	runs := day(b)
	for i := 0; i < b.N; i++ {
		for _, s := range figures.Fig9a(runs) {
			if s.Name == sim.BH2KSwitch.String() {
				// Fraction of flows unaffected (<=0% increase); paper: ~98%.
				b.ReportMetric(s.Y[0]*100, "bh2k-flows-unaffected-%")
			}
		}
	}
}

func BenchmarkFig9b_Fairness(b *testing.B) {
	runs := day(b)
	for i := 0; i < b.N; i++ {
		for _, s := range figures.Fig9b(runs) {
			if s.Name == sim.BH2KSwitch.String() {
				// Fraction of gateways whose online time dropped to zero
				// (x = -100); paper: ~25%.
				b.ReportMetric(s.Y[0]*100, "gateways-always-asleep-%")
			}
		}
	}
}

func BenchmarkFig10_DensitySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := figures.Fig10(1, []float64{1, 2, 5.6, 10})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(s.Y[1], "online-gws-at-density-2")
		b.ReportMetric(s.Y[2], "online-gws-at-density-5.6")
	}
}

func BenchmarkFig12_Testbed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := testbed.Run(testbed.Config{UseBH2: true, Duration: 600, TimeScale: 0.002, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MeanSleeping, "bh2-sleeping-aps-of-9")
	}
}

func BenchmarkFig14_CrosstalkSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := figures.Fig14(1)
		if err != nil {
			b.Fatal(err)
		}
		// 62 Mbps fixed-600m series, half-off and 20-off anchors.
		s := series[1]
		b.ReportMetric(s.Y[6], "62M-600m-halfoff-speedup-%")
		b.ReportMetric(s.Y[len(s.Y)-1], "62M-600m-20off-speedup-%")
	}
}

func BenchmarkFig15_Attenuation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := figures.Fig15(1)
		if err != nil {
			b.Fatal(err)
		}
		var mean float64
		for _, y := range series[1].Y {
			mean += y
		}
		b.ReportMetric(mean/float64(len(series[1].Y)), "mean-card-sigma-dB")
	}
}

func BenchmarkTableLineCards(b *testing.B) {
	runs := day(b)
	for i := 0; i < b.N; i++ {
		t := figures.LineCardTable(runs)
		b.ReportMetric(t[sim.BH2KSwitch.String()], "bh2k-online-cards")
		b.ReportMetric(t[sim.Optimal.String()], "optimal-online-cards")
		b.ReportMetric(t[sim.SoI.String()], "soi-online-cards")
	}
}

func BenchmarkHeadlineSavings(b *testing.B) {
	runs := day(b)
	for i := 0; i < b.N; i++ {
		h := figures.Summarize(runs)
		b.ReportMetric(h.Savings[sim.BH2KSwitch.String()]*100, "bh2k-savings-%")
		b.ReportMetric(h.OptimalMargin*100, "optimal-margin-%")
		b.ReportMetric(h.WorldTWh, "world-TWh-per-year")
	}
}

func BenchmarkSoIBound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr, err := trace.Generate(trace.DefaultOfficeConfig(1))
		if err != nil {
			b.Fatal(err)
		}
		h := tr.GapHistogram(16*3600, 17*3600)
		bound := analytic.SoISavingsBound(h, trace.Fig4Edges(), 60, 0.92)
		b.ReportMetric(bound*100, "soi-peak-bound-%")
	}
}

// --- ablations (design choices DESIGN.md calls out) ---

func benchScenario(b *testing.B) *figures.Scenario {
	b.Helper()
	sc, err := figures.NewScenario(2)
	if err != nil {
		b.Fatal(err)
	}
	return sc
}

func BenchmarkAblationBackup(b *testing.B) {
	sc := benchScenario(b)
	for i := 0; i < b.N; i++ {
		with, err := sim.Run(sim.Config{Trace: sc.Trace, Topo: sc.Topo, Scheme: sim.BH2KSwitch, Seed: 2})
		if err != nil {
			b.Fatal(err)
		}
		without, err := sim.Run(sim.Config{Trace: sc.Trace, Topo: sc.Topo, Scheme: sim.BH2NoBackup, Seed: 2})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(sim.MeanOver(with.OnlineGWs, 11, 19), "backup1-online-gws")
		b.ReportMetric(sim.MeanOver(without.OnlineGWs, 11, 19), "backup0-online-gws")
	}
}

func BenchmarkAblationSwitch(b *testing.B) {
	sc := benchScenario(b)
	for i := 0; i < b.N; i++ {
		for _, sch := range []sim.Scheme{sim.SoI, sim.SoIKSwitch, sim.SoIFullSwitch} {
			res, err := sim.Run(sim.Config{Trace: sc.Trace, Topo: sc.Topo, Scheme: sch, Seed: 2})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(sim.MeanOver(res.OnlineCards, 11, 19), sch.String()+"-cards")
		}
	}
}

func BenchmarkAblationThresholds(b *testing.B) {
	sc := benchScenario(b)
	for i := 0; i < b.N; i++ {
		for _, th := range []struct {
			name      string
			low, high float64
		}{
			{"paper-10-50", 0.10, 0.50},
			{"tight-05-30", 0.05, 0.30},
			{"loose-20-70", 0.20, 0.70},
		} {
			cfg := sim.Config{Trace: sc.Trace, Topo: sc.Topo, Scheme: sim.BH2KSwitch, Seed: 2}
			cfg.BH2.Low, cfg.BH2.High = th.low, th.high
			cfg.BH2.Backup = 1
			cfg.BH2.PeriodSec, cfg.BH2.JitterSec, cfg.BH2.EstWindow = 150, 30, 60
			cfg.BH2.WakeUpHome = true
			res, err := sim.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Wakeups), th.name+"-wakeups")
		}
	}
}

func BenchmarkAblationPeriod(b *testing.B) {
	sc := benchScenario(b)
	for i := 0; i < b.N; i++ {
		for _, period := range []float64{60, 150, 300} {
			cfg := sim.Config{Trace: sc.Trace, Topo: sc.Topo, Scheme: sim.BH2KSwitch, Seed: 2}
			cfg.BH2.Low, cfg.BH2.High, cfg.BH2.Backup = 0.10, 0.50, 1
			cfg.BH2.PeriodSec, cfg.BH2.JitterSec, cfg.BH2.EstWindow = period, period/5, 60
			cfg.BH2.WakeUpHome = true
			res, err := sim.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Moves), "moves")
		}
	}
}

// BenchmarkAblationCentralized compares the §3.3 centralized-controller
// extension against distributed BH2 and the idealized Optimal.
func BenchmarkAblationCentralized(b *testing.B) {
	sc := benchScenario(b)
	for i := 0; i < b.N; i++ {
		base, err := sim.Run(sim.Config{Trace: sc.Trace, Topo: sc.Topo, Scheme: sim.NoSleep, Seed: 2})
		if err != nil {
			b.Fatal(err)
		}
		cen, err := sim.Run(sim.Config{Trace: sc.Trace, Topo: sc.Topo, Scheme: sim.Centralized, Seed: 2})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cen.SavingsVs(base)*100, "centralized-savings-%")
		b.ReportMetric(sim.MeanOver(cen.OnlineGWs, 11, 19), "centralized-online-gws")
	}
}

// BenchmarkAblationWakeTime compares the constant 60 s wake against the
// measured distribution (up to 3 min resyncs).
func BenchmarkAblationWakeTime(b *testing.B) {
	sc := benchScenario(b)
	for i := 0; i < b.N; i++ {
		fixed, err := sim.Run(sim.Config{Trace: sc.Trace, Topo: sc.Topo, Scheme: sim.BH2KSwitch, Seed: 2})
		if err != nil {
			b.Fatal(err)
		}
		random, err := sim.Run(sim.Config{Trace: sc.Trace, Topo: sc.Topo, Scheme: sim.BH2KSwitch, Seed: 2, RandomWake: true})
		if err != nil {
			b.Fatal(err)
		}
		base, err := sim.Run(sim.Config{Trace: sc.Trace, Topo: sc.Topo, Scheme: sim.NoSleep, Seed: 2})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fixed.SavingsVs(base)*100, "fixed-wake-savings-%")
		b.ReportMetric(random.SavingsVs(base)*100, "random-wake-savings-%")
	}
}

// BenchmarkAblationKSize sweeps the switch size on an 8-card DSLAM.
func BenchmarkAblationKSize(b *testing.B) {
	sc := benchScenario(b)
	shelf := dsl.DSLAM{Cards: 8, PortsPerCard: 6}
	for i := 0; i < b.N; i++ {
		for _, k := range []int{2, 4, 8} {
			res, err := sim.Run(sim.Config{
				Trace: sc.Trace, Topo: sc.Topo, Scheme: sim.BH2KSwitch,
				Seed: 2, DSLAM: shelf, K: k,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(sim.MeanOver(res.OnlineCards, 11, 19), fmt.Sprintf("k%d-online-cards", k))
		}
	}
}

// BenchmarkEnergyProportionality compares the sleeping margin against what
// ideal energy-proportional hardware would save (§2.2's alternative).
func BenchmarkEnergyProportionality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr, err := trace.Generate(trace.DefaultOfficeConfig(1))
		if err != nil {
			b.Fatal(err)
		}
		mean := 0.0
		for _, u := range traceMeanUtil(tr) {
			mean += u
		}
		mean /= 24
		v, err := analytic.EnergyProportionalSavings(mean, 0.10)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(v*100, "proportional-hw-savings-%")
	}
}

func traceMeanUtil(tr *trace.Trace) []float64 {
	return trace.MeanUtilization(tr.UtilizationMatrix(false, 24))
}

// BenchmarkCrosstalkSyncRate measures the PHY model itself: one full-bundle
// sync-rate computation (24 lines, ~2900 tones).
func BenchmarkCrosstalkSyncRate(b *testing.B) {
	lengths := crosstalk.TelcoLengths(24, 1)
	sys, err := crosstalk.NewSystem(crosstalk.DefaultPHY(), crosstalk.NewBundle25(), lengths)
	if err != nil {
		b.Fatal(err)
	}
	active := make([]bool, 24)
	for i := range active {
		active[i] = true
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.SyncRate(i%24, active, crosstalk.Profile62)
	}
}

// BenchmarkSimulatorDay measures raw simulator throughput: one full
// simulated day of SoI over the evaluation scenario per iteration.
func BenchmarkSimulatorDay(b *testing.B) {
	sc := benchScenario(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(sim.Config{Trace: sc.Trace, Topo: sc.Topo, Scheme: sim.SoI, Seed: 2}); err != nil {
			b.Fatal(err)
		}
	}
}
