package campaign

import (
	"errors"
	"fmt"
)

// The campaign error taxonomy. Every error this package returns wraps
// exactly one of these sentinels, so embedding layers — the HTTP campaign
// server first of all — can map failures onto status codes with errors.Is
// instead of string matching:
//
//	ErrSpecInvalid      -> 400 Bad Request (the spec can never run)
//	ErrManifestConflict -> 409 Conflict (the output directory disagrees)
//	ErrCanceled         -> the job was canceled; not a server fault
//	ErrCellsFailed      -> 500-class: cells failed even after the retry
//
// Errors outside the taxonomy (I/O failures writing checkpoints or
// artifacts) are infrastructure faults and deliberately wrap none of them.
var (
	// ErrSpecInvalid marks a spec that fails validation or compilation:
	// resubmitting the same spec can never succeed.
	ErrSpecInvalid = errors.New("invalid campaign spec")
	// ErrManifestConflict marks an output directory that refuses the job:
	// a manifest already exists without Resume, or the existing manifest
	// belongs to a different spec.
	ErrManifestConflict = errors.New("campaign manifest conflict")
	// ErrCanceled marks a job stopped by Job.Cancel or its parent context.
	// The manifest keeps every completed cell; resubmitting with Resume
	// continues where the job stopped.
	ErrCanceled = errors.New("campaign canceled")
	// ErrCellsFailed marks a completed job with cells that failed even
	// after the retry. The RunResult is still valid: successful rows and
	// artifacts (recording the failed keys) were written.
	ErrCellsFailed = errors.New("campaign cells failed")
)

// specErr wraps a validation error into the ErrSpecInvalid class.
func specErr(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%w: %v", ErrSpecInvalid, err)
}
