// Package campaign compiles a declarative scenario spec (dsl.Spec) into a
// deterministic batch of simulations and runs it to completion with
// checkpoint/resume.
//
// A spec expands into *cells*: the cross-product of scenario variants
// (sweep-axis values), seeds and schemes, in a fixed enumeration order
// (variants outermost, then seeds, then schemes). Cells that share a
// (variant, seed) pair share one generated trace and topology fixture —
// the runner's read-only-fixture contract — so adding schemes to a
// campaign costs simulation time only.
//
// Progress is checkpointed to <out>/manifest.jsonl: a header line binding
// the manifest to the spec's hash, then one line per finished cell in
// cell order (runner.RunStream guarantees completed prefixes), each
// carrying the reduced metrics row. Resuming skips every cell already in
// the manifest and rebuilds artifacts from the union, so an interrupted
// then resumed campaign writes byte-identical artifacts to an
// uninterrupted one, at any worker count.
package campaign

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"insomnia/internal/dsl"
	"insomnia/internal/sim"
	"insomnia/internal/stats"
	"insomnia/internal/topology"
	"insomnia/internal/trace"
)

// SchemeByName maps a canonical scheme name (dsl.SchemeNames) to the
// sim.Scheme it denotes. The mapping is pinned to sim.Scheme.String() by
// TestSchemeNamesMatchSim.
func SchemeByName(name string) (sim.Scheme, error) {
	for _, sc := range []sim.Scheme{
		sim.NoSleep, sim.SoI, sim.SoIKSwitch, sim.SoIFullSwitch,
		sim.BH2KSwitch, sim.BH2FullSwitch, sim.BH2NoBackup,
		sim.Optimal, sim.Centralized,
	} {
		if sc.String() == name {
			return sc, nil
		}
	}
	return 0, fmt.Errorf("campaign: unknown scheme %q", name)
}

// Cell is one (scenario variant, seed, scheme) simulation in a campaign.
type Cell struct {
	Index    int        // position in enumeration order
	Scenario string     // variant label, e.g. "base" or "mean-in-range=7,k=2"
	Seed     int64      // scenario-generation and simulation seed
	Scheme   sim.Scheme // sleep scheme this cell simulates
	variant  int        // index into Plan.variants
}

// Key identifies the cell in the manifest, stable across processes.
func (c Cell) Key() string {
	return fmt.Sprintf("%s|%s|%d", c.Scenario, c.Scheme, c.Seed)
}

// variant is one sweep-axis combination: the base spec with the axis
// overrides applied.
type variant struct {
	label string
	spec  dsl.Spec
}

// Plan is a compiled campaign: the normalized spec plus its full cell
// enumeration.
type Plan struct {
	Spec     dsl.Spec // the normalized spec (defaults applied)
	Hash     string   // content hash binding manifests to this spec
	Cells    []Cell   // full cell list in enumeration order
	variants []variant
}

// Compile validates the spec and expands sweeps, seeds and schemes into
// the campaign's cell list. Every variant is re-validated after its axis
// overrides (a sweep can produce an invalid combination, e.g. more
// gateways than clients). All compilation errors wrap ErrSpecInvalid.
func Compile(spec dsl.Spec) (*Plan, error) {
	spec, err := spec.WithDefaults()
	if err != nil {
		return nil, specErr(err)
	}
	p := &Plan{Spec: spec, Hash: spec.Hash()}

	combos := enumerate(spec.Sweeps)
	for _, combo := range combos {
		v := variant{spec: spec}
		var parts []string
		for i, sw := range spec.Sweeps {
			applyAxis(&v.spec, sw.Axis, combo[i])
			parts = append(parts, fmt.Sprintf("%s=%s", sw.Axis, strconv.FormatFloat(combo[i], 'g', -1, 64)))
		}
		v.label = "base"
		if len(parts) > 0 {
			v.label = strings.Join(parts, ",")
		}
		v.spec.Sweeps = nil
		if v.spec, err = v.spec.WithDefaults(); err != nil {
			return nil, specErr(fmt.Errorf("campaign: variant %s: %v", v.label, err))
		}
		p.variants = append(p.variants, v)
	}

	for vi, v := range p.variants {
		for _, seed := range spec.Seeds {
			for _, name := range spec.Schemes {
				sc, err := SchemeByName(name)
				if err != nil {
					return nil, specErr(err)
				}
				p.Cells = append(p.Cells, Cell{
					Index: len(p.Cells), Scenario: v.label,
					Seed: seed, Scheme: sc, variant: vi,
				})
			}
		}
	}
	return p, nil
}

// enumerate returns the cross-product of sweep values in enumeration
// order: the first sweep is the outermost loop. With no sweeps it returns
// one empty combination (the base variant).
func enumerate(sweeps []dsl.Sweep) [][]float64 {
	combos := [][]float64{nil}
	for _, sw := range sweeps {
		var next [][]float64
		for _, c := range combos {
			for _, v := range sw.Values {
				combo := append(append([]float64(nil), c...), v)
				next = append(next, combo)
			}
		}
		combos = next
	}
	return combos
}

func applyAxis(s *dsl.Spec, axis string, v float64) {
	switch axis {
	case "mean-in-range":
		s.Topology.MeanInRange = v
	case "clients":
		s.Trace.Clients = int(v)
	case "gateways":
		s.Trace.Gateways = int(v)
	case "k":
		s.K = int(v)
	case "idle-timeout":
		s.IdleTimeout = v
	case "duration":
		s.Duration = v
	}
}

// fixture is the shared read-only scenario of one (variant, seed) group:
// the full trace/topology pair, the symmetry geometry (nil when the spec
// does not admit exact collapse), or both when the group mixes collapsible
// and coupled schemes.
type fixture struct {
	tr   *trace.Trace
	tp   *topology.Topology
	geom *collapseGeometry
}

// buildFixture generates one variant's scenario at one seed. Deterministic
// in (variant spec, seed). needFull/needQuot select which of the two
// scenario shapes to materialize — skipping the full city-scale trace is
// where collapse earns its speedup — but the collapse *geometry* is always
// derived when the spec admits it, so reduced rows carry the same
// collapsed_classes value whether or not collapse actually runs. A spec
// that turns out not to collapse (geom == nil) falls back to the full
// scenario regardless of needFull.
func buildFixture(sp dsl.Spec, seed int64, needFull, needQuot bool) (*fixture, error) {
	g, err := buildGraph(sp, seed)
	if err != nil {
		return nil, err
	}
	f := &fixture{geom: buildGeometry(sp, seed, g)}
	if f.geom == nil {
		needFull = true
	} else if needQuot {
		if err := f.geom.materialize(sp, seed); err != nil {
			return nil, err
		}
	}
	if !needFull {
		return f, nil
	}
	cfg, err := traceConfig(sp, seed)
	if err != nil {
		return nil, err
	}
	tr, err := trace.Generate(cfg)
	if err != nil {
		return nil, err
	}
	tp, err := buildTopology(sp, tr, g, seed)
	if err != nil {
		return nil, err
	}
	f.tr, f.tp = tr, tp
	return f, nil
}

// BuildScenario generates the concrete (trace, topology) pair a normalized
// spec describes for one seed — exactly what a campaign cell simulates,
// minus the scheme and shelf choices. Times throughout are simulated
// seconds from 0 and sizes are bytes; the same (spec, seed) always yields
// byte-identical scenarios. It exists for harnesses that need to confront
// the engine with an independently built scenario, e.g. the analytic
// oracle's reference interpreter (internal/oracle), which re-simulates the
// identical trace on its own straight-line event loop.
func BuildScenario(sp dsl.Spec, seed int64) (*trace.Trace, *topology.Topology, error) {
	g, err := buildGraph(sp, seed)
	if err != nil {
		return nil, nil, err
	}
	cfg, err := traceConfig(sp, seed)
	if err != nil {
		return nil, nil, err
	}
	tr, err := trace.Generate(cfg)
	if err != nil {
		return nil, nil, err
	}
	tp, err := buildTopology(sp, tr, g, seed)
	if err != nil {
		return nil, nil, err
	}
	return tr, tp, nil
}

// traceConfig maps a trace spec to a generator config. Profile families
// reuse the calibrated defaults: "office" is the §5 evaluation workload,
// everything else derives from the residential city workload.
func traceConfig(sp dsl.Spec, seed int64) (trace.Config, error) {
	t := sp.Trace
	var cfg trace.Config
	switch t.Profile {
	case "office":
		cfg = trace.DefaultSimConfig(seed)
	case "residential", "flash-crowd", "diurnal-mix", "churn":
		cfg = trace.DefaultCityConfig(seed)
	default:
		return cfg, fmt.Errorf("campaign: unknown trace profile %q", t.Profile)
	}
	cfg.Clients, cfg.APs = t.Clients, t.Gateways
	cfg.Duration = sp.Duration
	if t.Placement == "symmetric" {
		cfg.Symmetric = true
	}
	// Profile parameters were resolved by dsl's WithDefaults: the pointers
	// relevant to the chosen profile are non-nil in a normalized spec.
	switch t.Profile {
	case "flash-crowd":
		cfg.Profile = trace.FlashCrowd(cfg.Profile, *t.FlashHour, *t.FlashHours, *t.FlashScale)
	case "diurnal-mix":
		cfg.Profile = trace.Mix(cfg.Profile, trace.WeekendProfile, *t.WeekendFrac)
	case "churn":
		cfg = cfg.WithChurn(*t.ChurnFactor)
	}
	return cfg, nil
}

// buildGraph constructs the gateway adjacency graph of graph-backed
// topology kinds. Binomial topologies have no explicit graph (coverage is
// drawn per client) and return nil — which also rules them out of the
// neighborhood canonicalization the collapse pass needs.
func buildGraph(sp dsl.Spec, seed int64) (*topology.Graph, error) {
	gws, mir := sp.Trace.Gateways, sp.Topology.MeanInRange
	switch sp.Topology.Kind {
	case "overlap":
		return topology.OverlapGraph(gws, mir, seed)
	case "grid-city":
		return topology.GridCity(gws, mir, seed)
	case "binomial":
		return nil, nil
	}
	return nil, fmt.Errorf("campaign: unknown topology kind %q", sp.Topology.Kind)
}

func buildTopology(sp dsl.Spec, tr *trace.Trace, g *topology.Graph, seed int64) (*topology.Topology, error) {
	if g != nil {
		return topology.FromOverlap(g, tr.ClientAP)
	}
	return topology.Binomial(sp.Trace.Gateways, tr.ClientAP, sp.Topology.MeanInRange, seed)
}

// shelf sizes the DSLAM: the spec's explicit shape, the paper's 4x12
// evaluation shelf when it fits, else enough 48-port cards for every
// gateway rounded up to whole groups of the k-switch size.
func shelf(sp dsl.Spec) dsl.DSLAM {
	if sp.Shelf.Cards > 0 {
		return dsl.DSLAM{Cards: sp.Shelf.Cards, PortsPerCard: sp.Shelf.PortsPerCard}
	}
	if sp.Trace.Gateways <= dsl.EvalDSLAM.Ports() {
		return dsl.EvalDSLAM
	}
	cards := (sp.Trace.Gateways + 47) / 48
	group := sp.K
	if group <= 0 {
		group = 4
	}
	if r := cards % group; r != 0 {
		cards += group - r
	}
	return dsl.DSLAM{Cards: cards, PortsPerCard: 48}
}

// simConfig assembles the sim.Config of one cell over its fixture. A
// collapsed cell runs the materialized quotient scenario with the engine
// expansion plan (and the remapped failure schedule); the shelf is sized
// for the full gateway count either way, so line-to-port assignment — and
// with it every card-level draw — is identical in both shapes.
func simConfig(v dsl.Spec, f *fixture, c Cell, collapsed bool) sim.Config {
	cfg := sim.Config{
		Scheme: c.Scheme, Seed: c.Seed,
		DSLAM: shelf(v), K: v.K,
		IdleTimeout: v.IdleTimeout,
	}
	if collapsed {
		cfg.Trace, cfg.Topo, cfg.Quotient = f.geom.tr, f.geom.tp, f.geom.plan
		if v.Failures != nil {
			cfg.Failures = f.geom.failures
		}
		return cfg
	}
	cfg.Trace, cfg.Topo = f.tr, f.tp
	if v.Failures != nil {
		cfg.Failures = failurePlan(v, c.Seed)
	}
	return cfg
}

// failurePlan expands the spec's failures block into one cell's concrete
// schedule. The gateways a crash hits and the area an outage covers are
// drawn from the seed (stream 0xfa17) — not from the scheme — so every
// scheme of a (variant, seed) row faces the identical failure schedule
// and their robustness metrics are directly comparable, while different
// seeds explore different placements.
func failurePlan(v dsl.Spec, seed int64) sim.FailurePlan {
	f := v.Failures
	nGW := v.Trace.Gateways
	r := stats.NewRNG(seed, 0xfa17)
	plan := sim.FailurePlan{RebootMeanSec: f.RebootMean, RebootSigma: f.RebootSigma}
	for _, c := range f.Crashes {
		n := c.Count
		if n > nGW {
			n = nGW
		}
		for _, gw := range r.Perm(nGW)[:n] {
			plan.Crashes = append(plan.Crashes, sim.GatewayCrash{At: c.At, Gateway: gw, RebootSec: c.Reboot})
		}
	}
	for _, o := range f.Outages {
		width := int(math.Round(o.Frac * float64(nGW)))
		if width < 1 {
			width = 1
		}
		if width > nGW {
			width = nGW
		}
		from := r.Intn(nGW - width + 1)
		plan.Outages = append(plan.Outages, sim.OutageWindow{
			Start: o.Start, DurationSec: o.Duration,
			FromGW: from, ToGW: from + width,
		})
	}
	return plan
}

// Row is one cell's reduced result — everything the artifacts need, small
// enough to live in the manifest so resume never re-simulates.
type Row struct {
	Scenario string `json:"scenario"` // variant label (Cell.Scenario)
	Scheme   string `json:"scheme"`   // canonical scheme name
	Seed     int64  `json:"seed"`
	// Energy over the cell's horizon, kilowatt-hours, rounded to 6
	// significant digits (round6): total and its user/ISP split.
	EnergyKWh float64 `json:"energy_kwh"`
	UserKWh   float64 `json:"user_kwh"`
	ISPKWh    float64 `json:"isp_kwh"`
	// Wakeups counts gateway Sleeping→Waking transitions; Moves counts
	// DSLAM line remaps; Resolves counts controller re-solves
	// (optimal/centralized only).
	Wakeups  int `json:"wakeups"`
	Moves    int `json:"moves"`
	Resolves int `json:"resolves"`
	// MeanOnlineGWs is the time-average number of non-sleeping gateways.
	MeanOnlineGWs float64 `json:"mean_online_gws"`
	// FCT percentiles, seconds, over downlink flows (uplink flows are
	// unsimulated and excluded).
	FCTP50 float64 `json:"fct_p50"`
	FCTP95 float64 `json:"fct_p95"`
	// PowerHourly is the mean total draw of each simulated hour, watts;
	// present only when the spec requested the "power" output.
	PowerHourly []float64 `json:"power_hourly,omitempty"`

	// Robustness metrics of failure-injection campaigns. A nil
	// Availability marks a failure-free cell (the omitempty trio keeps
	// failure-free manifest rows byte-identical to pre-failure ones).
	// StrandedS is total stranded client-seconds; Availability is
	// 1 − stranded fraction ∈ [0, 1].
	StrandedS    float64  `json:"stranded_s,omitempty"`
	Reconnects   int      `json:"reconnects,omitempty"`
	Availability *float64 `json:"availability,omitempty"`

	// CollapsedClasses is the number of gateway equivalence classes of a
	// symmetry-eligible cell (0 when the cell cannot collapse). It is a
	// property of the spec — set identically under collapse auto and off —
	// never of how the cell happened to be simulated.
	CollapsedClasses int `json:"collapsed_classes,omitempty"`
}

// reduce summarizes one simulation result into its manifest row.
// withPower additionally keeps the hourly mean power series (requested by
// the "power" output). For a collapsed run every aggregate in res is
// already expanded to the full scenario by the engine; only the per-flow
// FCT list is still quotient-shaped and needs multiplicity weighting.
func reduce(c Cell, duration float64, res *sim.Result, withPower bool, f *fixture, collapsed bool) Row {
	const kWh = 3.6e6
	row := Row{
		Scenario:  c.Scenario,
		Scheme:    c.Scheme.String(),
		Seed:      c.Seed,
		EnergyKWh: res.Energy.Total() / kWh,
		UserKWh:   res.Energy.UserJ / kWh,
		ISPKWh:    res.Energy.ISPJ / kWh,
		Wakeups:   res.Wakeups,
		Moves:     res.Moves,
		Resolves:  res.Resolves,
	}
	hours := duration / 3600
	row.MeanOnlineGWs = round6(sim.MeanOver(res.OnlineGWs, 0, hours))
	if collapsed {
		row.FCTP50, row.FCTP95 = weightedFCTPercentiles(res.FCT, f.geom.flowWeights())
	} else {
		row.FCTP50, row.FCTP95 = fctPercentiles(res.FCT)
	}
	if f != nil && f.geom != nil && schemeCollapsible(c.Scheme) {
		row.CollapsedClasses = len(f.geom.q.Classes)
	}
	if res.GatewayDownTime != nil {
		row.StrandedS = round6(res.StrandedSeconds)
		row.Reconnects = res.Reconnects
		a := round6(res.Availability)
		row.Availability = &a
	}
	if withPower {
		n := int(math.Ceil(hours))
		for h := 0; h < n; h++ {
			row.PowerHourly = append(row.PowerHourly, round6(sim.MeanOver(res.PowerW, float64(h), float64(h+1))))
		}
	}
	row.EnergyKWh, row.UserKWh, row.ISPKWh = round6(row.EnergyKWh), round6(row.UserKWh), round6(row.ISPKWh)
	return row
}

// fctPercentiles returns the 50th and 95th percentile downlink flow
// completion times, ignoring the NaN entries of unsimulated uplink flows.
func fctPercentiles(fct []float64) (p50, p95 float64) {
	xs := make([]float64, 0, len(fct))
	for _, v := range fct {
		if !math.IsNaN(v) {
			xs = append(xs, v)
		}
	}
	if len(xs) == 0 {
		return 0, 0
	}
	sort.Float64s(xs)
	pick := func(q float64) float64 {
		i := int(q * float64(len(xs)-1))
		return xs[i]
	}
	return round6(pick(0.50)), round6(pick(0.95))
}

// round6 rounds to 6 significant-ish decimal digits so manifest rows and
// artifacts are stable text regardless of accumulated float formatting.
func round6(x float64) float64 {
	if x == 0 || math.IsNaN(x) || math.IsInf(x, 0) {
		return x
	}
	f, err := strconv.ParseFloat(strconv.FormatFloat(x, 'g', 6, 64), 64)
	if err != nil {
		return x
	}
	return f
}
