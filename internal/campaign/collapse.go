package campaign

import (
	"fmt"
	"math"
	"sort"

	"insomnia/internal/dsl"
	"insomnia/internal/quotient"
	"insomnia/internal/sim"
	"insomnia/internal/topology"
	"insomnia/internal/trace"
)

// Symmetry collapse: when a scenario's placement is exactly symmetric
// (trace `placement: symmetric`), gateways that serve the same number of
// clients and sit in isomorphic topology neighborhoods carry byte-identical
// workloads, so one representative per equivalence class — weighted by the
// class size — reproduces the full scenario's metrics bit-exactly (the
// engine's sim.QuotientPlan expansion). A grid city of 10k gateways
// collapses to a handful of classes, making dense sweeps 10-100x cheaper.
//
// The pass is conservative: it collapses only what is provably exact.
//
//   - Only the uncoupled schemes (no-sleep, SoI, SoI+full-switch) collapse;
//     everything with cross-gateway coupling — shared decision/wake RNG
//     streams, k-switch remap order, global re-solves — runs full.
//   - Only graph-backed topologies (grid-city, overlap) canonicalize;
//     binomial runs full.
//   - Failure-affected gateways are forced into singleton classes, with
//     the failure plan remapped onto their quotient ids, so crash and
//     outage dynamics stay per-gateway exact.
//   - Any structural doubt (partition covers nothing, round-robin client
//     invariant broken) falls back to full simulation silently.
//
// Artifacts are byte-identical under `collapse: auto` and `collapse: off`
// at every worker and shard count — pinned by TestCollapseByteIdentical.

// schemeCollapsible reports whether sc's dynamics are provably symmetric
// across equivalence classes. Must stay in sync with the schemes
// sim.Config.Quotient accepts.
func schemeCollapsible(sc sim.Scheme) bool {
	switch sc {
	case sim.NoSleep, sim.SoI, sim.SoIFullSwitch:
		return true
	}
	return false
}

// collapseGeometry is the symmetry structure of one (variant, seed) group:
// the gateway partition plus, once materialized, the quotient scenario the
// collapsible cells simulate instead of the full one.
type collapseGeometry struct {
	q *quotient.Quotient
	// failures is the group's failure plan remapped to quotient gateway
	// ids (zero when the spec has no failures block).
	failures sim.FailurePlan

	// Materialized quotient scenario (materialize): nil until a cell
	// actually runs collapsed — the class structure alone is enough for
	// the collapsed_classes column.
	tr   *trace.Trace
	tp   *topology.Topology
	plan *sim.QuotientPlan
}

// buildGeometry derives the equivalence-class structure of one (variant,
// seed) group, or nil when the spec does not admit exact collapse (not
// symmetric, no canonical graph, or nothing merges). It is a pure spec
// property — independent of the collapse mode and of the schemes — so the
// collapsed_classes column is identical whether or not collapse runs.
func buildGeometry(sp dsl.Spec, seed int64, g *topology.Graph) *collapseGeometry {
	if sp.Trace.Placement != "symmetric" || g == nil {
		return nil
	}
	nGW, nCl := sp.Trace.Gateways, sp.Trace.Clients
	var forced []bool
	var fullPlan sim.FailurePlan
	if sp.Failures != nil {
		fullPlan = failurePlan(sp, seed)
		forced = make([]bool, nGW)
		for _, c := range fullPlan.Crashes {
			forced[c.Gateway] = true
		}
		for _, o := range fullPlan.Outages {
			for gw := o.FromGW; gw < o.ToGW; gw++ {
				forced[gw] = true
			}
		}
	}
	classes := quotient.Partition(g.NeighborhoodHashes(), quotient.SymmetricCounts(nCl, nGW), forced)
	if len(classes) >= nGW {
		return nil // every class is a singleton: nothing to collapse
	}
	q, err := quotient.Build(classes, nGW, nCl)
	if err != nil {
		return nil // conservative fallback: simulate full
	}
	geom := &collapseGeometry{q: q}
	if sp.Failures != nil {
		geom.failures = remapFailures(fullPlan, q)
	}
	return geom
}

// remapFailures rewrites a full-scenario failure plan onto quotient
// gateway ids. Outage ranges become explicit gateway lists in the full
// scenario's ascending id order, so the engine's reboot-draw sequence
// (stream 0xfa11, consumed in plan order) is reproduced exactly even
// though quotient ids are not contiguous.
func remapFailures(p sim.FailurePlan, q *quotient.Quotient) sim.FailurePlan {
	out := sim.FailurePlan{RebootMeanSec: p.RebootMeanSec, RebootSigma: p.RebootSigma}
	for _, c := range p.Crashes {
		c.Gateway = int(q.FullHome[c.Gateway])
		out.Crashes = append(out.Crashes, c)
	}
	for _, o := range p.Outages {
		gws := make([]int, 0, o.ToGW-o.FromGW)
		for gw := o.FromGW; gw < o.ToGW; gw++ {
			gws = append(gws, int(q.FullHome[gw]))
		}
		out.Outages = append(out.Outages, sim.OutageWindow{
			Start: o.Start, DurationSec: o.DurationSec, Gateways: gws,
		})
	}
	return out
}

// materialize generates the quotient scenario: the collapsed trace (one
// round-robin slot set per class representative) and its edgeless
// topology, plus the engine plan mapping results back to the full shape.
func (geom *collapseGeometry) materialize(sp dsl.Spec, seed int64) error {
	cfg, err := traceConfig(sp, seed)
	if err != nil {
		return err
	}
	cfg.Clients, cfg.APs = geom.q.Clients, len(geom.q.Classes)
	tr, err := trace.Generate(cfg)
	if err != nil {
		return fmt.Errorf("campaign: quotient trace: %w", err)
	}
	// Collapsible schemes route every client to its home gateway, so the
	// quotient topology needs no edges — only the round-robin homes.
	tp, err := topology.FromOverlap(&topology.Graph{Adj: make([][]int, len(geom.q.Classes))}, tr.ClientAP)
	if err != nil {
		return err
	}
	geom.tr, geom.tp = tr, tp
	geom.plan = &sim.QuotientPlan{
		FullGateways: geom.q.FullGateways, FullClients: geom.q.FullClients,
		FullHome: geom.q.FullHome, FullClientOf: geom.q.FullClientOf(),
	}
	return nil
}

// BuildCollapsedScenario is BuildScenario's quotient counterpart for
// external harnesses (the analytic oracle's triangulation leg): it runs
// the same eligibility analysis and materialization the campaign collapse
// pass uses and returns the quotient trace, its edgeless topology, and
// the sim.QuotientPlan mapping results back onto the full scenario. When
// the spec does not admit exact collapse — placement not symmetric, no
// canonical graph, or nothing merges — it returns a nil plan and no
// error: the caller should simulate the full scenario instead. Failure
// blocks are rejected here (the campaign runner owns their remapping).
func BuildCollapsedScenario(sp dsl.Spec, seed int64) (*trace.Trace, *topology.Topology, *sim.QuotientPlan, error) {
	if sp.Failures != nil {
		return nil, nil, nil, fmt.Errorf("campaign: BuildCollapsedScenario does not remap failure plans")
	}
	g, err := buildGraph(sp, seed)
	if err != nil {
		return nil, nil, nil, err
	}
	geom := buildGeometry(sp, seed, g)
	if geom == nil {
		return nil, nil, nil, nil
	}
	if err := geom.materialize(sp, seed); err != nil {
		return nil, nil, nil, err
	}
	return geom.tr, geom.tp, geom.plan, nil
}

// collapseMode resolves the effective collapse mode: a run-time override
// ("auto"/"off") wins over the spec's collapse key; both default to auto.
// The mode never feeds the spec hash or the artifacts — it only chooses
// how eligible cells are simulated.
func collapseMode(override, spec string) string {
	if override != "" {
		return override
	}
	if spec != "" {
		return spec
	}
	return "auto"
}

// weightedFCTPercentiles mirrors fctPercentiles for a collapsed run: flow
// i stands for w[i] identical full-scenario flows, so the percentiles are
// read off the multiplicity-expanded sorted list — the exact value the
// full run's fctPercentiles would pick.
func weightedFCTPercentiles(fct, w []float64) (p50, p95 float64) {
	type vw struct{ v, w float64 }
	xs := make([]vw, 0, len(fct))
	total := 0
	for i, v := range fct {
		if !math.IsNaN(v) {
			xs = append(xs, vw{v, w[i]})
			total += int(w[i])
		}
	}
	if len(xs) == 0 {
		return 0, 0
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i].v < xs[j].v })
	pick := func(q float64) float64 {
		rank := int(q * float64(total-1))
		cum := 0
		for _, x := range xs {
			cum += int(x.w)
			if rank < cum {
				return x.v
			}
		}
		return xs[len(xs)-1].v
	}
	return round6(pick(0.50)), round6(pick(0.95))
}

// flowWeights returns each quotient flow's class multiplicity.
func (geom *collapseGeometry) flowWeights() []float64 {
	w := make([]float64, len(geom.tr.Flows))
	for i, f := range geom.tr.Flows {
		w[i] = geom.q.Weight[geom.tr.ClientAP[f.Client]]
	}
	return w
}
