package campaign

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"

	"insomnia/internal/figures"
	"insomnia/internal/runner"
	"insomnia/internal/sim"
)

// ManifestName is the checkpoint file inside the output directory.
const ManifestName = "manifest.jsonl"

// Options controls one campaign execution.
type Options struct {
	// Workers caps concurrent simulations; <=0 means GOMAXPROCS.
	Workers int
	// Shards overrides the engine shard count of every simulation
	// (sim.Config.Shards); 0 defers to the spec's shards key, and when
	// that is auto too the campaign shards each simulation over the cores
	// the worker pool leaves idle (see engineShards). Results are
	// byte-identical at every value.
	Shards int
	// OutDir receives the manifest and artifacts. Required.
	OutDir string
	// Resume skips cells already recorded in OutDir's manifest (from an
	// interrupted earlier run of the same spec). Cells whose latest
	// manifest entry is an error are re-executed, not skipped. Without
	// Resume an existing manifest is an error — a campaign does not
	// silently overwrite another's checkpoint.
	Resume bool
	// Collapse overrides the spec's collapse key: "auto" simulates
	// symmetry-eligible cells on their quotient scenario, "off" forces
	// full simulation everywhere, "" defers to the spec (whose own default
	// is auto). Artifacts are byte-identical under both modes — collapse
	// only changes how much work producing them takes.
	Collapse string
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)

	// exec overrides how each cell's simulation runs (runner.Runner.Exec);
	// nil means sim.Run. Test seam for fault injection.
	exec func(sim.Config) (*sim.Result, error)
}

// RunResult reports what a campaign execution did.
type RunResult struct {
	Rows      []Row    // one per successful cell, in cell enumeration order
	Ran       int      // cells simulated in this execution
	Skipped   int      // cells restored from the manifest
	Failed    []string // cell keys that failed even after the retry, in cell order
	Artifacts []string // files written under OutDir
}

// manifestHeader is the first line of a manifest, binding it to a spec.
type manifestHeader struct {
	Campaign string `json:"campaign"`
	Hash     string `json:"hash"`
	Version  int    `json:"version"`
}

// manifestEntry is one completed cell attempt: a reduced row on success,
// an error (panic value or sim error, stack included) on failure. A later
// entry for the same key supersedes an earlier one, so a retried cell's
// success line wins over its failure line and a cell whose latest entry
// is an error is re-executed on resume.
type manifestEntry struct {
	Key   string `json:"key"`
	Row   *Row   `json:"row,omitempty"`
	Error string `json:"error,omitempty"`
}

// Run executes the plan: it restores completed cells from the manifest
// (when resuming), simulates the remainder over the worker pool —
// checkpointing each completed cell-order prefix — and writes the spec's
// artifacts. Artifacts are byte-deterministic in (spec, seeds): worker
// count, interruption and resume cannot change them.
func (p *Plan) Run(opts Options) (*RunResult, error) {
	if opts.OutDir == "" {
		return nil, fmt.Errorf("campaign: Options.OutDir is required")
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if err := os.MkdirAll(opts.OutDir, 0o755); err != nil {
		return nil, err
	}
	manifestPath := filepath.Join(opts.OutDir, ManifestName)

	done := map[string]Row{}
	if _, err := os.Stat(manifestPath); err == nil {
		if !opts.Resume {
			return nil, fmt.Errorf("campaign: %s exists; pass -resume to continue it or choose a fresh -out", manifestPath)
		}
		var err error
		done, err = readManifest(manifestPath, p.Hash)
		if err != nil {
			return nil, err
		}
	} else if opts.Resume && !os.IsNotExist(err) {
		return nil, err
	}

	var pending []Cell
	for _, c := range p.Cells {
		if _, ok := done[c.Key()]; !ok {
			pending = append(pending, c)
		}
	}
	res := &RunResult{Ran: len(pending), Skipped: len(p.Cells) - len(pending)}
	logf("campaign %s: %d cells (%d cached, %d to run), %d variant(s)",
		p.Spec.Name, len(p.Cells), res.Skipped, res.Ran, len(p.variants))

	failed := map[string]string{}
	if len(pending) > 0 {
		var err error
		if failed, err = p.runPending(pending, done, manifestPath, opts, logf); err != nil {
			return nil, err
		}
	}

	for _, c := range p.Cells {
		row, ok := done[c.Key()]
		if !ok {
			if _, isFailed := failed[c.Key()]; isFailed {
				res.Failed = append(res.Failed, c.Key())
				continue
			}
			return nil, fmt.Errorf("campaign: cell %s missing after run", c.Key())
		}
		res.Rows = append(res.Rows, row)
	}
	if len(res.Failed) > 0 {
		logf("%d cell(s) failed after retry: %s", len(res.Failed), strings.Join(res.Failed, ", "))
	}
	arts, err := p.writeArtifacts(opts.OutDir, res.Rows, res.Failed)
	if err != nil {
		return nil, err
	}
	res.Artifacts = arts
	for _, a := range arts {
		logf("wrote %s", a)
	}
	return res, nil
}

// runPending generates the fixtures the pending cells need, simulates
// them on the worker pool and appends each completed cell-order prefix to
// the manifest. Cells whose simulation fails (error or recovered panic)
// are recorded in the manifest and retried once; the cells still failing
// after the retry come back in the returned map.
func (p *Plan) runPending(pending []Cell, done map[string]Row, manifestPath string, opts Options, logf func(string, ...any)) (map[string]string, error) {
	// Generate the fixtures the pending cells need, in parallel: fixture
	// generation is deterministic per (variant, seed) and independent, so
	// the worker pool does not have to idle behind serial trace synthesis.
	// All pending fixtures stay resident for the run — shard a campaign
	// into several specs if variants x seeds of a city-scale scenario
	// exceed memory.
	type groupKey struct {
		variant int
		seed    int64
	}
	var groups []groupKey
	for _, c := range pending {
		k := groupKey{c.variant, c.Seed}
		if len(groups) == 0 || groups[len(groups)-1] != k {
			groups = append(groups, k)
		}
	}
	// Decide per group which scenario shapes its cells need. With collapse
	// on, a group whose pending cells are all collapsible schemes never
	// generates its full city-scale trace — the bulk of the speedup on
	// symmetric sweeps.
	type needs struct{ full, quot bool }
	need := make(map[groupKey]*needs, len(groups))
	for _, c := range pending {
		k := groupKey{c.variant, c.Seed}
		n := need[k]
		if n == nil {
			n = &needs{}
			need[k] = n
		}
		mode := collapseMode(opts.Collapse, p.variants[c.variant].spec.Collapse)
		if mode == "auto" && schemeCollapsible(c.Scheme) {
			n.quot = true
		} else {
			n.full = true
		}
	}
	logf("generating %d scenario fixture(s)...", len(groups))
	fixtures := make(map[groupKey]*fixture, len(groups))
	var (
		mu  sync.Mutex
		wg  sync.WaitGroup
		sem = make(chan struct{}, genWorkers(opts.Workers, len(groups)))
	)
	errs := make([]error, len(groups))
	for i, k := range groups {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, k groupKey) {
			defer func() { <-sem; wg.Done() }()
			n := need[k]
			f, err := buildFixture(p.variants[k.variant].spec, k.seed, n.full, n.quot)
			if err != nil {
				errs[i] = fmt.Errorf("campaign: scenario %s seed %d: %w", p.variants[k.variant].label, k.seed, err)
				return
			}
			mu.Lock()
			fixtures[k] = f
			mu.Unlock()
		}(i, k)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for _, k := range groups {
		if g := fixtures[k].geom; g != nil && need[k].quot {
			logf("  scenario %s seed %d: collapsed %d gateways -> %d classes",
				p.variants[k.variant].label, k.seed, g.q.FullGateways, len(g.q.Classes))
		}
	}

	mf, err := openManifest(manifestPath, p, len(done) > 0)
	if err != nil {
		return nil, err
	}
	defer mf.Close()

	jobs := make([]runner.Job, len(pending))
	collapsed := make([]bool, len(pending))
	for i, c := range pending {
		v := p.variants[c.variant].spec
		f := fixtures[groupKey{c.variant, c.Seed}]
		mode := collapseMode(opts.Collapse, v.Collapse)
		collapsed[i] = mode == "auto" && schemeCollapsible(c.Scheme) && f.geom != nil
		cfg := simConfig(v, f, c, collapsed[i])
		cfg.Shards = engineShards(opts.Shards, v.Shards, opts.Workers, len(pending))
		jobs[i] = runner.Job{Name: c.Key(), Config: cfg}
	}
	withPower := p.Spec.HasOutput("power")
	enc := json.NewEncoder(mf)
	var emitErr error
	// emit checkpoints one outcome: a row entry on success, an error entry
	// on failure (so an interrupted run re-executes the cell on resume).
	emit := func(i int, c Cell, o runner.Outcome) bool {
		if emitErr != nil {
			return false
		}
		e := manifestEntry{Key: c.Key()}
		if o.Err != nil {
			e.Error = o.Err.Error()
		} else {
			f := fixtures[groupKey{c.variant, c.Seed}]
			row := reduce(c, p.variants[c.variant].spec.Duration, o.Result, withPower, f, collapsed[i])
			done[c.Key()] = row
			e.Row = &row
		}
		if err := enc.Encode(e); err != nil {
			emitErr = err
			return false
		}
		if err := mf.Flush(); err != nil {
			emitErr = err
			return false
		}
		return o.Err == nil
	}
	pool := runner.Runner{Workers: opts.Workers, Exec: opts.exec}
	var failedIdx []int
	pool.RunStream(jobs, func(i int, o runner.Outcome) {
		c := pending[i]
		if !emit(i, c, o) {
			if o.Err != nil && emitErr == nil {
				failedIdx = append(failedIdx, i)
				logf("  [%d/%d] %s FAILED: %s", len(done), len(p.Cells), c.Key(), firstLine(o.Err.Error()))
			}
			return
		}
		logf("  [%d/%d] %s", len(done), len(p.Cells), c.Key())
	})
	if emitErr != nil {
		return nil, fmt.Errorf("campaign: checkpoint: %w", emitErr)
	}
	// One retry for the failed cells: transient faults (a poisoned worker,
	// an OOM-killed shard) get a second chance; deterministic failures fail
	// again and are surfaced instead of aborting the whole campaign.
	failed := map[string]string{}
	if len(failedIdx) > 0 {
		logf("retrying %d failed cell(s)...", len(failedIdx))
		retry := make([]runner.Job, len(failedIdx))
		for ri, i := range failedIdx {
			retry[ri] = jobs[i]
		}
		pool.RunStream(retry, func(ri int, o runner.Outcome) {
			i := failedIdx[ri]
			c := pending[i]
			if emit(i, c, o) {
				logf("  [%d/%d] %s (retry)", len(done), len(p.Cells), c.Key())
			} else if o.Err != nil && emitErr == nil {
				failed[c.Key()] = o.Err.Error()
			}
		})
		if emitErr != nil {
			return nil, fmt.Errorf("campaign: checkpoint: %w", emitErr)
		}
	}
	return failed, mf.Sync()
}

// firstLine truncates an error to its first line: the deterministic part
// of a recovered panic (the stack below varies by goroutine).
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// engineShards resolves one simulation's engine shard count: an explicit
// run-time override wins, then the spec's shards key; when both are auto
// the campaign gives each simulation only the cores its worker pool
// leaves idle — with enough cells, cell-level parallelism already
// saturates the machine and intra-sim sharding would just oversubscribe.
func engineShards(override, spec, workers, cells int) int {
	if override > 0 {
		return override
	}
	if spec > 0 {
		return spec
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if cells > 0 && cells < workers {
		workers = cells
	}
	if per := runtime.GOMAXPROCS(0) / workers; per >= 2 {
		return per
	}
	return 1
}

// genWorkers bounds fixture-generation concurrency like the runner
// bounds simulation concurrency.
func genWorkers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// flushFile is an os.File behind a bufio.Writer with checkpoint-grained
// flushing.
type flushFile struct {
	f *os.File
	w *bufio.Writer
}

func (ff *flushFile) Write(p []byte) (int, error) { return ff.w.Write(p) }
func (ff *flushFile) Flush() error                { return ff.w.Flush() }
func (ff *flushFile) Sync() error {
	if err := ff.w.Flush(); err != nil {
		return err
	}
	return ff.f.Sync()
}
func (ff *flushFile) Close() error {
	ff.w.Flush()
	return ff.f.Close()
}

// openManifest opens the checkpoint for appending, writing the header
// when the file is fresh.
func openManifest(path string, p *Plan, resuming bool) (*flushFile, error) {
	flags := os.O_CREATE | os.O_WRONLY | os.O_APPEND
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, err
	}
	ff := &flushFile{f: f, w: bufio.NewWriter(f)}
	if !resuming {
		if st, err := f.Stat(); err == nil && st.Size() == 0 {
			hdr := manifestHeader{Campaign: p.Spec.Name, Hash: p.Hash, Version: 1}
			if err := json.NewEncoder(ff).Encode(hdr); err != nil {
				f.Close()
				return nil, err
			}
			if err := ff.Sync(); err != nil {
				f.Close()
				return nil, err
			}
		}
	}
	return ff, nil
}

// readManifest loads a checkpoint, verifying it belongs to the same spec.
// A torn final line (the process died mid-append) is tolerated and
// dropped; corruption anywhere else is an error.
func readManifest(path, wantHash string) (map[string]Row, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("campaign: %s: empty manifest", path)
	}
	var hdr manifestHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("campaign: %s: bad manifest header: %w", path, err)
	}
	if hdr.Hash != wantHash {
		return nil, fmt.Errorf("campaign: %s belongs to a different spec (hash %s, want %s); use a fresh -out", path, hdr.Hash, wantHash)
	}
	done := map[string]Row{}
	var pendingErr error
	for sc.Scan() {
		if pendingErr != nil {
			return nil, pendingErr // corrupt line that was not the last
		}
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e manifestEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			pendingErr = fmt.Errorf("campaign: %s: corrupt manifest entry: %w", path, err)
			continue
		}
		// Entries apply in file order: a failure entry voids any earlier
		// success (the cell re-runs), a retried cell's success wins back.
		if e.Row == nil {
			delete(done, e.Key)
			continue
		}
		done[e.Key] = *e.Row
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return done, nil
}

// writeArtifacts renders the requested artifacts from the full row set,
// in cell order. All output is deterministic text.
func (p *Plan) writeArtifacts(dir string, rows []Row, failed []string) ([]string, error) {
	var arts []string
	write := func(name string, fn func(io.Writer) error) error {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		arts = append(arts, path)
		return nil
	}
	if p.Spec.HasOutput("summary") {
		if err := write("summary.csv", func(w io.Writer) error { return writeSummaryCSV(w, rows) }); err != nil {
			return nil, err
		}
	}
	if p.Spec.HasOutput("json") {
		if err := write("results.json", func(w io.Writer) error { return p.writeResultsJSON(w, rows, failed) }); err != nil {
			return nil, err
		}
	}
	if p.Spec.HasOutput("power") {
		if err := write("power.csv", func(w io.Writer) error { return writePowerCSV(w, rows) }); err != nil {
			return nil, err
		}
	}
	return arts, nil
}

// writeSummaryCSV writes one row per cell. The savings column compares
// each cell against the no-sleep cell of the same (scenario, seed) when
// the campaign includes one; baseline rows read 0 and campaigns without a
// baseline leave the column blank.
func writeSummaryCSV(w io.Writer, rows []Row) error {
	base := map[string]float64{}
	for _, r := range rows {
		if r.Scheme == sim.NoSleep.String() {
			base[r.Scenario+"|"+strconv.FormatInt(r.Seed, 10)] = r.EnergyKWh
		}
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"scenario", "scheme", "seed", "energy_kwh", "user_kwh", "isp_kwh",
		"savings_pct", "wakeups", "moves", "resolves", "mean_online_gws", "fct_p50_s", "fct_p95_s",
		"stranded_s", "reconnects", "availability", "collapsed_classes",
	}); err != nil {
		return err
	}
	for _, r := range rows {
		savings := ""
		if b, ok := base[r.Scenario+"|"+strconv.FormatInt(r.Seed, 10)]; ok && b > 0 {
			savings = fmtF(round6((1 - r.EnergyKWh/b) * 100))
		}
		// Robustness columns stay blank for failure-free cells, like the
		// savings column does for campaigns without a baseline.
		stranded, reconn, avail := "", "", ""
		if r.Availability != nil {
			stranded = fmtF(r.StrandedS)
			reconn = strconv.Itoa(r.Reconnects)
			avail = fmtF(*r.Availability)
		}
		classes := ""
		if r.CollapsedClasses > 0 {
			classes = strconv.Itoa(r.CollapsedClasses)
		}
		rec := []string{
			r.Scenario, r.Scheme, strconv.FormatInt(r.Seed, 10),
			fmtF(r.EnergyKWh), fmtF(r.UserKWh), fmtF(r.ISPKWh), savings,
			strconv.Itoa(r.Wakeups), strconv.Itoa(r.Moves), strconv.Itoa(r.Resolves),
			fmtF(r.MeanOnlineGWs), fmtF(r.FCTP50), fmtF(r.FCTP95),
			stranded, reconn, avail, classes,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// resultsJSON is the deterministic results.json shape. No timestamps: two
// runs of the same spec must produce identical bytes.
type resultsJSON struct {
	Campaign string   `json:"campaign"`
	Hash     string   `json:"hash"`
	Cells    int      `json:"cells"`
	Failed   []string `json:"failed,omitempty"` // cells with no result after the retry
	Rows     []Row    `json:"rows"`
}

func (p *Plan) writeResultsJSON(w io.Writer, rows []Row, failed []string) error {
	// Strip the bulky hourly series from the JSON rows; it has its own
	// artifact (power.csv) when requested.
	slim := make([]Row, len(rows))
	for i, r := range rows {
		r.PowerHourly = nil
		slim[i] = r
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(resultsJSON{Campaign: p.Spec.Name, Hash: p.Hash, Cells: len(rows), Failed: failed, Rows: slim})
}

// writePowerCSV renders every cell's hourly mean power as one series
// column over a shared hour axis, via the figures CSV writer.
func writePowerCSV(w io.Writer, rows []Row) error {
	var series []figures.Series
	for _, r := range rows {
		s := figures.Series{Name: fmt.Sprintf("%s/%s/seed%d", r.Scenario, r.Scheme, r.Seed)}
		for h, v := range r.PowerHourly {
			s.X = append(s.X, float64(h))
			s.Y = append(s.Y, v)
		}
		series = append(series, s)
	}
	return figures.WriteSeriesCSV(w, "hour", series)
}

func fmtF(x float64) string { return strconv.FormatFloat(x, 'g', -1, 64) }
