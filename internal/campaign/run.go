package campaign

import (
	"bufio"
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"

	"insomnia/internal/figures"
	"insomnia/internal/runner"
	"insomnia/internal/sim"
)

// ManifestName is the checkpoint file inside the output directory.
const ManifestName = "manifest.jsonl"

// Options controls one campaign job.
type Options struct {
	// Workers caps the job's concurrent simulations; <=0 first defers to
	// the spec's workers key, then to GOMAXPROCS.
	Workers int
	// Budget, when non-nil, is a shared concurrency ceiling across jobs
	// (runner.Budget): however many campaigns are in flight, the sum of
	// their running simulations never exceeds Budget.Slots(). Workers
	// still caps this job alone.
	Budget *runner.Budget
	// Shards overrides the engine shard count of every simulation
	// (sim.Config.Shards); 0 defers to the spec's shards key, and when
	// that is auto too the campaign shards each simulation over the cores
	// the worker pool leaves idle (see engineShards). Results are
	// byte-identical at every value.
	Shards int
	// OutDir receives the manifest and artifacts. Required.
	OutDir string
	// Resume skips cells already recorded in OutDir's manifest (from an
	// interrupted earlier run of the same spec). Cells whose latest
	// manifest entry is an error are re-executed, not skipped. Without
	// Resume an existing manifest is an ErrManifestConflict — a campaign
	// does not silently overwrite another's checkpoint.
	Resume bool
	// Collapse overrides the spec's collapse key: "auto" simulates
	// symmetry-eligible cells on their quotient scenario, "off" forces
	// full simulation everywhere, "" defers to the spec (whose own default
	// is auto). Artifacts are byte-identical under both modes — collapse
	// only changes how much work producing them takes.
	Collapse string

	// exec overrides how each cell's simulation runs (runner.Runner.Exec);
	// nil means sim.RunContext. Test seam for fault injection.
	exec func(ctx context.Context, cfg sim.Config) (*sim.Result, error)
}

// RunResult reports what a campaign job did.
type RunResult struct {
	Rows      []Row          // one per successful cell, in cell enumeration order
	Ran       int            // cells simulated in this execution
	Skipped   int            // cells restored from the manifest
	Failed    []string       // cell keys that failed even after the retry, in cell order
	Artifacts []string       // files written under OutDir
	Collapsed []CollapseNote // scenario groups simulated on their symmetry quotient
}

// manifestHeader is the first line of a manifest, binding it to a spec.
type manifestHeader struct {
	Campaign string `json:"campaign"`
	Hash     string `json:"hash"`
	Version  int    `json:"version"`
}

// manifestEntry is one completed cell attempt: a reduced row on success,
// an error (panic value or sim error, stack included) on failure. A later
// entry for the same key supersedes an earlier one, so a retried cell's
// success line wins over its failure line and a cell whose latest entry
// is an error is re-executed on resume.
type manifestEntry struct {
	Key   string `json:"key"`
	Row   *Row   `json:"row,omitempty"`
	Error string `json:"error,omitempty"`
}

// firstLine truncates an error to its first line: the deterministic part
// of a recovered panic (the stack below varies by goroutine).
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// engineShards resolves one simulation's engine shard count: an explicit
// run-time override wins, then the spec's shards key; when both are auto
// the campaign gives each simulation only the cores its worker pool
// leaves idle — with enough cells, cell-level parallelism already
// saturates the machine and intra-sim sharding would just oversubscribe.
func engineShards(override, spec, workers, cells int) int {
	if override > 0 {
		return override
	}
	if spec > 0 {
		return spec
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if cells > 0 && cells < workers {
		workers = cells
	}
	if per := runtime.GOMAXPROCS(0) / workers; per >= 2 {
		return per
	}
	return 1
}

// genWorkers bounds fixture-generation concurrency like the runner
// bounds simulation concurrency.
func genWorkers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// flushFile is an os.File behind a bufio.Writer with checkpoint-grained
// flushing.
type flushFile struct {
	f *os.File
	w *bufio.Writer
}

func (ff *flushFile) Write(p []byte) (int, error) { return ff.w.Write(p) }
func (ff *flushFile) Flush() error                { return ff.w.Flush() }
func (ff *flushFile) Sync() error {
	if err := ff.w.Flush(); err != nil {
		return err
	}
	return ff.f.Sync()
}
func (ff *flushFile) Close() error {
	ff.w.Flush()
	return ff.f.Close()
}

// openManifest opens the checkpoint for appending, writing the header
// when the file is fresh.
func openManifest(path string, p *Plan, resuming bool) (*flushFile, error) {
	flags := os.O_CREATE | os.O_WRONLY | os.O_APPEND
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, err
	}
	ff := &flushFile{f: f, w: bufio.NewWriter(f)}
	if !resuming {
		if st, err := f.Stat(); err == nil && st.Size() == 0 {
			hdr := manifestHeader{Campaign: p.Spec.Name, Hash: p.Hash, Version: 1}
			if err := json.NewEncoder(ff).Encode(hdr); err != nil {
				f.Close()
				return nil, err
			}
			if err := ff.Sync(); err != nil {
				f.Close()
				return nil, err
			}
		}
	}
	return ff, nil
}

// readManifest loads a checkpoint, verifying it belongs to the same spec.
// A torn final line (the process died mid-append) is tolerated and
// dropped; corruption anywhere else is an error.
func readManifest(path, wantHash string) (map[string]Row, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("campaign: %s: empty manifest", path)
	}
	var hdr manifestHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("campaign: %s: bad manifest header: %w", path, err)
	}
	if hdr.Hash != wantHash {
		return nil, fmt.Errorf("%w: %s belongs to a different spec (hash %s, want %s); use a fresh -out", ErrManifestConflict, path, hdr.Hash, wantHash)
	}
	done := map[string]Row{}
	var pendingErr error
	for sc.Scan() {
		if pendingErr != nil {
			return nil, pendingErr // corrupt line that was not the last
		}
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e manifestEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			pendingErr = fmt.Errorf("campaign: %s: corrupt manifest entry: %w", path, err)
			continue
		}
		// Entries apply in file order: a failure entry voids any earlier
		// success (the cell re-runs), a retried cell's success wins back.
		if e.Row == nil {
			delete(done, e.Key)
			continue
		}
		done[e.Key] = *e.Row
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return done, nil
}

// writeArtifacts renders the requested artifacts from the full row set,
// in cell order. All output is deterministic text.
func (p *Plan) writeArtifacts(dir string, rows []Row, failed []string) ([]string, error) {
	var arts []string
	write := func(name string, fn func(io.Writer) error) error {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		arts = append(arts, path)
		return nil
	}
	if p.Spec.HasOutput("summary") {
		if err := write("summary.csv", func(w io.Writer) error { return writeSummaryCSV(w, rows) }); err != nil {
			return nil, err
		}
	}
	if p.Spec.HasOutput("json") {
		if err := write("results.json", func(w io.Writer) error { return p.writeResultsJSON(w, rows, failed) }); err != nil {
			return nil, err
		}
	}
	if p.Spec.HasOutput("power") {
		if err := write("power.csv", func(w io.Writer) error { return writePowerCSV(w, rows) }); err != nil {
			return nil, err
		}
	}
	return arts, nil
}

// writeSummaryCSV writes one row per cell. The savings column compares
// each cell against the no-sleep cell of the same (scenario, seed) when
// the campaign includes one; baseline rows read 0 and campaigns without a
// baseline leave the column blank.
func writeSummaryCSV(w io.Writer, rows []Row) error {
	base := map[string]float64{}
	for _, r := range rows {
		if r.Scheme == sim.NoSleep.String() {
			base[r.Scenario+"|"+strconv.FormatInt(r.Seed, 10)] = r.EnergyKWh
		}
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"scenario", "scheme", "seed", "energy_kwh", "user_kwh", "isp_kwh",
		"savings_pct", "wakeups", "moves", "resolves", "mean_online_gws", "fct_p50_s", "fct_p95_s",
		"stranded_s", "reconnects", "availability", "collapsed_classes",
	}); err != nil {
		return err
	}
	for _, r := range rows {
		savings := ""
		if b, ok := base[r.Scenario+"|"+strconv.FormatInt(r.Seed, 10)]; ok && b > 0 {
			savings = fmtF(round6((1 - r.EnergyKWh/b) * 100))
		}
		// Robustness columns stay blank for failure-free cells, like the
		// savings column does for campaigns without a baseline.
		stranded, reconn, avail := "", "", ""
		if r.Availability != nil {
			stranded = fmtF(r.StrandedS)
			reconn = strconv.Itoa(r.Reconnects)
			avail = fmtF(*r.Availability)
		}
		classes := ""
		if r.CollapsedClasses > 0 {
			classes = strconv.Itoa(r.CollapsedClasses)
		}
		rec := []string{
			r.Scenario, r.Scheme, strconv.FormatInt(r.Seed, 10),
			fmtF(r.EnergyKWh), fmtF(r.UserKWh), fmtF(r.ISPKWh), savings,
			strconv.Itoa(r.Wakeups), strconv.Itoa(r.Moves), strconv.Itoa(r.Resolves),
			fmtF(r.MeanOnlineGWs), fmtF(r.FCTP50), fmtF(r.FCTP95),
			stranded, reconn, avail, classes,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// resultsJSON is the deterministic results.json shape. No timestamps: two
// runs of the same spec must produce identical bytes.
type resultsJSON struct {
	Campaign string   `json:"campaign"`
	Hash     string   `json:"hash"`
	Cells    int      `json:"cells"`
	Failed   []string `json:"failed,omitempty"` // cells with no result after the retry
	Rows     []Row    `json:"rows"`
}

func (p *Plan) writeResultsJSON(w io.Writer, rows []Row, failed []string) error {
	// Strip the bulky hourly series from the JSON rows; it has its own
	// artifact (power.csv) when requested.
	slim := make([]Row, len(rows))
	for i, r := range rows {
		r.PowerHourly = nil
		slim[i] = r
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(resultsJSON{Campaign: p.Spec.Name, Hash: p.Hash, Cells: len(rows), Failed: failed, Rows: slim})
}

// writePowerCSV renders every cell's hourly mean power as one series
// column over a shared hour axis, via the figures CSV writer.
func writePowerCSV(w io.Writer, rows []Row) error {
	var series []figures.Series
	for _, r := range rows {
		s := figures.Series{Name: fmt.Sprintf("%s/%s/seed%d", r.Scenario, r.Scheme, r.Seed)}
		for h, v := range r.PowerHourly {
			s.X = append(s.X, float64(h))
			s.Y = append(s.Y, v)
		}
		series = append(series, s)
	}
	return figures.WriteSeriesCSV(w, "hour", series)
}

func fmtF(x float64) string { return strconv.FormatFloat(x, 'g', -1, 64) }
