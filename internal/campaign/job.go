package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"insomnia/internal/dsl"
	"insomnia/internal/runner"
)

// RowEvent is one cell-level progress event on Job.Rows. Events arrive in
// cell enumeration order: first every cell restored from the manifest
// (Cached), then each simulated cell as soon as all earlier pending cells
// have also completed (the runner's in-order-prefix guarantee), then —
// only when first attempts failed — the retry outcomes (Retry). A cell
// carries either a Row or an Err, never both.
type RowEvent struct {
	// Index is the cell's position in Plan.Cells enumeration order.
	Index int `json:"index"`
	// Key is the cell's manifest key, e.g. "base|SoI|1"; Scenario,
	// Scheme and Seed are its components, split out for consumers.
	Key      string `json:"key"`
	Scenario string `json:"scenario"`
	Scheme   string `json:"scheme"`
	Seed     int64  `json:"seed"`
	// Row is the reduced result of a successful cell.
	Row *Row `json:"row,omitempty"`
	// Err is the first line of a failed cell's error (the deterministic
	// part of a recovered panic).
	Err string `json:"error,omitempty"`
	// Cached marks a cell restored from the manifest instead of simulated.
	Cached bool `json:"cached,omitempty"`
	// Retry marks the outcome of a failed cell's second attempt.
	Retry bool `json:"retry,omitempty"`
	// Done counts cells with a successful row so far; Total is
	// len(Plan.Cells).
	Done  int `json:"done"`
	Total int `json:"total"`
}

// CollapseNote records one scenario group's symmetry collapse: the group
// was simulated on Classes representative gateways instead of
// FullGateways. Notes appear in RunResult.Collapsed in group enumeration
// order, only for groups whose pending cells actually ran collapsed.
type CollapseNote struct {
	Scenario     string `json:"scenario"`
	Seed         int64  `json:"seed"`
	FullGateways int    `json:"full_gateways"`
	Classes      int    `json:"classes"`
}

// Job is one asynchronously executing campaign. Submit starts it; the
// caller observes progress on Rows, cancels with Cancel, and collects the
// final result with Wait. A Job is safe for concurrent use.
type Job struct {
	plan   *Plan
	rows   chan RowEvent
	cancel context.CancelFunc
	done   chan struct{}

	mu  sync.Mutex
	res *RunResult
	err error
}

// Submit compiles the spec and starts it as a job. It is the programmatic
// equivalent of `campaign run`: validation and output-directory conflicts
// surface synchronously (wrapping ErrSpecInvalid / ErrManifestConflict),
// everything slower — fixture generation, simulation, artifact writing —
// runs in the background. See Plan.Submit for the execution contract.
func Submit(ctx context.Context, spec dsl.Spec, opts Options) (*Job, error) {
	plan, err := Compile(spec)
	if err != nil {
		return nil, err
	}
	return plan.Submit(ctx, opts)
}

// Submit starts the compiled plan as a job.
//
// The job restores completed cells from OutDir's manifest (when resuming),
// simulates the remainder over the worker pool — checkpointing each
// completed cell-order prefix — and writes the spec's artifacts.
// Artifacts are byte-deterministic in (spec, seeds): worker count, shared
// Budget contention, interruption, cancellation and resume cannot change
// a single byte of them.
//
// Cancellation — Job.Cancel or ctx — stops the job promptly: queued cells
// never start, in-flight simulations abort at their next epoch barrier,
// and Wait returns an error wrapping ErrCanceled. The manifest keeps every
// completed cell, so resubmitting with Options.Resume continues where the
// job stopped.
//
// Rows is buffered for the job's worst-case event count: the job never
// blocks on a slow (or absent) consumer, so Wait alone is a valid way to
// use a Job.
func (p *Plan) Submit(ctx context.Context, opts Options) (*Job, error) {
	if opts.OutDir == "" {
		return nil, fmt.Errorf("campaign: Options.OutDir is required")
	}
	if opts.Workers == 0 {
		opts.Workers = p.Spec.Workers
	}
	if err := os.MkdirAll(opts.OutDir, 0o755); err != nil {
		return nil, err
	}
	manifestPath := filepath.Join(opts.OutDir, ManifestName)

	done := map[string]Row{}
	if _, err := os.Stat(manifestPath); err == nil {
		if !opts.Resume {
			return nil, fmt.Errorf("%w: %s exists; pass -resume to continue it or choose a fresh -out", ErrManifestConflict, manifestPath)
		}
		var err error
		done, err = readManifest(manifestPath, p.Hash)
		if err != nil {
			return nil, err
		}
	} else if opts.Resume && !os.IsNotExist(err) {
		return nil, err
	}

	var pending []Cell
	for _, c := range p.Cells {
		if _, ok := done[c.Key()]; !ok {
			pending = append(pending, c)
		}
	}

	jctx, cancel := context.WithCancel(ctx)
	j := &Job{
		plan: p,
		// Worst case: every cached cell + every pending first attempt +
		// every pending retried. Sized so sends below never block.
		rows:   make(chan RowEvent, len(done)+2*len(pending)+1),
		cancel: cancel,
		done:   make(chan struct{}),
	}
	go j.execute(jctx, done, pending, manifestPath, opts)
	return j, nil
}

// Plan returns the compiled plan the job executes.
func (j *Job) Plan() *Plan { return j.plan }

// Rows returns the job's progress stream. The channel delivers RowEvents
// in cell order (see RowEvent) and closes when the job finishes — after
// the last cell outcome, or early on cancellation. The channel is buffered
// for the job's full event count: reading it is optional.
func (j *Job) Rows() <-chan RowEvent { return j.rows }

// Done returns a channel closed when the job has finished (any outcome).
func (j *Job) Done() <-chan struct{} { return j.done }

// Cancel requests the job stop. Queued cells never start; in-flight
// simulations abort at their next epoch barrier; pool and Budget slots are
// released. Completed cells stay checkpointed in the manifest. Cancel is
// idempotent and safe after completion (where it has no effect).
func (j *Job) Cancel() { j.cancel() }

// Wait blocks until the job finishes and returns its result.
//
//   - success: (*RunResult, nil)
//   - canceled: (nil, error wrapping ErrCanceled)
//   - cells failed after retry: (*RunResult, error wrapping ErrCellsFailed)
//     — the result IS valid: successful rows and artifacts were written,
//     RunResult.Failed names the failed cells
//   - infrastructure fault (checkpoint or artifact I/O): (nil, error)
func (j *Job) Wait() (*RunResult, error) {
	<-j.done
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.res, j.err
}

// finish records the job's outcome and releases Wait and Rows consumers.
func (j *Job) finish(res *RunResult, err error) {
	j.mu.Lock()
	j.res, j.err = res, err
	j.mu.Unlock()
	j.cancel() // release the context's resources; no-op for the run itself
	close(j.rows)
	close(j.done)
}

// event emits one RowEvent; sends never block (see Submit's buffer sizing).
func (j *Job) event(c Cell, row *Row, errMsg string, cached, retry bool, done int) {
	j.rows <- RowEvent{
		Index: c.Index, Key: c.Key(),
		Scenario: c.Scenario, Scheme: c.Scheme.String(), Seed: c.Seed,
		Row: row, Err: errMsg, Cached: cached, Retry: retry,
		Done: done, Total: len(j.plan.Cells),
	}
}

// execute is the job body: replay cached cells, simulate the pending ones,
// assemble rows and write artifacts.
func (j *Job) execute(ctx context.Context, done map[string]Row, pending []Cell, manifestPath string, opts Options) {
	p := j.plan
	res := &RunResult{Ran: len(pending), Skipped: len(p.Cells) - len(pending)}

	// Replay the restored prefix so a Rows consumer (the server's SSE
	// stream of a resumed job) sees every cell, not just the fresh ones.
	for _, c := range p.Cells {
		if row, ok := done[c.Key()]; ok {
			row := row
			j.event(c, &row, "", true, false, len(done))
		}
	}

	failed := map[string]string{}
	if len(pending) > 0 {
		var err error
		if failed, err = j.runPending(ctx, res, pending, done, manifestPath, opts); err != nil {
			j.finish(nil, err)
			return
		}
	}
	if err := ctx.Err(); err != nil {
		j.finish(nil, fmt.Errorf("%w: %v", ErrCanceled, context.Cause(ctx)))
		return
	}

	for _, c := range p.Cells {
		row, ok := done[c.Key()]
		if !ok {
			if _, isFailed := failed[c.Key()]; isFailed {
				res.Failed = append(res.Failed, c.Key())
				continue
			}
			j.finish(nil, fmt.Errorf("campaign: cell %s missing after run", c.Key()))
			return
		}
		res.Rows = append(res.Rows, row)
	}
	arts, err := p.writeArtifacts(opts.OutDir, res.Rows, res.Failed)
	if err != nil {
		j.finish(nil, err)
		return
	}
	res.Artifacts = arts
	if len(res.Failed) > 0 {
		j.finish(res, fmt.Errorf("%w: %d cell(s) failed after retry: %s",
			ErrCellsFailed, len(res.Failed), strings.Join(res.Failed, ", ")))
		return
	}
	j.finish(res, nil)
}

// runPending generates the fixtures the pending cells need, simulates
// them on the worker pool and appends each completed cell-order prefix to
// the manifest. Cells whose simulation fails (error or recovered panic)
// are recorded in the manifest and retried once; the cells still failing
// after the retry come back in the returned map. A canceled run returns
// early with no error — the caller turns ctx state into ErrCanceled.
func (j *Job) runPending(ctx context.Context, res *RunResult, pending []Cell, done map[string]Row, manifestPath string, opts Options) (map[string]string, error) {
	p := j.plan
	fixtures, need, groups, err := p.buildFixtures(ctx, pending, opts)
	if err != nil {
		return nil, err
	}
	for _, k := range groups {
		if g := fixtures[k].geom; g != nil && need[k].quot {
			res.Collapsed = append(res.Collapsed, CollapseNote{
				Scenario: p.variants[k.variant].label, Seed: k.seed,
				FullGateways: g.q.FullGateways, Classes: len(g.q.Classes),
			})
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, nil
	}

	mf, err := openManifest(manifestPath, p, len(done) > 0)
	if err != nil {
		return nil, err
	}
	defer mf.Close()

	jobs := make([]runner.Job, len(pending))
	collapsed := make([]bool, len(pending))
	for i, c := range pending {
		v := p.variants[c.variant].spec
		f := fixtures[groupKey{c.variant, c.Seed}]
		mode := collapseMode(opts.Collapse, v.Collapse)
		collapsed[i] = mode == "auto" && schemeCollapsible(c.Scheme) && f.geom != nil
		cfg := simConfig(v, f, c, collapsed[i])
		cfg.Shards = engineShards(opts.Shards, v.Shards, opts.Workers, len(pending))
		jobs[i] = runner.Job{Name: c.Key(), Config: cfg}
	}
	withPower := p.Spec.HasOutput("power")
	enc := json.NewEncoder(mf)
	var emitErr error
	// emit checkpoints one outcome: a row entry on success, an error entry
	// on failure (so an interrupted run re-executes the cell on resume) —
	// and then publishes the matching RowEvent. Outcomes that merely report
	// the run's own cancellation are not cell failures and are dropped.
	emit := func(i int, c Cell, o runner.Outcome, retry bool) bool {
		if emitErr != nil || (o.Err != nil && errors.Is(o.Err, context.Canceled)) {
			return false
		}
		e := manifestEntry{Key: c.Key()}
		var row *Row
		if o.Err != nil {
			e.Error = o.Err.Error()
		} else {
			f := fixtures[groupKey{c.variant, c.Seed}]
			r := reduce(c, p.variants[c.variant].spec.Duration, o.Result, withPower, f, collapsed[i])
			done[c.Key()] = r
			e.Row = &r
			row = &r
		}
		if err := enc.Encode(e); err != nil {
			emitErr = err
			return false
		}
		if err := mf.Flush(); err != nil {
			emitErr = err
			return false
		}
		if o.Err != nil {
			j.event(c, nil, firstLine(o.Err.Error()), false, retry, len(done))
			return false
		}
		j.event(c, row, "", false, retry, len(done))
		return true
	}
	pool := runner.Runner{Workers: opts.Workers, Budget: opts.Budget, Exec: opts.exec}
	var failedIdx []int
	for d := range pool.RunStream(ctx, jobs) {
		if !emit(d.Index, pending[d.Index], d.Outcome, false) {
			if d.Err != nil && emitErr == nil && !errors.Is(d.Err, context.Canceled) {
				failedIdx = append(failedIdx, d.Index)
			}
		}
	}
	if emitErr != nil {
		return nil, fmt.Errorf("campaign: checkpoint: %w", emitErr)
	}
	if ctx.Err() != nil {
		return nil, mf.Sync()
	}
	// One retry for the failed cells: transient faults (a poisoned worker,
	// an OOM-killed shard) get a second chance; deterministic failures fail
	// again and are surfaced instead of aborting the whole campaign.
	failed := map[string]string{}
	if len(failedIdx) > 0 {
		retry := make([]runner.Job, len(failedIdx))
		for ri, i := range failedIdx {
			retry[ri] = jobs[i]
		}
		for d := range pool.RunStream(ctx, retry) {
			i := failedIdx[d.Index]
			if !emit(i, pending[i], d.Outcome, true) {
				if d.Err != nil && emitErr == nil && !errors.Is(d.Err, context.Canceled) {
					failed[pending[i].Key()] = d.Err.Error()
				}
			}
		}
		if emitErr != nil {
			return nil, fmt.Errorf("campaign: checkpoint: %w", emitErr)
		}
	}
	return failed, mf.Sync()
}

// groupKey identifies one (variant, seed) fixture group.
type groupKey struct {
	variant int
	seed    int64
}

// buildFixtures generates the scenario fixtures the pending cells need, in
// parallel: fixture generation is deterministic per (variant, seed) and
// independent, so the worker pool does not have to idle behind serial
// trace synthesis. All pending fixtures stay resident for the run — shard
// a campaign into several specs if variants x seeds of a city-scale
// scenario exceed memory.
func (p *Plan) buildFixtures(ctx context.Context, pending []Cell, opts Options) (map[groupKey]*fixture, map[groupKey]*needs, []groupKey, error) {
	var groups []groupKey
	for _, c := range pending {
		k := groupKey{c.variant, c.Seed}
		if len(groups) == 0 || groups[len(groups)-1] != k {
			groups = append(groups, k)
		}
	}
	// Decide per group which scenario shapes its cells need. With collapse
	// on, a group whose pending cells are all collapsible schemes never
	// generates its full city-scale trace — the bulk of the speedup on
	// symmetric sweeps.
	need := make(map[groupKey]*needs, len(groups))
	for _, c := range pending {
		k := groupKey{c.variant, c.Seed}
		n := need[k]
		if n == nil {
			n = &needs{}
			need[k] = n
		}
		mode := collapseMode(opts.Collapse, p.variants[c.variant].spec.Collapse)
		if mode == "auto" && schemeCollapsible(c.Scheme) {
			n.quot = true
		} else {
			n.full = true
		}
	}
	fixtures := make(map[groupKey]*fixture, len(groups))
	var (
		mu  sync.Mutex
		wg  sync.WaitGroup
		sem = make(chan struct{}, genWorkers(opts.Workers, len(groups)))
	)
	errs := make([]error, len(groups))
	for i, k := range groups {
		if ctx.Err() != nil {
			break // canceled: skip the not-yet-started groups
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, k groupKey) {
			defer func() { <-sem; wg.Done() }()
			n := need[k]
			f, err := buildFixture(p.variants[k.variant].spec, k.seed, n.full, n.quot)
			if err != nil {
				errs[i] = fmt.Errorf("campaign: scenario %s seed %d: %w", p.variants[k.variant].label, k.seed, err)
				return
			}
			mu.Lock()
			fixtures[k] = f
			mu.Unlock()
		}(i, k)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, nil, err
		}
	}
	if ctx.Err() != nil {
		// Canceled mid-generation: report only the groups that completed.
		var doneGroups []groupKey
		for _, k := range groups {
			if fixtures[k] != nil {
				doneGroups = append(doneGroups, k)
			}
		}
		groups = doneGroups
	}
	return fixtures, need, groups, nil
}

// needs records which scenario shapes one fixture group's cells require.
type needs struct{ full, quot bool }
