package campaign

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"insomnia/internal/dsl"
)

// The collapse pass's contract is that it is invisible in the artifacts:
// `collapse: auto` and `collapse: off` write byte-identical summary.csv,
// results.json and power.csv — at every worker and engine-shard count —
// and differ only in how much work they did. These tests pin that.

// runModes executes one spec under both collapse modes at the given
// worker/shard setting and returns the artifact bytes of each, keyed by
// file name, plus the auto run's full result.
func runModes(t *testing.T, spec dsl.Spec, workers, shards int) (auto, off map[string]string, autoRes *RunResult) {
	t.Helper()
	read := func(dir string, arts []string) map[string]string {
		out := map[string]string{}
		for _, a := range arts {
			b, err := os.ReadFile(a)
			if err != nil {
				t.Fatal(err)
			}
			out[filepath.Base(a)] = string(b)
		}
		return out
	}
	dirA := t.TempDir()
	p, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	resA, err := runPlan(p, Options{Workers: workers, Shards: shards, OutDir: dirA, Collapse: "auto"})
	if err != nil {
		t.Fatal(err)
	}
	dirB := t.TempDir()
	p2, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := runPlan(p2, Options{Workers: workers, Shards: shards, OutDir: dirB, Collapse: "off"})
	if err != nil {
		t.Fatal(err)
	}
	return read(dirA, resA.Artifacts), read(dirB, resB.Artifacts), resA
}

// TestCollapseByteIdentical is the property test: randomized small
// symmetric grid-city specs — sizes, density, profile, scheme mix — must
// produce byte-identical artifacts under collapse auto and off, across
// worker and shard counts. The scheme mix always includes a coupled
// scheme, so each fixture exercises the mixed full+quotient path too.
func TestCollapseByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	profiles := []string{"residential", "flash-crowd", "churn"}
	for trial := 0; trial < 4; trial++ {
		gws := []int{9, 16, 25, 36}[trial]
		clients := gws * (2 + rng.Intn(3))
		spec := dsl.Spec{
			Name:     fmt.Sprintf("collapse-prop-%d", trial),
			Schemes:  []string{"no-sleep", "SoI", "SoI+full-switch", "BH2+k-switch"},
			Seeds:    []int64{int64(1 + trial)},
			Duration: 7200,
			Trace: dsl.TraceSpec{
				Profile: profiles[rng.Intn(len(profiles))],
				Clients: clients, Gateways: gws,
				Placement: "symmetric",
			},
			Topology: dsl.TopoSpec{Kind: "grid-city", MeanInRange: 4},
			Outputs:  []string{"summary", "json", "power"},
		}
		workers, shards := []int{1, 4}[rng.Intn(2)], []int{0, 2}[rng.Intn(2)]
		t.Run(fmt.Sprintf("gw%d-cl%d-%s-w%d-s%d", gws, clients, spec.Trace.Profile, workers, shards), func(t *testing.T) {
			auto, off, res := runModes(t, spec, workers, shards)
			rows := res.Rows
			if len(auto) != 3 || len(off) != 3 {
				t.Fatalf("expected 3 artifacts, got %d and %d", len(auto), len(off))
			}
			for name, a := range auto {
				if off[name] != a {
					t.Errorf("%s differs between collapse auto and off", name)
				}
			}
			if len(res.Collapsed) == 0 {
				t.Fatal("auto run never collapsed")
			}
			for _, n := range res.Collapsed {
				if n.FullGateways != gws || n.Classes <= 0 || n.Classes >= gws {
					t.Errorf("collapse note %+v did not shrink %d gateways", n, gws)
				}
			}
			for _, r := range rows {
				collapsible := r.Scheme == "no-sleep" || r.Scheme == "SoI" || r.Scheme == "SoI+full-switch"
				if collapsible && r.CollapsedClasses == 0 {
					t.Errorf("%s/%s: collapsible cell reports no classes", r.Scenario, r.Scheme)
				}
				if !collapsible && r.CollapsedClasses != 0 {
					t.Errorf("%s/%s: coupled cell reports %d classes", r.Scenario, r.Scheme, r.CollapsedClasses)
				}
				if collapsible && r.CollapsedClasses >= spec.Trace.Gateways {
					t.Errorf("%s/%s: %d classes did not shrink %d gateways", r.Scenario, r.Scheme, r.CollapsedClasses, spec.Trace.Gateways)
				}
			}
		})
	}
}

// TestCollapseFailureCampaign: a failures block forces the affected
// gateways into singleton classes but the rest still collapse, and the
// robustness metrics stay byte-identical to the full simulation.
func TestCollapseFailureCampaign(t *testing.T) {
	spec := dsl.Spec{
		Name:     "collapse-failures",
		Schemes:  []string{"no-sleep", "SoI"},
		Seeds:    []int64{3},
		Duration: 7200,
		Trace: dsl.TraceSpec{
			Profile: "residential", Clients: 100, Gateways: 25,
			Placement: "symmetric",
		},
		Topology: dsl.TopoSpec{Kind: "grid-city", MeanInRange: 4},
		Failures: &dsl.FailureSpec{
			Crashes: []dsl.CrashSpec{{At: 3000, Count: 2}},
			Outages: []dsl.OutageSpec{{Start: 4500, Duration: 900, Frac: 0.2}},
		},
		Outputs: []string{"summary", "json"},
	}
	auto, off, res := runModes(t, spec, 2, 0)
	rows := res.Rows
	for name, a := range auto {
		if off[name] != a {
			t.Errorf("%s differs between collapse auto and off under failures", name)
		}
	}
	if len(res.Collapsed) == 0 {
		t.Fatal("failure campaign never collapsed")
	}
	for _, r := range rows {
		if r.Availability == nil {
			t.Errorf("%s/%s: failure campaign row lost its availability", r.Scenario, r.Scheme)
		}
	}
}

// TestCollapseIneligibleSpecs: shuffled placement and binomial topologies
// must never collapse — and must not even report classes.
func TestCollapseIneligibleSpecs(t *testing.T) {
	for _, tc := range []struct {
		name      string
		placement string
		topo      string
	}{
		{"shuffled-placement", "", "grid-city"},
		{"binomial-topology", "symmetric", "binomial"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			spec := dsl.Spec{
				Name: "collapse-" + tc.name, Schemes: []string{"SoI"},
				Seeds: []int64{1}, Duration: 3600,
				Trace:    dsl.TraceSpec{Profile: "residential", Clients: 32, Gateways: 16, Placement: tc.placement},
				Topology: dsl.TopoSpec{Kind: tc.topo, MeanInRange: 4},
			}
			p, err := Compile(spec)
			if err != nil {
				t.Fatal(err)
			}
			res, err := runPlan(p, Options{Workers: 1, OutDir: t.TempDir(), Collapse: "auto"})
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range res.Rows {
				if r.CollapsedClasses != 0 {
					t.Errorf("%s: ineligible spec reported %d classes", tc.name, r.CollapsedClasses)
				}
			}
		})
	}
}
