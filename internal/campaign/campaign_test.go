package campaign

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"

	"insomnia/internal/dsl"
	"insomnia/internal/sim"
)

// TestSchemeNamesMatchSim pins dsl.SchemeNames (what specs may say) to
// sim.Scheme (what the engine runs): every name resolves, resolves to a
// scheme that spells itself that way, and every engine scheme is
// reachable from a spec.
func TestSchemeNamesMatchSim(t *testing.T) {
	seen := map[sim.Scheme]bool{}
	for _, name := range dsl.SchemeNames {
		sc, err := SchemeByName(name)
		if err != nil {
			t.Errorf("dsl.SchemeNames lists %q but campaign cannot resolve it: %v", name, err)
			continue
		}
		if sc.String() != name {
			t.Errorf("%q resolves to %v which spells itself %q", name, sc, sc.String())
		}
		seen[sc] = true
	}
	for sc := sim.NoSleep; sc <= sim.Centralized; sc++ {
		if !seen[sc] {
			t.Errorf("engine scheme %v is not reachable from dsl.SchemeNames", sc)
		}
	}
	if _, err := SchemeByName("BH3"); err == nil {
		t.Error("unknown scheme must not resolve")
	}
}

// testSpec is a campaign small enough for unit tests: two schemes, two
// seeds, one swept axis -> 8 cells of a 1-hour office scenario.
const testSpec = `
name: unit
schemes: [no-sleep, SoI]
seeds: [1, 2]
duration: 3600
trace:
  profile: office
  clients: 48
  gateways: 8
topology:
  kind: overlap
  mean_in_range: 5
sweeps:
  - axis: k
    values: [2, 4]
outputs: [summary, json, power]
`

// runPlan submits the plan and waits: the synchronous shape most tests
// want over the Job API.
func runPlan(p *Plan, opts Options) (*RunResult, error) {
	job, err := p.Submit(context.Background(), opts)
	if err != nil {
		return nil, err
	}
	return job.Wait()
}

func compileTestPlan(t *testing.T) *Plan {
	t.Helper()
	spec, err := dsl.ParseSpec([]byte(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCompileEnumeration(t *testing.T) {
	p := compileTestPlan(t)
	if len(p.Cells) != 8 {
		t.Fatalf("got %d cells, want 8", len(p.Cells))
	}
	// Variants outermost, then seeds, then schemes.
	want := []string{
		"k=2|no-sleep|1", "k=2|SoI|1", "k=2|no-sleep|2", "k=2|SoI|2",
		"k=4|no-sleep|1", "k=4|SoI|1", "k=4|no-sleep|2", "k=4|SoI|2",
	}
	for i, c := range p.Cells {
		if c.Key() != want[i] {
			t.Errorf("cell %d key %q, want %q", i, c.Key(), want[i])
		}
		if c.Index != i {
			t.Errorf("cell %d has Index %d", i, c.Index)
		}
	}
	// Sweep overrides land in the variant specs.
	if p.variants[0].spec.K != 2 || p.variants[1].spec.K != 4 {
		t.Errorf("sweep values not applied: %+v", p.variants)
	}
}

func TestCompileRejectsInvalidVariant(t *testing.T) {
	spec, err := dsl.ParseSpec([]byte(`
schemes: [SoI]
trace:
  profile: office
  clients: 48
  gateways: 8
sweeps:
  - axis: gateways
    values: [8, 96]
`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(spec); err == nil || !strings.Contains(err.Error(), "gateways=96") {
		t.Errorf("sweeping gateways past clients must fail with the variant named, got %v", err)
	}
}

func readArtifacts(t *testing.T, dir string) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, name := range []string{"summary.csv", "results.json", "power.csv"} {
		buf, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		out[name] = string(buf)
	}
	return out
}

// TestArtifactsDeterministicAcrossWorkers runs the same campaign serially
// and with 4 workers; every artifact must be byte-identical.
func TestArtifactsDeterministicAcrossWorkers(t *testing.T) {
	a, b := t.TempDir(), t.TempDir()
	ra, err := runPlan(compileTestPlan(t), Options{Workers: 1, OutDir: a})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := runPlan(compileTestPlan(t), Options{Workers: 4, OutDir: b})
	if err != nil {
		t.Fatal(err)
	}
	if ra.Ran != 8 || rb.Ran != 8 || ra.Skipped != 0 {
		t.Fatalf("unexpected run counts: %+v vs %+v", ra, rb)
	}
	fa, fb := readArtifacts(t, a), readArtifacts(t, b)
	for name := range fa {
		if fa[name] != fb[name] {
			t.Errorf("%s differs between 1 and 4 workers", name)
		}
	}
	// The summary actually contains savings against the no-sleep baseline.
	if !strings.Contains(fa["summary.csv"], "savings_pct") {
		t.Error("summary.csv missing savings column")
	}
	for _, row := range strings.Split(strings.TrimSpace(fa["summary.csv"]), "\n")[1:] {
		if strings.Count(row, ",") < 12-1 {
			t.Errorf("short summary row: %q", row)
		}
	}
}

// TestArtifactsDeterministicAcrossShards runs the same campaign with the
// serial engine and with every simulation sharded; the sharded engine is
// byte-identical per run, so every artifact must match.
func TestArtifactsDeterministicAcrossShards(t *testing.T) {
	a, b := t.TempDir(), t.TempDir()
	if _, err := runPlan(compileTestPlan(t), Options{Workers: 2, OutDir: a}); err != nil {
		t.Fatal(err)
	}
	if _, err := runPlan(compileTestPlan(t), Options{Workers: 2, Shards: 3, OutDir: b}); err != nil {
		t.Fatal(err)
	}
	fa, fb := readArtifacts(t, a), readArtifacts(t, b)
	for name := range fa {
		if fa[name] != fb[name] {
			t.Errorf("%s differs between serial and sharded engines", name)
		}
	}
}

func TestEngineShards(t *testing.T) {
	maxprocs := runtime.GOMAXPROCS(0)
	cases := []struct {
		override, spec, workers, cells, want int
	}{
		{5, 2, 0, 100, 5},                         // CLI override wins
		{0, 2, 0, 100, 2},                         // then the spec's shards key
		{0, 0, maxprocs, 100, 1},                  // auto: saturated pool -> serial sims
		{0, 0, 1, 100, max(1, maxprocs)},          // auto: serial pool -> shard over all cores
		{0, 0, maxprocs * 2, 1, max(1, maxprocs)}, // auto: one cell -> all cores
	}
	for _, tc := range cases {
		if got := engineShards(tc.override, tc.spec, tc.workers, tc.cells); got != tc.want {
			t.Errorf("engineShards(%d, %d, %d, %d) = %d, want %d",
				tc.override, tc.spec, tc.workers, tc.cells, got, tc.want)
		}
	}
}

// TestResumeMatchesUninterrupted simulates an interruption by truncating
// a finished campaign's manifest to a prefix, then resuming in a second
// directory: the resumed campaign must rebuild byte-identical artifacts
// and only simulate the missing cells.
func TestResumeMatchesUninterrupted(t *testing.T) {
	full := t.TempDir()
	rFull, err := runPlan(compileTestPlan(t), Options{Workers: 2, OutDir: full})
	if err != nil {
		t.Fatal(err)
	}
	manifest, err := os.ReadFile(filepath.Join(full, ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(manifest), "\n")
	if len(lines) < 9 {
		t.Fatalf("manifest has %d lines, want header + 8 cells", len(lines))
	}

	// Interrupt after 3 completed cells, mid-write of the 4th: the torn
	// final line must be tolerated and its cell re-run.
	interrupted := t.TempDir()
	torn := strings.Join(lines[:4], "") + lines[4][:len(lines[4])/2]
	if err := os.WriteFile(filepath.Join(interrupted, ManifestName), []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}
	rRes, err := runPlan(compileTestPlan(t), Options{Workers: 2, OutDir: interrupted, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if rRes.Skipped != 3 || rRes.Ran != 5 {
		t.Errorf("resume skipped %d ran %d, want 3/5", rRes.Skipped, rRes.Ran)
	}
	fa, fb := readArtifacts(t, full), readArtifacts(t, interrupted)
	for name := range fa {
		if fa[name] != fb[name] {
			t.Errorf("%s differs between uninterrupted and resumed runs", name)
		}
	}
	if len(rFull.Rows) != len(rRes.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(rFull.Rows), len(rRes.Rows))
	}
	for i := range rFull.Rows {
		if !rowsEqual(rFull.Rows[i], rRes.Rows[i]) {
			t.Errorf("row %d differs after resume", i)
		}
	}
}

func rowsEqual(a, b Row) bool { return reflect.DeepEqual(a, b) }

func TestRunRefusesForeignManifest(t *testing.T) {
	dir := t.TempDir()
	if _, err := runPlan(compileTestPlan(t), Options{Workers: 2, OutDir: dir}); err != nil {
		t.Fatal(err)
	}
	// Same directory, same spec, no -resume: refuse to clobber.
	if _, err := runPlan(compileTestPlan(t), Options{Workers: 2, OutDir: dir}); err == nil || !errors.Is(err, ErrManifestConflict) || !strings.Contains(err.Error(), "-resume") {
		t.Errorf("rerun without resume should refuse with ErrManifestConflict, got %v", err)
	}
	// Changed spec, -resume: refuse the mismatched checkpoint.
	spec, err := dsl.ParseSpec([]byte(strings.Replace(testSpec, "seeds: [1, 2]", "seeds: [1, 3]", 1)))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runPlan(p2, Options{Workers: 2, OutDir: dir, Resume: true}); err == nil || !errors.Is(err, ErrManifestConflict) || !strings.Contains(err.Error(), "different spec") {
		t.Errorf("resume with changed spec should refuse with ErrManifestConflict, got %v", err)
	}
}

// failureSpec is testSpec without the sweep plus a failures block: one
// crash and one outage over the 1-hour office scenario.
const failureSpec = `
name: unit-failures
schemes: [no-sleep, SoI, BH2+k-switch]
seeds: [1, 2]
duration: 3600
k: 2
trace:
  profile: office
  clients: 48
  gateways: 8
topology:
  kind: overlap
  mean_in_range: 5
failures:
  reboot_mean: 120
  crashes:
    - at: 600
      count: 2
  outages:
    - start: 1800
      duration: 300
      frac: 0.5
outputs: [summary, json]
`

func compileFailurePlan(t *testing.T) *Plan {
	t.Helper()
	spec, err := dsl.ParseSpec([]byte(failureSpec))
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestFailurePlanExpansion pins the seed-derived placement: the drawn
// gateways depend on the seed only, stay in range, and the same seed
// always draws the same schedule (so every scheme of a row shares it).
func TestFailurePlanExpansion(t *testing.T) {
	p := compileFailurePlan(t)
	v := p.variants[0].spec
	a, b := failurePlan(v, 1), failurePlan(v, 1)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("failure plan must be deterministic per seed")
	}
	if len(a.Crashes) != 2 {
		t.Fatalf("count: 2 must expand to 2 crashes, got %d", len(a.Crashes))
	}
	if a.Crashes[0].Gateway == a.Crashes[1].Gateway {
		t.Error("one crash spec must hit distinct gateways")
	}
	if len(a.Outages) != 1 {
		t.Fatalf("got %d outages", len(a.Outages))
	}
	o := a.Outages[0]
	if o.FromGW < 0 || o.ToGW > 8 || o.ToGW-o.FromGW != 4 {
		t.Errorf("frac 0.5 of 8 gateways must cover a 4-wide in-range block, got [%d,%d)", o.FromGW, o.ToGW)
	}
	if a.RebootMeanSec != 120 || a.RebootSigma != 0.5 {
		t.Errorf("reboot distribution not forwarded: %+v", a)
	}
	other := failurePlan(v, 2)
	if reflect.DeepEqual(a.Crashes, other.Crashes) && reflect.DeepEqual(a.Outages, other.Outages) {
		t.Error("different seeds should explore different placements")
	}
}

// TestFailureCampaignDeterministic runs the failure campaign serially and
// with 4 workers; artifacts must be byte-identical and carry the
// robustness columns.
func TestFailureCampaignDeterministic(t *testing.T) {
	a, b := t.TempDir(), t.TempDir()
	if _, err := runPlan(compileFailurePlan(t), Options{Workers: 1, OutDir: a}); err != nil {
		t.Fatal(err)
	}
	if _, err := runPlan(compileFailurePlan(t), Options{Workers: 4, Shards: 2, OutDir: b}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"summary.csv", "results.json"} {
		fa, err := os.ReadFile(filepath.Join(a, name))
		if err != nil {
			t.Fatal(err)
		}
		fb, err := os.ReadFile(filepath.Join(b, name))
		if err != nil {
			t.Fatal(err)
		}
		if string(fa) != string(fb) {
			t.Errorf("%s differs between 1 worker/serial and 4 workers/2 shards", name)
		}
	}
	sum, err := os.ReadFile(filepath.Join(a, "summary.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(sum), "availability") {
		t.Error("summary.csv missing robustness columns")
	}
	// Every data row of a failure campaign carries a non-blank availability
	// (second-to-last column; collapsed_classes is last).
	for _, row := range strings.Split(strings.TrimSpace(string(sum)), "\n")[1:] {
		cols := strings.Split(row, ",")
		if cols[len(cols)-2] == "" {
			t.Errorf("failure-campaign row missing availability: %q", row)
		}
	}
}

// TestCampaignPanicRecovery injects a panic into one scheme's first
// execution: the cell must be recorded as failed in the manifest, retried
// once (succeeding), and the artifacts must match an uninjected run.
func TestCampaignPanicRecovery(t *testing.T) {
	var mu sync.Mutex
	panicked := 0
	exec := func(_ context.Context, cfg sim.Config) (*sim.Result, error) {
		mu.Lock()
		first := cfg.Scheme == sim.SoI && panicked == 0
		if first {
			panicked++
		}
		mu.Unlock()
		if first {
			panic("injected cell failure")
		}
		return sim.Run(cfg)
	}
	dir, clean := t.TempDir(), t.TempDir()
	r, err := runPlan(compileTestPlan(t), Options{Workers: 2, OutDir: dir, exec: exec})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Failed) != 0 {
		t.Fatalf("retry should have recovered the panicked cell, failed: %v", r.Failed)
	}
	if len(r.Rows) != 8 {
		t.Fatalf("got %d rows, want 8", len(r.Rows))
	}
	manifest, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(manifest), "injected cell failure") {
		t.Error("manifest does not record the panic")
	}
	if _, err := runPlan(compileTestPlan(t), Options{Workers: 2, OutDir: clean}); err != nil {
		t.Fatal(err)
	}
	fa, fb := readArtifacts(t, dir), readArtifacts(t, clean)
	for name := range fa {
		if fa[name] != fb[name] {
			t.Errorf("%s differs between panicked-and-retried and clean runs", name)
		}
	}
}

// TestCampaignPersistentFailure poisons one scheme permanently: the cells
// fail twice, surface in RunResult.Failed and results.json, the other
// cells still produce rows — and a resume with the poison lifted heals
// the campaign to a byte-identical artifact set.
func TestCampaignPersistentFailure(t *testing.T) {
	poison := func(_ context.Context, cfg sim.Config) (*sim.Result, error) {
		if cfg.Scheme == sim.SoI {
			panic("SoI is poisoned")
		}
		return sim.Run(cfg)
	}
	dir := t.TempDir()
	r, err := runPlan(compileTestPlan(t), Options{Workers: 2, OutDir: dir, exec: poison})
	if !errors.Is(err, ErrCellsFailed) {
		t.Fatalf("poisoned campaign must report ErrCellsFailed, got %v", err)
	}
	if r == nil {
		t.Fatal("ErrCellsFailed must still carry the partial result")
	}
	if len(r.Failed) != 4 { // SoI x 2 seeds x 2 sweep values
		t.Fatalf("failed cells: %v, want the 4 SoI cells", r.Failed)
	}
	for _, key := range r.Failed {
		if !strings.Contains(key, "SoI") {
			t.Errorf("unexpected failed cell %s", key)
		}
	}
	if len(r.Rows) != 4 {
		t.Fatalf("got %d successful rows, want 4", len(r.Rows))
	}
	results, err := os.ReadFile(filepath.Join(dir, "results.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(results), `"failed"`) {
		t.Error("results.json does not surface the failed cells")
	}
	// Resume without the poison: only the failed cells re-run, and the
	// artifacts now match a never-poisoned campaign.
	r2, err := runPlan(compileTestPlan(t), Options{Workers: 2, OutDir: dir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Skipped != 4 || r2.Ran != 4 || len(r2.Failed) != 0 {
		t.Fatalf("resume skipped %d ran %d failed %v, want 4/4/none", r2.Skipped, r2.Ran, r2.Failed)
	}
	clean := t.TempDir()
	if _, err := runPlan(compileTestPlan(t), Options{Workers: 2, OutDir: clean}); err != nil {
		t.Fatal(err)
	}
	fa, fb := readArtifacts(t, dir), readArtifacts(t, clean)
	for name := range fa {
		if fa[name] != fb[name] {
			t.Errorf("%s differs between healed and clean runs", name)
		}
	}
}

// TestProfileFamilies compiles and builds one fixture per profile family,
// covering traceConfig and every topology kind.
func TestProfileFamilies(t *testing.T) {
	for _, tc := range []struct{ profile, topo string }{
		{"office", "overlap"},
		{"residential", "grid-city"},
		{"flash-crowd", "grid-city"},
		{"diurnal-mix", "binomial"},
		{"churn", "overlap"},
	} {
		spec, err := dsl.Spec{
			Schemes:  []string{"SoI"},
			Duration: 1800,
			Trace:    dsl.TraceSpec{Profile: tc.profile, Clients: 30, Gateways: 10},
			Topology: dsl.TopoSpec{Kind: tc.topo, MeanInRange: 4},
		}.WithDefaults()
		if err != nil {
			t.Fatalf("%s: %v", tc.profile, err)
		}
		p, err := Compile(spec)
		if err != nil {
			t.Fatalf("%s: %v", tc.profile, err)
		}
		f, err := buildFixture(p.variants[0].spec, 5, true, false)
		if err != nil {
			t.Fatalf("%s/%s: %v", tc.profile, tc.topo, err)
		}
		if f.tp.NumGateways != 10 || f.tr.Cfg.Clients != 30 {
			t.Errorf("%s: fixture shape wrong", tc.profile)
		}
		if f.tr.Cfg.Duration != 1800 {
			t.Errorf("%s: duration not applied", tc.profile)
		}
	}
}

// TestShelfAutoSizing covers the DSLAM auto-shape: the paper's shelf for
// small scenarios, whole 48-port k-groups for metros, explicit wins.
func TestShelfAutoSizing(t *testing.T) {
	small := dsl.Spec{Trace: dsl.TraceSpec{Gateways: 40}, K: 4}
	if s := shelf(small); s != dsl.EvalDSLAM {
		t.Errorf("small scenario should use the eval shelf, got %+v", s)
	}
	metro := dsl.Spec{Trace: dsl.TraceSpec{Gateways: 1000}, K: 4}
	s := shelf(metro)
	if s.PortsPerCard != 48 || s.Cards%4 != 0 || s.Ports() < 1000 {
		t.Errorf("metro shelf wrong: %+v", s)
	}
	explicit := dsl.Spec{Shelf: dsl.ShelfSpec{Cards: 3, PortsPerCard: 20}, Trace: dsl.TraceSpec{Gateways: 40}}
	if s := shelf(explicit); s.Cards != 3 || s.PortsPerCard != 20 {
		t.Errorf("explicit shelf ignored: %+v", s)
	}
}
