package testbed

import (
	"fmt"
	"sync"
	"time"

	"insomnia/internal/bh2"
	"insomnia/internal/stats"
	"insomnia/internal/trace"
)

// Config describes one live experiment (defaults follow §5.3).
type Config struct {
	Gateways int     // 9 in the paper's Fig 12 run
	MaxAssoc int     // association limit per terminal (3 in the paper)
	Duration float64 // virtual seconds (1800 = the 30-minute window)

	IdleTimeout float64 // virtual seconds (60)
	WakeDelay   float64 // virtual seconds (60)

	TimeScale float64 // wall seconds per virtual second (e.g. 0.002 in tests)
	UseBH2    bool    // false = plain SoI
	BH2       bh2.Params
	Seed      int64

	// Schedule[i][s] is the bytes terminal i must push during virtual
	// second s. Nil = generate a peak-hour replay via GenerateSchedule.
	Schedule [][]int64
}

func (c Config) withDefaults() Config {
	if c.Gateways == 0 {
		c.Gateways = 9
	}
	if c.MaxAssoc == 0 {
		c.MaxAssoc = 3
	}
	if c.Duration == 0 {
		c.Duration = 1800
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 60
	}
	if c.WakeDelay == 0 {
		c.WakeDelay = 60
	}
	if c.TimeScale == 0 {
		c.TimeScale = 0.002
	}
	if c.BH2.PeriodSec == 0 {
		c.BH2 = bh2.DefaultParams()
	}
	return c
}

// Result is a Fig 12 series plus summary statistics.
type Result struct {
	OnlineSeries  []int // online APs sampled each virtual second
	MeanOnline    float64
	MeanSleeping  float64
	OnTimes       []float64 // per gateway, virtual seconds
	Wakeups       int
	Moves         int
	TrafficErrors int
}

// GenerateSchedule builds a per-terminal per-second byte replay from the
// synthetic trace generator: each terminal replays the clients of one AP of
// a peak-hour office trace, as the paper replayed the CRAWDAD APs.
func GenerateSchedule(terminals int, duration float64, seed int64) ([][]int64, error) {
	var busy trace.Profile
	for i := range busy {
		busy[i] = 0.45 // peak-hour activity level
	}
	cfg := trace.Config{
		Clients: terminals * 4, APs: terminals, Profile: busy,
		Duration: duration, Seed: seed,
	}
	tr, err := trace.Generate(cfg)
	if err != nil {
		return nil, err
	}
	out := make([][]int64, terminals)
	secs := int(duration)
	for i := range out {
		out[i] = make([]int64, secs)
	}
	rate := cfg.BackhaulBps
	if rate == 0 {
		rate = trace.DefaultBackhaulBps
	}
	for _, f := range tr.Flows {
		if f.Up {
			continue
		}
		term := tr.ClientAP[f.Client]
		bps := trace.DefaultBackhaulBps
		if f.Rate > 0 && f.Rate < bps {
			bps = f.Rate
		}
		// Spread the flow's bytes over its nominal duration.
		rem := f.Bytes
		for s := int(f.Start); s < secs && rem > 0; s++ {
			chunk := int64(bps / 8)
			if chunk > rem {
				chunk = rem
			}
			out[term][s] += chunk
			rem -= chunk
		}
	}
	for _, k := range tr.Keepalives {
		term := tr.ClientAP[k.Client]
		if s := int(k.T); s < secs {
			out[term][s] += int64(k.Bytes)
		}
	}
	return out, nil
}

// Run executes one live experiment end to end: starts the server, spawns
// the terminals, replays the schedule and samples the online count.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Schedule == nil {
		sched, err := GenerateSchedule(cfg.Gateways, cfg.Duration, cfg.Seed)
		if err != nil {
			return nil, err
		}
		cfg.Schedule = sched
	}
	if len(cfg.Schedule) != cfg.Gateways {
		return nil, fmt.Errorf("testbed: schedule for %d terminals, want %d", len(cfg.Schedule), cfg.Gateways)
	}

	start := time.Now()
	clock := func() float64 { return time.Since(start).Seconds() / cfg.TimeScale }

	srv := NewServer(cfg.Gateways, cfg.IdleTimeout, cfg.WakeDelay, clock)
	base, err := srv.Start()
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	// Ring neighbourhoods of MaxAssoc gateways (the paper's terminals could
	// associate with at most 3).
	terms := make([]*Terminal, cfg.Gateways)
	for i := range terms {
		inRange := []int{i}
		for d := 1; len(inRange) < cfg.MaxAssoc && d <= cfg.Gateways/2; d++ {
			inRange = append(inRange, (i+d)%cfg.Gateways)
			if len(inRange) < cfg.MaxAssoc {
				inRange = append(inRange, (i-d+cfg.Gateways)%cfg.Gateways)
			}
		}
		terms[i] = NewTerminal(i, i, inRange, cfg.UseBH2, cfg.BH2, trace.DefaultBackhaulBps, base, cfg.Seed)
	}

	res := &Result{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	secs := int(cfg.Duration)

	for _, term := range terms {
		wg.Add(1)
		go func(t *Terminal) {
			defer wg.Done()
			sched := cfg.Schedule[t.ID]
			for s := 0; s < secs; s++ {
				// Pace to virtual time.
				target := start.Add(time.Duration(float64(s) * cfg.TimeScale * float64(time.Second)))
				if d := time.Until(target); d > 0 {
					time.Sleep(d)
				}
				var due int64
				if s < len(sched) {
					due = sched[s]
				}
				if err := t.Tick(clock(), due); err != nil {
					mu.Lock()
					res.TrafficErrors++
					mu.Unlock()
				}
			}
		}(term)
	}

	// Sampler: one reading per virtual second.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for s := 0; s < secs; s++ {
			target := start.Add(time.Duration((float64(s) + 0.5) * cfg.TimeScale * float64(time.Second)))
			if d := time.Until(target); d > 0 {
				time.Sleep(d)
			}
			n := srv.OnlineCount()
			mu.Lock()
			res.OnlineSeries = append(res.OnlineSeries, n)
			mu.Unlock()
		}
	}()

	wg.Wait()

	var w stats.Welford
	// Skip the first 2 minutes as warm-up, as Fig 12 starts at minute 2.
	for i, n := range res.OnlineSeries {
		if i >= 120 {
			w.Add(float64(n))
		}
	}
	res.MeanOnline = w.Mean()
	res.MeanSleeping = float64(cfg.Gateways) - res.MeanOnline
	res.OnTimes = srv.OnTimes()
	res.Wakeups = srv.Wakeups()
	for _, t := range terms {
		res.Moves += t.Moves
	}
	return res, nil
}
