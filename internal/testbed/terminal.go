package testbed

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"

	"insomnia/internal/bh2"
	"insomnia/internal/stats"
	"insomnia/internal/wifi"
)

// Client is the terminal-side HTTP client for the status server.
type Client struct {
	base string
	http *http.Client
}

// NewClient points at a server base URL.
func NewClient(base string) *Client {
	return &Client{base: base, http: &http.Client{}}
}

// Observe fetches one gateway observation.
func (c *Client) Observe(gw int) (Observation, error) {
	var obs Observation
	resp, err := c.http.Get(fmt.Sprintf("%s/observe?gw=%d", c.base, gw))
	if err != nil {
		return obs, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return obs, fmt.Errorf("testbed: observe status %d", resp.StatusCode)
	}
	return obs, json.NewDecoder(resp.Body).Decode(&obs)
}

// SendTraffic posts bytes through a gateway; reports delivery.
func (c *Client) SendTraffic(gw int, bytes int64) (bool, error) {
	resp, err := c.http.Post(fmt.Sprintf("%s/traffic?gw=%d&bytes=%d", c.base, gw, bytes), "", nil)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	var out struct {
		Delivered bool `json:"delivered"`
	}
	return out.Delivered, json.NewDecoder(resp.Body).Decode(&out)
}

// WakeHome asks the server to wake the terminal's home gateway (WoWLAN).
func (c *Client) WakeHome(gw int) error {
	resp, err := c.http.Post(fmt.Sprintf("%s/wake?gw=%d", c.base, gw), "", nil)
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

// Online fetches the current online AP count.
func (c *Client) Online() (int, error) {
	resp, err := c.http.Get(c.base + "/online")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var out struct {
		Online int `json:"online"`
	}
	return out.Online, json.NewDecoder(resp.Body).Decode(&out)
}

// Terminal is one BH² line owner: it replays a per-second byte schedule
// through its selected gateway and runs the decision algorithm against
// passive observations, all over the wire.
type Terminal struct {
	ID      int
	Home    int
	InRange []int // association candidates incl. home (paper limit: 3)

	UseBH2 bool
	Params bh2.Params

	client *Client
	rng    *rand.Rand

	assigned     int
	nextDecision float64
	estimators   map[int]*wifi.LoadEstimator
	backhaulBps  float64

	pending int64 // bytes that could not be delivered yet (gateway waking)
	Moves   int
}

// NewTerminal wires a terminal to the server.
func NewTerminal(id, home int, inRange []int, useBH2 bool, p bh2.Params, backhaulBps float64, base string, seed int64) *Terminal {
	t := &Terminal{
		ID: id, Home: home, InRange: inRange, UseBH2: useBH2, Params: p,
		client: NewClient(base), rng: stats.NewRNG(seed, 0x7e5b+uint64(id)),
		assigned: home, estimators: map[int]*wifi.LoadEstimator{},
		backhaulBps: backhaulBps,
	}
	t.nextDecision = t.rng.Float64() * p.PeriodSec
	return t
}

// Tick runs one virtual second: observe, deliver due traffic, decide.
func (t *Terminal) Tick(now float64, bytesDue int64) error {
	views := make([]bh2.GatewayView, 0, len(t.InRange))
	for _, gw := range t.InRange {
		obs, err := t.client.Observe(gw)
		if err != nil {
			return err
		}
		est := t.estimators[gw]
		if est == nil {
			est = wifi.NewLoadEstimator(t.backhaulBps)
			t.estimators[gw] = est
		}
		if obs.State == StateOn {
			est.Observe(now, obs.SN)
		} else {
			est.Reset()
		}
		views = append(views, bh2.GatewayView{
			ID:     gw,
			Awake:  obs.State == StateOn,
			Load:   est.Utilization(now, t.Params.EstWindow),
			Active: est.ActiveWithin(now, t.Params.EstWindow),
		})
	}

	if t.UseBH2 && now >= t.nextDecision {
		t.apply(bh2.Decide(t.rng, t.Params, t.Home, t.assigned, views))
		t.nextDecision = bh2.NextDecisionTime(t.rng, t.Params, now)
	}

	t.pending += bytesDue
	if t.pending > 0 {
		target := t.assigned
		if !t.UseBH2 {
			target = t.Home
		}
		awake := false
		for _, v := range views {
			if v.ID == target && v.Awake {
				awake = true
			}
		}
		if !awake {
			if t.UseBH2 {
				// Immediate re-decision: hitch elsewhere or wake home.
				t.apply(bh2.Decide(t.rng, t.Params, t.Home, t.assigned, views))
				target = t.assigned
			}
			if target == t.Home {
				if err := t.client.WakeHome(t.Home); err != nil {
					return err
				}
			}
		}
		delivered, err := t.client.SendTraffic(target, t.pending)
		if err != nil {
			return err
		}
		if delivered {
			t.pending = 0
		}
	}
	return nil
}

func (t *Terminal) apply(d bh2.Decision) {
	switch d.Action {
	case bh2.Move:
		if t.assigned != d.Target {
			t.assigned = d.Target
			t.Moves++
		}
	case bh2.ReturnHome:
		if t.assigned != t.Home {
			t.assigned = t.Home
			t.Moves++
		}
		if t.Params.WakeUpHome {
			_ = t.client.WakeHome(t.Home)
		}
	}
}
