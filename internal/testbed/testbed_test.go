package testbed

import (
	"testing"
	"time"

	"insomnia/internal/power"
)

// manualClock gives tests full control of virtual time.
type manualClock struct{ t float64 }

func (c *manualClock) now() float64 { return c.t }

func TestServerSoILifecycle(t *testing.T) {
	clk := &manualClock{}
	s := NewServer(2, 60, 60, clk.now)

	// Initially on.
	if got := s.Observe(0).State; got != StateOn {
		t.Fatalf("initial state %v", got)
	}
	// Traffic keeps it awake; silence sleeps it after the timeout.
	if !s.Traffic(0, 1500) {
		t.Fatal("traffic rejected while on")
	}
	clk.t = 59
	if got := s.Observe(0).State; got != StateOn {
		t.Fatalf("slept early: %v", got)
	}
	clk.t = 61
	if got := s.Observe(0).State; got != StateSleeping {
		t.Fatalf("state at 61 = %v, want sleeping", got)
	}
	// Traffic to a sleeping gateway is not delivered.
	if s.Traffic(0, 1500) {
		t.Fatal("sleeping gateway accepted traffic")
	}
	// Wake takes WakeDelay.
	s.Wake(0)
	if got := s.Observe(0).State; got != StateWaking {
		t.Fatalf("state after wake = %v", got)
	}
	clk.t = 122
	if got := s.Observe(0).State; got != StateOn {
		t.Fatalf("state after wake delay = %v", got)
	}
	if s.Wakeups() != 1 {
		t.Fatalf("wakeups = %d", s.Wakeups())
	}
}

func TestServerSNCountsFrames(t *testing.T) {
	clk := &manualClock{}
	s := NewServer(1, 600, 60, clk.now)
	before := s.Observe(0).SN
	s.Traffic(0, 4500) // 3 frames
	after := s.Observe(0).SN
	if d := int(after) - int(before); d != 3 {
		t.Fatalf("SN delta = %d, want 3", d)
	}
}

func TestServerOnTimes(t *testing.T) {
	clk := &manualClock{}
	s := NewServer(1, 60, 60, clk.now)
	clk.t = 100 // sleeps at 60
	ot := s.OnTimes()
	if ot[0] < 59.9 || ot[0] > 60.1 {
		t.Fatalf("onTime = %v, want 60", ot[0])
	}
}

func TestStateToPower(t *testing.T) {
	if stateToPower(StateOn) != power.On || stateToPower(StateWaking) != power.Waking || stateToPower(StateSleeping) != power.Sleeping {
		t.Error("state mapping wrong")
	}
}

func TestHTTPEndpoints(t *testing.T) {
	clk := &manualClock{}
	s := NewServer(3, 60, 60, clk.now)
	base, err := s.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	c := NewClient(base)
	obs, err := c.Observe(1)
	if err != nil {
		t.Fatal(err)
	}
	if obs.State != StateOn || obs.GW != 1 {
		t.Fatalf("obs = %+v", obs)
	}
	ok, err := c.SendTraffic(1, 3000)
	if err != nil || !ok {
		t.Fatalf("traffic: %v %v", ok, err)
	}
	obs2, err := c.Observe(1)
	if err != nil {
		t.Fatal(err)
	}
	if obs2.SN == obs.SN {
		t.Error("SN did not advance over HTTP")
	}
	n, err := c.Online()
	if err != nil || n != 3 {
		t.Fatalf("online = %d %v", n, err)
	}
	// Bad params rejected.
	if _, err := c.Observe(99); err == nil {
		t.Error("expected error for bad gateway id")
	}
}

func TestGenerateSchedule(t *testing.T) {
	sched, err := GenerateSchedule(9, 600, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched) != 9 {
		t.Fatalf("%d terminals", len(sched))
	}
	var total int64
	for _, row := range sched {
		if len(row) != 600 {
			t.Fatalf("row length %d", len(row))
		}
		for _, b := range row {
			if b < 0 {
				t.Fatal("negative bytes")
			}
			total += b
		}
	}
	if total == 0 {
		t.Fatal("empty schedule")
	}
}

// The Fig 12 experiment in miniature: run SoI and BH2 over real sockets at
// high time compression and check the paper's ordering — BH2 keeps fewer
// APs online than SoI.
func TestLiveExperimentBH2BeatsSoI(t *testing.T) {
	if testing.Short() {
		t.Skip("live testbed run")
	}
	run := func(useBH2 bool) *Result {
		res, err := Run(Config{
			Gateways: 9, Duration: 600, TimeScale: 0.004,
			UseBH2: useBH2, Seed: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	soi := run(false)
	bh := run(true)
	if len(soi.OnlineSeries) == 0 || len(bh.OnlineSeries) == 0 {
		t.Fatal("no samples")
	}
	if soi.TrafficErrors > 50 || bh.TrafficErrors > 50 {
		t.Fatalf("too many traffic errors: %d / %d", soi.TrafficErrors, bh.TrafficErrors)
	}
	if bh.Moves == 0 {
		t.Error("BH2 terminals never moved")
	}
	if bh.MeanOnline >= soi.MeanOnline {
		t.Errorf("BH2 online %.2f >= SoI %.2f; expected fewer online APs", bh.MeanOnline, soi.MeanOnline)
	}
	t.Logf("SoI online %.2f, BH2 online %.2f (paper: 5.28 vs 3.54 of 9)", soi.MeanOnline, bh.MeanOnline)
}

func TestRunValidatesSchedule(t *testing.T) {
	_, err := Run(Config{Gateways: 4, Duration: 10, TimeScale: 0.001, Schedule: make([][]int64, 2)})
	if err == nil {
		t.Error("expected schedule size error")
	}
}

func TestVirtualClockPacing(t *testing.T) {
	// A tiny run completes in roughly Duration*TimeScale wall time.
	start := time.Now()
	_, err := Run(Config{Gateways: 3, Duration: 50, TimeScale: 0.002, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if wall := time.Since(start); wall > 5*time.Second {
		t.Errorf("run took %v, expected well under 5s", wall)
	}
}
