// Package testbed reproduces the paper's live deployment (§5.3, Figs 11-12)
// over real sockets: BH² terminals talk HTTP to a central status server that
// emulates gateway sleep states — exactly the role the paper's "script
// running in a central server" played, since their commercial gateways had
// no SoI either.
//
// The pieces:
//
//   - Server: an HTTP server tracking per-gateway SoI state (on / waking /
//     sleeping), data-frame sequence counters for passive load estimation,
//     and an idle timeout per gateway. Terminals POST traffic and wake
//     requests and GET observations.
//   - Terminal: one goroutine per line owner, replaying a traffic schedule
//     through its currently selected gateway, observing in-range gateways
//     each second and running the same bh2.Decide the simulator uses.
//   - Run: wires N gateways and N terminals (paper: 9-10), with the
//     association limit of 3 gateways the paper's hardware imposed, and
//     samples the number of online APs — the Fig 12 series.
//
// Virtual time runs at cfg.TimeScale wall-seconds per virtual second so a
// 30-minute experiment replays in seconds during tests.
package testbed

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"

	"insomnia/internal/power"
	"insomnia/internal/wifi"
)

// GatewayState mirrors power.State over the wire.
type GatewayState string

// Wire states.
const (
	StateOn       GatewayState = "on"
	StateWaking   GatewayState = "waking"
	StateSleeping GatewayState = "sleeping"
)

// Observation is what a terminal learns about one gateway per monitor
// slice: its beacon presence and current data-frame sequence number.
type Observation struct {
	GW    int          `json:"gw"`
	State GatewayState `json:"state"`
	SN    uint16       `json:"sn"`
}

// gatewayRec is the server-side record of one emulated gateway.
type gatewayRec struct {
	state        GatewayState
	lastActivity float64 // virtual seconds
	wakeAt       float64
	sn           wifi.SeqCounter
	onTime       float64 // accumulated online (non-sleeping) virtual time
	lastChange   float64
	wakeups      int
}

// Server emulates the sleep state of a set of gateways.
type Server struct {
	IdleTimeout float64 // virtual seconds
	WakeDelay   float64

	clock func() float64 // virtual time source

	mu  sync.Mutex
	gws []*gatewayRec

	http *http.Server
	ln   net.Listener
}

// NewServer creates a status server for n gateways, all initially on.
func NewServer(n int, idleTimeout, wakeDelay float64, clock func() float64) *Server {
	s := &Server{IdleTimeout: idleTimeout, WakeDelay: wakeDelay, clock: clock}
	for i := 0; i < n; i++ {
		s.gws = append(s.gws, &gatewayRec{state: StateOn})
	}
	return s
}

// advanceLocked applies due transitions for gateway g at virtual time now.
func (s *Server) advanceLocked(g *gatewayRec, now float64) {
	for {
		switch g.state {
		case StateWaking:
			if g.wakeAt <= now {
				g.onTime += 0 // waking time already counted below
				g.state = StateOn
				if g.wakeAt > g.lastActivity {
					g.lastActivity = g.wakeAt
				}
				continue
			}
		case StateOn:
			if g.lastActivity+s.IdleTimeout <= now {
				g.onTime += g.lastActivity + s.IdleTimeout - g.lastChange
				g.lastChange = g.lastActivity + s.IdleTimeout
				g.state = StateSleeping
				continue
			}
		}
		break
	}
	if g.state != StateSleeping {
		g.onTime += now - g.lastChange
	}
	g.lastChange = now
}

// Traffic records bytes sent through gateway gw; returns false if the
// gateway is sleeping (traffic lost — the terminal should not have sent it).
func (s *Server) Traffic(gw int, bytes int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clock()
	g := s.gws[gw]
	s.advanceLocked(g, now)
	if g.state == StateSleeping {
		return false
	}
	if now > g.lastActivity {
		g.lastActivity = now
	}
	if g.state == StateOn {
		g.sn.Advance(wifi.FramesFor(bytes))
	}
	return true
}

// Wake requests a wake-up of gateway gw (WoWLAN — only the owner may call
// this; the server trusts callers as the paper's did).
func (s *Server) Wake(gw int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clock()
	g := s.gws[gw]
	s.advanceLocked(g, now)
	if g.state == StateSleeping {
		g.state = StateWaking
		g.wakeAt = now + s.WakeDelay
		g.lastActivity = now
		g.wakeups++
	}
}

// Observe returns the observation a terminal would make of gateway gw.
// Sleeping gateways beacon nothing; the terminal only learns "no beacon".
func (s *Server) Observe(gw int) Observation {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clock()
	g := s.gws[gw]
	s.advanceLocked(g, now)
	return Observation{GW: gw, State: g.state, SN: g.sn.Value()}
}

// OnlineCount returns how many gateways are not sleeping.
func (s *Server) OnlineCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clock()
	n := 0
	for _, g := range s.gws {
		s.advanceLocked(g, now)
		if g.state != StateSleeping {
			n++
		}
	}
	return n
}

// OnTimes returns cumulative online virtual seconds per gateway.
func (s *Server) OnTimes() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clock()
	out := make([]float64, len(s.gws))
	for i, g := range s.gws {
		s.advanceLocked(g, now)
		out[i] = g.onTime
	}
	return out
}

// Wakeups returns total wake transitions across gateways.
func (s *Server) Wakeups() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, g := range s.gws {
		n += g.wakeups
	}
	return n
}

// Start listens on 127.0.0.1:0 and serves the HTTP API. Returns the base
// URL.
func (s *Server) Start() (string, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /observe", func(w http.ResponseWriter, r *http.Request) {
		gw, err := gwParam(r)
		if err != nil || gw < 0 || gw >= len(s.gws) {
			http.Error(w, "bad gw", http.StatusBadRequest)
			return
		}
		writeJSON(w, s.Observe(gw))
	})
	mux.HandleFunc("POST /traffic", func(w http.ResponseWriter, r *http.Request) {
		gw, err := gwParam(r)
		if err != nil || gw < 0 || gw >= len(s.gws) {
			http.Error(w, "bad gw", http.StatusBadRequest)
			return
		}
		bytes, err := strconv.ParseInt(r.URL.Query().Get("bytes"), 10, 64)
		if err != nil || bytes < 0 {
			http.Error(w, "bad bytes", http.StatusBadRequest)
			return
		}
		writeJSON(w, map[string]bool{"delivered": s.Traffic(gw, bytes)})
	})
	mux.HandleFunc("POST /wake", func(w http.ResponseWriter, r *http.Request) {
		gw, err := gwParam(r)
		if err != nil || gw < 0 || gw >= len(s.gws) {
			http.Error(w, "bad gw", http.StatusBadRequest)
			return
		}
		s.Wake(gw)
		writeJSON(w, map[string]bool{"ok": true})
	})
	mux.HandleFunc("GET /online", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]int{"online": s.OnlineCount()})
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", fmt.Errorf("testbed: listen: %w", err)
	}
	s.ln = ln
	s.http = &http.Server{Handler: mux}
	go func() { _ = s.http.Serve(ln) }()
	return "http://" + ln.Addr().String(), nil
}

// Close shuts the HTTP server down.
func (s *Server) Close() error {
	if s.http != nil {
		return s.http.Close()
	}
	return nil
}

func gwParam(r *http.Request) (int, error) {
	return strconv.Atoi(r.URL.Query().Get("gw"))
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// stateToPower maps wire states to power states (used by diagnostics).
func stateToPower(st GatewayState) power.State {
	switch st {
	case StateOn:
		return power.On
	case StateWaking:
		return power.Waking
	default:
		return power.Sleeping
	}
}
