package figures

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteSeriesCSV writes one or more series sharing an X axis as CSV:
// x,<name1>,<name2>,... Series with differing X grids are written with
// blank cells where they have no sample.
func WriteSeriesCSV(w io.Writer, xLabel string, series []Series) error {
	cw := csv.NewWriter(w)
	header := []string{xLabel}
	for _, s := range series {
		header = append(header, s.Name)
		if s.Err != nil {
			header = append(header, s.Name+"-stddev")
		}
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	// Union of X values, in first-seen order.
	var xs []float64
	seen := map[float64]bool{}
	for _, s := range series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	for _, x := range xs {
		row := []string{fmtF(x)}
		for _, s := range series {
			i := indexOf(s.X, x)
			if i < 0 {
				row = append(row, "")
				if s.Err != nil {
					row = append(row, "")
				}
				continue
			}
			row = append(row, fmtF(s.Y[i]))
			if s.Err != nil {
				row = append(row, fmtF(s.Err[i]))
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteHistogramCSV writes labeled histogram bins.
func WriteHistogramCSV(w io.Writer, labels []string, fracs []float64) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"bin", "fraction"}); err != nil {
		return err
	}
	for i, l := range labels {
		if err := cw.Write([]string{l, fmtF(fracs[i])}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// RenderASCII draws a quick terminal chart of one series (for CLI output).
func RenderASCII(s Series, width int) string {
	if len(s.Y) == 0 {
		return s.Name + ": (empty)\n"
	}
	maxY := s.Y[0]
	for _, y := range s.Y {
		if y > maxY {
			maxY = y
		}
	}
	if maxY <= 0 {
		maxY = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (max %.2f)\n", s.Name, maxY)
	for i, y := range s.Y {
		n := int(y / maxY * float64(width))
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(&b, "%8.1f | %s %.2f\n", s.X[i], strings.Repeat("#", n), y)
	}
	return b.String()
}

func fmtF(x float64) string { return strconv.FormatFloat(x, 'g', 6, 64) }

func indexOf(xs []float64, x float64) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	return -1
}
