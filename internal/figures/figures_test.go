package figures

import (
	"bytes"
	"strings"
	"testing"

	"insomnia/internal/sim"
	"insomnia/internal/topology"
	"insomnia/internal/trace"
)

// tinyDay builds a reduced scenario and runs a subset of schemes so figure
// reductions can be tested quickly.
func tinyDay(t *testing.T) *DayRuns {
	t.Helper()
	var busy trace.Profile
	for i := range busy {
		busy[i] = 0.5
	}
	tr, err := trace.Generate(trace.Config{
		Clients: 40, APs: 8, Profile: busy, Seed: 3, Duration: 3 * 3600,
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := topology.OverlapGraph(8, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := topology.FromOverlap(g, tr.ClientAP)
	if err != nil {
		t.Fatal(err)
	}
	sc := &Scenario{Trace: tr, Topo: tp, Seed: 3}
	runs, err := RunDay(sc, []sim.Scheme{sim.NoSleep, sim.SoI, sim.SoIKSwitch, sim.BH2KSwitch, sim.BH2NoBackup})
	if err != nil {
		t.Fatal(err)
	}
	return runs
}

func TestNewScenario(t *testing.T) {
	sc, err := NewScenario(1)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Trace.Cfg.Clients != 272 || sc.Topo.NumGateways != 40 {
		t.Errorf("scenario shape: %d clients, %d gateways", sc.Trace.Cfg.Clients, sc.Topo.NumGateways)
	}
}

func TestFig2Series(t *testing.T) {
	series, err := Fig2(60, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("%d series", len(series))
	}
	for _, s := range series {
		if len(s.X) != 24 || len(s.Y) != 24 {
			t.Fatalf("series %s has %d points", s.Name, len(s.Y))
		}
	}
}

func TestFig3And4(t *testing.T) {
	s, err := Fig3(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Y) != 24 {
		t.Fatal("Fig3 not hourly")
	}
	labels, fracs, err := Fig4(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 24 || len(fracs) != 24 {
		t.Fatalf("Fig4 bins: %d/%d", len(labels), len(fracs))
	}
	if labels[len(labels)-1] != ">60" {
		t.Errorf("last label = %q", labels[len(labels)-1])
	}
	var sum float64
	for _, f := range fracs {
		sum += f
	}
	if sum < 99 || sum > 101 {
		t.Errorf("fractions sum to %v%%, want ~100", sum)
	}
}

func TestFig5Anchors(t *testing.T) {
	series, err := Fig5(24, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("%d series", len(series))
	}
	// 8-switch (index 2) card 1 ≈ 0.91 at p=0.5; entries beyond k are 0.
	if series[2].Y[0] < 0.85 {
		t.Errorf("8-switch card1 = %v", series[2].Y[0])
	}
	if series[0].Y[4] != 0 {
		t.Errorf("2-switch card5 = %v, want 0 (beyond k)", series[0].Y[4])
	}
}

func TestDayFigureReductions(t *testing.T) {
	runs := tinyDay(t)

	f6 := Fig6(runs)
	if len(f6) < 2 {
		t.Fatalf("Fig6 series: %d", len(f6))
	}
	for _, s := range f6 {
		if len(s.Y) != 24 {
			t.Fatalf("%s not hourly", s.Name)
		}
		for _, y := range s.Y {
			if y < -5 || y > 100 {
				t.Fatalf("%s savings %v out of range", s.Name, y)
			}
		}
	}

	f7 := Fig7(runs)
	for _, s := range f7 {
		for _, y := range s.Y {
			if y < 0 || y > 8 {
				t.Fatalf("%s online gateways %v out of [0,8]", s.Name, y)
			}
		}
	}

	f8 := Fig8(runs)
	for _, s := range f8 {
		for _, y := range s.Y {
			if y < 0 || y > 100 {
				t.Fatalf("%s ISP share %v out of range", s.Name, y)
			}
		}
	}

	for _, s := range Fig9a(runs) {
		prev := -1.0
		for _, y := range s.Y {
			if y < prev-1e-9 || y < 0 || y > 1 {
				t.Fatalf("%s CDF not monotone in [0,1]", s.Name)
			}
			prev = y
		}
	}
	for _, s := range Fig9b(runs) {
		prev := -1.0
		for _, y := range s.Y {
			if y < prev-1e-9 {
				t.Fatalf("%s CDF not monotone", s.Name)
			}
			prev = y
		}
	}

	table := LineCardTable(runs)
	if table[sim.SoI.String()] <= 0 {
		t.Error("line card table empty")
	}

	h := Summarize(runs)
	if h.Savings[sim.BH2KSwitch.String()] <= 0 {
		t.Error("no BH2 savings in headline")
	}
	if h.UserShare+h.ISPShare < 0.99 || h.UserShare+h.ISPShare > 1.01 {
		t.Errorf("shares don't sum to 1: %v + %v", h.UserShare, h.ISPShare)
	}
	if h.WorldTWh <= 0 {
		t.Error("no extrapolation")
	}
}

func TestHourlyShortSeries(t *testing.T) {
	// Fewer bins than hours: every bin must still land in its own hour
	// instead of vanishing into empty windows (per == 0 regression).
	got := hourly(func(i int) float64 { return float64(i + 1) }, 12)
	if len(got) != 24 {
		t.Fatalf("hourly returned %d bins", len(got))
	}
	var sum float64
	for _, v := range got {
		sum += v
	}
	if want := 1.0 + 2 + 3 + 4 + 5 + 6 + 7 + 8 + 9 + 10 + 11 + 12; sum != float64(want) {
		t.Errorf("short series lost samples: hourly sums to %v, want %v", sum, want)
	}
	// bin 0 maps to hour 0, bin 11 to hour 22.
	if got[0] != 1 || got[22] != 12 {
		t.Errorf("short-series binning off: hour0=%v hour22=%v", got[0], got[22])
	}
	if out := hourly(func(i int) float64 { return 1 }, 0); len(out) != 24 {
		t.Errorf("zero-bin series: %d hours", len(out))
	}
	// The common divisible case is unchanged: 48 bins -> 2 per hour.
	got = hourly(func(i int) float64 { return float64(i / 2) }, 48)
	for h, v := range got {
		if v != float64(h) {
			t.Fatalf("hour %d mean = %v, want %d", h, v, h)
		}
	}
}

func TestRunDayWorkerInvariance(t *testing.T) {
	var busy trace.Profile
	for i := range busy {
		busy[i] = 0.5
	}
	tr, err := trace.Generate(trace.Config{
		Clients: 40, APs: 8, Profile: busy, Seed: 4, Duration: 2 * 3600,
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := topology.OverlapGraph(8, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := topology.FromOverlap(g, tr.ClientAP)
	if err != nil {
		t.Fatal(err)
	}
	sc := &Scenario{Trace: tr, Topo: tp, Seed: 4}
	schemes := []sim.Scheme{sim.NoSleep, sim.SoI, sim.BH2KSwitch}
	serial, err := RunDayWorkers(sc, schemes, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunDayWorkers(sc, schemes, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range schemes {
		a, b := serial.Results[s], parallel.Results[s]
		if a == nil || b == nil {
			t.Fatalf("%v missing from runs", s)
		}
		if a.Energy != b.Energy || a.Wakeups != b.Wakeups || a.Moves != b.Moves {
			t.Errorf("%v differs between 1 and 4 workers: %+v vs %+v", s, a.Energy, b.Energy)
		}
		for i := range a.FCT {
			af, bf := a.FCT[i], b.FCT[i]
			if (af != bf) && !(af != af && bf != bf) { // NaN-tolerant compare
				t.Fatalf("%v FCT[%d]: %v vs %v", s, i, af, bf)
			}
		}
	}
}

func TestFig15Shape(t *testing.T) {
	series, err := Fig15(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 || len(series[0].Y) != 14 {
		t.Fatalf("Fig15 shape: %d series", len(series))
	}
	for _, sd := range series[1].Y {
		if sd < 15 || sd > 32 {
			t.Errorf("card sigma %v outside the one-mile band", sd)
		}
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	var buf bytes.Buffer
	series := []Series{
		{Name: "a", X: []float64{1, 2}, Y: []float64{10, 20}},
		{Name: "b", X: []float64{1, 3}, Y: []float64{5, 7}, Err: []float64{0.5, 0.7}},
	}
	if err := WriteSeriesCSV(&buf, "x", series); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "x,a,b,b-stddev\n") {
		t.Errorf("header: %q", strings.SplitN(out, "\n", 2)[0])
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header + x=1,2,3
		t.Fatalf("lines: %v", lines)
	}
	// x=2 has no b sample: trailing blanks.
	if !strings.Contains(lines[2], "2,20,,") {
		t.Errorf("row for x=2: %q", lines[2])
	}
}

func TestWriteHistogramCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHistogramCSV(&buf, []string{"0-1", ">60"}, []float64{0.8, 0.2}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), ">60,0.2") {
		t.Errorf("histogram CSV: %q", buf.String())
	}
}

func TestRenderASCII(t *testing.T) {
	s := Series{Name: "demo", X: []float64{0, 1}, Y: []float64{1, 2}}
	out := RenderASCII(s, 10)
	if !strings.Contains(out, "demo") || !strings.Contains(out, "##########") {
		t.Errorf("ascii: %q", out)
	}
	if got := RenderASCII(Series{Name: "empty"}, 10); !strings.Contains(got, "empty") {
		t.Errorf("empty ascii: %q", got)
	}
}

func TestFig9aWakeStallVsContention(t *testing.T) {
	runs := tinyDay(t)
	stall := Fig9a(runs)
	cont := Fig9aContention(runs)
	if len(stall) != len(cont) {
		t.Fatal("series count mismatch")
	}
	// Wake-stall accounting can only classify fewer flows as affected.
	for i := range stall {
		if stall[i].Y[0] < cont[i].Y[0]-1e-9 {
			t.Errorf("%s: stall-based unaffected %.3f below contention-based %.3f",
				stall[i].Name, stall[i].Y[0], cont[i].Y[0])
		}
	}
}
