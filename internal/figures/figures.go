// Package figures regenerates every table and figure of the paper's
// evaluation from the reproduction's own components. Each FigN function
// returns plain data series so the CLI (cmd/figures), the benchmark harness
// (bench_test.go) and the examples all share one implementation.
//
// See DESIGN.md's experiment index for the figure-by-figure mapping and
// EXPERIMENTS.md for paper-vs-measured numbers.
package figures

import (
	"context"
	"fmt"
	"math"
	"slices"

	"insomnia/internal/analytic"
	"insomnia/internal/crosstalk"
	"insomnia/internal/dsl"
	"insomnia/internal/runner"
	"insomnia/internal/sim"
	"insomnia/internal/stats"
	"insomnia/internal/topology"
	"insomnia/internal/trace"
)

// Series is one plotted line: X positions, Y values, optional error bars.
type Series struct {
	Name string
	X    []float64
	Y    []float64
	Err  []float64
}

// Scenario bundles the §5.1 simulation inputs.
type Scenario struct {
	Trace *trace.Trace
	Topo  *topology.Topology
	Seed  int64
	// Shards is the engine shard count every run of this scenario uses
	// (sim.Config.Shards); results are byte-identical at every value, so
	// it only matters when the worker pool leaves cores idle.
	Shards int
}

// NewScenario builds the evaluation scenario: a UCSD-like day trace with
// uniform client placement over a 40-gateway overlap topology with mean
// in-range 5.6.
func NewScenario(seed int64) (*Scenario, error) {
	tr, err := trace.Generate(trace.DefaultSimConfig(seed))
	if err != nil {
		return nil, err
	}
	g, err := topology.OverlapGraph(tr.Cfg.APs, topology.DefaultMeanInRange, seed)
	if err != nil {
		return nil, err
	}
	tp, err := topology.FromOverlap(g, tr.ClientAP)
	if err != nil {
		return nil, err
	}
	return &Scenario{Trace: tr, Topo: tp, Seed: seed}, nil
}

// DayRuns holds one full-day simulation per scheme over a common scenario —
// Figs 6, 7, 8, 9 and the §5.2.3 table all read from it.
type DayRuns struct {
	Scenario *Scenario
	Results  map[sim.Scheme]*sim.Result
}

// DefaultSchemes is the scheme set the paper's figures use.
var DefaultSchemes = []sim.Scheme{
	sim.NoSleep, sim.SoI, sim.SoIKSwitch, sim.SoIFullSwitch,
	sim.BH2KSwitch, sim.BH2FullSwitch, sim.BH2NoBackup, sim.Optimal,
}

// RunDay simulates the given schemes over one scenario, fanning out across
// a GOMAXPROCS-wide worker pool (see RunDayWorkers). Pass nil for the
// default scheme set.
func RunDay(sc *Scenario, schemes []sim.Scheme) (*DayRuns, error) {
	return RunDayWorkers(sc, schemes, 0)
}

// RunDayWorkers is RunDay with an explicit worker count (<=0 uses
// GOMAXPROCS; 1 recovers the fully serial path). All schemes share the
// scenario's trace and topology read-only, and results are identical at
// any width because each run's randomness is self-contained.
func RunDayWorkers(sc *Scenario, schemes []sim.Scheme, workers int) (*DayRuns, error) {
	if schemes == nil {
		schemes = DefaultSchemes
	}
	base := sim.Config{Trace: sc.Trace, Topo: sc.Topo, Seed: sc.Seed, Shards: sc.Shards}
	jobs := runner.SchemeJobs(base, schemes)
	// Figs 6, 8 and the headline always need the no-sleep baseline.
	if !slices.Contains(schemes, sim.NoSleep) {
		jobs = append(jobs, runner.SchemeJobs(base, []sim.Scheme{sim.NoSleep})...)
	}
	out := &DayRuns{Scenario: sc, Results: map[sim.Scheme]*sim.Result{}}
	for _, o := range (runner.Runner{Workers: workers}).Run(context.Background(), jobs) {
		if o.Err != nil {
			return nil, fmt.Errorf("figures: %w", o.Err) // runner names the scheme
		}
		out.Results[o.Job.Config.Scheme] = o.Result
	}
	return out, nil
}

// hourly reduces a per-bin series to 24 hourly means by mapping each bin
// onto its proportional hour. Series with fewer than 24 bins (short
// traces) land each bin in the right hour instead of silently averaging
// empty windows; hours with no bins report 0.
func hourly(f func(i int) float64, bins int) []float64 {
	out := make([]float64, 24)
	if bins <= 0 {
		return out
	}
	var ws [24]stats.Welford
	for i := 0; i < bins; i++ {
		ws[i*24/bins].Add(f(i))
	}
	for h := range out {
		out[h] = ws[h].Mean()
	}
	return out
}

func hours() []float64 {
	x := make([]float64, 24)
	for i := range x {
		x[i] = float64(i) + 0.5
	}
	return x
}

// Fig2 regenerates the residential utilization curves: mean and median
// downlink utilization plus mean uplink utilization by hour, for n
// subscribers.
func Fig2(n int, seed int64) ([]Series, error) {
	tr, err := trace.Generate(trace.DefaultResidentialConfig(n, seed))
	if err != nil {
		return nil, err
	}
	down := tr.UtilizationMatrix(false, 24)
	up := tr.UtilizationMatrix(true, 24)
	return []Series{
		{Name: "downlink-avg", X: hours(), Y: scale(trace.MeanUtilization(down), 100)},
		{Name: "downlink-median", X: hours(), Y: scale(trace.MedianUtilization(down), 100)},
		{Name: "uplink-avg", X: hours(), Y: scale(trace.MeanUtilization(up), 100)},
	}, nil
}

// Fig3 regenerates the office trace's average AP downlink utilization.
func Fig3(seed int64) (Series, error) {
	tr, err := trace.Generate(trace.DefaultOfficeConfig(seed))
	if err != nil {
		return Series{}, err
	}
	m := tr.UtilizationMatrix(false, 24)
	return Series{Name: "AP-utilization", X: hours(), Y: scale(trace.MeanUtilization(m), 100)}, nil
}

// Fig4 regenerates the peak-hour inter-packet-gap histogram: per-bin
// fraction of idle time, with the paper's bin labels.
func Fig4(seed int64) (labels []string, fracs []float64, err error) {
	tr, err := trace.Generate(trace.DefaultOfficeConfig(seed))
	if err != nil {
		return nil, nil, err
	}
	h := tr.GapHistogram(16*3600, 17*3600)
	for i := 0; i < h.Bins(); i++ {
		labels = append(labels, h.Label(i))
	}
	return labels, scale(h.Fractions(), 100), nil
}

// Fig5 computes Eq (2) card-sleep probabilities for k in {2,4,8}, m modems
// per card and per-line activity p — one of the paper's two panels.
func Fig5(m int, p float64) ([]Series, error) {
	var out []Series
	for _, k := range []int{2, 4, 8} {
		s := Series{Name: fmt.Sprintf("%d-switch", k)}
		for l := 1; l <= 8; l++ {
			s.X = append(s.X, float64(l))
			if l > k {
				s.Y = append(s.Y, 0)
				continue
			}
			v, err := analytic.CardSleepProbability(l, k, m, p)
			if err != nil {
				return nil, err
			}
			s.Y = append(s.Y, v)
		}
		out = append(out, s)
	}
	return out, nil
}

// Fig6 reduces day runs to hourly energy savings (%) vs no-sleep for the
// paper's four plotted schemes.
func Fig6(runs *DayRuns) []Series {
	base := runs.Results[sim.NoSleep]
	var out []Series
	for _, sch := range []sim.Scheme{sim.Optimal, sim.SoI, sim.SoIKSwitch, sim.BH2KSwitch} {
		r := runs.Results[sch]
		if r == nil {
			continue
		}
		sav := sim.SavingsSeries(r, base)
		out = append(out, Series{
			Name: sch.String(), X: hours(),
			Y: hourly(func(i int) float64 { return sav[i] * 100 }, len(sav)),
		})
	}
	return out
}

// Fig7 reduces day runs to hourly online gateway counts.
func Fig7(runs *DayRuns) []Series {
	var out []Series
	for _, sch := range []sim.Scheme{sim.SoI, sim.BH2KSwitch, sim.BH2NoBackup, sim.Optimal} {
		r := runs.Results[sch]
		if r == nil {
			continue
		}
		out = append(out, Series{
			Name: sch.String(), X: hours(),
			Y: hourly(func(i int) float64 { return r.OnlineGWs.MeanAt(i) }, r.OnlineGWs.Bins()),
		})
	}
	return out
}

// Fig8 reduces day runs to the hourly ISP share of total savings (%).
func Fig8(runs *DayRuns) []Series {
	base := runs.Results[sim.NoSleep]
	var out []Series
	for _, sch := range []sim.Scheme{sim.Optimal, sim.SoIKSwitch, sim.BH2KSwitch, sim.SoI} {
		r := runs.Results[sch]
		if r == nil {
			continue
		}
		share := sim.ISPShareSeries(r, base)
		out = append(out, Series{
			Name: sch.String(), X: hours(),
			Y: hourly(func(i int) float64 { return share[i] * 100 }, len(share)),
		})
	}
	return out
}

// Fig9a builds the CDF of flow-completion-time increase (%) vs no-sleep for
// SoI, BH2 and BH2-without-backup, using the paper's accounting: only
// wake-up stalls are charged (the paper's simulator did not model bandwidth
// contention — see EXPERIMENTS.md). Fig9aContention gives the
// full-contention variant.
func Fig9a(runs *DayRuns) []Series {
	return fig9aWith(runs, func(base, r *sim.Result, i int) (float64, bool) {
		b, stall := base.FCT[i], r.FlowStall[i]
		if math.IsNaN(b) || math.IsNaN(stall) || b <= 0 {
			return 0, false
		}
		return stall / b * 100, true
	})
}

// Fig9aContention is the stricter variant where every source of delay
// (including backhaul sharing on aggregated gateways) counts.
func Fig9aContention(runs *DayRuns) []Series {
	return fig9aWith(runs, func(base, r *sim.Result, i int) (float64, bool) {
		b, v := base.FCT[i], r.FCT[i]
		if math.IsNaN(b) || math.IsNaN(v) || b <= 0 {
			return 0, false
		}
		return (v - b) / b * 100, true
	})
}

func fig9aWith(runs *DayRuns, delta func(base, r *sim.Result, i int) (float64, bool)) []Series {
	base := runs.Results[sim.NoSleep]
	var out []Series
	for _, sch := range []sim.Scheme{sim.BH2NoBackup, sim.BH2KSwitch, sim.SoI} {
		r := runs.Results[sch]
		if r == nil {
			continue
		}
		var deltas []float64
		for i := range base.FCT {
			if d, ok := delta(base, r, i); ok {
				deltas = append(deltas, d)
			}
		}
		cdf := stats.NewECDF(deltas)
		s := Series{Name: sch.String()}
		for _, x := range []float64{0, 10, 25, 50, 100, 200, 300, 400, 500, 600} {
			s.X = append(s.X, x)
			s.Y = append(s.Y, cdf.At(x))
		}
		out = append(out, s)
	}
	return out
}

// Fig9b builds the CDF of per-gateway online-time variation (%) of BH2
// schemes relative to plain SoI.
func Fig9b(runs *DayRuns) []Series {
	soi := runs.Results[sim.SoI]
	var out []Series
	for _, sch := range []sim.Scheme{sim.BH2KSwitch, sim.BH2NoBackup} {
		r := runs.Results[sch]
		if r == nil || soi == nil {
			continue
		}
		var deltas []float64
		for g := range soi.GatewayOnTime {
			b := soi.GatewayOnTime[g]
			if b <= 0 {
				continue
			}
			deltas = append(deltas, (r.GatewayOnTime[g]-b)/b*100)
		}
		cdf := stats.NewECDF(deltas)
		s := Series{Name: sch.String()}
		for _, x := range []float64{-100, -75, -50, -25, 0, 25, 50, 75, 100} {
			s.X = append(s.X, x)
			s.Y = append(s.Y, cdf.At(x))
		}
		out = append(out, s)
	}
	return out
}

// Fig10 sweeps gateway density: mean online gateways during peak hours
// (11-19 h) vs mean number of available gateways per client, under BH2.
// All density points run in parallel over one shared trace.
func Fig10(seed int64, densities []float64) (Series, error) {
	return Fig10Sweep([]int64{seed}, densities, 0)
}

// Fig10Sweep is the multi-seed variant of Fig10: every (density, seed)
// pair becomes one runner job over a single shared trace, and the series
// reports the per-density mean with the cross-seed standard deviation as
// error bars (the paper averaged 10 runs). Workers sizes the pool as in
// RunDayWorkers.
func Fig10Sweep(seeds []int64, densities []float64, workers int) (Series, error) {
	if densities == nil {
		densities = []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	}
	if len(seeds) == 0 {
		return Series{}, fmt.Errorf("figures: Fig10 needs at least one seed")
	}
	tr, err := trace.Generate(trace.DefaultSimConfig(seeds[0]))
	if err != nil {
		return Series{}, err
	}
	var jobs []runner.Job
	for _, d := range densities {
		for _, seed := range seeds {
			// The binomial connectivity is part of the sampled randomness:
			// each seed draws its own topology at the target density.
			tp, err := topology.Binomial(tr.Cfg.APs, tr.ClientAP, d, seed)
			if err != nil {
				return Series{}, err
			}
			jobs = append(jobs, runner.Job{
				Name:   fmt.Sprintf("density%g/seed%d", d, seed),
				Config: sim.Config{Trace: tr, Topo: tp, Scheme: sim.BH2KSwitch, Seed: seed},
			})
		}
	}
	outs := (runner.Runner{Workers: workers}).Run(context.Background(), jobs)
	if err := runner.FirstErr(outs); err != nil {
		return Series{}, err
	}
	s := Series{Name: "BH2"}
	for di, d := range densities {
		var w stats.Welford
		for si := range seeds {
			res := outs[di*len(seeds)+si].Result
			w.Add(sim.MeanOver(res.OnlineGWs, 11, 19))
		}
		s.X = append(s.X, d)
		s.Y = append(s.Y, w.Mean())
		if len(seeds) > 1 {
			s.Err = append(s.Err, w.Std())
		}
	}
	return s, nil
}

// Fig14 runs the crosstalk experiment for the paper's four configurations.
func Fig14(seed int64) ([]Series, error) {
	var out []Series
	type cfg struct {
		name  string
		fixed float64
		prof  crosstalk.ServiceProfile
	}
	for _, c := range []cfg{
		{"62Mbps-mixed", 0, crosstalk.Profile62},
		{"62Mbps-600m", 600, crosstalk.Profile62},
		{"30Mbps-mixed", 0, crosstalk.Profile30},
		{"30Mbps-600m", 600, crosstalk.Profile30},
	} {
		res, err := crosstalk.Run(crosstalk.ExperimentConfig{
			FixedLength: c.fixed, Profile: c.prof, Seed: seed, LengthSeed: seed,
		})
		if err != nil {
			return nil, err
		}
		s := Series{Name: c.name}
		for _, r := range res {
			s.X = append(s.X, float64(r.Inactive))
			s.Y = append(s.Y, r.MeanPct)
			s.Err = append(s.Err, r.StdPct)
		}
		out = append(out, s)
	}
	return out, nil
}

// Fig15 synthesizes the production-DSLAM attenuation distribution: per-card
// mean and standard deviation over 14 cards of 72 ports.
func Fig15(seed int64) ([]Series, error) {
	d := dsl.DSLAM{Cards: 14, PortsPerCard: 72}
	atten, err := dsl.Attenuations(d, seed)
	if err != nil {
		return nil, err
	}
	mean := Series{Name: "card-mean-dB"}
	std := Series{Name: "card-std-dB"}
	for c, card := range atten {
		var w stats.Welford
		for _, a := range card {
			w.Add(a)
		}
		mean.X = append(mean.X, float64(c+1))
		mean.Y = append(mean.Y, w.Mean())
		std.X = append(std.X, float64(c+1))
		std.Y = append(std.Y, w.Std())
	}
	return []Series{mean, std}, nil
}

// LineCardTable reproduces the §5.2.3 numbers: average online line cards
// during peak hours (11-19 h) per scheme. Traces shorter than a day are
// averaged over their whole span.
func LineCardTable(runs *DayRuns) map[string]float64 {
	out := map[string]float64{}
	for sch, r := range runs.Results {
		fromH, toH := 11.0, 19.0
		if r.Duration < 19*3600 {
			fromH, toH = 0, r.Duration/3600
		}
		out[sch.String()] = sim.MeanOver(r.OnlineCards, fromH, toH)
	}
	return out
}

// Headline summarizes §5.4: day-average savings per scheme plus the
// user/ISP split for BH2+k-switch and the world-wide extrapolation.
type Headline struct {
	Savings       map[string]float64 // day-average fraction vs no-sleep
	UserShare     float64            // share of BH2+k-switch savings on the user side
	ISPShare      float64
	WorldTWh      float64 // extrapolated annual savings
	OptimalMargin float64 // the "80% margin" measured by the Optimal run
}

// Summarize computes the headline numbers from day runs.
func Summarize(runs *DayRuns) Headline {
	base := runs.Results[sim.NoSleep]
	h := Headline{Savings: map[string]float64{}}
	for sch, r := range runs.Results {
		h.Savings[sch.String()] = r.SavingsVs(base)
	}
	if bh := runs.Results[sim.BH2KSwitch]; bh != nil {
		h.ISPShare = bh.Energy.ISPShareOfSavings(base.Energy)
		h.UserShare = 1 - h.ISPShare
		ex := analytic.DefaultExtrapolation()
		ex.SavingsFrac = bh.SavingsVs(base)
		h.WorldTWh = ex.AnnualSavingsTWh()
	}
	if opt := runs.Results[sim.Optimal]; opt != nil {
		h.OptimalMargin = opt.SavingsVs(base)
	}
	return h
}

func scale(xs []float64, f float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x * f
	}
	return out
}
