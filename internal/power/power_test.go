package power

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStateString(t *testing.T) {
	if Sleeping.String() != "sleeping" || Waking.String() != "waking" || On.String() != "on" {
		t.Errorf("state strings: %v %v %v", Sleeping, Waking, On)
	}
	if State(9).String() != "State(9)" {
		t.Errorf("unknown state string: %v", State(9))
	}
}

func TestDeviceEnergyIntegration(t *testing.T) {
	d := NewDevice("gw", GatewayWatts, On, 0)
	// 100 s on, 50 s sleeping, 60 s waking, 100 s on.
	d.SetState(100, Sleeping)
	d.SetState(150, Waking)
	d.SetState(210, On)
	got := d.EnergyAt(310)
	want := 9.0*100 + 0 + 9.0*60 + 9.0*100
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("energy = %v, want %v", got, want)
	}
	if ot := d.OnTimeAt(310); math.Abs(ot-260) > 1e-9 {
		t.Errorf("onTime = %v, want 260", ot)
	}
	if d.Wakeups() != 1 {
		t.Errorf("wakeups = %d, want 1", d.Wakeups())
	}
}

func TestDeviceNeverSleepsBaseline(t *testing.T) {
	d := NewDevice("card", LineCardWatts, On, 0)
	day := 86400.0
	if got := d.EnergyAt(day); math.Abs(got-98*day) > 1e-6 {
		t.Errorf("always-on card energy = %v, want %v", got, 98*day)
	}
}

func TestDeviceDirectSleepToOnCountsWakeup(t *testing.T) {
	d := NewDevice("gw", GatewayWatts, Sleeping, 0)
	d.SetState(10, On)
	if d.Wakeups() != 1 {
		t.Errorf("wakeups = %d, want 1", d.Wakeups())
	}
}

func TestDeviceTimeMonotonicityPanics(t *testing.T) {
	d := NewDevice("gw", GatewayWatts, On, 100)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on time going backwards")
		}
	}()
	d.SetState(50, Sleeping)
}

func TestRepeatedSameStateTransitions(t *testing.T) {
	d := NewDevice("gw", GatewayWatts, On, 0)
	d.SetState(10, On)
	d.SetState(20, On)
	if got := d.EnergyAt(30); math.Abs(got-270) > 1e-9 {
		t.Errorf("energy = %v, want 270", got)
	}
	if d.Wakeups() != 0 {
		t.Errorf("wakeups = %d, want 0", d.Wakeups())
	}
}

// Property: energy is non-decreasing in time and bounded by ActiveW * elapsed.
func TestDeviceEnergyBoundsProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		d := NewDevice("x", 10, Sleeping, 0)
		t0 := 0.0
		states := []State{Sleeping, Waking, On}
		prevE := 0.0
		for i, r := range raw {
			t0 += float64(r%1000) + 1
			d.SetState(t0, states[i%3])
			e := d.EnergyAt(t0)
			if e < prevE {
				return false
			}
			if e > 10*t0+1e-9 {
				return false
			}
			prevE = e
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAccountingSavings(t *testing.T) {
	base := Accounting{UserJ: 600, ISPJ: 400}
	run := Accounting{UserJ: 200, ISPJ: 140}
	if got := run.SavingsVs(base); math.Abs(got-0.66) > 1e-12 {
		t.Errorf("savings = %v, want 0.66", got)
	}
	// ISP contributed 260 of the 660 saved joules.
	if got := run.ISPShareOfSavings(base); math.Abs(got-260.0/660.0) > 1e-12 {
		t.Errorf("ISP share = %v, want %v", got, 260.0/660.0)
	}
}

func TestAccountingEdgeCases(t *testing.T) {
	var zero Accounting
	if zero.SavingsVs(zero) != 0 {
		t.Error("zero baseline should give zero savings")
	}
	base := Accounting{UserJ: 100}
	worse := Accounting{UserJ: 200}
	if got := worse.SavingsVs(base); got != -1 {
		t.Errorf("negative savings = %v, want -1", got)
	}
	if got := worse.ISPShareOfSavings(base); got != 0 {
		t.Errorf("ISP share with no savings = %v, want 0", got)
	}
}

func TestISPShareClampsNegativeISPSavings(t *testing.T) {
	base := Accounting{UserJ: 1000, ISPJ: 100}
	run := Accounting{UserJ: 100, ISPJ: 200} // ISP got worse, user carried it
	got := run.ISPShareOfSavings(base)
	if got != 0 {
		t.Errorf("ISP share = %v, want 0 (clamped)", got)
	}
}

func TestUnitConversions(t *testing.T) {
	if WattHours(3600) != 1 {
		t.Errorf("WattHours(3600) = %v", WattHours(3600))
	}
	if KWh(3.6e6) != 1 {
		t.Errorf("KWh(3.6e6) = %v", KWh(3.6e6))
	}
}

func TestPaperPowerBudget(t *testing.T) {
	// Sanity: the paper's 48-port DSLAM (4 cards) no-sleep draw per day.
	day := 86400.0
	ispW := ShelfWatts + 4*LineCardWatts + 48*ISPModemWatts
	userW := 48 * GatewayWatts
	totalKWh := KWh((ispW + userW) * day)
	// 21+392+48 = 461 W ISP, 432 W user => 893 W => ~21.4 kWh/day.
	if math.Abs(totalKWh-21.4) > 0.2 {
		t.Errorf("daily kWh = %v, want ~21.4", totalKWh)
	}
}
