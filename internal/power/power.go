// Package power models the power draw and energy accounting of access
// network devices: user gateways (wireless router + ADSL modem), DSLAM
// shelves, DSL line cards and the per-line ISP modems.
//
// The figures come from the paper's measurements (§5.1):
//
//   - Netgear WNR 3500L wireless router: ~5 W, <10% variation with load
//   - Telsey CPVA642WA ADSL gateway:     ~9 W, ~constant across load
//   - Alcatel 7302 ISAM shelf:           21 W typical (53 W max)
//   - NVLT-C DSL line card:              98 W typical (112 W max)
//   - per-line ISP modem (port):         ~1 W
//
// Devices are modelled as three-state machines (On / Waking / Sleeping).
// A waking device draws full power but carries no traffic — exactly the
// penalty the paper charges for the 60 s gateway wake-up.
package power

import "fmt"

// Default power figures in watts, as measured in the paper.
const (
	GatewayWatts   = 9.0  // Telsey CPVA642WA ADSL gateway (modem+AP+router)
	RouterWatts    = 5.0  // Netgear WNR 3500L (used for sensitivity runs)
	ShelfWatts     = 21.0 // Alcatel 7302 ISAM shelf, typical
	LineCardWatts  = 98.0 // NVLT-C line card, typical
	ISPModemWatts  = 1.0  // single DSLAM port/modem
	SleepWatts     = 0.0  // the paper counts a sleeping device as off
	ShelfMaxWatts  = 53.0
	CardMaxWatts   = 112.0
	GatewayStandby = 0.0 // BH2 assumes full power-off via SoI
)

// State is a device power state.
type State uint8

const (
	// Sleeping devices draw SleepWatts and carry no traffic.
	Sleeping State = iota
	// Waking devices draw full power but carry no traffic yet.
	Waking
	// On devices draw full power and carry traffic.
	On
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Sleeping:
		return "sleeping"
	case Waking:
		return "waking"
	case On:
		return "on"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Device tracks the power state of one device and integrates its energy use
// over time. All times are in seconds; energy is reported in joules.
type Device struct {
	Name       string
	ActiveW    float64 // draw when On or Waking
	SleepW     float64 // draw when Sleeping
	state      State
	lastChange float64 // time of the last state change
	joules     float64 // energy accumulated up to lastChange
	onTime     float64 // cumulative seconds in On or Waking
	wakeups    int
}

// NewDevice creates a device in the given initial state at time t0.
func NewDevice(name string, activeW float64, initial State, t0 float64) *Device {
	return &Device{Name: name, ActiveW: activeW, SleepW: SleepWatts, state: initial, lastChange: t0}
}

// State returns the current power state.
func (d *Device) State() State { return d.state }

// draw returns the instantaneous power draw in the current state.
func (d *Device) draw() float64 {
	if d.state == Sleeping {
		return d.SleepW
	}
	return d.ActiveW
}

// DrawW returns the instantaneous power draw (for sampling).
func (d *Device) DrawW() float64 { return d.draw() }

// advance integrates energy from lastChange to t.
func (d *Device) advance(t float64) {
	if t < d.lastChange {
		panic(fmt.Sprintf("power: time going backwards for %s: %v < %v", d.Name, t, d.lastChange))
	}
	dt := t - d.lastChange
	d.joules += dt * d.draw()
	if d.state != Sleeping {
		d.onTime += dt
	}
	d.lastChange = t
}

// SetState moves the device to state s at time t, integrating energy for the
// elapsed interval. Transitions to the same state are cheap no-ops apart
// from the integration.
func (d *Device) SetState(t float64, s State) {
	d.advance(t)
	if d.state == Sleeping && s == Waking {
		d.wakeups++
	}
	if d.state == Sleeping && s == On {
		// Direct sleep->on counts as a wakeup too (used by schemes that
		// model zero wake latency, e.g. the idealized Optimal).
		d.wakeups++
	}
	d.state = s
}

// EnergyAt returns the total joules consumed in [t0, t].
func (d *Device) EnergyAt(t float64) float64 {
	d.advance(t)
	return d.joules
}

// OnTimeAt returns cumulative non-sleeping seconds in [t0, t].
func (d *Device) OnTimeAt(t float64) float64 {
	d.advance(t)
	return d.onTime
}

// Wakeups returns how many sleep->wake transitions occurred.
func (d *Device) Wakeups() int { return d.wakeups }

// Accounting aggregates energy for a population of devices split into the
// user side (gateways) and the ISP side (shelf + line cards + port modems),
// mirroring the breakdown of Fig 8.
type Accounting struct {
	UserJ float64 // joules consumed by gateways
	ISPJ  float64 // joules consumed by DSLAM shelf, cards and port modems
}

// Total returns total joules.
func (a Accounting) Total() float64 { return a.UserJ + a.ISPJ }

// SavingsVs returns the fractional saving of a relative to baseline
// (0.66 = 66% less energy). A zero baseline yields zero.
func (a Accounting) SavingsVs(baseline Accounting) float64 {
	if baseline.Total() == 0 {
		return 0
	}
	return 1 - a.Total()/baseline.Total()
}

// ISPShareOfSavings returns the fraction of the total savings relative to
// baseline that is attributable to the ISP side (Fig 8's y-axis). Zero when
// there are no savings.
func (a Accounting) ISPShareOfSavings(baseline Accounting) float64 {
	saved := baseline.Total() - a.Total()
	if saved <= 0 {
		return 0
	}
	ispSaved := baseline.ISPJ - a.ISPJ
	if ispSaved < 0 {
		ispSaved = 0
	}
	return ispSaved / saved
}

// WattHours converts joules to watt-hours.
func WattHours(joules float64) float64 { return joules / 3600 }

// KWh converts joules to kilowatt-hours.
func KWh(joules float64) float64 { return joules / 3.6e6 }
