// Package runner is the deterministic parallel experiment runner: it
// schedules campaigns of independent simulations (many schemes, seeds,
// densities, ...) over a fixed-size worker pool and collects results in
// job order, so campaign output is byte-identical regardless of how many
// workers ran it.
//
// Safety rests on two invariants the sim layer upholds:
//
//   - sim.Run is deterministic: all randomness flows through per-run RNGs
//     derived from Config.Seed, and scheme strategies keep every bit of run
//     state on the per-run sim value.
//   - Jobs may share read-only fixtures (one trace.Trace / one
//     topology.Topology generated once, referenced by many Configs);
//     nothing in a run mutates them.
//
// The runner is the seam future scaling work (sharding, multi-scenario
// campaigns, distributed backends) plugs into: anything that can enumerate
// Jobs can fan out through it.
package runner

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"insomnia/internal/sim"
)

// Job names one simulation in a campaign.
type Job struct {
	Name   string
	Config sim.Config
}

// Outcome pairs a job with its result or error.
type Outcome struct {
	Job    Job
	Result *sim.Result
	Err    error
}

// Runner executes jobs on a fixed-size worker pool. The zero value is
// ready to use and sizes the pool by GOMAXPROCS.
type Runner struct {
	// Workers caps concurrent simulations; <=0 means GOMAXPROCS. 1
	// recovers the fully serial path.
	Workers int
	// Exec overrides how a job's simulation is executed; nil means
	// sim.Run. It exists so campaign fault-tolerance tests can inject
	// panics and slow jobs without touching the engine.
	Exec func(sim.Config) (*sim.Result, error)
}

// Run executes every job and returns outcomes in job order. Errors don't
// stop the campaign: each failed job carries its own Err and the rest
// still run (use FirstErr to fail fast afterwards).
func (r Runner) Run(jobs []Job) []Outcome { return r.RunStream(jobs, nil) }

// RunStream is Run with incremental delivery: emit (when non-nil) is
// called on the caller's goroutine once per job, in job order, as soon as
// every earlier job has also completed. Callers use it to checkpoint a
// campaign while it runs — since delivery is a growing prefix of the job
// list, whatever emit persisted before an interruption is exactly a
// prefix, which is what makes resume trivial for the campaign layer.
func (r Runner) RunStream(jobs []Job, emit func(i int, o Outcome)) []Outcome {
	out := make([]Outcome, len(jobs))
	if len(jobs) == 0 {
		return out
	}
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	exec := r.Exec
	if exec == nil {
		exec = sim.Run
	}
	next := make(chan int)
	done := make(chan int, len(jobs))
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				res, err := runJob(exec, jobs[i])
				if err != nil {
					err = fmt.Errorf("runner: job %q: %w", jobs[i].Name, err)
				}
				// Each worker writes only its own index: ordered collection
				// with no post-hoc sorting and no shared accumulator. The
				// send on done publishes the write to the collector.
				out[i] = Outcome{Job: jobs[i], Result: res, Err: err}
				done <- i
			}
		}()
	}
	go func() {
		for i := range jobs {
			next <- i
		}
		close(next)
	}()
	completed := make([]bool, len(jobs))
	cursor := 0
	for n := 0; n < len(jobs); n++ {
		completed[<-done] = true
		for cursor < len(jobs) && completed[cursor] {
			if emit != nil {
				emit(cursor, out[cursor])
			}
			cursor++
		}
	}
	wg.Wait()
	return out
}

// runJob executes one job, converting a panic in the simulation into an
// ordinary error so one poisoned cell cannot take down a whole campaign
// (or the worker pool with it). The panic value and stack ride along in
// the error; the caller decides whether to retry, skip or abort.
func runJob(exec func(sim.Config) (*sim.Result, error), j Job) (res *sim.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = fmt.Errorf("panic: %v\n%s", r, debug.Stack())
		}
	}()
	return exec(j.Config)
}

// Run executes jobs with a default (GOMAXPROCS-wide) pool.
func Run(jobs []Job) []Outcome { return Runner{}.Run(jobs) }

// FirstErr returns the first error in job order, or nil.
func FirstErr(outs []Outcome) error {
	for _, o := range outs {
		if o.Err != nil {
			return o.Err
		}
	}
	return nil
}

// SchemeJobs builds one job per scheme over a shared read-only scenario:
// the base config is copied per job with only the scheme swapped, so every
// run references the same trace and topology fixtures.
func SchemeJobs(base sim.Config, schemes []sim.Scheme) []Job {
	jobs := make([]Job, len(schemes))
	for i, sc := range schemes {
		cfg := base
		cfg.Scheme = sc
		jobs[i] = Job{Name: sc.String(), Config: cfg}
	}
	return jobs
}

// SeedJobs builds one job per seed over a shared read-only scenario — the
// multi-seed sweeps the paper averages its day figures over.
func SeedJobs(base sim.Config, seeds []int64) []Job {
	jobs := make([]Job, len(seeds))
	for i, seed := range seeds {
		cfg := base
		cfg.Seed = seed
		jobs[i] = Job{Name: fmt.Sprintf("%v/seed%d", cfg.Scheme, seed), Config: cfg}
	}
	return jobs
}
