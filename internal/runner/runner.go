// Package runner is the deterministic parallel experiment runner: it
// schedules campaigns of independent simulations (many schemes, seeds,
// densities, ...) over a fixed-size worker pool and collects results in
// job order, so campaign output is byte-identical regardless of how many
// workers ran it.
//
// Safety rests on two invariants the sim layer upholds:
//
//   - sim.Run is deterministic: all randomness flows through per-run RNGs
//     derived from Config.Seed, and scheme strategies keep every bit of run
//     state on the per-run sim value.
//   - Jobs may share read-only fixtures (one trace.Trace / one
//     topology.Topology generated once, referenced by many Configs);
//     nothing in a run mutates them.
//
// The runner is the seam scaling work plugs into: anything that can
// enumerate Jobs can fan out through it. Long-running services share one
// Budget across many Runners so the whole process observes a single
// concurrency ceiling no matter how many campaigns are in flight.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"insomnia/internal/sim"
)

// Job names one simulation in a campaign.
type Job struct {
	Name   string
	Config sim.Config
}

// Outcome pairs a job with its result or error.
type Outcome struct {
	Job    Job
	Result *sim.Result
	Err    error
}

// Delivery is one in-order outcome from RunStream: the job's index in the
// submitted slice plus its outcome.
type Delivery struct {
	Index int
	Outcome
}

// Budget is a process-wide concurrency ceiling shared by any number of
// Runners: every worker, in every pool sharing the budget, holds one slot
// while a simulation executes. Waiters queue on a channel, so concurrent
// campaigns interleave roughly first-come-first-served at job granularity —
// no campaign can starve another, and a canceled campaign's workers stop
// acquiring immediately, returning its slots to the rest. The zero Budget
// must not be used; a nil *Budget means "no shared ceiling".
type Budget struct {
	sem   chan struct{}
	inUse atomic.Int64
}

// NewBudget creates a budget of n slots; n <= 0 means GOMAXPROCS.
func NewBudget(n int) *Budget {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Budget{sem: make(chan struct{}, n)}
}

// Slots returns the budget's capacity.
func (b *Budget) Slots() int { return cap(b.sem) }

// InUse returns the number of currently held slots (diagnostics: the
// campaign server's stats endpoint and the slot-release tests read it).
func (b *Budget) InUse() int { return int(b.inUse.Load()) }

// acquire takes one slot, or reports false when ctx is canceled first.
func (b *Budget) acquire(ctx context.Context) bool {
	select {
	case b.sem <- struct{}{}:
		b.inUse.Add(1)
		return true
	default:
	}
	select {
	case b.sem <- struct{}{}:
		b.inUse.Add(1)
		return true
	case <-ctx.Done():
		return false
	}
}

func (b *Budget) release() {
	b.inUse.Add(-1)
	<-b.sem
}

// Runner executes jobs on a fixed-size worker pool. The zero value is
// ready to use and sizes the pool by GOMAXPROCS.
type Runner struct {
	// Workers caps this runner's own concurrent simulations; <=0 means
	// GOMAXPROCS. 1 recovers the fully serial path.
	Workers int
	// Budget, when non-nil, is a shared ceiling across runners: a worker
	// additionally holds one budget slot per executing job, so the sum of
	// running simulations across every runner sharing the budget never
	// exceeds Budget.Slots(). Workers still caps this runner alone.
	Budget *Budget
	// Exec overrides how a job's simulation is executed; nil means
	// sim.RunContext. It exists so campaign fault-tolerance tests can
	// inject panics and slow jobs without touching the engine.
	Exec func(ctx context.Context, cfg sim.Config) (*sim.Result, error)
}

// Run executes every job and returns outcomes in job order. Errors don't
// stop the campaign: each failed job carries its own Err and the rest
// still run (use FirstErr to fail fast afterwards). When ctx is canceled
// mid-run the slice is still fully populated: jobs that never produced an
// in-order outcome carry ctx's cause as their Err.
func (r Runner) Run(ctx context.Context, jobs []Job) []Outcome {
	out := make([]Outcome, len(jobs))
	for i, j := range jobs {
		out[i] = Outcome{Job: j}
	}
	n := 0
	for d := range r.RunStream(ctx, jobs) {
		out[d.Index] = d.Outcome
		n++
	}
	if n < len(jobs) {
		cause := context.Cause(ctx)
		if cause == nil { // closed early without cancellation cannot happen, but stay safe
			cause = context.Canceled
		}
		for i := n; i < len(jobs); i++ {
			out[i].Err = fmt.Errorf("runner: job %q: %w", jobs[i].Name, cause)
		}
	}
	return out
}

// RunStream executes the jobs over the pool and returns a channel of
// in-order deliveries.
//
// Close semantics: the channel delivers outcomes strictly in job order —
// delivery i appears only after every delivery < i — and closes after the
// last in-order outcome, or early when ctx is canceled. On cancellation
// the delivered prefix is exactly the jobs whose outcomes were complete
// and contiguous at that point; in-flight simulations abort promptly
// (sim.RunContext polls the context at epoch barriers) and their slots —
// pool and Budget — are released before the channel closes. Callers must
// drain the channel or cancel ctx; abandoning it leaks the pool.
//
// The in-order-prefix guarantee is what makes checkpoint/resume trivial
// for the campaign layer: whatever a consumer persisted before an
// interruption is exactly a prefix of the job list.
func (r Runner) RunStream(ctx context.Context, jobs []Job) <-chan Delivery {
	out := make(chan Delivery)
	go r.stream(ctx, jobs, out)
	return out
}

func (r Runner) stream(ctx context.Context, jobs []Job, out chan<- Delivery) {
	defer close(out)
	if len(jobs) == 0 {
		return
	}
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	exec := r.Exec
	if exec == nil {
		exec = sim.RunContext
	}
	results := make([]Outcome, len(jobs))
	next := make(chan int)
	done := make(chan int, len(jobs))
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				if r.Budget != nil {
					if !r.Budget.acquire(ctx) {
						return // canceled while queued: never ran, nothing to report
					}
				}
				res, err := runJob(ctx, exec, jobs[i])
				if r.Budget != nil {
					r.Budget.release()
				}
				if err != nil {
					err = fmt.Errorf("runner: job %q: %w", jobs[i].Name, err)
				}
				// Each worker writes only its own index: ordered collection
				// with no post-hoc sorting and no shared accumulator. The
				// send on done publishes the write to the collector.
				results[i] = Outcome{Job: jobs[i], Result: res, Err: err}
				done <- i
			}
		}()
	}
	go func() {
		defer close(next)
		for i := range jobs {
			select {
			case next <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	completed := make([]bool, len(jobs))
	cursor := 0
	for n := 0; n < len(jobs); n++ {
		select {
		case i := <-done:
			completed[i] = true
			for cursor < len(jobs) && completed[cursor] {
				select {
				case out <- Delivery{Index: cursor, Outcome: results[cursor]}:
				case <-ctx.Done():
					wg.Wait() // workers abort promptly: the sims poll ctx
					return
				}
				cursor++
			}
		case <-ctx.Done():
			wg.Wait()
			return
		}
	}
	wg.Wait()
}

// runJob executes one job, converting a panic in the simulation into an
// ordinary error so one poisoned cell cannot take down a whole campaign
// (or the worker pool with it). The panic value and stack ride along in
// the error; the caller decides whether to retry, skip or abort.
func runJob(ctx context.Context, exec func(context.Context, sim.Config) (*sim.Result, error), j Job) (res *sim.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = fmt.Errorf("panic: %v\n%s", r, debug.Stack())
		}
	}()
	return exec(ctx, j.Config)
}

// Run executes jobs with a default (GOMAXPROCS-wide) pool.
func Run(ctx context.Context, jobs []Job) []Outcome { return Runner{}.Run(ctx, jobs) }

// FirstErr returns the first error in job order, or nil.
func FirstErr(outs []Outcome) error {
	for _, o := range outs {
		if o.Err != nil {
			return o.Err
		}
	}
	return nil
}

// SchemeJobs builds one job per scheme over a shared read-only scenario:
// the base config is copied per job with only the scheme swapped, so every
// run references the same trace and topology fixtures.
func SchemeJobs(base sim.Config, schemes []sim.Scheme) []Job {
	jobs := make([]Job, len(schemes))
	for i, sc := range schemes {
		cfg := base
		cfg.Scheme = sc
		jobs[i] = Job{Name: sc.String(), Config: cfg}
	}
	return jobs
}

// SeedJobs builds one job per seed over a shared read-only scenario — the
// multi-seed sweeps the paper averages its day figures over.
func SeedJobs(base sim.Config, seeds []int64) []Job {
	jobs := make([]Job, len(seeds))
	for i, seed := range seeds {
		cfg := base
		cfg.Seed = seed
		jobs[i] = Job{Name: fmt.Sprintf("%v/seed%d", cfg.Scheme, seed), Config: cfg}
	}
	return jobs
}
