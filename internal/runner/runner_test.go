package runner

import (
	"context"
	"math"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"insomnia/internal/sim"
	"insomnia/internal/topology"
	"insomnia/internal/trace"
)

// scenario builds a reduced shared fixture: one trace and one topology
// referenced read-only by every job in these tests.
func scenario(t *testing.T, seed int64) (*trace.Trace, *topology.Topology) {
	t.Helper()
	var busy trace.Profile
	for i := range busy {
		busy[i] = 0.55
	}
	tr, err := trace.Generate(trace.Config{
		Clients: 48, APs: 8, Profile: busy, Seed: seed, Duration: 2 * 3600,
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := topology.OverlapGraph(8, 5.0, seed)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := topology.FromOverlap(g, tr.ClientAP)
	if err != nil {
		t.Fatal(err)
	}
	return tr, tp
}

// sameResult asserts the metrics the figures consume are identical: energy
// joules, the full FCT vector, and the wakeup/move/resolve counters.
func sameResult(t *testing.T, label string, a, b *sim.Result) {
	t.Helper()
	if a.Energy != b.Energy {
		t.Errorf("%s: energy differs: %+v vs %+v", label, a.Energy, b.Energy)
	}
	if a.Wakeups != b.Wakeups || a.Moves != b.Moves || a.Resolves != b.Resolves {
		t.Errorf("%s: counters differ: wake %d/%d moves %d/%d resolves %d/%d",
			label, a.Wakeups, b.Wakeups, a.Moves, b.Moves, a.Resolves, b.Resolves)
	}
	if len(a.FCT) != len(b.FCT) {
		t.Fatalf("%s: FCT length %d vs %d", label, len(a.FCT), len(b.FCT))
	}
	for i := range a.FCT {
		af, bf := a.FCT[i], b.FCT[i]
		if math.IsNaN(af) != math.IsNaN(bf) || (!math.IsNaN(af) && af != bf) {
			t.Fatalf("%s: FCT[%d] differs: %v vs %v", label, i, af, bf)
		}
	}
}

func TestSameConfigTwiceIsDeterministic(t *testing.T) {
	tr, tp := scenario(t, 21)
	cfg := sim.Config{Trace: tr, Topo: tp, Scheme: sim.BH2KSwitch, Seed: 21, K: 2}
	outs := Run(context.Background(), []Job{{Name: "a", Config: cfg}, {Name: "b", Config: cfg}})
	if err := FirstErr(outs); err != nil {
		t.Fatal(err)
	}
	sameResult(t, "same config twice", outs[0].Result, outs[1].Result)
}

func TestWorkerCountInvariance(t *testing.T) {
	tr, tp := scenario(t, 22)
	base := sim.Config{Trace: tr, Topo: tp, Seed: 22, K: 2}
	jobs := SchemeJobs(base, []sim.Scheme{
		sim.NoSleep, sim.SoI, sim.SoIKSwitch, sim.BH2KSwitch,
		sim.BH2NoBackup, sim.Optimal, sim.Centralized,
	})
	serial := Runner{Workers: 1}.Run(context.Background(), jobs)
	if err := FirstErr(serial); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, runtime.GOMAXPROCS(0)} {
		parallel := Runner{Workers: workers}.Run(context.Background(), jobs)
		if err := FirstErr(parallel); err != nil {
			t.Fatal(err)
		}
		for i := range jobs {
			if parallel[i].Job.Name != jobs[i].Name {
				t.Fatalf("workers=%d: outcome %d is %q, want %q (order lost)",
					workers, i, parallel[i].Job.Name, jobs[i].Name)
			}
			sameResult(t, jobs[i].Name, serial[i].Result, parallel[i].Result)
		}
	}
}

func TestErrorsAreIsolated(t *testing.T) {
	tr, tp := scenario(t, 23)
	good := sim.Config{Trace: tr, Topo: tp, Scheme: sim.SoI, Seed: 23, K: 2}
	outs := Run(context.Background(), []Job{
		{Name: "good-1", Config: good},
		{Name: "bad", Config: sim.Config{}}, // no trace/topology: must fail
		{Name: "good-2", Config: good},
	})
	if outs[0].Err != nil || outs[0].Result == nil {
		t.Errorf("good-1 failed: %v", outs[0].Err)
	}
	if outs[1].Err == nil {
		t.Error("bad job produced no error")
	}
	if outs[2].Err != nil || outs[2].Result == nil {
		t.Errorf("good-2 failed: %v", outs[2].Err)
	}
	if err := FirstErr(outs); err == nil {
		t.Error("FirstErr missed the failed job")
	}
	sameResult(t, "jobs around a failure", outs[0].Result, outs[2].Result)
}

func TestEmptyAndDefaultPool(t *testing.T) {
	if outs := Run(context.Background(), nil); len(outs) != 0 {
		t.Fatalf("empty campaign produced %d outcomes", len(outs))
	}
	// Workers beyond the job count must not deadlock or drop jobs.
	tr, tp := scenario(t, 24)
	outs := Runner{Workers: 64}.Run(context.Background(), []Job{{
		Name: "solo", Config: sim.Config{Trace: tr, Topo: tp, Scheme: sim.SoI, Seed: 24, K: 2},
	}})
	if err := FirstErr(outs); err != nil {
		t.Fatal(err)
	}
}

func TestSeedJobsShareFixtures(t *testing.T) {
	tr, tp := scenario(t, 25)
	base := sim.Config{Trace: tr, Topo: tp, Scheme: sim.BH2KSwitch, K: 2}
	jobs := SeedJobs(base, []int64{1, 2, 3})
	for i, j := range jobs {
		if j.Config.Trace != tr || j.Config.Topo != tp {
			t.Fatalf("job %d does not share the scenario fixtures", i)
		}
		if j.Config.Seed != int64(i+1) {
			t.Fatalf("job %d seed = %d", i, j.Config.Seed)
		}
	}
	outs := Run(context.Background(), jobs)
	if err := FirstErr(outs); err != nil {
		t.Fatal(err)
	}
	// Different seeds must explore different randomness.
	if outs[0].Result.Energy == outs[1].Result.Energy {
		t.Error("seed sweep produced identical energy for different seeds")
	}
}

// TestPanicRecovery pins the fault-tolerance contract: a panic inside a
// job becomes an Outcome error carrying the panic value, the worker pool
// survives, and jobs around the panic still produce results.
func TestPanicRecovery(t *testing.T) {
	tr, tp := scenario(t, 26)
	good := sim.Config{Trace: tr, Topo: tp, Scheme: sim.SoI, Seed: 26, K: 2}
	boom := good
	boom.Seed = -777 // marker the injected exec panics on
	r := Runner{Workers: 3, Exec: func(_ context.Context, cfg sim.Config) (*sim.Result, error) {
		if cfg.Seed == -777 {
			panic("injected cell failure")
		}
		return sim.Run(cfg)
	}}
	outs := r.Run(context.Background(), []Job{
		{Name: "good-1", Config: good},
		{Name: "boom", Config: boom},
		{Name: "good-2", Config: good},
	})
	if outs[0].Err != nil || outs[2].Err != nil {
		t.Fatalf("jobs around the panic failed: %v / %v", outs[0].Err, outs[2].Err)
	}
	if outs[1].Err == nil || outs[1].Result != nil {
		t.Fatalf("panicked job must carry an error and no result, got %v", outs[1])
	}
	msg := outs[1].Err.Error()
	for _, want := range []string{"boom", "panic", "injected cell failure"} {
		if !strings.Contains(msg, want) {
			t.Errorf("panic error %q does not mention %q", msg, want)
		}
	}
	sameResult(t, "jobs around a panic", outs[0].Result, outs[2].Result)
}

// TestPanicDeterminismAcrossWorkers: with a panicking cell in the mix,
// 1 worker and N workers must still agree on which jobs failed and on
// every successful result.
func TestPanicDeterminismAcrossWorkers(t *testing.T) {
	tr, tp := scenario(t, 27)
	exec := func(_ context.Context, cfg sim.Config) (*sim.Result, error) {
		if cfg.Scheme == sim.Optimal {
			panic("optimal is poisoned in this test")
		}
		return sim.Run(cfg)
	}
	base := sim.Config{Trace: tr, Topo: tp, Seed: 27, K: 2}
	jobs := SchemeJobs(base, []sim.Scheme{
		sim.NoSleep, sim.SoI, sim.Optimal, sim.BH2KSwitch, sim.Centralized,
	})
	serial := Runner{Workers: 1, Exec: exec}.Run(context.Background(), jobs)
	for _, workers := range []int{2, 4} {
		parallel := Runner{Workers: workers, Exec: exec}.Run(context.Background(), jobs)
		for i := range jobs {
			if (serial[i].Err != nil) != (parallel[i].Err != nil) {
				t.Fatalf("workers=%d: job %q error mismatch: %v vs %v",
					workers, jobs[i].Name, serial[i].Err, parallel[i].Err)
			}
			if serial[i].Err != nil {
				// Stacks differ across goroutines; the first line (panic
				// value and job name) is the deterministic part.
				sf := strings.SplitN(serial[i].Err.Error(), "\n", 2)[0]
				pf := strings.SplitN(parallel[i].Err.Error(), "\n", 2)[0]
				if sf != pf {
					t.Fatalf("workers=%d: job %q error first line %q vs %q", workers, jobs[i].Name, sf, pf)
				}
				continue
			}
			sameResult(t, jobs[i].Name, serial[i].Result, parallel[i].Result)
		}
	}
}

func TestRunStreamDeliversInJobOrder(t *testing.T) {
	tr, tp := scenario(t, 33)
	var jobs []Job
	for _, sc := range []sim.Scheme{sim.NoSleep, sim.SoI, sim.SoIKSwitch, sim.BH2KSwitch, sim.SoI, sim.NoSleep} {
		jobs = append(jobs, Job{Name: sc.String(), Config: sim.Config{Trace: tr, Topo: tp, Scheme: sc, Seed: 33, K: 2}})
	}
	var emitted []int
	outs := make([]Outcome, len(jobs))
	for d := range (Runner{Workers: 4}).RunStream(context.Background(), jobs) {
		if d.Err != nil {
			t.Errorf("job %d failed: %v", d.Index, d.Err)
		}
		if d.Job.Name != jobs[d.Index].Name {
			t.Errorf("delivery %d carries job %q, want %q", d.Index, d.Job.Name, jobs[d.Index].Name)
		}
		emitted = append(emitted, d.Index)
		outs[d.Index] = d.Outcome
	}
	if err := FirstErr(outs); err != nil {
		t.Fatal(err)
	}
	if len(emitted) != len(jobs) {
		t.Fatalf("delivered %d outcomes, want %d", len(emitted), len(jobs))
	}
	for i, e := range emitted {
		if e != i {
			t.Fatalf("delivery order %v is not job order", emitted)
		}
	}
	// Streamed outcomes match a plain serial run.
	serial := (Runner{Workers: 1}).Run(context.Background(), jobs)
	for i := range jobs {
		sameResult(t, jobs[i].Name, serial[i].Result, outs[i].Result)
	}
}

// TestCancelClosesStreamAndFreesBudget pins the cancellation contract:
// canceling mid-run closes the delivery channel after an in-order prefix,
// aborts in-flight simulations promptly, and returns every Budget slot.
func TestCancelClosesStreamAndFreesBudget(t *testing.T) {
	tr, tp := scenario(t, 41)
	cfg := sim.Config{Trace: tr, Topo: tp, Scheme: sim.SoI, Seed: 41, K: 2}
	jobs := make([]Job, 16)
	for i := range jobs {
		jobs[i] = Job{Name: sim.SoI.String(), Config: cfg}
	}
	budget := NewBudget(2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r := Runner{Workers: 4, Budget: budget}
	delivered := 0
	for d := range r.RunStream(ctx, jobs) {
		if d.Index != delivered {
			t.Fatalf("delivery %d arrived out of order (want %d)", d.Index, delivered)
		}
		delivered++
		if delivered == 2 {
			cancel()
		}
	}
	if delivered >= len(jobs) {
		t.Fatalf("cancel after 2 deliveries still delivered all %d jobs", delivered)
	}
	// The channel only closes after the workers have exited, so every slot
	// is back.
	if n := budget.InUse(); n != 0 {
		t.Fatalf("%d budget slots still held after cancel", n)
	}
}

// TestRunFillsCanceledOutcomes: Run under a canceled context reports the
// cancellation cause on every undelivered job instead of zero outcomes.
func TestRunFillsCanceledOutcomes(t *testing.T) {
	tr, tp := scenario(t, 42)
	cfg := sim.Config{Trace: tr, Topo: tp, Scheme: sim.NoSleep, Seed: 42, K: 2}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before anything runs
	outs := Runner{Workers: 2}.Run(ctx, []Job{{Name: "a", Config: cfg}, {Name: "b", Config: cfg}})
	if len(outs) != 2 {
		t.Fatalf("got %d outcomes, want 2", len(outs))
	}
	for i, o := range outs {
		if o.Err == nil || !strings.Contains(o.Err.Error(), context.Canceled.Error()) {
			t.Errorf("outcome %d: want canceled error, got %v", i, o.Err)
		}
	}
}

// TestBudgetSharedAcrossRunners: two concurrent streams under one small
// budget both complete, and the in-flight simulation count never exceeds
// the budget.
func TestBudgetSharedAcrossRunners(t *testing.T) {
	tr, tp := scenario(t, 43)
	cfg := sim.Config{Trace: tr, Topo: tp, Scheme: sim.NoSleep, Seed: 43, K: 2}
	budget := NewBudget(2)
	var running, peak atomic.Int64
	exec := func(ctx context.Context, c sim.Config) (*sim.Result, error) {
		n := running.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		defer running.Add(-1)
		return sim.RunContext(ctx, c)
	}
	jobs := make([]Job, 6)
	for i := range jobs {
		jobs[i] = Job{Name: "j", Config: cfg}
	}
	var wg sync.WaitGroup
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			outs := Runner{Workers: 4, Budget: budget, Exec: exec}.Run(context.Background(), jobs)
			if err := FirstErr(outs); err != nil {
				t.Errorf("stream failed under shared budget: %v", err)
			}
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > 2 {
		t.Errorf("peak concurrency %d exceeded budget of 2", p)
	}
	if n := budget.InUse(); n != 0 {
		t.Errorf("%d budget slots leaked", n)
	}
}
