package wifi

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTDMAShares(t *testing.T) {
	d := DefaultTDMA
	if got := d.ActiveSliceSec(); math.Abs(got-0.06) > 1e-12 {
		t.Errorf("active slice = %v, want 0.06", got)
	}
	// 4 other gateways share the remaining 40 ms: 10 ms each.
	if got := d.MonitorSliceSec(4); math.Abs(got-0.01) > 1e-12 {
		t.Errorf("monitor slice = %v, want 0.01", got)
	}
	if got := d.MonitorSliceSec(0); got != 0 {
		t.Errorf("monitor slice with no others = %v", got)
	}
	// 60% of a 12 Mbps wireless link covers a 6 Mbps backhaul (§5.3 fn 7).
	if got := d.EffectiveBps(12e6); got < 6e6 {
		t.Errorf("effective rate %v cannot drain 6 Mbps backhaul", got)
	}
}

func TestSeqCounterWraps(t *testing.T) {
	var c SeqCounter
	c.Advance(4000)
	if c.Value() != 4000 {
		t.Fatalf("sn = %d", c.Value())
	}
	c.Advance(200)
	if c.Value() != 104 {
		t.Fatalf("wrapped sn = %d, want 104", c.Value())
	}
}

func TestSeqCounterRejectsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var c SeqCounter
	c.Advance(-1)
}

func TestSeqDelta(t *testing.T) {
	cases := []struct {
		from, to uint16
		want     int
	}{
		{0, 0, 0},
		{0, 5, 5},
		{4090, 10, 16}, // wrap
		{5, 5, 0},
		{100, 99, 4095}, // full wrap minus one
	}
	for _, c := range cases {
		if got := SeqDelta(c.from, c.to); got != c.want {
			t.Errorf("SeqDelta(%d,%d) = %d, want %d", c.from, c.to, got, c.want)
		}
	}
}

// Property: SeqDelta inverts Advance for under-modulus counts.
func TestSeqDeltaInvertsAdvanceProperty(t *testing.T) {
	f := func(start uint16, n uint16) bool {
		c := SeqCounter{sn: start % SNModulus}
		before := c.Value()
		frames := int(n % SNModulus)
		c.Advance(frames)
		return SeqDelta(before, c.Value()) == frames
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestFramesFor(t *testing.T) {
	cases := []struct {
		bytes int64
		want  int
	}{
		{0, 0}, {-5, 0}, {1, 1}, {1500, 1}, {1501, 2}, {4500, 3},
	}
	for _, c := range cases {
		if got := FramesFor(c.bytes); got != c.want {
			t.Errorf("FramesFor(%d) = %d, want %d", c.bytes, got, c.want)
		}
	}
}

func TestLoadEstimatorTracksUtilization(t *testing.T) {
	// A 6 Mbps gateway sending 300 MTU-sized frames over 60 s:
	// 300*1500*8 / (6e6*60) = 1% utilization.
	e := NewLoadEstimator(6e6)
	var c SeqCounter
	e.Observe(0, c.Value())
	for ts := 1; ts <= 60; ts++ {
		c.Advance(5)
		e.Observe(float64(ts), c.Value())
	}
	got := e.Utilization(60, 60)
	want := 300.0 * DefaultFrameBytes * 8 / (6e6 * 60)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("utilization = %v, want %v", got, want)
	}
}

func TestLoadEstimatorWindowsOldSamples(t *testing.T) {
	e := NewLoadEstimator(6e6)
	var c SeqCounter
	e.Observe(0, c.Value())
	c.Advance(1000)
	e.Observe(10, c.Value()) // burst at t=10
	e.Observe(100, c.Value())
	// A window covering only [40,100] must not see the burst.
	if got := e.Utilization(100, 60); got != 0 {
		t.Errorf("old burst leaked into window: %v", got)
	}
}

func TestLoadEstimatorClampsToOne(t *testing.T) {
	e := NewLoadEstimator(1000) // 1 kbps link
	var c SeqCounter
	e.Observe(0, c.Value())
	c.Advance(500)
	e.Observe(1, c.Value())
	if got := e.Utilization(1, 1); got != 1 {
		t.Errorf("utilization = %v, want clamped 1", got)
	}
}

func TestLoadEstimatorBeforePriming(t *testing.T) {
	e := NewLoadEstimator(6e6)
	if got := e.Utilization(10, 60); got != 0 {
		t.Errorf("unprimed utilization = %v", got)
	}
	e.Observe(0, 42)
	if got := e.Utilization(10, 60); got != 0 {
		t.Errorf("single-observation utilization = %v", got)
	}
}

func TestLoadEstimatorFrameSizeError(t *testing.T) {
	// The estimator assumes 1200 B frames; if the gateway actually sends
	// 300 B frames the estimate is 4x the truth — the §3.2 error source.
	e := NewLoadEstimator(6e6)
	var c SeqCounter
	e.Observe(0, c.Value())
	trueBytes := int64(0)
	for ts := 1; ts <= 10; ts++ {
		c.Advance(FramesFor(300)) // 1 frame per 300 B keepalive
		trueBytes += 300
		e.Observe(float64(ts), c.Value())
	}
	got := e.Utilization(10, 10)
	truth := float64(trueBytes) * 8 / (6e6 * 10)
	if got <= truth {
		t.Errorf("estimator should overestimate small frames: %v <= %v", got, truth)
	}
	if got > truth*5 {
		t.Errorf("overestimate too large: %v vs %v", got, truth)
	}
}

func TestLoadEstimatorReset(t *testing.T) {
	e := NewLoadEstimator(6e6)
	var c SeqCounter
	e.Observe(0, c.Value())
	c.Advance(100)
	e.Observe(1, c.Value())
	e.Reset()
	if got := e.Utilization(2, 60); got != 0 {
		t.Errorf("post-reset utilization = %v", got)
	}
	// Re-prime after reset: first observation establishes the new baseline
	// without counting the sleep-time delta.
	e.Observe(2, 0)
	e.Observe(3, 10)
	if got := e.Utilization(3, 1); got == 0 {
		t.Error("estimator dead after reset")
	}
}

func TestLoadEstimatorPanicsOnTimeTravel(t *testing.T) {
	e := NewLoadEstimator(6e6)
	e.Observe(10, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Observe(5, 1)
}

func TestActiveWithin(t *testing.T) {
	e := NewLoadEstimator(6e6)
	var c SeqCounter
	e.Observe(0, c.Value())
	e.Observe(1, c.Value()) // zero frames
	if e.ActiveWithin(1, 60) {
		t.Error("silent gateway reported active")
	}
	c.Advance(1)
	e.Observe(2, c.Value())
	if !e.ActiveWithin(2, 60) {
		t.Error("gateway with a frame not reported active")
	}
	// Out of window: a burst at t=2 is invisible from t=100 with window 60.
	e.Observe(100, c.Value())
	if e.ActiveWithin(100, 60) {
		t.Error("stale frame counted as recent activity")
	}
}
