// Package wifi models the 802.11 machinery BH² is built on (§3.2, §5.3):
//
//   - a virtualized wireless card that time-division-multiplexes one radio
//     across every gateway in range (FatVAP/THEMIS style): a 100 ms TDMA
//     period with 60% devoted to the selected gateway and the remainder
//     split evenly across the others for monitoring;
//   - passive load estimation by MAC Sequence Number (SN) counting: every
//     802.11 data frame a gateway sends carries a 12-bit SN, so two
//     observations of the counter bound the number of frames the gateway
//     transmitted in between — regardless of how briefly the observer
//     listened. Bytes are then estimated with an assumed mean frame size,
//     which is the estimator's real source of error.
package wifi

import "fmt"

// SNModulus is the 802.11 sequence number space (12 bits).
const SNModulus = 4096

// DefaultFrameBytes is the assumed mean data frame size used to convert
// frame counts to bytes.
const DefaultFrameBytes = 1500.0

// TDMA describes the virtual-card schedule of §5.3.
type TDMA struct {
	PeriodSec   float64 // full cycle length (0.1 s in the paper)
	ActiveShare float64 // fraction devoted to the selected gateway (0.6)
}

// DefaultTDMA is the deployed configuration: 100 ms period, 60% active
// slice — §5.3 verified 60% suffices to drain any gateway backhaul since
// wireless rates exceed ADSL speeds.
var DefaultTDMA = TDMA{PeriodSec: 0.1, ActiveShare: 0.6}

// ActiveSliceSec returns the per-period time on the selected gateway.
func (t TDMA) ActiveSliceSec() float64 { return t.PeriodSec * t.ActiveShare }

// MonitorSliceSec returns the per-period time spent on each of nOthers
// monitored gateways.
func (t TDMA) MonitorSliceSec(nOthers int) float64 {
	if nOthers <= 0 {
		return 0
	}
	return t.PeriodSec * (1 - t.ActiveShare) / float64(nOthers)
}

// EffectiveBps is the throughput available towards the selected gateway
// given the raw wireless link rate: the active share of it.
func (t TDMA) EffectiveBps(wirelessBps float64) float64 {
	return wirelessBps * t.ActiveShare
}

// SeqCounter is a gateway's 12-bit data-frame sequence counter.
type SeqCounter struct{ sn uint16 }

// Advance adds n transmitted frames.
func (c *SeqCounter) Advance(n int) {
	if n < 0 {
		panic(fmt.Sprintf("wifi: negative frame count %d", n))
	}
	c.sn = uint16((int(c.sn) + n) % SNModulus)
}

// Value returns the current sequence number.
func (c *SeqCounter) Value() uint16 { return c.sn }

// SeqDelta returns the number of frames sent between two observed sequence
// numbers, assuming fewer than SNModulus frames elapsed (the wrap
// ambiguity is a real limitation of the technique; BH² samples often
// enough that it does not trigger at access-link rates).
func SeqDelta(from, to uint16) int {
	d := int(to) - int(from)
	if d < 0 {
		d += SNModulus
	}
	return d
}

// FramesFor returns how many data frames carry the given payload bytes
// with the standard ~1500 B MTU framing.
func FramesFor(bytes int64) int {
	const mtu = 1500
	if bytes <= 0 {
		return 0
	}
	return int((bytes + mtu - 1) / mtu)
}

// LoadEstimator reconstructs a gateway's backhaul utilization from
// periodic SN observations, as a BH² terminal does while cycling through
// monitor slices.
type LoadEstimator struct {
	BackhaulBps float64 // the gateway's access speed
	FrameBytes  float64 // assumed mean frame size

	// MaxAgeSec bounds sample retention. A sample older than the newest
	// observation minus MaxAgeSec cannot influence any Utilization or
	// ActiveWithin query over a window <= MaxAgeSec (queries are issued at
	// or after the newest observation), so Observe discards such samples
	// in amortized O(1). Zero retains samples forever — which grows one
	// sample per observation and is only suitable for short runs.
	MaxAgeSec float64

	lastT  float64
	lastSN uint16
	primed bool

	// Ring of (time, frames) samples covering the estimation window.
	samples []sample
}

type sample struct {
	t      float64
	frames int
}

// NewLoadEstimator creates an estimator for a gateway with the given
// backhaul speed.
func NewLoadEstimator(backhaulBps float64) *LoadEstimator {
	return &LoadEstimator{BackhaulBps: backhaulBps, FrameBytes: DefaultFrameBytes}
}

// Observe records a sequence-number reading at time t. Observations must be
// monotone in time.
func (e *LoadEstimator) Observe(t float64, sn uint16) {
	if e.primed {
		if t < e.lastT {
			panic(fmt.Sprintf("wifi: observation at %v before %v", t, e.lastT))
		}
		e.samples = append(e.samples, sample{t, SeqDelta(e.lastSN, sn)})
		// Compact only when at least half the ring is stale, so the O(n)
		// pass amortizes to O(1) per observation and the backing array
		// reaches a steady-state capacity (zero allocations thereafter).
		if n := len(e.samples); e.MaxAgeSec > 0 && n >= 32 && e.samples[n/2].t < t-e.MaxAgeSec {
			cut := t - e.MaxAgeSec
			keep := e.samples[:0]
			for _, s := range e.samples {
				if s.t >= cut {
					keep = append(keep, s)
				}
			}
			e.samples = keep
		}
	}
	e.lastT, e.lastSN, e.primed = t, sn, true
}

// Utilization estimates the gateway's backhaul utilization over the window
// [now-window, now]: estimated bytes divided by the link capacity over the
// window. Returns 0 before two observations.
func (e *LoadEstimator) Utilization(now, window float64) float64 {
	if window <= 0 || e.BackhaulBps <= 0 {
		return 0
	}
	from := now - window
	var frames int
	keep := e.samples[:0]
	for _, s := range e.samples {
		if s.t >= from {
			keep = append(keep, s)
			frames += s.frames
		}
	}
	e.samples = keep
	bytes := float64(frames) * e.FrameBytes
	u := bytes * 8 / (e.BackhaulBps * window)
	if u > 1 {
		u = 1
	}
	return u
}

// ActiveWithin reports whether the gateway transmitted any data frame in
// [now-window, now] — the observable "will not hit its idle timeout" test.
func (e *LoadEstimator) ActiveWithin(now, window float64) bool {
	from := now - window
	for _, s := range e.samples {
		if s.t >= from && s.frames > 0 {
			return true
		}
	}
	return false
}

// Reset clears the estimator (used when a gateway sleeps: its counter
// restarts on wake).
func (e *LoadEstimator) Reset() {
	e.primed = false
	e.samples = e.samples[:0]
}
