package dsl

import (
	"math/rand"
)

// Tiny-spec helpers for the analytic oracle (internal/oracle): randomized
// scenario specs small enough that an exhaustive reference interpreter can
// re-simulate them, plus the shrinking step the oracle applies on failure.

// TinySpecMaxGateways bounds TinySpec scenarios: the oracle's reference
// interpreter is O(events x gateways) with no sharding, so specs stay at "a
// handful of gateways, short horizons" as the cross-check harness requires.
const TinySpecMaxGateways = 5

// TinySpec draws a random small scenario spec: 2..TinySpecMaxGateways
// gateways, between one and three clients per gateway, a 900..3600 s horizon
// (seconds), a randomly chosen trace profile, and the overlap topology. The
// spec is already normalized (WithDefaults applied); Schemes is a
// placeholder single entry — oracle runs pick the scheme per check and
// ignore the field. Draws come only from r, so a seeded RNG reproduces the
// spec exactly.
func TinySpec(r *rand.Rand) Spec {
	gws := 2 + r.Intn(TinySpecMaxGateways-1)
	s := Spec{
		Name:     "oracle-tiny",
		Schemes:  []string{"SoI"},
		Duration: float64(900 + r.Intn(2701)),
		Trace: TraceSpec{
			Profile:  ProfileNames[r.Intn(len(ProfileNames))],
			Gateways: gws,
			Clients:  gws + r.Intn(2*gws+1),
		},
		Topology: TopoSpec{Kind: "overlap"},
	}
	out, err := s.WithDefaults()
	if err != nil { // unreachable: every draw above is in-range by construction
		panic(err)
	}
	return out
}

// ShrinkSpec returns a strictly smaller version of a failing tiny spec —
// gateways, clients, and duration each halved (floored at 1 gateway, 1
// client per gateway, 300 s) — for the oracle's shrink-on-failure loop. The
// second result is false when the spec is already minimal and cannot shrink
// further.
func ShrinkSpec(s Spec) (Spec, bool) {
	t := s
	if g := t.Trace.Gateways / 2; g >= 1 && g < t.Trace.Gateways {
		t.Trace.Gateways = g
	}
	if c := t.Trace.Clients / 2; c >= t.Trace.Gateways && c < t.Trace.Clients {
		t.Trace.Clients = c
	}
	if t.Trace.Clients < t.Trace.Gateways {
		t.Trace.Clients = t.Trace.Gateways
	}
	if d := t.Duration / 2; d >= 300 {
		t.Duration = d
	}
	changed := t.Trace.Gateways != s.Trace.Gateways ||
		t.Trace.Clients != s.Trace.Clients ||
		t.Duration != s.Duration
	if !changed {
		return s, false
	}
	out, err := t.WithDefaults()
	if err != nil { // unreachable: shrinking preserves validity
		panic(err)
	}
	return out, true
}
