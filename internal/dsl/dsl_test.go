package dsl

import (
	"math"
	"testing"

	"insomnia/internal/stats"
)

func TestDSLAMShape(t *testing.T) {
	d := EvalDSLAM
	if d.Ports() != 48 {
		t.Errorf("Ports = %d, want 48", d.Ports())
	}
	if d.CardOf(0) != 0 || d.CardOf(11) != 0 || d.CardOf(12) != 1 || d.CardOf(47) != 3 {
		t.Error("CardOf mapping wrong")
	}
	if d.SlotOf(0) != 0 || d.SlotOf(13) != 1 || d.SlotOf(47) != 11 {
		t.Error("SlotOf mapping wrong")
	}
	if err := d.Validate(); err != nil {
		t.Error(err)
	}
	if err := (DSLAM{0, 5}).Validate(); err == nil {
		t.Error("expected error for zero cards")
	}
}

func TestRandomAssignment(t *testing.T) {
	d := EvalDSLAM
	p, err := RandomAssignment(d, 40, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 40 {
		t.Fatalf("got %d assignments", len(p))
	}
	seen := map[int]bool{}
	for _, port := range p {
		if port < 0 || port >= 48 {
			t.Fatalf("port %d out of range", port)
		}
		if seen[port] {
			t.Fatalf("port %d assigned twice", port)
		}
		seen[port] = true
	}
	// Deterministic.
	p2, err := RandomAssignment(d, 40, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p {
		if p[i] != p2[i] {
			t.Fatal("assignment not deterministic")
		}
	}
}

func TestRandomAssignmentOverflow(t *testing.T) {
	if _, err := RandomAssignment(EvalDSLAM, 49, 1); err == nil {
		t.Error("expected error when lines exceed ports")
	}
}

func TestRandomAssignmentSpreadsCards(t *testing.T) {
	// With 40 of 48 ports used, all 4 cards should carry lines — the
	// Appendix's point is that lines land everywhere.
	p, err := RandomAssignment(EvalDSLAM, 40, 7)
	if err != nil {
		t.Fatal(err)
	}
	cards := map[int]int{}
	for _, port := range p {
		cards[EvalDSLAM.CardOf(port)]++
	}
	if len(cards) != 4 {
		t.Errorf("lines on %d cards, want 4", len(cards))
	}
}

func TestAttenuationsMatchFig15(t *testing.T) {
	d := DSLAM{Cards: 14, PortsPerCard: 72} // the production DSLAM of Fig 15
	a, err := Attenuations(d, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 14 || len(a[0]) != 72 {
		t.Fatalf("shape %dx%d", len(a), len(a[0]))
	}
	// Gaussian with sigma ~23 dB per card, all means close together.
	if !CardMeansSimilar(a, 10) {
		t.Error("card means differ too much")
	}
	var all stats.Welford
	for _, card := range a {
		for _, v := range card {
			if v < 1 {
				t.Fatalf("attenuation below floor: %v", v)
			}
			all.Add(v)
		}
	}
	if s := all.Std(); s < 15 || s > 30 {
		t.Errorf("overall sigma = %v dB, want ~23", s)
	}
}

func TestCardMeansSimilarDetectsOutlier(t *testing.T) {
	a := [][]float64{{50, 52, 48}, {90, 92, 88}}
	if CardMeansSimilar(a, 5) {
		t.Error("outlier card not detected")
	}
	if !CardMeansSimilar(a, 50) {
		t.Error("wide tolerance should accept")
	}
}

func TestLoopLengthConversion(t *testing.T) {
	if got := LoopLengthMeters(1); math.Abs(got-70) > 1e-9 {
		t.Errorf("1 dB = %v m, want 70", got)
	}
	// One mile ~ 23 dB.
	if got := LoopLengthMeters(23); math.Abs(got-1610) > 5 {
		t.Errorf("23 dB = %v m, want ~1609", got)
	}
}

func TestWakeTimeDeterministicDefault(t *testing.T) {
	if got := WakeTime(nil); got != WakeSeconds {
		t.Errorf("WakeTime(nil) = %v, want %v", got, WakeSeconds)
	}
}

func TestWakeTimeDistribution(t *testing.T) {
	r := stats.NewRNG(9, 0)
	var w stats.Welford
	maxSeen := 0.0
	for i := 0; i < 20000; i++ {
		x := WakeTime(r)
		if x < 20 || x > MaxResyncSeconds {
			t.Fatalf("wake time %v out of [20,180]", x)
		}
		if x > maxSeen {
			maxSeen = x
		}
		w.Add(x)
	}
	if w.Mean() < 45 || w.Mean() > 75 {
		t.Errorf("mean wake = %v, want ~60", w.Mean())
	}
	if maxSeen < 100 {
		t.Errorf("no long resyncs observed (max %v); tail missing", maxSeen)
	}
}
