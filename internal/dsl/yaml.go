package dsl

// A minimal YAML-subset parser for scenario specs. The repository takes no
// external dependencies, and campaign specs only need the boring core of
// YAML, so that core is implemented here:
//
//   - block mappings (`key: value`), nested by indentation (spaces only);
//   - block sequences (`- item`), including sequences of mappings where
//     the first key sits on the dash line and continuation keys are
//     indented two columns past the dash;
//   - flow sequences of scalars (`[1, 2, 3]`);
//   - scalars: null/true/false, integers, floats, single/double-quoted
//     and bare strings;
//   - `#` comments and blank lines.
//
// Anchors, aliases, multi-document streams, flow mappings, block scalars
// and tabs are rejected with positioned errors. The parse result uses
// map[string]any / []any / scalar values, which ParseSpec re-marshals to
// JSON for strict struct decoding.

import (
	"fmt"
	"strconv"
	"strings"
)

type yamlLine struct {
	num    int // 1-based source line
	indent int
	text   string // content without indentation or trailing comment
}

type yamlParser struct {
	lines []yamlLine
	pos   int
}

// parseYAML parses one YAML document into map/slice/scalar values.
func parseYAML(data []byte) (any, error) {
	lines, err := splitYAMLLines(string(data))
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("dsl: yaml: empty document")
	}
	p := &yamlParser{lines: lines}
	v, err := p.parseBlock(lines[0].indent)
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		return nil, p.errf(p.lines[p.pos], "unexpected content")
	}
	return v, nil
}

func splitYAMLLines(src string) ([]yamlLine, error) {
	var out []yamlLine
	for i, raw := range strings.Split(src, "\n") {
		line := strings.TrimRight(raw, " \r")
		if strings.Contains(line, "\t") {
			return nil, fmt.Errorf("dsl: yaml line %d: tabs are not allowed", i+1)
		}
		indent := len(line) - len(strings.TrimLeft(line, " "))
		text := stripYAMLComment(line[indent:])
		text = strings.TrimRight(text, " ")
		if text == "" {
			continue
		}
		if text == "---" || text == "..." {
			return nil, fmt.Errorf("dsl: yaml line %d: multi-document streams are not supported", i+1)
		}
		out = append(out, yamlLine{num: i + 1, indent: indent, text: text})
	}
	return out, nil
}

// stripYAMLComment removes a trailing comment: a '#' outside quotes that
// is at the start of the content or preceded by a space. A quote opens a
// string only at a token start (content start, or after a space, ':',
// ',' or '[') — an apostrophe inside a bare scalar like `bob's` is just
// a character, so the comment after it still strips.
func stripYAMLComment(s string) string {
	var quote byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case (c == '\'' || c == '"') && tokenStart(s, i):
			quote = c
		case c == '#' && (i == 0 || s[i-1] == ' '):
			return s[:i]
		}
	}
	return s
}

// tokenStart reports whether index i begins a new token, i.e. a quote
// here opens a string rather than sitting inside a bare scalar.
func tokenStart(s string, i int) bool {
	if i == 0 {
		return true
	}
	switch s[i-1] {
	case ' ', ':', ',', '[':
		return true
	}
	return false
}

func (p *yamlParser) errf(l yamlLine, format string, args ...any) error {
	return fmt.Errorf("dsl: yaml line %d: %s", l.num, fmt.Sprintf(format, args...))
}

// parseBlock parses the mapping or sequence starting at the current line,
// which must be indented exactly `indent`.
func (p *yamlParser) parseBlock(indent int) (any, error) {
	l := p.lines[p.pos]
	if l.indent != indent {
		return nil, p.errf(l, "bad indentation (got %d, want %d)", l.indent, indent)
	}
	if isSeqItem(l.text) {
		return p.parseSeq(indent)
	}
	return p.parseMap(indent)
}

func isSeqItem(text string) bool {
	return text == "-" || strings.HasPrefix(text, "- ")
}

func (p *yamlParser) parseMap(indent int) (any, error) {
	m := map[string]any{}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, p.errf(l, "unexpected indent")
		}
		if isSeqItem(l.text) {
			return nil, p.errf(l, "sequence item in mapping")
		}
		key, rest, err := splitKey(l)
		if err != nil {
			return nil, err
		}
		if _, dup := m[key]; dup {
			return nil, p.errf(l, "duplicate key %q", key)
		}
		p.pos++
		if rest != "" {
			v, err := parseFlowValue(l, rest)
			if err != nil {
				return nil, err
			}
			m[key] = v
			continue
		}
		// Value is the nested block on the following deeper-indented
		// lines, a sequence at the key's own indent (YAML allows both),
		// or null when none follows.
		switch {
		case p.pos < len(p.lines) && p.lines[p.pos].indent > indent:
			v, err := p.parseBlock(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			m[key] = v
		case p.pos < len(p.lines) && p.lines[p.pos].indent == indent && isSeqItem(p.lines[p.pos].text):
			v, err := p.parseSeq(indent)
			if err != nil {
				return nil, err
			}
			m[key] = v
		default:
			m[key] = nil
		}
	}
	return m, nil
}

func (p *yamlParser) parseSeq(indent int) (any, error) {
	s := []any{}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, p.errf(l, "unexpected indent")
		}
		if !isSeqItem(l.text) {
			break
		}
		if l.text == "-" {
			// Item is the nested block on following deeper lines.
			p.pos++
			if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
				v, err := p.parseBlock(p.lines[p.pos].indent)
				if err != nil {
					return nil, err
				}
				s = append(s, v)
			} else {
				s = append(s, nil)
			}
			continue
		}
		rest := strings.TrimLeft(l.text[2:], " ")
		if isMapEntry(rest) {
			// `- key: value`: the item is a mapping whose first entry sits
			// on the dash line. Re-enter parseMap with the line rewritten
			// to the item's virtual indentation (two past the dash).
			p.lines[p.pos] = yamlLine{num: l.num, indent: indent + 2, text: rest}
			v, err := p.parseMap(indent + 2)
			if err != nil {
				return nil, err
			}
			s = append(s, v)
			continue
		}
		v, err := parseFlowValue(l, rest)
		if err != nil {
			return nil, err
		}
		s = append(s, v)
		p.pos++
	}
	return s, nil
}

// isMapEntry reports whether a sequence item's inline content starts a
// mapping (`key:` or `key: value`) rather than being a plain scalar.
func isMapEntry(s string) bool {
	if strings.HasPrefix(s, "'") || strings.HasPrefix(s, "\"") || strings.HasPrefix(s, "[") {
		return false
	}
	i := strings.Index(s, ":")
	if i <= 0 {
		return false
	}
	return i == len(s)-1 || s[i+1] == ' '
}

func splitKey(l yamlLine) (key, rest string, err error) {
	i := strings.Index(l.text, ":")
	if i <= 0 {
		return "", "", fmt.Errorf("dsl: yaml line %d: expected `key: value`", l.num)
	}
	if i < len(l.text)-1 && l.text[i+1] != ' ' {
		return "", "", fmt.Errorf("dsl: yaml line %d: `:` must be followed by a space", l.num)
	}
	key = strings.TrimSpace(l.text[:i])
	if strings.HasPrefix(key, "'") || strings.HasPrefix(key, "\"") {
		k, err := parseScalar(l, key)
		if err != nil {
			return "", "", err
		}
		ks, ok := k.(string)
		if !ok {
			return "", "", fmt.Errorf("dsl: yaml line %d: invalid key %q", l.num, key)
		}
		key = ks
	}
	return key, strings.TrimSpace(l.text[i+1:]), nil
}

// parseFlowValue parses an inline value: a flow sequence of scalars or a
// single scalar.
func parseFlowValue(l yamlLine, s string) (any, error) {
	if strings.HasPrefix(s, "[") {
		if !strings.HasSuffix(s, "]") {
			return nil, fmt.Errorf("dsl: yaml line %d: unterminated flow sequence", l.num)
		}
		inner := strings.TrimSpace(s[1 : len(s)-1])
		out := []any{}
		if inner == "" {
			return out, nil
		}
		for _, part := range splitFlowItems(inner) {
			part = strings.TrimSpace(part)
			if part == "" {
				return nil, fmt.Errorf("dsl: yaml line %d: empty flow sequence element", l.num)
			}
			v, err := parseScalar(l, part)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	}
	if strings.HasPrefix(s, "{") {
		return nil, fmt.Errorf("dsl: yaml line %d: flow mappings are not supported", l.num)
	}
	return parseScalar(l, s)
}

// splitFlowItems splits a flow sequence body on commas outside quoted
// strings; as in stripYAMLComment, quotes only open at token starts.
func splitFlowItems(s string) []string {
	var out []string
	var quote byte
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case (c == '\'' || c == '"') && (i == start || tokenStart(s, i)):
			quote = c
		case c == ',':
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return append(out, s[start:])
}

func parseScalar(l yamlLine, s string) (any, error) {
	if len(s) >= 2 {
		if q := s[0]; q == '\'' || q == '"' {
			if s[len(s)-1] != q {
				return nil, fmt.Errorf("dsl: yaml line %d: unterminated string %s", l.num, s)
			}
			body := s[1 : len(s)-1]
			if q == '\'' {
				return strings.ReplaceAll(body, "''", "'"), nil
			}
			// The double-quoted escapes specs actually use.
			r := strings.NewReplacer(`\\`, `\`, `\"`, `"`, `\n`, "\n", `\t`, "\t")
			return r.Replace(body), nil
		}
	}
	switch s {
	case "null", "~":
		return nil, nil
	case "true":
		return true, nil
	case "false":
		return false, nil
	}
	if strings.HasPrefix(s, "&") || strings.HasPrefix(s, "*") {
		return nil, fmt.Errorf("dsl: yaml line %d: anchors/aliases are not supported", l.num)
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return i, nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f, nil
	}
	return s, nil
}
