package dsl

// Scenario specification language.
//
// Besides the DSL *plant* model above, this package hosts the other dsl:
// the declarative scenario description language that turns the simulator
// into an experiment platform. A Spec names everything a campaign needs —
// topology, trace profile, schemes, seeds, sweep axes, output artifacts —
// and is parsed from YAML or JSON (see ParseSpec). internal/campaign
// compiles a validated Spec into runner jobs and artifacts; cmd/campaign
// is the CLI.
//
// The package stays simulation-agnostic: schemes are referenced by their
// canonical names (SchemeNames) so dsl does not import internal/sim; the
// campaign layer owns the name -> sim.Scheme mapping and a test pins the
// two lists to each other.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// SchemeNames lists the canonical scheme spellings a Spec may reference,
// matching sim.Scheme.String() for every scheme the engine implements.
var SchemeNames = []string{
	"no-sleep",
	"SoI",
	"SoI+k-switch",
	"SoI+full-switch",
	"BH2+k-switch",
	"BH2+full-switch",
	"BH2-nobackup+k-switch",
	"optimal",
	"centralized+k-switch",
}

// Profile names a Spec's trace.profile may use.
var ProfileNames = []string{"office", "residential", "flash-crowd", "diurnal-mix", "churn"}

// Topology kinds a Spec's topology.kind may use.
var TopologyKinds = []string{"overlap", "grid-city", "binomial"}

// SweepAxes lists the parameters a campaign may sweep. Integer axes
// (clients, gateways, k) require whole positive values.
var SweepAxes = []string{"mean-in-range", "clients", "gateways", "k", "idle-timeout", "duration"}

// Output artifact names a Spec may request.
var OutputNames = []string{"summary", "json", "power"}

// Spec declares one campaign: a scenario family (trace x topology), the
// schemes and seeds to run over it, optional sweep axes (cross-product),
// and which artifacts to write.
type Spec struct {
	// Name labels the campaign in artifacts. Default "campaign".
	Name string `json:"name,omitempty"`
	// Schemes to simulate, by canonical name (see SchemeNames). Savings
	// columns are computed against "no-sleep" when it is present.
	Schemes []string `json:"schemes"`
	// Seeds are the base RNG seeds; one full scenario is generated and
	// simulated per seed. Default [1].
	Seeds []int64 `json:"seeds,omitempty"`
	// Duration is the simulated span in seconds. Default 86400 (one day).
	Duration float64 `json:"duration,omitempty"`
	// IdleTimeout overrides the SoI idle timeout (seconds).
	IdleTimeout float64 `json:"idle_timeout,omitempty"`
	// K is the k-switch group size for *k-switch schemes. Default 4.
	K int `json:"k,omitempty"`
	// Shards is the engine shard count per simulation (sim.Config.Shards).
	// 0 (the default) lets the campaign choose: cells saturate the worker
	// pool first, and each simulation shards over whatever cores the pool
	// leaves idle. Results are byte-identical at every value, so the key
	// trades wall-clock only, never fidelity.
	Shards int `json:"shards,omitempty"`
	// Workers caps the campaign's concurrent simulations for this spec.
	// 0 (the default, kept unfilled so pre-existing spec hashes are
	// stable) defers to the embedding layer: the CLI's -workers flag or
	// GOMAXPROCS. Like shards, the key trades wall-clock only — results
	// are byte-identical at every value.
	Workers int `json:"workers,omitempty"`
	// Collapse controls the campaign's symmetry-collapse pass: "auto" (and
	// the "" default, kept unfilled so pre-existing spec hashes are stable)
	// collapses cells into their gateway-equivalence quotient whenever the
	// collapse is provably exact — which requires `placement: symmetric` —
	// and "off" always simulates the full scenario. Artifacts are
	// byte-identical either way; the key trades wall-clock only.
	Collapse string `json:"collapse,omitempty"`

	Trace    TraceSpec `json:"trace"`
	Topology TopoSpec  `json:"topology,omitempty"`
	Shelf    ShelfSpec `json:"dslam,omitempty"`

	// Failures injects deterministic gateway crashes and area power outages
	// into every cell (nil: none). The concrete gateways and reboot times
	// are drawn per seed by the campaign layer, so every scheme in a cell
	// row faces the identical failure schedule. A pointer with omitempty
	// keeps failure-free spec hashes — and their resumable manifests —
	// unchanged.
	Failures *FailureSpec `json:"failures,omitempty"`

	// Sweeps expand the campaign into the cross-product of their values;
	// each combination becomes one scenario variant.
	Sweeps []Sweep `json:"sweeps,omitempty"`
	// Outputs selects artifacts: "summary" (summary.csv), "json"
	// (results.json), "power" (hourly power series CSV). Default
	// ["summary", "json"].
	Outputs []string `json:"outputs,omitempty"`
}

// TraceSpec selects and parameterizes the synthetic workload.
type TraceSpec struct {
	// Profile picks the diurnal workload family: "office" (UCSD-like
	// weekday), "residential" (evening-peak ADSL), "flash-crowd"
	// (residential plus a surge window), "diurnal-mix" (weekday/weekend
	// blend) or "churn" (residential with shortened sessions).
	Profile string `json:"profile"`
	// Clients and Gateways size the scenario; Clients >= Gateways.
	Clients  int `json:"clients"`
	Gateways int `json:"gateways"`

	// Placement controls client-to-gateway association: "shuffled" (and
	// the "" default, kept unfilled so pre-existing spec hashes are
	// stable) uses the profile's seeded shuffled round-robin, "symmetric"
	// pins client c to gateway c%gateways with slot-keyed RNG streams so
	// equal-count gateways carry byte-identical workloads — the
	// prerequisite for the campaign's exact symmetry collapse.
	Placement string `json:"placement,omitempty"`

	// Flash-crowd parameters (profile "flash-crowd"): the surge starts at
	// FlashHour o'clock, lasts FlashHours and multiplies the online
	// fraction by FlashScale. Pointers distinguish "omitted" (take the
	// default: 20, 2, 3) from an explicit value — `flash_hour: 0` is a
	// midnight surge, not the default. WithDefaults resolves omissions, so
	// a normalized spec always carries the values it will simulate.
	FlashHour  *float64 `json:"flash_hour,omitempty"`
	FlashHours *float64 `json:"flash_hours,omitempty"`
	FlashScale *float64 `json:"flash_scale,omitempty"`

	// WeekendFrac blends WeekendProfile into the weekday curve (profile
	// "diurnal-mix"). Omitted: 2/7, the average day of a full week; an
	// explicit 0 is a pure-weekday blend.
	WeekendFrac *float64 `json:"weekend_frac,omitempty"`

	// ChurnFactor shortens sessions (profile "churn"). Omitted: 4.
	ChurnFactor *float64 `json:"churn_factor,omitempty"`
}

// TopoSpec selects the wireless overlap topology generator.
type TopoSpec struct {
	// Kind: "overlap" (Viger-Latapy random graph, the paper's §5.1),
	// "grid-city" (O(n) metro grid, required past a few hundred gateways)
	// or "binomial" (the Fig 10 density model). Default: "overlap" up to
	// 256 gateways, "grid-city" above.
	Kind string `json:"kind,omitempty"`
	// MeanInRange is the mean number of gateways a client can hear,
	// including its home. Default 5.6 (§5.1).
	MeanInRange float64 `json:"mean_in_range,omitempty"`
}

// ShelfSpec shapes the DSLAM shelf. The zero value auto-sizes: the
// paper's 4x12 evaluation shelf when it fits every gateway, otherwise
// enough 48-port cards rounded up to whole k-switch groups.
type ShelfSpec struct {
	Cards        int `json:"cards,omitempty"`
	PortsPerCard int `json:"ports_per_card,omitempty"`
}

// Sweep is one swept axis: the campaign runs every value (cross-product
// across multiple sweeps).
type Sweep struct {
	Axis   string    `json:"axis"`
	Values []float64 `json:"values"`
}

// FailureSpec is the `failures:` block: crash schedules and outage windows,
// plus the reboot-time distribution shared by both.
type FailureSpec struct {
	// RebootMean/RebootSigma parameterize the lognormal reboot-time
	// distribution (seconds; defaults 300 and 0.5).
	RebootMean  float64 `json:"reboot_mean,omitempty"`
	RebootSigma float64 `json:"reboot_sigma,omitempty"`

	Crashes []CrashSpec  `json:"crashes,omitempty"`
	Outages []OutageSpec `json:"outages,omitempty"`
}

// CrashSpec fails Count gateways (default 1), chosen per seed, at time At;
// each reboots after Reboot seconds (0: drawn from the distribution).
type CrashSpec struct {
	At     float64 `json:"at"`
	Count  int     `json:"count,omitempty"`
	Reboot float64 `json:"reboot,omitempty"`
}

// OutageSpec cuts power to a contiguous area covering Frac of the gateways
// (default 0.25), placed per seed, over [Start, Start+Duration).
type OutageSpec struct {
	Start    float64 `json:"start"`
	Duration float64 `json:"duration"`
	Frac     float64 `json:"frac,omitempty"`
}

func (f *FailureSpec) normalize(duration float64) error {
	if f.RebootMean == 0 {
		f.RebootMean = 300
	}
	if f.RebootSigma == 0 {
		f.RebootSigma = 0.5
	}
	if f.RebootMean < 0 || math.IsNaN(f.RebootMean) {
		return fmt.Errorf("dsl: failures reboot_mean %v must be positive", f.RebootMean)
	}
	if f.RebootSigma < 0 || math.IsNaN(f.RebootSigma) {
		return fmt.Errorf("dsl: failures reboot_sigma %v must be non-negative", f.RebootSigma)
	}
	if len(f.Crashes) == 0 && len(f.Outages) == 0 {
		return fmt.Errorf("dsl: failures block needs at least one crash or outage")
	}
	for i := range f.Crashes {
		c := &f.Crashes[i]
		if c.At < 0 || math.IsNaN(c.At) || c.At >= duration {
			return fmt.Errorf("dsl: crash %d at %v outside [0, %v)", i, c.At, duration)
		}
		if c.Count == 0 {
			c.Count = 1
		}
		if c.Count < 0 {
			return fmt.Errorf("dsl: crash %d has negative count %d", i, c.Count)
		}
		if c.Reboot < 0 || math.IsNaN(c.Reboot) {
			return fmt.Errorf("dsl: crash %d has invalid reboot %v", i, c.Reboot)
		}
	}
	for i := range f.Outages {
		o := &f.Outages[i]
		if o.Start < 0 || math.IsNaN(o.Start) || o.Start >= duration {
			return fmt.Errorf("dsl: outage %d starts at %v outside [0, %v)", i, o.Start, duration)
		}
		if o.Duration <= 0 || math.IsNaN(o.Duration) || math.IsInf(o.Duration, 0) {
			return fmt.Errorf("dsl: outage %d has invalid duration %v", i, o.Duration)
		}
		if o.Frac == 0 {
			o.Frac = 0.25
		}
		if o.Frac < 0 || o.Frac > 1 || math.IsNaN(o.Frac) {
			return fmt.Errorf("dsl: outage %d frac %v outside (0, 1]", i, o.Frac)
		}
	}
	return nil
}

// maxCells bounds a campaign's size so a typo'd sweep fails fast instead
// of queueing a month of simulation.
const maxCells = 100_000

// WithDefaults validates s and fills defaults, returning the normalized
// spec. It is the single gate every campaign entry point goes through.
func (s Spec) WithDefaults() (Spec, error) {
	if s.Name == "" {
		s.Name = "campaign"
	}
	if len(s.Schemes) == 0 {
		return s, fmt.Errorf("dsl: spec needs at least one scheme (known: %s)", strings.Join(SchemeNames, ", "))
	}
	for _, sc := range s.Schemes {
		if !contains(SchemeNames, sc) {
			return s, fmt.Errorf("dsl: unknown scheme %q (known: %s)", sc, strings.Join(SchemeNames, ", "))
		}
	}
	if len(s.Seeds) == 0 {
		s.Seeds = []int64{1}
	}
	if s.Duration == 0 {
		s.Duration = 86400
	}
	if s.Duration < 0 || math.IsNaN(s.Duration) {
		return s, fmt.Errorf("dsl: negative duration %v", s.Duration)
	}
	if s.IdleTimeout < 0 {
		return s, fmt.Errorf("dsl: negative idle_timeout %v", s.IdleTimeout)
	}
	if s.K < 0 {
		return s, fmt.Errorf("dsl: negative k %d", s.K)
	}
	if s.K == 0 {
		s.K = 4
	}
	if s.Shards < 0 {
		return s, fmt.Errorf("dsl: negative shards %d", s.Shards)
	}
	if s.Workers < 0 {
		return s, fmt.Errorf("dsl: negative workers %d", s.Workers)
	}
	switch s.Collapse {
	case "", "auto", "off":
	default:
		return s, fmt.Errorf("dsl: unknown collapse mode %q (known: auto, off)", s.Collapse)
	}

	if err := s.Trace.normalize(); err != nil {
		return s, err
	}
	if s.Topology.MeanInRange == 0 {
		s.Topology.MeanInRange = 5.6
	}
	if s.Topology.MeanInRange < 1 {
		return s, fmt.Errorf("dsl: mean_in_range must be >= 1, got %v", s.Topology.MeanInRange)
	}
	if s.Topology.Kind == "" {
		if s.Trace.Gateways > 256 {
			s.Topology.Kind = "grid-city"
		} else {
			s.Topology.Kind = "overlap"
		}
	}
	if !contains(TopologyKinds, s.Topology.Kind) {
		return s, fmt.Errorf("dsl: unknown topology kind %q (known: %s)", s.Topology.Kind, strings.Join(TopologyKinds, ", "))
	}
	if (s.Shelf.Cards == 0) != (s.Shelf.PortsPerCard == 0) {
		return s, fmt.Errorf("dsl: dslam needs both cards and ports_per_card (or neither)")
	}
	if s.Shelf.Cards < 0 || s.Shelf.PortsPerCard < 0 {
		return s, fmt.Errorf("dsl: negative dslam shape %dx%d", s.Shelf.Cards, s.Shelf.PortsPerCard)
	}

	if s.Failures != nil {
		f := *s.Failures // copy so normalization never aliases the input spec
		if err := f.normalize(s.Duration); err != nil {
			return s, err
		}
		s.Failures = &f
	}

	cells := len(s.Schemes) * len(s.Seeds)
	for i, sw := range s.Sweeps {
		if err := sw.validate(); err != nil {
			return s, fmt.Errorf("dsl: sweep %d: %w", i, err)
		}
		cells *= len(sw.Values)
	}
	if cells > maxCells {
		return s, fmt.Errorf("dsl: campaign expands to %d cells (max %d)", cells, maxCells)
	}

	if len(s.Outputs) == 0 {
		s.Outputs = []string{"summary", "json"}
	}
	for _, o := range s.Outputs {
		if !contains(OutputNames, o) {
			return s, fmt.Errorf("dsl: unknown output %q (known: %s)", o, strings.Join(OutputNames, ", "))
		}
	}
	return s, nil
}

func (t *TraceSpec) normalize() error {
	if t.Profile == "" {
		return fmt.Errorf("dsl: trace needs a profile (known: %s)", strings.Join(ProfileNames, ", "))
	}
	if !contains(ProfileNames, t.Profile) {
		return fmt.Errorf("dsl: unknown trace profile %q (known: %s)", t.Profile, strings.Join(ProfileNames, ", "))
	}
	if t.Clients <= 0 || t.Gateways <= 0 {
		return fmt.Errorf("dsl: trace needs positive clients and gateways, got %d/%d", t.Clients, t.Gateways)
	}
	if t.Clients < t.Gateways {
		return fmt.Errorf("dsl: fewer clients (%d) than gateways (%d)", t.Clients, t.Gateways)
	}
	switch t.Placement {
	case "", "shuffled", "symmetric":
	default:
		return fmt.Errorf("dsl: unknown placement %q (known: shuffled, symmetric)", t.Placement)
	}
	switch t.Profile {
	case "flash-crowd":
		t.FlashHour = orDefault(t.FlashHour, 20)
		t.FlashHours = orDefault(t.FlashHours, 2)
		t.FlashScale = orDefault(t.FlashScale, 3)
	case "diurnal-mix":
		t.WeekendFrac = orDefault(t.WeekendFrac, 2.0/7)
	case "churn":
		t.ChurnFactor = orDefault(t.ChurnFactor, 4)
	}
	if t.FlashHour != nil && (*t.FlashHour < 0 || *t.FlashHour >= 24) {
		return fmt.Errorf("dsl: flash_hour %v outside [0, 24)", *t.FlashHour)
	}
	if t.FlashHours != nil && (*t.FlashHours <= 0 || *t.FlashHours > 24) {
		return fmt.Errorf("dsl: flash_hours %v outside (0, 24]", *t.FlashHours)
	}
	if t.FlashScale != nil && *t.FlashScale < 0 {
		return fmt.Errorf("dsl: negative flash_scale %v", *t.FlashScale)
	}
	if t.WeekendFrac != nil && (*t.WeekendFrac < 0 || *t.WeekendFrac > 1) {
		return fmt.Errorf("dsl: weekend_frac %v outside [0, 1]", *t.WeekendFrac)
	}
	if t.ChurnFactor != nil && *t.ChurnFactor <= 0 {
		return fmt.Errorf("dsl: churn_factor %v must be positive", *t.ChurnFactor)
	}
	return nil
}

// orDefault fills an omitted optional parameter.
func orDefault(p *float64, def float64) *float64 {
	if p == nil {
		return &def
	}
	return p
}

func (sw Sweep) validate() error {
	if !contains(SweepAxes, sw.Axis) {
		return fmt.Errorf("unknown axis %q (known: %s)", sw.Axis, strings.Join(SweepAxes, ", "))
	}
	if len(sw.Values) == 0 {
		return fmt.Errorf("axis %q has no values", sw.Axis)
	}
	integer := sw.Axis == "clients" || sw.Axis == "gateways" || sw.Axis == "k"
	for _, v := range sw.Values {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("axis %q value %v must be positive and finite", sw.Axis, v)
		}
		if integer && v != math.Trunc(v) {
			return fmt.Errorf("axis %q value %v must be a whole number", sw.Axis, v)
		}
	}
	return nil
}

// HasOutput reports whether the (normalized) spec requests the named
// artifact.
func (s Spec) HasOutput(name string) bool { return contains(s.Outputs, name) }

// Hash returns a short stable fingerprint of the spec, used to guard
// checkpoint resume against a spec that changed under the manifest.
func (s Spec) Hash() string {
	buf, err := json.Marshal(s)
	if err != nil { // a Spec of plain values cannot fail to marshal
		panic(err)
	}
	// FNV-1a, inlined to keep the fingerprint format under our control.
	var h uint64 = 0xcbf29ce484222325
	for _, b := range buf {
		h ^= uint64(b)
		h *= 0x100000001b3
	}
	return strconv.FormatUint(h, 16)
}

// ParseSpec parses a scenario spec from YAML (the subset described in
// yaml.go) or JSON (detected by a leading '{') and validates it via
// WithDefaults. Unknown fields are errors: a typo'd key must not become a
// silently ignored default.
func ParseSpec(data []byte) (Spec, error) {
	var jsonBytes []byte
	if trimmed := bytes.TrimLeft(data, " \t\r\n"); len(trimmed) > 0 && trimmed[0] == '{' {
		jsonBytes = data
	} else {
		v, err := parseYAML(data)
		if err != nil {
			return Spec{}, err
		}
		jsonBytes, err = json.Marshal(v)
		if err != nil {
			return Spec{}, fmt.Errorf("dsl: %w", err)
		}
	}
	dec := json.NewDecoder(bytes.NewReader(jsonBytes))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("dsl: spec: %w", err)
	}
	return s.WithDefaults()
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
