// Package dsl models the ISP-side DSL plant: lines, DSLAM ports, line cards
// and shelves, the random line-to-port assignment observed in production
// (Appendix, Fig 15), and modem synchronization timing.
//
// Terminology follows the paper: a *line* is a customer's twisted pair, a
// *port* (with its modem) terminates one line on a *line card*, and a
// *DSLAM shelf* hosts several cards. The Handover Distribution Frame (HDF)
// is where k-switches (package kswitch) can re-map lines to ports.
package dsl

import (
	"fmt"
	"math"

	"insomnia/internal/stats"
)

// Timing constants measured in §5.1.
const (
	// WakeSeconds is the average gateway+modem wake-up and resync time.
	WakeSeconds = 60.0
	// MaxResyncSeconds is the worst observed ADSL resynchronization.
	MaxResyncSeconds = 180.0
	// IdleTimeoutSeconds is the SoI idle timeout chosen in §5.1 so that the
	// probability of sleeping right before a packet arrives is low (82% of
	// gaps are under 60 s).
	IdleTimeoutSeconds = 60.0
)

// AttenuationDBPerMeter converts cable length to signal attenuation: in
// ADSL2+ a 1 dB difference corresponds to roughly 70 m (230 ft) of loop
// (Appendix).
const AttenuationDBPerMeter = 1.0 / 70.0

// DSLAM describes a shelf: Cards line cards of PortsPerCard ports each.
type DSLAM struct {
	Cards        int
	PortsPerCard int
}

// Ports returns the total number of ports.
func (d DSLAM) Ports() int { return d.Cards * d.PortsPerCard }

// CardOf returns the card index hosting the given port.
func (d DSLAM) CardOf(port int) int { return port / d.PortsPerCard }

// SlotOf returns the port's position within its card.
func (d DSLAM) SlotOf(port int) int { return port % d.PortsPerCard }

// Validate checks the shape.
func (d DSLAM) Validate() error {
	if d.Cards <= 0 || d.PortsPerCard <= 0 {
		return fmt.Errorf("dsl: invalid DSLAM %dx%d", d.Cards, d.PortsPerCard)
	}
	return nil
}

// EvalDSLAM is the evaluation scenario's shelf: 48 ports in 4 cards of 12
// (§5.1).
var EvalDSLAM = DSLAM{Cards: 4, PortsPerCard: 12}

// RandomAssignment maps each of n lines to a distinct port uniformly at
// random — the Appendix's conclusion from the attenuation measurements is
// that geographic proximity does not correlate with port proximity.
// Returns portOf[line]. n must not exceed d.Ports().
func RandomAssignment(d DSLAM, n int, seed int64) ([]int, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if n > d.Ports() {
		return nil, fmt.Errorf("dsl: %d lines exceed %d ports", n, d.Ports())
	}
	r := stats.NewRNG(seed, 0xd51a)
	perm := r.Perm(d.Ports())
	return perm[:n], nil
}

// Attenuations synthesizes per-port attenuation readings like the
// production DSLAM of Fig 15: every card shows the same Gaussian with a
// standard deviation of about one mile of loop (~23 dB in ADSL2+ terms) and
// only minimal variation in mean across cards.
//
// The returned matrix is [card][slot] attenuation in dB above an arbitrary
// baseline n (the paper withholds the absolute level; so do we).
func Attenuations(d DSLAM, seed int64) ([][]float64, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	const (
		sigmaDB    = 23.0 // one mile (1609 m) at 1 dB per 70 m
		meanDB     = 50.0 // arbitrary baseline offset "n+50"
		cardJitter = 1.5  // "minimal variations in mean" across cards
	)
	r := stats.NewRNG(seed, 0xa77e)
	out := make([][]float64, d.Cards)
	for c := range out {
		mu := meanDB + cardJitter*r.NormFloat64()
		out[c] = make([]float64, d.PortsPerCard)
		for s := range out[c] {
			a := mu + sigmaDB*r.NormFloat64()
			if a < 1 {
				a = 1
			}
			out[c][s] = a
		}
	}
	return out, nil
}

// LoopLengthMeters converts an attenuation reading (dB) to an equivalent
// loop length.
func LoopLengthMeters(attenDB float64) float64 {
	return attenDB / AttenuationDBPerMeter
}

// CardMeansSimilar reports whether per-card attenuation means lie within
// tol dB of the global mean — the Fig 15 observation that justifies random
// port assignment.
func CardMeansSimilar(atten [][]float64, tol float64) bool {
	var global stats.Welford
	for _, card := range atten {
		for _, a := range card {
			global.Add(a)
		}
	}
	for _, card := range atten {
		var w stats.Welford
		for _, a := range card {
			w.Add(a)
		}
		if math.Abs(w.Mean()-global.Mean()) > tol {
			return false
		}
	}
	return true
}

// WakeTime draws a wake-up duration: WakeSeconds on average with a spread
// up to MaxResyncSeconds ("resynchronization can be as high as 3 minutes").
// With a nil RNG it returns the deterministic average, which is what the
// §5 evaluation uses.
func WakeTime(r interface{ Float64() float64 }) float64 {
	if r == nil {
		return WakeSeconds
	}
	// Triangular-ish: 45 s floor plus an exponential tail clipped at the
	// observed 3 min maximum; mean stays ~60 s.
	const floor = 45.0
	t := floor - 15 + 30*r.Float64() // 30..60 base
	u := r.Float64()
	if u < 0.25 {
		t += (MaxResyncSeconds - t) * u * 2 // occasional long resync
	}
	if t > MaxResyncSeconds {
		t = MaxResyncSeconds
	}
	return t
}
