package dsl

import "testing"

// FuzzParseSpec drives arbitrary bytes through the YAML-subset parser,
// the JSON decoding, and spec validation. The contract under fuzz is
// simple: malformed input must come back as an error, never a panic, and
// any input accepted as a Spec must survive Hash() (i.e. normalize to a
// marshalable value). CI runs a short -fuzz smoke on every push; longer
// local runs with `go test -fuzz FuzzParseSpec ./internal/dsl` extend
// the corpus.
func FuzzParseSpec(f *testing.F) {
	seeds := []string{
		specYAML,
		`{"schemes": ["SoI"], "trace": {"profile": "office", "clients": 50, "gateways": 10}}`,
		"schemes: [SoI]\ntrace:\n  profile: office\n  clients: 10\n  gateways: 2\nfailures:\n  reboot_mean: 120\n  crashes:\n    - at: 100\n      count: 2\n  outages:\n    - start: 300\n      duration: 60\n      frac: 0.5\n",
		// Malformed inputs steer the fuzzer toward each error path.
		"a:\n\tb: 1",            // tab
		"a: [1, 2",              // unterminated flow sequence
		`a: "oops`,              // unterminated string
		"---\na: 1",             // multi-document
		"a: 1\n  b: 2",          // stray indent
		"a: &x 1",               // anchor
		"- 1\n- 2",              // top-level sequence, not a mapping
		"failures:\n  crashes:", // incomplete failures block
		"schemes: [SoI]\ntrace:\n  profile: office\n  clients: 10\n  gateways: 2\nfailures:\n  crashes:\n    - at: -5\n",
		"{\"schemes\": [",   // truncated JSON
		"\x00\xff\xfe",      // binary junk
		"duration: 1e99999", // float overflow
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseSpec(data) // must return an error, never panic
		if err != nil {
			return
		}
		if s.Hash() == "" { // accepted specs must hash
			t.Errorf("valid spec produced empty hash: %q", data)
		}
	})
}
