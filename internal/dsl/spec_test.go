package dsl

import (
	"strings"
	"testing"
)

const specYAML = `
# A small campaign spec exercising every section.
name: unit-test
schemes: [no-sleep, SoI, BH2+k-switch]
seeds: [1, 2]
duration: 7200
k: 2
shards: 3
idle_timeout: 30
trace:
  profile: flash-crowd
  clients: 120
  gateways: 24
  flash_hour: 20
  flash_hours: 2
  flash_scale: 3
topology:
  kind: grid-city
  mean_in_range: 5.6
dslam:
  cards: 2
  ports_per_card: 16
sweeps:
  - axis: mean-in-range
    values: [5.6, 7]
  - axis: k
    values: [2, 4]
outputs: [summary, json, power]
`

func TestParseSpecYAML(t *testing.T) {
	s, err := ParseSpec([]byte(specYAML))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "unit-test" || len(s.Schemes) != 3 || s.Schemes[2] != "BH2+k-switch" {
		t.Errorf("schemes parsed wrong: %+v", s)
	}
	if len(s.Seeds) != 2 || s.Seeds[1] != 2 {
		t.Errorf("seeds parsed wrong: %v", s.Seeds)
	}
	if s.Duration != 7200 || s.K != 2 || s.IdleTimeout != 30 || s.Shards != 3 {
		t.Errorf("scalars parsed wrong: %+v", s)
	}
	if s.Trace.Profile != "flash-crowd" || s.Trace.Clients != 120 || *s.Trace.FlashScale != 3 {
		t.Errorf("trace parsed wrong: %+v", s.Trace)
	}
	if s.Topology.Kind != "grid-city" || s.Topology.MeanInRange != 5.6 {
		t.Errorf("topology parsed wrong: %+v", s.Topology)
	}
	if s.Shelf.Cards != 2 || s.Shelf.PortsPerCard != 16 {
		t.Errorf("dslam parsed wrong: %+v", s.Shelf)
	}
	if len(s.Sweeps) != 2 || s.Sweeps[0].Axis != "mean-in-range" || len(s.Sweeps[1].Values) != 2 {
		t.Errorf("sweeps parsed wrong: %+v", s.Sweeps)
	}
	if !s.HasOutput("power") || s.HasOutput("nope") {
		t.Errorf("outputs parsed wrong: %v", s.Outputs)
	}
}

func TestParseSpecSequenceAtKeyIndent(t *testing.T) {
	// YAML also allows block sequences at the parent key's own indent.
	s, err := ParseSpec([]byte(`
schemes: [SoI]
trace:
  profile: office
  clients: 10
  gateways: 2
sweeps:
- axis: k
  values: [2, 4]
`))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Sweeps) != 1 || s.Sweeps[0].Axis != "k" || len(s.Sweeps[0].Values) != 2 {
		t.Errorf("sweeps parsed wrong: %+v", s.Sweeps)
	}
}

func TestParseSpecJSON(t *testing.T) {
	s, err := ParseSpec([]byte(`{
		"schemes": ["no-sleep", "optimal"],
		"trace": {"profile": "office", "clients": 50, "gateways": 10}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Schemes) != 2 || s.Trace.Clients != 50 {
		t.Errorf("JSON spec parsed wrong: %+v", s)
	}
}

func TestSpecDefaults(t *testing.T) {
	s, err := ParseSpec([]byte(`
schemes: [SoI]
trace:
  profile: office
  clients: 100
  gateways: 10
`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "campaign" || s.Duration != 86400 || s.K != 4 {
		t.Errorf("defaults not applied: %+v", s)
	}
	if len(s.Seeds) != 1 || s.Seeds[0] != 1 {
		t.Errorf("default seeds wrong: %v", s.Seeds)
	}
	if s.Topology.Kind != "overlap" || s.Topology.MeanInRange != 5.6 {
		t.Errorf("default topology wrong: %+v", s.Topology)
	}
	if len(s.Outputs) != 2 || !s.HasOutput("summary") || !s.HasOutput("json") {
		t.Errorf("default outputs wrong: %v", s.Outputs)
	}
	// Large scenarios default to the O(n) grid generator.
	big, err := ParseSpec([]byte(`
schemes: [SoI]
trace:
  profile: residential
  clients: 4000
  gateways: 1000
`))
	if err != nil {
		t.Fatal(err)
	}
	if big.Topology.Kind != "grid-city" {
		t.Errorf("large scenario should default to grid-city, got %q", big.Topology.Kind)
	}
}

func ptr(v float64) *float64 { return &v }

// TestProfileParamResolution pins the omitted-vs-explicit-zero contract:
// omitted flash parameters resolve to their defaults, while an explicit
// `flash_hour: 0` stays a midnight surge instead of silently becoming
// the 20:00 default.
func TestProfileParamResolution(t *testing.T) {
	s, err := ParseSpec([]byte(`
schemes: [SoI]
trace:
  profile: flash-crowd
  clients: 100
  gateways: 10
  flash_hour: 0
`))
	if err != nil {
		t.Fatal(err)
	}
	if *s.Trace.FlashHour != 0 {
		t.Errorf("explicit flash_hour 0 must survive, got %v", *s.Trace.FlashHour)
	}
	if *s.Trace.FlashHours != 2 || *s.Trace.FlashScale != 3 {
		t.Errorf("omitted params must take defaults, got %v/%v", *s.Trace.FlashHours, *s.Trace.FlashScale)
	}
	m, err := ParseSpec([]byte(`
schemes: [SoI]
trace:
  profile: diurnal-mix
  clients: 100
  gateways: 10
  weekend_frac: 0
`))
	if err != nil {
		t.Fatal(err)
	}
	if *m.Trace.WeekendFrac != 0 {
		t.Errorf("explicit weekend_frac 0 must survive, got %v", *m.Trace.WeekendFrac)
	}
	// Params of other profiles stay unset.
	if m.Trace.FlashHour != nil || m.Trace.ChurnFactor != nil {
		t.Errorf("unrelated profile params must stay nil: %+v", m.Trace)
	}
}

// errSpec returns a valid spec mutated by f, for error-path tests.
func errSpec(f func(*Spec)) Spec {
	s := Spec{
		Schemes: []string{"SoI"},
		Trace:   TraceSpec{Profile: "office", Clients: 100, Gateways: 10},
	}
	f(&s)
	return s
}

func TestSpecErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"unknown scheme", errSpec(func(s *Spec) { s.Schemes = []string{"BH3"} }), "unknown scheme"},
		{"no schemes", errSpec(func(s *Spec) { s.Schemes = nil }), "at least one scheme"},
		{"negative duration", errSpec(func(s *Spec) { s.Duration = -3600 }), "negative duration"},
		{"negative idle timeout", errSpec(func(s *Spec) { s.IdleTimeout = -1 }), "negative idle_timeout"},
		{"negative k", errSpec(func(s *Spec) { s.K = -2 }), "negative k"},
		{"negative shards", errSpec(func(s *Spec) { s.Shards = -1 }), "negative shards"},
		{"unknown profile", errSpec(func(s *Spec) { s.Trace.Profile = "weekend" }), "unknown trace profile"},
		{"missing profile", errSpec(func(s *Spec) { s.Trace.Profile = "" }), "needs a profile"},
		{"no clients", errSpec(func(s *Spec) { s.Trace.Clients = 0 }), "positive clients"},
		{"negative gateways", errSpec(func(s *Spec) { s.Trace.Gateways = -4 }), "positive clients"},
		{"clients below gateways", errSpec(func(s *Spec) { s.Trace.Clients = 5 }), "fewer clients"},
		{"flash hour range", errSpec(func(s *Spec) { s.Trace.FlashHour = ptr(24.0) }), "flash_hour"},
		{"zero flash hours", errSpec(func(s *Spec) { s.Trace.FlashHours = ptr(0.0) }), "flash_hours"},
		{"negative churn", errSpec(func(s *Spec) { s.Trace.ChurnFactor = ptr(-1.0) }), "churn_factor"},
		{"weekend frac range", errSpec(func(s *Spec) { s.Trace.WeekendFrac = ptr(1.5) }), "weekend_frac"},
		{"unknown topology", errSpec(func(s *Spec) { s.Topology.Kind = "mesh" }), "unknown topology kind"},
		{"mean in range", errSpec(func(s *Spec) { s.Topology.MeanInRange = 0.5 }), "mean_in_range"},
		{"half dslam", errSpec(func(s *Spec) { s.Shelf.Cards = 4 }), "dslam"},
		{"unknown sweep axis", errSpec(func(s *Spec) { s.Sweeps = []Sweep{{Axis: "density", Values: []float64{1}}} }), "unknown axis"},
		{"empty sweep values", errSpec(func(s *Spec) { s.Sweeps = []Sweep{{Axis: "k"}} }), "no values"},
		{"negative sweep value", errSpec(func(s *Spec) { s.Sweeps = []Sweep{{Axis: "duration", Values: []float64{-60}}} }), "positive"},
		{"fractional integer axis", errSpec(func(s *Spec) { s.Sweeps = []Sweep{{Axis: "clients", Values: []float64{10.5}}} }), "whole number"},
		{"unknown output", errSpec(func(s *Spec) { s.Outputs = []string{"pdf"} }), "unknown output"},
		{"cell explosion", errSpec(func(s *Spec) {
			vals := make([]float64, 400)
			for i := range vals {
				vals[i] = float64(i + 1)
			}
			s.Sweeps = []Sweep{{Axis: "k", Values: vals}, {Axis: "gateways", Values: vals}}
		}), "cells"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.spec.WithDefaults()
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestParseSpecRejectsUnknownKeys(t *testing.T) {
	_, err := ParseSpec([]byte(`
schemes: [SoI]
shceme_typo: 3
trace:
  profile: office
  clients: 100
  gateways: 10
`))
	if err == nil || !strings.Contains(err.Error(), "shceme_typo") {
		t.Errorf("unknown key should be an error, got %v", err)
	}
}

func TestParseYAMLErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"tabs", "a:\n\tb: 1", "tabs"},
		{"missing colon", "just words", "key: value"},
		{"colon needs space", "a:1", "followed by a space"},
		{"unterminated flow", "a: [1, 2", "unterminated flow"},
		{"unterminated string", `a: "oops`, "unterminated string"},
		{"flow mapping", "a: {b: 1}", "flow mappings"},
		{"multi-doc", "---\na: 1", "multi-document"},
		{"anchor", "a: &x 1", "anchors"},
		{"duplicate key", "a: 1\na: 2", "duplicate key"},
		{"empty", "  \n# only a comment\n", "empty document"},
		{"stray indent", "a: 1\n  b: 2", "unexpected indent"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseYAML([]byte(tc.src))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("parseYAML(%q) error = %v, want mention of %q", tc.src, err, tc.want)
			}
		})
	}
}

// TestParseYAMLApostropheInBareScalar pins that a quote character inside
// a bare scalar is plain text: the trailing comment still strips and
// flow-sequence commas still split.
func TestParseYAMLApostropheInBareScalar(t *testing.T) {
	v, err := parseYAML([]byte(`
name: bob's run   # campaign label
list: [bob's-x, SoI]
`))
	if err != nil {
		t.Fatal(err)
	}
	m := v.(map[string]any)
	if m["name"] != "bob's run" {
		t.Errorf("comment not stripped after apostrophe: %q", m["name"])
	}
	l := m["list"].([]any)
	if len(l) != 2 || l[0] != "bob's-x" || l[1] != "SoI" {
		t.Errorf("flow list with apostrophe parsed wrong: %v", l)
	}
}

func TestParseYAMLScalars(t *testing.T) {
	v, err := parseYAML([]byte(`
int: 42
neg: -7
float: 5.6
exp: 1e3
str: hello world
quoted: "a # not-a-comment"
single: 'it''s'
truthy: true
nothing: null
empty_list: []
list: [1, 'two', 3.5]
`))
	if err != nil {
		t.Fatal(err)
	}
	m := v.(map[string]any)
	if m["int"] != int64(42) || m["neg"] != int64(-7) || m["float"] != 5.6 || m["exp"] != 1e3 {
		t.Errorf("numbers parsed wrong: %v", m)
	}
	if m["str"] != "hello world" || m["quoted"] != "a # not-a-comment" || m["single"] != "it's" {
		t.Errorf("strings parsed wrong: %v", m)
	}
	if m["truthy"] != true || m["nothing"] != nil {
		t.Errorf("literals parsed wrong: %v", m)
	}
	if l := m["empty_list"].([]any); len(l) != 0 {
		t.Errorf("empty list parsed wrong: %v", l)
	}
	l := m["list"].([]any)
	if len(l) != 3 || l[0] != int64(1) || l[1] != "two" || l[2] != 3.5 {
		t.Errorf("flow list parsed wrong: %v", l)
	}
}

func TestParseSpecFailures(t *testing.T) {
	s, err := ParseSpec([]byte(`
schemes: [SoI, BH2+k-switch]
duration: 7200
trace:
  profile: office
  clients: 120
  gateways: 24
failures:
  reboot_mean: 120
  crashes:
    - at: 1800
    - at: 4000
      count: 3
      reboot: 60
  outages:
    - start: 3600
      duration: 900
      frac: 0.5
`))
	if err != nil {
		t.Fatal(err)
	}
	f := s.Failures
	if f == nil {
		t.Fatal("failures block not parsed")
	}
	if f.RebootMean != 120 || f.RebootSigma != 0.5 {
		t.Errorf("reboot distribution wrong: %+v", f)
	}
	if len(f.Crashes) != 2 || f.Crashes[0].Count != 1 || f.Crashes[1].Count != 3 || f.Crashes[1].Reboot != 60 {
		t.Errorf("crashes parsed wrong: %+v", f.Crashes)
	}
	if len(f.Outages) != 1 || f.Outages[0].Frac != 0.5 || f.Outages[0].Duration != 900 {
		t.Errorf("outages parsed wrong: %+v", f.Outages)
	}
	// Default frac fills in when omitted.
	s2, err := ParseSpec([]byte(`
schemes: [SoI]
trace:
  profile: office
  clients: 10
  gateways: 2
failures:
  outages:
    - start: 100
      duration: 60
`))
	if err != nil {
		t.Fatal(err)
	}
	if s2.Failures.Outages[0].Frac != 0.25 {
		t.Errorf("default frac wrong: %v", s2.Failures.Outages[0].Frac)
	}
}

func TestSpecFailureErrorPaths(t *testing.T) {
	fs := func(f FailureSpec) Spec {
		return errSpec(func(s *Spec) { s.Failures = &f })
	}
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"empty block", fs(FailureSpec{}), "at least one crash or outage"},
		{"crash past horizon", fs(FailureSpec{Crashes: []CrashSpec{{At: 90000}}}), "outside"},
		{"negative crash time", fs(FailureSpec{Crashes: []CrashSpec{{At: -1}}}), "outside"},
		{"negative count", fs(FailureSpec{Crashes: []CrashSpec{{At: 100, Count: -2}}}), "negative count"},
		{"negative reboot", fs(FailureSpec{Crashes: []CrashSpec{{At: 100, Reboot: -5}}}), "invalid reboot"},
		{"outage past horizon", fs(FailureSpec{Outages: []OutageSpec{{Start: 90000, Duration: 60}}}), "outside"},
		{"zero outage duration", fs(FailureSpec{Outages: []OutageSpec{{Start: 100}}}), "invalid duration"},
		{"frac above one", fs(FailureSpec{Outages: []OutageSpec{{Start: 100, Duration: 60, Frac: 1.5}}}), "frac"},
		{"negative reboot mean", fs(FailureSpec{RebootMean: -1, Crashes: []CrashSpec{{At: 100}}}), "reboot_mean"},
		{"negative reboot sigma", fs(FailureSpec{RebootSigma: -1, Crashes: []CrashSpec{{At: 100}}}), "reboot_sigma"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.spec.WithDefaults()
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	// Normalization must copy, never mutate the caller's FailureSpec.
	in := errSpec(func(s *Spec) {
		s.Failures = &FailureSpec{Crashes: []CrashSpec{{At: 100}}}
	})
	if _, err := in.WithDefaults(); err != nil {
		t.Fatal(err)
	}
	if in.Failures.RebootMean != 0 {
		t.Errorf("WithDefaults mutated the input failure spec: %+v", in.Failures)
	}
}

// TestSpecHashFailureFreeUnchanged pins that adding the failures field
// did not change the hash of specs that do not use it: resumable
// manifests written before the field existed must still match.
func TestSpecHashFailureFreeUnchanged(t *testing.T) {
	s, err := ParseSpec([]byte(specYAML))
	if err != nil {
		t.Fatal(err)
	}
	if s.Failures != nil {
		t.Fatal("spec without a failures block must keep a nil pointer")
	}
	withF := s
	withF.Failures = &FailureSpec{RebootMean: 300, RebootSigma: 0.5, Crashes: []CrashSpec{{At: 100, Count: 1}}}
	if withF.Hash() == s.Hash() {
		t.Error("adding a failures block must change the hash")
	}
}

func TestSpecHashStable(t *testing.T) {
	a, err := ParseSpec([]byte(specYAML))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseSpec([]byte(specYAML))
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash() != b.Hash() {
		t.Error("hash must be deterministic")
	}
	c := a
	c.Seeds = []int64{1, 3}
	if c.Hash() == a.Hash() {
		t.Error("hash must change when the spec changes")
	}
}
