package topology

import "sort"

// NeighborhoodHashes returns one deterministic hash per vertex that
// canonicalizes the vertex's closed 1-ball — the subgraph induced by the
// vertex and its neighbors, rooted at the vertex — up to isomorphism:
// vertices with isomorphic rooted balls always receive equal hashes,
// independent of vertex numbering. The hash is computed by
// Weisfeiler-Leman color refinement inside the ball, so (as with any
// WL-style canonicalization) distinct balls can in principle collide;
// callers that need exactness, like the campaign symmetry-collapse pass,
// must treat equal hashes as grouping candidates whose simulated behavior
// is provably neighborhood-independent, never as a proof of isomorphism.
//
// Cost is O(sum over vertices of deg^2 * ball size); for the bounded-degree
// graphs GridCity and OverlapGraph build this is linear in practice.
func (g *Graph) NeighborhoodHashes() []uint64 {
	n := g.N()
	out := make([]uint64, n)
	// pos maps a global vertex id to its local index within the current
	// ball (-1 outside); reset after each vertex so the pass stays O(ball).
	pos := make([]int, n)
	for i := range pos {
		pos[i] = -1
	}
	var (
		ball      []int
		adj       [][]int
		col, next []uint64
		buf       []uint64
	)
	for v := 0; v < n; v++ {
		ball = append(ball[:0], v)
		ball = append(ball, g.Adj[v]...)
		for i, u := range ball {
			pos[u] = i
		}
		adj = adj[:0]
		for _, u := range ball {
			var row []int
			for _, w := range g.Adj[u] {
				if j := pos[w]; j >= 0 {
					row = append(row, j)
				}
			}
			adj = append(adj, row)
		}
		// WL refinement: colors start as (is-root, ball degree) and each
		// round folds in the sorted multiset of neighbor colors. A ball
		// has diameter <= 2 through the root, but run enough rounds for
		// colors to stabilize even on dense balls.
		col = col[:0]
		for i := range ball {
			root := uint64(0)
			if i == 0 {
				root = 1
			}
			col = append(col, mix64(root<<32|uint64(len(adj[i]))))
		}
		next = append(next[:0], col...)
		rounds := len(ball)
		if rounds > 8 {
			rounds = 8
		}
		for round := 0; round < rounds; round++ {
			for i := range ball {
				buf = buf[:0]
				for _, j := range adj[i] {
					buf = append(buf, col[j])
				}
				sort.Slice(buf, func(a, b int) bool { return buf[a] < buf[b] })
				h := mix64(col[i])
				for _, c := range buf {
					h = mix64(h ^ mix64(c))
				}
				next[i] = h
			}
			col, next = next, col
		}
		// Final hash: the root's color plus the sorted color multiset of
		// the whole ball — invariant under any relabeling of the ball.
		buf = append(buf[:0], col...)
		sort.Slice(buf, func(a, b int) bool { return buf[a] < buf[b] })
		h := mix64(col[0])
		for _, c := range buf {
			h = mix64(h ^ mix64(c))
		}
		out[v] = h
		for _, u := range ball {
			pos[u] = -1
		}
	}
	return out
}

// mix64 is the splitmix64 finalizer — a strong, dependency-free 64-bit
// mixer for combining WL colors.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
