package topology

import (
	"fmt"
	"strings"
	"testing"
)

// TestNeighborhoodHashesGrid pins the canonical class structure of a plain
// orthogonal grid: every interior vertex (degree-4 star), every non-corner
// boundary vertex (degree-3 star) and every corner (degree-2 star) share a
// hash, and the three classes are mutually distinct.
func TestNeighborhoodHashesGrid(t *testing.T) {
	// 6x6 grid with meanInRange at the density floor => no diagonals.
	g, err := GridCity(36, 4.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	hs := g.NeighborhoodHashes()
	classes := map[uint64][]int{}
	for v, h := range hs {
		classes[h] = append(classes[h], v)
	}
	if len(classes) != 3 {
		t.Fatalf("6x6 grid: got %d neighborhood classes, want 3 (corner/edge/interior): %v", len(classes), classes)
	}
	sizes := map[int]int{}
	for _, vs := range classes {
		sizes[len(vs)]++
	}
	// 4 corners, 16 boundary non-corners, 16 interior.
	if sizes[4] != 1 || sizes[16] != 2 {
		t.Fatalf("6x6 grid class sizes wrong: %v", sizes)
	}
}

// TestNeighborhoodHashesLabeling checks isomorphism invariance directly:
// relabeling a graph permutes the hashes but preserves the multiset and
// the per-vertex assignment under the permutation.
func TestNeighborhoodHashesLabeling(t *testing.T) {
	// A 5-cycle with one chord: vertices are structurally distinct enough
	// to give several classes.
	build := func(perm []int) *Graph {
		g := &Graph{Adj: make([][]int, 5)}
		edges := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {0, 2}}
		for _, e := range edges {
			g.addEdge(perm[e[0]], perm[e[1]])
		}
		return g
	}
	id := []int{0, 1, 2, 3, 4}
	perm := []int{3, 0, 4, 1, 2}
	h1 := build(id).NeighborhoodHashes()
	h2 := build(perm).NeighborhoodHashes()
	for v := range id {
		if h1[v] != h2[perm[v]] {
			t.Fatalf("vertex %d: hash changed under relabeling: %x vs %x", v, h1[v], h2[perm[v]])
		}
	}
	// And the chord endpoints must differ from the far vertex.
	if h1[0] == h1[3] {
		t.Fatal("structurally distinct vertices (chord endpoint vs far vertex) share a hash")
	}
}

// TestGridCityMeanError is the table-driven error-path test: unreachable
// mean in-range targets must name the computed maximum and the gateway
// count so the caller can fix the spec without reading the source.
func TestGridCityMeanError(t *testing.T) {
	cases := []struct {
		n    int
		mean float64
	}{
		{9, 50},
		{100, 8.5},
		{2500, 9.2},
	}
	for _, tc := range cases {
		_, err := GridCity(tc.n, tc.mean, 1)
		if err == nil {
			t.Fatalf("GridCity(%d, %v) should fail", tc.n, tc.mean)
		}
		msg := err.Error()
		for _, want := range []string{
			fmt.Sprintf("%d gateways", tc.n),
			fmt.Sprintf("got %v", tc.mean),
			"up to ~",
		} {
			if !strings.Contains(msg, want) {
				t.Fatalf("GridCity(%d, %v) error %q does not mention %q", tc.n, tc.mean, msg, want)
			}
		}
	}
}
