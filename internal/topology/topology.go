// Package topology generates the wireless overlap topologies of §5.1: which
// gateways each client can reach over the air, and at what rate.
//
// Two generators are provided, matching the paper's two experiments:
//
//   - OverlapGraph: a random connected simple graph over gateways with a
//     prescribed degree sequence (the method of Viger & Latapy used by the
//     paper), from which a client's in-range set is its home gateway plus
//     the home's neighbours. Mean in-range count defaults to 5.6 networks.
//   - Binomial: per-client independent membership with a target mean number
//     of available gateways (the Fig 10 density sweep).
//
// Wireless rates follow §5.1: 12 Mbps to the home gateway and half of that
// (6 Mbps) to adjacent gateways, per the Mark-and-Sweep measurements.
package topology

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"insomnia/internal/stats"
)

// Default wireless capacities (§5.1).
const (
	DefaultHomeBps     = 12e6
	DefaultNeighborBps = 6e6
	// DefaultMeanInRange is the average number of networks in range of a
	// client, including its home network (§5.1, consistent with [39]).
	DefaultMeanInRange = 5.6
)

// Topology describes client-gateway reachability.
type Topology struct {
	NumGateways int
	HomeOf      []int   // per-client home gateway
	ranges      [][]int // per-client in-range gateways; element 0 is home
	HomeBps     float64
	NeighborBps float64
}

// InRange returns the gateways client c can reach, home first. The returned
// slice is shared; treat it as read-only.
func (t *Topology) InRange(c int) []int { return t.ranges[c] }

// NumClients returns the number of clients.
func (t *Topology) NumClients() int { return len(t.HomeOf) }

// LinkBps returns the maximum wireless rate between client c and gateway g:
// HomeBps for the home gateway, NeighborBps for other in-range gateways and
// 0 when out of range.
func (t *Topology) LinkBps(c, g int) float64 {
	if t.HomeOf[c] == g {
		return t.HomeBps
	}
	for _, x := range t.ranges[c][1:] {
		if x == g {
			return t.NeighborBps
		}
	}
	return 0
}

// MeanInRange returns the across-client average size of the in-range set.
func (t *Topology) MeanInRange() float64 {
	if len(t.ranges) == 0 {
		return 0
	}
	var s int
	for _, r := range t.ranges {
		s += len(r)
	}
	return float64(s) / float64(len(t.ranges))
}

// Validate checks structural invariants.
func (t *Topology) Validate() error {
	if len(t.ranges) != len(t.HomeOf) {
		return fmt.Errorf("topology: %d ranges for %d clients", len(t.ranges), len(t.HomeOf))
	}
	for c, home := range t.HomeOf {
		if home < 0 || home >= t.NumGateways {
			return fmt.Errorf("topology: client %d home %d out of range", c, home)
		}
		r := t.ranges[c]
		if len(r) == 0 || r[0] != home {
			return fmt.Errorf("topology: client %d range must start with home", c)
		}
		seen := map[int]bool{}
		for _, g := range r {
			if g < 0 || g >= t.NumGateways {
				return fmt.Errorf("topology: client %d reaches invalid gateway %d", c, g)
			}
			if seen[g] {
				return fmt.Errorf("topology: client %d duplicate gateway %d", c, g)
			}
			seen[g] = true
		}
	}
	return nil
}

// Graph is an undirected simple graph over gateways given as adjacency
// lists.
type Graph struct {
	Adj [][]int
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.Adj) }

// MeanDegree returns the average vertex degree.
func (g *Graph) MeanDegree() float64 {
	if g.N() == 0 {
		return 0
	}
	var s int
	for _, a := range g.Adj {
		s += len(a)
	}
	return float64(s) / float64(g.N())
}

// Connected reports whether the graph is connected.
func (g *Graph) Connected() bool {
	if g.N() == 0 {
		return true
	}
	seen := make([]bool, g.N())
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.Adj[v] {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == g.N()
}

// hasEdge reports whether {u,v} is an edge.
func (g *Graph) hasEdge(u, v int) bool {
	for _, w := range g.Adj[u] {
		if w == v {
			return true
		}
	}
	return false
}

func (g *Graph) addEdge(u, v int) {
	g.Adj[u] = append(g.Adj[u], v)
	g.Adj[v] = append(g.Adj[v], u)
}

func (g *Graph) removeEdge(u, v int) {
	g.Adj[u] = removeOne(g.Adj[u], v)
	g.Adj[v] = removeOne(g.Adj[v], u)
}

func removeOne(s []int, x int) []int {
	for i, v := range s {
		if v == x {
			s[i] = s[len(s)-1]
			return s[:len(s)-1]
		}
	}
	return s
}

// Graphical reports whether the degree sequence is realizable as a simple
// graph (Erdős–Gallai).
func Graphical(deg []int) bool {
	d := append([]int(nil), deg...)
	sort.Sort(sort.Reverse(sort.IntSlice(d)))
	var sum int
	for _, x := range d {
		if x < 0 {
			return false
		}
		sum += x
	}
	if sum%2 != 0 {
		return false
	}
	// prefix[k] = sum of the k largest degrees.
	for k := 1; k <= len(d); k++ {
		var lhs int
		for i := 0; i < k; i++ {
			lhs += d[i]
		}
		rhs := k * (k - 1)
		for i := k; i < len(d); i++ {
			if d[i] < k {
				rhs += d[i]
			} else {
				rhs += k
			}
		}
		if lhs > rhs {
			return false
		}
	}
	return true
}

// havelHakimi realizes a graphical degree sequence as a simple graph.
func havelHakimi(deg []int) (*Graph, error) {
	n := len(deg)
	g := &Graph{Adj: make([][]int, n)}
	type vd struct{ v, d int }
	rem := make([]vd, n)
	for i, d := range deg {
		rem[i] = vd{i, d}
	}
	for {
		sort.Slice(rem, func(i, j int) bool { return rem[i].d > rem[j].d })
		if rem[0].d == 0 {
			return g, nil
		}
		head := rem[0]
		if head.d > len(rem)-1 {
			return nil, fmt.Errorf("topology: degree %d too large for %d peers", head.d, len(rem)-1)
		}
		rem[0].d = 0
		for i := 1; i <= head.d; i++ {
			if rem[i].d == 0 {
				return nil, fmt.Errorf("topology: sequence not graphical")
			}
			g.addEdge(head.v, rem[i].v)
			rem[i].d--
		}
	}
}

// connectRepair makes g connected with degree-preserving double edge swaps
// (the Viger–Latapy repair): take an edge (c,d) that lies on a cycle — so
// removing it cannot split its component — and an edge (a,b) in a different
// component, and replace them with (c,a),(d,b). The cycle component stays
// connected and absorbs both halves of the other component.
//
// Whenever the graph is disconnected with degree sum >= 2(n-1), some
// component contains a cycle, so progress is always possible; only the
// simplicity constraint can make an individual attempt fail, hence the
// retry loop.
func connectRepair(g *Graph, r *rand.Rand) error {
	for attempt := 0; attempt < 50*g.N()+200; attempt++ {
		comps := components(g)
		if len(comps) <= 1 {
			return nil
		}
		ci := -1
		var cyc edge
		for i, comp := range comps {
			if e, ok := cycleEdge(g, comp, r); ok {
				ci, cyc = i, e
				break
			}
		}
		if ci < 0 {
			return fmt.Errorf("topology: disconnected forest; degree sum below 2(n-1)?")
		}
		oi := r.Intn(len(comps) - 1)
		if oi >= ci {
			oi++
		}
		other := componentEdges(g, comps[oi])
		if len(other) == 0 {
			return fmt.Errorf("topology: component without edges; zero-degree vertex?")
		}
		b := other[r.Intn(len(other))]
		// Try both pairings that merge the components.
		type pairing struct{ x1, y1, x2, y2 int }
		for _, p := range []pairing{
			{cyc.u, b.u, cyc.v, b.v},
			{cyc.u, b.v, cyc.v, b.u},
		} {
			if g.hasEdge(p.x1, p.y1) || g.hasEdge(p.x2, p.y2) {
				continue
			}
			g.removeEdge(cyc.u, cyc.v)
			g.removeEdge(b.u, b.v)
			g.addEdge(p.x1, p.y1)
			g.addEdge(p.x2, p.y2)
			break
		}
	}
	if !g.Connected() {
		return fmt.Errorf("topology: connectivity repair did not converge")
	}
	return nil
}

// cycleEdge returns an edge of comp that lies on a cycle, found by peeling
// degree-<=1 vertices until only the 2-core remains. Returns false when the
// component is a tree.
func cycleEdge(g *Graph, comp []int, r *rand.Rand) (edge, bool) {
	deg := make(map[int]int, len(comp))
	for _, v := range comp {
		deg[v] = len(g.Adj[v])
	}
	var queue []int
	for _, v := range comp {
		if deg[v] <= 1 {
			queue = append(queue, v)
		}
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if deg[v] == 0 {
			continue
		}
		deg[v] = 0
		for _, w := range g.Adj[v] {
			if deg[w] > 0 {
				deg[w]--
				if deg[w] == 1 {
					queue = append(queue, w)
				}
			}
		}
	}
	// Any edge between two surviving (2-core) vertices is on a cycle.
	var core []int
	for _, v := range comp {
		if deg[v] >= 2 {
			core = append(core, v)
		}
	}
	r.Shuffle(len(core), func(i, j int) { core[i], core[j] = core[j], core[i] })
	for _, u := range core {
		for _, v := range g.Adj[u] {
			if deg[v] >= 2 {
				return edge{u, v}, true
			}
		}
	}
	return edge{}, false
}

type edge struct{ u, v int }

func components(g *Graph) [][]int {
	seen := make([]bool, g.N())
	var comps [][]int
	for s := 0; s < g.N(); s++ {
		if seen[s] {
			continue
		}
		var comp []int
		stack := []int{s}
		seen[s] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, v)
			for _, w := range g.Adj[v] {
				if !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

func componentEdges(g *Graph, comp []int) []edge {
	var out []edge
	for _, u := range comp {
		for _, v := range g.Adj[u] {
			if u < v {
				out = append(out, edge{u, v})
			}
		}
	}
	return out
}

// shuffleEdges applies degree-preserving connected double edge swaps to
// randomize the graph (the MCMC phase of Viger–Latapy). Swaps that would
// break simplicity or connectivity are reverted.
func shuffleEdges(g *Graph, r *rand.Rand, steps int) {
	var edges []edge
	for u := range g.Adj {
		for _, v := range g.Adj[u] {
			if u < v {
				edges = append(edges, edge{u, v})
			}
		}
	}
	if len(edges) < 2 {
		return
	}
	for s := 0; s < steps; s++ {
		i, j := r.Intn(len(edges)), r.Intn(len(edges))
		if i == j {
			continue
		}
		a, b := edges[i], edges[j]
		if a.u == b.u || a.u == b.v || a.v == b.u || a.v == b.v {
			continue
		}
		if g.hasEdge(a.u, b.v) || g.hasEdge(b.u, a.v) {
			continue
		}
		g.removeEdge(a.u, a.v)
		g.removeEdge(b.u, b.v)
		g.addEdge(a.u, b.v)
		g.addEdge(b.u, a.v)
		if g.Connected() {
			edges[i] = edge{a.u, b.v}
			edges[j] = edge{b.u, a.v}
		} else {
			g.removeEdge(a.u, b.v)
			g.removeEdge(b.u, a.v)
			g.addEdge(a.u, a.v)
			g.addEdge(b.u, b.v)
		}
	}
}

// OverlapGraph builds a random connected simple gateway graph whose mean
// degree is meanInRange-1 (a client's in-range set is home + neighbours).
// Degrees are drawn from a clamped Poisson-like distribution with minimum 1
// and then adjusted to be graphical and even-summed.
func OverlapGraph(n int, meanInRange float64, seed int64) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: need at least 2 gateways, got %d", n)
	}
	meanDeg := meanInRange - 1
	if meanDeg < 1 {
		meanDeg = 1
	}
	if meanDeg > float64(n-1) {
		meanDeg = float64(n - 1)
	}
	r := stats.NewRNG(seed, 0x70b0)
	deg := make([]int, n)
	for i := range deg {
		deg[i] = poissonClamped(r, meanDeg, 1, n-1)
	}
	// A connected simple graph needs at least n-1 edges, i.e. degree sum
	// >= 2(n-1); bump random vertices until that holds (Viger–Latapy's
	// precondition for a connected realization to exist).
	var sum int
	for _, d := range deg {
		sum += d
	}
	for sum < 2*(n-1) {
		i := r.Intn(n)
		if deg[i] < n-1 {
			deg[i]++
			sum++
		}
	}
	// Even sum: bump or trim a random vertex.
	if sum%2 == 1 {
		i := r.Intn(n)
		if deg[i] < n-1 {
			deg[i]++
		} else {
			deg[i]--
		}
	}
	// Repair to graphical by trimming the largest degree until Erdős–Gallai
	// holds (always terminates: all-ones or all-zeros is graphical).
	for !Graphical(deg) {
		iMax := 0
		for i, d := range deg {
			if d > deg[iMax] {
				iMax = i
			}
		}
		deg[iMax] -= 2
		if deg[iMax] < 1 {
			deg[iMax] = 1
		}
	}
	g, err := havelHakimi(deg)
	if err != nil {
		return nil, err
	}
	if err := connectRepair(g, r); err != nil {
		return nil, err
	}
	shuffleEdges(g, r, 10*n)
	return g, nil
}

// GridCity builds a deterministic city-scale gateway graph in O(n), where
// OverlapGraph's Havel–Hakimi + Viger–Latapy machinery (repeated sorts,
// connectivity-checked edge swaps) becomes quadratic and impractical past a
// few hundred gateways.
//
// Gateways sit on a near-square grid — the street grid of a metro
// deployment — with orthogonal neighbor links (wireless overlap between
// adjacent homes) plus seeded random diagonal links added until the mean
// in-range count (home + neighbors) reaches meanInRange. The orthogonal
// grid alone keeps the graph connected, so no repair phase is needed.
//
// The orthogonal grid is also the density floor: adjacent homes are always
// in range, so a meanInRange below ~5 (interior degree 4, minus boundary
// effects) yields the plain grid rather than a sparser graph. For sweeps
// below that floor use Binomial or OverlapGraph; targets above the
// diagonal families' capacity return an error.
func GridCity(n int, meanInRange float64, seed int64) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: need at least 2 gateways, got %d", n)
	}
	cols := int(math.Ceil(math.Sqrt(float64(n))))
	g := &Graph{Adj: make([][]int, n)}
	edges := 0
	for v := 0; v < n; v++ {
		if (v+1)%cols != 0 && v+1 < n { // right neighbor
			g.addEdge(v, v+1)
			edges++
		}
		if v+cols < n { // down neighbor
			g.addEdge(v, v+cols)
			edges++
		}
	}
	// Each extra edge raises the mean degree by 2/n. Enumerate the two
	// diagonal families (\ and /) up front — boundary rows and columns
	// exclude candidates, so the achievable maximum and the draw
	// probability are both computed from the real candidate counts.
	want := meanInRange - 1
	families := make([][]int, 0, 2)
	total := 0
	for _, diag := range []int{cols + 1, cols - 1} {
		var cand []int
		for v := 0; v < n; v++ {
			col := v % cols
			if diag == cols+1 && col == cols-1 {
				continue // \ from the last column leaves the grid
			}
			if diag == cols-1 && col == 0 {
				continue // / from the first column leaves the grid
			}
			if w := v + diag; w < n {
				cand = append(cand, v)
			}
		}
		families = append(families, cand)
		total += len(cand)
	}
	if max := float64(2*(edges+total)) / float64(n); want > max {
		return nil, fmt.Errorf("topology: GridCity with %d gateways supports mean in-range up to ~%.1f, got %v; lower mean_in_range or use OverlapGraph",
			n, max+1, meanInRange)
	}
	r := stats.NewRNG(seed, 0xc17f)
	for fi, diag := range []int{cols + 1, cols - 1} {
		need := want - float64(2*edges)/float64(n)
		cand := families[fi]
		if need <= 0 || len(cand) == 0 {
			continue
		}
		p := need * float64(n) / 2 / float64(len(cand))
		if p > 1 {
			p = 1
		}
		for _, v := range cand {
			if r.Float64() < p && !g.hasEdge(v, v+diag) {
				g.addEdge(v, v+diag)
				edges++
			}
		}
	}
	return g, nil
}

// poissonClamped draws a Poisson(mean) value clamped to [lo, hi] using
// Knuth's method (fine for small means).
func poissonClamped(r *rand.Rand, mean float64, lo, hi int) int {
	limit := math.Exp(-mean)
	prod := 1.0
	for i := 0; i < 200; i++ {
		prod *= r.Float64()
		if prod < limit {
			v := i
			if v < lo {
				v = lo
			}
			if v > hi {
				v = hi
			}
			return v
		}
	}
	return hi
}

// FromOverlap assembles a Topology from a gateway graph and a client home
// assignment: each client reaches its home plus the home's neighbours.
func FromOverlap(g *Graph, homeOf []int) (*Topology, error) {
	t := &Topology{
		NumGateways: g.N(), HomeOf: append([]int(nil), homeOf...),
		HomeBps: DefaultHomeBps, NeighborBps: DefaultNeighborBps,
	}
	t.ranges = make([][]int, len(homeOf))
	for c, home := range homeOf {
		if home < 0 || home >= g.N() {
			return nil, fmt.Errorf("topology: client %d home %d out of range", c, home)
		}
		rng := make([]int, 0, len(g.Adj[home])+1)
		rng = append(rng, home)
		rng = append(rng, g.Adj[home]...)
		t.ranges[c] = rng
	}
	return t, t.Validate()
}

// Binomial builds the Fig 10 style topology: every client reaches its home
// gateway, and independently each other gateway with probability chosen so
// the mean in-range count is meanAvail (>= 1).
func Binomial(nGateways int, homeOf []int, meanAvail float64, seed int64) (*Topology, error) {
	if nGateways < 1 {
		return nil, fmt.Errorf("topology: need gateways")
	}
	if meanAvail < 1 {
		return nil, fmt.Errorf("topology: meanAvail must be >= 1, got %v", meanAvail)
	}
	p := 0.0
	if nGateways > 1 {
		p = (meanAvail - 1) / float64(nGateways-1)
	}
	if p > 1 {
		p = 1
	}
	r := stats.NewRNG(seed, 0xb1f0)
	t := &Topology{
		NumGateways: nGateways, HomeOf: append([]int(nil), homeOf...),
		HomeBps: DefaultHomeBps, NeighborBps: DefaultNeighborBps,
	}
	t.ranges = make([][]int, len(homeOf))
	for c, home := range homeOf {
		if home < 0 || home >= nGateways {
			return nil, fmt.Errorf("topology: client %d home %d out of range", c, home)
		}
		rng := []int{home}
		for g := 0; g < nGateways; g++ {
			if g != home && r.Float64() < p {
				rng = append(rng, g)
			}
		}
		t.ranges[c] = rng
	}
	return t, t.Validate()
}
