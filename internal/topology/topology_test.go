package topology

import (
	"math"
	"testing"
	"testing/quick"

	"insomnia/internal/stats"
)

func TestGraphical(t *testing.T) {
	cases := []struct {
		deg  []int
		want bool
	}{
		{[]int{}, true},
		{[]int{0}, true},
		{[]int{1}, false},          // odd sum
		{[]int{1, 1}, true},        // one edge
		{[]int{2, 2, 2}, true},     // triangle
		{[]int{3, 3, 3, 3}, true},  // K4
		{[]int{3, 1, 1, 1}, true},  // star
		{[]int{4, 1, 1, 1}, false}, // degree too high
		{[]int{-1, 1}, false},
		{[]int{5, 5, 4, 3, 2, 1}, false}, // EG fails at k=2
		{[]int{3, 3, 2, 2, 1, 1}, true},
		{[]int{6, 5, 4, 3, 2, 1}, false}, // sum odd? 21 odd -> false
	}
	for _, c := range cases {
		if got := Graphical(c.deg); got != c.want {
			t.Errorf("Graphical(%v) = %v, want %v", c.deg, got, c.want)
		}
	}
}

func TestOverlapGraphProperties(t *testing.T) {
	for _, n := range []int{5, 40, 100} {
		g, err := OverlapGraph(n, DefaultMeanInRange, 7)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if g.N() != n {
			t.Fatalf("n=%d: got %d vertices", n, g.N())
		}
		if !g.Connected() {
			t.Errorf("n=%d: not connected", n)
		}
		// Simple graph: no self loops, no duplicate edges.
		for u, adj := range g.Adj {
			seen := map[int]bool{}
			for _, v := range adj {
				if v == u {
					t.Errorf("n=%d: self loop at %d", n, u)
				}
				if seen[v] {
					t.Errorf("n=%d: duplicate edge %d-%d", n, u, v)
				}
				seen[v] = true
				// Symmetry.
				if !g.hasEdge(v, u) {
					t.Errorf("n=%d: asymmetric edge %d-%d", n, u, v)
				}
			}
		}
	}
}

func TestOverlapGraphMeanDegree(t *testing.T) {
	g, err := OverlapGraph(200, 5.6, 3)
	if err != nil {
		t.Fatal(err)
	}
	md := g.MeanDegree()
	if md < 3.6 || md > 5.6 { // target 4.6
		t.Errorf("mean degree = %v, want ~4.6", md)
	}
}

func TestOverlapGraphDeterministic(t *testing.T) {
	a, err := OverlapGraph(40, 5.6, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := OverlapGraph(40, 5.6, 11)
	if err != nil {
		t.Fatal(err)
	}
	for u := range a.Adj {
		if len(a.Adj[u]) != len(b.Adj[u]) {
			t.Fatalf("vertex %d degree differs", u)
		}
		for i := range a.Adj[u] {
			if a.Adj[u][i] != b.Adj[u][i] {
				t.Fatalf("vertex %d adjacency differs", u)
			}
		}
	}
}

func TestOverlapGraphRejectsTiny(t *testing.T) {
	if _, err := OverlapGraph(1, 5.6, 1); err == nil {
		t.Error("expected error for n=1")
	}
}

func TestFromOverlap(t *testing.T) {
	g, err := OverlapGraph(40, 5.6, 5)
	if err != nil {
		t.Fatal(err)
	}
	homeOf := make([]int, 272)
	for i := range homeOf {
		homeOf[i] = i % 40
	}
	tp, err := FromOverlap(g, homeOf)
	if err != nil {
		t.Fatal(err)
	}
	if err := tp.Validate(); err != nil {
		t.Fatal(err)
	}
	m := tp.MeanInRange()
	if m < 4.0 || m > 7.0 {
		t.Errorf("mean in range = %v, want ~5.6", m)
	}
	// Link rates.
	c := 0
	if got := tp.LinkBps(c, tp.HomeOf[c]); got != DefaultHomeBps {
		t.Errorf("home rate = %v", got)
	}
	rng := tp.InRange(c)
	if len(rng) > 1 {
		if got := tp.LinkBps(c, rng[1]); got != DefaultNeighborBps {
			t.Errorf("neighbor rate = %v", got)
		}
	}
	// A gateway not in range: find one.
	inRange := map[int]bool{}
	for _, gw := range rng {
		inRange[gw] = true
	}
	for gw := 0; gw < 40; gw++ {
		if !inRange[gw] {
			if got := tp.LinkBps(c, gw); got != 0 {
				t.Errorf("out-of-range rate = %v, want 0", got)
			}
			break
		}
	}
}

func TestFromOverlapBadHome(t *testing.T) {
	g, err := OverlapGraph(5, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromOverlap(g, []int{99}); err == nil {
		t.Error("expected error for invalid home")
	}
}

func TestBinomialMeanAvail(t *testing.T) {
	homeOf := make([]int, 2000)
	for i := range homeOf {
		homeOf[i] = i % 40
	}
	for _, mean := range []float64{1, 2, 5.6, 10} {
		tp, err := Binomial(40, homeOf, mean, 9)
		if err != nil {
			t.Fatal(err)
		}
		got := tp.MeanInRange()
		if math.Abs(got-mean) > 0.35 {
			t.Errorf("meanAvail=%v: got %v", mean, got)
		}
		if err := tp.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestBinomialDensityOne(t *testing.T) {
	homeOf := []int{0, 1, 2, 3}
	tp, err := Binomial(4, homeOf, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for c := range homeOf {
		if len(tp.InRange(c)) != 1 {
			t.Errorf("client %d should only reach home, got %v", c, tp.InRange(c))
		}
	}
}

func TestBinomialRejectsBadArgs(t *testing.T) {
	if _, err := Binomial(0, nil, 2, 1); err == nil {
		t.Error("expected error for zero gateways")
	}
	if _, err := Binomial(4, []int{0}, 0.5, 1); err == nil {
		t.Error("expected error for meanAvail < 1")
	}
	if _, err := Binomial(4, []int{9}, 2, 1); err == nil {
		t.Error("expected error for bad home")
	}
}

// Property: Havel-Hakimi + repair realizes any graphical sequence we feed
// through OverlapGraph with exact vertex count, connectivity and simplicity.
func TestOverlapGraphPropertyRandomSizes(t *testing.T) {
	f := func(seed int64, nRaw uint8, meanRaw uint8) bool {
		n := 3 + int(nRaw%60)
		mean := 1.5 + float64(meanRaw%8)
		g, err := OverlapGraph(n, mean, seed)
		if err != nil {
			return false
		}
		if g.N() != n || !g.Connected() {
			return false
		}
		for u, adj := range g.Adj {
			seen := map[int]bool{}
			for _, v := range adj {
				if v == u || seen[v] {
					return false
				}
				seen[v] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPoissonClampedRange(t *testing.T) {
	r := stats.NewRNG(1, 0)
	for i := 0; i < 5000; i++ {
		v := poissonClamped(r, 4.6, 1, 39)
		if v < 1 || v > 39 {
			t.Fatalf("out of range: %d", v)
		}
	}
}

func TestPoissonClampedMean(t *testing.T) {
	r := stats.NewRNG(2, 0)
	var w stats.Welford
	for i := 0; i < 20000; i++ {
		w.Add(float64(poissonClamped(r, 4.6, 0, 1000)))
	}
	if math.Abs(w.Mean()-4.6) > 0.15 {
		t.Errorf("mean = %v, want ~4.6", w.Mean())
	}
}

func TestGridCityProperties(t *testing.T) {
	for _, tc := range []struct {
		n    int
		mean float64
	}{
		{100, 5.6},
		{1000, 5.6},
		{2500, 4.0},
		{37, 5.6}, // non-square count
	} {
		g, err := GridCity(tc.n, tc.mean, 7)
		if err != nil {
			t.Fatalf("GridCity(%d): %v", tc.n, err)
		}
		if g.N() != tc.n {
			t.Fatalf("GridCity(%d) has %d vertices", tc.n, g.N())
		}
		if !g.Connected() {
			t.Errorf("GridCity(%d) disconnected", tc.n)
		}
		// Simplicity: no duplicate edges, no self-loops.
		for v, adj := range g.Adj {
			seen := map[int]bool{}
			for _, w := range adj {
				if w == v {
					t.Fatalf("self-loop at %d", v)
				}
				if seen[w] {
					t.Fatalf("duplicate edge %d-%d", v, w)
				}
				seen[w] = true
			}
		}
		// Mean in-range (degree+1) should land near the target; grids have
		// boundary effects, so allow a generous band.
		got := g.MeanDegree() + 1
		if got < tc.mean-1.0 || got > tc.mean+1.0 {
			t.Errorf("GridCity(%d, %v): mean in-range %.2f", tc.n, tc.mean, got)
		}
	}
}

func TestGridCityDeterministic(t *testing.T) {
	a, err := GridCity(400, 5.6, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GridCity(400, 5.6, 3)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Adj {
		if len(a.Adj[v]) != len(b.Adj[v]) {
			t.Fatalf("vertex %d degree differs across identical seeds", v)
		}
		for i := range a.Adj[v] {
			if a.Adj[v][i] != b.Adj[v][i] {
				t.Fatalf("vertex %d adjacency differs across identical seeds", v)
			}
		}
	}
	c, err := GridCity(400, 5.6, 4)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for v := range a.Adj {
		if len(a.Adj[v]) != len(c.Adj[v]) {
			same = false
			break
		}
	}
	if same {
		t.Log("seeds 3 and 4 yielded identical degree sequences (possible but unlikely)")
	}
}

func TestGridCityRejectsBadArgs(t *testing.T) {
	if _, err := GridCity(1, 5.6, 1); err == nil {
		t.Error("GridCity(1) accepted")
	}
	if _, err := GridCity(100, 50, 1); err == nil {
		t.Error("unreachable mean accepted")
	}
}

func TestGridCityComposesWithFromOverlap(t *testing.T) {
	g, err := GridCity(100, 5.6, 9)
	if err != nil {
		t.Fatal(err)
	}
	home := make([]int, 500)
	for c := range home {
		home[c] = c % 100
	}
	tp, err := FromOverlap(g, home)
	if err != nil {
		t.Fatal(err)
	}
	if err := tp.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGridCityBoundaryAwareGuard(t *testing.T) {
	// Boundary rows/columns host fewer diagonal candidates: on a 10x10
	// grid the true achievable mean in-range is ~7.8, so 8.5 must error
	// rather than silently under-deliver.
	if _, err := GridCity(100, 8.5, 1); err == nil {
		t.Error("GridCity(100, 8.5) accepted beyond the achievable mean")
	}
	// Just inside the achievable range still works.
	g, err := GridCity(100, 7.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.MeanDegree() + 1; got < 6.5 {
		t.Errorf("mean in-range %.2f, want near 7.5", got)
	}
}
