package perf

import (
	"fmt"
	"path/filepath"
	"sort"
)

// Regression is one benchmark entry that got worse than the tolerance
// allows.
type Regression struct {
	Name   string  // entry name
	Metric string  // "wall_seconds", "alloc_bytes" or "speedup"
	Old    float64 // reference value
	New    float64 // measured value
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %s %.3g -> %.3g (%+.0f%%)", r.Name, r.Metric, r.Old, r.New, (r.New/r.Old-1)*100)
}

// Compare checks a fresh report against a reference: every entry present
// in both (matched by name, and only when the scenario strings agree —
// differently-parameterized scenarios are incomparable) must not exceed
// the reference wall time by more than wallTol nor the reference
// allocation by more than allocTol (0.35 = +35%). A negative tolerance
// disables that metric's check — wall time only means something between
// runs on comparable hardware (allocations are machine-stable), so
// cross-machine gates like CI pass a loose or negative wallTol.
//
// Entries that exist on only one side, or whose scenario string changed,
// are excluded from the checks — scenarios come and go across PRs — but
// they are returned in skipped (one annotated name per exclusion, sorted)
// so a gate can warn instead of silently shrinking its coverage: a renamed
// entry or a re-parameterized scenario looks exactly like a pass
// otherwise. Returned regressions are sorted by entry name.
func Compare(ref, fresh *Report, wallTol, allocTol float64) (regs []Regression, skipped []string) {
	old := map[string]Entry{}
	for _, e := range ref.Entries {
		old[e.Name] = e
	}
	matched := map[string]bool{}
	for _, e := range fresh.Entries {
		o, ok := old[e.Name]
		if !ok {
			skipped = append(skipped, e.Name+" (not in reference)")
			continue
		}
		matched[e.Name] = true
		if o.Scenario != e.Scenario {
			skipped = append(skipped, e.Name+" (scenario changed)")
			continue
		}
		if wallTol >= 0 && o.WallSeconds > 0 && e.WallSeconds > o.WallSeconds*(1+wallTol) {
			regs = append(regs, Regression{e.Name, "wall_seconds", o.WallSeconds, e.WallSeconds})
		}
		if allocTol >= 0 && o.AllocBytes > 0 && float64(e.AllocBytes) > float64(o.AllocBytes)*(1+allocTol) {
			regs = append(regs, Regression{e.Name, "alloc_bytes", float64(o.AllocBytes), float64(e.AllocBytes)})
		}
		// A "speedup" metric (collapsed-vs-full wall ratio) is higher-is-
		// better and, being a same-machine ratio, hardware cancels out — so
		// it gates at the tight allocTol even when wallTol is loosened for
		// cross-machine comparisons.
		if os, es := o.Metrics["speedup"], e.Metrics["speedup"]; allocTol >= 0 && os > 0 && es > 0 && es < os/(1+allocTol) {
			regs = append(regs, Regression{e.Name, "speedup", os, es})
		}
	}
	for _, e := range ref.Entries {
		if !matched[e.Name] {
			skipped = append(skipped, e.Name+" (missing from fresh report)")
		}
	}
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].Name != regs[j].Name {
			return regs[i].Name < regs[j].Name
		}
		return regs[i].Metric < regs[j].Metric
	})
	sort.Strings(skipped)
	return regs, skipped
}

// NewestRecord returns the path of the newest committed benchmark
// trajectory (BENCH_<date>.json) in dir, skipping any paths in exclude —
// typically the record the current run just wrote. The date-stamped
// names sort chronologically, so "newest" is the lexical maximum.
func NewestRecord(dir string, exclude ...string) (string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	skip := map[string]bool{}
	for _, x := range exclude {
		if abs, err := filepath.Abs(x); err == nil {
			skip[abs] = true
		}
	}
	best := ""
	for _, m := range matches {
		if abs, err := filepath.Abs(m); err == nil && skip[abs] {
			continue
		}
		if filepath.Base(m) > filepath.Base(best) || best == "" {
			best = m
		}
	}
	if best == "" {
		return "", fmt.Errorf("perf: no BENCH_*.json trajectory found in %s", dir)
	}
	return best, nil
}
