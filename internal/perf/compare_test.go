package perf

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func report(entries ...Entry) *Report {
	return &Report{Date: "2026-01-01", Entries: entries}
}

func TestCompareFlagsRegressions(t *testing.T) {
	ref := report(
		Entry{Name: "a", Scenario: "s", WallSeconds: 1.0, AllocBytes: 1000},
		Entry{Name: "b", Scenario: "s", WallSeconds: 2.0, AllocBytes: 500},
	)
	fresh := report(
		Entry{Name: "a", Scenario: "s", WallSeconds: 1.30, AllocBytes: 1400}, // wall ok at 35%, allocs +40%
		Entry{Name: "b", Scenario: "s", WallSeconds: 2.8, AllocBytes: 500},   // wall +40%
	)
	regs, skipped := Compare(ref, fresh, 0.35, 0.35)
	if len(skipped) != 0 {
		t.Errorf("fully matched reports should skip nothing, got %v", skipped)
	}
	if len(regs) != 2 {
		t.Fatalf("got %d regressions, want 2: %v", len(regs), regs)
	}
	if regs[0].Name != "a" || regs[0].Metric != "alloc_bytes" {
		t.Errorf("regs[0] = %v", regs[0])
	}
	if regs[1].Name != "b" || regs[1].Metric != "wall_seconds" {
		t.Errorf("regs[1] = %v", regs[1])
	}
	if !strings.Contains(regs[1].String(), "wall_seconds") {
		t.Errorf("String() uninformative: %s", regs[1])
	}
}

func TestCompareWithinToleranceAndImprovements(t *testing.T) {
	ref := report(Entry{Name: "a", Scenario: "s", WallSeconds: 1.0, AllocBytes: 1000})
	fresh := report(Entry{Name: "a", Scenario: "s", WallSeconds: 1.34, AllocBytes: 100})
	if regs, _ := Compare(ref, fresh, 0.35, 0.35); len(regs) != 0 {
		t.Errorf("within tolerance should pass, got %v", regs)
	}
}

func TestCompareSkipsUnmatchedEntries(t *testing.T) {
	ref := report(
		Entry{Name: "gone", Scenario: "s", WallSeconds: 0.1, AllocBytes: 1},
		Entry{Name: "changed", Scenario: "city: 10 gateways", WallSeconds: 0.1, AllocBytes: 1},
	)
	fresh := report(
		Entry{Name: "new", Scenario: "s", WallSeconds: 99, AllocBytes: 1 << 40},
		Entry{Name: "changed", Scenario: "city: 10000 gateways", WallSeconds: 99, AllocBytes: 1 << 40},
	)
	regs, skipped := Compare(ref, fresh, 0.35, 0.35)
	if len(regs) != 0 {
		t.Errorf("unmatched entries must be skipped, got %v", regs)
	}
	want := []string{
		"changed (scenario changed)",
		"gone (missing from fresh report)",
		"new (not in reference)",
	}
	if !reflect.DeepEqual(skipped, want) {
		t.Errorf("skipped = %v, want %v", skipped, want)
	}
}

func TestCompareSpeedupMetric(t *testing.T) {
	ref := report(Entry{Name: "a", Scenario: "s", WallSeconds: 1, AllocBytes: 100,
		Metrics: map[string]float64{"speedup": 40}})
	// Speedup is higher-is-better: a drop beyond allocTol regresses even
	// when wall and allocs improved.
	fresh := report(Entry{Name: "a", Scenario: "s", WallSeconds: 0.5, AllocBytes: 100,
		Metrics: map[string]float64{"speedup": 20}})
	regs, _ := Compare(ref, fresh, 0.35, 0.35)
	if len(regs) != 1 || regs[0].Metric != "speedup" {
		t.Fatalf("speedup drop should regress: %v", regs)
	}
	// A higher speedup, or an entry without the metric, passes.
	fresh.Entries[0].Metrics["speedup"] = 60
	if regs, _ := Compare(ref, fresh, 0.35, 0.35); len(regs) != 0 {
		t.Errorf("improved speedup should pass, got %v", regs)
	}
	fresh.Entries[0].Metrics = nil
	if regs, _ := Compare(ref, fresh, 0.35, 0.35); len(regs) != 0 {
		t.Errorf("missing speedup metric should pass, got %v", regs)
	}
}

func TestNewestRecord(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_2026-01-05.json", "BENCH_2026-07-29.json", "BENCH_2025-12-31.json", "notabench.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := NewestRecord(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(got) != "BENCH_2026-07-29.json" {
		t.Errorf("newest = %s", got)
	}
	// The record the current run just wrote must be excludable.
	got, err = NewestRecord(dir, filepath.Join(dir, "BENCH_2026-07-29.json"))
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(got) != "BENCH_2026-01-05.json" {
		t.Errorf("newest with exclusion = %s", got)
	}
	if _, err := NewestRecord(t.TempDir()); err == nil {
		t.Error("empty dir should error")
	}
}

func TestCompareSeparateTolerances(t *testing.T) {
	ref := report(Entry{Name: "a", Scenario: "s", WallSeconds: 1.0, AllocBytes: 1000})
	fresh := report(Entry{Name: "a", Scenario: "s", WallSeconds: 3.0, AllocBytes: 1300})
	// Loose wall (cross-machine), tight allocs: +200% wall passes at 4x.
	if regs, _ := Compare(ref, fresh, 3, 0.35); len(regs) != 0 {
		t.Errorf("loose wall tolerance should pass, got %v", regs)
	}
	// Negative tolerance disables a metric entirely.
	if regs, _ := Compare(ref, fresh, -1, 0.35); len(regs) != 0 {
		t.Errorf("disabled wall check should pass, got %v", regs)
	}
	if regs, _ := Compare(ref, fresh, -1, 0.1); len(regs) != 1 || regs[0].Metric != "alloc_bytes" {
		t.Errorf("alloc check should still fire: %v", regs)
	}
}
