package perf

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"
)

func TestMeasureAndRoundTrip(t *testing.T) {
	r := NewReport("2026-07-29")
	err := r.Measure("toy", "unit-test", func() (map[string]float64, error) {
		s := 0.0
		for i := 0; i < 1000; i++ {
			s += float64(i)
		}
		return map[string]float64{"sum": s}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Entries) != 1 || r.Entries[0].WallSeconds < 0 {
		t.Fatalf("bad entry: %+v", r.Entries)
	}
	if r.Entries[0].Metrics["sum"] != 499500 {
		t.Errorf("metrics lost: %v", r.Entries[0].Metrics)
	}
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Date != r.Date || len(back.Entries) != 1 || back.Entries[0].Name != "toy" {
		t.Fatalf("round trip mangled report: %+v", back)
	}
	if back.GoVersion == "" || back.GOMAXPROCS < 1 {
		t.Errorf("environment fields missing: %+v", back)
	}
}

func TestMeasureError(t *testing.T) {
	r := NewReport("2026-07-29")
	err := r.Measure("boom", "unit-test", func() (map[string]float64, error) {
		return nil, fmt.Errorf("scenario failed")
	})
	if err == nil {
		t.Fatal("error swallowed")
	}
	if len(r.Entries) != 0 {
		t.Fatal("failed measurement recorded")
	}
}

func TestDefaultPath(t *testing.T) {
	ts := time.Date(2026, 7, 29, 12, 0, 0, 0, time.UTC)
	if got := DefaultPath(ts); got != "BENCH_2026-07-29.json" {
		t.Errorf("DefaultPath = %q", got)
	}
}

func TestProfileHelpers(t *testing.T) {
	stop, err := StartCPUProfile("")
	if err != nil {
		t.Fatal(err)
	}
	stop() // no-op path must be safe
	dir := t.TempDir()
	stop, err = StartCPUProfile(filepath.Join(dir, "cpu.out"))
	if err != nil {
		t.Fatal(err)
	}
	stop()
	stop() // idempotent: deferred + explicit stop must both be safe
	if err := WriteHeapProfile(filepath.Join(dir, "mem.out")); err != nil {
		t.Fatal(err)
	}
	if err := WriteHeapProfile(""); err != nil {
		t.Fatal(err)
	}
}
