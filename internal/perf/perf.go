// Package perf is the repository's performance harness. It provides two
// things:
//
//   - pprof plumbing (-cpuprofile / -memprofile) shared by the CLIs, so
//     hot-path work is measurable outside `go test -bench`;
//   - the benchmark-trajectory format: cmd/bench measures macro scenarios
//     (the §5 scheme comparison, the 10k-gateway city run) and writes a
//     BENCH_<date>.json, committed to the repository so successive PRs
//     leave comparable performance records instead of anecdotes.
package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"
)

// Entry records one measured scenario.
type Entry struct {
	Name        string  `json:"name"`
	Scenario    string  `json:"scenario"`
	WallSeconds float64 `json:"wall_seconds"`
	// AllocBytes is the heap allocated during the measurement (cumulative
	// allocation, not live heap), from runtime.MemStats.TotalAlloc.
	AllocBytes uint64 `json:"alloc_bytes"`
	// Metrics carries scenario-defined result values (savings, event
	// counts, ...) so a trajectory entry is interpretable on its own.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is one benchmark-trajectory record.
type Report struct {
	Date       string  `json:"date"`
	GoVersion  string  `json:"go_version"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Entries    []Entry `json:"entries"`
}

// NewReport stamps a report for the given date (YYYY-MM-DD).
func NewReport(date string) *Report {
	return &Report{
		Date:       date,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// Parallelism annotates an entry's metrics with the execution-width
// context needed to interpret a trajectory point later: the engine shard
// count the scenario ran with and GOMAXPROCS at measure time. A sharded
// entry recorded on a one-core machine (shards > gomaxprocs) shows no
// speedup by construction; recording both makes that readable from the
// committed trajectory instead of folklore. Returns m for call-site
// chaining; a nil m is allocated.
func Parallelism(m map[string]float64, shards int) map[string]float64 {
	if m == nil {
		m = make(map[string]float64, 2)
	}
	m["shards"] = float64(shards)
	m["gomaxprocs"] = float64(runtime.GOMAXPROCS(0))
	return m
}

// Measure times fn and appends an Entry; fn returns the scenario metrics to
// record. Wall time and allocation are measured around the call.
func (r *Report) Measure(name, scenario string, fn func() (map[string]float64, error)) error {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	metrics, err := fn()
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return fmt.Errorf("perf: %s: %w", name, err)
	}
	r.Entries = append(r.Entries, Entry{
		Name:        name,
		Scenario:    scenario,
		WallSeconds: wall.Seconds(),
		AllocBytes:  after.TotalAlloc - before.TotalAlloc,
		Metrics:     metrics,
	})
	return nil
}

// WriteFile writes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// ReadFile loads a previously written report.
func ReadFile(path string) (*Report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(buf, &r); err != nil {
		return nil, fmt.Errorf("perf: %s: %w", path, err)
	}
	return &r, nil
}

// DefaultPath names a trajectory file for the given time: BENCH_<date>.json.
func DefaultPath(t time.Time) string {
	return fmt.Sprintf("BENCH_%s.json", t.Format("2006-01-02"))
}

// Profile starts an optional CPU profile and arranges an optional heap
// profile — the shared -cpuprofile/-memprofile plumbing of the CLIs. The
// returned cleanup is idempotent; call it on every exit path, including
// before log.Fatal/os.Exit (which skip defers), so the CPU profile is
// always terminated and parseable. Heap-profile write failures are
// reported on stderr rather than returned: by cleanup time the measured
// work has already happened and must not be discarded.
func Profile(cpuPath, memPath string) (cleanup func(), err error) {
	stop, err := StartCPUProfile(cpuPath)
	if err != nil {
		return nil, err
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			stop()
			if err := WriteHeapProfile(memPath); err != nil {
				fmt.Fprintln(os.Stderr, "perf:", err)
			}
		})
	}, nil
}

// StartCPUProfile begins a CPU profile at path and returns the stop
// function. An empty path is a no-op (so CLIs can pass the flag through
// unconditionally). stop is idempotent: callers may both defer it and call
// it explicitly before exiting early.
func StartCPUProfile(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			pprof.StopCPUProfile()
			f.Close()
		})
	}, nil
}

// WriteHeapProfile writes a heap profile to path after a GC, so the profile
// reflects live objects. An empty path is a no-op.
func WriteHeapProfile(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}
