// Package soi implements the Sleep-on-Idle controller that every scheme in
// the paper (except no-sleep) builds on: a device sleeps after IdleTimeout
// seconds without traffic and needs WakeDelay seconds to boot and resync
// before it can carry traffic again (§2.4, §5.1).
//
// The controller drives an attached power.Device so that energy is
// integrated at the exact transition instants, and exposes the next
// autonomous transition time so a discrete-event simulator can schedule it.
package soi

import (
	"fmt"
	"math"

	"insomnia/internal/power"
)

// Controller tracks one device's sleep state.
type Controller struct {
	IdleTimeout float64 // seconds of silence before sleeping
	WakeDelay   float64 // boot + modem resync time

	dev          *power.Device
	lastActivity float64 // most recent traffic epoch
	wakeAt       float64 // when a pending wake completes
	now          float64
}

// New creates a controller over dev starting at time t0. The device's
// current state is taken as the initial state; a Waking device completes at
// t0+WakeDelay.
func New(dev *power.Device, idleTimeout, wakeDelay, t0 float64) *Controller {
	c := &Controller{
		IdleTimeout: idleTimeout, WakeDelay: wakeDelay,
		dev: dev, now: t0, lastActivity: t0, wakeAt: math.Inf(1),
	}
	if dev.State() == power.Waking {
		c.wakeAt = t0 + wakeDelay
	}
	return c
}

// Device returns the attached power device.
func (c *Controller) Device() *power.Device { return c.dev }

// State returns the device state as of the last Advance/Touch.
func (c *Controller) State() power.State { return c.dev.State() }

// Awake reports whether the device can carry traffic now.
func (c *Controller) Awake() bool { return c.dev.State() == power.On }

// Advance applies every transition due up to time t, in order, at the exact
// instants they occur. Time must be monotone across calls.
func (c *Controller) Advance(t float64) {
	if t < c.now {
		panic(fmt.Sprintf("soi: time going backwards: %v < %v", t, c.now))
	}
	for {
		switch c.dev.State() {
		case power.Waking:
			if c.wakeAt <= t {
				c.dev.SetState(c.wakeAt, power.On)
				// The wake itself counts as activity: the idle clock starts
				// once the device is operational.
				if c.wakeAt > c.lastActivity {
					c.lastActivity = c.wakeAt
				}
				c.wakeAt = math.Inf(1)
				continue
			}
		case power.On:
			if deadline := c.lastActivity + c.IdleTimeout; deadline <= t {
				c.dev.SetState(deadline, power.Sleeping)
				continue
			}
		case power.Sleeping:
			// Stays asleep until Touch.
		}
		break
	}
	c.now = t
}

// Touch records traffic (or a wake request) at time t. A sleeping device
// starts waking and becomes usable at t+WakeDelay; an awake device resets
// its idle clock. Returns true when the touch initiated a wake.
func (c *Controller) Touch(t float64) bool {
	c.Advance(t)
	if t > c.lastActivity {
		c.lastActivity = t
	}
	if c.dev.State() == power.Sleeping {
		c.dev.SetState(t, power.Waking)
		c.wakeAt = t + c.WakeDelay
		return true
	}
	return false
}

// Busy marks continuous activity up to time t without advancing the
// controller. Use it when the device is known to have been busy through a
// nominally-passed idle deadline (a flow in service): Touch would first
// Advance past the deadline and put the device to sleep for an instant,
// charging a bogus wake; Busy just moves the idle clock.
func (c *Controller) Busy(t float64) {
	if t > c.lastActivity {
		c.lastActivity = t
	}
}

// NextTransition returns the next time the controller will change state on
// its own (wake completion or sleep deadline), or +Inf if none is pending.
func (c *Controller) NextTransition() float64 {
	switch c.dev.State() {
	case power.Waking:
		return c.wakeAt
	case power.On:
		return c.lastActivity + c.IdleTimeout
	default:
		return math.Inf(1)
	}
}

// WakeReadyAt returns when a pending wake completes (+Inf when not waking).
func (c *Controller) WakeReadyAt() float64 {
	if c.dev.State() == power.Waking {
		return c.wakeAt
	}
	return math.Inf(1)
}

// Sleep forces the device to sleep at time t regardless of the idle clock.
// Used by the idealized Optimal scheme, which powers gateways on and off by
// fiat with zero-downtime migration.
func (c *Controller) Sleep(t float64) {
	c.Advance(t)
	if c.dev.State() != power.Sleeping {
		c.dev.SetState(t, power.Sleeping)
		c.wakeAt = math.Inf(1)
	}
}

// Fail cuts power at time t: transitions due up to t fire first (so energy
// is integrated exactly), then the device drops to Sleeping whatever state
// it was in and any pending wake is lost. It returns the state the power
// cut hit, so the caller can tell an operative line from one that was
// already dark. Unlike Sleep, Fail models an involuntary loss — the caller
// is expected to gate Touch until the matching Restore.
func (c *Controller) Fail(t float64) power.State {
	c.Advance(t)
	st := c.dev.State()
	if st != power.Sleeping {
		c.dev.SetState(t, power.Sleeping)
	}
	c.wakeAt = math.Inf(1)
	return st
}

// Restore brings a failed device back to operational at time t: the reboot
// interval already elapsed between Fail and Restore, so the device comes
// up On (counting one wakeup) with a fresh idle clock.
func (c *Controller) Restore(t float64) {
	c.Advance(t)
	c.dev.SetState(t, power.On)
	c.lastActivity = t
	c.wakeAt = math.Inf(1)
}
