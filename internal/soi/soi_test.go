package soi

import (
	"math"
	"testing"

	"insomnia/internal/power"
)

func newCtl(t0 float64, initial power.State) *Controller {
	dev := power.NewDevice("gw", power.GatewayWatts, initial, t0)
	return New(dev, 60, 60, t0)
}

func TestSleepsAfterIdleTimeout(t *testing.T) {
	c := newCtl(0, power.On)
	c.Touch(10)
	c.Advance(69.9)
	if !c.Awake() {
		t.Fatal("slept before timeout")
	}
	c.Advance(70)
	if c.State() != power.Sleeping {
		t.Fatalf("state = %v, want sleeping at lastActivity+60", c.State())
	}
	// Energy: on for exactly 70 s.
	if got := c.Device().OnTimeAt(100); math.Abs(got-70) > 1e-9 {
		t.Errorf("on time = %v, want 70", got)
	}
}

func TestTouchWakesSleeping(t *testing.T) {
	c := newCtl(0, power.Sleeping)
	if woke := c.Touch(100); !woke {
		t.Fatal("Touch did not initiate wake")
	}
	if c.State() != power.Waking {
		t.Fatalf("state = %v, want waking", c.State())
	}
	if got := c.WakeReadyAt(); got != 160 {
		t.Errorf("wake ready = %v, want 160", got)
	}
	c.Advance(160)
	if !c.Awake() {
		t.Fatal("not awake after wake delay")
	}
}

func TestIdleClockStartsAfterWake(t *testing.T) {
	c := newCtl(0, power.Sleeping)
	c.Touch(100) // wake completes at 160
	// No further traffic: device must stay awake until 160+60=220.
	c.Advance(219.9)
	if !c.Awake() {
		t.Fatal("slept before post-wake idle timeout")
	}
	c.Advance(220)
	if c.State() != power.Sleeping {
		t.Fatalf("state = %v, want sleeping at 220", c.State())
	}
}

func TestTouchWhileWakingDoesNotRestartWake(t *testing.T) {
	c := newCtl(0, power.Sleeping)
	c.Touch(100)
	if woke := c.Touch(130); woke {
		t.Error("second touch should not re-initiate wake")
	}
	if got := c.WakeReadyAt(); got != 160 {
		t.Errorf("wake ready moved to %v", got)
	}
	// Traffic at 130 is queued until the device is operational at 160, so
	// the idle clock starts there: sleep at 220.
	c.Advance(160)
	if !c.Awake() {
		t.Fatal("not awake")
	}
	c.Advance(219.9)
	if !c.Awake() {
		t.Fatal("slept too early; queued traffic served at 160 holds it to 220")
	}
	c.Advance(220)
	if c.State() != power.Sleeping {
		t.Fatalf("state = %v at 220", c.State())
	}
}

func TestContinuousLightTrafficPreventsSleep(t *testing.T) {
	// The §2.4 insomnia effect: one packet every 50 s < 60 s timeout keeps
	// the gateway up forever.
	c := newCtl(0, power.On)
	for ts := 0.0; ts <= 3600; ts += 50 {
		if c.Touch(ts) {
			t.Fatalf("gateway slept at %v despite continuous traffic", ts)
		}
	}
	if got := c.Device().OnTimeAt(3600); math.Abs(got-3600) > 1e-9 {
		t.Errorf("on time = %v, want 3600", got)
	}
}

func TestChainedTransitionsInOneAdvance(t *testing.T) {
	// Advancing far past wake+idle must apply both transitions at their
	// exact instants: waking(100..160), on(160..220), sleeping(220..).
	c := newCtl(0, power.Sleeping)
	c.Touch(100)
	c.Advance(1000)
	if c.State() != power.Sleeping {
		t.Fatalf("state = %v, want sleeping", c.State())
	}
	// Energy: 9 W for the 120 s of waking+on.
	want := 120 * power.GatewayWatts
	if got := c.Device().EnergyAt(1000); math.Abs(got-want) > 1e-9 {
		t.Errorf("energy = %v, want %v", got, want)
	}
}

func TestNextTransition(t *testing.T) {
	c := newCtl(0, power.On)
	if got := c.NextTransition(); got != 60 {
		t.Errorf("on: next = %v, want 60", got)
	}
	c.Advance(60) // sleeps
	if got := c.NextTransition(); !math.IsInf(got, 1) {
		t.Errorf("sleeping: next = %v, want +Inf", got)
	}
	c.Touch(100)
	if got := c.NextTransition(); got != 160 {
		t.Errorf("waking: next = %v, want 160", got)
	}
}

func TestAdvancePanicsOnTimeTravel(t *testing.T) {
	c := newCtl(0, power.On)
	c.Advance(50)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Advance(40)
}

func TestInitialWakingState(t *testing.T) {
	dev := power.NewDevice("gw", power.GatewayWatts, power.Waking, 10)
	c := New(dev, 60, 60, 10)
	if got := c.WakeReadyAt(); got != 70 {
		t.Errorf("initial waking ready at %v, want 70", got)
	}
	c.Advance(70)
	if !c.Awake() {
		t.Error("not awake after initial wake")
	}
}

func TestWakeCountsAsWakeup(t *testing.T) {
	c := newCtl(0, power.Sleeping)
	c.Touch(10)
	c.Advance(200)
	c.Touch(300)
	c.Advance(500)
	if got := c.Device().Wakeups(); got != 2 {
		t.Errorf("wakeups = %d, want 2", got)
	}
}

func TestBusyExtendsWithoutSleeping(t *testing.T) {
	c := newCtl(0, power.On)
	c.Touch(10) // deadline 70
	// At exactly the deadline, the caller knows the device is busy.
	c.Busy(70)
	c.Advance(70)
	if !c.Awake() {
		t.Fatal("Busy at the deadline failed to prevent sleep")
	}
	if got := c.NextTransition(); got != 130 {
		t.Errorf("next transition = %v, want 130", got)
	}
	if c.Device().Wakeups() != 0 {
		t.Errorf("bogus wakeup charged: %d", c.Device().Wakeups())
	}
	// Busy never moves the clock backwards.
	c.Busy(50)
	if got := c.NextTransition(); got != 130 {
		t.Errorf("Busy moved the idle clock backwards: %v", got)
	}
}

func TestForcedSleep(t *testing.T) {
	c := newCtl(0, power.On)
	c.Touch(50) // keep it awake past the initial idle deadline
	c.Sleep(100)
	if c.State() != power.Sleeping {
		t.Fatalf("state = %v after forced sleep", c.State())
	}
	// Idempotent.
	c.Sleep(110)
	if c.State() != power.Sleeping {
		t.Fatal("second Sleep changed state")
	}
	// Forced sleep mid-wake cancels the wake.
	c.Touch(200)
	c.Sleep(210)
	if c.State() != power.Sleeping {
		t.Fatalf("state = %v; Sleep should cancel a pending wake", c.State())
	}
	if got := c.WakeReadyAt(); !math.IsInf(got, 1) {
		t.Errorf("wakeAt = %v after forced sleep, want +Inf", got)
	}
	// Energy: on 0..100 (forced sleep), waking 200..210 => 110 s active.
	want := 110 * power.GatewayWatts
	if got := c.Device().EnergyAt(300); math.Abs(got-want) > 1e-9 {
		t.Errorf("energy = %v, want %v", got, want)
	}
}

func TestFailRestore(t *testing.T) {
	c := newCtl(0, power.On)
	c.Touch(50)
	// The cut hits an operative device: Fail reports the state it found and
	// drops it to Sleeping with no wake pending.
	if st := c.Fail(100); st != power.On {
		t.Fatalf("Fail found state %v, want On", st)
	}
	if c.State() != power.Sleeping {
		t.Fatalf("state = %v after Fail", c.State())
	}
	if got := c.WakeReadyAt(); !math.IsInf(got, 1) {
		t.Errorf("wakeAt = %v after Fail, want +Inf", got)
	}
	// Restore brings it up On with a fresh idle clock — one wakeup.
	wk := c.Device().Wakeups()
	c.Restore(400)
	if c.State() != power.On {
		t.Fatalf("state = %v after Restore", c.State())
	}
	if got := c.Device().Wakeups(); got != wk+1 {
		t.Errorf("Restore charged %d wakeups, want 1", got-wk)
	}
	if got := c.NextTransition(); got != 400+c.IdleTimeout {
		t.Errorf("idle deadline = %v after Restore, want %v", got, 400+c.IdleTimeout)
	}
	// Energy: on 0..100, off 100..400, on 400..500 => 200 s active.
	want := 200 * power.GatewayWatts
	if got := c.Device().EnergyAt(500); math.Abs(got-want) > 1e-9 {
		t.Errorf("energy = %v, want %v", got, want)
	}
}

func TestFailMidWake(t *testing.T) {
	// A power cut during the wake ramp loses the pending wake entirely.
	c := newCtl(0, power.Sleeping)
	c.Touch(10)
	if st := c.Fail(30); st != power.Waking {
		t.Fatalf("Fail found state %v, want Waking", st)
	}
	c.Advance(1000)
	if c.State() != power.Sleeping {
		t.Fatalf("state = %v; the lost wake must not complete", c.State())
	}
	// Fail on an already-dark device is a no-op state-wise.
	if st := c.Fail(1100); st != power.Sleeping {
		t.Fatalf("second Fail found %v, want Sleeping", st)
	}
}
