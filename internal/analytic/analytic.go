// Package analytic collects the paper's closed-form models: the line-card
// sleep probability under k-switches (Eq 2, Fig 5), the plain-SoI sleep
// probability (1-p)^m of §4.1, the SoI savings bound implied by the
// inter-packet-gap distribution (§2.4), and the world-wide savings
// extrapolation (§5.4).
package analytic

import (
	"fmt"
	"math"

	"insomnia/internal/power"
	"insomnia/internal/stats"
)

// CardSleepNoSwitch returns the probability that a line card with m modems
// can sleep when each modem is independently inactive with probability
// 1-p: (1-p)^m (§4.1). It decays exponentially in m, which is the paper's
// argument for why SoI alone never powers off cards.
func CardSleepNoSwitch(m int, p float64) float64 {
	return math.Pow(1-p, float64(m))
}

// CardSleepProbability is Eq (2): the probability that the l-th card
// (1-based) of a group of k cards wired through m k-switches can sleep,
// when each line is independently active with probability p:
//
//	P = ( P{at least l of the k lines of a switch are inactive} )^m
//	  = ( 1 - Σ_{i=0}^{l-1} C(k,i) (1-p)^i p^(k-i) )^m
//
// (The paper's display omits the binomial coefficient; the text's Fig 5
// curves require it, so we include it.)
func CardSleepProbability(l, k, m int, p float64) (float64, error) {
	if l < 1 || l > k {
		return 0, fmt.Errorf("analytic: card index l=%d outside 1..%d", l, k)
	}
	if k < 1 || m < 1 {
		return 0, fmt.Errorf("analytic: invalid k=%d m=%d", k, m)
	}
	if !(p >= 0 && p <= 1) { // also rejects NaN
		return 0, fmt.Errorf("analytic: probability p=%v outside [0,1]", p)
	}
	var cdf float64 // P{fewer than l inactive} = Σ_{i<l} C(k,i)(1-p)^i p^(k-i)
	for i := 0; i < l; i++ {
		cdf += binom(k, i) * math.Pow(1-p, float64(i)) * math.Pow(p, float64(k-i))
	}
	perSwitch := 1 - cdf
	if perSwitch < 0 {
		perSwitch = 0
	}
	return math.Pow(perSwitch, float64(m)), nil
}

// ExpectedSleepingCards sums Eq (2) over the cards of one k-group.
func ExpectedSleepingCards(k, m int, p float64) (float64, error) {
	var s float64
	for l := 1; l <= k; l++ {
		v, err := CardSleepProbability(l, k, m, p)
		if err != nil {
			return 0, err
		}
		s += v
	}
	return s, nil
}

// FullSwitchSleepingCards is the §4.1 upper bound with unrestricted
// switching: ⌊n(1-p)/m⌋ cards of an n-port DSLAM with m ports per card can
// sleep in expectation terms.
func FullSwitchSleepingCards(n, m int, p float64) int {
	return int(math.Floor(float64(n) * (1 - p) / float64(m)))
}

// SoIPoissonSleepProbability returns the long-run fraction of time a single
// SoI gateway sleeps when its only traffic is client keepalives arriving as a
// Poisson process of rate lambda (events per second), with idle timeout T and
// wake transition W (both seconds; T >= 0, W >= 0, lambda > 0).
//
// Derivation (renewal-reward over one sleep cycle): a cycle starts when the
// gateway falls asleep, sleeps Exp(lambda) time until the next keepalive,
// then spends W waking and stays on until a gap longer than T appears. The
// expected on-time per cycle is W + (e^{λT}-1)/λ — the classic expected wait
// for an arrival-free window of length T in a Poisson stream — and the
// expected sleep per cycle is 1/λ, so
//
//	P(sleep) = (1/λ) / (1/λ + W + (e^{λT}-1)/λ) = 1 / (λW + e^{λT}).
//
// Limits sanity-check it: λ→0 gives 1 (an idle gateway always sleeps) and
// T→∞ or W→∞ give 0. This is the oracle's statistical leg for plain SoI: the
// engine's measured GatewayOnTime fraction over a long horizon must converge
// on 1 - P(sleep) (internal/oracle TestAnalyticSoIPoisson).
func SoIPoissonSleepProbability(lambda, idleTimeout, wakeDelay float64) (float64, error) {
	if lambda <= 0 || math.IsNaN(lambda) || math.IsInf(lambda, 0) {
		return 0, fmt.Errorf("analytic: keepalive rate lambda=%v must be positive and finite", lambda)
	}
	if idleTimeout < 0 || wakeDelay < 0 || math.IsNaN(idleTimeout) || math.IsNaN(wakeDelay) {
		return 0, fmt.Errorf("analytic: negative timeout %v or wake delay %v", idleTimeout, wakeDelay)
	}
	return 1 / (lambda*wakeDelay + math.Exp(lambda*idleTimeout)), nil
}

// SoIPoissonWakeupRate returns the long-run gateway wakeups per second under
// the same Poisson-keepalive model as SoIPoissonSleepProbability: one wakeup
// per renewal cycle of expected length 1/λ + W + (e^{λT}-1)/λ, i.e.
// λ / (λW + e^{λT}) = λ · P(sleep). Multiply by the horizon for an expected
// wakeup count (the engine's Result.Wakeups, which counts Sleeping→Waking
// transitions).
func SoIPoissonWakeupRate(lambda, idleTimeout, wakeDelay float64) (float64, error) {
	p, err := SoIPoissonSleepProbability(lambda, idleTimeout, wakeDelay)
	if err != nil {
		return 0, err
	}
	return lambda * p, nil
}

func binom(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	out := 1.0
	for i := 0; i < k; i++ {
		out *= float64(n-i) / float64(i+1)
	}
	return out
}

// SoISavingsBound computes the maximum fraction of time a gateway can sleep
// under plain SoI with the given idle timeout, from a duration-weighted
// inter-packet-gap histogram (trace.GapHistogram): only gaps longer than
// the timeout yield sleep, and each pays the timeout before sleeping.
// idleShare is the fraction of wall-clock time that is idle at all. The
// histogram's exact per-bin means are used, so open-ended bins are handled
// correctly.
//
// With the paper's Fig 4 numbers (>80% of idle time in sub-60 s gaps) this
// bound lands near 20% at the peak hour — the §2.4 conclusion.
func SoISavingsBound(h *stats.VarHistogram, edges []float64, timeout, idleShare float64) float64 {
	if h.Total() == 0 {
		return 0
	}
	var sleepable float64
	for i := 0; i < h.Bins(); i++ {
		if edges[i+1] <= timeout {
			continue
		}
		mean := h.MeanAt(i)
		if mean <= timeout {
			continue
		}
		// Each gap of mean length g sleeps (g - timeout).
		sleepable += h.Count(i) * (mean - timeout) / mean
	}
	return idleShare * sleepable / h.Total()
}

// Extrapolation reproduces §5.4's world-wide estimate: applying the
// measured average savings fraction to every DSL subscriber's share of
// access-network power.
type Extrapolation struct {
	Subscribers   float64 // DSL subscribers world-wide (320e6 in 2010)
	UserSideWatts float64 // gateway + AP + router per subscriber
	ISPSideWatts  float64 // DSLAM share per subscriber
	SavingsFrac   float64 // measured average savings (0.66)
}

// DefaultExtrapolation matches the paper's inputs: 320 M subscribers, the
// measured 9 W gateway plus 5 W wireless router on the user side, the
// per-subscriber DSLAM share (98 W card / 48 ports + 1 W port modem + shelf
// overhead) on the ISP side, and the 66% measured saving.
func DefaultExtrapolation() Extrapolation {
	perSubISP := power.LineCardWatts/48 + power.ISPModemWatts + power.ShelfWatts/1000
	return Extrapolation{
		Subscribers:   320e6,
		UserSideWatts: power.GatewayWatts + power.RouterWatts,
		ISPSideWatts:  perSubISP,
		SavingsFrac:   0.66,
	}
}

// AnnualSavingsTWh returns the yearly energy saving in terawatt-hours.
func (e Extrapolation) AnnualSavingsTWh() float64 {
	watts := (e.UserSideWatts + e.ISPSideWatts) * e.Subscribers * e.SavingsFrac
	const hoursPerYear = 8766 // 365.25 days
	return watts * hoursPerYear / 1e12
}

// EnergyProportionalSavings returns the savings that ideal energy
// proportionality would deliver over today's constant-draw devices: with
// P(u) = floor + (1-floor)·u·Pmax and mean utilization u, the saving vs
// always-Pmax is (1-floor)(1-u). The paper's §2.2 invokes Barroso &
// Hölzle's energy proportionality as the long-term alternative to
// sleeping; at access-network utilizations (u ≈ 0.02-0.08) this lands at
// the same ~80-90% margin that the Optimal sleeping scheme measures —
// sleeping recovers nearly all of what proportional hardware would.
func EnergyProportionalSavings(meanUtil, idleFloorFrac float64) (float64, error) {
	if meanUtil < 0 || meanUtil > 1 || idleFloorFrac < 0 || idleFloorFrac > 1 {
		return 0, fmt.Errorf("analytic: utilization %v / floor %v outside [0,1]", meanUtil, idleFloorFrac)
	}
	return (1 - idleFloorFrac) * (1 - meanUtil), nil
}
