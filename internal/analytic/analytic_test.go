package analytic

import (
	"math"
	"testing"
	"testing/quick"

	"insomnia/internal/stats"
)

func TestCardSleepNoSwitch(t *testing.T) {
	// §4.1: a 48-port card at 5% utilization sleeps with probability
	// 0.95^48 ≈ 8.5%.
	got := CardSleepNoSwitch(48, 0.05)
	if math.Abs(got-math.Pow(0.95, 48)) > 1e-12 {
		t.Errorf("got %v", got)
	}
	if got < 0.07 || got > 0.10 {
		t.Errorf("48-port card at p=0.05 sleeps with prob %v, paper says ~8%%", got)
	}
	if CardSleepNoSwitch(10, 0) != 1 {
		t.Error("p=0 should always sleep")
	}
	if CardSleepNoSwitch(10, 1) != 0 {
		t.Error("p=1 should never sleep")
	}
}

func TestCardSleepProbabilityValidation(t *testing.T) {
	if _, err := CardSleepProbability(0, 4, 24, 0.5); err == nil {
		t.Error("l=0 accepted")
	}
	if _, err := CardSleepProbability(5, 4, 24, 0.5); err == nil {
		t.Error("l>k accepted")
	}
	if _, err := CardSleepProbability(1, 4, 0, 0.5); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := CardSleepProbability(1, 4, 24, 1.5); err == nil {
		t.Error("p>1 accepted")
	}
}

func TestCardSleepProbabilityEdgeCases(t *testing.T) {
	// l=1, k=1: P{line inactive}^m.
	got, err := CardSleepProbability(1, 1, 3, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pow(0.6, 3)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("got %v, want %v", got, want)
	}
	// p=0: every card sleeps with probability 1.
	got, err = CardSleepProbability(4, 4, 24, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("p=0: got %v", got)
	}
	// p=1: nothing sleeps.
	got, err = CardSleepProbability(1, 4, 24, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("p=1: got %v", got)
	}
}

// TestEq2Table pins the oracle-facing edge cases of Eq 2 and its
// neighbors as an explicit table — the boundaries the closed forms are
// evaluated at inside internal/oracle (l=k, degenerate p, m=0) must have
// their exact values and error behavior spelled out, not only covered
// implicitly by quick.Check properties.
func TestEq2Table(t *testing.T) {
	cases := []struct {
		name       string
		l, k, m    int
		p          float64
		want       float64
		wantErr    bool
		exactMatch bool // compare with ==, not a tolerance
	}{
		// l=k boundary: "at least k of k lines inactive" is all-inactive,
		// so Eq 2 degenerates to ((1-p)^k)^m.
		{name: "l=k boundary", l: 4, k: 4, m: 12, p: 0.3, want: math.Pow(math.Pow(0.7, 4), 12)},
		{name: "l=k=1 is the no-switch product", l: 1, k: 1, m: 12, p: 0.3, want: CardSleepNoSwitch(12, 0.3)},
		// p at the endpoints: certainty either way, bit-exact.
		{name: "p=0 sleeps surely", l: 4, k: 4, m: 24, p: 0, want: 1, exactMatch: true},
		{name: "p=1 never sleeps", l: 1, k: 4, m: 24, p: 1, want: 0, exactMatch: true},
		// Degenerate shapes are errors, not silent 0s or 1s.
		{name: "m=0 rejected", l: 1, k: 4, m: 0, p: 0.5, wantErr: true},
		{name: "k=0 rejected", l: 1, k: 0, m: 24, p: 0.5, wantErr: true},
		{name: "l=0 rejected", l: 0, k: 4, m: 24, p: 0.5, wantErr: true},
		{name: "l>k rejected", l: 5, k: 4, m: 24, p: 0.5, wantErr: true},
		{name: "p<0 rejected", l: 1, k: 4, m: 24, p: -0.1, wantErr: true},
		{name: "p>1 rejected", l: 1, k: 4, m: 24, p: 1.1, wantErr: true},
		{name: "NaN p rejected", l: 1, k: 4, m: 24, p: math.NaN(), wantErr: true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, err := CardSleepProbability(c.l, c.k, c.m, c.p)
			if c.wantErr {
				if err == nil {
					t.Fatalf("CardSleepProbability(%d,%d,%d,%v) = %v, want error", c.l, c.k, c.m, c.p, got)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if c.exactMatch && got != c.want {
				t.Fatalf("got %v, want exactly %v", got, c.want)
			}
			if math.Abs(got-c.want) > 1e-12 {
				t.Fatalf("got %v, want %v", got, c.want)
			}
		})
	}
}

// TestExpectedSleepingCardsTable: the Eq 2 sum at its endpoints — all k
// cards sleep at p=0, none at p=1, and an error from any term propagates.
func TestExpectedSleepingCardsTable(t *testing.T) {
	cases := []struct {
		name    string
		k, m    int
		p       float64
		want    float64
		wantErr bool
	}{
		{name: "p=0 sleeps whole group", k: 4, m: 12, p: 0, want: 4},
		{name: "p=1 sleeps nothing", k: 4, m: 12, p: 1, want: 0},
		{name: "single-card group is no-switch", k: 1, m: 12, p: 0.3, want: CardSleepNoSwitch(12, 0.3)},
		{name: "m=0 rejected", k: 4, m: 0, p: 0.5, wantErr: true},
		{name: "p>1 rejected", k: 4, m: 12, p: 2, wantErr: true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, err := ExpectedSleepingCards(c.k, c.m, c.p)
			if c.wantErr {
				if err == nil {
					t.Fatalf("got %v, want error", got)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-c.want) > 1e-12 {
				t.Fatalf("got %v, want %v", got, c.want)
			}
		})
	}
}

// TestSoIPoissonTable pins the renewal-reward closed forms at their
// boundaries: zero timeout and wake delay leave the gateway asleep except
// during service (P=1 at T=W=0 in this fluid model), each parameter's
// limit behavior is monotone toward 0, and non-positive or non-finite
// rates are errors.
func TestSoIPoissonTable(t *testing.T) {
	const lambda = 1.0 / 600
	cases := []struct {
		name               string
		lambda, idle, wake float64
		want               float64 // NaN marks error cases
	}{
		{name: "T=0 W=0 always sleeps", lambda: lambda, idle: 0, wake: 0, want: 1},
		{name: "wake only", lambda: lambda, idle: 0, wake: 60, want: 1 / (lambda*60 + 1)},
		{name: "timeout only", lambda: lambda, idle: 60, wake: 0, want: 1 / math.Exp(lambda*60)},
		{name: "reference point", lambda: lambda, idle: 60, wake: 60, want: 1 / (lambda*60 + math.Exp(lambda*60))},
		{name: "lambda=0 rejected", lambda: 0, idle: 60, wake: 60, want: math.NaN()},
		{name: "negative lambda rejected", lambda: -1, idle: 60, wake: 60, want: math.NaN()},
		{name: "Inf lambda rejected", lambda: math.Inf(1), idle: 60, wake: 60, want: math.NaN()},
		{name: "negative timeout rejected", lambda: lambda, idle: -1, wake: 60, want: math.NaN()},
		{name: "negative wake rejected", lambda: lambda, idle: 60, wake: -1, want: math.NaN()},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, err := SoIPoissonSleepProbability(c.lambda, c.idle, c.wake)
			if math.IsNaN(c.want) {
				if err == nil {
					t.Fatalf("got %v, want error", got)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-c.want) > 1e-15 {
				t.Fatalf("P(sleep) = %v, want %v", got, c.want)
			}
			// The wakeup rate is λ·P by construction; pin the identity.
			rate, err := SoIPoissonWakeupRate(c.lambda, c.idle, c.wake)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(rate-c.lambda*got) > 1e-18 {
				t.Fatalf("wakeup rate %v, want λ·P = %v", rate, c.lambda*got)
			}
		})
	}
}

// Fig 5 middle panel (m=24, p=0.5): the first card of an 8-switch group
// sleeps almost surely; deeper cards decay sharply. Check the qualitative
// anchors the figure shows.
func TestFig5Anchors(t *testing.T) {
	p := 0.5
	m := 24
	// k=8: card 1 sleeps with very high probability.
	c1, err := CardSleepProbability(1, 8, m, p)
	if err != nil {
		t.Fatal(err)
	}
	if c1 < 0.85 {
		t.Errorf("k=8 card1 = %v, Fig 5 shows ~0.9+", c1)
	}
	// k=2: card 1 sleeps with probability (1-p^2)^m = 0.75^24 ≈ 0.001.
	c2, err := CardSleepProbability(1, 2, m, p)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pow(0.75, 24)
	if math.Abs(c2-want) > 1e-12 {
		t.Errorf("k=2 card1 = %v, want %v", c2, want)
	}
	// Monotone: bigger switches sleep more cards.
	e2, _ := ExpectedSleepingCards(2, m, p)
	e4, _ := ExpectedSleepingCards(4, m, p)
	e8, _ := ExpectedSleepingCards(8, m, p)
	if !(e8 > e4 && e4 > e2) {
		t.Errorf("expected sleeping cards not monotone in k: %v %v %v", e2, e4, e8)
	}
	// Lower activity sleeps more.
	e8lo, _ := ExpectedSleepingCards(8, m, 0.25)
	if e8lo <= e8 {
		t.Errorf("p=0.25 (%v) should beat p=0.5 (%v)", e8lo, e8)
	}
}

// Property: Eq 2 is decreasing in l (deeper cards sleep less), decreasing
// in p, and always in [0,1].
func TestEq2MonotoneProperty(t *testing.T) {
	f := func(kRaw, lRaw, mRaw uint8, pRaw uint16) bool {
		k := 2 + int(kRaw%7)
		l := 1 + int(lRaw)%k
		m := 1 + int(mRaw%40)
		p := float64(pRaw) / 65535
		v, err := CardSleepProbability(l, k, m, p)
		if err != nil || v < 0 || v > 1 {
			return false
		}
		if l > 1 {
			prev, _ := CardSleepProbability(l-1, k, m, p)
			if v > prev+1e-12 {
				return false
			}
		}
		v2, _ := CardSleepProbability(l, k, m, math.Min(1, p+0.1))
		return v2 <= v+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestFullSwitchSleepingCards(t *testing.T) {
	// 48 ports, 12/card, half the lines off: 2 of 4 cards sleep.
	if got := FullSwitchSleepingCards(48, 12, 0.5); got != 2 {
		t.Errorf("got %d, want 2", got)
	}
	if got := FullSwitchSleepingCards(48, 12, 1); got != 0 {
		t.Errorf("p=1: got %d", got)
	}
	if got := FullSwitchSleepingCards(48, 12, 0); got != 4 {
		t.Errorf("p=0: got %d", got)
	}
}

func TestSoISavingsBound(t *testing.T) {
	// A histogram where 80% of idle time sits in 30 s gaps and 20% in
	// ~120 s gaps, with 95% of wall-clock idle: the bound must land near
	// the paper's ~20%-or-less SoI ceiling at peak.
	edges := []float64{0, 60, math.Inf(1)}
	h := stats.NewVarHistogram(edges)
	h.AddWeighted(30, 80)
	h.AddWeighted(120, 20)
	got := SoISavingsBound(h, edges, 60, 0.95)
	// Only the >60 bin contributes: mean 2*60=120, sleepable (120-60)/120 = 0.5
	// of its weight: 0.2*0.5*0.95 = 0.095.
	if math.Abs(got-0.095) > 1e-9 {
		t.Errorf("bound = %v, want 0.095", got)
	}
	// All idle time in giant gaps: bound approaches idleShare.
	h2 := stats.NewVarHistogram(edges)
	h2.AddWeighted(100000, 100)
	if got := SoISavingsBound(h2, edges, 60, 1.0); got < 0.9 {
		t.Errorf("giant-gap bound = %v, want ~1", got)
	}
	// Empty histogram.
	h3 := stats.NewVarHistogram(edges)
	if got := SoISavingsBound(h3, edges, 60, 1.0); got != 0 {
		t.Errorf("empty bound = %v", got)
	}
}

func TestExtrapolationMatchesPaper(t *testing.T) {
	e := DefaultExtrapolation()
	got := e.AnnualSavingsTWh()
	// §5.4: "the savings collectively amount to about 33 TWh per year".
	if got < 25 || got > 40 {
		t.Errorf("extrapolated savings = %v TWh, paper says ~33", got)
	}
}

func TestExtrapolationScalesLinearly(t *testing.T) {
	e := DefaultExtrapolation()
	base := e.AnnualSavingsTWh()
	e.Subscribers *= 2
	if math.Abs(e.AnnualSavingsTWh()-2*base) > 1e-9 {
		t.Error("not linear in subscribers")
	}
}

func TestEnergyProportionalSavings(t *testing.T) {
	// At 8% utilization with a 10% idle floor: 0.9*0.92 = 82.8% — the same
	// ballpark as the paper's 80% sleeping margin.
	got, err := EnergyProportionalSavings(0.08, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.828) > 1e-12 {
		t.Errorf("got %v, want 0.828", got)
	}
	if _, err := EnergyProportionalSavings(-0.1, 0); err == nil {
		t.Error("negative utilization accepted")
	}
	if _, err := EnergyProportionalSavings(0.5, 1.5); err == nil {
		t.Error("floor > 1 accepted")
	}
	// Fully utilized or all-floor hardware saves nothing.
	if v, _ := EnergyProportionalSavings(1, 0); v != 0 {
		t.Errorf("u=1: %v", v)
	}
	if v, _ := EnergyProportionalSavings(0, 1); v != 0 {
		t.Errorf("floor=1: %v", v)
	}
}

func TestBinom(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{4, 0, 1}, {4, 1, 4}, {4, 2, 6}, {4, 4, 1}, {4, 5, 0}, {4, -1, 0},
		{24, 12, 2704156},
	}
	for _, c := range cases {
		if got := binom(c.n, c.k); math.Abs(got-c.want) > 1e-6*c.want {
			t.Errorf("binom(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
}
