package quotient

import (
	"testing"

	"insomnia/internal/topology"
)

// TestPartitionGrid partitions a plain 5x5 grid (3 neighborhood classes)
// with uniform client counts and checks class structure and ordering.
func TestPartitionGrid(t *testing.T) {
	g, err := topology.GridCity(25, 4.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	hoods := g.NeighborhoodHashes()
	counts := SymmetricCounts(100, 25) // uniform: 4 each
	classes := Partition(hoods, counts, nil)
	if len(classes) != 3 {
		t.Fatalf("got %d classes, want 3: %+v", len(classes), classes)
	}
	total := 0
	for _, c := range classes {
		if c.Clients != 4 {
			t.Fatalf("class clients %d, want 4", c.Clients)
		}
		for i := 1; i < len(c.Members); i++ {
			if c.Members[i] <= c.Members[i-1] {
				t.Fatalf("members not ascending: %v", c.Members)
			}
		}
		total += len(c.Members)
	}
	if total != 25 {
		t.Fatalf("classes cover %d gateways, want 25", total)
	}
}

// TestPartitionOrdering pins the ceil-count-first ordering: with clients
// not divisible by gateways, the larger-count classes must come first so
// the round-robin invariant holds.
func TestPartitionOrdering(t *testing.T) {
	// 4 gateways, all same neighborhood, 10 clients: counts 3,3,2,2.
	hoods := []uint64{7, 7, 7, 7}
	counts := SymmetricCounts(10, 4)
	classes := Partition(hoods, counts, nil)
	if len(classes) != 2 {
		t.Fatalf("got %d classes, want 2", len(classes))
	}
	if classes[0].Clients != 3 || classes[1].Clients != 2 {
		t.Fatalf("ordering wrong: %+v", classes)
	}
	q, err := Build(classes, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if q.Clients != 5 { // 3 + 2
		t.Fatalf("quotient clients %d, want 5", q.Clients)
	}
	// Round-robin of 5 clients over 2 reps: 3 and 2. Verified by Build.
	if q.Weight[0] != 2 || q.Weight[1] != 2 {
		t.Fatalf("weights %v, want [2 2]", q.Weight)
	}
}

// TestForcedSingletons checks failure-affected gateways never merge.
func TestForcedSingletons(t *testing.T) {
	hoods := []uint64{7, 7, 7, 7}
	counts := []int{2, 2, 2, 2}
	forced := []bool{false, true, true, false}
	classes := Partition(hoods, counts, forced)
	if len(classes) != 3 {
		t.Fatalf("got %d classes, want 3 (merged pair + 2 singletons): %+v", len(classes), classes)
	}
	for _, c := range classes {
		for _, g := range c.Members {
			if forced[g] && len(c.Members) != 1 {
				t.Fatalf("forced gateway %d merged into %v", g, c.Members)
			}
		}
	}
}

// TestFullClientOf checks the client mapping reproduces the full scenario's
// (gateway, slot) structure.
func TestFullClientOf(t *testing.T) {
	hoods := []uint64{1, 1, 2, 2}
	counts := SymmetricCounts(8, 4) // uniform 2
	classes := Partition(hoods, counts, nil)
	q, err := Build(classes, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	m := q.FullClientOf()
	if len(m) != 8 {
		t.Fatalf("len %d, want 8", len(m))
	}
	r := len(q.Classes)
	for c, qc := range m {
		home, slot := c%4, c/4
		wantHome := q.FullHome[home]
		if int(qc)%r != int(wantHome) || int(qc)/r != slot {
			t.Fatalf("client %d -> quotient %d, want home %d slot %d", c, qc, wantHome, slot)
		}
	}
}

// TestBuildRejectsBrokenInvariant: a partition whose counts cannot be
// reproduced by round-robin placement must be rejected.
func TestBuildRejectsBrokenInvariant(t *testing.T) {
	classes := []Class{
		{Members: []int{0, 1}, Clients: 4},
		{Members: []int{2, 3}, Clients: 1},
	}
	if _, err := Build(classes, 4, 10); err == nil {
		t.Fatal("Build should reject a non-round-robin count profile")
	}
}
