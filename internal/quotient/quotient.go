// Package quotient partitions the gateways of a symmetric scenario into
// equivalence classes and derives the collapsed ("quotient") scenario that
// simulates one representative per class with a multiplicity weight.
//
// The partition itself is mechanical — group by fingerprint — and the
// exactness burden sits with the caller (internal/campaign): a class may
// only be collapsed when the simulated behavior of its members is provably
// identical. For this repository's engine that holds exactly when
//
//   - the trace was generated with symmetric placement (trace.Config.
//     Symmetric), so equal-count gateways carry byte-identical workloads;
//   - the scheme routes every client to its home gateway and has no
//     cross-gateway coupling beyond the DSLAM switch fabric (no-sleep,
//     SoI, SoI+full-switch — see campaign's schemeCollapsible);
//   - failure-affected gateways are pinned into singleton classes
//     (forced), so stranding and recovery dynamics stay per-gateway exact.
//
// Under those conditions the quotient run's per-representative trajectory
// is bit-identical to each member's trajectory in the full run, and the
// engine's multiplicity-weighted accounting (sim.Config.Quotient) folds
// metrics back out bit-exactly.
package quotient

import (
	"fmt"
	"sort"
)

// Class is one equivalence class of gateways of the full scenario.
type Class struct {
	// Members are the full-scenario gateway ids in the class, ascending.
	Members []int
	// Clients is the number of clients each member serves.
	Clients int
}

// Partition groups gateways into equivalence classes by exact fingerprint:
// (clients served, canonical neighborhood hash). Gateways with forced[g]
// set (failure-affected ones) become singleton classes regardless of
// fingerprint. hoods comes from topology.(*Graph).NeighborhoodHashes;
// clientCount[g] is the number of clients homed on gateway g.
//
// Classes are ordered largest-client-count first, ties by smallest member
// id. That ordering is load-bearing: the quotient trace is generated with
// round-robin symmetric placement over the representatives, which assigns
// ceil(C'/R) clients to the first C'%R representatives — so classes with
// the larger client count must come first for each representative to
// reproduce its members' exact client slots (Build verifies this).
func Partition(hoods []uint64, clientCount []int, forced []bool) []Class {
	type key struct {
		clients int
		hood    uint64
		forced  int // forced singletons carry their own id, never merged
	}
	byKey := map[key]*Class{}
	var classes []*Class
	for g := range hoods {
		k := key{clients: clientCount[g], hood: hoods[g], forced: -1}
		if forced != nil && forced[g] {
			k.forced = g
		}
		c := byKey[k]
		if c == nil {
			c = &Class{Clients: clientCount[g]}
			byKey[k] = c
			classes = append(classes, c)
		}
		c.Members = append(c.Members, g)
	}
	sort.Slice(classes, func(i, j int) bool {
		if classes[i].Clients != classes[j].Clients {
			return classes[i].Clients > classes[j].Clients
		}
		return classes[i].Members[0] < classes[j].Members[0]
	})
	out := make([]Class, len(classes))
	for i, c := range classes {
		out[i] = *c
	}
	return out
}

// Quotient is the collapsed scenario derived from a partition: class i of
// the partition becomes gateway i of the quotient scenario.
type Quotient struct {
	// Classes is the partition, in Partition's largest-first order.
	Classes []Class
	// Rep[i] is the full gateway id representing class i (its smallest
	// member).
	Rep []int
	// Weight[i] is the multiplicity of class i.
	Weight []float64
	// FullHome maps every full gateway id to its class (= quotient
	// gateway) index.
	FullHome []int32
	// FullGateways and FullClients size the full scenario.
	FullGateways, FullClients int
	// Clients is the quotient scenario's client count: sum over classes of
	// their per-member client count.
	Clients int
}

// Build derives the quotient scenario from a partition over a full
// scenario with fullClients clients under symmetric placement (client c
// homed on gateway c % fullGateways). It verifies the round-robin
// invariant — generating a symmetric trace with Clients: q.Clients,
// APs: len(classes) must hand representative i exactly Classes[i].Clients
// clients — and errors if the partition cannot reproduce it, in which
// case the caller must fall back to full simulation.
func Build(classes []Class, fullGateways, fullClients int) (*Quotient, error) {
	q := &Quotient{
		Classes:      classes,
		Rep:          make([]int, len(classes)),
		Weight:       make([]float64, len(classes)),
		FullHome:     make([]int32, fullGateways),
		FullGateways: fullGateways,
		FullClients:  fullClients,
	}
	covered := 0
	for i, c := range classes {
		if len(c.Members) == 0 {
			return nil, fmt.Errorf("quotient: class %d is empty", i)
		}
		q.Rep[i] = c.Members[0]
		q.Weight[i] = float64(len(c.Members))
		q.Clients += c.Clients
		for _, g := range c.Members {
			if g < 0 || g >= fullGateways {
				return nil, fmt.Errorf("quotient: gateway %d outside [0, %d)", g, fullGateways)
			}
			q.FullHome[g] = int32(i)
		}
		covered += len(c.Members)
	}
	if covered != fullGateways {
		return nil, fmt.Errorf("quotient: classes cover %d of %d gateways", covered, fullGateways)
	}
	r := len(classes)
	for i, c := range classes {
		want := q.Clients / r
		if i < q.Clients%r {
			want++
		}
		if c.Clients != want {
			return nil, fmt.Errorf("quotient: class %d serves %d clients but round-robin placement of %d clients over %d representatives hands it %d",
				i, c.Clients, q.Clients, r, want)
		}
	}
	return q, nil
}

// FullClientOf maps every full-scenario client to its quotient-scenario
// counterpart: full client c (gateway c%N, slot c/N) corresponds to
// quotient client FullHome[c%N] + (c/N)*R. The engine uses this to fold
// per-client metrics (stranded seconds) in the full scenario's exact
// iteration order.
func (q *Quotient) FullClientOf() []int32 {
	out := make([]int32, q.FullClients)
	r := len(q.Classes)
	for c := range out {
		out[c] = q.FullHome[c%q.FullGateways] + int32(c/q.FullGateways*r)
	}
	return out
}

// SymmetricCounts returns the per-gateway client counts of a symmetric
// placement of clients over n gateways: gateway g serves clients/n plus
// one if g < clients%n.
func SymmetricCounts(clients, n int) []int {
	out := make([]int, n)
	for g := range out {
		out[g] = clients / n
		if g < clients%n {
			out[g]++
		}
	}
	return out
}
