// Package cli holds the small shared command-line conventions of the
// cmd/* tools. The one rule it currently enforces: a command that takes
// no positional arguments must reject stray ones loudly (usage + exit 2)
// instead of silently running its defaults — `bench tyop` looking exactly
// like a successful default run is how typo'd CI steps go green.
package cli

import (
	"fmt"
	"strings"
)

// RejectArgs returns an error naming any unexpected positional arguments.
// Commands call it right after flag.Parse and route the error to their
// usage + exit(2) path.
func RejectArgs(command string, args []string) error {
	if len(args) == 0 {
		return nil
	}
	return fmt.Errorf("%s: unexpected argument(s): %s", command, strings.Join(args, " "))
}
