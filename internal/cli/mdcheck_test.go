package cli

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestHeadingSlug(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Simple Heading", "simple-heading"},
		{"Error taxonomy → status codes", "error-taxonomy--status-codes"},
		{"`cmd/simd` HTTP API", "cmdsimd-http-api"},
		{"SoI+k-switch (§4.2, Eq 2)", "soik-switch-42-eq-2"},
		{"-randomwake (modifier)", "-randomwake-modifier"},
		{"With [a link](docs/API.md) inside", "with-a-link-inside"},
	}
	for _, c := range cases {
		if got := HeadingSlug(c.in); got != c.want {
			t.Errorf("HeadingSlug(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestMdAnchorsDuplicatesAndFences(t *testing.T) {
	src := []byte("# Top\n## Dup\n## Dup\n```\n# not a heading\n```\n## Dup\n")
	a := mdAnchors(src)
	for _, want := range []string{"top", "dup", "dup-1", "dup-2"} {
		if !a[want] {
			t.Errorf("anchor %q missing from %v", want, a)
		}
	}
	if a["not-a-heading"] {
		t.Error("heading inside a code fence was indexed")
	}
}

// writeTree lays out a throwaway doc tree and returns the file paths.
func writeTree(t *testing.T, files map[string]string) []string {
	t.Helper()
	dir := t.TempDir()
	var out []string
	for name, body := range files {
		p := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if strings.HasSuffix(name, ".md") {
			out = append(out, p)
		}
	}
	return out
}

func TestCheckMarkdownLinksClean(t *testing.T) {
	files := writeTree(t, map[string]string{
		"README.md": "# Readme\n\nSee [docs](docs/GUIDE.md#part-two) and [self](#readme).\n" +
			"External [site](https://example.com/x#y) is skipped.\n" +
			"```\n[broken](inside/fence.md) is ignored\n```\n",
		"docs/GUIDE.md": "# Guide\n## Part One\n## Part Two\n\nBack to [readme](../README.md).\n",
	})
	problems, err := CheckMarkdownLinks(files)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("clean tree reported problems: %v", problems)
	}
}

func TestCheckMarkdownLinksBroken(t *testing.T) {
	files := writeTree(t, map[string]string{
		"README.md":     "# Readme\n\n[gone](docs/MISSING.md)\n[bad anchor](docs/GUIDE.md#nope)\n[bad self](#nothere)\n",
		"docs/GUIDE.md": "# Guide\n",
	})
	problems, err := CheckMarkdownLinks(files)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 3 {
		t.Fatalf("want 3 problems, got %d: %v", len(problems), problems)
	}
	for _, want := range []string{"MISSING.md", "#nope", "#nothere"} {
		found := false
		for _, p := range problems {
			if strings.Contains(p, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no problem mentions %q: %v", want, problems)
		}
	}
	// Every problem carries file:line so CI output is clickable.
	for _, p := range problems {
		if !strings.Contains(p, "README.md:") {
			t.Errorf("problem without file:line prefix: %q", p)
		}
	}
}

// TestRepoDocsLinksAreValid runs the checker over the repo's real docs —
// the same invocation the CI lint step uses via cmd/mdcheck.
func TestRepoDocsLinksAreValid(t *testing.T) {
	root := "../.."
	files := []string{filepath.Join(root, "README.md")}
	docs, err := filepath.Glob(filepath.Join(root, "docs", "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	files = append(files, docs...)
	if len(files) < 4 {
		t.Fatalf("expected README + ≥3 docs files, found %v", files)
	}
	problems, err := CheckMarkdownLinks(files)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Error(p)
	}
}
