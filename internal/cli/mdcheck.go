package cli

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Markdown link-and-anchor checking for the repo's docs (README + docs/),
// dependency-free so CI can run it with a bare `go run`. The checker
// resolves every inline link of the form [text](target):
//
//   - http(s)/mailto links are skipped (CI must not depend on the network);
//   - relative paths must exist on disk, resolved against the linking
//     file's directory;
//   - fragments (#anchor, alone or after a path) must match a heading of
//     the target markdown file, using GitHub's slug rules (lowercase,
//     spaces to dashes, punctuation dropped, -N suffixes for duplicates).
//
// It is deliberately a linter, not a parser: links inside fenced code
// blocks are ignored, reference-style links ([text][ref]) are not used in
// this repo and therefore not resolved.

// mdLink is one checkable link occurrence.
type mdLink struct {
	file   string // markdown file the link appears in
	line   int    // 1-based line number
	target string // raw link target, e.g. "../README.md#spec-schema"
}

var (
	// inlineLink matches [text](target); targets with spaces or nested
	// parens don't occur in this repo's docs and are out of scope.
	inlineLink = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)
	// atxHeading matches #-style headings; Setext headings are unused here.
	atxHeading = regexp.MustCompile(`^#{1,6}\s+(.*?)\s*#*\s*$`)
	// slugDrop strips everything GitHub's anchor algorithm drops: anything
	// that is not a letter, digit, space, dash or underscore.
	slugDrop = regexp.MustCompile(`[^\p{L}\p{N} _-]`)
	// mdSpan strips inline markup from heading text before slugging:
	// emphasis and code fences around words, and the label part of links.
	mdSpan = regexp.MustCompile("[`*]|\\[([^\\]]*)\\]\\([^)]*\\)")
)

// HeadingSlug returns the GitHub anchor for a heading's text: markup
// stripped, lowercased, punctuation dropped, spaces dashed. Duplicate
// handling (-1, -2, …) is the caller's job since it needs document scope.
func HeadingSlug(text string) string {
	text = mdSpan.ReplaceAllString(text, "$1")
	text = slugDrop.ReplaceAllString(text, "")
	text = strings.ToLower(strings.TrimSpace(text))
	return strings.ReplaceAll(text, " ", "-")
}

// mdAnchors returns the set of valid anchors of one markdown source,
// applying GitHub's duplicate rule: the second "foo" heading anchors as
// foo-1, the third as foo-2.
func mdAnchors(src []byte) map[string]bool {
	anchors := map[string]bool{}
	seen := map[string]int{}
	inFence := false
	for _, line := range strings.Split(string(src), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		m := atxHeading.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		slug := HeadingSlug(m[1])
		if n := seen[slug]; n > 0 {
			anchors[fmt.Sprintf("%s-%d", slug, n)] = true
		} else {
			anchors[slug] = true
		}
		seen[slug]++
	}
	return anchors
}

// mdLinks extracts the checkable links of one markdown source, skipping
// fenced code blocks and external schemes.
func mdLinks(file string, src []byte) []mdLink {
	var out []mdLink
	inFence := false
	for i, line := range strings.Split(string(src), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range inlineLink.FindAllStringSubmatch(line, -1) {
			t := m[1]
			if strings.HasPrefix(t, "http://") || strings.HasPrefix(t, "https://") ||
				strings.HasPrefix(t, "mailto:") {
				continue
			}
			out = append(out, mdLink{file: file, line: i + 1, target: t})
		}
	}
	return out
}

// CheckMarkdownLinks verifies every relative link and anchor of the given
// markdown files and returns one "file:line: problem" string per broken
// link, sorted. Anchor targets pointing at non-markdown files are only
// checked for existence.
func CheckMarkdownLinks(files []string) ([]string, error) {
	srcs := map[string][]byte{}
	for _, f := range files {
		buf, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		srcs[f] = buf
	}
	anchorCache := map[string]map[string]bool{}
	anchorsOf := func(path string) (map[string]bool, error) {
		if a, ok := anchorCache[path]; ok {
			return a, nil
		}
		buf, ok := srcs[path]
		if !ok {
			var err error
			if buf, err = os.ReadFile(path); err != nil {
				return nil, err
			}
		}
		a := mdAnchors(buf)
		anchorCache[path] = a
		return a, nil
	}

	var problems []string
	bad := func(l mdLink, format string, args ...any) {
		problems = append(problems, fmt.Sprintf("%s:%d: %s", l.file, l.line, fmt.Sprintf(format, args...)))
	}
	for _, f := range files {
		for _, l := range mdLinks(f, srcs[f]) {
			path, frag, _ := strings.Cut(l.target, "#")
			resolved := f // self-reference for pure fragments
			if path != "" {
				resolved = filepath.Join(filepath.Dir(f), path)
				if _, err := os.Stat(resolved); err != nil {
					bad(l, "broken link %q: %s does not exist", l.target, resolved)
					continue
				}
			}
			if frag == "" {
				continue
			}
			if !strings.HasSuffix(resolved, ".md") {
				bad(l, "anchor %q on non-markdown target %q", frag, path)
				continue
			}
			anchors, err := anchorsOf(resolved)
			if err != nil {
				return nil, err
			}
			if !anchors[frag] {
				bad(l, "broken anchor %q: no heading in %s slugs to it", l.target, resolved)
			}
		}
	}
	sort.Strings(problems)
	return problems, nil
}
