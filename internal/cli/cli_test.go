package cli

import (
	"strings"
	"testing"
)

func TestRejectArgs(t *testing.T) {
	if err := RejectArgs("bench", nil); err != nil {
		t.Errorf("no args should pass, got %v", err)
	}
	if err := RejectArgs("bench", []string{}); err != nil {
		t.Errorf("empty args should pass, got %v", err)
	}
	err := RejectArgs("bench", []string{"tyop", "extra"})
	if err == nil {
		t.Fatal("stray args must error")
	}
	for _, want := range []string{"bench", "tyop", "extra", "unexpected"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q should mention %q", err, want)
		}
	}
}
