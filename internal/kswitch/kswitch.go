// Package kswitch implements §4's line switching at the Handover
// Distribution Frame: small k×k relay switches that re-terminate customer
// lines on different DSLAM ports so that active lines batch onto as few
// line cards as possible, letting the remaining cards sleep.
//
// Physical arrangement (Fig 5 left): line cards are batched in groups of k;
// the s-th k-switch connects to slot s of each of the k cards in the group,
// so a line wired to switch s can terminate on (card 0, slot s) ...
// (card k-1, slot s) — one of k ports, all at the same slot.
//
// Three policies are provided:
//
//   - Fixed: no switching; a line keeps its original port forever (the
//     plain SoI scheme).
//   - KSwitch: remaps a line only when its gateway wakes (the paper's rule
//     to avoid disrupting active flows), packing active lines toward the
//     highest-numbered card of each group.
//   - FullSwitch: the idealized Optimal — any line to any port, repacked on
//     demand with zero disruption.
package kswitch

import (
	"fmt"
	"math/rand"

	"insomnia/internal/dsl"
)

// Policy decides which DSLAM port terminates each line as lines wake and
// sleep. Implementations must keep the mapping injective over active lines.
type Policy interface {
	// PortOf returns the port currently terminating the line.
	PortOf(line int) int
	// OnWake is called when the line's gateway starts carrying traffic
	// again; the policy may remap the line (this is the only moment the
	// paper allows k-switches to act).
	OnWake(line int)
	// OnSleep is called when the line's gateway goes to sleep.
	OnSleep(line int)
	// Repack optimizes the whole mapping; only FullSwitch implements a
	// non-trivial version.
	Repack()
	// ActiveLines returns the current number of active lines.
	ActiveLines() int
	// CardsAwake returns, per card, whether any active line terminates on
	// it (an awake card burns power.LineCardWatts).
	CardsAwake() []bool
	// CardsAwakeInto is CardsAwake writing into buf (reused when cap
	// suffices) so per-sample callers allocate nothing.
	CardsAwakeInto(buf []bool) []bool
	// AwakeCardCount returns the number of awake cards in O(1); the count
	// is maintained incrementally as lines activate, deactivate and move.
	AwakeCardCount() int
}

// AwakeCount counts true entries — the number of line cards burning power.
func AwakeCount(cards []bool) int {
	n := 0
	for _, c := range cards {
		if c {
			n++
		}
	}
	return n
}

// base holds the shared bookkeeping of all policies. Card occupancy is
// tracked incrementally — every mutation of line activity or position goes
// through setActive/move — so per-sample queries (AwakeCardCount) are O(1)
// instead of rescanning all lines.
type base struct {
	d          dsl.DSLAM
	portOf     []int // line -> port
	lineAt     []int // port -> line, -1 when unwired
	active     []bool
	activeN    int   // number of active lines
	cardActive []int // per card: active lines terminating on it
	awakeCards int   // cards with cardActive > 0
}

func newBase(d dsl.DSLAM, initialPort []int) (*base, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	b := &base{
		d:          d,
		portOf:     append([]int(nil), initialPort...),
		lineAt:     make([]int, d.Ports()),
		active:     make([]bool, len(initialPort)),
		cardActive: make([]int, d.Cards),
	}
	for p := range b.lineAt {
		b.lineAt[p] = -1
	}
	for line, p := range b.portOf {
		if p < 0 || p >= d.Ports() {
			return nil, fmt.Errorf("kswitch: line %d on invalid port %d", line, p)
		}
		if b.lineAt[p] != -1 {
			return nil, fmt.Errorf("kswitch: port %d terminates two lines", p)
		}
		b.lineAt[p] = line
	}
	return b, nil
}

func (b *base) PortOf(line int) int { return b.portOf[line] }

func (b *base) ActiveLines() int { return b.activeN }

func (b *base) CardsAwake() []bool { return b.CardsAwakeInto(nil) }

func (b *base) CardsAwakeInto(buf []bool) []bool {
	if cap(buf) < b.d.Cards {
		buf = make([]bool, b.d.Cards)
	}
	buf = buf[:b.d.Cards]
	for cd, n := range b.cardActive {
		buf[cd] = n > 0
	}
	return buf
}

func (b *base) AwakeCardCount() int { return b.awakeCards }

// setActive flips a line's activity, maintaining the card occupancy counts.
func (b *base) setActive(line int, v bool) {
	if b.active[line] == v {
		return
	}
	b.active[line] = v
	cd := b.d.CardOf(b.portOf[line])
	if v {
		b.activeN++
		b.cardActive[cd]++
		if b.cardActive[cd] == 1 {
			b.awakeCards++
		}
	} else {
		b.activeN--
		b.cardActive[cd]--
		if b.cardActive[cd] == 0 {
			b.awakeCards--
		}
	}
}

// move re-terminates line onto port dst, swapping with whatever line is
// wired there (the displaced line must be inactive; k-switches are relays —
// swapping two idle positions disturbs nobody).
func (b *base) move(line, dst int) {
	src := b.portOf[line]
	if src == dst {
		return
	}
	other := b.lineAt[dst]
	if other != -1 {
		if b.active[other] {
			panic(fmt.Sprintf("kswitch: displacing active line %d", other))
		}
		b.portOf[other] = src
	}
	b.lineAt[src] = other
	b.portOf[line] = dst
	b.lineAt[dst] = line
	if b.active[line] {
		sc, dc := b.d.CardOf(src), b.d.CardOf(dst)
		if sc != dc {
			b.cardActive[sc]--
			if b.cardActive[sc] == 0 {
				b.awakeCards--
			}
			b.cardActive[dc]++
			if b.cardActive[dc] == 1 {
				b.awakeCards++
			}
		}
	}
}

// Fixed is the no-switching policy.
type Fixed struct{ *base }

// NewFixed wires each line to its initial port permanently.
func NewFixed(d dsl.DSLAM, initialPort []int) (*Fixed, error) {
	b, err := newBase(d, initialPort)
	if err != nil {
		return nil, err
	}
	return &Fixed{b}, nil
}

// OnWake marks the line active; no remapping.
func (f *Fixed) OnWake(line int) { f.setActive(line, true) }

// OnSleep marks the line inactive.
func (f *Fixed) OnSleep(line int) { f.setActive(line, false) }

// Repack is a no-op.
func (f *Fixed) Repack() {}

// KSwitch implements the paper's k-switch policy. The switch group of a
// line is determined by its slot: all ports at slot s across the k cards of
// a group belong to switch s.
type KSwitch struct {
	*base
	groupCards int // k: cards per group
}

// NewKSwitch builds the policy: the DSLAM's cards are batched in groups of
// k (d.Cards must be divisible by k); there is one k-switch per (group,
// slot) pair.
func NewKSwitch(d dsl.DSLAM, k int, initialPort []int) (*KSwitch, error) {
	if k < 2 || d.Cards%k != 0 {
		return nil, fmt.Errorf("kswitch: %d cards not divisible into groups of %d", d.Cards, k)
	}
	b, err := newBase(d, initialPort)
	if err != nil {
		return nil, err
	}
	return &KSwitch{base: b, groupCards: k}, nil
}

// K returns the switch size.
func (s *KSwitch) K() int { return s.groupCards }

// OnWake remaps the waking line within its switch so active lines pack
// toward the highest-numbered card of the group: prefer a port on a card
// that is already awake (highest such card), else the highest card whose
// port holds no active line. Displaced sleeping lines swap into the waking
// line's old port — a pure relay operation, invisible to both users.
func (s *KSwitch) OnWake(line int) {
	slot := s.d.SlotOf(s.portOf[line])
	group := s.d.CardOf(s.portOf[line]) / s.groupCards
	best := -1
	// First pass: awake cards with a non-active port at our slot. Candidate
	// ports are enumerated in place (highest card first) and card activity
	// read from the incremental occupancy counts, so a wake allocates
	// nothing.
	for i := s.groupCards - 1; i >= 0; i-- {
		card := group*s.groupCards + i
		p := card*s.d.PortsPerCard + slot
		if other := s.lineAt[p]; other != -1 && s.active[other] {
			continue
		}
		if s.cardActive[card] > 0 {
			best = p
			break
		}
		if best == -1 {
			best = p // fallback: highest-numbered card available
		}
	}
	if best != -1 {
		s.move(line, best)
	}
	s.setActive(line, true)
}

// OnSleep marks the line inactive; its position is kept (remaps happen at
// wake time only).
func (s *KSwitch) OnSleep(line int) { s.setActive(line, false) }

// Repack is a no-op for k-switches: the paper restricts remapping to wake
// instants.
func (s *KSwitch) Repack() {}

// FullSwitch can terminate any line on any port and repack all active
// lines onto a minimal prefix of cards with zero disruption — the paper's
// idealized Optimal upper bound.
type FullSwitch struct{ *base }

// NewFullSwitch builds the idealized policy.
func NewFullSwitch(d dsl.DSLAM, initialPort []int) (*FullSwitch, error) {
	b, err := newBase(d, initialPort)
	if err != nil {
		return nil, err
	}
	return &FullSwitch{b}, nil
}

// OnWake marks active and packs immediately.
func (f *FullSwitch) OnWake(line int) {
	f.setActive(line, true)
	f.Repack()
}

// OnSleep marks inactive and packs immediately.
func (f *FullSwitch) OnSleep(line int) {
	f.setActive(line, false)
	f.Repack()
}

// Repack moves every active line onto the lowest-numbered ports, occupying
// exactly ceil(active/portsPerCard) cards. Active lines already inside the
// target range stay put; only the rest move, displacing inactive lines.
func (f *FullSwitch) Repack() {
	var movers []int
	n := f.activeN
	taken := make([]bool, n)
	for line := range f.portOf {
		if !f.active[line] {
			continue
		}
		if p := f.portOf[line]; p < n {
			taken[p] = true
		} else {
			movers = append(movers, line)
		}
	}
	next := 0
	for _, line := range movers {
		for taken[next] {
			next++
		}
		f.move(line, next)
		taken[next] = true
	}
}

// RandomInitialPorts is a convenience wrapper over dsl.RandomAssignment for
// wiring n lines to a DSLAM.
func RandomInitialPorts(d dsl.DSLAM, n int, seed int64) ([]int, error) {
	return dsl.RandomAssignment(d, n, seed)
}

// SimulateSleepProbability estimates, by Monte Carlo, the probability that
// each card of a k-card group sleeps when every line is independently
// active with probability p and the k-switches pack ideally (the setting of
// Fig 5): m switches of size k, card ℓ sleeps iff every switch has at least
// ℓ+1... — in the paper's 1-based terms, card l sleeps iff at least l of
// the k lines of every switch are inactive.
func SimulateSleepProbability(k, m int, p float64, trials int, r *rand.Rand) []float64 {
	sleeps := make([]int, k)
	for trial := 0; trial < trials; trial++ {
		// minInactive = min over switches of inactive-line count.
		minInactive := k
		for s := 0; s < m; s++ {
			inactive := 0
			for i := 0; i < k; i++ {
				if r.Float64() >= p {
					inactive++
				}
			}
			if inactive < minInactive {
				minInactive = inactive
			}
		}
		// Cards 1..minInactive sleep (1-based l).
		for l := 1; l <= minInactive; l++ {
			sleeps[l-1]++
		}
	}
	out := make([]float64, k)
	for i := range out {
		out[i] = float64(sleeps[i]) / float64(trials)
	}
	return out
}
