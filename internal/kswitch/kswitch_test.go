package kswitch

import (
	"math"
	"testing"
	"testing/quick"

	"insomnia/internal/analytic"
	"insomnia/internal/dsl"
	"insomnia/internal/stats"
)

func seqPorts(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

func TestFixedPolicy(t *testing.T) {
	d := dsl.EvalDSLAM
	f, err := NewFixed(d, seqPorts(48))
	if err != nil {
		t.Fatal(err)
	}
	f.OnWake(0)
	f.OnWake(13) // card 1
	if f.PortOf(0) != 0 || f.PortOf(13) != 13 {
		t.Error("fixed policy moved a line")
	}
	cards := f.CardsAwake()
	if !cards[0] || !cards[1] || cards[2] || cards[3] {
		t.Errorf("cards awake = %v", cards)
	}
	if AwakeCount(cards) != 2 {
		t.Errorf("awake count = %d", AwakeCount(cards))
	}
	f.OnSleep(0)
	if AwakeCount(f.CardsAwake()) != 1 {
		t.Error("sleep not registered")
	}
	if f.ActiveLines() != 1 {
		t.Errorf("active lines = %d", f.ActiveLines())
	}
	f.Repack() // no-op
	if f.PortOf(13) != 13 {
		t.Error("repack moved a line under Fixed")
	}
}

func TestNewBaseRejectsBadWiring(t *testing.T) {
	d := dsl.EvalDSLAM
	if _, err := NewFixed(d, []int{0, 0}); err == nil {
		t.Error("duplicate port accepted")
	}
	if _, err := NewFixed(d, []int{99}); err == nil {
		t.Error("out-of-range port accepted")
	}
	if _, err := NewFixed(dsl.DSLAM{Cards: 0, PortsPerCard: 3}, nil); err == nil {
		t.Error("invalid DSLAM accepted")
	}
}

func TestKSwitchPacksActiveLines(t *testing.T) {
	// 4 cards of 12, one group of k=4: 12 4-switches — the §5.1 scenario.
	d := dsl.EvalDSLAM
	s, err := NewKSwitch(d, 4, seqPorts(48))
	if err != nil {
		t.Fatal(err)
	}
	if s.K() != 4 {
		t.Fatalf("K = %d", s.K())
	}
	// Wake 12 lines on 12 distinct switches (slots 0..11 of card 0).
	for line := 0; line < 12; line++ {
		s.OnWake(line)
	}
	// All 12 should pack onto one card.
	if got := AwakeCount(s.CardsAwake()); got != 1 {
		t.Fatalf("awake cards = %d, want 1", got)
	}
	// Packing direction: the highest-numbered card of the group.
	for line := 0; line < 12; line++ {
		if c := d.CardOf(s.PortOf(line)); c != 3 {
			t.Fatalf("line %d on card %d, want 3", line, c)
		}
	}
	// Wake 12 more on the same switches: they need a second card.
	for line := 12; line < 24; line++ {
		s.OnWake(line)
	}
	if got := AwakeCount(s.CardsAwake()); got != 2 {
		t.Fatalf("awake cards = %d, want 2", got)
	}
}

func TestKSwitchOnlyRemapsAtWake(t *testing.T) {
	d := dsl.EvalDSLAM
	s, err := NewKSwitch(d, 4, seqPorts(48))
	if err != nil {
		t.Fatal(err)
	}
	s.OnWake(0)
	p := s.PortOf(0)
	s.OnWake(12) // same switch (slot 0), packs next to it
	s.OnSleep(0)
	if s.PortOf(0) != p {
		t.Error("OnSleep moved a line")
	}
	s.Repack()
	if s.PortOf(0) != p {
		t.Error("Repack moved a line under KSwitch")
	}
}

func TestKSwitchNeverDisplacesActive(t *testing.T) {
	d := dsl.DSLAM{Cards: 2, PortsPerCard: 1} // one 2-switch, two lines
	s, err := NewKSwitch(d, 2, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	s.OnWake(0) // moves to card 1 (port 1), displacing sleeping line 1 to port 0
	if s.PortOf(0) != 1 || s.PortOf(1) != 0 {
		t.Fatalf("ports: line0=%d line1=%d", s.PortOf(0), s.PortOf(1))
	}
	s.OnWake(1) // must stay at port 0; port 1 is active
	if s.PortOf(1) != 0 {
		t.Fatalf("active line displaced: line1 at %d", s.PortOf(1))
	}
	if AwakeCount(s.CardsAwake()) != 2 {
		t.Error("both cards should be awake")
	}
}

func TestKSwitchGroupValidation(t *testing.T) {
	if _, err := NewKSwitch(dsl.DSLAM{Cards: 4, PortsPerCard: 12}, 3, seqPorts(48)); err == nil {
		t.Error("4 cards not divisible by 3; expected error")
	}
	if _, err := NewKSwitch(dsl.EvalDSLAM, 1, seqPorts(48)); err == nil {
		t.Error("k=1 accepted")
	}
}

func TestKSwitchMultipleGroups(t *testing.T) {
	// 8 cards in 2 groups of 4: lines cannot cross groups.
	d := dsl.DSLAM{Cards: 8, PortsPerCard: 4}
	s, err := NewKSwitch(d, 4, seqPorts(32))
	if err != nil {
		t.Fatal(err)
	}
	// Line 0 is on card 0 (group 0); after wake it must stay within cards 0-3.
	s.OnWake(0)
	if c := d.CardOf(s.PortOf(0)); c > 3 {
		t.Errorf("line 0 escaped its group: card %d", c)
	}
	// Line 31 is on card 7 (group 1): stays within cards 4-7.
	s.OnWake(31)
	if c := d.CardOf(s.PortOf(31)); c < 4 {
		t.Errorf("line 31 escaped its group: card %d", c)
	}
}

func TestFullSwitchPacksMinimally(t *testing.T) {
	d := dsl.EvalDSLAM
	f, err := NewFullSwitch(d, seqPorts(48))
	if err != nil {
		t.Fatal(err)
	}
	// Wake 13 scattered lines: ceil(13/12) = 2 cards.
	for _, line := range []int{0, 3, 7, 13, 18, 22, 25, 29, 33, 37, 41, 45, 47} {
		f.OnWake(line)
	}
	if got := AwakeCount(f.CardsAwake()); got != 2 {
		t.Fatalf("awake cards = %d, want 2", got)
	}
	// Sleep one: 12 active -> 1 card.
	f.OnSleep(47)
	if got := AwakeCount(f.CardsAwake()); got != 1 {
		t.Fatalf("awake cards = %d, want 1", got)
	}
}

// Property: under any wake/sleep sequence, every policy keeps the
// line<->port mapping a bijection and awake cards exactly match cards with
// active lines; KSwitch keeps lines within their switch's slot.
func TestPolicyInvariantsProperty(t *testing.T) {
	d := dsl.EvalDSLAM
	initial := seqPorts(48)
	f := func(ops []uint16) bool {
		fixed, _ := NewFixed(d, initial)
		ks, _ := NewKSwitch(d, 4, initial)
		full, _ := NewFullSwitch(d, initial)
		for _, op := range ops {
			line := int(op) % 48
			wake := op&0x8000 == 0
			for _, pol := range []Policy{fixed, ks, full} {
				if wake {
					pol.OnWake(line)
				} else {
					pol.OnSleep(line)
				}
			}
		}
		for _, pol := range []Policy{fixed, ks, full} {
			seen := map[int]bool{}
			for line := 0; line < 48; line++ {
				p := pol.PortOf(line)
				if p < 0 || p >= 48 || seen[p] {
					return false
				}
				seen[p] = true
			}
		}
		// KSwitch slot preservation: a line wired to slot s stays at slot s.
		for line := 0; line < 48; line++ {
			if d.SlotOf(ks.PortOf(line)) != d.SlotOf(initial[line]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Monte Carlo packing matches Eq (2) (Fig 5's middle/right panels).
func TestSimulationMatchesEq2(t *testing.T) {
	r := stats.NewRNG(5, 0)
	for _, p := range []float64{0.25, 0.5} {
		for _, k := range []int{2, 4, 8} {
			got := SimulateSleepProbability(k, 24, p, 20000, r)
			for l := 1; l <= k; l++ {
				want, err := analytic.CardSleepProbability(l, k, 24, p)
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(got[l-1]-want) > 0.02 {
					t.Errorf("k=%d p=%v l=%d: sim %.4f vs Eq2 %.4f", k, p, l, got[l-1], want)
				}
			}
		}
	}
}

// The KSwitch policy converges to the ideal packing when lines wake one at
// a time from all-asleep (no stale placements) — it must match the
// simulated ideal for that arrival pattern.
func TestKSwitchMatchesIdealPackingFreshWakes(t *testing.T) {
	d := dsl.DSLAM{Cards: 4, PortsPerCard: 12}
	r := stats.NewRNG(11, 0)
	for trial := 0; trial < 200; trial++ {
		s, err := NewKSwitch(d, 4, seqPorts(48))
		if err != nil {
			t.Fatal(err)
		}
		// Wake a random subset in random order.
		perm := r.Perm(48)
		n := r.Intn(49)
		// Count per-switch actives to compute the ideal card count.
		perSwitch := make([]int, 12)
		for _, line := range perm[:n] {
			s.OnWake(line)
			perSwitch[d.SlotOf(seqPorts(48)[line])]++
		}
		maxPerSwitch := 0
		for _, c := range perSwitch {
			if c > maxPerSwitch {
				maxPerSwitch = c
			}
		}
		if got := AwakeCount(s.CardsAwake()); got != maxPerSwitch {
			t.Fatalf("trial %d: awake cards %d, ideal %d", trial, got, maxPerSwitch)
		}
	}
}
