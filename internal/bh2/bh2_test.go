package bh2

import (
	"testing"

	"insomnia/internal/stats"
)

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{Low: 0.5, High: 0.1, PeriodSec: 1, EstWindow: 1},
		{Low: -0.1, High: 0.5, PeriodSec: 1, EstWindow: 1},
		{Low: 0.1, High: 1.5, PeriodSec: 1, EstWindow: 1},
		{Low: 0.1, High: 0.5, Backup: -1, PeriodSec: 1, EstWindow: 1},
		{Low: 0.1, High: 0.5, PeriodSec: 0, EstWindow: 1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted: %+v", i, p)
		}
	}
}

func TestActionString(t *testing.T) {
	if Stay.String() != "stay" || Move.String() != "move" || ReturnHome.String() != "return-home" {
		t.Error("action strings")
	}
	if Action(9).String() != "Action(9)" {
		t.Error("unknown action string")
	}
}

func p0() Params {
	p := DefaultParams()
	p.Backup = 0 // most tests use no backup for clarity
	return p
}

func TestHomeBusyStays(t *testing.T) {
	r := stats.NewRNG(1, 0)
	views := []GatewayView{
		{ID: 0, Load: 0.3, Awake: true}, // home, above low
		{ID: 1, Load: 0.3, Awake: true},
	}
	d := Decide(r, p0(), 0, 0, views)
	if d.Action != Stay {
		t.Errorf("busy home: %v, want stay", d.Action)
	}
}

func TestHomeIdleMovesToCandidate(t *testing.T) {
	r := stats.NewRNG(2, 0)
	views := []GatewayView{
		{ID: 0, Load: 0.02, Awake: true}, // home, below low
		{ID: 1, Load: 0.30, Awake: true}, // candidate
	}
	d := Decide(r, p0(), 0, 0, views)
	if d.Action != Move || d.Target != 1 {
		t.Errorf("got %+v, want move to 1", d)
	}
}

func TestHomeIdleNoCandidatesStays(t *testing.T) {
	r := stats.NewRNG(3, 0)
	views := []GatewayView{
		{ID: 0, Load: 0.02, Awake: true},
		{ID: 1, Load: 0.05, Awake: true},  // below low: about to sleep, not a candidate
		{ID: 2, Load: 0.70, Awake: true},  // above high: saturated
		{ID: 3, Load: 0.30, Awake: false}, // asleep
	}
	d := Decide(r, p0(), 0, 0, views)
	if d.Action != Stay {
		t.Errorf("got %v, want stay (no candidates)", d.Action)
	}
}

func TestBackupRequirementBlocksMove(t *testing.T) {
	r := stats.NewRNG(4, 0)
	p := DefaultParams() // backup = 1
	views := []GatewayView{
		{ID: 0, Load: 0.02, Awake: true},
		{ID: 1, Load: 0.30, Awake: true}, // only one candidate
	}
	d := Decide(r, p, 0, 0, views)
	if d.Action != Stay {
		t.Errorf("got %v, want stay (backup unmet)", d.Action)
	}
	// Two candidates satisfy backup=1.
	views = append(views, GatewayView{ID: 2, Load: 0.2, Awake: true})
	d = Decide(r, p, 0, 0, views)
	if d.Action != Move {
		t.Errorf("got %v, want move with 2 candidates", d.Action)
	}
}

func TestRemoteSaturatedReturnsHome(t *testing.T) {
	r := stats.NewRNG(5, 0)
	views := []GatewayView{
		{ID: 1, Load: 0.8, Awake: true}, // current remote, above high
		{ID: 2, Load: 0.3, Awake: true},
	}
	d := Decide(r, p0(), 0, 1, views)
	if d.Action != ReturnHome {
		t.Errorf("got %v, want return-home", d.Action)
	}
}

func TestRemoteHealthyStays(t *testing.T) {
	r := stats.NewRNG(6, 0)
	views := []GatewayView{
		{ID: 1, Load: 0.3, Awake: true},
		{ID: 2, Load: 0.4, Awake: true},
	}
	d := Decide(r, p0(), 0, 1, views)
	if d.Action != Stay {
		t.Errorf("got %v, want stay", d.Action)
	}
}

func TestRemoteIdleMovesToOtherCandidate(t *testing.T) {
	r := stats.NewRNG(7, 0)
	views := []GatewayView{
		{ID: 1, Load: 0.02, Awake: true}, // current remote about to sleep
		{ID: 2, Load: 0.30, Awake: true},
	}
	d := Decide(r, p0(), 0, 1, views)
	if d.Action != Move || d.Target != 2 {
		t.Errorf("got %+v, want move to 2", d)
	}
}

func TestRemoteIdleNoCandidatesReturnsHome(t *testing.T) {
	r := stats.NewRNG(8, 0)
	views := []GatewayView{
		{ID: 1, Load: 0.02, Awake: true},
	}
	d := Decide(r, p0(), 0, 1, views)
	if d.Action != ReturnHome {
		t.Errorf("got %v, want return-home", d.Action)
	}
}

func TestRemoteVanishedHitchesBeforeWakingHome(t *testing.T) {
	r := stats.NewRNG(9, 0)
	// Current gateway is gone but another candidate beacons: scan and
	// hitch instead of waking home.
	views := []GatewayView{
		{ID: 2, Load: 0.3, Awake: true},
	}
	d := Decide(r, p0(), 0, 1, views)
	if d.Action != Move || d.Target != 2 {
		t.Errorf("got %+v, want move to 2", d)
	}
	// No candidates at all: return home.
	d = Decide(r, p0(), 0, 1, nil)
	if d.Action != ReturnHome || d.Reason != RemoteVanished {
		t.Errorf("got %+v, want return-home (remote-vanished)", d)
	}
}

func TestHomeNeverOwnCandidate(t *testing.T) {
	// The home gateway must not be chosen as a "remote" candidate even when
	// its load is in the candidate band.
	r := stats.NewRNG(10, 0)
	views := []GatewayView{
		{ID: 0, Load: 0.2, Awake: true}, // home in band — but user is AT a remote
		{ID: 1, Load: 0.05, Awake: true},
	}
	for i := 0; i < 50; i++ {
		d := Decide(r, p0(), 0, 1, views)
		if d.Action == Move && d.Target == 0 {
			t.Fatal("home chosen as hitch-hiking candidate")
		}
	}
}

func TestLoadProportionalSelection(t *testing.T) {
	r := stats.NewRNG(11, 0)
	views := []GatewayView{
		{ID: 0, Load: 0.02, Awake: true},
		{ID: 1, Load: 0.45, Awake: true},
		{ID: 2, Load: 0.15, Awake: true},
	}
	counts := map[int]int{}
	for i := 0; i < 30000; i++ {
		d := Decide(r, p0(), 0, 0, views)
		if d.Action != Move {
			t.Fatal("expected move")
		}
		counts[d.Target]++
	}
	ratio := float64(counts[1]) / float64(counts[2])
	if ratio < 2.6 || ratio > 3.4 {
		t.Errorf("selection ratio = %v, want ~3 (load-proportional)", ratio)
	}
}

func TestSleepingGatewaysInvisible(t *testing.T) {
	r := stats.NewRNG(12, 0)
	views := []GatewayView{
		{ID: 0, Load: 0.02, Awake: true},
		{ID: 1, Load: 0.30, Awake: false},
		{ID: 2, Load: 0.30, Awake: false},
		{ID: 3, Load: 0.30, Awake: false},
	}
	d := Decide(r, p0(), 0, 0, views)
	if d.Action != Stay {
		t.Errorf("moved to a sleeping gateway: %+v", d)
	}
}

func TestThresholdBoundariesExclusive(t *testing.T) {
	r := stats.NewRNG(13, 0)
	p := p0()
	// Loads exactly at the thresholds are not candidates.
	views := []GatewayView{
		{ID: 0, Load: 0.02, Awake: true},
		{ID: 1, Load: p.Low, Awake: true},
		{ID: 2, Load: p.High, Awake: true},
	}
	d := Decide(r, p, 0, 0, views)
	if d.Action != Stay {
		t.Errorf("boundary load treated as candidate: %+v", d)
	}
}

func TestActiveGatewayIsCandidateBelowLow(t *testing.T) {
	r := stats.NewRNG(15, 0)
	// A gateway carrying other riders' light traffic shows Active=true but
	// a tiny byte load; it must still attract hitch-hikers (it cannot be
	// about to sleep).
	views := []GatewayView{
		{ID: 0, Load: 0.02, Awake: true},                // home, idle
		{ID: 1, Load: 0.03, Awake: true, Active: true},  // small nucleus
		{ID: 2, Load: 0.01, Awake: true, Active: false}, // silent, sleep-bound
	}
	for i := 0; i < 50; i++ {
		d := Decide(r, p0(), 0, 0, views)
		if d.Action != Move {
			t.Fatalf("got %v, want move to the active gateway", d.Action)
		}
		if d.Target != 1 {
			t.Fatalf("moved to silent gateway %d", d.Target)
		}
	}
}

func TestSaturatedActiveGatewayNotCandidate(t *testing.T) {
	r := stats.NewRNG(16, 0)
	views := []GatewayView{
		{ID: 0, Load: 0.02, Awake: true},
		{ID: 1, Load: 0.9, Awake: true, Active: true}, // active but saturated
	}
	d := Decide(r, p0(), 0, 0, views)
	if d.Action != Stay {
		t.Errorf("got %+v, want stay (only candidate is saturated)", d)
	}
}

func TestRiderStaysOnActiveDrainingRemote(t *testing.T) {
	r := stats.NewRNG(17, 0)
	// Remote below low but still active (our own keepalives ride it) and no
	// alternates: stay rather than waking home.
	views := []GatewayView{
		{ID: 1, Load: 0.02, Awake: true, Active: true},
	}
	d := Decide(r, p0(), 0, 1, views)
	if d.Action != Stay {
		t.Errorf("got %+v, want stay on active remote", d)
	}
	// Same but the remote is silent: it will sleep, go home.
	views[0].Active = false
	d = Decide(r, p0(), 0, 1, views)
	if d.Action != ReturnHome || d.Reason != RemoteDraining {
		t.Errorf("got %+v, want return-home (remote-draining)", d)
	}
}

func TestReasonStrings(t *testing.T) {
	for _, r := range []Reason{HomeBusy, NoCandidates, Hitched, RemoteHealthy, RemoteSaturated, RemoteVanished, RemoteDraining} {
		if r.String() == "" || r.String()[0] == 'R' && r.String()[1] == 'e' && r.String() == "Reason(0)" {
			t.Errorf("bad reason string for %d", r)
		}
	}
	if Reason(99).String() != "Reason(99)" {
		t.Error("unknown reason string")
	}
}

func TestNextDecisionTimeJitter(t *testing.T) {
	r := stats.NewRNG(14, 0)
	p := DefaultParams()
	seen := map[bool]int{}
	for i := 0; i < 1000; i++ {
		next := NextDecisionTime(r, p, 100)
		if next < 100+p.PeriodSec || next >= 100+p.PeriodSec+p.JitterSec {
			t.Fatalf("next = %v outside [250, 280)", next)
		}
		seen[next > 100+p.PeriodSec+p.JitterSec/2]++
	}
	if seen[true] == 0 || seen[false] == 0 {
		t.Error("jitter not spread")
	}
}
