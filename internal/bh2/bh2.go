// Package bh2 implements Broadband Hitch-Hiking (§3), the paper's primary
// contribution: a distributed heuristic that runs on each user terminal and
// aggregates light traffic onto few gateways so the rest can sleep.
//
// The decision rule (§3.1) is evaluated independently by every terminal on
// its own period (150 s with a random offset, §5.1) using passively
// estimated gateway loads (package wifi):
//
//	Connected to home: if home's load < low, find in-range remote gateways
//	with low < load < high (awake, not about to sleep, not saturated). If
//	there are more than `backup` of them, move to one chosen randomly with
//	probability proportional to its load.
//
//	Connected to a remote: if the remote's load < low, look for another
//	candidate the same way; with enough candidates move (load-proportional),
//	otherwise return home (waking it if needed). If the remote's load > high,
//	return home immediately.
//
// The randomness desynchronizes terminals; load-proportional choice herds
// hitch-hikers toward already-busy gateways, which is what empties the
// others. Decide is pure: all inputs are explicit, so the simulator, the
// live testbed and the unit tests share the exact same logic.
package bh2

import (
	"fmt"
	"math/rand"

	"insomnia/internal/stats"
)

// Params are the tunables of §5.1's sensitivity analysis.
type Params struct {
	Low        float64 // low load threshold (0.10)
	High       float64 // high load threshold (0.50)
	Backup     int     // minimum spare gateways for smooth hand-off (1)
	PeriodSec  float64 // decision period (150 s)
	JitterSec  float64 // random offset added per terminal per round
	EstWindow  float64 // load estimation window (60 s)
	WakeUpHome bool    // wake the home gateway when returning to it
}

// DefaultParams are the values the paper selected after sensitivity
// analysis (§5.1).
func DefaultParams() Params {
	return Params{
		Low: 0.10, High: 0.50, Backup: 1,
		PeriodSec: 150, JitterSec: 30, EstWindow: 60,
		WakeUpHome: true,
	}
}

// Validate rejects malformed parameter sets.
func (p Params) Validate() error {
	if !(p.Low >= 0 && p.Low < p.High && p.High <= 1) {
		return fmt.Errorf("bh2: need 0 <= low < high <= 1, got %v/%v", p.Low, p.High)
	}
	if p.Backup < 0 {
		return fmt.Errorf("bh2: negative backup %d", p.Backup)
	}
	if p.PeriodSec <= 0 || p.EstWindow <= 0 {
		return fmt.Errorf("bh2: non-positive period/window")
	}
	return nil
}

// GatewayView is what a terminal knows about one in-range gateway at
// decision time: everything here is passively observable (§3.2).
type GatewayView struct {
	ID    int
	Load  float64 // estimated backhaul utilization over EstWindow
	Awake bool    // beacons seen => awake (sleeping gateways send nothing)
	// Active reports whether the gateway transmitted any data frames during
	// the estimation window (non-zero SN delta). A gateway with recent
	// traffic cannot be "a candidate for going to sleep" — its clients'
	// continuous light traffic keeps resetting the SoI idle timer — even
	// when its byte load sits below the low threshold. This activity test
	// is how our implementation realizes §3.1's "not candidates for going
	// to sleep" (see the package comment).
	Active bool
}

// Action is the outcome of one decision.
type Action int

// Decision outcomes.
const (
	Stay       Action = iota // keep the current gateway
	Move                     // associate with Target
	ReturnHome               // go back to the home gateway, waking it if needed
)

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a {
	case Stay:
		return "stay"
	case Move:
		return "move"
	case ReturnHome:
		return "return-home"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// Reason explains a decision, mostly for diagnostics and the evaluation's
// oscillation analysis (§5.1 tuned thresholds to minimize wake-causing
// returns).
type Reason int

// Decision reasons.
const (
	HomeBusy        Reason = iota // home load >= low: stay and carry it
	NoCandidates                  // not enough candidates to move
	Hitched                       // moved to a remote gateway
	RemoteHealthy                 // remote in band: stay
	RemoteSaturated               // remote load > high: return home
	RemoteVanished                // remote asleep/unreachable: return home
	RemoteDraining                // remote below low, no alternates: return home
)

// String implements fmt.Stringer.
func (r Reason) String() string {
	switch r {
	case HomeBusy:
		return "home-busy"
	case NoCandidates:
		return "no-candidates"
	case Hitched:
		return "hitched"
	case RemoteHealthy:
		return "remote-healthy"
	case RemoteSaturated:
		return "remote-saturated"
	case RemoteVanished:
		return "remote-vanished"
	case RemoteDraining:
		return "remote-draining"
	default:
		return fmt.Sprintf("Reason(%d)", int(r))
	}
}

// Decision carries the action and, for Move, the chosen gateway.
type Decision struct {
	Action Action
	Target int // gateway ID, valid when Action == Move
	Reason Reason
}

// Decide runs one round of the §3.1 algorithm for a terminal.
//
// home is the terminal's home gateway ID, current its present association
// (current == home means "connected to its home gateway"), views the
// in-range gateways (must include current when it is awake; need not
// include sleeping gateways — they are invisible). The RNG drives the
// load-proportional candidate choice.
func Decide(r *rand.Rand, p Params, home, current int, views []GatewayView) Decision {
	cur, curSeen := find(views, current)

	if current == home {
		// Home case: only consider hitch-hiking when home is so lightly
		// loaded that it is a candidate for sleeping.
		if curSeen && cur.Load >= p.Low {
			return Decision{Action: Stay, Reason: HomeBusy}
		}
		cands := candidates(views, p, home, current)
		if len(cands) > p.Backup {
			return Decision{Action: Move, Target: pick(r, cands), Reason: Hitched}
		}
		return Decision{Action: Stay, Reason: NoCandidates}
	}

	// Remote case.
	if !curSeen {
		// The remote gateway vanished (slept or out of range). A terminal
		// scans before it resorts to waking its home gateway: if enough
		// candidates beacon in range it hitches onto one instead.
		cands := candidates(views, p, home, current)
		if len(cands) >= p.Backup+1 {
			return Decision{Action: Move, Target: pick(r, cands), Reason: Hitched}
		}
		return Decision{Action: ReturnHome, Reason: RemoteVanished}
	}
	if cur.Load > p.High {
		// Saturated remote: protect its owner's QoS, leave.
		return Decision{Action: ReturnHome, Reason: RemoteSaturated}
	}
	if cur.Load >= p.Low {
		return Decision{Action: Stay, Reason: RemoteHealthy}
	}
	// Remote load below low: consolidate onto a busier ride if one exists.
	cands := candidates(views, p, home, current)
	if len(cands) >= p.Backup+1 {
		return Decision{Action: Move, Target: pick(r, cands), Reason: Hitched}
	}
	if cur.Active {
		// The remote still carries traffic (ours included), so it is not
		// sleep-bound; bouncing home would wake a gateway for nothing.
		return Decision{Action: Stay, Reason: RemoteHealthy}
	}
	return Decision{Action: ReturnHome, Reason: RemoteDraining}
}

// candidates filters views to the §3.1 candidate set: awake, not the
// current association, not the home gateway, not saturated (load < high),
// and not about to sleep. "About to sleep" is decided by the activity test:
// a gateway whose load exceeds the low threshold OR that transmitted
// anything during the estimation window will not hit its idle timeout; one
// that has been completely silent will.
func candidates(views []GatewayView, p Params, home, current int) []GatewayView {
	var out []GatewayView
	for _, v := range views {
		if !v.Awake || v.ID == current || v.ID == home {
			continue
		}
		if v.Load >= p.High {
			continue
		}
		if v.Load > p.Low || v.Active {
			out = append(out, v)
		}
	}
	return out
}

// pick selects a candidate with probability proportional to its load. A
// small floor keeps active-but-nearly-idle gateways selectable; the
// proportionality is what herds hitch-hikers onto already-busy gateways.
func pick(r *rand.Rand, cands []GatewayView) int {
	w := make([]float64, len(cands))
	for i, c := range cands {
		w[i] = c.Load + 0.01
	}
	return cands[stats.WeightedChoice(r, w)].ID
}

func find(views []GatewayView, id int) (GatewayView, bool) {
	for _, v := range views {
		if v.ID == id {
			return v, v.Awake
		}
	}
	return GatewayView{}, false
}

// NextDecisionTime schedules the terminal's next run: now + period + a
// uniform jitter in [0, JitterSec) — the "random offset to prevent
// synchronizations" of §5.1.
func NextDecisionTime(r *rand.Rand, p Params, now float64) float64 {
	return now + p.PeriodSec + r.Float64()*p.JitterSec
}
