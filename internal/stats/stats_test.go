package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWelfordBasics(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d, want 8", w.N())
	}
	if got := w.Mean(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Population variance is 4; unbiased sample variance is 32/7.
	if got := w.Var(); math.Abs(got-32.0/7.0) > 1e-12 {
		t.Errorf("Var = %v, want %v", got, 32.0/7.0)
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 || w.Std() != 0 {
		t.Errorf("empty accumulator should be all zero")
	}
	w.Add(42)
	if w.Mean() != 42 || w.Var() != 0 {
		t.Errorf("single sample: mean=%v var=%v", w.Mean(), w.Var())
	}
}

func TestWelfordMergeMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	check := func(n1, n2 int) {
		var a, b, all Welford
		for i := 0; i < n1; i++ {
			x := r.NormFloat64()
			a.Add(x)
			all.Add(x)
		}
		for i := 0; i < n2; i++ {
			x := r.NormFloat64()*3 + 10
			b.Add(x)
			all.Add(x)
		}
		a.Merge(b)
		if math.Abs(a.Mean()-all.Mean()) > 1e-9 || math.Abs(a.Var()-all.Var()) > 1e-9 {
			t.Errorf("merge(%d,%d): mean %v vs %v, var %v vs %v", n1, n2, a.Mean(), all.Mean(), a.Var(), all.Var())
		}
	}
	check(10, 20)
	check(0, 5)
	check(5, 0)
	check(1, 1)
}

func TestHistogramClampsAndTotals(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	h.Add(-5)   // clamps into bin 0
	h.Add(0.5)  // bin 0
	h.Add(9.99) // bin 9
	h.Add(42)   // clamps into bin 9
	if h.Total() != 4 {
		t.Fatalf("Total = %v, want 4", h.Total())
	}
	if h.Counts[0] != 2 || h.Counts[9] != 2 {
		t.Errorf("counts = %v", h.Counts)
	}
	f := h.Fractions()
	if math.Abs(f[0]-0.5) > 1e-12 || math.Abs(f[9]-0.5) > 1e-12 {
		t.Errorf("fractions = %v", f)
	}
}

func TestHistogramWeighted(t *testing.T) {
	h := NewHistogram(0, 60, 60)
	h.AddWeighted(30.5, 2.5)
	h.AddWeighted(30.9, 1.5)
	if h.Counts[30] != 4 {
		t.Errorf("bin 30 = %v, want 4", h.Counts[30])
	}
	if h.BinLabel(30) != "30-31" {
		t.Errorf("label = %q", h.BinLabel(30))
	}
}

func TestHistogramPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero bins")
		}
	}()
	NewHistogram(0, 1, 0)
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 3, 4, 5})
	cases := []struct{ x, want float64 }{
		{0, 0}, {1, 0.2}, {2.5, 0.4}, {5, 1}, {99, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if q := e.Quantile(0.5); q != 3 {
		t.Errorf("median = %v, want 3", q)
	}
	if q := e.Quantile(0); q != 1 {
		t.Errorf("q0 = %v, want 1", q)
	}
	if q := e.Quantile(1); q != 5 {
		t.Errorf("q1 = %v, want 5", q)
	}
}

func TestECDFEmpty(t *testing.T) {
	e := NewECDF(nil)
	if e.At(1) != 0 {
		t.Errorf("empty At = %v", e.At(1))
	}
	if !math.IsNaN(e.Quantile(0.5)) {
		t.Errorf("empty quantile should be NaN")
	}
}

func TestECDFDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	NewECDF(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("input mutated: %v", in)
	}
}

// Property: ECDF is monotone non-decreasing and bounded in [0,1].
func TestECDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64, probe []float64) bool {
		sample := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				sample = append(sample, x)
			}
		}
		e := NewECDF(sample)
		prevX, prevY := math.Inf(-1), 0.0
		pts := make([]float64, 0, len(probe))
		for _, x := range probe {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				pts = append(pts, x)
			}
		}
		ec := NewECDF(pts) // reuse sorting
		for _, x := range ec.Values() {
			y := e.At(x)
			if y < 0 || y > 1 {
				return false
			}
			if x >= prevX && y < prevY {
				return false
			}
			prevX, prevY = x, y
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTimeSeries(t *testing.T) {
	ts := NewTimeSeries(0, 24, 24) // a day in hours
	ts.Add(0.5, 10)
	ts.Add(0.9, 20)
	ts.Add(23.5, 5)
	ts.Add(-1, 999) // dropped
	ts.Add(24, 999) // dropped
	if got := ts.MeanAt(0); got != 15 {
		t.Errorf("bin 0 mean = %v, want 15", got)
	}
	if got := ts.MeanAt(23); got != 5 {
		t.Errorf("bin 23 mean = %v, want 5", got)
	}
	if got := ts.MeanAt(12); got != 0 {
		t.Errorf("empty bin mean = %v, want 0", got)
	}
	if bt := ts.BinTime(0); bt != 0.5 {
		t.Errorf("BinTime(0) = %v, want 0.5", bt)
	}
}

func TestTimeSeriesMerge(t *testing.T) {
	a := NewTimeSeries(0, 10, 10)
	b := NewTimeSeries(0, 10, 10)
	a.Add(1.5, 1)
	b.Add(1.5, 3)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if got := a.MeanAt(1); got != 2 {
		t.Errorf("merged mean = %v, want 2", got)
	}
	c := NewTimeSeries(0, 5, 10)
	if err := a.Merge(c); err == nil {
		t.Error("expected error for incompatible merge")
	}
}

func TestMeanMedianQuantile(t *testing.T) {
	s := []float64{5, 1, 4, 2, 3}
	if m := Mean(s); m != 3 {
		t.Errorf("Mean = %v", m)
	}
	if m := Median(s); m != 3 {
		t.Errorf("Median = %v", m)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
}

func TestNewRNGStreamsIndependent(t *testing.T) {
	a := NewRNG(7, 1)
	b := NewRNG(7, 2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("streams collided %d times", same)
	}
	// Determinism: same seed/stream gives the same sequence.
	c, d := NewRNG(7, 1), NewRNG(7, 1)
	for i := 0; i < 10; i++ {
		if c.Int63() != d.Int63() {
			t.Fatal("same stream not deterministic")
		}
	}
}

func TestParetoBounds(t *testing.T) {
	r := NewRNG(1, 0)
	for i := 0; i < 10000; i++ {
		x := Pareto(r, 1.2, 10, 1e6)
		if x < 10 || x > 1e6 {
			t.Fatalf("Pareto out of bounds: %v", x)
		}
	}
}

func TestParetoHeavyTail(t *testing.T) {
	r := NewRNG(2, 0)
	var w Welford
	over := 0
	const n = 200000
	for i := 0; i < n; i++ {
		x := Pareto(r, 1.2, 1, 1e9)
		w.Add(x)
		if x > 100 {
			over++
		}
	}
	// For alpha=1.2, P(X>100) ~ 100^-1.2 ~ 0.0040 (slightly less with the
	// upper bound). Check it's in a loose band.
	frac := float64(over) / n
	if frac < 0.001 || frac > 0.01 {
		t.Errorf("tail fraction = %v, want ~0.004", frac)
	}
}

func TestWeightedChoice(t *testing.T) {
	r := NewRNG(3, 0)
	if WeightedChoice(r, nil) != -1 {
		t.Error("empty weights should return -1")
	}
	counts := make([]int, 3)
	w := []float64{1, 0, 3}
	for i := 0; i < 40000; i++ {
		counts[WeightedChoice(r, w)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight index chosen %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Errorf("ratio = %v, want ~3", ratio)
	}
}

func TestWeightedChoiceAllZero(t *testing.T) {
	r := NewRNG(4, 0)
	counts := make([]int, 4)
	for i := 0; i < 8000; i++ {
		counts[WeightedChoice(r, []float64{0, 0, 0, 0})]++
	}
	for i, c := range counts {
		if c < 1500 || c > 2500 {
			t.Errorf("uniform fallback bin %d = %d, want ~2000", i, c)
		}
	}
}

// Property: WeightedChoice never returns an index with non-positive weight
// when at least one weight is positive, and always returns a valid index.
func TestWeightedChoiceProperty(t *testing.T) {
	r := NewRNG(5, 0)
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		w := make([]float64, len(raw))
		anyPos := false
		for i, b := range raw {
			w[i] = float64(b)
			if b > 0 {
				anyPos = true
			}
		}
		i := WeightedChoice(r, w)
		if i < 0 || i >= len(w) {
			return false
		}
		if anyPos && w[i] == 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(6, 0)
	var w Welford
	for i := 0; i < 100000; i++ {
		w.Add(Exp(r, 5))
	}
	if math.Abs(w.Mean()-5) > 0.1 {
		t.Errorf("Exp mean = %v, want ~5", w.Mean())
	}
}

func TestLognormalMedian(t *testing.T) {
	r := NewRNG(7, 0)
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = Lognormal(r, 2, 0.5)
	}
	med := Median(xs)
	want := math.Exp(2)
	if math.Abs(med-want)/want > 0.05 {
		t.Errorf("lognormal median = %v, want ~%v", med, want)
	}
}
