// Package stats provides the small statistical toolkit used throughout the
// insomnia reproduction: streaming moments, histograms, empirical CDFs,
// quantiles and time-binned series. Everything is deterministic and
// allocation-conscious; no third-party dependencies.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Welford accumulates mean and variance in a single streaming pass using
// Welford's numerically stable recurrence.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds x into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of samples seen.
func (w *Welford) N() int { return w.n }

// Mean returns the sample mean (0 for an empty accumulator).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the unbiased sample variance (0 when fewer than two samples).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the unbiased sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Merge combines another accumulator into this one (parallel Welford).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	mean := w.mean + d*float64(o.n)/float64(n)
	m2 := w.m2 + o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.n, w.mean, w.m2 = n, mean, m2
}

// Histogram is a fixed-width bin histogram over [Min, Max). Values outside
// the range are clamped into the first/last bin so totals are preserved,
// which matches how the paper's Fig 4 folds everything above 60 s into the
// ">60" bin.
type Histogram struct {
	Min, Max float64
	Counts   []float64 // weight per bin
	total    float64
}

// NewHistogram creates a histogram with bins equal-width bins over [min,max).
func NewHistogram(min, max float64, bins int) *Histogram {
	if bins <= 0 || max <= min {
		panic(fmt.Sprintf("stats: invalid histogram [%v,%v) bins=%d", min, max, bins))
	}
	return &Histogram{Min: min, Max: max, Counts: make([]float64, bins)}
}

// AddWeighted adds weight w at value x.
func (h *Histogram) AddWeighted(x, w float64) {
	i := int((x - h.Min) / (h.Max - h.Min) * float64(len(h.Counts)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i] += w
	h.total += w
}

// Add adds a unit-weight observation.
func (h *Histogram) Add(x float64) { h.AddWeighted(x, 1) }

// Total returns the total accumulated weight.
func (h *Histogram) Total() float64 { return h.total }

// Fractions returns per-bin weight divided by total weight. A zero histogram
// returns all zeros.
func (h *Histogram) Fractions() []float64 {
	f := make([]float64, len(h.Counts))
	if h.total == 0 {
		return f
	}
	for i, c := range h.Counts {
		f[i] = c / h.total
	}
	return f
}

// BinLabel formats the i-th bin as "lo-hi" using the given printf verb.
func (h *Histogram) BinLabel(i int) string {
	w := (h.Max - h.Min) / float64(len(h.Counts))
	return fmt.Sprintf("%g-%g", h.Min+float64(i)*w, h.Min+float64(i+1)*w)
}

// ECDF is an empirical cumulative distribution function over a sample.
type ECDF struct {
	sorted []float64
}

// NewECDF copies and sorts the sample. The input slice is not modified.
func NewECDF(sample []float64) *ECDF {
	s := append([]float64(nil), sample...)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// N returns the sample size.
func (e *ECDF) N() int { return len(e.sorted) }

// At returns P(X <= x).
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the q-th quantile (0<=q<=1) using nearest-rank.
func (e *ECDF) Quantile(q float64) float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return e.sorted[0]
	}
	if q >= 1 {
		return e.sorted[len(e.sorted)-1]
	}
	i := int(math.Ceil(q*float64(len(e.sorted)))) - 1
	if i < 0 {
		i = 0
	}
	return e.sorted[i]
}

// Values returns the sorted sample (shared slice; treat as read-only).
func (e *ECDF) Values() []float64 { return e.sorted }

// Quantile computes the q-th quantile of sample by nearest rank without
// building an ECDF. The input slice is not modified.
func Quantile(sample []float64, q float64) float64 {
	return NewECDF(sample).Quantile(q)
}

// Mean returns the arithmetic mean of the sample (NaN for empty).
func Mean(sample []float64) float64 {
	if len(sample) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range sample {
		s += x
	}
	return s / float64(len(sample))
}

// Median returns the 50th percentile by nearest rank.
func Median(sample []float64) float64 { return Quantile(sample, 0.5) }

// TimeSeries accumulates (t, value) observations into fixed-width time bins
// and reports per-bin means. It is the workhorse behind all the "X over the
// day" figures.
type TimeSeries struct {
	Start, End float64 // time range covered, seconds
	binWidth   float64
	sum        []float64
	n          []int
}

// NewTimeSeries bins [start,end) into nbins equal-width bins.
func NewTimeSeries(start, end float64, nbins int) *TimeSeries {
	if nbins <= 0 || end <= start {
		panic(fmt.Sprintf("stats: invalid time series [%v,%v) bins=%d", start, end, nbins))
	}
	return &TimeSeries{
		Start: start, End: end,
		binWidth: (end - start) / float64(nbins),
		sum:      make([]float64, nbins),
		n:        make([]int, nbins),
	}
}

// Add records value v at time t. Out-of-range samples are dropped.
func (ts *TimeSeries) Add(t, v float64) {
	i := int((t - ts.Start) / ts.binWidth)
	if i < 0 || i >= len(ts.sum) {
		return
	}
	ts.sum[i] += v
	ts.n[i]++
}

// Bins returns the number of bins.
func (ts *TimeSeries) Bins() int { return len(ts.sum) }

// BinTime returns the midpoint time of bin i.
func (ts *TimeSeries) BinTime(i int) float64 {
	return ts.Start + (float64(i)+0.5)*ts.binWidth
}

// MeanAt returns the mean of bin i (0 if empty).
func (ts *TimeSeries) MeanAt(i int) float64 {
	if ts.n[i] == 0 {
		return 0
	}
	return ts.sum[i] / float64(ts.n[i])
}

// Means returns the per-bin means.
func (ts *TimeSeries) Means() []float64 {
	out := make([]float64, len(ts.sum))
	for i := range out {
		out[i] = ts.MeanAt(i)
	}
	return out
}

// Merge adds another compatible series bin-wise.
func (ts *TimeSeries) Merge(o *TimeSeries) error {
	if o.Start != ts.Start || o.End != ts.End || len(o.sum) != len(ts.sum) {
		return fmt.Errorf("stats: incompatible time series merge")
	}
	for i := range ts.sum {
		ts.sum[i] += o.sum[i]
		ts.n[i] += o.n[i]
	}
	return nil
}
