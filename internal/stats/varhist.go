package stats

import (
	"fmt"
	"math"
	"sort"
)

// VarHistogram is a histogram with arbitrary (variable-width) bin edges.
// A value x falls in bin i when edges[i] <= x < edges[i+1]. The final edge
// may be +Inf (used for the ">60 s" bin of the paper's Fig 4). Values below
// the first edge are clamped into bin 0.
type VarHistogram struct {
	edges  []float64
	counts []float64
	sumX   []float64 // weighted sum of observed values per bin
	total  float64
}

// NewVarHistogram creates a histogram with the given strictly increasing
// edges (at least two).
func NewVarHistogram(edges []float64) *VarHistogram {
	if len(edges) < 2 {
		panic("stats: VarHistogram needs at least two edges")
	}
	for i := 1; i < len(edges); i++ {
		if !(edges[i] > edges[i-1]) {
			panic(fmt.Sprintf("stats: VarHistogram edges not increasing at %d", i))
		}
	}
	e := append([]float64(nil), edges...)
	return &VarHistogram{edges: e, counts: make([]float64, len(e)-1), sumX: make([]float64, len(e)-1)}
}

// Bins returns the number of bins.
func (h *VarHistogram) Bins() int { return len(h.counts) }

// AddWeighted adds weight w at value x.
func (h *VarHistogram) AddWeighted(x, w float64) {
	// sort.SearchFloat64s finds the first edge > x when we nudge x up;
	// simpler: find rightmost edge <= x.
	i := sort.SearchFloat64s(h.edges, x)
	if i < len(h.edges) && h.edges[i] == x {
		// x exactly on an edge belongs to the bin starting at that edge.
	} else {
		i--
	}
	if i < 0 {
		i = 0
	}
	if i >= len(h.counts) {
		i = len(h.counts) - 1
	}
	h.counts[i] += w
	h.sumX[i] += w * x
	h.total += w
}

// Add adds a unit-weight observation.
func (h *VarHistogram) Add(x float64) { h.AddWeighted(x, 1) }

// Total returns the accumulated weight.
func (h *VarHistogram) Total() float64 { return h.total }

// Count returns the weight in bin i.
func (h *VarHistogram) Count(i int) float64 { return h.counts[i] }

// MeanAt returns the weighted mean of the values that landed in bin i, or
// the bin midpoint when the bin is empty (2x the lower edge for an open
// last bin). Exact per-bin means matter for open-ended bins, where the
// midpoint is undefined.
func (h *VarHistogram) MeanAt(i int) float64 {
	if h.counts[i] > 0 {
		return h.sumX[i] / h.counts[i]
	}
	lo, hi := h.edges[i], h.edges[i+1]
	if math.IsInf(hi, 1) {
		return 2 * lo
	}
	return (lo + hi) / 2
}

// Fractions returns per-bin weight over total (zeros when empty).
func (h *VarHistogram) Fractions() []float64 {
	f := make([]float64, len(h.counts))
	if h.total == 0 {
		return f
	}
	for i, c := range h.counts {
		f[i] = c / h.total
	}
	return f
}

// Label formats bin i as "lo-hi", or ">lo" when hi is +Inf.
func (h *VarHistogram) Label(i int) string {
	lo, hi := h.edges[i], h.edges[i+1]
	if math.IsInf(hi, 1) {
		return fmt.Sprintf(">%g", lo)
	}
	return fmt.Sprintf("%g-%g", lo, hi)
}

// FractionBelow returns the fraction of total weight in bins whose upper
// edge is <= x.
func (h *VarHistogram) FractionBelow(x float64) float64 {
	if h.total == 0 {
		return 0
	}
	var s float64
	for i := range h.counts {
		if h.edges[i+1] <= x {
			s += h.counts[i]
		}
	}
	return s / h.total
}

// Merge adds a compatible histogram bin-wise.
func (h *VarHistogram) Merge(o *VarHistogram) error {
	if len(o.edges) != len(h.edges) {
		return fmt.Errorf("stats: incompatible VarHistogram merge")
	}
	for i, e := range h.edges {
		if o.edges[i] != e {
			return fmt.Errorf("stats: incompatible VarHistogram edges")
		}
	}
	for i := range h.counts {
		h.counts[i] += o.counts[i]
		h.sumX[i] += o.sumX[i]
	}
	h.total += o.total
	return nil
}
