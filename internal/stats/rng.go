package stats

import (
	"math"
	"math/rand"
)

// NewRNG returns a deterministic PRNG for the given experiment seed and
// stream label. Distinct labels give independent streams, so a simulation
// can hand sub-seeds to its components without coupling their draws.
func NewRNG(seed int64, stream uint64) *rand.Rand {
	return rand.New(rand.NewSource(seed ^ int64(splitmix64(stream))))
}

// Reseed re-seeds r in place to the exact state a fresh
// NewRNG(seed, stream) would start from, without allocating a new
// generator. Hot loops that previously built one RNG per element (the
// trace generator builds one per client) can instead reuse a single
// generator: the draw sequences are bit-identical either way.
func Reseed(r *rand.Rand, seed int64, stream uint64) {
	r.Seed(seed ^ int64(splitmix64(stream)))
}

// splitmix64 is the standard 64-bit mixing function; it decorrelates the
// stream label from the base seed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Pareto draws from a bounded Pareto distribution with shape alpha and
// range [lo, hi]. Used for heavy-tailed flow sizes.
func Pareto(r *rand.Rand, alpha, lo, hi float64) float64 {
	u := r.Float64()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
}

// Lognormal draws from a lognormal distribution with the given parameters of
// the underlying normal.
func Lognormal(r *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Exp draws an exponential with the given mean.
func Exp(r *rand.Rand, mean float64) float64 {
	return r.ExpFloat64() * mean
}

// WeightedChoice picks index i with probability weights[i]/sum(weights).
// All weights must be non-negative; if they sum to zero the choice is
// uniform. It returns -1 for an empty slice.
func WeightedChoice(r *rand.Rand, weights []float64) int {
	if len(weights) == 0 {
		return -1
	}
	var sum float64
	for _, w := range weights {
		if w > 0 {
			sum += w
		}
	}
	if sum == 0 {
		return r.Intn(len(weights))
	}
	x := r.Float64() * sum
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
