package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func fig4ishEdges() []float64 {
	return []float64{0, 1, 2, 5, 10, 60, math.Inf(1)}
}

func TestVarHistogramBinning(t *testing.T) {
	h := NewVarHistogram(fig4ishEdges())
	if h.Bins() != 6 {
		t.Fatalf("bins = %d", h.Bins())
	}
	cases := []struct {
		x   float64
		bin int
	}{
		{-1, 0}, // clamped
		{0, 0},
		{0.99, 0},
		{1, 1}, // exact edge belongs to the upper bin
		{4.9, 2},
		{5, 3},
		{59.9, 4},
		{60, 5},
		{1e9, 5},
	}
	for _, c := range cases {
		before := h.Count(c.bin)
		h.Add(c.x)
		if h.Count(c.bin) != before+1 {
			t.Errorf("Add(%v) did not land in bin %d", c.x, c.bin)
		}
	}
	if h.Total() != float64(len(cases)) {
		t.Errorf("total = %v", h.Total())
	}
}

func TestVarHistogramLabels(t *testing.T) {
	h := NewVarHistogram(fig4ishEdges())
	if got := h.Label(0); got != "0-1" {
		t.Errorf("label 0 = %q", got)
	}
	if got := h.Label(5); got != ">60" {
		t.Errorf("label 5 = %q", got)
	}
}

func TestVarHistogramMeanAt(t *testing.T) {
	h := NewVarHistogram(fig4ishEdges())
	h.AddWeighted(100, 2)
	h.AddWeighted(200, 2)
	if got := h.MeanAt(5); got != 150 {
		t.Errorf("open-bin mean = %v, want 150", got)
	}
	// Empty closed bin: midpoint. Empty open bin: 2x lower edge.
	if got := h.MeanAt(2); got != 3.5 {
		t.Errorf("empty bin mean = %v, want 3.5", got)
	}
	h2 := NewVarHistogram(fig4ishEdges())
	if got := h2.MeanAt(5); got != 120 {
		t.Errorf("empty open-bin mean = %v, want 120", got)
	}
}

func TestVarHistogramFractionBelow(t *testing.T) {
	h := NewVarHistogram(fig4ishEdges())
	h.AddWeighted(0.5, 3)
	h.AddWeighted(30, 1)
	h.AddWeighted(100, 1)
	if got := h.FractionBelow(60); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("below 60 = %v, want 0.8", got)
	}
	if got := h.FractionBelow(1); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("below 1 = %v, want 0.6", got)
	}
	empty := NewVarHistogram(fig4ishEdges())
	if empty.FractionBelow(60) != 0 {
		t.Error("empty fraction below should be 0")
	}
}

func TestVarHistogramMerge(t *testing.T) {
	a := NewVarHistogram(fig4ishEdges())
	b := NewVarHistogram(fig4ishEdges())
	a.AddWeighted(0.5, 1)
	b.AddWeighted(0.5, 3)
	b.AddWeighted(100, 4)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count(0) != 4 || a.Count(5) != 4 || a.Total() != 8 {
		t.Errorf("merged: %v %v %v", a.Count(0), a.Count(5), a.Total())
	}
	if got := a.MeanAt(5); got != 100 {
		t.Errorf("merged open-bin mean = %v", got)
	}
	c := NewVarHistogram([]float64{0, 1, 2})
	if err := a.Merge(c); err == nil {
		t.Error("incompatible merge accepted")
	}
	d := NewVarHistogram([]float64{0, 1.5, 2, 5, 10, 60, math.Inf(1)})
	if err := a.Merge(d); err == nil {
		t.Error("mismatched edges accepted")
	}
}

func TestVarHistogramPanics(t *testing.T) {
	for _, edges := range [][]float64{{1}, {2, 1}, {1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("edges %v accepted", edges)
				}
			}()
			NewVarHistogram(edges)
		}()
	}
}

// Property: fractions are non-negative and sum to 1 for any non-empty
// histogram; FractionBelow is monotone in x.
func TestVarHistogramProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		h := NewVarHistogram(fig4ishEdges())
		for _, v := range raw {
			h.Add(float64(v) / 100)
		}
		if len(raw) == 0 {
			return h.Total() == 0
		}
		var sum float64
		for _, fr := range h.Fractions() {
			if fr < 0 {
				return false
			}
			sum += fr
		}
		if math.Abs(sum-1) > 1e-9 {
			return false
		}
		prev := 0.0
		for _, x := range []float64{0, 1, 2, 5, 10, 60} {
			fb := h.FractionBelow(x)
			if fb < prev-1e-12 {
				return false
			}
			prev = fb
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHistogramBinLabel(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	if got := h.BinLabel(0); got != "0-2" {
		t.Errorf("label = %q", got)
	}
	if got := h.BinLabel(4); got != "8-10" {
		t.Errorf("label = %q", got)
	}
}

func TestECDFValuesShared(t *testing.T) {
	e := NewECDF([]float64{2, 1})
	v := e.Values()
	if len(v) != 2 || v[0] != 1 || v[1] != 2 {
		t.Errorf("values = %v", v)
	}
}

func TestQuantileHelper(t *testing.T) {
	if got := Quantile([]float64{4, 1, 3, 2}, 0.25); got != 1 {
		t.Errorf("q25 = %v", got)
	}
}
