package crosstalk

import (
	"math"
	"testing"
	"testing/quick"
)

func allActive(n int) []bool {
	a := make([]bool, n)
	for i := range a {
		a[i] = true
	}
	return a
}

func TestBundleGeometry(t *testing.T) {
	b := NewBundle25()
	if b.Pairs() != 24 {
		t.Fatalf("Pairs = %d, want 24", b.Pairs())
	}
	// Symmetry and zero self-coupling.
	for i := 0; i < 24; i++ {
		if b.Weight(i, i) != 0 {
			t.Errorf("self coupling at %d", i)
		}
		for j := 0; j < 24; j++ {
			if math.Abs(b.Weight(i, j)-b.Weight(j, i)) > 1e-12 {
				t.Errorf("asymmetric coupling %d-%d", i, j)
			}
		}
	}
	// Adjacent inner-ring pairs couple harder than opposite outer pairs.
	if b.Weight(0, 1) <= b.Weight(8, 16) {
		t.Errorf("adjacency not reflected: %v vs %v", b.Weight(0, 1), b.Weight(8, 16))
	}
	// Normalization: average total weight seen by a line is ~23.
	var total float64
	for i := 0; i < 24; i++ {
		for j := 0; j < 24; j++ {
			total += b.Weight(i, j)
		}
	}
	if math.Abs(total/24-23) > 1e-9 {
		t.Errorf("mean total weight = %v, want 23", total/24)
	}
}

func TestAttenuationMonotone(t *testing.T) {
	prev := 0.0
	for f := 1e5; f < 17e6; f *= 1.3 {
		a := attenDBPerKm(f)
		if a <= prev {
			t.Fatalf("attenuation not increasing at %v Hz", f)
		}
		prev = a
	}
}

func TestNewSystemValidation(t *testing.T) {
	b := NewBundle25()
	if _, err := NewSystem(DefaultPHY(), b, nil); err == nil {
		t.Error("expected error for no lines")
	}
	if _, err := NewSystem(DefaultPHY(), b, make([]float64, 25)); err == nil {
		t.Error("expected error for too many lines")
	}
	if _, err := NewSystem(DefaultPHY(), b, []float64{100, -5}); err == nil {
		t.Error("expected error for negative length")
	}
}

func TestSyncRateBasics(t *testing.T) {
	lengths := make([]float64, 24)
	for i := range lengths {
		lengths[i] = 600
	}
	sys, err := NewSystem(DefaultPHY(), NewBundle25(), lengths)
	if err != nil {
		t.Fatal(err)
	}
	active := allActive(24)
	r0 := sys.SyncRate(0, active, Profile62)
	if r0 < 25e6 || r0 > 55e6 {
		t.Errorf("600m all-active rate = %v Mbps, want 30-55 (paper ~43.7)", r0/1e6)
	}
	// Inactive line reports zero.
	active[0] = false
	if got := sys.SyncRate(0, active, Profile62); got != 0 {
		t.Errorf("inactive line rate = %v", got)
	}
	// Survivors speed up when a line goes off.
	r1 := sys.SyncRate(1, active, Profile62)
	active[0] = true
	r1base := sys.SyncRate(1, active, Profile62)
	if r1 <= r1base {
		t.Errorf("no crosstalk bonus: %v <= %v", r1, r1base)
	}
}

func TestShorterLinesFaster(t *testing.T) {
	lengths := []float64{100, 600}
	sys, err := NewSystem(DefaultPHY(), NewBundle25(), lengths)
	if err != nil {
		t.Fatal(err)
	}
	a := allActive(2)
	// Uncapped comparison: use a huge plan.
	big := ServiceProfile{Name: "uncapped", PlanBps: 1e9}
	if r0, r1 := sys.SyncRate(0, a, big), sys.SyncRate(1, a, big); r0 <= r1 {
		t.Errorf("100m (%v) not faster than 600m (%v)", r0, r1)
	}
}

func TestPlanCapBinds(t *testing.T) {
	lengths := []float64{50}
	sys, err := NewSystem(DefaultPHY(), NewBundle25(), lengths)
	if err != nil {
		t.Fatal(err)
	}
	a := []bool{true}
	if got := sys.SyncRate(0, a, Profile62); got != Profile62.PlanBps {
		t.Errorf("lone 50m line = %v, want capped at %v", got, Profile62.PlanBps)
	}
}

// Property: adding an active disturber never increases anyone's rate.
func TestMonotoneInDisturbersProperty(t *testing.T) {
	lengths := TelcoLengths(12, 5)
	sys, err := NewSystem(DefaultPHY(), NewBundle25(), lengths)
	if err != nil {
		t.Fatal(err)
	}
	big := ServiceProfile{Name: "uncapped", PlanBps: 1e9}
	f := func(mask uint16, extra uint8) bool {
		active := make([]bool, 12)
		for i := range active {
			active[i] = mask&(1<<i) != 0
		}
		victim := int(extra) % 12
		active[victim] = true
		r1 := sys.SyncRate(victim, active, big)
		// Activate one more line.
		added := -1
		for i := range active {
			if !active[i] {
				active[i] = true
				added = i
				break
			}
		}
		if added < 0 {
			return true
		}
		r2 := sys.SyncRate(victim, active, big)
		return r2 <= r1+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTelcoLengthsBounds(t *testing.T) {
	ls := TelcoLengths(1000, 3)
	for _, l := range ls {
		if l < 50 || l > 600 {
			t.Fatalf("length %v outside [50,600]", l)
		}
	}
	// Long-biased: median above 300 m.
	var over int
	for _, l := range ls {
		if l > 300 {
			over++
		}
	}
	if over < 600 {
		t.Errorf("only %d/1000 lengths above 300m; distribution should be long-biased", over)
	}
}

func TestFig14Steps(t *testing.T) {
	s := Fig14Steps()
	want := []int{0, 2, 4, 6, 8, 10, 12, 16, 20}
	if len(s) != len(want) {
		t.Fatalf("steps = %v", s)
	}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("steps = %v, want %v", s, want)
		}
	}
}

// The headline reproduction assertions for Fig 14 at the 62 Mbps profile,
// 600 m loops: ≈1.1-1.2% per inactive modem, ≈13.6% at half off, ≈25% when
// ~75% are off.
func TestFig14Profile62Fixed600(t *testing.T) {
	cfg := ExperimentConfig{FixedLength: 600, Profile: Profile62, Seed: 1}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byInactive := map[int]float64{}
	for _, r := range res {
		byInactive[r.Inactive] = r.MeanPct
	}
	if v := byInactive[0]; v != 0 {
		t.Errorf("baseline step speedup = %v, want 0", v)
	}
	perLine := byInactive[2] / 2
	if perLine < 0.6 || perLine > 2.0 {
		t.Errorf("per-line speedup = %.2f%%, want ~1.1-1.2%%", perLine)
	}
	if v := byInactive[12]; v < 9 || v > 20 {
		t.Errorf("half-off speedup = %.1f%%, want ~13.6%%", v)
	}
	// ~75% off lies between steps 16 and 20.
	approx75 := (byInactive[16] + byInactive[20]) / 2
	if approx75 < 18 || approx75 > 38 {
		t.Errorf("75%%-off speedup = %.1f%%, want ~25%%", approx75)
	}
	// Monotone increase with inactive count.
	prev := -1.0
	for _, r := range res {
		if r.MeanPct < prev-0.5 {
			t.Errorf("speedup not increasing at %d inactive: %v after %v", r.Inactive, r.MeanPct, prev)
		}
		prev = r.MeanPct
	}
	base, err := BaselineMeanBps(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if base < 30e6 || base > 55e6 {
		t.Errorf("62M/600m baseline = %.1f Mbps, want ~43.7", base/1e6)
	}
}

// The 30 Mbps plan must baseline *below* its cap (paper: 27.8-29.7 Mbps)
// and its speedup must flatten as lines hit the cap.
func TestFig14Profile30CapClipped(t *testing.T) {
	cfg := ExperimentConfig{FixedLength: 600, Profile: Profile30, Seed: 1}
	base, err := BaselineMeanBps(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if base >= Profile30.PlanBps {
		t.Fatalf("30M baseline %v not below cap", base)
	}
	if base < 22e6 {
		t.Errorf("30M baseline = %.1f Mbps, want ~26-30", base/1e6)
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	last, mid := res[len(res)-1].MeanPct, res[4].MeanPct
	// Cap clipping: the 30M curve must end well below the 62M curve.
	cfg62 := ExperimentConfig{FixedLength: 600, Profile: Profile62, Seed: 1}
	res62, err := Run(cfg62)
	if err != nil {
		t.Fatal(err)
	}
	if last >= res62[len(res62)-1].MeanPct {
		t.Errorf("30M final speedup %.1f%% not below 62M %.1f%%", last, res62[len(res62)-1].MeanPct)
	}
	if mid <= 0 {
		t.Errorf("30M mid speedup %.1f%% should be positive", mid)
	}
}

func TestRunRequiresProfile(t *testing.T) {
	if _, err := Run(ExperimentConfig{}); err == nil {
		t.Error("expected error for missing profile")
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := ExperimentConfig{Profile: Profile62, Seed: 4, LengthSeed: 9}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("step %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestMixedLengthsLowerSpeedupThanFixed(t *testing.T) {
	// Short lines hit the plan cap and stop benefiting, so the mixed-length
	// experiment shows smaller average speedups than fixed 600 m (visible
	// in Fig 14's curve ordering).
	fixed, err := Run(ExperimentConfig{FixedLength: 600, Profile: Profile62, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := Run(ExperimentConfig{Profile: Profile62, Seed: 2, LengthSeed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if mixed[len(mixed)-1].MeanPct >= fixed[len(fixed)-1].MeanPct {
		t.Errorf("mixed %.1f%% >= fixed %.1f%% at 20 inactive", mixed[len(mixed)-1].MeanPct, fixed[len(fixed)-1].MeanPct)
	}
}

func TestSyncRatePanicsOnBadMask(t *testing.T) {
	sys, err := NewSystem(DefaultPHY(), NewBundle25(), []float64{100, 200})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong mask size")
		}
	}()
	sys.SyncRate(0, []bool{true}, Profile62)
}

func TestProfile30UsesNarrowBand(t *testing.T) {
	sys62, err := NewSystem(DefaultPHY(), NewBundle25(), []float64{300})
	if err != nil {
		t.Fatal(err)
	}
	phy30 := DefaultPHY()
	phy30.Bands = Profile30.Bands
	sys30, err := NewSystem(phy30, NewBundle25(), []float64{300})
	if err != nil {
		t.Fatal(err)
	}
	if sys30.Tones() >= sys62.Tones() {
		t.Errorf("30M band plan should have fewer tones: %d vs %d", sys30.Tones(), sys62.Tones())
	}
}
