// Package crosstalk implements a multi-tone VDSL2 PHY model of the paper's
// §6 DSLAM testbed: copper attenuation, far-end crosstalk (FEXT) coupling
// across a 25-pair cable bundle, Shannon-gap bit loading and service-profile
// rate caps. It reproduces the Fig 14 experiment: per-line sync speedup as
// other lines in the bundle are powered off.
//
// The model is the standard DSL engineering one (Golden et al., Fundamentals
// of DSL Technology):
//
//   - line insertion loss |H(f,d)|² = 10^(-α(f)·d/10) with α(f) a √f-dominated
//     per-km attenuation for 0.4 mm copper,
//   - per-disturber equal-level FEXT: PSD_xt = PSD_tx · |H(f,d_victim)|² ·
//     K · w_ij · (f/1MHz)² · (Lshared/1km), with w_ij a bundle-geometry
//     weight (adjacent pairs couple hardest — §6.1),
//   - bit loading b(f) = min(cap, log₂(1 + SNR/Γ)) with Γ the SNR gap plus
//     the 6 dB noise margin the paper mentions,
//   - the subscribed plan caps the final rate (30 or 62 Mbps profiles).
//
// Powering off lines removes their FEXT, letting survivors load more bits —
// the "crosstalk bonus". In the FEXT-limited regime each of the ~24 lines
// contributes ~1/n of the noise, so removing one adds ≈log₂(n/(n-1)) bits
// per loaded tone: the ≈1.1-1.2%/line, 13.6% at half-off and ≈25% at
// 75%-off of Fig 14 fall out of the physics rather than curve fitting.
package crosstalk

import (
	"fmt"
	"math"
)

// ToneSpacingHz is the VDSL2 subcarrier spacing.
const ToneSpacingHz = 4312.5

// Band is a frequency interval in Hz.
type Band struct{ Lo, Hi float64 }

// DownstreamBands998ADE17 is the downstream part of the 998ADE17 (profile
// 17a) band plan used by VDSL2 deployments like the paper's Alcatel 7302.
var DownstreamBands998ADE17 = []Band{
	{138e3, 3.75e6},
	{5.2e6, 8.5e6},
	{12e6, 17.664e6},
}

// PHYConfig collects the transmission parameters.
type PHYConfig struct {
	TxPSDdBmHz    float64 // transmit PSD
	NoisePSDdBmHz float64 // background AWGN floor
	GapDB         float64 // Shannon gap (BER 1e-7) incl. coding gain
	MarginDB      float64 // noise margin (the paper's "at least 6 dB")
	BitCap        int     // max bits per tone
	Efficiency    float64 // framing/FEC overhead factor on the line rate
	KfextDB       float64 // FEXT coupling at 1 MHz over 1 km, 49 disturbers
	Bands         []Band
}

// DefaultPHY is calibrated against the paper's measured baselines (§6.3):
// 24 lines at 600 m sync at ≈44 Mbps on the 62 Mbps profile, and the
// FEXT-limited regime yields ≈1.1-1.2% speedup per powered-off line.
func DefaultPHY() PHYConfig {
	return PHYConfig{
		TxPSDdBmHz:    -60,
		NoisePSDdBmHz: -140,
		GapDB:         9.75 - 3.0, // gap minus coding gain
		MarginDB:      6,
		BitCap:        15,
		Efficiency:    0.85,
		KfextDB:       -37,
		Bands:         DownstreamBands998ADE17,
	}
}

// attenDBPerKm is the insertion loss of 0.4 mm (26 AWG) twisted pair:
// ≈36 dB/km at 1 MHz, ≈95 dB/km at 8 MHz, ≈138 dB/km at 17.6 MHz. At 600 m
// this kills the 12+ MHz DS3 band — which is what confines the paper's
// 600 m lines to ≈44 Mbps on the 62 Mbps plan.
func attenDBPerKm(fHz float64) float64 {
	fMHz := fHz / 1e6
	return 4 + 29*math.Sqrt(fMHz)
}

// ServiceProfile is a subscription plan: the DSLAM caps sync at PlanBps and
// provisions the line on the plan's band set (nil means the PHY default).
// Lower-tier plans ride lower-bandwidth profiles — which is why the paper's
// 30 Mbps lines baseline at 27.8-29.7 Mbps, *below* their plan cap.
type ServiceProfile struct {
	Name    string
	PlanBps float64
	Bands   []Band
}

// The two §6.2 profiles.
var (
	Profile30 = ServiceProfile{Name: "30 Mbps", PlanBps: 30e6,
		Bands: []Band{{138e3, 3.75e6}}}
	Profile62 = ServiceProfile{Name: "62 Mbps", PlanBps: 62e6}
)

// Bundle is the cable cross-section geometry: pair positions in arbitrary
// units; coupling between two pairs decays with their squared distance and
// is strongest for adjacent pairs.
type Bundle struct {
	pos  [][2]float64
	norm float64 // scales weights so a full bundle matches the 49-disturber reference
}

// NewBundle25 builds the paper's 25-pair cross-section (Fig 13a): one
// center pair surrounded by an inner ring of 8 and an outer ring of 16.
// Lines use positions 0..23; position 24 (the center) is the spare.
func NewBundle25() *Bundle {
	b := &Bundle{}
	for i := 0; i < 8; i++ {
		a := 2 * math.Pi * float64(i) / 8
		b.pos = append(b.pos, [2]float64{math.Cos(a), math.Sin(a)})
	}
	for i := 0; i < 16; i++ {
		a := 2*math.Pi*float64(i)/16 + math.Pi/16
		b.pos = append(b.pos, [2]float64{2 * math.Cos(a), 2 * math.Sin(a)})
	}
	b.pos = append(b.pos, [2]float64{0, 0})
	// Normalize: the ANSI reference coupling is the power sum over a full
	// binder; scale geometry weights so the average pair sees weight ~1
	// from the other 23.
	var total float64
	n := 24
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				total += b.rawWeight(i, j)
			}
		}
	}
	b.norm = float64(n-1) * float64(n) / total
	return b
}

func (b *Bundle) rawWeight(i, j int) float64 {
	dx := b.pos[i][0] - b.pos[j][0]
	dy := b.pos[i][1] - b.pos[j][1]
	d2 := dx*dx + dy*dy
	return 1 / (0.3 + d2)
}

// Weight returns the normalized coupling weight between pairs i and j;
// averaged over a full bundle it is 1.
func (b *Bundle) Weight(i, j int) float64 {
	if i == j {
		return 0
	}
	return b.rawWeight(i, j) * b.norm
}

// Pairs returns the number of usable pair positions.
func (b *Bundle) Pairs() int { return len(b.pos) - 1 }

// System is a set of lines sharing one bundle and DSLAM.
type System struct {
	Cfg     PHYConfig
	Bundle  *Bundle
	Lengths []float64 // per-line loop length in meters (switchboard setting)

	tones   []float64   // tone center frequencies (downstream only)
	gain    [][]float64 // gain[line][tone] = |H|² of the line
	fextXf  [][]float64 // fextXf[line][tone] = K·(f/1MHz)²·|H_victim|² premultiplier
	gamma   float64     // linear gap incl. margin
	txPSD   float64     // linear mW/Hz
	bgNoise float64     // linear mW/Hz
}

// NewSystem builds a system for the given loop lengths (one per line; at
// most Bundle.Pairs()).
func NewSystem(cfg PHYConfig, bundle *Bundle, lengths []float64) (*System, error) {
	if len(lengths) == 0 || len(lengths) > bundle.Pairs() {
		return nil, fmt.Errorf("crosstalk: %d lines for a %d-pair bundle", len(lengths), bundle.Pairs())
	}
	for i, l := range lengths {
		if l <= 0 {
			return nil, fmt.Errorf("crosstalk: line %d has non-positive length %v", i, l)
		}
	}
	s := &System{Cfg: cfg, Bundle: bundle, Lengths: append([]float64(nil), lengths...)}
	for _, band := range cfg.Bands {
		for f := band.Lo + ToneSpacingHz/2; f < band.Hi; f += ToneSpacingHz {
			s.tones = append(s.tones, f)
		}
	}
	s.gamma = dbToLin(cfg.GapDB + cfg.MarginDB)
	s.txPSD = dbmToLin(cfg.TxPSDdBmHz)
	s.bgNoise = dbmToLin(cfg.NoisePSDdBmHz)
	kf := dbToLin(cfg.KfextDB) / 49 // per-disturber reference coupling

	s.gain = make([][]float64, len(lengths))
	s.fextXf = make([][]float64, len(lengths))
	for i, l := range lengths {
		s.gain[i] = make([]float64, len(s.tones))
		s.fextXf[i] = make([]float64, len(s.tones))
		for t, f := range s.tones {
			g := math.Pow(10, -attenDBPerKm(f)*(l/1000)/10)
			s.gain[i][t] = g
			fMHz := f / 1e6
			s.fextXf[i][t] = kf * fMHz * fMHz * g
		}
	}
	return s, nil
}

// Tones returns the number of downstream tones in the band plan.
func (s *System) Tones() int { return len(s.tones) }

// SyncRate computes the downstream sync rate of line i in bps, given which
// lines are powered on. Powered-off lines produce no FEXT. The rate is the
// rate-adaptive maximum (option (i) of §6.1) clipped by the service plan.
func (s *System) SyncRate(i int, active []bool, plan ServiceProfile) float64 {
	if len(active) != len(s.Lengths) {
		panic(fmt.Sprintf("crosstalk: active mask size %d, want %d", len(active), len(s.Lengths)))
	}
	if !active[i] {
		return 0
	}
	var bits float64
	for t := range s.tones {
		sig := s.txPSD * s.gain[i][t]
		noise := s.bgNoise
		for j := range active {
			if j == i || !active[j] {
				continue
			}
			shared := math.Min(s.Lengths[i], s.Lengths[j]) / 1000
			noise += s.txPSD * s.fextXf[i][t] * s.Bundle.Weight(i, j) * shared
		}
		snr := sig / noise
		b := math.Log2(1 + snr/s.gamma)
		if b > float64(s.Cfg.BitCap) {
			b = float64(s.Cfg.BitCap)
		}
		if b < 1 {
			b = 0 // tones that cannot carry one bit are not loaded
		}
		bits += b
	}
	rate := s.Cfg.Efficiency * ToneSpacingHz * bits
	if rate > plan.PlanBps {
		rate = plan.PlanBps
	}
	return rate
}

// AllRates returns SyncRate for every line under the active mask (zero for
// inactive lines).
func (s *System) AllRates(active []bool, plan ServiceProfile) []float64 {
	out := make([]float64, len(s.Lengths))
	for i := range out {
		if active[i] {
			out[i] = s.SyncRate(i, active, plan)
		}
	}
	return out
}

func dbToLin(db float64) float64 { return math.Pow(10, db/10) }

// dbmToLin converts dBm/Hz to mW/Hz (linear); since SNR is a ratio the mW
// unit cancels.
func dbmToLin(dbm float64) float64 { return math.Pow(10, dbm/10) }
