package crosstalk

import (
	"fmt"
	"math"

	"insomnia/internal/stats"
)

// ExperimentConfig describes one §6.2 measurement campaign.
type ExperimentConfig struct {
	Lines       int            // number of modems (24 in the paper)
	FixedLength float64        // >0: all loops this long (the 600 m setup)
	LengthSeed  int64          // seed for the telco length distribution setup
	Profile     ServiceProfile // 30 or 62 Mbps plan
	Sequences   int            // random activation orders (5 in the paper)
	Repetitions int            // measurements per step (2 in the paper)
	Seed        int64
	PHY         PHYConfig // zero value takes DefaultPHY
}

// StepResult is one point of Fig 14: the average per-line relative speedup
// (w.r.t. the all-active baseline) when Inactive lines are off.
type StepResult struct {
	Inactive int
	MeanPct  float64 // average speedup in percent
	StdPct   float64 // across sequences/repetitions
}

// TelcoLengths draws n loop lengths between 50 and 600 m following a
// long-biased distribution standing in for the real telco length
// distribution the paper used (which is not published): a lognormal with
// median ≈300 m clipped to [50,600].
func TelcoLengths(n int, seed int64) []float64 {
	r := stats.NewRNG(seed, 0x7e1c)
	out := make([]float64, n)
	for i := range out {
		l := stats.Lognormal(r, math.Log(460), 0.35)
		if l < 50 {
			l = 50
		}
		if l > 600 {
			l = 600
		}
		out[i] = l
	}
	return out
}

// Fig14Steps returns the paper's deactivation schedule as the number of
// inactive lines at each measured step: lines deactivate 4 at a time up to
// 12, then 2 at a time up to 20 inactive (§6.2 activates in the reverse
// direction; the figure's x-axis is inactive lines 0..20).
func Fig14Steps() []int { return []int{0, 2, 4, 6, 8, 10, 12, 16, 20} }

// Run executes the experiment: for each random order and repetition,
// deactivate lines step by step and record the average relative rate gain
// of the remaining active lines.
func Run(cfg ExperimentConfig) ([]StepResult, error) {
	if cfg.Lines <= 0 {
		cfg.Lines = 24
	}
	if cfg.Sequences <= 0 {
		cfg.Sequences = 5
	}
	if cfg.Repetitions <= 0 {
		cfg.Repetitions = 2
	}
	if cfg.PHY.Bands == nil {
		cfg.PHY = DefaultPHY()
	}
	if cfg.Profile.PlanBps == 0 {
		return nil, fmt.Errorf("crosstalk: missing service profile")
	}
	if cfg.Profile.Bands != nil {
		cfg.PHY.Bands = cfg.Profile.Bands
	}
	var lengths []float64
	if cfg.FixedLength > 0 {
		lengths = make([]float64, cfg.Lines)
		for i := range lengths {
			lengths[i] = cfg.FixedLength
		}
	} else {
		lengths = TelcoLengths(cfg.Lines, cfg.LengthSeed)
	}
	sys, err := NewSystem(cfg.PHY, NewBundle25(), lengths)
	if err != nil {
		return nil, err
	}

	steps := Fig14Steps()
	agg := make([]stats.Welford, len(steps))

	baselineActive := make([]bool, cfg.Lines)
	for i := range baselineActive {
		baselineActive[i] = true
	}
	baseline := sys.AllRates(baselineActive, cfg.Profile)

	for seq := 0; seq < cfg.Sequences; seq++ {
		r := stats.NewRNG(cfg.Seed, 0xf160+uint64(seq))
		order := r.Perm(cfg.Lines) // deactivation order
		for rep := 0; rep < cfg.Repetitions; rep++ {
			for si, inactive := range steps {
				active := make([]bool, cfg.Lines)
				for i := range active {
					active[i] = true
				}
				for k := 0; k < inactive; k++ {
					active[order[k]] = false
				}
				var sum float64
				var n int
				for i := range active {
					if !active[i] || baseline[i] == 0 {
						continue
					}
					rate := sys.SyncRate(i, active, cfg.Profile)
					sum += (rate - baseline[i]) / baseline[i] * 100
					n++
				}
				if n > 0 {
					agg[si].Add(sum / float64(n))
				}
			}
		}
	}

	out := make([]StepResult, len(steps))
	for i, inactive := range steps {
		out[i] = StepResult{Inactive: inactive, MeanPct: agg[i].Mean(), StdPct: agg[i].Std()}
	}
	return out, nil
}

// BaselineMeanBps returns the all-active average sync rate for the given
// setup — the "baselines" quoted in the Fig 14 caption.
func BaselineMeanBps(cfg ExperimentConfig) (float64, error) {
	if cfg.Lines <= 0 {
		cfg.Lines = 24
	}
	if cfg.PHY.Bands == nil {
		cfg.PHY = DefaultPHY()
	}
	if cfg.Profile.Bands != nil {
		cfg.PHY.Bands = cfg.Profile.Bands
	}
	var lengths []float64
	if cfg.FixedLength > 0 {
		lengths = make([]float64, cfg.Lines)
		for i := range lengths {
			lengths[i] = cfg.FixedLength
		}
	} else {
		lengths = TelcoLengths(cfg.Lines, cfg.LengthSeed)
	}
	sys, err := NewSystem(cfg.PHY, NewBundle25(), lengths)
	if err != nil {
		return 0, err
	}
	active := make([]bool, cfg.Lines)
	for i := range active {
		active[i] = true
	}
	return stats.Mean(sys.AllRates(active, cfg.Profile)), nil
}
