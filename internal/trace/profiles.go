package trace

// Derived workload profiles beyond the paper's two measured curves
// (OfficeProfile, ResidentialProfile). These are the building blocks the
// scenario spec layer (internal/dsl, internal/campaign) exposes, so new
// city-scale workloads are declared in a config file instead of a new main:
//
//   - WeekendProfile: the residential curve without the commute dip;
//   - FlashCrowd: a localized surge on top of any base curve (a broadcast
//     event, a storm warning) — the stress case for wake-up scheduling;
//   - Mix: weekday/weekend blending for multi-day averaged campaigns;
//   - Config.WithChurn: shorter terminal sessions at the same online
//     fraction, i.e. many more sleep/wake transitions per gateway.

// WeekendProfile is a residential weekend day: no morning-commute dip,
// a late start, a broad midday plateau and the same 21-22 h evening peak
// as ResidentialProfile, with a slightly fuller afternoon.
var WeekendProfile = Profile{
	0.220, 0.150, 0.100, 0.065, 0.050, 0.050, // 0-5 h: later nights
	0.055, 0.070, 0.110, 0.180, 0.260, 0.330, // 6-11 h: slow start
	0.380, 0.400, 0.400, 0.390, 0.380, 0.400, // 12-17 h: plateau
	0.430, 0.470, 0.510, 0.540, 0.500, 0.360, // 18-23 h: evening peak
}

// FlashCrowd returns base with the online fraction scaled by `scale` inside
// the window [startHour, startHour+hours) (wrapping at midnight) — a flash
// crowd (live broadcast, emergency) concentrated in a few hours. Hour
// points whose center falls in the window are scaled; values clamp to 1.
// scale < 1 models the inverse (a blackout window).
func FlashCrowd(base Profile, startHour, hours, scale float64) Profile {
	out := base
	for h := 0; h < 24; h++ {
		d := float64(h) - startHour
		for d < 0 {
			d += 24
		}
		if d < hours {
			v := base[h] * scale
			if v > 1 {
				v = 1
			}
			out[h] = v
		}
	}
	return out
}

// Mix blends two profiles point-wise: (1-frac)*a + frac*b. With a weekday
// curve for a and WeekendProfile for b, frac = 2.0/7 yields the average
// day of a full week — the diurnal mix a long-running campaign sees.
func Mix(a, b Profile, frac float64) Profile {
	var out Profile
	for h := 0; h < 24; h++ {
		out[h] = a[h]*(1-frac) + b[h]*frac
	}
	return out
}

// WithChurn shortens terminal sessions by the given factor (> 1) while the
// profile keeps the stationary online fraction unchanged: the same number
// of client-hours arrives as factor× more, factor× shorter sessions. More
// session churn means more gateway idle/wake transitions — the workload
// that separates schemes on wake-up cost rather than steady-state power.
// Factors in (0, 1) lengthen sessions instead; non-positive factors are
// ignored.
func (c Config) WithChurn(factor float64) Config {
	if factor <= 0 {
		return c
	}
	if c.SessionMeanSec == 0 {
		c.SessionMeanSec = defSessionMean
	}
	c.SessionMeanSec /= factor
	return c
}
