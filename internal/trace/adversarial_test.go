package trace

import (
	"reflect"
	"testing"
)

// TestAdversarialSearch runs the hill-climb against a synthetic objective
// (total keepalive count, maximized by short periods): the search must be
// deterministic, produce valid traces, and improve on its seed pattern.
func TestAdversarialSearch(t *testing.T) {
	cfg := AdversaryConfig{Clients: 12, APs: 4, Duration: 1800, Seed: 7, Iters: 60}
	count := func(tr *Trace) float64 { return float64(len(tr.Keepalives)) }
	a, err := SearchAdversarial(cfg, count)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SearchAdversarial(cfg, count)
	if err != nil {
		t.Fatal(err)
	}
	if a.Score != b.Score || !reflect.DeepEqual(a.Pattern, b.Pattern) {
		t.Error("search must be deterministic per seed")
	}
	if err := a.Trace.Validate(); err != nil {
		t.Fatalf("adversarial trace invalid: %v", err)
	}
	if len(a.Trace.Flows) != 0 {
		t.Error("adversarial trace must be keepalive-only")
	}
	if a.Score <= a.Initial {
		t.Errorf("60 iterations should improve the count objective: %v -> %v", a.Initial, a.Score)
	}
	// The accepted pattern actually produces the winning trace.
	if got := cfg.materialize(a.Pattern); count(got) != a.Score {
		t.Errorf("pattern rematerializes to score %v, want %v", count(got), a.Score)
	}
	// A different seed explores a different schedule.
	other := cfg
	other.Seed = 8
	c, err := SearchAdversarial(other, count)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Pattern, c.Pattern) {
		t.Error("different seeds should find different patterns")
	}
}

func TestAdversarialZeroIters(t *testing.T) {
	cfg := AdversaryConfig{Clients: 8, APs: 4, Duration: 600, Seed: 3, Iters: -1}
	if _, err := SearchAdversarial(cfg, func(*Trace) float64 { return 0 }); err == nil {
		t.Error("negative iterations must error")
	}
	cfg.Iters = 0
	// Iters 0 takes the default budget; the search runs and never
	// regresses below its seed pattern.
	a, err := SearchAdversarial(cfg, func(tr *Trace) float64 { return float64(len(tr.Keepalives)) })
	if err != nil {
		t.Fatal(err)
	}
	if a.Score < a.Initial {
		t.Error("score must never regress below the seed pattern")
	}
}

func TestAdversaryConfigValidation(t *testing.T) {
	bad := []AdversaryConfig{
		{Clients: 0, APs: 4, Duration: 600},
		{Clients: 2, APs: 4, Duration: 600},  // fewer clients than APs
		{Clients: 8, APs: 4, Duration: 0},    // zero duration defaults nowhere
		{Clients: 8, APs: 4, Duration: -600}, // negative duration
		{Clients: 8, APs: 4, Duration: 600, MinPeriodSec: 10, MaxPeriodSec: 5},
		{Clients: 8, APs: 4, Duration: 600, MinPeriodSec: -1, MaxPeriodSec: -2},
	}
	for i, cfg := range bad {
		if _, err := SearchAdversarial(cfg, func(*Trace) float64 { return 0 }); err == nil {
			t.Errorf("config %d should be rejected: %+v", i, cfg)
		}
	}
}
