package trace

// Adversarial keepalive synthesis: a seeded hill-climb over per-client
// keepalive schedules that searches for the light-traffic pattern a given
// objective scores worst. Sleep-scheduling schemes earn their savings from
// the gaps between keepalives; a handful of clients with maliciously
// phased periods can keep a whole neighborhood of gateways cycling. The
// search makes that worst case a first-class test input: callers hand in
// a score function (typically "wakeups under scheme X", see cmd/tracegen)
// and get back the trace that maximizes it.
//
// Determinism: all randomness comes from the config seed (stream 0xad7e)
// and every iteration consumes a fixed number of draws whether or not the
// mutation is accepted, so a search is reproducible draw-for-draw.
// Periods and phases are continuous draws, which keeps packet times free
// of exact ties with each other or with scheduled simulator events.

import (
	"fmt"
	"math"
	"sort"

	"insomnia/internal/stats"
)

// AdversaryConfig parameterizes the adversarial search.
type AdversaryConfig struct {
	Clients  int
	APs      int
	Duration float64 // seconds
	Seed     int64
	Iters    int // hill-climb iterations (default 100)

	// Keepalive period bounds in seconds (defaults 5 and 600): the search
	// space spans aggressive IM-style pingers to lazy NAT keepalives.
	MinPeriodSec float64
	MaxPeriodSec float64
}

func (a AdversaryConfig) withDefaults() (AdversaryConfig, error) {
	if a.Iters == 0 {
		a.Iters = 100
	}
	if a.MinPeriodSec == 0 {
		a.MinPeriodSec = 5
	}
	if a.MaxPeriodSec == 0 {
		a.MaxPeriodSec = 600
	}
	if a.Clients <= 0 || a.APs <= 0 || a.Clients < a.APs {
		return a, fmt.Errorf("trace: adversary needs clients >= aps > 0, got %d/%d", a.Clients, a.APs)
	}
	if a.Duration <= 0 || math.IsNaN(a.Duration) || math.IsInf(a.Duration, 0) {
		return a, fmt.Errorf("trace: adversary duration %v must be positive and finite", a.Duration)
	}
	if a.Iters < 0 {
		return a, fmt.Errorf("trace: negative adversary iterations %d", a.Iters)
	}
	if a.MinPeriodSec <= 0 || a.MaxPeriodSec < a.MinPeriodSec {
		return a, fmt.Errorf("trace: adversary period bounds [%v, %v] invalid", a.MinPeriodSec, a.MaxPeriodSec)
	}
	return a, nil
}

// KeepalivePattern is one candidate schedule: client c sends a keepalive
// at Phase[c] + k*Period[c] for every k keeping it inside the duration.
type KeepalivePattern struct {
	Period []float64
	Phase  []float64
}

func (p KeepalivePattern) clone() KeepalivePattern {
	return KeepalivePattern{
		Period: append([]float64(nil), p.Period...),
		Phase:  append([]float64(nil), p.Phase...),
	}
}

// AdversarialResult is a finished search: the worst-case trace found, the
// pattern behind it, and the score trajectory endpoints.
type AdversarialResult struct {
	Trace   *Trace
	Pattern KeepalivePattern
	Score   float64 // best score reached
	Initial float64 // score of the seed pattern before climbing
}

// SearchAdversarial hill-climbs keepalive schedules to maximize score.
// Each iteration redraws one client's period and phase, keeping the
// mutation only when the score does not decrease (plateau moves stay, so
// the climb can cross flat regions of a discrete objective like wakeup
// counts). The score function is called once per iteration plus once for
// the seed pattern; it must treat the trace as read-only.
func SearchAdversarial(a AdversaryConfig, score func(*Trace) float64) (*AdversarialResult, error) {
	a, err := a.withDefaults()
	if err != nil {
		return nil, err
	}
	r := stats.NewRNG(a.Seed, 0xad7e)
	span := a.MaxPeriodSec - a.MinPeriodSec
	best := KeepalivePattern{
		Period: make([]float64, a.Clients),
		Phase:  make([]float64, a.Clients),
	}
	for c := 0; c < a.Clients; c++ {
		best.Period[c] = a.MinPeriodSec + r.Float64()*span
		best.Phase[c] = r.Float64() * best.Period[c]
	}
	bestTrace := a.materialize(best)
	bestScore := score(bestTrace)
	initial := bestScore
	for it := 0; it < a.Iters; it++ {
		// Fixed draw count per iteration: reproducibility does not depend
		// on which mutations were accepted.
		c := r.Intn(a.Clients)
		period := a.MinPeriodSec + r.Float64()*span
		phase := r.Float64() * period
		cand := best.clone()
		cand.Period[c], cand.Phase[c] = period, phase
		tr := a.materialize(cand)
		if s := score(tr); s >= bestScore {
			best, bestTrace, bestScore = cand, tr, s
		}
	}
	return &AdversarialResult{Trace: bestTrace, Pattern: best, Score: bestScore, Initial: initial}, nil
}

// materialize expands a pattern into a valid keepalive-only Trace: clients
// round-robin over APs (the paper's uniform placement), packets sorted by
// (time, client).
func (a AdversaryConfig) materialize(p KeepalivePattern) *Trace {
	tr := &Trace{
		Cfg: Config{
			Clients: a.Clients, APs: a.APs, Duration: a.Duration,
			BackhaulBps: DefaultBackhaulBps, UplinkBps: 512e3, Seed: a.Seed,
		},
		ClientAP: make([]int, a.Clients),
	}
	for c := range tr.ClientAP {
		tr.ClientAP[c] = c % a.APs
	}
	for c := 0; c < a.Clients; c++ {
		for t := p.Phase[c]; t < a.Duration; t += p.Period[c] {
			tr.Keepalives = append(tr.Keepalives, Packet{T: t, Client: int32(c), Bytes: keepaliveBase})
		}
	}
	sort.Slice(tr.Keepalives, func(i, j int) bool {
		x, y := tr.Keepalives[i], tr.Keepalives[j]
		if x.T != y.T {
			return x.T < y.T
		}
		return x.Client < y.Client
	})
	return tr
}
