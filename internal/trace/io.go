package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Binary trace format:
//
//	magic "INSMTR2\n", then little-endian:
//	clients, aps uint32; duration, backhaul, uplink float64;
//	clientAP [clients]uint32; nFlows uint64; flows; nKeep uint64; keepalives.
//
// The generator Config's shape knobs are not serialized — a stored trace is
// data, not a recipe.
var binaryMagic = []byte("INSMTR2\n")

// WriteBinary serializes the trace to w in the compact binary format.
func (tr *Trace) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic); err != nil {
		return err
	}
	le := binary.LittleEndian
	writeErr := func(vals ...any) error {
		for _, v := range vals {
			if err := binary.Write(bw, le, v); err != nil {
				return err
			}
		}
		return nil
	}
	if err := writeErr(uint32(tr.Cfg.Clients), uint32(tr.Cfg.APs),
		tr.Cfg.Duration, tr.Cfg.BackhaulBps, tr.Cfg.UplinkBps); err != nil {
		return err
	}
	for _, ap := range tr.ClientAP {
		if err := writeErr(uint32(ap)); err != nil {
			return err
		}
	}
	if err := writeErr(uint64(len(tr.Flows))); err != nil {
		return err
	}
	for _, f := range tr.Flows {
		up := uint8(0)
		if f.Up {
			up = 1
		}
		if err := writeErr(f.Start, f.Client, f.Bytes, f.Rate, up); err != nil {
			return err
		}
	}
	if err := writeErr(uint64(len(tr.Keepalives))); err != nil {
		return err
	}
	for _, p := range tr.Keepalives {
		if err := writeErr(p.T, p.Client, p.Bytes); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary deserializes a trace written by WriteBinary and validates it.
func ReadBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != string(binaryMagic) {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	le := binary.LittleEndian
	readErr := func(vals ...any) error {
		for _, v := range vals {
			if err := binary.Read(br, le, v); err != nil {
				return err
			}
		}
		return nil
	}
	var clients, aps uint32
	tr := &Trace{}
	if err := readErr(&clients, &aps, &tr.Cfg.Duration, &tr.Cfg.BackhaulBps, &tr.Cfg.UplinkBps); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	const maxEntities = 1 << 22
	if clients == 0 || aps == 0 || clients > maxEntities || aps > maxEntities {
		return nil, fmt.Errorf("trace: implausible header clients=%d aps=%d", clients, aps)
	}
	tr.Cfg.Clients, tr.Cfg.APs = int(clients), int(aps)
	tr.ClientAP = make([]int, clients)
	for i := range tr.ClientAP {
		var ap uint32
		if err := readErr(&ap); err != nil {
			return nil, fmt.Errorf("trace: reading clientAP: %w", err)
		}
		tr.ClientAP[i] = int(ap)
	}
	var nFlows uint64
	if err := readErr(&nFlows); err != nil {
		return nil, err
	}
	const maxRecords = 1 << 30
	if nFlows > maxRecords {
		return nil, fmt.Errorf("trace: implausible flow count %d", nFlows)
	}
	// Grow incrementally rather than trusting the header's count with one
	// giant allocation: a corrupt header must fail on EOF, not on OOM.
	const chunk = 1 << 16
	tr.Flows = make([]Flow, 0, min64(nFlows, chunk))
	for i := uint64(0); i < nFlows; i++ {
		var f Flow
		var up uint8
		if err := readErr(&f.Start, &f.Client, &f.Bytes, &f.Rate, &up); err != nil {
			return nil, fmt.Errorf("trace: reading flow %d: %w", i, err)
		}
		f.Up = up != 0
		tr.Flows = append(tr.Flows, f)
	}
	var nKeep uint64
	if err := readErr(&nKeep); err != nil {
		return nil, err
	}
	if nKeep > maxRecords {
		return nil, fmt.Errorf("trace: implausible keepalive count %d", nKeep)
	}
	tr.Keepalives = make([]Packet, 0, min64(nKeep, chunk))
	for i := uint64(0); i < nKeep; i++ {
		var p Packet
		if err := readErr(&p.T, &p.Client, &p.Bytes); err != nil {
			return nil, fmt.Errorf("trace: reading keepalive %d: %w", i, err)
		}
		tr.Keepalives = append(tr.Keepalives, p)
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// ReadFlowsCSV parses flow records written by WriteFlowsCSV (or converted
// from a real packet trace): header start,client,bytes,rate,up, one flow
// per row. The caller supplies the static layout (clients, APs, client->AP
// map) since a flow list alone does not carry it; the result is validated.
//
// This is the entry point for replaying real traces (e.g. CRAWDAD
// conversions) through the simulator instead of the synthetic generator.
func ReadFlowsCSV(rd io.Reader, cfg Config, clientAP []int) (*Trace, error) {
	cr := csv.NewReader(rd)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: reading CSV header: %w", err)
	}
	want := []string{"start", "client", "bytes", "rate", "up"}
	if len(header) != len(want) {
		return nil, fmt.Errorf("trace: CSV header has %d columns, want %d", len(header), len(want))
	}
	for i, h := range want {
		if header[i] != h {
			return nil, fmt.Errorf("trace: CSV column %d is %q, want %q", i, header[i], h)
		}
	}
	tr := &Trace{Cfg: cfg.withDefaults(), ClientAP: append([]int(nil), clientAP...)}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: CSV line %d: %w", line, err)
		}
		var f Flow
		if f.Start, err = strconv.ParseFloat(rec[0], 64); err != nil {
			return nil, fmt.Errorf("trace: CSV line %d start: %w", line, err)
		}
		c, err := strconv.Atoi(rec[1])
		if err != nil {
			return nil, fmt.Errorf("trace: CSV line %d client: %w", line, err)
		}
		f.Client = int32(c)
		if f.Bytes, err = strconv.ParseInt(rec[2], 10, 64); err != nil {
			return nil, fmt.Errorf("trace: CSV line %d bytes: %w", line, err)
		}
		if f.Rate, err = strconv.ParseFloat(rec[3], 64); err != nil {
			return nil, fmt.Errorf("trace: CSV line %d rate: %w", line, err)
		}
		if f.Up, err = strconv.ParseBool(rec[4]); err != nil {
			return nil, fmt.Errorf("trace: CSV line %d up: %w", line, err)
		}
		tr.Flows = append(tr.Flows, f)
	}
	sort.Slice(tr.Flows, func(i, j int) bool { return tr.Flows[i].Start < tr.Flows[j].Start })
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// WriteFlowsCSV writes the flow records as CSV with a header row:
// start,client,bytes,rate,up. Useful for external plotting.
func (tr *Trace) WriteFlowsCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"start", "client", "bytes", "rate", "up"}); err != nil {
		return err
	}
	rec := make([]string, 5)
	for _, f := range tr.Flows {
		rec[0] = strconv.FormatFloat(f.Start, 'f', 3, 64)
		rec[1] = strconv.Itoa(int(f.Client))
		rec[2] = strconv.FormatInt(f.Bytes, 10)
		rec[3] = strconv.FormatFloat(f.Rate, 'f', 0, 64)
		rec[4] = strconv.FormatBool(f.Up)
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
