package trace

import (
	"math"
	"sort"

	"insomnia/internal/stats"
)

// Fig4Edges are the paper's inter-packet-gap histogram bins: one-second bins
// from 0 to 21 s, then 21-40, 40-60 and >60 s.
func Fig4Edges() []float64 {
	edges := make([]float64, 0, 25)
	for s := 0.0; s <= 21; s++ {
		edges = append(edges, s)
	}
	return append(edges, 40, 60, math.Inf(1))
}

// nominalDuration is the trace-level approximation of a flow's transfer
// time: the flow alone on the access link, at its application rate cap if
// it has one (media streams). Trace statistics (Figs 2-4) are computed this
// way, exactly as one would compute them from a tcpdump of the access link;
// contention is the simulator's business.
func (tr *Trace) nominalDuration(f Flow) float64 {
	bps := tr.Cfg.BackhaulBps
	if f.Up {
		bps = tr.Cfg.UplinkBps
	}
	if f.Rate > 0 && f.Rate < bps {
		bps = f.Rate
	}
	return float64(f.Bytes) / (bps / 8)
}

// UtilizationMatrix returns per-AP, per-bin link utilization fractions for
// the given direction: out[ap][bin] = busy-bytes / bin-capacity. Flow bytes
// are spread uniformly over the flow's nominal duration; keepalive bytes
// land in their bin.
func (tr *Trace) UtilizationMatrix(up bool, bins int) [][]float64 {
	out := make([][]float64, tr.Cfg.APs)
	for i := range out {
		out[i] = make([]float64, bins)
	}
	binW := tr.Cfg.Duration / float64(bins)
	bps := tr.Cfg.BackhaulBps
	if up {
		bps = tr.Cfg.UplinkBps
	}
	binBytes := bps / 8 * binW

	spread := func(ap int, start, end float64, bytes float64) {
		if end <= start {
			end = start + 1e-9
		}
		rate := bytes / (end - start)
		for t := start; t < end; {
			b := int(t / binW)
			if b < 0 {
				b = 0
			}
			if b >= bins {
				return
			}
			binEnd := float64(b+1) * binW
			seg := math.Min(end, binEnd) - t
			out[ap][b] += rate * seg / binBytes
			t = math.Min(end, binEnd)
		}
	}

	for _, f := range tr.Flows {
		if f.Up != up {
			continue
		}
		ap := tr.ClientAP[f.Client]
		spread(ap, f.Start, f.Start+tr.nominalDuration(f), float64(f.Bytes))
	}
	if !up {
		for _, p := range tr.Keepalives {
			b := int(p.T / binW)
			if b >= 0 && b < bins {
				out[tr.ClientAP[p.Client]][b] += float64(p.Bytes) / binBytes
			}
		}
	}
	return out
}

// MeanUtilization reduces a utilization matrix to the across-AP mean per
// bin — the paper's "average utilization" curves (Figs 2 and 3).
func MeanUtilization(m [][]float64) []float64 {
	if len(m) == 0 {
		return nil
	}
	out := make([]float64, len(m[0]))
	for _, row := range m {
		for b, v := range row {
			out[b] += v
		}
	}
	for b := range out {
		out[b] /= float64(len(m))
	}
	return out
}

// MedianUtilization reduces a utilization matrix to the across-AP median
// per bin — the paper's "median utilization" curve (Fig 2, right).
func MedianUtilization(m [][]float64) []float64 {
	if len(m) == 0 {
		return nil
	}
	bins := len(m[0])
	out := make([]float64, bins)
	col := make([]float64, len(m))
	for b := 0; b < bins; b++ {
		for a := range m {
			col[a] = m[a][b]
		}
		sort.Float64s(col)
		out[b] = col[len(col)/2]
	}
	return out
}

// Interval is a closed activity interval [Start, End] on an AP's backhaul.
type Interval struct{ Start, End float64 }

// APActivity returns the merged busy intervals of AP ap within [from, to):
// flows contribute their nominal transfer interval, keepalives contribute
// points. Consecutive intervals closer than mergeGap are coalesced (packets
// within a flow are back-to-back on the wire; mergeGap=0 keeps every gap).
func (tr *Trace) APActivity(ap int, from, to float64) []Interval {
	var iv []Interval
	for _, f := range tr.Flows {
		if tr.ClientAP[f.Client] != ap {
			continue
		}
		end := f.Start + tr.nominalDuration(f)
		if end < from || f.Start > to {
			continue
		}
		iv = append(iv, Interval{max(f.Start, from), math.Min(end, to)})
	}
	for _, p := range tr.Keepalives {
		if tr.ClientAP[p.Client] != ap || p.T < from || p.T > to {
			continue
		}
		iv = append(iv, Interval{p.T, p.T})
	}
	return MergeIntervals(iv)
}

// MergeIntervals sorts and coalesces overlapping or touching intervals.
func MergeIntervals(iv []Interval) []Interval {
	if len(iv) == 0 {
		return nil
	}
	sort.Slice(iv, func(i, j int) bool { return iv[i].Start < iv[j].Start })
	out := iv[:1]
	for _, v := range iv[1:] {
		last := &out[len(out)-1]
		if v.Start <= last.End {
			if v.End > last.End {
				last.End = v.End
			}
		} else {
			out = append(out, v)
		}
	}
	return out
}

// GapHistogram builds the Fig 4 histogram for the window [from, to): the
// fraction of idle time contributed by inter-packet gaps of each size,
// aggregated over all APs.
func (tr *Trace) GapHistogram(from, to float64) *stats.VarHistogram {
	h := stats.NewVarHistogram(Fig4Edges())
	for ap := 0; ap < tr.Cfg.APs; ap++ {
		iv := tr.APActivity(ap, from, to)
		prev := from
		for _, v := range iv {
			if g := v.Start - prev; g > 0 {
				h.AddWeighted(g, g)
			}
			if v.End > prev {
				prev = v.End
			}
		}
		if g := to - prev; g > 0 {
			h.AddWeighted(g, g)
		}
	}
	return h
}

// GapCountHistogram is like GapHistogram but weights each gap once instead
// of by its duration — "82% of the inter-packet gaps are lower than 60 s"
// (§5.1) is a count-weighted statement.
func (tr *Trace) GapCountHistogram(from, to float64) *stats.VarHistogram {
	h := stats.NewVarHistogram(Fig4Edges())
	for ap := 0; ap < tr.Cfg.APs; ap++ {
		iv := tr.APActivity(ap, from, to)
		prev := from
		for _, v := range iv {
			if g := v.Start - prev; g > 0 {
				h.Add(g)
			}
			if v.End > prev {
				prev = v.End
			}
		}
	}
	return h
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
