package trace

import (
	"math"
	"testing"
)

func TestFlashCrowdWindow(t *testing.T) {
	p := FlashCrowd(ResidentialProfile, 20, 2, 3)
	for h := 0; h < 24; h++ {
		switch h {
		case 20, 21:
			want := math.Min(ResidentialProfile[h]*3, 1)
			if p[h] != want {
				t.Errorf("hour %d: got %v, want %v", h, p[h], want)
			}
		default:
			if p[h] != ResidentialProfile[h] {
				t.Errorf("hour %d: flash crowd leaked outside window: %v", h, p[h])
			}
		}
	}
}

func TestFlashCrowdWrapsMidnight(t *testing.T) {
	p := FlashCrowd(OfficeProfile, 23, 2, 2)
	if p[23] != math.Min(OfficeProfile[23]*2, 1) || p[0] != math.Min(OfficeProfile[0]*2, 1) {
		t.Errorf("window [23,1) should scale hours 23 and 0: %v %v", p[23], p[0])
	}
	if p[1] != OfficeProfile[1] {
		t.Errorf("hour 1 should be untouched")
	}
}

func TestFlashCrowdClamps(t *testing.T) {
	p := FlashCrowd(ResidentialProfile, 21, 1, 100)
	if p[21] != 1 {
		t.Errorf("scaled fraction must clamp to 1, got %v", p[21])
	}
}

func TestMixEndpoints(t *testing.T) {
	a, b := ResidentialProfile, WeekendProfile
	if Mix(a, b, 0) != a {
		t.Error("frac 0 should return a")
	}
	if Mix(a, b, 1) != b {
		t.Error("frac 1 should return b")
	}
	m := Mix(a, b, 2.0/7)
	for h := 0; h < 24; h++ {
		want := a[h]*5/7 + b[h]*2/7
		if math.Abs(m[h]-want) > 1e-12 {
			t.Errorf("hour %d: got %v, want %v", h, m[h], want)
		}
	}
}

func TestWeekendProfileShape(t *testing.T) {
	p := WeekendProfile
	if p.Max() > 1 {
		t.Errorf("profile exceeds 1: %v", p.Max())
	}
	// Evening peak, not a morning one, and no commute dip at 8-9 h below
	// the overnight trough.
	if p[21] <= p[9] {
		t.Error("weekend evening should exceed morning")
	}
	if p[9] <= p[4] {
		t.Error("morning should still exceed the overnight trough")
	}
}

func TestWithChurn(t *testing.T) {
	base := DefaultResidentialConfig(10, 1)
	c := base.WithChurn(4)
	if c.SessionMeanSec != base.SessionMeanSec/4 {
		t.Errorf("factor 4 should quarter SessionMeanSec: %v", c.SessionMeanSec)
	}
	// Zero session mean takes the generator default before scaling.
	c = Config{}.WithChurn(2)
	if c.SessionMeanSec != defSessionMean/2 {
		t.Errorf("zero base should scale the default: %v", c.SessionMeanSec)
	}
	// Non-positive factors are ignored.
	c = base.WithChurn(0)
	if c.SessionMeanSec != base.SessionMeanSec {
		t.Error("factor 0 must be a no-op")
	}
}

// TestChurnIncreasesTransitions pins the point of WithChurn: same online
// fraction, many more session starts. Session starts are visible as the
// number of distinct online periods; we proxy them by generating both
// traces and comparing event counts per online-hour — churned clients
// produce comparable traffic, so the traces stay similar in volume, but
// the churned config must not be identical.
func TestChurnIncreasesTransitions(t *testing.T) {
	cfg := Config{Clients: 40, APs: 8, Duration: 4 * 3600, Profile: ResidentialProfile, Seed: 7}
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	trC, err := Generate(cfg.WithChurn(6))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Flows) == 0 || len(trC.Flows) == 0 {
		t.Fatal("expected traffic in both traces")
	}
	same := len(tr.Flows) == len(trC.Flows) && len(tr.Keepalives) == len(trC.Keepalives)
	if same {
		t.Error("churned trace should differ from the base trace")
	}
}
