// Package trace models packet/flow-level access network traffic and
// synthesizes CRAWDAD-like traces that reproduce the published statistics of
// the paper's datasets: the UCSD CSE building wireless trace (272 clients,
// 40 APs, 24 h — Figs 3 and 4) and the 10 K-subscriber residential ADSL
// utilization dataset (Fig 2).
//
// The paper's evaluation depends on its traces only through three marginals:
//
//  1. the diurnal per-AP utilization profile (avg peaking ≈8% on 6 Mbps
//     backhaul at 16-17 h for the office trace, near-zero median),
//  2. the peak-hour inter-packet-gap structure (>80% of idle time made of
//     gaps shorter than the 60 s wake-up threshold), and
//  3. a flow arrival/size process for flow-completion-time accounting.
//
// The generator is therefore built from per-client terminal sessions that
// emit heavy-tailed web-like flows interleaved with light keepalive packets
// ("continuous light traffic"), with session presence modulated by a
// time-of-day profile. All randomness is seeded and reproducible.
package trace

import (
	"fmt"
	"sort"
)

// Day is the trace duration in seconds.
const Day = 86400.0

// DefaultBackhaulBps is the access link speed used throughout the paper's
// evaluation (average downlink of the 10 K residential subscribers).
const DefaultBackhaulBps = 6e6

// Flow is one downlink (or uplink) transfer: a web page, a file download,
// or a rate-limited media stream. Flows are the unit of QoS accounting
// (Fig 9a).
type Flow struct {
	Start  float64 // arrival time, seconds from trace start
	Client int32   // client index
	Bytes  int64   // transfer size
	Rate   float64 // application rate cap in bps; 0 = elastic (TCP bulk)
	Up     bool    // direction; the evaluation uses downlink only
}

// Packet is a single light-traffic packet: keepalives, IM, presence
// protocols — the "continuous light traffic" of §2.4. Packets are what keep
// a gateway's idle timer from expiring.
type Packet struct {
	T      float64 // send time
	Client int32
	Bytes  int32
}

// Trace is a generated packet/flow trace plus its static client/AP layout.
type Trace struct {
	Cfg        Config
	Flows      []Flow   // sorted by Start
	Keepalives []Packet // sorted by T; empty when Cfg.FlowsOnly
	ClientAP   []int    // home AP per client
}

// Validate checks internal invariants: sortedness, index ranges, positive
// sizes. The generator always produces valid traces; Validate guards
// deserialized input.
func (tr *Trace) Validate() error {
	if len(tr.ClientAP) != tr.Cfg.Clients {
		return fmt.Errorf("trace: ClientAP has %d entries, want %d", len(tr.ClientAP), tr.Cfg.Clients)
	}
	for i, ap := range tr.ClientAP {
		if ap < 0 || ap >= tr.Cfg.APs {
			return fmt.Errorf("trace: client %d mapped to invalid AP %d", i, ap)
		}
	}
	if !sort.SliceIsSorted(tr.Flows, func(i, j int) bool { return tr.Flows[i].Start < tr.Flows[j].Start }) {
		return fmt.Errorf("trace: flows not sorted by start time")
	}
	if !sort.SliceIsSorted(tr.Keepalives, func(i, j int) bool { return tr.Keepalives[i].T < tr.Keepalives[j].T }) {
		return fmt.Errorf("trace: keepalives not sorted by time")
	}
	for i, f := range tr.Flows {
		if f.Bytes <= 0 {
			return fmt.Errorf("trace: flow %d has non-positive size %d", i, f.Bytes)
		}
		if f.Rate < 0 {
			return fmt.Errorf("trace: flow %d has negative rate %v", i, f.Rate)
		}
		if int(f.Client) < 0 || int(f.Client) >= tr.Cfg.Clients {
			return fmt.Errorf("trace: flow %d has invalid client %d", i, f.Client)
		}
		if f.Start < 0 || f.Start > tr.Cfg.Duration {
			return fmt.Errorf("trace: flow %d outside trace duration: %v", i, f.Start)
		}
	}
	for i, p := range tr.Keepalives {
		if int(p.Client) < 0 || int(p.Client) >= tr.Cfg.Clients {
			return fmt.Errorf("trace: keepalive %d has invalid client %d", i, p.Client)
		}
	}
	return nil
}

// TotalBytes returns the sum of flow bytes in the given direction.
func (tr *Trace) TotalBytes(up bool) int64 {
	var s int64
	for _, f := range tr.Flows {
		if f.Up == up {
			s += f.Bytes
		}
	}
	return s
}

// ClientsOfAP returns the client indices homed at AP ap.
func (tr *Trace) ClientsOfAP(ap int) []int {
	var out []int
	for c, a := range tr.ClientAP {
		if a == ap {
			out = append(out, c)
		}
	}
	return out
}
