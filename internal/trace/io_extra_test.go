package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadFlowsCSVRoundTrip(t *testing.T) {
	tr, err := Generate(Config{Clients: 12, APs: 3, Profile: OfficeProfile, Seed: 21, FlowsOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteFlowsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFlowsCSV(&buf, tr.Cfg, tr.ClientAP)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Flows) != len(tr.Flows) {
		t.Fatalf("%d flows, want %d", len(got.Flows), len(tr.Flows))
	}
	for i := range tr.Flows {
		a, b := tr.Flows[i], got.Flows[i]
		// CSV keeps 3 decimals of start time and whole-number rate.
		if diff := a.Start - b.Start; diff > 0.001 || diff < -0.001 || a.Client != b.Client ||
			a.Bytes != b.Bytes || a.Up != b.Up {
			t.Fatalf("flow %d: %+v vs %+v", i, a, b)
		}
	}
}

func TestReadFlowsCSVRejectsBadInput(t *testing.T) {
	cfg := Config{Clients: 2, APs: 1}
	clientAP := []int{0, 0}
	cases := []string{
		"",                            // no header
		"wrong,header,entirely,x,y\n", // wrong names
		"start,client,bytes,rate\n",   // missing column
		"start,client,bytes,rate,up\nx,0,1,0,f\n",          // bad start
		"start,client,bytes,rate,up\n1,zz,1,0,false\n",     // bad client
		"start,client,bytes,rate,up\n1,0,zz,0,false\n",     // bad bytes
		"start,client,bytes,rate,up\n1,0,10,zz,false\n",    // bad rate
		"start,client,bytes,rate,up\n1,0,10,0,maybe\n",     // bad up
		"start,client,bytes,rate,up\n1,9,10,0,false\n",     // client out of range
		"start,client,bytes,rate,up\n1,0,-10,0,false\n",    // negative bytes
		"start,client,bytes,rate,up\n1,0,10,-5,false\n",    // negative rate
		"start,client,bytes,rate,up\n999999,0,1,0,false\n", // beyond duration
	}
	for i, in := range cases {
		if _, err := ReadFlowsCSV(strings.NewReader(in), cfg, clientAP); err == nil {
			t.Errorf("case %d accepted: %q", i, in)
		}
	}
}

func TestReadFlowsCSVSortsByStart(t *testing.T) {
	in := "start,client,bytes,rate,up\n5,0,10,0,false\n1,0,20,0,false\n"
	tr, err := ReadFlowsCSV(strings.NewReader(in), Config{Clients: 1, APs: 1}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Flows[0].Start != 1 || tr.Flows[1].Start != 5 {
		t.Errorf("not sorted: %+v", tr.Flows)
	}
}

// FuzzReadBinary hardens the binary decoder against corrupt input: it must
// error or return a valid trace, never panic or over-allocate wildly.
func FuzzReadBinary(f *testing.F) {
	tr, err := Generate(Config{Clients: 6, APs: 2, Profile: OfficeProfile, Seed: 9, Duration: 1800})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("INSMTR2\n"))
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadBinary(bytes.NewReader(data))
		if err == nil {
			if vErr := got.Validate(); vErr != nil {
				t.Fatalf("decoder returned invalid trace: %v", vErr)
			}
		}
	})
}

// FuzzReadFlowsCSV does the same for the CSV path.
func FuzzReadFlowsCSV(f *testing.F) {
	f.Add("start,client,bytes,rate,up\n1,0,10,0,false\n")
	f.Add("start,client,bytes,rate,up\n")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, data string) {
		got, err := ReadFlowsCSV(strings.NewReader(data), Config{Clients: 4, APs: 2}, []int{0, 1, 0, 1})
		if err == nil {
			if vErr := got.Validate(); vErr != nil {
				t.Fatalf("CSV decoder returned invalid trace: %v", vErr)
			}
		}
	})
}
