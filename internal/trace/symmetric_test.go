package trace

import (
	"testing"
)

// clientEvents flattens one client's flows and keepalives into a
// comparable form (times, sizes, rates) for workload-identity checks.
type clientEvents struct {
	flows []Flow
	keeps []Packet
}

func eventsByClient(tr *Trace) map[int32]*clientEvents {
	out := map[int32]*clientEvents{}
	get := func(c int32) *clientEvents {
		e := out[c]
		if e == nil {
			e = &clientEvents{}
			out[c] = e
		}
		return e
	}
	for _, f := range tr.Flows {
		get(f.Client).flows = append(get(f.Client).flows, f)
	}
	for _, k := range tr.Keepalives {
		get(k.Client).keeps = append(get(k.Client).keeps, k)
	}
	return out
}

// TestSymmetricPlacement pins the contract the symmetry-collapse pass
// relies on: under Config.Symmetric, client c lands on AP c%APs and the
// slot-keyed RNG streams give same-slot clients on different APs
// byte-identical event sequences — so equal-count gateways carry
// byte-identical workloads.
func TestSymmetricPlacement(t *testing.T) {
	cfg := DefaultSimConfig(7)
	cfg.Clients, cfg.APs, cfg.Duration = 23, 5, 7200 // counts 5,5,5,4,4
	cfg.Symmetric = true
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for c, ap := range tr.ClientAP {
		if ap != c%cfg.APs {
			t.Fatalf("ClientAP[%d] = %d, want %d", c, ap, c%cfg.APs)
		}
	}
	ev := eventsByClient(tr)
	// Same slot, different AP => identical events (up to client id).
	for slot := 0; slot < 4; slot++ {
		ref := ev[int32(slot*cfg.APs)] // slot on AP 0
		for ap := 1; ap < cfg.APs; ap++ {
			c := int32(slot*cfg.APs + ap)
			if slot*cfg.APs+ap >= cfg.Clients {
				continue
			}
			got := ev[c]
			if ref == nil || got == nil {
				if (ref == nil) != (got == nil) {
					t.Fatalf("slot %d: AP0 and AP%d differ in having events", slot, ap)
				}
				continue
			}
			if len(got.flows) != len(ref.flows) || len(got.keeps) != len(ref.keeps) {
				t.Fatalf("slot %d AP %d: %d/%d events, want %d/%d",
					slot, ap, len(got.flows), len(got.keeps), len(ref.flows), len(ref.keeps))
			}
			for i := range ref.flows {
				a, b := ref.flows[i], got.flows[i]
				if a.Start != b.Start || a.Bytes != b.Bytes || a.Rate != b.Rate || a.Up != b.Up {
					t.Fatalf("slot %d AP %d flow %d: %+v != %+v", slot, ap, i, b, a)
				}
			}
			for i := range ref.keeps {
				a, b := ref.keeps[i], got.keeps[i]
				if a.T != b.T || a.Bytes != b.Bytes {
					t.Fatalf("slot %d AP %d keepalive %d: %+v != %+v", slot, ap, i, b, a)
				}
			}
		}
	}
}

func TestSymmetricRejectsZipf(t *testing.T) {
	cfg := DefaultOfficeConfig(1) // ZipfS = 1
	cfg.Symmetric = true
	if _, err := Generate(cfg); err == nil {
		t.Fatal("Symmetric + ZipfS > 0 should be rejected")
	}
}

// TestGenerateAllocsFlat pins the generator's allocation profile: one
// reseeded RNG and up-front event-slice sizing mean the allocation count
// stays (nearly) independent of the client count. Before this pin the
// generator allocated a ~5 KB rand source per client (2+ allocs/client,
// ~500 MB of the 100k-client city benchmark).
func TestGenerateAllocsFlat(t *testing.T) {
	cfg := DefaultCityConfig(3)
	cfg.Clients, cfg.APs, cfg.Duration = 5000, 500, 7200
	allocs := testing.AllocsPerRun(2, func() {
		if _, err := Generate(cfg); err != nil {
			t.Fatal(err)
		}
	})
	// Measured ~17; anything linear in clients would be >= 5000.
	if allocs > 200 {
		t.Fatalf("Generate allocated %.0f times for %d clients; want a client-count-independent profile (<= 200)",
			allocs, cfg.Clients)
	}
}
