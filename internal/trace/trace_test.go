package trace

import (
	"bytes"
	"insomnia/internal/stats"
	"math"
	"testing"
	"testing/quick"
)

func TestProfileInterpolation(t *testing.T) {
	var p Profile
	p[0], p[1] = 0.2, 0.4
	if got := p.At(0); got != 0.2 {
		t.Errorf("At(0) = %v", got)
	}
	if got := p.At(1800); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("At(1800) = %v, want 0.3", got)
	}
	// Wrap at midnight: hour 23 -> hour 0.
	p[23] = 0.8
	if got := p.At(23.5 * 3600); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("At(23.5h) = %v, want 0.5", got)
	}
	if got := p.At(-3600); got != p.At(Day-3600) {
		t.Errorf("negative wrap: %v vs %v", got, p.At(Day-3600))
	}
}

func TestProfileMax(t *testing.T) {
	if m := OfficeProfile.Max(); m != 0.7 {
		t.Errorf("office max = %v, want 0.7", m)
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	if _, err := Generate(Config{Clients: 0, APs: 4}); err == nil {
		t.Error("expected error for zero clients")
	}
	if _, err := Generate(Config{Clients: 3, APs: 4}); err == nil {
		t.Error("expected error for clients < APs")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Clients: 30, APs: 5, Profile: OfficeProfile, Seed: 42}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Flows) != len(b.Flows) || len(a.Keepalives) != len(b.Keepalives) {
		t.Fatalf("non-deterministic sizes: %d/%d vs %d/%d",
			len(a.Flows), len(a.Keepalives), len(b.Flows), len(b.Keepalives))
	}
	for i := range a.Flows {
		if a.Flows[i] != b.Flows[i] {
			t.Fatalf("flow %d differs", i)
		}
	}
	c, err := Generate(Config{Clients: 30, APs: 5, Profile: OfficeProfile, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Flows) == len(a.Flows) && len(c.Keepalives) == len(a.Keepalives) {
		// Extremely unlikely to match on both counts with a different seed.
		same := true
		for i := range a.Flows {
			if a.Flows[i] != c.Flows[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical traces")
		}
	}
}

func TestGeneratedTraceValidates(t *testing.T) {
	tr, err := Generate(DefaultOfficeConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Flows) == 0 || len(tr.Keepalives) == 0 {
		t.Fatalf("empty trace: %d flows, %d keepalives", len(tr.Flows), len(tr.Keepalives))
	}
}

func TestClientPlacementBalanced(t *testing.T) {
	tr, err := Generate(DefaultSimConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, tr.Cfg.APs)
	for _, ap := range tr.ClientAP {
		counts[ap]++
	}
	for ap, n := range counts {
		if n < 6 || n > 7 { // 272/40 = 6.8
			t.Errorf("AP %d has %d clients, want 6-7", ap, n)
		}
	}
}

func TestZipfPlacementSkewedButTotal(t *testing.T) {
	tr, err := Generate(DefaultOfficeConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, tr.Cfg.APs)
	for _, ap := range tr.ClientAP {
		counts[ap]++
	}
	min, max, total := counts[0], counts[0], 0
	for _, n := range counts {
		total += n
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if total != tr.Cfg.Clients {
		t.Errorf("placement lost clients: %d", total)
	}
	if min < 1 {
		t.Errorf("an AP got zero clients")
	}
	if max < 3*min {
		t.Errorf("placement not skewed: min=%d max=%d", min, max)
	}
}

// Calibration: the office trace must reproduce Fig 3 — average AP
// utilization on 6 Mbps backhaul peaking around 8% at 16-17 h and near zero
// overnight.
func TestOfficeUtilizationMatchesFig3(t *testing.T) {
	tr, err := Generate(DefaultOfficeConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	m := tr.UtilizationMatrix(false, 24)
	mean := MeanUtilization(m)
	peak := mean[16]
	if peak < 0.05 || peak > 0.12 {
		t.Errorf("peak-hour (16-17h) mean utilization = %.4f, want 0.05-0.12 (paper ~0.08)", peak)
	}
	night := (mean[2] + mean[3] + mean[4]) / 3
	if night > 0.01 {
		t.Errorf("night utilization = %.4f, want < 0.01", night)
	}
	if night >= peak/4 {
		t.Errorf("no diurnal shape: night %.4f vs peak %.4f", night, peak)
	}
}

// Calibration: Fig 4 — during the peak hour, most per-AP idle time is made
// of inter-packet gaps shorter than 60 s. A single synthetic building-day
// is noisy (the >60 s mass is dominated by a few long lulls at small APs),
// so assert on the mean over several seeds.
func TestGapHistogramMatchesFig4(t *testing.T) {
	h := stats.NewVarHistogram(Fig4Edges())
	for seed := int64(1); seed <= 4; seed++ {
		tr, err := Generate(DefaultOfficeConfig(seed))
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Merge(tr.GapHistogram(16*3600, 17*3600)); err != nil {
			t.Fatal(err)
		}
	}
	below := h.FractionBelow(60)
	if below < 0.62 || below > 0.95 {
		t.Errorf("idle-time fraction in gaps <60s = %.3f, want 0.62-0.95 (paper >0.80)", below)
	}
	over := h.Fractions()[h.Bins()-1]
	if over < 0.05 || over > 0.38 {
		t.Errorf(">60s idle-time share = %.3f, want 0.05-0.38 (paper ~0.18)", over)
	}
}

// Calibration: "roughly 82% of the inter-packet gaps are lower than 60 s"
// (count-weighted, §5.1).
func TestGapCountsMatchPaper(t *testing.T) {
	tr, err := Generate(DefaultOfficeConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	h := tr.GapCountHistogram(16*3600, 17*3600)
	below := h.FractionBelow(60)
	if below < 0.80 {
		t.Errorf("count fraction of gaps <60s = %.3f, want >= 0.80", below)
	}
}

// Calibration: Fig 2 — residential average utilization peaks in the evening
// at a few percent; the median user is near zero.
func TestResidentialUtilizationMatchesFig2(t *testing.T) {
	tr, err := Generate(DefaultResidentialConfig(400, 6))
	if err != nil {
		t.Fatal(err)
	}
	m := tr.UtilizationMatrix(false, 24)
	mean := MeanUtilization(m)
	med := MedianUtilization(m)
	peakHour, peak := 0, 0.0
	for h, v := range mean {
		if v > peak {
			peak, peakHour = v, h
		}
	}
	if peak < 0.03 || peak > 0.12 {
		t.Errorf("residential peak mean utilization = %.4f, want 0.03-0.12 (paper <=0.09)", peak)
	}
	if peakHour < 18 && peakHour > 23 {
		t.Errorf("residential peak at hour %d, want evening", peakHour)
	}
	// Median utilization is an order of magnitude below the mean (Fig 2
	// right: 0.01-0.05% vs several percent).
	for h := 0; h < 24; h++ {
		if med[h] > mean[h] {
			t.Errorf("hour %d: median %.5f above mean %.5f", h, med[h], mean[h])
		}
	}
	medPeak := 0.0
	for _, v := range med {
		if v > medPeak {
			medPeak = v
		}
	}
	if medPeak > peak/3 {
		t.Errorf("median peak %.5f not far below mean peak %.5f", medPeak, peak)
	}
	// Uplink series exists and is non-trivial.
	up := MeanUtilization(tr.UtilizationMatrix(true, 24))
	var upPeak float64
	for _, v := range up {
		if v > upPeak {
			upPeak = v
		}
	}
	if upPeak <= 0 {
		t.Error("no uplink utilization generated")
	}
}

func TestMergeIntervals(t *testing.T) {
	in := []Interval{{5, 6}, {1, 2}, {2, 3}, {10, 10}, {9.5, 11}}
	out := MergeIntervals(in)
	want := []Interval{{1, 3}, {5, 6}, {9.5, 11}}
	if len(out) != len(want) {
		t.Fatalf("merged = %v, want %v", out, want)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("interval %d = %v, want %v", i, out[i], want[i])
		}
	}
	if MergeIntervals(nil) != nil {
		t.Error("nil merge should stay nil")
	}
}

// Property: merged intervals are sorted, non-overlapping, and cover exactly
// the union of the inputs (measured by total length on integer grids).
func TestMergeIntervalsProperty(t *testing.T) {
	f := func(pairs []struct{ A, B uint8 }) bool {
		iv := make([]Interval, 0, len(pairs))
		covered := map[int]bool{}
		for _, p := range pairs {
			lo, hi := int(p.A%50), int(p.B%50)
			if lo > hi {
				lo, hi = hi, lo
			}
			iv = append(iv, Interval{float64(lo), float64(hi)})
			for x := lo; x < hi; x++ {
				covered[x] = true
			}
		}
		out := MergeIntervals(iv)
		var total float64
		for i, v := range out {
			if v.End < v.Start {
				return false
			}
			if i > 0 && v.Start <= out[i-1].End {
				return false
			}
			total += v.End - v.Start
		}
		return math.Abs(total-float64(len(covered))) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGapHistogramAccountsAllIdleTime(t *testing.T) {
	tr, err := Generate(Config{Clients: 40, APs: 8, Profile: OfficeProfile, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	from, to := 16*3600.0, 17*3600.0
	h := tr.GapHistogram(from, to)
	// Total idle time = window*APs - total busy time.
	var busy float64
	for ap := 0; ap < tr.Cfg.APs; ap++ {
		for _, v := range tr.APActivity(ap, from, to) {
			busy += v.End - v.Start
		}
	}
	wantIdle := (to-from)*float64(tr.Cfg.APs) - busy
	if math.Abs(h.Total()-wantIdle) > 1.0 {
		t.Errorf("histogram idle total = %.1f, want %.1f", h.Total(), wantIdle)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	tr, err := Generate(Config{Clients: 25, APs: 5, Profile: OfficeProfile, Seed: 11, Uplink: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cfg.Clients != tr.Cfg.Clients || got.Cfg.APs != tr.Cfg.APs ||
		got.Cfg.BackhaulBps != tr.Cfg.BackhaulBps {
		t.Errorf("config mismatch: %+v vs %+v", got.Cfg, tr.Cfg)
	}
	if len(got.Flows) != len(tr.Flows) || len(got.Keepalives) != len(tr.Keepalives) {
		t.Fatalf("record counts differ")
	}
	for i := range tr.Flows {
		if got.Flows[i] != tr.Flows[i] {
			t.Fatalf("flow %d: %+v vs %+v", i, got.Flows[i], tr.Flows[i])
		}
	}
	for i := range tr.Keepalives {
		if got.Keepalives[i] != tr.Keepalives[i] {
			t.Fatalf("keepalive %d differs", i)
		}
	}
}

func TestReadBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("not a trace at all"))); err == nil {
		t.Error("expected error for bad magic")
	}
	if _, err := ReadBinary(bytes.NewReader(nil)); err == nil {
		t.Error("expected error for empty input")
	}
	// Truncated after magic.
	if _, err := ReadBinary(bytes.NewReader(binaryMagic)); err == nil {
		t.Error("expected error for truncated header")
	}
}

func TestWriteFlowsCSV(t *testing.T) {
	tr, err := Generate(Config{Clients: 10, APs: 2, Profile: OfficeProfile, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteFlowsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Count(buf.Bytes(), []byte("\n"))
	if lines != len(tr.Flows)+1 {
		t.Errorf("CSV has %d lines, want %d", lines, len(tr.Flows)+1)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte("start,client,bytes,rate,up\n")) {
		t.Error("missing CSV header")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	tr, err := Generate(Config{Clients: 10, APs: 2, Profile: OfficeProfile, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	cases := []func(*Trace){
		func(c *Trace) { c.ClientAP[0] = 99 },
		func(c *Trace) { c.Flows[0].Bytes = -1 },
		func(c *Trace) { c.Flows[0].Client = 1000 },
		func(c *Trace) {
			if len(c.Flows) > 1 {
				c.Flows[0].Start = c.Flows[len(c.Flows)-1].Start + 1e6
			}
		},
	}
	for i, corrupt := range cases {
		var buf bytes.Buffer
		if err := tr.WriteBinary(&buf); err != nil {
			t.Fatal(err)
		}
		cp, err := ReadBinary(&buf)
		if err != nil {
			t.Fatal(err)
		}
		corrupt(cp)
		if err := cp.Validate(); err == nil {
			t.Errorf("case %d: corruption not detected", i)
		}
	}
}

func TestTotalBytesAndClientsOfAP(t *testing.T) {
	tr := &Trace{
		Cfg:      Config{Clients: 3, APs: 2, Duration: 100}.withDefaults(),
		ClientAP: []int{0, 1, 0},
		Flows: []Flow{
			{Start: 1, Client: 0, Bytes: 100},
			{Start: 2, Client: 1, Bytes: 50, Up: true},
			{Start: 3, Client: 2, Bytes: 25},
		},
	}
	if got := tr.TotalBytes(false); got != 125 {
		t.Errorf("down bytes = %d", got)
	}
	if got := tr.TotalBytes(true); got != 50 {
		t.Errorf("up bytes = %d", got)
	}
	cs := tr.ClientsOfAP(0)
	if len(cs) != 2 || cs[0] != 0 || cs[1] != 2 {
		t.Errorf("ClientsOfAP(0) = %v", cs)
	}
}

func TestFlowsOnlySkipsKeepalives(t *testing.T) {
	tr, err := Generate(Config{Clients: 20, APs: 4, Profile: OfficeProfile, Seed: 19, FlowsOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Keepalives) != 0 {
		t.Errorf("FlowsOnly trace has %d keepalives", len(tr.Keepalives))
	}
	if len(tr.Flows) == 0 {
		t.Error("FlowsOnly trace has no flows")
	}
}

func TestFig4Edges(t *testing.T) {
	e := Fig4Edges()
	if len(e) != 25 {
		t.Fatalf("got %d edges, want 25", len(e))
	}
	if e[0] != 0 || e[21] != 21 || e[22] != 40 || e[23] != 60 || !math.IsInf(e[24], 1) {
		t.Errorf("edges = %v", e)
	}
}
