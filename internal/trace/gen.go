package trace

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"insomnia/internal/stats"
)

// Config parameterizes the synthetic trace generator. Zero values are
// replaced by defaults in Generate; see DefaultOfficeConfig and
// DefaultResidentialConfig for the two calibrated scenarios of the paper.
type Config struct {
	Clients  int     // number of terminal devices
	APs      int     // number of gateways / access points
	Duration float64 // trace length in seconds (default Day)

	BackhaulBps float64 // downlink access speed (default 6 Mbps)
	UplinkBps   float64 // uplink access speed (default 512 kbps)

	Profile Profile // time-of-day online fraction
	Seed    int64   // RNG seed; same seed => identical trace

	FlowsOnly bool // skip keepalive materialization (large-scale Fig 2 runs)
	Uplink    bool // emit uplink flows too (residential scenario)

	// Placement. Real client-AP association is skewed (lecture halls vs
	// corner offices); ZipfS > 0 draws AP popularity from a Zipf law with
	// that exponent. ZipfS == 0 places clients round-robin (balanced),
	// which is what the paper's simulation scenario does ("we uniformly
	// distribute the 272 clients over the 40 gateways").
	ZipfS float64

	// Symmetric switches the generator into exact-symmetry mode: clients
	// are placed strictly round-robin (client c on AP c%APs, no shuffle)
	// and each client's RNG stream is keyed by its slot c/APs instead of
	// its global index. Gateways that serve the same number of clients
	// then receive byte-identical workloads — the property the campaign
	// symmetry-collapse pass (internal/quotient) relies on. Incompatible
	// with ZipfS > 0.
	Symmetric bool

	// ClientWeightSigma adds per-client heterogeneity: each client's
	// online propensity and traffic intensity are scaled by a lognormal
	// factor with this sigma (mean 1). Zero means homogeneous clients.
	ClientWeightSigma float64

	// Traffic shape. Zero values take the calibrated defaults below.
	SessionMeanSec float64 // mean online session length
	FlowProb       float64 // probability an event epoch is a flow (vs keepalive)
	ThinkMedianSec float64 // median of the lognormal think-time component
	FlowBodyMedian float64 // lognormal median of typical web flows (bytes)
	BigFlowProb    float64 // probability a flow is a large download

	// StreamProb is the probability that an online session carries a
	// rate-limited media stream (internet radio, 2007-era video) for its
	// whole duration. Streams provide the sustained medium loads real
	// traces exhibit between bursty transfers; NoStreams disables them.
	StreamProb float64
	NoStreams  bool
}

// Calibrated defaults shared by both scenarios; see the calibration tests,
// which pin the generator to the paper's published statistics.
const (
	defSessionMean = 3600.0 // 1 h terminal sessions
	defFlowProb    = 0.4
	defThinkMedian = 7.0
	defBodyMedian  = 80e3
	defBigFlow     = 0.10

	thinkSigma    = 1.0  // lognormal sigma of short think times
	longGapProb   = 0.03 // probability of a heavy-tailed pause
	longGapAlpha  = 1.15 // bounded Pareto shape of long pauses
	longGapLo     = 20.0
	longGapHi     = 600.0
	flowBodySigma = 1.4  // lognormal sigma of web flow bodies
	bigFlowAlpha  = 1.05 // bounded Pareto shape of large downloads
	bigFlowLo     = 5e5  // 500 kB
	bigFlowHi     = 8e6  // 8 MB: a single flow cannot saturate a 60 s window
	keepaliveBase = 60   // bytes
	keepaliveMean = 100.0
	ackFraction   = 0.03 // uplink ACK volume per downlink flow
	uploadProb    = 0.04 // probability a flow has a companion upload
	uploadScale   = 0.5  // companion upload size factor

	defStreamProb   = 0.15  // sessions carrying a media stream
	streamRateMed   = 250e3 // lognormal median stream rate, bps (FLV-era video)
	streamRateSigma = 0.5
	streamRateMin   = 48e3
	streamRateMax   = 500e3
	streamChunkSec  = 240.0 // median media chunk (song / clip) length

	// Engaged/quiet spells within a session: a user browses actively for a
	// few minutes, then leaves the machine alone (reading, meetings) —
	// silent at packet level, since 2007-era idle laptops sent next to
	// nothing. These quiet stretches are what let plain SoI put some
	// gateways to sleep even during working hours (Fig 10, density 1).
	engagedMeanSec = 200.0
	quietAlpha     = 1.15
	quietLoSec     = 30.0
	quietHiSec     = 240.0
)

func (c Config) withDefaults() Config {
	if c.Duration == 0 {
		c.Duration = Day
	}
	if c.BackhaulBps == 0 {
		c.BackhaulBps = DefaultBackhaulBps
	}
	if c.UplinkBps == 0 {
		c.UplinkBps = 512e3
	}
	if c.SessionMeanSec == 0 {
		c.SessionMeanSec = defSessionMean
	}
	if c.FlowProb == 0 {
		c.FlowProb = defFlowProb
	}
	if c.ThinkMedianSec == 0 {
		c.ThinkMedianSec = defThinkMedian
	}
	if c.FlowBodyMedian == 0 {
		c.FlowBodyMedian = defBodyMedian
	}
	if c.BigFlowProb == 0 {
		c.BigFlowProb = defBigFlow
	}
	if c.StreamProb == 0 && !c.NoStreams {
		c.StreamProb = defStreamProb
	}
	if c.NoStreams {
		c.StreamProb = 0
	}
	return c
}

// DefaultOfficeConfig is the UCSD-CSE-like scenario behind Figs 3 and 4:
// 272 clients on 40 APs with 6 Mbps backhaul, downlink only, skewed
// client-AP association as in a real building.
func DefaultOfficeConfig(seed int64) Config {
	return Config{
		Clients: 272, APs: 40, Profile: OfficeProfile, Seed: seed,
		ZipfS: 1.0, ClientWeightSigma: 0.6,
	}
}

// DefaultSimConfig is the trace used by the §5 simulation scenario: same
// traffic as the office trace but with the paper's uniform client placement.
func DefaultSimConfig(seed int64) Config {
	c := DefaultOfficeConfig(seed)
	c.ZipfS = 0
	return c
}

// DefaultCityConfig is the city-scale benchmark scenario: 10,000
// residential gateways serving 100,000 terminal devices (~10 devices per
// household gateway) under the evening-peak residential profile. Unlike
// DefaultResidentialConfig it keeps keepalives materialized — the
// "continuous light traffic" is exactly what the engine's hot path has to
// survive at scale — and uses moderate per-client skew. Pair it with
// topology.GridCity (OverlapGraph does not scale to 10k gateways) and
// override Duration for bounded benchmark runs; see cmd/bench.
func DefaultCityConfig(seed int64) Config {
	return Config{
		Clients: 100_000, APs: 10_000, Profile: ResidentialProfile, Seed: seed,
		ClientWeightSigma: 1.0,
		SessionMeanSec:    5400,
		FlowBodyMedian:    200e3,
		BigFlowProb:       0.30,
	}
}

// DefaultResidentialConfig is the Fig 2 scenario scaled to n subscribers:
// one client per gateway, evening-peak profile, heavier per-user traffic
// (streaming/P2P era), strong across-subscriber skew, down+uplink.
func DefaultResidentialConfig(n int, seed int64) Config {
	return Config{
		Clients: n, APs: n, Profile: ResidentialProfile, Seed: seed,
		Uplink: true, FlowsOnly: true,
		ClientWeightSigma: 1.5,
		SessionMeanSec:    5400,
		FlowProb:          0.8,
		ThinkMedianSec:    4,
		FlowBodyMedian:    200e3,
		BigFlowProb:       0.45,
	}
}

// Generate synthesizes a trace from cfg. It is deterministic in cfg
// (including Seed).
func Generate(cfg Config) (*Trace, error) {
	cfg = cfg.withDefaults()
	if cfg.Clients <= 0 || cfg.APs <= 0 {
		return nil, fmt.Errorf("trace: need positive Clients and APs, got %d/%d", cfg.Clients, cfg.APs)
	}
	if cfg.Clients < cfg.APs {
		return nil, fmt.Errorf("trace: fewer clients (%d) than APs (%d)", cfg.Clients, cfg.APs)
	}
	if cfg.Symmetric && cfg.ZipfS > 0 {
		return nil, fmt.Errorf("trace: Symmetric placement is incompatible with ZipfS > 0")
	}
	tr := &Trace{Cfg: cfg, ClientAP: make([]int, cfg.Clients)}
	if ef, ek := expectedEvents(cfg); ef > 0 || ek > 0 {
		tr.Flows = make([]Flow, 0, ef)
		tr.Keepalives = make([]Packet, 0, ek)
	}

	placeRNG := stats.NewRNG(cfg.Seed, 0x9a7e)
	if cfg.Symmetric {
		// Exact-symmetry placement: no RNG involvement, client c sits on
		// AP c%APs so AP g's clients occupy slots 0..count(g)-1.
		for c := 0; c < cfg.Clients; c++ {
			tr.ClientAP[c] = c % cfg.APs
		}
	} else if cfg.ZipfS > 0 {
		// Zipf AP popularity in a random AP order, but guarantee every AP
		// at least one client so no gateway is structurally dead.
		weights := make([]float64, cfg.APs)
		order := placeRNG.Perm(cfg.APs)
		for rank, ap := range order {
			weights[ap] = 1 / math.Pow(float64(rank+1), cfg.ZipfS)
		}
		for c := 0; c < cfg.Clients; c++ {
			if c < cfg.APs {
				tr.ClientAP[c] = order[c]
				continue
			}
			tr.ClientAP[c] = stats.WeightedChoice(placeRNG, weights)
		}
		placeRNG.Shuffle(cfg.Clients, func(i, j int) {
			tr.ClientAP[i], tr.ClientAP[j] = tr.ClientAP[j], tr.ClientAP[i]
		})
	} else {
		// Balanced round-robin over a shuffled client order.
		perm := placeRNG.Perm(cfg.Clients)
		for i, c := range perm {
			tr.ClientAP[c] = i % cfg.APs
		}
	}

	// One generator reseeded per client instead of one allocated per
	// client: math/rand's source alone is ~5 KB, which at city scale
	// (100k clients) accounted for most of the generator's heap churn.
	// Reseed reproduces NewRNG's state exactly, so traces are unchanged.
	r := stats.NewRNG(cfg.Seed, 0x1000)
	for c := 0; c < cfg.Clients; c++ {
		key := uint64(c)
		if cfg.Symmetric {
			// Slot-keyed streams: clients in the same slot on different
			// APs draw identical event sequences (see Config.Symmetric).
			key = uint64(c / cfg.APs)
		}
		stats.Reseed(r, cfg.Seed, 0x1000+key)
		w := 1.0
		if cfg.ClientWeightSigma > 0 {
			s := cfg.ClientWeightSigma
			w = stats.Lognormal(r, -s*s/2, s) // mean 1
		}
		genClient(tr, int32(c), r, cfg, w)
	}
	sort.Slice(tr.Flows, func(i, j int) bool { return tr.Flows[i].Start < tr.Flows[j].Start })
	sort.Slice(tr.Keepalives, func(i, j int) bool { return tr.Keepalives[i].T < tr.Keepalives[j].T })
	return tr, nil
}

// boundedParetoMean is the mean of the bounded Pareto(alpha, lo, hi)
// distribution stats.Pareto draws from.
func boundedParetoMean(alpha, lo, hi float64) float64 {
	la, ha := math.Pow(lo, alpha), math.Pow(hi, alpha)
	return la / (1 - la/ha) * alpha / (alpha - 1) *
		(math.Pow(lo, 1-alpha) - math.Pow(hi, 1-alpha))
}

// expectedEvents estimates the flow and keepalive counts of a trace from
// the generator's own calibrated process parameters, so Generate can size
// its event slices once instead of growing them through doublings (at city
// scale the wasted growth copies are tens of millions of events). The
// estimate only controls capacity — a miss in either direction is
// harmless — but it tracks the realized counts within ~20%.
func expectedEvents(cfg Config) (flows, keepalives int) {
	// Mean online fraction over the trace, sampled from the profile.
	const samples = 96
	mean := 0.0
	for i := 0; i < samples; i++ {
		mean += cfg.Profile.At((float64(i) + 0.5) * cfg.Duration / samples)
	}
	mean /= samples
	if mean <= 0 {
		return 0, 0
	}
	if s := cfg.ClientWeightSigma; s > 0 {
		// Per-client weights are lognormal with mean 1, but the online
		// fraction is capped at 0.98, so heavy users contribute less than
		// weight*mean. Average min(mean*w, 0.98) over weight quantiles.
		const wq = 32
		capped := 0.0
		for i := 0; i < wq; i++ {
			p := (float64(i) + 0.5) / wq
			w := math.Exp(-s*s/2 + s*math.Sqrt2*math.Erfinv(2*p-1))
			capped += math.Min(mean*w, 0.98)
		}
		mean = capped / wq
	}

	// Event epochs happen during the engaged parts of online time, one per
	// think gap (a lognormal/long-pause mixture; see thinkGap).
	thinkMean := (1-longGapProb)*cfg.ThinkMedianSec*math.Exp(thinkSigma*thinkSigma/2) +
		longGapProb*boundedParetoMean(longGapAlpha, longGapLo, longGapHi)
	engagedFrac := engagedMeanSec /
		(engagedMeanSec + boundedParetoMean(quietAlpha, quietLoSec, quietHiSec))
	onlineSec := mean * cfg.Duration // per client
	epochs := onlineSec * engagedFrac / thinkMean

	flowsPer := epochs * cfg.FlowProb
	if cfg.Uplink {
		flowsPer *= 2 + uploadProb // every flow gets an ACK, some an upload
	}
	if cfg.StreamProb > 0 {
		sessions := onlineSec/cfg.SessionMeanSec + mean
		flowsPer += sessions * cfg.StreamProb * cfg.SessionMeanSec / streamChunkSec
	}
	kaPer := 0.0
	if !cfg.FlowsOnly {
		kaPer = epochs * (1 - cfg.FlowProb)
	}
	n := float64(cfg.Clients)
	const headroom = 1.15
	return int(n*flowsPer*headroom) + 64, int(n*kaPer*headroom) + 64
}

// genClient simulates one client's day: an on/off terminal-session process
// whose stationary online fraction tracks weight*cfg.Profile, with event
// epochs (flows or keepalives) during online periods.
func genClient(tr *Trace, client int32, r *rand.Rand, cfg Config, weight float64) {
	// Two-state Markov process with time-varying on-rate. Off->On rate
	// r_on(t) = a(t) / (S * (1 - a(t))) gives stationary online fraction
	// a(t) when On->Off rate is 1/S. Simulated by thinning at rMax.
	S := cfg.SessionMeanSec
	online := func(t float64) float64 {
		a := cfg.Profile.At(t) * weight
		if a > 0.98 {
			a = 0.98
		}
		return a
	}
	aMax := cfg.Profile.Max() * weight
	if aMax > 0.98 {
		aMax = 0.98
	}
	rMax := aMax / (S * (1 - aMax))
	onRate := func(t float64) float64 {
		a := online(t)
		return a / (S * (1 - a))
	}

	t := 0.0
	isOn := r.Float64() < online(0)
	var sessionEnd, spellEnd float64
	engaged := true
	if isOn {
		sessionEnd = stats.Exp(r, S)
		spellEnd = stats.Exp(r, engagedMeanSec)
		maybeStream(tr, client, r, cfg, t, sessionEnd)
	}
	for t < cfg.Duration {
		if !isOn {
			for t < cfg.Duration {
				t += stats.Exp(r, 1/rMax)
				if r.Float64() < onRate(t)/rMax {
					break
				}
			}
			if t >= cfg.Duration {
				return
			}
			isOn = true
			sessionEnd = t + stats.Exp(r, S)
			engaged = true
			spellEnd = t + stats.Exp(r, engagedMeanSec)
			maybeStream(tr, client, r, cfg, t, sessionEnd)
			continue
		}
		if t >= spellEnd {
			// Toggle between active browsing and packet-silent spells.
			engaged = !engaged
			if engaged {
				spellEnd = t + stats.Exp(r, engagedMeanSec)
			} else {
				spellEnd = t + stats.Pareto(r, quietAlpha, quietLoSec, quietHiSec)
			}
		}
		if !engaged {
			// Jump silently to the end of the quiet spell (or session).
			t = spellEnd
			if t >= sessionEnd || t >= cfg.Duration {
				t = sessionEnd
				isOn = false
			}
			continue
		}
		t += thinkGap(r, cfg)
		if t >= sessionEnd || t >= cfg.Duration {
			t = sessionEnd
			isOn = false
			continue
		}
		if r.Float64() < cfg.FlowProb {
			size := flowSize(r, cfg, weight)
			tr.Flows = append(tr.Flows, Flow{Start: t, Client: client, Bytes: size})
			if cfg.Uplink {
				ack := int64(float64(size) * ackFraction)
				if ack < 40 {
					ack = 40
				}
				tr.Flows = append(tr.Flows, Flow{Start: t, Client: client, Bytes: ack, Up: true})
				if r.Float64() < uploadProb {
					up := int64(float64(flowSize(r, cfg, weight)) * uploadScale)
					if up < 1000 {
						up = 1000
					}
					tr.Flows = append(tr.Flows, Flow{Start: t, Client: client, Bytes: up, Up: true})
				}
			}
		} else if !cfg.FlowsOnly {
			b := keepaliveBase + int32(stats.Exp(r, keepaliveMean))
			if b > 1400 {
				b = 1400
			}
			tr.Keepalives = append(tr.Keepalives, Packet{T: t, Client: client, Bytes: b})
		}
	}
}

// maybeStream emits a rate-limited media stream spanning a session with
// probability cfg.StreamProb. Media plays in chunks (songs, clips, video
// segments of a few minutes), so the stream is a back-to-back sequence of
// rate-capped flows: each chunk is new traffic and re-routes through the
// terminal's current gateway — exactly how BH² migrates long-lived media
// sessions without dropping flows (§5.1).
func maybeStream(tr *Trace, client int32, r *rand.Rand, cfg Config, start, end float64) {
	if r.Float64() >= cfg.StreamProb {
		return
	}
	if end > cfg.Duration {
		end = cfg.Duration
	}
	if end-start < 60 {
		return // too short to bother tuning in
	}
	rate := stats.Lognormal(r, math.Log(streamRateMed), streamRateSigma)
	if rate < streamRateMin {
		rate = streamRateMin
	}
	if rate > streamRateMax {
		rate = streamRateMax
	}
	for t := start; t < end; {
		chunk := stats.Lognormal(r, math.Log(streamChunkSec), 0.4)
		if t+chunk > end {
			chunk = end - t
		}
		if chunk < 10 {
			break
		}
		tr.Flows = append(tr.Flows, Flow{
			Start: t, Client: client,
			Bytes: int64(rate / 8 * chunk),
			Rate:  rate,
		})
		t += chunk
	}
}

// thinkGap draws one inter-event gap: mostly short lognormal think times
// with an occasional heavy-tailed pause. The mixture is what produces the
// Fig 4 idle-gap histogram: the bulk of idle time in sub-60 s gaps with a
// 15-20% tail beyond 60 s.
func thinkGap(r *rand.Rand, cfg Config) float64 {
	if r.Float64() < longGapProb {
		return stats.Pareto(r, longGapAlpha, longGapLo, longGapHi)
	}
	return stats.Lognormal(r, math.Log(cfg.ThinkMedianSec), thinkSigma)
}

// flowSize draws a flow size in bytes: lognormal web bodies with a bounded
// Pareto tail of large downloads. The client weight scales the chance of a
// heavy download, not the body size — heavy users are heavy because they
// fetch more and bigger things, not because their pages differ.
func flowSize(r *rand.Rand, cfg Config, weight float64) int64 {
	bigP := cfg.BigFlowProb * weight
	if bigP > 0.6 {
		bigP = 0.6
	}
	var s float64
	if r.Float64() < bigP {
		s = stats.Pareto(r, bigFlowAlpha, bigFlowLo, bigFlowHi)
	} else {
		s = stats.Lognormal(r, math.Log(cfg.FlowBodyMedian), flowBodySigma)
	}
	if s < 200 {
		s = 200
	}
	return int64(s)
}
