package trace

// Profile is a 24-point time-of-day modulation curve; the generator
// interpolates it linearly (wrapping at midnight). Values are the fraction
// of terminals that are online ("terminal powered with a user logged in")
// at that hour.
type Profile [24]float64

// At returns the linearly interpolated value at time t seconds-of-day.
func (p Profile) At(t float64) float64 {
	for t < 0 {
		t += Day
	}
	for t >= Day {
		t -= Day
	}
	h := t / 3600
	i := int(h)
	frac := h - float64(i)
	j := (i + 1) % 24
	return p[i]*(1-frac) + p[j]*frac
}

// Max returns the curve's maximum.
func (p Profile) Max() float64 {
	m := p[0]
	for _, v := range p[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// OfficeProfile mimics the UCSD CSE building trace (Thursday): activity
// ramps from near-zero overnight to a 16-17 h peak and decays in the
// evening. Calibrated so that, with ~6.8 clients per AP, the fraction of APs
// with any active client tracks Fig 7's SoI curve (3-4 online gateways
// overnight, ≈95% of gateways forced on at the 15-17 h peak).
var OfficeProfile = Profile{
	0.030, 0.022, 0.015, 0.013, 0.013, 0.015, // 0-5 h
	0.025, 0.060, 0.130, 0.260, 0.380, 0.470, // 6-11 h
	0.500, 0.540, 0.600, 0.660, 0.700, 0.640, // 12-17 h
	0.480, 0.340, 0.220, 0.140, 0.085, 0.050, // 18-23 h
}

// ResidentialProfile mimics the 10 K-subscriber commercial ADSL dataset of
// Fig 2: a morning shoulder, an afternoon plateau and an evening peak at
// 21-22 h, with the overnight trough at 4-6 h.
var ResidentialProfile = Profile{
	0.180, 0.120, 0.080, 0.055, 0.045, 0.050, // 0-5 h
	0.070, 0.100, 0.140, 0.170, 0.200, 0.220, // 6-11 h
	0.240, 0.250, 0.250, 0.260, 0.280, 0.310, // 12-17 h
	0.360, 0.420, 0.490, 0.540, 0.480, 0.320, // 18-23 h
}
