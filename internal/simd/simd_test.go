package simd

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"insomnia/internal/campaign"
	"insomnia/internal/dsl"
	"insomnia/internal/runner"
)

// testSpec is small enough for fast lifecycle tests: 2 schemes x 2 seeds
// of a 1-hour office scenario = 4 cells, every artifact kind.
const testSpec = `
name: simd-unit
schemes: [no-sleep, SoI]
seeds: [1, 2]
duration: 3600
trace:
  profile: office
  clients: 48
  gateways: 8
topology:
  kind: overlap
  mean_in_range: 5
outputs: [summary, json, power]
`

// slowSpec runs its cells one at a time (workers: 1) with enough of them
// that a prompt cancel or kill lands mid-run, between checkpoints.
const slowSpec = `
name: simd-slow
workers: 1
schemes: [no-sleep, SoI, SoI+k-switch, BH2+k-switch]
seeds: [1, 2, 3]
duration: 14400
trace:
  profile: residential
  clients: 240
  gateways: 60
topology:
  kind: grid-city
  mean_in_range: 4.5
outputs: [summary, json]
`

func newTestServer(t *testing.T, dataDir string, budget *runner.Budget) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(context.Background(), dataDir, budget)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { hs.Close(); srv.Close() })
	return srv, hs
}

func submit(t *testing.T, baseURL, spec string) Status {
	t.Helper()
	st, code := submitRaw(t, baseURL, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: got %d, want 202", code)
	}
	return st
}

func submitRaw(t *testing.T, baseURL, spec string) (Status, int) {
	t.Helper()
	resp, err := http.Post(baseURL+"/v1/campaigns", "application/yaml", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return st, resp.StatusCode
}

func getStatus(t *testing.T, baseURL, id string) Status {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/campaigns/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s: got %d", id, resp.StatusCode)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitState polls the status endpoint until the job leaves "running".
func waitState(t *testing.T, baseURL, id string) Status {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		st := getStatus(t, baseURL, id)
		if st.State != "running" {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still running after 2m", id)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// readSSE consumes the events stream until the done event, returning the
// row events in arrival order and the closing status.
func readSSE(t *testing.T, baseURL, id string) ([]campaign.RowEvent, Status) {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/campaigns/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type %q", ct)
	}
	var (
		rows  []campaign.RowEvent
		final Status
		event string
	)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "row":
				var ev campaign.RowEvent
				if err := json.Unmarshal([]byte(data), &ev); err != nil {
					t.Fatalf("bad row event %q: %v", data, err)
				}
				rows = append(rows, ev)
			case "done":
				if err := json.Unmarshal([]byte(data), &final); err != nil {
					t.Fatalf("bad done event %q: %v", data, err)
				}
				return rows, final
			}
		}
	}
	t.Fatalf("events stream ended without done event (read %d rows): %v", len(rows), sc.Err())
	return nil, Status{}
}

func getArtifact(t *testing.T, baseURL, id, name string) (string, int) {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/campaigns/" + id + "/artifacts/" + name)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(buf), resp.StatusCode
}

// directArtifacts runs the spec through the campaign API directly — what
// cmd/campaign does — and returns the artifact bytes by name.
func directArtifacts(t *testing.T, specText string) map[string]string {
	t.Helper()
	spec, err := dsl.ParseSpec([]byte(specText))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	job, err := campaign.Submit(context.Background(), spec, campaign.Options{OutDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]string{}
	for _, a := range res.Artifacts {
		buf, err := os.ReadFile(a)
		if err != nil {
			t.Fatal(err)
		}
		out[filepath.Base(a)] = string(buf)
	}
	return out
}

// TestServerLifecycle is the end-to-end contract: submit a spec, stream
// its rows over SSE in cell order, and collect artifacts byte-identical
// to a direct cmd/campaign-style run of the same spec.
func TestServerLifecycle(t *testing.T) {
	_, hs := newTestServer(t, t.TempDir(), nil)
	st := submit(t, hs.URL, testSpec)
	if st.ID == "" || st.State != "running" || st.Cells != 4 {
		t.Fatalf("unexpected submit status: %+v", st)
	}

	rows, final := readSSE(t, hs.URL, st.ID)
	if len(rows) != 4 {
		t.Fatalf("got %d row events, want 4", len(rows))
	}
	for i, ev := range rows {
		if ev.Index != i {
			t.Errorf("row %d has index %d: events must arrive in cell order", i, ev.Index)
		}
		if ev.Err != "" || ev.Row == nil {
			t.Errorf("row %d: unexpected failure %q", i, ev.Err)
		}
		if ev.Total != 4 {
			t.Errorf("row %d: total %d, want 4", i, ev.Total)
		}
	}
	if final.State != "done" || final.Done != 4 {
		t.Fatalf("final status %+v, want done 4/4", final)
	}

	// A second subscriber after completion replays the identical stream.
	replay, _ := readSSE(t, hs.URL, st.ID)
	if len(replay) != len(rows) {
		t.Fatalf("replay delivered %d events, want %d", len(replay), len(rows))
	}

	want := directArtifacts(t, testSpec)
	if len(want) != 3 {
		t.Fatalf("direct run wrote %d artifacts, want 3", len(want))
	}
	for name, body := range want {
		got, code := getArtifact(t, hs.URL, st.ID, name)
		if code != http.StatusOK {
			t.Fatalf("artifact %s: got %d", name, code)
		}
		if got != body {
			t.Errorf("artifact %s differs from direct campaign run", name)
		}
	}
}

// TestServerSymmetricExample is the acceptance end-to-end: POST the real
// examples/campaign/symmetric.yaml (10,000 terminals on a 2,000-gateway
// grid, collapsed to 3 classes) and prove the served artifacts are
// byte-identical to a cmd/campaign-style run of the same spec.
func TestServerSymmetricExample(t *testing.T) {
	specBytes, err := os.ReadFile(filepath.Join("..", "..", "examples", "campaign", "symmetric.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	_, hs := newTestServer(t, t.TempDir(), nil)
	st := submit(t, hs.URL, string(specBytes))
	final := waitState(t, hs.URL, st.ID)
	if final.State != "done" {
		t.Fatalf("job finished %q (%s), want done", final.State, final.Error)
	}
	if len(final.Collapsed) == 0 {
		t.Fatal("symmetric metro did not report a collapse")
	}
	want := directArtifacts(t, string(specBytes))
	if len(want) == 0 {
		t.Fatal("direct run wrote no artifacts")
	}
	for name, body := range want {
		got, code := getArtifact(t, hs.URL, st.ID, name)
		if code != http.StatusOK {
			t.Fatalf("artifact %s: got %d", name, code)
		}
		if got != body {
			t.Errorf("artifact %s differs from direct campaign run", name)
		}
	}
}

// TestServerErrorMapping pins the error taxonomy -> HTTP status mapping.
func TestServerErrorMapping(t *testing.T) {
	_, hs := newTestServer(t, t.TempDir(), nil)
	if _, code := submitRaw(t, hs.URL, "schemes: [warp-drive]\ntrace: {clients: 10, gateways: 5}"); code != http.StatusBadRequest {
		t.Errorf("unknown scheme: got %d, want 400", code)
	}
	if _, code := submitRaw(t, hs.URL, "{not yaml: ["); code != http.StatusBadRequest {
		t.Errorf("malformed spec: got %d, want 400", code)
	}
	resp, err := http.Get(hs.URL + "/v1/campaigns/c9999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: got %d, want 404", resp.StatusCode)
	}
	st := submit(t, hs.URL, slowSpec)
	if _, code := getArtifact(t, hs.URL, st.ID, "summary.csv"); code != http.StatusConflict {
		t.Errorf("artifact while running: got %d, want 409", code)
	}
	if _, code := getArtifact(t, hs.URL, st.ID, "../spec.yaml"); code != http.StatusNotFound {
		t.Errorf("non-artifact path: got %d, want 404", code)
	}
}

// TestServerCancelFreesBudget cancels a job mid-run: the job settles as
// canceled promptly and every budget slot is back, ready for other jobs.
func TestServerCancelFreesBudget(t *testing.T) {
	budget := runner.NewBudget(2)
	_, hs := newTestServer(t, t.TempDir(), budget)
	st := submit(t, hs.URL, slowSpec)

	// Let it actually start simulating before canceling.
	deadline := time.Now().Add(time.Minute)
	for budget.InUse() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("job never acquired a budget slot")
		}
		time.Sleep(5 * time.Millisecond)
	}
	req, err := http.NewRequest(http.MethodDelete, hs.URL+"/v1/campaigns/"+st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: got %d, want 202", resp.StatusCode)
	}
	final := waitState(t, hs.URL, st.ID)
	if final.State != "canceled" {
		t.Fatalf("state %q after cancel, want canceled", final.State)
	}
	if n := budget.InUse(); n != 0 {
		t.Fatalf("%d budget slots still held after cancel", n)
	}
	// A fresh job on the same server runs to completion on the freed slots.
	st2 := submit(t, hs.URL, testSpec)
	if final := waitState(t, hs.URL, st2.ID); final.State != "done" {
		t.Fatalf("job after cancel finished %q, want done", final.State)
	}
}

// TestServerConcurrentJobsShareBudget submits two jobs whose cell counts
// both exceed the server-wide budget: both must complete, and the
// concurrency ceiling must hold throughout.
func TestServerConcurrentJobsShareBudget(t *testing.T) {
	budget := runner.NewBudget(2) // smaller than either job's 4 cells
	_, hs := newTestServer(t, t.TempDir(), budget)

	a := submit(t, hs.URL, testSpec)
	b := submit(t, hs.URL, strings.Replace(testSpec, "name: simd-unit", "name: simd-unit-b", 1))
	deadline := time.Now().Add(2 * time.Minute)
	var fa, fb Status
	for {
		if n := budget.InUse(); n > budget.Slots() {
			t.Fatalf("budget ceiling exceeded: %d slots in use of %d", n, budget.Slots())
		}
		fa, fb = getStatus(t, hs.URL, a.ID), getStatus(t, hs.URL, b.ID)
		if fa.State != "running" && fb.State != "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("jobs still running after 2m: %q/%q", fa.State, fb.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if fa.State != "done" || fb.State != "done" {
		t.Fatalf("states %q/%q, want done/done", fa.State, fb.State)
	}
	if fa.Done != 4 || fb.Done != 4 {
		t.Fatalf("done %d/%d, want 4/4", fa.Done, fb.Done)
	}
	// Both jobs' artifacts match a direct run: fair interleaving under a
	// shared budget never leaks into the output bytes.
	want := directArtifacts(t, testSpec)
	for _, id := range []string{a.ID, b.ID} {
		got, code := getArtifact(t, hs.URL, id, "summary.csv")
		if code != http.StatusOK || got != want["summary.csv"] {
			t.Errorf("job %s summary.csv differs from direct run (code %d)", id, code)
		}
	}
}

// TestServerRestartResumes kills a server mid-campaign (context cancel,
// the graceful-shutdown path a SIGINT takes) and starts a fresh server on
// the same data directory: the job must resume from its manifest — cells
// completed before the kill are restored, not re-simulated — and finish
// with artifacts byte-identical to an uninterrupted run.
func TestServerRestartResumes(t *testing.T) {
	dataDir := t.TempDir()
	ctxA, killA := context.WithCancel(context.Background())
	srvA, err := New(ctxA, dataDir, nil)
	if err != nil {
		t.Fatal(err)
	}
	hsA := httptest.NewServer(srvA.Handler())
	st := submit(t, hsA.URL, slowSpec)

	// Wait until at least one cell is checkpointed, then kill the server.
	deadline := time.Now().Add(time.Minute)
	for getStatus(t, hsA.URL, st.ID).Done == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no cell completed within 1m")
		}
		time.Sleep(10 * time.Millisecond)
	}
	killA()
	srvA.Close()
	hsA.Close()

	// The dying server must leave the job resumable, not canceled.
	buf, err := os.ReadFile(filepath.Join(dataDir, "jobs", st.ID, "status.json"))
	if err != nil {
		t.Fatal(err)
	}
	var persisted Status
	if err := json.Unmarshal(buf, &persisted); err != nil {
		t.Fatal(err)
	}
	if persisted.State != "running" {
		t.Fatalf("killed server persisted state %q, want running", persisted.State)
	}
	checkpointed := persisted.Done
	if checkpointed == 0 {
		t.Fatal("killed server persisted no completed cells")
	}

	_, hsB := newTestServer(t, dataDir, nil)
	final := waitState(t, hsB.URL, st.ID)
	if final.State != "done" || final.Done != final.Cells {
		t.Fatalf("resumed job finished %+v, want done %d/%d", final, final.Cells, final.Cells)
	}
	// The resumed stream replays the restored cells as cached events.
	rows, _ := readSSE(t, hsB.URL, st.ID)
	cached := 0
	for _, ev := range rows {
		if ev.Cached {
			cached++
		}
	}
	if cached < checkpointed {
		t.Errorf("replayed %d cached events, want >= %d checkpointed cells", cached, checkpointed)
	}
	want := directArtifacts(t, slowSpec)
	for name, body := range want {
		got, code := getArtifact(t, hsB.URL, st.ID, name)
		if code != http.StatusOK {
			t.Fatalf("artifact %s after resume: got %d", name, code)
		}
		if got != body {
			t.Errorf("artifact %s differs between resumed and uninterrupted runs", name)
		}
	}
}

// TestSubmitWorkersKeyHonored: the spec's workers key caps the job's own
// pool (visible through the shared budget's high-water mark).
func TestSubmitWorkersKeyHonored(t *testing.T) {
	budget := runner.NewBudget(8)
	_, hs := newTestServer(t, t.TempDir(), budget)
	spec := strings.Replace(testSpec, "name: simd-unit", "name: simd-serial\nworkers: 1", 1)
	st := submit(t, hs.URL, spec)
	peak := 0
	for getStatus(t, hs.URL, st.ID).State == "running" {
		if n := budget.InUse(); n > peak {
			peak = n
		}
		time.Sleep(time.Millisecond)
	}
	if peak > 1 {
		t.Fatalf("workers: 1 spec peaked at %d concurrent simulations", peak)
	}
	if final := getStatus(t, hs.URL, st.ID); final.State != "done" {
		t.Fatalf("job finished %q, want done", final.State)
	}
}
