// Package simd implements the campaign server behind cmd/simd:
// simulation-as-a-service over the exact spec schema cmd/campaign runs
// from files. A POST submits a YAML or JSON campaign spec and returns a
// job ID; the job's per-cell rows stream over SSE; its artifacts —
// byte-identical to a cmd/campaign run of the same spec — are served once
// the job finishes.
//
// Every job owns one directory under <data>/jobs/<id> holding the posted
// spec, a status file and the campaign's own manifest + artifacts. The
// manifest checkpoint makes the server crash-tolerant: a restarted server
// finds jobs whose persisted state is still "running" and resubmits them
// with Resume, so completed cells are restored instead of re-simulated.
//
// All jobs share one runner.Budget: however many campaigns are in flight,
// the server never runs more concurrent simulations than its -budget.
package simd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"insomnia/internal/campaign"
	"insomnia/internal/dsl"
	"insomnia/internal/runner"
)

// maxSpecBytes bounds a posted spec; real specs are a few KB.
const maxSpecBytes = 1 << 20

// artifactTypes whitelists the servable artifact names. Everything else
// in a job directory (spec, status, manifest) is server-internal.
var artifactTypes = map[string]string{
	"summary.csv":  "text/csv; charset=utf-8",
	"results.json": "application/json",
	"power.csv":    "text/csv; charset=utf-8",
}

// Status is one job's public state: the GET /v1/campaigns/{id} body, one
// element of the list body, the SSE done event, and — for finished jobs —
// the on-disk status.json that survives restarts.
type Status struct {
	ID    string `json:"id"`
	Name  string `json:"name"`
	State string `json:"state"` // running | done | failed | canceled
	Cells int    `json:"cells"`
	// Done counts cells with a successful row so far.
	Done      int                     `json:"done"`
	Failed    []string                `json:"failed,omitempty"`
	Error     string                  `json:"error,omitempty"`
	Artifacts []string                `json:"artifacts,omitempty"`
	Collapsed []campaign.CollapseNote `json:"collapsed,omitempty"`
}

// jobState is the server's view of one job: the live campaign.Job (nil
// for jobs restored already-finished), its replayable event log, and the
// mutable status snapshot.
type jobState struct {
	id    string
	dir   string
	name  string
	cells int
	log   *eventLog
	job   *campaign.Job

	mu           sync.Mutex
	state        string
	errMsg       string
	done         int
	failed       []string
	artifacts    []string
	collapsed    []campaign.CollapseNote
	userCanceled bool
}

func (st *jobState) status() Status {
	st.mu.Lock()
	defer st.mu.Unlock()
	return Status{
		ID: st.id, Name: st.name, State: st.state, Cells: st.cells,
		Done: st.done, Failed: st.failed, Error: st.errMsg,
		Artifacts: st.artifacts, Collapsed: st.collapsed,
	}
}

// Server is the campaign server. Create with New, serve Handler, Close to
// stop: Close cancels every running job (their manifests keep completed
// cells) and waits for them to settle, so a New on the same data directory
// resumes them.
type Server struct {
	ctx     context.Context
	cancel  context.CancelFunc
	dataDir string
	budget  *runner.Budget
	mux     *http.ServeMux
	wg      sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*jobState
	nextID int
}

// New opens (or creates) the data directory, resumes every job whose
// persisted state is still "running" — a crashed or killed server left it
// mid-campaign — and returns the server. budget is the server-wide
// concurrency ceiling shared by all jobs; nil means GOMAXPROCS.
func New(ctx context.Context, dataDir string, budget *runner.Budget) (*Server, error) {
	if budget == nil {
		budget = runner.NewBudget(0)
	}
	if err := os.MkdirAll(filepath.Join(dataDir, "jobs"), 0o755); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(ctx)
	s := &Server{
		ctx: ctx, cancel: cancel, dataDir: dataDir, budget: budget,
		mux: http.NewServeMux(), jobs: map[string]*jobState{}, nextID: 1,
	}
	s.mux.HandleFunc("POST /v1/campaigns", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/campaigns", s.handleList)
	s.mux.HandleFunc("GET /v1/campaigns/{id}", s.handleStatus)
	s.mux.HandleFunc("DELETE /v1/campaigns/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/campaigns/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/campaigns/{id}/artifacts/{name}", s.handleArtifact)
	if err := s.restore(); err != nil {
		cancel()
		return nil, err
	}
	return s, nil
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops the server: every running job is canceled at its next epoch
// barrier and its manifest left resumable. Close blocks until all jobs
// have settled.
func (s *Server) Close() {
	s.cancel()
	s.wg.Wait()
}

// restore rescans the jobs directory. Finished jobs are listed from their
// status files; jobs still marked "running" (the server died under them)
// are resubmitted with Resume so their manifests' completed cells are
// restored, not re-simulated.
func (s *Server) restore() error {
	entries, err := os.ReadDir(filepath.Join(s.dataDir, "jobs"))
	if err != nil {
		return err
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		id := e.Name()
		if n, err := strconv.Atoi(strings.TrimPrefix(id, "c")); err == nil && n >= s.nextID {
			s.nextID = n + 1
		}
		dir := filepath.Join(s.dataDir, "jobs", id)
		buf, err := os.ReadFile(filepath.Join(dir, "status.json"))
		if err != nil {
			continue // torn submit: directory without a status file
		}
		var persisted Status
		if err := json.Unmarshal(buf, &persisted); err != nil {
			continue
		}
		st := &jobState{
			id: id, dir: dir, name: persisted.Name, cells: persisted.Cells,
			log: newEventLog(), state: persisted.State, errMsg: persisted.Error,
			done: persisted.Done, failed: persisted.Failed,
			artifacts: persisted.Artifacts, collapsed: persisted.Collapsed,
		}
		if persisted.State != "running" {
			st.log.close()
			s.jobs[id] = st
			continue
		}
		spec, err := readSpec(filepath.Join(dir, "spec.yaml"))
		if err != nil {
			st.state, st.errMsg = "failed", fmt.Sprintf("resume: %v", err)
			st.log.close()
			s.jobs[id] = st
			continue
		}
		job, err := campaign.Submit(s.ctx, spec, campaign.Options{
			OutDir: dir, Resume: true, Budget: s.budget,
		})
		if err != nil {
			st.state, st.errMsg = "failed", fmt.Sprintf("resume: %v", err)
			st.log.close()
			s.jobs[id] = st
			continue
		}
		st.job = job
		st.cells = len(job.Plan().Cells)
		s.jobs[id] = st
		s.wg.Add(1)
		go s.pump(st)
	}
	return nil
}

func readSpec(path string) (dsl.Spec, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return dsl.Spec{}, err
	}
	return dsl.ParseSpec(buf)
}

// pump drains a job's rows into the replay log, then records the final
// state. A job stopped by server shutdown (not by DELETE) keeps state
// "running" on disk, so the next server resumes it from the manifest.
func (s *Server) pump(st *jobState) {
	defer s.wg.Done()
	for ev := range st.job.Rows() {
		st.mu.Lock()
		st.done = ev.Done
		st.mu.Unlock()
		st.log.append(ev)
	}
	res, err := st.job.Wait()
	st.mu.Lock()
	switch {
	case err == nil:
		st.state = "done"
	case errors.Is(err, campaign.ErrCanceled):
		st.state, st.errMsg = "canceled", err.Error()
	default: // cells failed (artifacts still written) or infrastructure
		st.state, st.errMsg = "failed", err.Error()
	}
	if res != nil {
		st.failed = res.Failed
		st.collapsed = res.Collapsed
		for _, a := range res.Artifacts {
			st.artifacts = append(st.artifacts, filepath.Base(a))
		}
	}
	persist := st.state
	if st.state == "canceled" && !st.userCanceled {
		persist = "running" // server shutdown: resumable, not abandoned
	}
	status := Status{
		ID: st.id, Name: st.name, State: persist, Cells: st.cells,
		Done: st.done, Failed: st.failed, Error: st.errMsg,
		Artifacts: st.artifacts, Collapsed: st.collapsed,
	}
	if persist == "running" {
		status.Error = "" // transient shutdown, not a fault of the job
	}
	st.mu.Unlock()
	writeStatus(st.dir, status)
	st.log.close()
}

// writeStatus persists a job's status atomically (tmp + rename), so a
// crash mid-write can never leave a torn status file.
func writeStatus(dir string, status Status) error {
	buf, err := json.MarshalIndent(status, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, ".status.json.tmp")
	if err := os.WriteFile(tmp, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, "status.json"))
}

func (s *Server) get(id string) *jobState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

// handleSubmit is POST /v1/campaigns: parse the spec (YAML or JSON — the
// same schema cmd/campaign reads from a file), start it as a job, answer
// 202 with the job's status. The campaign error taxonomy maps onto HTTP:
// ErrSpecInvalid is the client's fault (400), ErrManifestConflict a
// directory collision (409, unreachable for fresh job dirs), anything
// else a server fault (500).
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read spec: %v", err)
		return
	}
	if len(body) > maxSpecBytes {
		writeError(w, http.StatusRequestEntityTooLarge, "spec larger than %d bytes", maxSpecBytes)
		return
	}
	spec, err := dsl.ParseSpec(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "parse spec: %v", err)
		return
	}

	s.mu.Lock()
	id := fmt.Sprintf("c%04d", s.nextID)
	s.nextID++
	s.mu.Unlock()
	dir := filepath.Join(s.dataDir, "jobs", id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		writeError(w, http.StatusInternalServerError, "create job dir: %v", err)
		return
	}
	// Keep the posted bytes verbatim: the restart path re-parses exactly
	// what the client sent, so the spec hash — and with it the manifest
	// binding — cannot drift.
	if err := os.WriteFile(filepath.Join(dir, "spec.yaml"), body, 0o644); err != nil {
		writeError(w, http.StatusInternalServerError, "persist spec: %v", err)
		return
	}
	job, err := campaign.Submit(s.ctx, spec, campaign.Options{OutDir: dir, Budget: s.budget})
	switch {
	case err == nil:
	case errors.Is(err, campaign.ErrSpecInvalid):
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	case errors.Is(err, campaign.ErrManifestConflict):
		writeError(w, http.StatusConflict, "%v", err)
		return
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	st := &jobState{
		id: id, dir: dir, name: job.Plan().Spec.Name, cells: len(job.Plan().Cells),
		log: newEventLog(), job: job, state: "running",
	}
	writeStatus(dir, st.status())
	s.mu.Lock()
	s.jobs[id] = st
	s.mu.Unlock()
	s.wg.Add(1)
	go s.pump(st)

	w.Header().Set("Location", "/v1/campaigns/"+id)
	writeJSON(w, http.StatusAccepted, st.status())
}

// handleList is GET /v1/campaigns: every job's status, sorted by ID.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	states := make([]*jobState, 0, len(s.jobs))
	for _, st := range s.jobs {
		states = append(states, st)
	}
	s.mu.Unlock()
	sort.Slice(states, func(i, j int) bool { return states[i].id < states[j].id })
	out := make([]Status, len(states))
	for i, st := range states {
		out[i] = st.status()
	}
	writeJSON(w, http.StatusOK, out)
}

// handleStatus is GET /v1/campaigns/{id}.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st := s.get(r.PathValue("id"))
	if st == nil {
		writeError(w, http.StatusNotFound, "no campaign %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, st.status())
}

// handleCancel is DELETE /v1/campaigns/{id}: stop the job at its next
// epoch barrier. The manifest keeps completed cells; canceling a finished
// job is a no-op that reports its final state.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st := s.get(r.PathValue("id"))
	if st == nil {
		writeError(w, http.StatusNotFound, "no campaign %q", r.PathValue("id"))
		return
	}
	st.mu.Lock()
	st.userCanceled = true
	running := st.state == "running" && st.job != nil
	st.mu.Unlock()
	if running {
		st.job.Cancel()
		writeJSON(w, http.StatusAccepted, st.status())
		return
	}
	writeJSON(w, http.StatusOK, st.status())
}

// handleEvents is GET /v1/campaigns/{id}/events: the job's per-cell rows
// as Server-Sent Events. The full stream replays from the first event on
// every connect — cached rows of a resumed job included — then follows
// live; a final "done" event carries the job's closing status. Event data
// is the campaign.RowEvent JSON.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	st := s.get(r.PathValue("id"))
	if st == nil {
		writeError(w, http.StatusNotFound, "no campaign %q", r.PathValue("id"))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-store")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	for i := 0; ; i++ {
		ev, ok := st.log.next(r.Context(), i)
		if !ok {
			break
		}
		data, err := json.Marshal(ev)
		if err != nil {
			return
		}
		fmt.Fprintf(w, "event: row\ndata: %s\n\n", data)
		fl.Flush()
	}
	if r.Context().Err() != nil {
		return // client went away mid-stream
	}
	data, err := json.Marshal(st.status())
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: done\ndata: %s\n\n", data)
	fl.Flush()
}

// handleArtifact is GET /v1/campaigns/{id}/artifacts/{name}: serve one of
// the job's artifact files, byte-identical to what cmd/campaign writes
// for the same spec. Artifacts exist only once the job has finished; a
// running job answers 409.
func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	st := s.get(r.PathValue("id"))
	if st == nil {
		writeError(w, http.StatusNotFound, "no campaign %q", r.PathValue("id"))
		return
	}
	name := r.PathValue("name")
	ctype, ok := artifactTypes[name]
	if !ok {
		writeError(w, http.StatusNotFound, "unknown artifact %q", name)
		return
	}
	status := st.status()
	if status.State == "running" {
		writeError(w, http.StatusConflict, "campaign %s still running", st.id)
		return
	}
	buf, err := os.ReadFile(filepath.Join(st.dir, name))
	if err != nil {
		writeError(w, http.StatusNotFound, "campaign %s has no %s", st.id, name)
		return
	}
	w.Header().Set("Content-Type", ctype)
	w.Write(buf)
}
