package simd

import (
	"context"
	"sync"

	"insomnia/internal/campaign"
)

// eventLog records a job's RowEvents for replay: an SSE subscriber that
// connects late (or reconnects) still sees the full stream from event 0,
// in order, before going live. One writer (the job's pump goroutine)
// appends; any number of readers walk the log by index.
type eventLog struct {
	mu     sync.Mutex
	cond   *sync.Cond
	events []campaign.RowEvent
	closed bool
}

func newEventLog() *eventLog {
	l := &eventLog{}
	l.cond = sync.NewCond(&l.mu)
	return l
}

func (l *eventLog) append(ev campaign.RowEvent) {
	l.mu.Lock()
	l.events = append(l.events, ev)
	l.mu.Unlock()
	l.cond.Broadcast()
}

// close marks the log complete; blocked readers drain and stop.
func (l *eventLog) close() {
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
	l.cond.Broadcast()
}

// next blocks until event i exists (returning it), the log is closed with
// fewer than i+1 events (ok=false), or ctx is canceled (ok=false). A
// watcher goroutine turns ctx cancellation into a broadcast, since
// sync.Cond cannot select on a Done channel directly.
func (l *eventLog) next(ctx context.Context, i int) (campaign.RowEvent, bool) {
	stop := context.AfterFunc(ctx, l.cond.Broadcast)
	defer stop()
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if i < len(l.events) {
			return l.events[i], true
		}
		if l.closed || ctx.Err() != nil {
			return campaign.RowEvent{}, false
		}
		l.cond.Wait()
	}
}
