package optimal

import (
	"testing"
	"testing/quick"

	"insomnia/internal/stats"
	"insomnia/internal/topology"
)

// tiny builds an instance where every user reaches the listed gateways at
// 6 Mbps with 1 Mbps demand.
func tiny(caps int, users [][]int) Instance {
	in := Instance{Q: 1, Caps: make([]float64, caps)}
	for j := range in.Caps {
		in.Caps[j] = 6e6
	}
	for _, reach := range users {
		row := make([]float64, caps)
		for _, j := range reach {
			row[j] = 6e6
		}
		in.W = append(in.W, row)
		in.Demands = append(in.Demands, 1e6)
	}
	return in
}

func TestValidate(t *testing.T) {
	in := tiny(2, [][]int{{0}})
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := in
	bad.Q = 0
	if err := bad.Validate(); err == nil {
		t.Error("q=0 accepted")
	}
	bad = in
	bad.Demands = []float64{0}
	if err := bad.Validate(); err == nil {
		t.Error("zero demand accepted")
	}
	bad = tiny(2, [][]int{{0}})
	bad.W[0] = bad.W[0][:1]
	if err := bad.Validate(); err == nil {
		t.Error("ragged W accepted")
	}
}

func TestEmptyInstance(t *testing.T) {
	in := Instance{Q: 1, Caps: []float64{6e6, 6e6}}
	sol, err := Solve(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sol.OpenCount != 0 || !sol.Optimal {
		t.Errorf("empty instance: %+v", sol)
	}
}

func TestSingleGatewayCoversAll(t *testing.T) {
	// 5 users all reach gateway 1: optimum is 1.
	in := tiny(3, [][]int{{0, 1}, {1, 2}, {1}, {0, 1, 2}, {1, 2}})
	sol, err := Solve(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sol.OpenCount != 1 || !sol.Open[1] {
		t.Errorf("got %d open (%v), want just gateway 1", sol.OpenCount, sol.Open)
	}
	if !sol.Optimal {
		t.Error("not proven optimal")
	}
	for i, a := range sol.Assign {
		if len(a) != 1 || a[0] != 1 {
			t.Errorf("user %d assigned %v", i, a)
		}
	}
}

func TestDisjointUsersNeedTwo(t *testing.T) {
	in := tiny(2, [][]int{{0}, {1}})
	sol, err := Solve(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sol.OpenCount != 2 {
		t.Errorf("got %d, want 2", sol.OpenCount)
	}
}

func TestBackupDoublesRequirement(t *testing.T) {
	in := tiny(3, [][]int{{0, 1, 2}, {0, 1, 2}})
	in.Backup = 1
	sol, err := Solve(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sol.OpenCount != 2 {
		t.Errorf("backup=1: got %d open, want 2", sol.OpenCount)
	}
	for i, a := range sol.Assign {
		if len(a) != 2 {
			t.Errorf("user %d has %d assignments, want 2", i, len(a))
		}
	}
}

func TestUnderConnectedUserFails(t *testing.T) {
	in := tiny(2, [][]int{{0}})
	in.Backup = 1 // needs 2 gateways, reaches 1
	if _, err := Solve(in, 0); err == nil {
		t.Error("expected under-connected error")
	}
}

func TestCapacityForcesMoreGateways(t *testing.T) {
	// 4 users of 3 Mbps all reach both gateways (6 Mbps each, q=1):
	// one gateway fits only 2 users, so the optimum is 2 — the capacity
	// constraint, not coverage, drives it.
	in := tiny(2, [][]int{{0, 1}, {0, 1}, {0, 1}, {0, 1}})
	for i := range in.Demands {
		in.Demands[i] = 3e6
	}
	sol, err := Solve(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sol.OpenCount != 2 {
		t.Errorf("got %d, want 2 (capacity bound)", sol.OpenCount)
	}
	if sol.LowerBound != 2 {
		t.Errorf("lower bound = %d, want 2", sol.LowerBound)
	}
}

func TestQLimitsUtilization(t *testing.T) {
	// q=0.5 halves usable capacity: two 3 Mbps users per 6 Mbps gateway no
	// longer fit together.
	in := tiny(2, [][]int{{0, 1}, {0, 1}})
	for i := range in.Demands {
		in.Demands[i] = 3e6
	}
	in.Q = 0.5
	sol, err := Solve(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sol.OpenCount != 2 {
		t.Errorf("q=0.5: got %d, want 2", sol.OpenCount)
	}
}

func TestWirelessRateGatesEligibility(t *testing.T) {
	// User 0 demands 8 Mbps; gateway 0 offers w=6 Mbps (ineligible),
	// gateway 1 offers 12 Mbps with 20 Mbps backhaul.
	in := Instance{
		Q:       1,
		Caps:    []float64{20e6, 20e6},
		Demands: []float64{8e6},
		W:       [][]float64{{6e6, 12e6}},
	}
	sol, err := Solve(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Open[1] || sol.Open[0] {
		t.Errorf("open = %v, want only gateway 1", sol.Open)
	}
}

func TestGreedyMatchesOptimumOnEasyInstances(t *testing.T) {
	in := tiny(3, [][]int{{0, 1}, {1, 2}, {1}})
	g, err := Greedy(in)
	if err != nil {
		t.Fatal(err)
	}
	if g.OpenCount != 1 {
		t.Errorf("greedy = %d, want 1", g.OpenCount)
	}
}

// Solver on the paper-scale scenario: 272 users over a 40-gateway overlap
// topology must come out near the cover number (~⌈40/5.6⌉) and prove
// optimality within budget.
func TestPaperScaleInstance(t *testing.T) {
	g, err := topology.OverlapGraph(40, 5.6, 3)
	if err != nil {
		t.Fatal(err)
	}
	homeOf := make([]int, 272)
	for i := range homeOf {
		homeOf[i] = i % 40
	}
	tp, err := topology.FromOverlap(g, homeOf)
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRNG(7, 0)
	in := Instance{Q: 1, Caps: make([]float64, 40)}
	for j := range in.Caps {
		in.Caps[j] = 6e6
	}
	for c := 0; c < 272; c++ {
		if r.Float64() > 0.6 {
			continue // 60% of terminals active at peak
		}
		row := make([]float64, 40)
		for _, gw := range tp.InRange(c) {
			row[gw] = tp.LinkBps(c, gw)
		}
		in.W = append(in.W, row)
		in.Demands = append(in.Demands, 2e3+r.Float64()*100e3) // light traffic
	}
	sol, err := Solve(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Optimal {
		t.Errorf("paper-scale instance not solved to optimality in %d nodes", sol.Nodes)
	}
	if sol.OpenCount < 4 || sol.OpenCount > 14 {
		t.Errorf("open = %d, expected near the cover number ~7-10", sol.OpenCount)
	}
	// Verify the certificate: every user covered, capacities respected.
	load := make([]float64, 40)
	for i, a := range sol.Assign {
		if len(a) != 1 {
			t.Fatalf("user %d assign %v", i, a)
		}
		j := a[0]
		if !sol.Open[j] || in.W[i][j] < in.Demands[i] {
			t.Fatalf("user %d illegally assigned to %d", i, j)
		}
		load[j] += in.Demands[i]
	}
	for j, l := range load {
		if l > in.Q*in.Caps[j]+1e-6 {
			t.Fatalf("gateway %d overloaded: %v", j, l)
		}
	}
}

// Property: the solver's result is never better than the proven lower bound,
// never worse than greedy, and its certificate is always valid.
func TestSolveCertificateProperty(t *testing.T) {
	f := func(seed int64, nRaw, uRaw uint8) bool {
		nGW := 2 + int(nRaw%8)
		nUsers := 1 + int(uRaw%12)
		r := stats.NewRNG(seed, 1)
		in := Instance{Q: 1, Caps: make([]float64, nGW)}
		for j := range in.Caps {
			in.Caps[j] = 6e6
		}
		for i := 0; i < nUsers; i++ {
			row := make([]float64, nGW)
			row[r.Intn(nGW)] = 12e6 // home always reachable
			for j := range row {
				if r.Float64() < 0.4 {
					row[j] = 6e6
				}
			}
			in.W = append(in.W, row)
			in.Demands = append(in.Demands, 1e3+r.Float64()*2e6)
		}
		sol, err := Solve(in, 0)
		if err != nil {
			return true // under-connected instances are legitimately rejected
		}
		if sol.OpenCount < sol.LowerBound {
			return false
		}
		g, err := Greedy(in)
		if err == nil && sol.Optimal && sol.OpenCount > g.OpenCount {
			return false
		}
		load := make([]float64, nGW)
		for i, a := range sol.Assign {
			if len(a) != 1 {
				return false
			}
			j := a[0]
			if !sol.Open[j] || in.W[i][j] < in.Demands[i] {
				return false
			}
			load[j] += in.Demands[i]
		}
		for j, l := range load {
			if l > in.Caps[j]+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestNodeBudgetExhaustionFallsBack(t *testing.T) {
	// A larger random instance with a 1-node budget must fall back to
	// greedy with Optimal=false (unless greedy already matches the lower
	// bound, in which case deepening never ran — accept both).
	r := stats.NewRNG(5, 0)
	in := Instance{Q: 1, Caps: make([]float64, 12)}
	for j := range in.Caps {
		in.Caps[j] = 6e6
	}
	for i := 0; i < 40; i++ {
		row := make([]float64, 12)
		row[r.Intn(12)] = 6e6
		for j := range row {
			if r.Float64() < 0.3 {
				row[j] = 6e6
			}
		}
		in.W = append(in.W, row)
		in.Demands = append(in.Demands, 1e4)
	}
	sol, err := Solve(in, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Optimal && sol.OpenCount > sol.LowerBound {
		t.Errorf("claimed optimality with exhausted budget: %+v", sol.OpenCount)
	}
	if sol.OpenCount == 0 {
		t.Error("no fallback solution")
	}
}

// bruteForce finds the true optimum by enumerating all open sets (only for
// tiny instances).
func bruteForce(in Instance) int {
	nGW := len(in.Caps)
	best := nGW + 1
	s := &search{in: in, need: 1 + in.Backup}
	s.elig = make([][]int, len(in.Demands))
	for i := range in.Demands {
		for j := range in.Caps {
			if in.W[i][j] >= in.Demands[i] && in.Demands[i] <= in.Q*in.Caps[j] {
				s.elig[i] = append(s.elig[i], j)
			}
		}
	}
	for mask := 0; mask < 1<<nGW; mask++ {
		open := make([]bool, nGW)
		cnt := 0
		for j := 0; j < nGW; j++ {
			if mask&(1<<j) != 0 {
				open[j] = true
				cnt++
			}
		}
		if cnt >= best {
			continue
		}
		if _, ok := s.assign(open); ok {
			best = cnt
		}
	}
	return best
}

// The branch-and-bound must match exhaustive enumeration on random tiny
// instances — an end-to-end correctness check of the solver.
func TestSolveMatchesBruteForce(t *testing.T) {
	for trial := 0; trial < 60; trial++ {
		r := stats.NewRNG(int64(trial), 3)
		nGW := 3 + r.Intn(6) // 3..8 gateways
		nUsers := 1 + r.Intn(10)
		in := Instance{Q: 1, Caps: make([]float64, nGW)}
		for j := range in.Caps {
			in.Caps[j] = 6e6
		}
		for i := 0; i < nUsers; i++ {
			row := make([]float64, nGW)
			row[r.Intn(nGW)] = 12e6
			for j := range row {
				if r.Float64() < 0.5 {
					row[j] = 6e6
				}
			}
			in.W = append(in.W, row)
			in.Demands = append(in.Demands, 1e3+r.Float64()*3e6)
		}
		want := bruteForce(in)
		sol, err := Solve(in, 0)
		if err != nil {
			if want <= len(in.Caps) {
				// Under-connected rejects are fine only when brute force
				// also found nothing for 1+backup coverage; with backup=0
				// and a home link, Solve should never error here.
				t.Fatalf("trial %d: unexpected error %v (brute force found %d)", trial, err, want)
			}
			continue
		}
		if !sol.Optimal {
			t.Fatalf("trial %d: tiny instance not proven optimal", trial)
		}
		if sol.OpenCount != want {
			t.Fatalf("trial %d: B&B found %d, brute force %d", trial, sol.OpenCount, want)
		}
	}
}
