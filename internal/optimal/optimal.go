// Package optimal solves the paper's Eq (1) binary integer program: the
// minimum number of online gateways such that every (active) user is
// assigned to 1+backup open in-range gateways, each assignment respects the
// wireless rate (d_i ≤ w_ij), and no gateway exceeds q·c_j of carried
// demand. The decision version reduces from SET-COVER (§3.1), so the exact
// solver is a branch-and-bound:
//
//   - iterative deepening on the open-set size K starting from lower bounds
//     (capacity bound and the backup floor);
//   - at each node, branch on the not-yet-covered user with the fewest
//     remaining eligible gateways (fail-first), opening one of them;
//   - prune when the open count would exceed K;
//   - at covered leaves, check capacity feasibility by best-fit-decreasing
//     assignment (demands in the paper's instances are far below q·c, so
//     the check is almost always trivially satisfiable).
//
// A node budget caps the search; on exhaustion the solver returns the best
// greedy solution with Optimal=false and the proven lower bound, so callers
// can report the gap. The paper runs this every simulated minute over
// active users only (users with zero demand need no connectivity and are
// excluded by the caller).
package optimal

import (
	"fmt"
	"math"
	"sort"
)

// Instance is one solve: users with positive demands, gateway capacities,
// and the wireless rate matrix.
type Instance struct {
	Demands []float64   // per-user demand in bps (all > 0)
	Caps    []float64   // per-gateway backhaul capacity in bps
	W       [][]float64 // W[user][gw]: max wireless rate, 0 when out of range
	Q       float64     // maximum allowed gateway utilization (0, 1]
	Backup  int         // spare gateways per user
}

// Validate checks instance shape.
func (in Instance) Validate() error {
	if in.Q <= 0 || in.Q > 1 {
		return fmt.Errorf("optimal: q=%v outside (0,1]", in.Q)
	}
	if in.Backup < 0 {
		return fmt.Errorf("optimal: negative backup")
	}
	if len(in.W) != len(in.Demands) {
		return fmt.Errorf("optimal: W has %d rows for %d users", len(in.W), len(in.Demands))
	}
	for i, row := range in.W {
		if len(row) != len(in.Caps) {
			return fmt.Errorf("optimal: W row %d has %d cols for %d gateways", i, len(row), len(in.Caps))
		}
		if in.Demands[i] <= 0 {
			return fmt.Errorf("optimal: user %d has non-positive demand %v (exclude idle users)", i, in.Demands[i])
		}
	}
	return nil
}

// Solution is the solver output.
type Solution struct {
	Open       []bool  // per gateway
	Assign     [][]int // per user: the 1+backup gateways carrying it
	OpenCount  int
	Optimal    bool // proven optimal within the node budget
	LowerBound int  // proven lower bound on the optimum
	Nodes      int  // search nodes expanded
}

// DefaultNodeBudget bounds the branch-and-bound search.
const DefaultNodeBudget = 200000

// Solve runs the solver. nodeBudget <= 0 uses DefaultNodeBudget.
func Solve(in Instance, nodeBudget int) (Solution, error) {
	if err := in.Validate(); err != nil {
		return Solution{}, err
	}
	if nodeBudget <= 0 {
		nodeBudget = DefaultNodeBudget
	}
	nUsers, nGW := len(in.Demands), len(in.Caps)
	if nUsers == 0 {
		return Solution{Open: make([]bool, nGW), Assign: [][]int{}, Optimal: true}, nil
	}

	// Eligibility: gateway j can carry user i alone.
	elig := make([][]int, nUsers)
	for i := range in.Demands {
		for j := 0; j < nGW; j++ {
			if in.W[i][j] >= in.Demands[i] && in.Demands[i] <= in.Q*in.Caps[j] {
				elig[i] = append(elig[i], j)
			}
		}
		if len(elig[i]) < 1+in.Backup {
			return Solution{}, fmt.Errorf("optimal: user %d has only %d eligible gateways, needs %d",
				i, len(elig[i]), 1+in.Backup)
		}
	}

	need := 1 + in.Backup
	lb := lowerBound(in, need)

	s := &search{in: in, elig: elig, need: need, budget: nodeBudget}

	// Greedy warm start gives an upper bound and the fallback solution.
	greedyOpen := s.greedyCover()
	greedyAssign, ok := s.assign(greedyOpen)
	if !ok {
		// Open everything as a last resort (always feasible by eligibility
		// when capacities allow; if not, report infeasibility).
		all := make([]bool, nGW)
		for j := range all {
			all[j] = true
		}
		greedyAssign, ok = s.assign(all)
		if !ok {
			return Solution{}, fmt.Errorf("optimal: no capacity-feasible assignment even with all gateways open")
		}
		greedyOpen = all
	}
	best := Solution{Open: greedyOpen, Assign: greedyAssign, OpenCount: count(greedyOpen), LowerBound: lb}

	// Iterative deepening on K.
	for K := lb; K < best.OpenCount; K++ {
		open := make([]bool, nGW)
		found, exhausted := s.coverSearch(open, 0, K)
		if found != nil {
			asg, ok := s.assign(found)
			if ok {
				best = Solution{Open: found, Assign: asg, OpenCount: K, LowerBound: lb}
				break
			}
			// Cover exists but capacity fails at this K; K+1 may succeed.
			// (coverSearch with capacity-aware leaves retries internally;
			// reaching here means every K-cover failed capacity.)
		}
		if exhausted {
			best.Nodes = s.nodes
			best.Optimal = false
			return best, nil
		}
	}
	best.Nodes = s.nodes
	best.Optimal = true
	return best, nil
}

// lowerBound combines the capacity bound with the backup floor.
func lowerBound(in Instance, need int) int {
	var totalDemand float64
	for _, d := range in.Demands {
		totalDemand += d * float64(need)
	}
	maxCap := 0.0
	for _, c := range in.Caps {
		if c > maxCap {
			maxCap = c
		}
	}
	lb := need
	if maxCap > 0 {
		if capLB := int(math.Ceil(totalDemand / (in.Q * maxCap))); capLB > lb {
			lb = capLB
		}
	}
	return lb
}

type search struct {
	in     Instance
	elig   [][]int
	need   int
	budget int
	nodes  int
}

// coverSearch looks for an open set of exactly <= K gateways covering every
// user `need` times. Returns (solution, false) on success, (nil, true) when
// the node budget ran out, (nil, false) when provably no K-cover passes the
// capacity check.
func (s *search) coverSearch(open []bool, opened, K int) ([]bool, bool) {
	s.nodes++
	if s.nodes > s.budget {
		return nil, true
	}
	// Find the uncovered user with the fewest undecided eligible gateways.
	bestUser, bestMissing, bestOptions := -1, 0, 0
	for i, eg := range s.elig {
		have, options := 0, 0
		for _, j := range eg {
			if open[j] {
				have++
			} else {
				options++
			}
		}
		missing := s.need - have
		if missing <= 0 {
			continue
		}
		if missing > options {
			return nil, false // user can no longer be covered (shouldn't happen: we never close)
		}
		if bestUser == -1 || options < bestOptions {
			bestUser, bestMissing, bestOptions = i, missing, options
		}
	}
	if bestUser == -1 {
		// Fully covered: capacity check.
		if _, ok := s.assign(open); ok {
			return append([]bool(nil), open...), false
		}
		// Coverage holds but capacity does not: spend the remaining budget
		// of K on extra gateways purely for capacity relief.
		if opened < K {
			for j := range open {
				if open[j] {
					continue
				}
				open[j] = true
				sol, exhausted := s.coverSearch(open, opened+1, K)
				open[j] = false
				if sol != nil || exhausted {
					return sol, exhausted
				}
			}
		}
		return nil, false
	}
	if opened+bestMissing > K {
		return nil, false
	}
	// Branch: open each undecided eligible gateway of bestUser, most
	// coverage first.
	cands := make([]int, 0, bestOptions)
	for _, j := range s.elig[bestUser] {
		if !open[j] {
			cands = append(cands, j)
		}
	}
	cover := func(j int) int {
		n := 0
		for i, eg := range s.elig {
			_ = i
			for _, g := range eg {
				if g == j {
					n++
					break
				}
			}
		}
		return n
	}
	sort.Slice(cands, func(a, b int) bool { return cover(cands[a]) > cover(cands[b]) })
	for _, j := range cands {
		open[j] = true
		sol, exhausted := s.coverSearch(open, opened+1, K)
		open[j] = false
		if sol != nil || exhausted {
			return sol, exhausted
		}
	}
	return nil, false
}

// greedyCover repeatedly opens the gateway that covers the most unmet
// user-slots.
func (s *search) greedyCover() []bool {
	nGW := len(s.in.Caps)
	open := make([]bool, nGW)
	left := make([]int, len(s.elig))
	for i := range left {
		left[i] = s.need
	}
	for {
		bestJ, bestGain := -1, 0
		for j := 0; j < nGW; j++ {
			if open[j] {
				continue
			}
			gain := 0
			for i, eg := range s.elig {
				if left[i] == 0 {
					continue
				}
				for _, g := range eg {
					if g == j {
						gain++
						break
					}
				}
			}
			if gain > bestGain {
				bestJ, bestGain = j, gain
			}
		}
		if bestJ == -1 {
			return open
		}
		open[bestJ] = true
		done := true
		for i, eg := range s.elig {
			if left[i] == 0 {
				continue
			}
			for _, g := range eg {
				if g == bestJ {
					left[i]--
					break
				}
			}
			if left[i] > 0 {
				done = false
			}
		}
		if done {
			return open
		}
	}
}

// assign places every user on `need` open eligible gateways by best-fit
// decreasing: biggest demands first, each onto the open gateways with the
// most remaining headroom. Returns (assignment, true) on success.
func (s *search) assign(open []bool) ([][]int, bool) {
	nUsers := len(s.in.Demands)
	remaining := make([]float64, len(s.in.Caps))
	for j, c := range s.in.Caps {
		remaining[j] = s.in.Q * c
	}
	order := make([]int, nUsers)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return s.in.Demands[order[a]] > s.in.Demands[order[b]] })

	assign := make([][]int, nUsers)
	for _, i := range order {
		var opts []int
		for _, j := range s.elig[i] {
			if open[j] && remaining[j] >= s.in.Demands[i] {
				opts = append(opts, j)
			}
		}
		if len(opts) < s.need {
			return nil, false
		}
		sort.Slice(opts, func(a, b int) bool { return remaining[opts[a]] > remaining[opts[b]] })
		assign[i] = append([]int(nil), opts[:s.need]...)
		for _, j := range assign[i] {
			remaining[j] -= s.in.Demands[i]
		}
	}
	return assign, true
}

func count(b []bool) int {
	n := 0
	for _, v := range b {
		if v {
			n++
		}
	}
	return n
}

// Greedy returns the warm-start solution alone (used as a baseline and for
// ablations).
func Greedy(in Instance) (Solution, error) {
	if err := in.Validate(); err != nil {
		return Solution{}, err
	}
	nUsers := len(in.Demands)
	if nUsers == 0 {
		return Solution{Open: make([]bool, len(in.Caps)), Assign: [][]int{}, Optimal: true}, nil
	}
	elig := make([][]int, nUsers)
	for i := range in.Demands {
		for j := range in.Caps {
			if in.W[i][j] >= in.Demands[i] && in.Demands[i] <= in.Q*in.Caps[j] {
				elig[i] = append(elig[i], j)
			}
		}
		if len(elig[i]) < 1+in.Backup {
			return Solution{}, fmt.Errorf("optimal: user %d under-connected", i)
		}
	}
	s := &search{in: in, elig: elig, need: 1 + in.Backup}
	open := s.greedyCover()
	asg, ok := s.assign(open)
	if !ok {
		return Solution{}, fmt.Errorf("optimal: greedy cover capacity-infeasible")
	}
	return Solution{Open: open, Assign: asg, OpenCount: count(open), LowerBound: lowerBound(in, s.need)}, nil
}
