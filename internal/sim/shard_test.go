package sim

import (
	"testing"

	"insomnia/internal/dsl"
	"insomnia/internal/topology"
	"insomnia/internal/trace"
)

// runShards executes one config at a given shard count and returns the
// result fingerprint (the same digest the golden corpus pins: every metric
// including float bit patterns).
func runShards(t *testing.T, cfg Config, shards int) string {
	t.Helper()
	cfg.Shards = shards
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return fingerprint(res)
}

// TestShardDeterminism pins the tentpole contract: the sharded engine is
// byte-identical to the serial engine at every shard count, for every
// scheme family — full shard parallelism (NoSleep, SoI), parallel-tick
// (BH2), and the serial-coupled coordinated schemes (Optimal, Centralized).
func TestShardDeterminism(t *testing.T) {
	tr, tp := smallScenario(t, 9)
	schemes := []Scheme{NoSleep, SoI, SoIKSwitch, SoIFullSwitch, BH2KSwitch, Optimal, Centralized}
	for _, sc := range schemes {
		sc := sc
		t.Run(sc.String(), func(t *testing.T) {
			t.Parallel()
			cfg := Config{Trace: tr, Topo: tp, Scheme: sc, Seed: 9, K: 2}
			want := runShards(t, cfg, 0) // classic serial engine
			for _, n := range []int{1, 2, 3, 8} {
				if got := runShards(t, cfg, n); got != want {
					t.Errorf("shards=%d diverges from serial: %s != %s", n, got, want)
				}
			}
		})
	}
}

// TestShardDeterminismRandomWake covers the forced mode downgrade: with
// RandomWake the wake delays come from one shared stream in global event
// order, so a modeLocal scheme must fall back to the serial event loop
// (parallel tick only) and still match bit-for-bit.
func TestShardDeterminismRandomWake(t *testing.T) {
	tr, tp := smallScenario(t, 9)
	cfg := Config{Trace: tr, Topo: tp, Scheme: SoI, Seed: 9, K: 2, RandomWake: true}
	want := runShards(t, cfg, 0)
	for _, n := range []int{2, 8} {
		if got := runShards(t, cfg, n); got != want {
			t.Errorf("shards=%d diverges from serial under RandomWake", n)
		}
	}
}

// cityScenario builds a reduced grid-city fixture: big enough that shard
// lanes carry real concurrent work (128 gateways across a metro head-end),
// small enough for the race detector to chew through on every push.
func cityScenario(t *testing.T, seed int64) (*trace.Trace, *topology.Topology, dsl.DSLAM) {
	t.Helper()
	cfg := trace.DefaultCityConfig(seed)
	cfg.Clients, cfg.APs, cfg.Duration = 512, 128, 900
	tr, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := topology.GridCity(cfg.APs, topology.DefaultMeanInRange, seed)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := topology.FromOverlap(g, tr.ClientAP)
	if err != nil {
		t.Fatal(err)
	}
	return tr, tp, dsl.DSLAM{Cards: 12, PortsPerCard: 12}
}

// TestShardedCity is the reduced city case the CI race job runs: a
// multi-shard grid-city simulation under the schemes that actually exercise
// the parallel paths (shard lanes + sink replay for SoI, parallel tick prep
// for BH2), checked against the serial engine.
func TestShardedCity(t *testing.T) {
	tr, tp, shelf := cityScenario(t, 5)
	for _, sc := range []Scheme{SoI, BH2KSwitch} {
		sc := sc
		t.Run(sc.String(), func(t *testing.T) {
			t.Parallel()
			cfg := Config{Trace: tr, Topo: tp, Scheme: sc, Seed: 5, DSLAM: shelf, K: 4}
			want := runShards(t, cfg, 0)
			for _, n := range []int{3, 4, 8} {
				if got := runShards(t, cfg, n); got != want {
					t.Errorf("shards=%d diverges from serial on grid city", n)
				}
			}
		})
	}
}

// shardedHandSim builds a hand-rolled sharded sim: four clients homed two
// per gateway pair, keepalives every 5 s, two shard lanes.
func shardedHandSim(t *testing.T, scheme Scheme, shards int) *sim {
	t.Helper()
	var keeps []trace.Packet
	for ts := 10.0; ts < 3900; ts += 5 {
		keeps = append(keeps, trace.Packet{T: ts, Client: int32(int(ts) % 4), Bytes: 100})
	}
	tr := &trace.Trace{
		Cfg: trace.Config{
			Clients: 4, APs: 2, Duration: 4000,
			BackhaulBps: 6e6, UplinkBps: 512e3,
		},
		ClientAP:   []int{0, 0, 1, 1},
		Keepalives: keeps,
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	g := &topology.Graph{Adj: [][]int{{1}, {0}}}
	tp, err := topology.FromOverlap(g, tr.ClientAP)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := Config{Trace: tr, Topo: tp, Scheme: scheme, Seed: 1, K: 2, Shards: shards}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	s, err := newSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestShardedStepSteadyStateAllocs pins the zero-allocation contract on the
// sharded engine's epoch loop: once heaps, sink queues and estimator rings
// have reached steady-state capacity, a full epoch — parallel shard phase,
// sink replay, tick — allocates nothing. The pool's rendezvous is plain
// channel values and a WaitGroup, so nothing on the barrier path allocates
// either.
func TestShardedStepSteadyStateAllocs(t *testing.T) {
	s := shardedHandSim(t, SoI, 2)
	if len(s.shards) != 2 {
		t.Fatalf("expected 2 shard lanes, got %d", len(s.shards))
	}
	s.pool.start()
	defer s.pool.stop()
	for i := 0; i < 1000; i++ {
		if !s.shardedStep() {
			t.Fatal("trace exhausted during warm-up")
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		s.shardedStep()
	})
	if allocs != 0 {
		t.Fatalf("steady-state sharded epoch allocates %.2f times, want 0", allocs)
	}
}

// TestShardsExceedingGateways clamps: more shards than gateways must not
// break (each lane simply gets at most one gateway).
func TestShardsExceedingGateways(t *testing.T) {
	tr, tp := smallScenario(t, 3)
	cfg := Config{Trace: tr, Topo: tp, Scheme: SoI, Seed: 3, K: 2}
	want := runShards(t, cfg, 0)
	if got := runShards(t, cfg, 64); got != want {
		t.Error("shards > gateways diverges from serial")
	}
}

func TestNegativeShardsRejected(t *testing.T) {
	tr, tp := smallScenario(t, 3)
	if _, err := Run(Config{Trace: tr, Topo: tp, Scheme: SoI, Seed: 3, K: 2, Shards: -1}); err == nil {
		t.Error("negative shard count accepted")
	}
}
