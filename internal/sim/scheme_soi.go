package sim

import "insomnia/internal/kswitch"

// soiScheme is plain Sleep-on-Idle (§2.3): gateways doze after their idle
// timeout and every client sticks to its home gateway — all behavior the
// baseScheme defaults already provide. The three SoI variants differ only
// in the DSLAM switch fabric carrying the lines (§4.2).
type soiScheme struct {
	baseScheme
	fabric fabric
}

func (sc soiScheme) newPolicy(cfg Config) (kswitch.Policy, error) {
	return sc.fabric.build(cfg)
}

// Routing is always the home gateway and wake/sleep side effects beyond the
// gateway itself are pure switch-fabric sinks: every event is shard-local.
func (soiScheme) parallelMode() engineMode { return modeLocal }
