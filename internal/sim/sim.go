// Package sim is the trace-driven discrete-event simulator behind the §5
// evaluation: it replays a generated wireless trace over a gateway
// topology and a DSLAM model under one of the paper's schemes and reports
// energy, online-device and QoS metrics for Figs 6-10 and the §5.2.3
// line-card table.
//
// Model summary (see DESIGN.md for the full mapping):
//
//   - Flows share a gateway's backhaul by processor sharing, bounded by the
//     client-gateway wireless rate; keepalives are instantaneous but reset
//     the gateway's idle clock — the "continuous light traffic" that defeats
//     plain Sleep-on-Idle.
//   - Gateways follow soi.Controller (60 s idle timeout, 60 s wake).
//     Sleeping gateways power off their DSLAM port modem; a line card
//     sleeps when no active line terminates on it (per the switch policy).
//   - BH² terminals estimate loads with the wifi SN-counting estimator and
//     run bh2.Decide on their own jittered period.
//   - The Optimal scheme re-solves Eq (1) every minute (package optimal)
//     with instant, disruption-free migration and a full switch — the
//     paper's upper bound.
package sim

import (
	"context"
	"fmt"
	"math"

	"insomnia/internal/bh2"
	"insomnia/internal/dsl"
	"insomnia/internal/power"
	"insomnia/internal/stats"
	"insomnia/internal/topology"
	"insomnia/internal/trace"
)

// Scheme selects the algorithm under evaluation.
type Scheme int

// The schemes of §5.1 plus the ablation variants of §5.2.3 and the
// centralized-controller extension the paper's §3.3 sketches.
const (
	NoSleep Scheme = iota
	SoI
	SoIKSwitch
	SoIFullSwitch
	BH2KSwitch
	BH2FullSwitch
	BH2NoBackup // BH² without backup, k-switch
	Optimal
	// Centralized is the §3.3 "more centralized/coordinated" variant
	// (in the spirit of Jardosh et al.'s green WLANs): a controller with
	// global load knowledge re-solves the assignment every minute like
	// Optimal, but lives with reality — woken gateways take the full
	// wake delay before they carry traffic, flows never migrate
	// mid-transfer, and lines go through k-switches, not a full switch.
	// It bounds how much of the Optimal margin coordination alone buys.
	Centralized
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case NoSleep:
		return "no-sleep"
	case SoI:
		return "SoI"
	case SoIKSwitch:
		return "SoI+k-switch"
	case SoIFullSwitch:
		return "SoI+full-switch"
	case BH2KSwitch:
		return "BH2+k-switch"
	case BH2FullSwitch:
		return "BH2+full-switch"
	case BH2NoBackup:
		return "BH2-nobackup+k-switch"
	case Optimal:
		return "optimal"
	case Centralized:
		return "centralized+k-switch"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Config describes one simulation run.
type Config struct {
	Trace *trace.Trace       // generated workload (downlink flows drive QoS)
	Topo  *topology.Topology // client-gateway reachability

	DSLAM  dsl.DSLAM // ISP shelf shape (default: 4x12, §5.1)
	PortOf []int     // line -> port wiring (default: random via seed)
	K      int       // k-switch size for *KSwitch schemes (default 4)

	Scheme Scheme
	BH2    bh2.Params // zero value takes bh2.DefaultParams

	IdleTimeout float64 // default dsl.IdleTimeoutSeconds
	WakeDelay   float64 // default dsl.WakeSeconds
	// RandomWake draws each wake-up duration from the measured
	// distribution (mean 60 s, resyncs up to 3 min — §5.1) instead of the
	// constant WakeDelay. Used by the wake-time sensitivity ablation.
	RandomWake   bool
	OptimalEvery float64 // Optimal resolve period (default 60 s)

	Seed        int64
	SampleEvery float64 // metric sampling period (default 1 s)

	// Failures is the deterministic failure-injection plan: gateway crashes
	// with rebooting restarts and area power-outage windows (failures.go).
	// The zero value injects nothing. Reboot draws come from Seed, so the
	// plan expands identically at every shard and worker count.
	Failures FailurePlan

	// Shards is the engine shard count: >= 2 partitions the event engine
	// by gateway across that many worker goroutines (see shard.go), 0 or 1
	// runs the classic serial engine. Results are byte-identical at every
	// value — schemes whose coupling forbids safe partitioning degrade to
	// parallel-tick or serial execution automatically — so the knob trades
	// wall-clock only, never fidelity.
	Shards int

	// Quotient marks this run as the collapsed form of a larger symmetric
	// scenario (internal/quotient): gateway q of this run stands for every
	// full-scenario gateway g with Quotient.FullHome[g] == q. The DSLAM,
	// PortOf and switch policy stay full-sized — each wake/sleep of q fans
	// out over its mirrored lines — and Result is expanded back to the full
	// scenario's shape with bit-exact accounting. Only the uncoupled
	// schemes (NoSleep, SoI, SoIFullSwitch) accept a plan; everything else
	// errors, because their cross-gateway coupling (shared RNG streams,
	// k-switch remap order, global re-solves) breaks the class symmetry.
	Quotient *QuotientPlan

	// DebugDecisions, when set, observes every BH2 decision (diagnostics
	// and tests only).
	DebugDecisions func(t float64, client int, views []bh2.GatewayView, d bh2.Decision)
}

// QuotientPlan describes how a collapsed run maps back onto the full
// symmetric scenario it stands for. The campaign collapse pass builds one
// from internal/quotient; the engine only consumes it.
type QuotientPlan struct {
	// FullGateways and FullClients size the full scenario. The DSLAM must
	// have at least FullGateways ports: the shelf carries every full line.
	FullGateways int
	FullClients  int
	// FullHome[g] is the quotient gateway (class index) standing for full
	// gateway g. Ascending iteration over FullHome is the full scenario's
	// gateway id order — result() folds energy and wakeups in exactly that
	// order so the float sums are bit-identical to the full run's.
	FullHome []int32
	// FullClientOf[c] is the quotient client standing for full client c.
	// Failure runs fold the per-client stranded/reconnect accumulators
	// through it in full client id order (again for bit-stable sums).
	FullClientOf []int32
}

// validate checks a plan against the quotient topology sizes.
func (qp *QuotientPlan) validate(nGW, nCl int) error {
	if qp.FullGateways < nGW {
		return fmt.Errorf("sim: quotient plan covers %d full gateways but the run has %d", qp.FullGateways, nGW)
	}
	if len(qp.FullHome) != qp.FullGateways {
		return fmt.Errorf("sim: quotient FullHome has %d entries for %d full gateways", len(qp.FullHome), qp.FullGateways)
	}
	seen := make([]bool, nGW)
	for g, q := range qp.FullHome {
		if q < 0 || int(q) >= nGW {
			return fmt.Errorf("sim: quotient FullHome[%d] = %d outside [0, %d)", g, q, nGW)
		}
		seen[q] = true
	}
	for q, ok := range seen {
		if !ok {
			return fmt.Errorf("sim: quotient gateway %d mirrors no full gateway", q)
		}
	}
	if qp.FullClients < nCl {
		return fmt.Errorf("sim: quotient plan covers %d full clients but the run has %d", qp.FullClients, nCl)
	}
	if len(qp.FullClientOf) != qp.FullClients {
		return fmt.Errorf("sim: quotient FullClientOf has %d entries for %d full clients", len(qp.FullClientOf), qp.FullClients)
	}
	for c, qc := range qp.FullClientOf {
		if qc < 0 || int(qc) >= nCl {
			return fmt.Errorf("sim: quotient FullClientOf[%d] = %d outside [0, %d)", c, qc, nCl)
		}
	}
	return nil
}

func (c Config) withDefaults() (Config, error) {
	if c.Trace == nil || c.Topo == nil {
		return c, fmt.Errorf("sim: missing trace or topology")
	}
	if c.Topo.NumClients() != c.Trace.Cfg.Clients {
		return c, fmt.Errorf("sim: topology has %d clients, trace %d", c.Topo.NumClients(), c.Trace.Cfg.Clients)
	}
	if c.Topo.NumGateways < c.Trace.Cfg.APs {
		return c, fmt.Errorf("sim: topology has %d gateways, trace needs %d", c.Topo.NumGateways, c.Trace.Cfg.APs)
	}
	if c.DSLAM.Cards == 0 {
		c.DSLAM = dsl.EvalDSLAM
	}
	if err := c.DSLAM.Validate(); err != nil {
		return c, err
	}
	// Under a quotient plan the shelf carries the full scenario's lines:
	// the port wiring, card population and policy are full-sized even
	// though only one gateway per class is simulated.
	nLines := c.Topo.NumGateways
	if c.Quotient != nil {
		if err := c.Quotient.validate(c.Topo.NumGateways, c.Topo.NumClients()); err != nil {
			return c, err
		}
		switch c.Scheme {
		case NoSleep, SoI, SoIFullSwitch:
		default:
			return c, fmt.Errorf("sim: scheme %v cannot run collapsed (cross-gateway coupling)", c.Scheme)
		}
		if c.RandomWake {
			return c, fmt.Errorf("sim: RandomWake cannot run collapsed (shared wake-delay stream)")
		}
		nLines = c.Quotient.FullGateways
	}
	if c.DSLAM.Ports() < nLines {
		return c, fmt.Errorf("sim: %d gateways exceed %d DSLAM ports", nLines, c.DSLAM.Ports())
	}
	if c.PortOf == nil {
		p, err := dsl.RandomAssignment(c.DSLAM, nLines, c.Seed)
		if err != nil {
			return c, err
		}
		c.PortOf = p
	}
	if c.K == 0 {
		c.K = 4
	}
	if c.BH2.PeriodSec == 0 {
		c.BH2 = bh2.DefaultParams()
	}
	if c.Scheme == BH2NoBackup {
		c.BH2.Backup = 0
	}
	if err := c.BH2.Validate(); err != nil {
		return c, err
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = dsl.IdleTimeoutSeconds
	}
	if c.WakeDelay == 0 {
		c.WakeDelay = dsl.WakeSeconds
	}
	if c.OptimalEvery == 0 {
		c.OptimalEvery = 60
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = 1
	}
	if c.Shards < 0 {
		return c, fmt.Errorf("sim: negative shard count %d", c.Shards)
	}
	var err error
	if c.Failures, err = c.Failures.normalized(c.Topo.NumGateways); err != nil {
		return c, err
	}
	return c, nil
}

// Result collects everything the evaluation figures need from one run.
type Result struct {
	Scheme   Scheme
	Duration float64

	// Per-time-bin series (one bin per SampleEvery seconds, averaged into
	// hourly bins by the figure code).
	PowerW      *stats.TimeSeries // total instantaneous draw
	UserPowerW  *stats.TimeSeries // gateways only
	ISPPowerW   *stats.TimeSeries // shelf + cards + port modems
	OnlineGWs   *stats.TimeSeries
	OnlineCards *stats.TimeSeries

	// FCT[i] is the completion time (seconds) of downlink flow i in
	// trace.Flows order; NaN for uplink flows (not simulated).
	FCT []float64

	// FlowStall[i] is the seconds flow i spent waiting for a waking
	// gateway — the delay component the paper's Fig 9a charges (its
	// simulator did not model bandwidth contention; see EXPERIMENTS.md).
	FlowStall []float64

	// GatewayOnTime[g] is gateway g's total non-sleeping seconds.
	GatewayOnTime []float64

	// CardOnTime[cd] is line card cd's total non-sleeping seconds — the
	// per-card introspection hook the analytic oracle (internal/oracle)
	// uses to compare measured card-sleep fractions against Eq 2. Under a
	// quotient run the shelf is full-sized, so the slice already has the
	// full scenario's card count.
	CardOnTime []float64

	Energy   power.Accounting // total joules split user/ISP
	Wakeups  int              // gateway wake transitions
	Moves    int              // BH2 re-associations
	Resolves int              // Optimal solver invocations
	OptGap   int              // resolves not proven optimal

	// DecisionReasons counts BH2 decision outcomes by reason — the §5.1
	// oscillation diagnostics.
	DecisionReasons map[bh2.Reason]int

	// Robustness metrics, populated only when Config.Failures is non-empty
	// (GatewayDownTime non-nil is the sentinel; Availability is 1 on
	// failure-free runs).
	Failures        int     // distinct gateway-down episodes
	FlowsAborted    int     // in-flight flows killed by a power cut
	StrandedSeconds float64 // total client-seconds without service after a failed attempt
	Reconnects      int     // stranded clients that regained service
	MeanRecoveryS   float64 // mean stranded-to-reconnected interval
	Availability    float64 // 1 - StrandedSeconds / (clients * Duration)
	GatewayDownTime []float64
	StrandedClients *stats.TimeSeries // stranded-client count per sample bin
}

// SavingsVs returns total energy savings of r against a baseline run.
func (r *Result) SavingsVs(base *Result) float64 { return r.Energy.SavingsVs(base.Energy) }

// Run executes one simulation to completion.
func Run(cfg Config) (*Result, error) { return RunContext(context.Background(), cfg) }

// RunContext executes one simulation under a context. Cancellation is
// checked at epoch granularity — every coordinator barrier of a sharded
// run, every few thousand events of a serial one — so a canceled run stops
// promptly (microseconds of simulation work, never a full run). A canceled
// run returns ctx's cause wrapped in an error and no Result: partial
// metrics would not be deterministic, so none are reported. Runs that
// complete are byte-identical to Run — the context is only ever polled,
// never woven into the event order.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("sim: canceled before start: %w", context.Cause(ctx))
	}
	s, err := newSim(cfg)
	if err != nil {
		return nil, err
	}
	s.ctx = ctx
	s.run()
	if s.aborted {
		return nil, fmt.Errorf("sim: canceled at t=%.0fs: %w", s.now, context.Cause(ctx))
	}
	return s.result(), nil
}

// MeanOver averages a result series over the time window [fromH, toH) hours.
func MeanOver(ts *stats.TimeSeries, fromH, toH float64) float64 {
	var w stats.Welford
	for i := 0; i < ts.Bins(); i++ {
		t := ts.BinTime(i) / 3600
		if t >= fromH && t < toH {
			w.Add(ts.MeanAt(i))
		}
	}
	return w.Mean()
}

// SavingsSeries computes per-bin fractional savings of run vs base power.
func SavingsSeries(run, base *Result) []float64 {
	out := make([]float64, run.PowerW.Bins())
	for i := range out {
		b := base.PowerW.MeanAt(i)
		if b > 0 {
			out[i] = 1 - run.PowerW.MeanAt(i)/b
		}
	}
	return out
}

// ISPShareSeries computes, per bin, the ISP fraction of total power savings
// vs the baseline (Fig 8). Bins with no savings report 0.
func ISPShareSeries(run, base *Result) []float64 {
	out := make([]float64, run.PowerW.Bins())
	for i := range out {
		saved := base.PowerW.MeanAt(i) - run.PowerW.MeanAt(i)
		ispSaved := base.ISPPowerW.MeanAt(i) - run.ISPPowerW.MeanAt(i)
		if saved > 1e-9 && ispSaved > 0 {
			out[i] = ispSaved / saved
		}
	}
	return out
}

var nan = math.NaN()
