package sim

import (
	"fmt"

	"insomnia/internal/kswitch"
	"insomnia/internal/power"
)

// strategy is the scheme-specific half of the simulator. The engine core
// (engine.go) owns time, transport and power accounting; everything that
// differs between the paper's schemes — initial device states, switch
// fabric, routing, periodic decisions and re-solves — lives behind this
// interface, one scheme_*.go file per scheme family. Strategies hold no
// mutable state of their own: all run state stays on *sim, so concurrent
// runs (internal/runner) never share anything writable.
type strategy interface {
	// initialState is the power state gateways, modems and cards start in.
	initialState() power.State
	// timeouts returns the gateway controller's idle timeout and wake delay.
	timeouts(cfg Config) (idle, wake float64)
	// newPolicy builds the DSLAM switch policy the scheme runs over.
	newPolicy(cfg Config) (kswitch.Policy, error)
	// postInit runs after devices and policy exist, before any event fires.
	postInit(s *sim)
	// seedEvents pushes the scheme's recurring events at t=0.
	seedEvents(s *sim)
	// route picks the gateway that will carry new traffic from client c,
	// waking devices as the scheme allows.
	route(s *sim, c int) int
	// onDecide handles an evDecide event (BH² schemes only).
	onDecide(s *sim, c int)
	// onResolve handles an evResolve event (coordinated schemes only).
	onResolve(s *sim)
	// onFailure is the failure-injection hook, fired after gateway gw loses
	// (up false) or regains (up true) power. Coordinated schemes use it to
	// react from the ISP side; distributed schemes are blinded — BH2
	// terminals only notice failures through missing beacons at their next
	// decision, and plain SoI not at all.
	onFailure(s *sim, gw int, up bool)
	// sleepCards reports whether line cards may follow the switch policy to
	// sleep (false under no-sleep).
	sleepCards() bool
	// parallelMode classifies how far the sharded engine may parallelize
	// the scheme while staying byte-identical to the serial engine (see
	// shard.go): modeLocal when every non-tick event is statically
	// shard-local, modeTick when the event order couples shards through a
	// shared RNG but the tick work is per-gateway, modeSerial otherwise.
	parallelMode() engineMode
	// usesDemand reports whether the scheme reads the per-client demand
	// counters (sim.clientBytes); the engine skips that accounting — and
	// keeps the parallel tick free of shared writes — when it does not.
	usesDemand() bool
}

// newStrategy maps a Scheme constant to its strategy implementation.
func newStrategy(sc Scheme) (strategy, error) {
	switch sc {
	case NoSleep:
		return noSleepScheme{}, nil
	case SoI:
		return soiScheme{fabric: fixedFabric}, nil
	case SoIKSwitch:
		return soiScheme{fabric: kSwitchFabric}, nil
	case SoIFullSwitch:
		return soiScheme{fabric: fullSwitchFabric}, nil
	case BH2KSwitch, BH2NoBackup: // no-backup differs only via cfg.BH2.Backup
		return bh2Scheme{fabric: kSwitchFabric}, nil
	case BH2FullSwitch:
		return bh2Scheme{fabric: fullSwitchFabric}, nil
	case Optimal:
		return optimalScheme{}, nil
	case Centralized:
		return centralizedScheme{}, nil
	default:
		return nil, fmt.Errorf("sim: unknown scheme %v", sc)
	}
}

// baseScheme supplies the defaults shared by every scheme: gateways start
// asleep with the configured timeouts, clients stick to their home gateway,
// cards may sleep, and there are no periodic scheme events.
type baseScheme struct{}

func (baseScheme) initialState() power.State              { return power.Sleeping }
func (baseScheme) timeouts(cfg Config) (float64, float64) { return cfg.IdleTimeout, cfg.WakeDelay }
func (baseScheme) postInit(*sim)                          {}
func (baseScheme) seedEvents(*sim)                        {}
func (baseScheme) route(s *sim, c int) int                { return s.clients[c].home }
func (baseScheme) onDecide(*sim, int)                     {}
func (baseScheme) onResolve(*sim)                         {}
func (baseScheme) onFailure(*sim, int, bool)              {}
func (baseScheme) sleepCards() bool                       { return true }
func (baseScheme) parallelMode() engineMode               { return modeSerial }
func (baseScheme) usesDemand() bool                       { return false }

// fabric selects the DSLAM switch model a scheme runs over (§4).
type fabric int

const (
	fixedFabric      fabric = iota // hard-wired line-to-port mapping
	kSwitchFabric                  // k-switch groups (§4.2)
	fullSwitchFabric               // idealized any-to-any switch
)

func (f fabric) build(cfg Config) (kswitch.Policy, error) {
	switch f {
	case kSwitchFabric:
		return kswitch.NewKSwitch(cfg.DSLAM, cfg.K, cfg.PortOf)
	case fullSwitchFabric:
		return kswitch.NewFullSwitch(cfg.DSLAM, cfg.PortOf)
	default:
		return kswitch.NewFixed(cfg.DSLAM, cfg.PortOf)
	}
}
