package sim

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"insomnia/internal/bh2"
	"insomnia/internal/kswitch"
	"insomnia/internal/power"
	"insomnia/internal/soi"
	"insomnia/internal/stats"
	"insomnia/internal/wifi"
)

type flowState struct {
	gw        int
	client    int
	rem       float64 // remaining bytes
	capBps    float64 // min(wireless link, application rate) at routing time
	done      bool
	up        bool
	completed float64

	// Wake-stall accounting: time the flow sat waiting for its gateway to
	// finish waking. Fig 9a's paper-comparable variant charges only this
	// to the completion time.
	stallFrom float64 // >=0 while waiting; -1 otherwise
	stalled   float64 // accumulated wake-wait seconds
}

type gateway struct {
	id         int
	ctl        *soi.Controller
	modem      *power.Device
	flows      []int // indices into sim.flows
	lastElapse float64
	complEpoch int64

	sn           wifi.SeqCounter
	byteResidual float64
	est          *wifi.LoadEstimator
	// checkAt is the time of the earliest outstanding evGwCheck for this
	// gateway (+Inf when none): armGwCheck pushes only when the controller's
	// next transition precedes it, so a gateway holds one live check event
	// instead of one per touch (keepalives would otherwise flood the heap
	// with stale checks).
	checkAt float64
	// estResetTick is sim.tickCount as of the estimator's last Reset; the
	// lazy-sampling catch-up on wake uses it to decide whether any tick
	// observed the gateway since (see sim.awaken).
	estResetTick int64

	// pending lists clients waiting for this (their home) gateway to
	// finish waking, so wake completion hands them back in O(|waiting|)
	// instead of scanning every client.
	pending []int

	// Failure injection (failures.go). failDepth counts the overlapping
	// failure causes currently holding the gateway down (a crash inside an
	// outage window nests); the gateway is operative iff it is zero.
	// stranded lists the clients whose last service attempt died on this
	// gateway, so recovery reconnects exactly them in O(|stranded|).
	failDepth int32
	downSince float64
	stranded  []int32

	// Completion-arming cache (scheduleCompletion): valid while schedGen
	// matches flowsGen, which is bumped on every membership change of
	// flows. schedMin is the flow index that completes first;
	// schedAllUncapped records whether every flow was limited by the
	// processor-sharing rate rather than its own cap at the last scan.
	flowsGen         int64
	schedGen         int64
	schedMin         int
	schedAllUncapped bool
}

type client struct {
	home        int
	assigned    int
	pendingHome bool
	pendingPos  int // index in the home gateway's pending list; -1 when absent
}

// sinkOp is one deferred switch-fabric side effect (a line going active or
// inactive). The kswitch policy and the line-card devices are shared across
// gateway shards but are pure sinks — nothing they compute feeds back into
// gateway or client dynamics — so shards queue these ops locally and the
// coordinator replays the merged queues in global time order at each epoch
// barrier (see drainSinks), reproducing the serial call sequence exactly.
type sinkOp struct {
	t    float64
	gw   int32
	wake bool
}

// shard is one lane of the event engine: a contiguous range of gateways
// [lo, hi) together with everything needed to advance them independently —
// a private event heap and sequence counter, private cursors into the trace
// streams, the awake bitset for its gateways and the deferred sink queue.
//
// The serial engine is the one-shard special case: a single lane covering
// every gateway and every trace record (flowOrder/keepOrder nil), with sink
// ops applied inline (deferSinks false). The sharded engine (shard.go) runs
// S lanes plus a coordinator lane that carries only the globally-ordered
// events (ticks, BH2 decisions, re-solves).
type shard struct {
	id     int
	lo, hi int // gateway id range [lo, hi)

	now float64
	h   eventHeap
	seq int64
	// fenceSeq is the lane's seq counter snapshotted when the current
	// epoch's phase began. A heap event at exactly the fence time still
	// runs this phase iff it was pushed before the phase started —
	// reproducing the serial heap's (t, seq) tie order against the
	// coordinator event, whose push always precedes the phase (the tick
	// for time K is pushed while handling the tick for K-1).
	fenceSeq int64

	// Trace cursors. When flowOrder/keepOrder are nil the lane consumes
	// trace records directly (serial); otherwise they index the records
	// whose client homes on this shard, in trace (= time) order.
	flowIdx, keepIdx     int
	flowOrder, keepOrder []int32

	// Active-gateway set over [lo, hi): bit g-lo set while gateway g is
	// outside Sleeping (as far as the event machinery knows). tick()
	// iterates only set members, making sampling O(awake); sleeping
	// devices integrate in closed form. awakeN counts set bits.
	bits   []uint64
	awakeN int

	deferSinks bool
	sinks      []sinkOp

	// strandedN counts clients currently stranded on this lane's gateways
	// (failure runs only). Kept per lane so lanes never write a shared
	// counter; tick sums the lanes at the barrier.
	strandedN int
}

// push assigns the lane's next sequence number and queues the event.
func (sh *shard) push(e event) {
	sh.seq++
	e.seq = sh.seq
	sh.h.push(e)
}

type sim struct {
	cfg   Config
	strat strategy
	now   float64 // main-lane clock (strategies and tick always run on main)
	end   float64

	// Cancellation (RunContext). ctx is polled at epoch granularity — every
	// coordinator fence in sharded runs, every cancelCheckEvery events in
	// serial ones — never inside an event handler, so an uncanceled run's
	// event sequence (and therefore its result) is identical whether or not
	// a context was supplied. aborted records that the run stopped early;
	// its partial state is discarded, not reported.
	ctx     context.Context
	aborted bool

	gws     []gateway
	clients []client
	policy  kswitch.Policy
	cards   []*power.Device
	cardOn  []bool
	cardBuf []bool // reusable CardsAwakeInto scratch
	shelf   *power.Device

	// Engine lanes. shards hold the gateway-owning lanes (length 1 unless
	// the run is modeLocal with Config.Shards >= 2); main is the lane
	// strategy code, ticks and the serial driver execute on — &shards[0]
	// in single-lane runs, the coordinator lane co in sharded ones.
	shards  []shard
	co      shard
	main    *shard
	gwShard []int32 // gateway -> owning shard index; nil when single-lane
	mode    engineMode
	pool    *shardPool
	sinkIdx []int // drainSinks merge cursors (reused across epochs)

	// Quotient expansion (Config.Quotient non-nil, nil otherwise).
	// mirror[q] lists the full-scenario line ids gateway q stands for,
	// ascending; weight[q] is their multiplicity. Line wake/sleep ops fan
	// out over the mirror (applyLineOp), and tick/result weight their
	// per-gateway terms by the multiplicity.
	mirror [][]int32
	weight []float64

	// needDemand gates the per-client demand accounting (clientBytes):
	// only the coordinated schemes ever read it (demandInstance), so the
	// hot transport path skips the accumulation — and the parallel tick
	// never writes shared state — for every other scheme.
	needDemand bool

	tickCount int64   // ticks fired so far
	lastTickT float64 // time of the most recent tick

	flows []flowState

	// Optimal bookkeeping.
	clientBytes []float64

	// lastTraffic[c] is the last time client c sent or received anything;
	// a terminal with no traffic for ~2 estimation windows is considered
	// powered off and runs no BH2 decisions (the algorithm lives on the
	// terminal).
	lastTraffic []float64

	decRNG  *rand.Rand
	wakeRNG *rand.Rand

	// Failure injection (failures.go); all nil/zero on failure-free runs.
	// The per-client float accumulators (strandedSec, reconnSec) exist so
	// the result sums them in client index order — bit-identical at every
	// shard count — instead of accumulating across lanes in arrival order.
	hasFailures     bool
	failSched       []failEvent
	failIdx         int
	strandedFrom    []float64 // stranding epoch per client (valid while strandedOn >= 0)
	strandedOn      []int32   // gateway the client is stranded on; -1 when served
	strandedPos     []int32   // index in that gateway's stranded list
	strandedSec     []float64
	reconnSec       []float64
	reconnN         []int32
	downTime        []float64 // per-gateway seconds without power
	failures        int       // distinct gateway-down episodes
	flowsAborted    int
	strandedTS      *stats.TimeSeries
	lastFailResolve float64 // dedups the coordinated schemes' failure re-solve per instant

	// Metrics.
	powerTS, userTS, ispTS, gwTS, cardTS *stats.TimeSeries
	moves, resolves, optGap              int
	reasons                              map[bh2.Reason]int
}

func newSim(cfg Config) (*sim, error) {
	strat, err := newStrategy(cfg.Scheme)
	if err != nil {
		return nil, err
	}
	nGW := cfg.Topo.NumGateways
	nCl := cfg.Topo.NumClients()
	end := cfg.Trace.Cfg.Duration

	s := &sim{
		cfg: cfg, strat: strat, end: end,
		gws:         make([]gateway, nGW),
		clients:     make([]client, nCl),
		cards:       make([]*power.Device, cfg.DSLAM.Cards),
		cardOn:      make([]bool, cfg.DSLAM.Cards),
		clientBytes: make([]float64, nCl),
		decRNG:      stats.NewRNG(cfg.Seed, 0xdec1de),
		wakeRNG:     stats.NewRNG(cfg.Seed, 0x3a7e),
		flows:       make([]flowState, len(cfg.Trace.Flows)),
		reasons:     make(map[bh2.Reason]int),
		lastTraffic: make([]float64, nCl),

		lastFailResolve: -1,
	}
	for c := range s.lastTraffic {
		s.lastTraffic[c] = math.Inf(-1)
	}
	if qp := cfg.Quotient; qp != nil {
		s.mirror = make([][]int32, nGW)
		s.weight = make([]float64, nGW)
		for line, q := range qp.FullHome {
			s.mirror[q] = append(s.mirror[q], int32(line))
			s.weight[q]++
		}
	}
	s.mode = strat.parallelMode()
	if cfg.RandomWake && s.mode == modeLocal {
		// RandomWake draws every wake delay from one shared stream in
		// global event order; shard-local wakes would reorder the draws.
		// The parallel-tick mode keeps the event loop serial.
		s.mode = modeTick
	}
	s.needDemand = strat.usesDemand()

	bins := int(end / cfg.SampleEvery)
	s.powerTS = stats.NewTimeSeries(0, end, bins)
	s.userTS = stats.NewTimeSeries(0, end, bins)
	s.ispTS = stats.NewTimeSeries(0, end, bins)
	s.gwTS = stats.NewTimeSeries(0, end, bins)
	s.cardTS = stats.NewTimeSeries(0, end, bins)

	// §5.2: "the simulation starts with all the gateways sleeping" — unless
	// the scheme (no-sleep) says otherwise.
	initState := strat.initialState()
	idle, wake := strat.timeouts(cfg)

	for g := 0; g < nGW; g++ {
		dev := power.NewDevice(fmt.Sprintf("gw%d", g), power.GatewayWatts, initState, 0)
		est := wifi.NewLoadEstimator(cfg.Trace.Cfg.BackhaulBps)
		// BH2 terminals never query past EstWindow, so the estimator may
		// discard older samples instead of growing one sample per tick for
		// the whole run.
		est.MaxAgeSec = cfg.BH2.EstWindow
		s.gws[g] = gateway{
			id:       g,
			ctl:      soi.New(dev, idle, wake, 0),
			modem:    power.NewDevice(fmt.Sprintf("modem%d", g), power.ISPModemWatts, initState, 0),
			est:      est,
			schedGen: -1,          // no completion scan cached yet
			checkAt:  math.Inf(1), // no outstanding gwCheck event
		}
	}
	for c := 0; c < nCl; c++ {
		s.clients[c] = client{home: cfg.Topo.HomeOf[c], assigned: cfg.Topo.HomeOf[c], pendingPos: -1}
	}
	s.buildLanes(initState != power.Sleeping)

	if s.policy, err = strat.newPolicy(cfg); err != nil {
		return nil, err
	}
	for cd := range s.cards {
		s.cards[cd] = power.NewDevice(fmt.Sprintf("card%d", cd), power.LineCardWatts, initState, 0)
		s.cardOn[cd] = initState == power.On
	}
	s.shelf = power.NewDevice("shelf", power.ShelfWatts, power.On, 0)
	strat.postInit(s)

	// Seed periodic events (always on the main lane: ticks, decisions and
	// re-solves carry global order). Failure events due at t=0 are armed
	// last; later ones chain off the tick handler (see armFailures).
	s.push(event{t: 0, kind: evTick})
	strat.seedEvents(s)
	if !cfg.Failures.Empty() {
		s.initFailures(bins)
		s.armFailures(0)
	}
	return s, nil
}

// push queues an event on the main lane.
func (s *sim) push(e event) { s.main.push(e) }
