package sim

import (
	"fmt"
	"math"
	"math/rand"

	"insomnia/internal/bh2"
	"insomnia/internal/kswitch"
	"insomnia/internal/power"
	"insomnia/internal/soi"
	"insomnia/internal/stats"
	"insomnia/internal/wifi"
)

type flowState struct {
	gw        int
	client    int
	rem       float64 // remaining bytes
	capBps    float64 // min(wireless link, application rate) at routing time
	done      bool
	up        bool
	completed float64

	// Wake-stall accounting: time the flow sat waiting for its gateway to
	// finish waking. Fig 9a's paper-comparable variant charges only this
	// to the completion time.
	stallFrom float64 // >=0 while waiting; -1 otherwise
	stalled   float64 // accumulated wake-wait seconds
}

type gateway struct {
	id         int
	ctl        *soi.Controller
	modem      *power.Device
	flows      []int // indices into sim.flows
	lastElapse float64
	complEpoch int64

	sn           wifi.SeqCounter
	byteResidual float64
	est          *wifi.LoadEstimator
	// checkAt is the time of the earliest outstanding evGwCheck for this
	// gateway (+Inf when none): armGwCheck pushes only when the controller's
	// next transition precedes it, so a gateway holds one live check event
	// instead of one per touch (keepalives would otherwise flood the heap
	// with stale checks).
	checkAt float64
	// estResetTick is sim.tickCount as of the estimator's last Reset; the
	// lazy-sampling catch-up on wake uses it to decide whether any tick
	// observed the gateway since (see sim.awaken).
	estResetTick int64

	// pending lists clients waiting for this (their home) gateway to
	// finish waking, so wake completion hands them back in O(|waiting|)
	// instead of scanning every client.
	pending []int

	// Completion-arming cache (scheduleCompletion): valid while schedGen
	// matches flowsGen, which is bumped on every membership change of
	// flows. schedMin is the flow index that completes first;
	// schedAllUncapped records whether every flow was limited by the
	// processor-sharing rate rather than its own cap at the last scan.
	flowsGen         int64
	schedGen         int64
	schedMin         int
	schedAllUncapped bool
}

type client struct {
	home        int
	assigned    int
	pendingHome bool
	pendingPos  int // index in the home gateway's pending list; -1 when absent
}

type sim struct {
	cfg   Config
	strat strategy
	now   float64
	end   float64
	h     eventHeap
	seq   int64

	gws     []*gateway
	clients []*client
	policy  kswitch.Policy
	cards   []*power.Device
	cardOn  []bool
	cardBuf []bool // reusable CardsAwakeInto scratch
	shelf   *power.Device

	// Active-gateway set: bit g set while gateway g is outside Sleeping
	// (as far as the event machinery knows). tick() iterates only set
	// members, making sampling O(awake) instead of O(all gateways);
	// sleeping devices integrate in closed form (they draw
	// power.SleepWatts). awakeN counts set bits.
	awakeBits []uint64
	awakeN    int
	tickCount int64   // ticks fired so far
	lastTickT float64 // time of the most recent tick

	flows   []flowState
	flowIdx int // next trace flow
	keepIdx int // next trace keepalive

	// Optimal bookkeeping.
	clientBytes []float64

	// lastTraffic[c] is the last time client c sent or received anything;
	// a terminal with no traffic for ~2 estimation windows is considered
	// powered off and runs no BH2 decisions (the algorithm lives on the
	// terminal).
	lastTraffic []float64

	decRNG  *rand.Rand
	wakeRNG *rand.Rand

	// Metrics.
	powerTS, userTS, ispTS, gwTS, cardTS *stats.TimeSeries
	moves, resolves, optGap              int
	reasons                              map[bh2.Reason]int
}

func newSim(cfg Config) (*sim, error) {
	strat, err := newStrategy(cfg.Scheme)
	if err != nil {
		return nil, err
	}
	nGW := cfg.Topo.NumGateways
	nCl := cfg.Topo.NumClients()
	end := cfg.Trace.Cfg.Duration

	s := &sim{
		cfg: cfg, strat: strat, end: end,
		gws:         make([]*gateway, nGW),
		clients:     make([]*client, nCl),
		cards:       make([]*power.Device, cfg.DSLAM.Cards),
		cardOn:      make([]bool, cfg.DSLAM.Cards),
		clientBytes: make([]float64, nCl),
		decRNG:      stats.NewRNG(cfg.Seed, 0xdec1de),
		wakeRNG:     stats.NewRNG(cfg.Seed, 0x3a7e),
		flows:       make([]flowState, len(cfg.Trace.Flows)),
		reasons:     make(map[bh2.Reason]int),
		lastTraffic: make([]float64, nCl),
	}
	for c := range s.lastTraffic {
		s.lastTraffic[c] = math.Inf(-1)
	}

	bins := int(end / cfg.SampleEvery)
	s.powerTS = stats.NewTimeSeries(0, end, bins)
	s.userTS = stats.NewTimeSeries(0, end, bins)
	s.ispTS = stats.NewTimeSeries(0, end, bins)
	s.gwTS = stats.NewTimeSeries(0, end, bins)
	s.cardTS = stats.NewTimeSeries(0, end, bins)

	// §5.2: "the simulation starts with all the gateways sleeping" — unless
	// the scheme (no-sleep) says otherwise.
	initState := strat.initialState()
	idle, wake := strat.timeouts(cfg)

	for g := 0; g < nGW; g++ {
		dev := power.NewDevice(fmt.Sprintf("gw%d", g), power.GatewayWatts, initState, 0)
		est := wifi.NewLoadEstimator(cfg.Trace.Cfg.BackhaulBps)
		// BH2 terminals never query past EstWindow, so the estimator may
		// discard older samples instead of growing one sample per tick for
		// the whole run.
		est.MaxAgeSec = cfg.BH2.EstWindow
		s.gws[g] = &gateway{
			id:       g,
			ctl:      soi.New(dev, idle, wake, 0),
			modem:    power.NewDevice(fmt.Sprintf("modem%d", g), power.ISPModemWatts, initState, 0),
			est:      est,
			schedGen: -1,          // no completion scan cached yet
			checkAt:  math.Inf(1), // no outstanding gwCheck event
		}
	}
	for c := 0; c < nCl; c++ {
		s.clients[c] = &client{home: cfg.Topo.HomeOf[c], assigned: cfg.Topo.HomeOf[c], pendingPos: -1}
	}
	s.awakeBits = make([]uint64, (nGW+63)/64)
	if initState != power.Sleeping {
		for g := 0; g < nGW; g++ {
			s.awakeBits[g>>6] |= 1 << (uint(g) & 63)
		}
		s.awakeN = nGW
	}

	if s.policy, err = strat.newPolicy(cfg); err != nil {
		return nil, err
	}
	for cd := range s.cards {
		s.cards[cd] = power.NewDevice(fmt.Sprintf("card%d", cd), power.LineCardWatts, initState, 0)
		s.cardOn[cd] = initState == power.On
	}
	s.shelf = power.NewDevice("shelf", power.ShelfWatts, power.On, 0)
	strat.postInit(s)

	// Seed periodic events.
	s.push(event{t: 0, kind: evTick})
	strat.seedEvents(s)
	return s, nil
}

func (s *sim) push(e event) {
	s.seq++
	e.seq = s.seq
	s.h.push(e)
}
