package sim

import (
	"math"

	"insomnia/internal/kswitch"
	"insomnia/internal/power"
)

// noSleepScheme is the §5.1 baseline: every device is on from t=0 and the
// infinite idle timeout means nothing ever sleeps. It anchors the savings
// comparisons of Figs 6-8 and the headline numbers.
type noSleepScheme struct{ baseScheme }

func (noSleepScheme) initialState() power.State { return power.On }

func (noSleepScheme) timeouts(cfg Config) (float64, float64) {
	return math.Inf(1), cfg.WakeDelay
}

func (noSleepScheme) newPolicy(cfg Config) (kswitch.Policy, error) {
	return fixedFabric.build(cfg)
}

// postInit marks every line active so cards and modems never sleep. Under
// a quotient run that is every full-scenario line (via applyLineOp's
// mirror fan-out), not just the simulated representatives.
func (noSleepScheme) postInit(s *sim) {
	for g := range s.gws {
		s.applyLineOp(g, true, 0)
	}
	for cd := range s.cardOn {
		s.cardOn[cd] = true
	}
}

func (noSleepScheme) sleepCards() bool { return false }

// Routing is always the home gateway and nothing ever sleeps: every event
// is shard-local.
func (noSleepScheme) parallelMode() engineMode { return modeLocal }
