package sim

import (
	"math"

	"insomnia/internal/kswitch"
	"insomnia/internal/optimal"
	"insomnia/internal/power"
)

// optimalScheme is the paper's upper bound (§5.1): an oracle re-solves
// Eq (1) every minute over a full switch, opens exactly the chosen
// gateways by fiat (zero wake delay) and migrates in-flight flows with no
// disruption. Gateways left out of the solution are closed immediately.
type optimalScheme struct{ baseScheme }

// timeouts: sleeps happen only by resolver fiat, migration is instant.
func (optimalScheme) timeouts(cfg Config) (float64, float64) {
	return math.Inf(1), 0
}

func (optimalScheme) newPolicy(cfg Config) (kswitch.Policy, error) {
	return fullSwitchFabric.build(cfg)
}

// The per-minute solve reads every client's demand and routes across the
// whole topology: the run stays on the serial engine.
func (optimalScheme) usesDemand() bool { return true }

func (optimalScheme) seedEvents(s *sim) {
	s.push(event{t: s.cfg.OptimalEvery, kind: evResolve})
}

// route prefers the current assignment, then any open in-range gateway,
// else opens the home gateway by fiat.
func (sc optimalScheme) route(s *sim, c int) int {
	cl := &s.clients[c]
	if g := &s.gws[cl.assigned]; g.ctl.Awake() {
		return cl.assigned
	}
	for _, gw := range s.cfg.Topo.InRange(c) {
		if s.gws[gw].ctl.Awake() {
			cl.assigned = gw
			return gw
		}
	}
	cl.assigned = cl.home
	return cl.home
}

// demandInstance snapshots each client's demand since the last re-solve
// into an Eq (1) instance, clearing the byte counters and counting the
// resolve. Shared by the Optimal and Centralized schemes so their solver
// inputs can never drift apart.
func demandInstance(s *sim) (optimal.Instance, []int) {
	nGW := s.cfg.Topo.NumGateways
	in := optimal.Instance{Q: 1, Backup: 0, Caps: make([]float64, nGW)}
	for j := range in.Caps {
		in.Caps[j] = s.cfg.Trace.Cfg.BackhaulBps
	}
	var users []int
	for c, bytes := range s.clientBytes {
		if bytes <= 0 {
			continue
		}
		d := bytes * 8 / s.cfg.OptimalEvery
		if d > s.cfg.Trace.Cfg.BackhaulBps {
			d = s.cfg.Trace.Cfg.BackhaulBps
		}
		row := make([]float64, nGW)
		for _, gw := range s.cfg.Topo.InRange(c) {
			row[gw] = s.cfg.Topo.LinkBps(c, gw)
			if row[gw] < d {
				row[gw] = d // in-range gateways stay eligible even at full-rate demand
			}
		}
		in.W = append(in.W, row)
		in.Demands = append(in.Demands, d)
		users = append(users, c)
	}
	for c := range s.clientBytes {
		s.clientBytes[c] = 0
	}
	s.resolves++
	return in, users
}

func (sc optimalScheme) onResolve(s *sim) {
	in, users := demandInstance(s)
	if len(users) == 0 {
		// Nobody active: close everything.
		for gwID := range s.gws {
			sc.closeGateway(s, &s.gws[gwID])
		}
		return
	}
	sol, err := optimal.Solve(in, 50000)
	if err != nil {
		// Cannot happen with the fallback-eligible W above; keep state.
		return
	}
	if !sol.Optimal {
		s.optGap++
	}
	for ui, c := range users {
		s.clients[c].assigned = sol.Assign[ui][0]
	}
	// Open/close gateways; migrate flows off closing ones first.
	for gwID := range s.gws {
		g := &s.gws[gwID]
		if sol.Open[gwID] {
			if g.ctl.State() != power.On {
				s.touch(s.main, g, s.now) // WakeDelay 0: usable immediately
				s.gwCheck(s.main, g)
			}
		}
	}
	for gwID := range s.gws {
		g := &s.gws[gwID]
		if sol.Open[gwID] || g.ctl.State() == power.Sleeping {
			continue
		}
		sc.migrateFlows(s, g)
		sc.closeGateway(s, g)
	}
	s.policy.Repack()
	s.updateCards(s.now)
}

// migrateFlows moves g's in-flight flows to their clients' new gateways
// with zero downtime (the idealized migration of §5.1).
func (sc optimalScheme) migrateFlows(s *sim, g *gateway) {
	if len(g.flows) == 0 {
		return
	}
	s.elapse(g, s.now)
	moving := g.flows
	g.flows = nil
	g.flowsGen++
	g.complEpoch++
	for _, fi := range moving {
		f := &s.flows[fi]
		target := s.clients[f.client].assigned
		tg := &s.gws[target]
		if !tg.ctl.Awake() {
			// Assignment landed on a closed gateway (client had no demand
			// this round): ride any open in-range one.
			target = sc.route(s, f.client)
			tg = &s.gws[target]
		}
		s.elapse(tg, s.now)
		f.gw = target
		f.capBps = s.linkBps(f.client, target)
		if r := s.cfg.Trace.Flows[fi].Rate; r > 0 && r < f.capBps {
			f.capBps = r
		}
		tg.flows = append(tg.flows, fi)
		tg.flowsGen++
		s.touch(s.main, tg, s.now)
		s.scheduleCompletion(s.main, tg)
	}
}

// onFailure: the oracle notices instantly and re-solves, opening substitute
// gateways for the stranded area. Its fiat wake (touch) is still gated on
// failed gateways — even the upper bound cannot power a dead line.
func (sc optimalScheme) onFailure(s *sim, gw int, up bool) {
	if !up {
		scheduleFailureResolve(s)
	}
}

func (optimalScheme) closeGateway(s *sim, g *gateway) {
	if g.ctl.State() == power.Sleeping {
		return
	}
	s.elapse(g, s.now)
	g.ctl.Sleep(s.now)
	g.modem.SetState(s.now, power.Sleeping)
	s.policy.OnSleep(g.id)
	g.est.Reset()
	s.quiesce(s.main, g)
}
