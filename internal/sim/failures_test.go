package sim

import (
	"math"
	"testing"

	"insomnia/internal/topology"
	"insomnia/internal/trace"
)

// testFailurePlan is the failure scenario the golden corpus and the shard
// determinism table share: one mid-run crash with a drawn reboot, an area
// outage over half the gateways, and a crash nested inside the outage
// window (exercising the overlap depth counter).
func testFailurePlan() FailurePlan {
	return FailurePlan{
		Crashes: []GatewayCrash{
			{At: 1800, Gateway: 2},
			{At: 4000, Gateway: 5, RebootSec: 120},
		},
		Outages: []OutageWindow{{Start: 3600, DurationSec: 900, FromGW: 4, ToGW: 8}},
	}
}

func TestFailurePlanValidation(t *testing.T) {
	tr, tp := smallScenario(t, 9)
	bad := []FailurePlan{
		{Crashes: []GatewayCrash{{At: -1, Gateway: 0}}},
		{Crashes: []GatewayCrash{{At: 10, Gateway: 99}}},
		{Crashes: []GatewayCrash{{At: 10, Gateway: 0, RebootSec: -5}}},
		{Crashes: []GatewayCrash{{At: math.NaN(), Gateway: 0}}},
		{Outages: []OutageWindow{{Start: 10, DurationSec: 0, FromGW: 0, ToGW: 2}}},
		{Outages: []OutageWindow{{Start: 10, DurationSec: 60, FromGW: 3, ToGW: 3}}},
		{Outages: []OutageWindow{{Start: 10, DurationSec: 60, FromGW: 0, ToGW: 99}}},
		{Crashes: []GatewayCrash{{At: 10, Gateway: 0}}, RebootMeanSec: -1},
		{Crashes: []GatewayCrash{{At: 10, Gateway: 0}}, RebootSigma: -1},
	}
	for i, p := range bad {
		if _, err := Run(Config{Trace: tr, Topo: tp, Scheme: SoI, Seed: 9, Failures: p}); err == nil {
			t.Errorf("plan %d: invalid failure plan accepted", i)
		}
	}
	// The zero plan must not trip validation or allocate failure state.
	if _, err := Run(Config{Trace: tr, Topo: tp, Scheme: SoI, Seed: 9}); err != nil {
		t.Fatalf("zero plan rejected: %v", err)
	}
}

func TestFailureScheduleOrder(t *testing.T) {
	p, err := FailurePlan{
		Crashes: []GatewayCrash{{At: 100, Gateway: 1, RebootSec: 50}, {At: 100, Gateway: 0, RebootSec: 100}},
		Outages: []OutageWindow{{Start: 50, DurationSec: 100, FromGW: 2, ToGW: 4}},
	}.normalized(4)
	if err != nil {
		t.Fatal(err)
	}
	sched := buildFailSchedule(p, 1)
	if len(sched) != 8 {
		t.Fatalf("schedule has %d entries, want 8", len(sched))
	}
	for i := 1; i < len(sched); i++ {
		a, b := sched[i-1], sched[i]
		if a.t > b.t {
			t.Fatalf("schedule out of time order at %d: %v after %v", i, b.t, a.t)
		}
		if a.t == b.t && a.up && !b.up {
			t.Fatalf("recovery sorted before same-time failure at %d", i)
		}
	}
	// Outage recoveries include a drawn reboot: strictly after power return.
	for _, fe := range sched {
		if fe.up && fe.gw >= 2 && fe.t <= 150 {
			t.Errorf("outage gateway %d recovered at %v, before power-return + reboot", fe.gw, fe.t)
		}
	}
}

// singleGWTopo builds a one-gateway topology for hand-calculable cases.
func singleGWTopo(t *testing.T, tr *trace.Trace) *topology.Topology {
	t.Helper()
	tp, err := topology.FromOverlap(&topology.Graph{Adj: make([][]int, 1)}, tr.ClientAP)
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

// TestStrandedClientRegression pins the stranded/recovery accounting on a
// hand-built scenario: one client keepaliving every 10 s against its home
// gateway, which crashes at t=100 and reboots in exactly 50 s. The crash
// event runs before the same-instant keepalive (heap events win ties over
// trace records), so the keepalive at t=100 is the first dead attempt and
// recovery lands at t=150: 50 s stranded, one reconnect.
func TestStrandedClientRegression(t *testing.T) {
	var keeps []trace.Packet
	for ts := 10.0; ts < 590; ts += 10 {
		keeps = append(keeps, trace.Packet{T: ts, Client: 0, Bytes: 100})
	}
	tr := &trace.Trace{
		Cfg:        trace.Config{Clients: 1, APs: 1, Duration: 600, BackhaulBps: trace.DefaultBackhaulBps},
		Keepalives: keeps,
		ClientAP:   []int{0},
	}
	res, err := Run(Config{
		Trace: tr, Topo: singleGWTopo(t, tr), Scheme: SoI, Seed: 1,
		Failures: FailurePlan{Crashes: []GatewayCrash{{At: 100, Gateway: 0, RebootSec: 50}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 1 {
		t.Errorf("Failures = %d, want 1", res.Failures)
	}
	if res.StrandedSeconds != 50 {
		t.Errorf("StrandedSeconds = %v, want 50 (stranded 100..150)", res.StrandedSeconds)
	}
	if res.Reconnects != 1 {
		t.Errorf("Reconnects = %d, want 1", res.Reconnects)
	}
	if res.MeanRecoveryS != 50 {
		t.Errorf("MeanRecoveryS = %v, want 50", res.MeanRecoveryS)
	}
	if want := 1 - 50.0/600; math.Abs(res.Availability-want) > 1e-12 {
		t.Errorf("Availability = %v, want %v", res.Availability, want)
	}
	if len(res.GatewayDownTime) != 1 || res.GatewayDownTime[0] != 50 {
		t.Errorf("GatewayDownTime = %v, want [50]", res.GatewayDownTime)
	}
	// The stranded series must see the client in bins [110,150).
	if got := res.StrandedClients.MeanAt(120); got != 1 {
		t.Errorf("stranded series at 120 s = %v, want 1", got)
	}
	if got := res.StrandedClients.MeanAt(300); got != 0 {
		t.Errorf("stranded series at 300 s = %v, want 0", got)
	}
}

// TestFailureStrandedToHorizon covers the unrecovered tail: a crash whose
// reboot extends past the end of the trace leaves the client stranded to
// the horizon with no reconnect.
func TestFailureStrandedToHorizon(t *testing.T) {
	tr := &trace.Trace{
		Cfg:        trace.Config{Clients: 1, APs: 1, Duration: 300, BackhaulBps: trace.DefaultBackhaulBps},
		Keepalives: []trace.Packet{{T: 50, Client: 0, Bytes: 100}, {T: 150, Client: 0, Bytes: 100}},
		ClientAP:   []int{0},
	}
	res, err := Run(Config{
		Trace: tr, Topo: singleGWTopo(t, tr), Scheme: SoI, Seed: 1,
		Failures: FailurePlan{Crashes: []GatewayCrash{{At: 100, Gateway: 0, RebootSec: 1e6}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.StrandedSeconds != 150 {
		t.Errorf("StrandedSeconds = %v, want 150 (stranded 150..300)", res.StrandedSeconds)
	}
	if res.Reconnects != 0 {
		t.Errorf("Reconnects = %d, want 0", res.Reconnects)
	}
	if res.GatewayDownTime[0] != 200 {
		t.Errorf("GatewayDownTime = %v, want 200 (down 100..300)", res.GatewayDownTime[0])
	}
}

// TestFailureAbortsFlows: a flow in flight when the power cut lands is
// aborted — no completion time, counted in FlowsAborted, its client
// stranded from the cut itself.
func TestFailureAbortsFlows(t *testing.T) {
	tr := &trace.Trace{
		Cfg: trace.Config{Clients: 1, APs: 1, Duration: 600, BackhaulBps: trace.DefaultBackhaulBps},
		// 60 MB at 6 Mbps is ~80 s of service: started at 20, still in
		// flight at the crash (100).
		Flows:    []trace.Flow{{Start: 20, Client: 0, Bytes: 60e6}},
		ClientAP: []int{0},
	}
	res, err := Run(Config{
		Trace: tr, Topo: singleGWTopo(t, tr), Scheme: SoI, Seed: 1,
		Failures: FailurePlan{Crashes: []GatewayCrash{{At: 100, Gateway: 0, RebootSec: 50}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FlowsAborted != 1 {
		t.Errorf("FlowsAborted = %d, want 1", res.FlowsAborted)
	}
	if !math.IsNaN(res.FCT[0]) {
		t.Errorf("aborted flow has FCT %v, want NaN", res.FCT[0])
	}
	// The flow's client was actively served: stranded from the cut (100)
	// until recovery (150).
	if res.StrandedSeconds != 50 {
		t.Errorf("StrandedSeconds = %v, want 50", res.StrandedSeconds)
	}
}

// TestFailureOverlapDepth: a crash inside an outage window must keep the
// gateway down until the later of the two recoveries, counting a single
// down episode per cause and one contiguous downtime interval.
func TestFailureOverlapDepth(t *testing.T) {
	tr := &trace.Trace{
		Cfg:        trace.Config{Clients: 1, APs: 1, Duration: 1000, BackhaulBps: trace.DefaultBackhaulBps},
		Keepalives: []trace.Packet{{T: 50, Client: 0, Bytes: 100}},
		ClientAP:   []int{0},
	}
	res, err := Run(Config{
		Trace: tr, Topo: singleGWTopo(t, tr), Scheme: SoI, Seed: 1,
		Failures: FailurePlan{
			// Crash at 100 rebooting at 400; outage 200..300 whose drawn
			// reboot ends well before 400: the crash recovery governs.
			Crashes: []GatewayCrash{{At: 100, Gateway: 0, RebootSec: 300}},
			Outages: []OutageWindow{{Start: 200, DurationSec: 100, FromGW: 0, ToGW: 1}},
			// Constant 1 s reboot keeps the outage recovery inside the
			// crash window deterministically.
			RebootMeanSec: 1, RebootSigma: 1e-9,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 1 {
		t.Errorf("Failures = %d, want 1 (nested causes share the episode)", res.Failures)
	}
	if got := res.GatewayDownTime[0]; math.Abs(got-300) > 1 {
		t.Errorf("GatewayDownTime = %v, want ~300 (down 100..400)", got)
	}
}

// TestShardDeterminismFailures extends the determinism table with the
// failure scenario: crash/outage coordinator events must leave every scheme
// byte-identical across shard counts {1,2,3,8} and against the serial
// engine. (The name keeps it inside the CI race job's -run 'Shard' net.)
func TestShardDeterminismFailures(t *testing.T) {
	tr, tp := smallScenario(t, 9)
	fp := testFailurePlan()
	schemes := []Scheme{NoSleep, SoI, SoIKSwitch, BH2KSwitch, Optimal, Centralized}
	for _, sc := range schemes {
		sc := sc
		t.Run(sc.String(), func(t *testing.T) {
			t.Parallel()
			cfg := Config{Trace: tr, Topo: tp, Scheme: sc, Seed: 9, K: 2, Failures: fp}
			want := runShards(t, cfg, 0)
			for _, n := range []int{1, 2, 3, 8} {
				if got := runShards(t, cfg, n); got != want {
					t.Errorf("shards=%d diverges from serial under failures: %s != %s", n, got, want)
				}
			}
		})
	}
}

// TestFailureSchemesReact checks the scheme-visible consequences: the
// coordinated controller re-solves on the failure instant (extra resolves
// vs the failure-free run), and every scheme reports sane availability.
func TestFailureSchemesReact(t *testing.T) {
	tr, tp := smallScenario(t, 9)
	fp := testFailurePlan()
	base, err := Run(Config{Trace: tr, Topo: tp, Scheme: Centralized, Seed: 9, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range []Scheme{NoSleep, SoI, BH2KSwitch, Optimal, Centralized} {
		res, err := Run(Config{Trace: tr, Topo: tp, Scheme: sc, Seed: 9, K: 2, Failures: fp})
		if err != nil {
			t.Fatal(err)
		}
		// 1 standalone crash + 4 outage gateways; the second crash nests
		// inside the outage window and extends its episode instead of
		// starting a new one.
		if res.Failures != 5 {
			t.Errorf("%v: Failures = %d, want 5", sc, res.Failures)
		}
		if res.Availability <= 0 || res.Availability > 1 {
			t.Errorf("%v: Availability = %v out of (0,1]", sc, res.Availability)
		}
		if res.GatewayDownTime == nil {
			t.Errorf("%v: GatewayDownTime nil on a failure run", sc)
		}
		if sc == Centralized && res.Resolves <= base.Resolves {
			t.Errorf("centralized: %d resolves with failures, want > %d (failure re-solves)", res.Resolves, base.Resolves)
		}
	}
}
