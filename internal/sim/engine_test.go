package sim

import (
	"math"
	"testing"

	"insomnia/internal/power"
	"insomnia/internal/topology"
	"insomnia/internal/trace"
)

// handSim builds a sim over a hand-written trace so individual engine paths
// can be driven deterministically.
func handSim(t *testing.T, scheme Scheme, flows []trace.Flow, keeps []trace.Packet) *sim {
	t.Helper()
	tr := &trace.Trace{
		Cfg: trace.Config{
			Clients: 4, APs: 2, Duration: 4000,
			BackhaulBps: 6e6, UplinkBps: 512e3,
		},
		ClientAP:   []int{0, 0, 1, 1},
		Flows:      flows,
		Keepalives: keeps,
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	g := &topology.Graph{Adj: [][]int{{1}, {0}}}
	tp, err := topology.FromOverlap(g, tr.ClientAP)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := Config{Trace: tr, Topo: tp, Scheme: scheme, Seed: 1, K: 2}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	s, err := newSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSingleFlowLifecycle(t *testing.T) {
	// One 750 kB flow at t=100 on a sleeping gateway: wake at 100..160,
	// service 160..161 (6 Mbps = 750 kB/s), idle timeout at 221.
	s := handSim(t, SoI, []trace.Flow{{Start: 100, Client: 0, Bytes: 750000}}, nil)
	s.run()
	fct := s.flows[0].completed - 100
	if !s.flows[0].done {
		t.Fatal("flow never completed")
	}
	if math.Abs(fct-61) > 0.01 {
		t.Errorf("FCT = %v, want 61 (60 s wake + 1 s transfer)", fct)
	}
	// Gateway 0 slept again after its idle timeout; gateway 1 never woke.
	if st := s.gws[0].ctl.State(); st != power.Sleeping {
		t.Errorf("gateway 0 state at end: %v", st)
	}
	if s.gws[1].ctl.Device().Wakeups() != 0 {
		t.Error("gateway 1 woke for no reason")
	}
	// Energy: gateway 0 active from 100 to 221+... wake(60)+transfer(1)+idle(60).
	onTime := s.gws[0].ctl.Device().OnTimeAt(4000)
	if math.Abs(onTime-121) > 0.1 {
		t.Errorf("gateway 0 on-time = %v, want ~121", onTime)
	}
}

func TestProcessorSharingSplitsBackhaul(t *testing.T) {
	// Two 750 kB flows arriving together on an awake gateway share 6 Mbps:
	// both finish at 2 s, not 1 s.
	s := handSim(t, NoSleep, []trace.Flow{
		{Start: 100, Client: 0, Bytes: 750000},
		{Start: 100, Client: 1, Bytes: 750000},
	}, nil)
	s.run()
	for i := 0; i < 2; i++ {
		fct := s.flows[i].completed - 100
		if math.Abs(fct-2) > 0.01 {
			t.Errorf("flow %d FCT = %v, want 2 (shared link)", i, fct)
		}
	}
}

func TestRateCappedStreamServedAtAppRate(t *testing.T) {
	// A 300 kbps stream of 300 kb (37.5 kB) takes 1 s at its own rate even
	// though the link could drain it in 50 ms.
	s := handSim(t, NoSleep, []trace.Flow{
		{Start: 10, Client: 0, Bytes: 37500, Rate: 300e3},
	}, nil)
	s.run()
	fct := s.flows[0].completed - 10
	if math.Abs(fct-1) > 0.01 {
		t.Errorf("stream FCT = %v, want 1 s at the 300 kbps app rate", fct)
	}
}

func TestKeepaliveKeepsGatewayAwake(t *testing.T) {
	// Keepalives every 50 s < 60 s timeout: gateway 0 stays up the whole
	// stretch (the §2.4 insomnia).
	var keeps []trace.Packet
	for ts := 100.0; ts < 2000; ts += 50 {
		keeps = append(keeps, trace.Packet{T: ts, Client: 0, Bytes: 100})
	}
	s := handSim(t, SoI, nil, keeps)
	s.run()
	dev := s.gws[0].ctl.Device()
	if got := dev.Wakeups(); got != 1 {
		t.Errorf("wakeups = %d, want exactly 1 (the first keepalive)", got)
	}
	// Awake from 100 until 1950+60+60.
	if onTime := dev.OnTimeAt(4000); onTime < 1900 {
		t.Errorf("on-time = %v; keepalives failed to hold the gateway up", onTime)
	}
}

func TestLongFlowHoldsGatewayThroughIdleDeadline(t *testing.T) {
	// A 7.5 MB flow takes 10 s... make it long: 75 MB = 100 s at 6 Mbps,
	// longer than the 60 s idle timeout. The gateway must not sleep mid-flow.
	s := handSim(t, SoI, []trace.Flow{{Start: 50, Client: 0, Bytes: 75_000_000}}, nil)
	s.run()
	if !s.flows[0].done {
		t.Fatal("flow never completed")
	}
	fct := s.flows[0].completed - 50
	if math.Abs(fct-160) > 0.5 { // 60 wake + 100 transfer
		t.Errorf("FCT = %v, want ~160", fct)
	}
	if got := s.gws[0].ctl.Device().Wakeups(); got != 1 {
		t.Errorf("gateway slept mid-flow: %d wakeups", got)
	}
}

func TestUplinkFlowsIgnored(t *testing.T) {
	s := handSim(t, SoI, []trace.Flow{{Start: 100, Client: 0, Bytes: 1000, Up: true}}, nil)
	s.run()
	if s.flows[0].done {
		t.Error("uplink flow was simulated")
	}
	if s.gws[0].ctl.Device().Wakeups() != 0 {
		t.Error("uplink flow woke a gateway")
	}
}

func TestOptimalMigratesFlows(t *testing.T) {
	// Under Optimal, client 0's long flow starts at its home (gateway 0);
	// the per-minute resolve will consolidate. The flow must complete with
	// zero wake stalls (WakeDelay 0) and the run must end with at most one
	// gateway carrying everything.
	flows := []trace.Flow{
		{Start: 30, Client: 0, Bytes: 30_000_000}, // 40 s at full rate
		{Start: 35, Client: 2, Bytes: 30_000_000}, // other AP
		{Start: 200, Client: 1, Bytes: 750_000},
		{Start: 210, Client: 3, Bytes: 750_000},
	}
	s := handSim(t, Optimal, flows, nil)
	s.run()
	for i := range flows {
		if !s.flows[i].done {
			t.Fatalf("flow %d incomplete under Optimal", i)
		}
	}
	if s.resolves == 0 {
		t.Fatal("optimal never resolved")
	}
}

func TestCentralizedRespectsWakeDelay(t *testing.T) {
	// Centralized wakes gateways with the real 60 s delay: a flow whose
	// gateway the controller just opened still waits.
	s := handSim(t, Centralized, []trace.Flow{{Start: 100, Client: 0, Bytes: 750000}}, nil)
	s.run()
	if !s.flows[0].done {
		t.Fatal("flow incomplete")
	}
	if fct := s.flows[0].completed - 100; fct < 60 {
		t.Errorf("FCT = %v; centralized bypassed the wake delay", fct)
	}
}

func TestCardFollowsLineState(t *testing.T) {
	// SoI: when gateway 0 wakes, its line card powers on; when both
	// gateways sleep, all cards sleep.
	s := handSim(t, SoI, []trace.Flow{{Start: 100, Client: 0, Bytes: 750000}}, nil)
	s.run()
	for cd, on := range s.cardOn {
		if on {
			t.Errorf("card %d still on at end", cd)
		}
	}
	// The card hosting gateway 0's line consumed energy during the episode.
	var cardJ float64
	for _, cd := range s.cards {
		cardJ += cd.EnergyAt(4000)
	}
	if cardJ <= 0 {
		t.Error("no card energy recorded despite an active line")
	}
}

// TestWakeHandsBackExactlyWaitingClients pins the pending-home hand-back:
// completing a gateway's wake must reassign exactly the clients that were
// waiting for that gateway — no scan side effects on clients waiting for a
// different home or not waiting at all.
func TestWakeHandsBackExactlyWaitingClients(t *testing.T) {
	// handSim: clients 0,1 homed at gateway 0; clients 2,3 at gateway 1.
	s := handSim(t, BH2KSwitch, nil, nil)
	// Clients 0 and 1 ride gateway 1; only 0 is flagged pending-home.
	s.clients[0].assigned = 1
	s.clients[1].assigned = 1
	s.markPendingHome(0)
	// Client 3 rides gateway 0 and waits for gateway 1 — a different home.
	s.clients[3].assigned = 0
	s.markPendingHome(3)
	if got := len(s.gws[0].pending); got != 1 {
		t.Fatalf("gateway 0 pending list has %d entries, want 1", got)
	}

	// Wake gateway 0 and complete the wake.
	s.main.now = 100
	s.touch(s.main, &s.gws[0], s.main.now)
	s.main.now = s.gws[0].ctl.NextTransition()
	s.gwCheck(s.main, &s.gws[0])

	if cl := s.clients[0]; cl.assigned != 0 || cl.pendingHome || cl.pendingPos != -1 {
		t.Errorf("waiting client not handed back: %+v", cl)
	}
	if cl := s.clients[1]; cl.assigned != 1 || cl.pendingHome {
		t.Errorf("non-waiting client disturbed: %+v", cl)
	}
	if cl := s.clients[3]; cl.assigned != 0 || !cl.pendingHome {
		t.Errorf("client waiting for another gateway disturbed: %+v", cl)
	}
	if got := len(s.gws[0].pending); got != 0 {
		t.Errorf("gateway 0 pending list not drained: %d entries", got)
	}
	if got := len(s.gws[1].pending); got != 1 {
		t.Errorf("gateway 1 pending list corrupted: %d entries", got)
	}
}

// TestPendingHomeUnmarkSwapRemove exercises the O(1) removal's position
// bookkeeping with several clients queued on one gateway.
func TestPendingHomeUnmarkSwapRemove(t *testing.T) {
	s := handSim(t, BH2KSwitch, nil, nil)
	// Both gateway-0 clients queue, then the first leaves (e.g. a Move).
	s.markPendingHome(0)
	s.markPendingHome(1)
	s.unmarkPendingHome(0)
	if got := s.gws[0].pending; len(got) != 1 || got[0] != 1 {
		t.Fatalf("pending list after swap-remove = %v, want [1]", got)
	}
	if s.clients[1].pendingPos != 0 {
		t.Fatalf("moved client's position not updated: %d", s.clients[1].pendingPos)
	}
	// Re-marking an already-pending client must not duplicate it.
	s.markPendingHome(1)
	if got := len(s.gws[0].pending); got != 1 {
		t.Fatalf("duplicate pending entry: %d", got)
	}
}

func TestEventHeapOrdering(t *testing.T) {
	var sh shard
	sh.push(event{t: 5, kind: evTick})
	sh.push(event{t: 1, kind: evTick})
	sh.push(event{t: 5, kind: evGwCheck}) // same time: FIFO by seq
	if sh.h.ev[0].t != 1 {
		t.Fatal("heap not ordered by time")
	}
	first := sh.h.ev[0]
	if first.kind != evTick {
		t.Fatal("wrong head")
	}
}
