package sim

// The engine core: the scheme-agnostic half of the simulator. It merges the
// trace's flow/keepalive streams with the dynamic event heap, integrates
// processor-sharing transport, drives the SoI power controllers and samples
// the metric series. Everything scheme-specific — routing, decisions,
// re-solves, switch fabric — is delegated to the sim's strategy (scheme.go
// and the scheme_*.go files).
//
// Every function here operates on a lane (*shard): the single serial lane
// in ordinary runs, a gateway shard's own lane under the sharded engine
// (shard.go). Strategy code always executes on the main lane.

import (
	"math"
	"math/bits"

	"insomnia/internal/dsl"
	"insomnia/internal/power"
	"insomnia/internal/wifi"
)

// cancelCheckEvery is the serial engine's cancellation poll period in
// events. Polling the context costs a mutexed load, so the hot loop
// amortizes it; at typical event rates (hundreds of thousands per wall
// second) a canceled run still stops within microseconds.
const cancelCheckEvery = 4096

// run drives the merged event streams to the end of the trace, stopping
// early (s.aborted) when the run's context is canceled.
func (s *sim) run() {
	if len(s.shards) > 1 {
		s.runSharded()
		return
	}
	if s.pool != nil {
		// modeTick: serial event loop, parallel tick prep.
		s.pool.start()
		defer s.pool.stop()
	}
	var n int
	for s.step() {
		n++
		if n&(cancelCheckEvery-1) == 0 && s.canceled() {
			s.aborted = true
			return
		}
	}
	s.now = s.end
}

// canceled reports whether the run's context (if any) has been canceled.
func (s *sim) canceled() bool {
	return s.ctx != nil && s.ctx.Err() != nil
}

// step advances the serial lane by one event.
func (s *sim) step() bool { return s.stepLane(s.main, math.Inf(1)) }

// stepLane advances lane sh by one event — the next dynamic heap event or
// trace record, whichever is earlier (heap wins ties, then flows, then
// keepalives). It returns false once the lane's streams are exhausted, past
// the trace end, or stopped by the fence.
//
// The fence reproduces the serial heap's (t, seq) tie order against the
// coordinator event exactly: trace records at the fence time always lose
// (the serial merge admits records only on strictly smaller times), and a
// heap event at the fence time wins iff it was pushed before this phase
// began (seq <= fenceSeq) — the coordinator event's own push precedes
// every event pushed during the phase, so lane-local seq comparison
// recovers the global order without a global counter.
func (s *sim) stepLane(sh *shard, fence float64) bool {
	tr := s.cfg.Trace
	tNext := math.Inf(1)
	src := -1 // 0=heap 1=flow 2=keepalive
	if sh.h.len() > 0 {
		if e := &sh.h.ev[0]; e.t < fence || (e.t == fence && e.seq <= sh.fenceSeq) {
			tNext, src = e.t, 0
		}
	}
	if sh.flowOrder == nil {
		if sh.flowIdx < len(tr.Flows) {
			if ft := tr.Flows[sh.flowIdx].Start; ft < tNext && ft < fence {
				tNext, src = ft, 1
			}
		}
	} else if sh.flowIdx < len(sh.flowOrder) {
		if ft := tr.Flows[sh.flowOrder[sh.flowIdx]].Start; ft < tNext && ft < fence {
			tNext, src = ft, 1
		}
	}
	if sh.keepOrder == nil {
		if sh.keepIdx < len(tr.Keepalives) {
			if kt := tr.Keepalives[sh.keepIdx].T; kt < tNext && kt < fence {
				tNext, src = kt, 2
			}
		}
	} else if sh.keepIdx < len(sh.keepOrder) {
		if kt := tr.Keepalives[sh.keepOrder[sh.keepIdx]].T; kt < tNext && kt < fence {
			tNext, src = kt, 2
		}
	}
	if src == -1 || tNext > s.end {
		return false
	}
	sh.now = tNext
	if sh == s.main {
		s.now = tNext
	}
	switch src {
	case 0:
		s.handle(sh, sh.h.pop())
	case 1:
		idx := sh.flowIdx
		if sh.flowOrder != nil {
			idx = int(sh.flowOrder[sh.flowIdx])
		}
		f := tr.Flows[idx]
		s.flowArrival(sh, idx, int(f.Client), f.Up)
		sh.flowIdx++
	case 2:
		idx := sh.keepIdx
		if sh.keepOrder != nil {
			idx = int(sh.keepOrder[sh.keepIdx])
		}
		k := tr.Keepalives[idx]
		s.keepalive(sh, int(k.Client), int64(k.Bytes))
		sh.keepIdx++
	}
	return true
}

func (s *sim) handle(sh *shard, e event) {
	switch e.kind {
	case evComplete:
		g := &s.gws[e.a]
		if e.aux != g.complEpoch {
			return // superseded
		}
		s.elapse(g, sh.now)
		s.reapCompleted(sh, g)
		s.scheduleCompletion(sh, g)
	case evGwCheck:
		g := &s.gws[e.a]
		if e.t >= g.checkAt {
			// This pop consumes the tracked earliest check (later stale
			// ones may still sit in the heap; they re-derive and re-arm).
			g.checkAt = math.Inf(1)
		}
		s.gwCheck(sh, g)
	case evDecide:
		s.strat.onDecide(s, e.a)
	case evTick:
		s.tick()
		if t := s.now + s.cfg.SampleEvery; t <= s.end {
			s.push(event{t: t, kind: evTick})
		}
		if s.hasFailures {
			// Arm the failure events due before the next tick. Chaining the
			// pushes off the tick handler keeps the coordinator-event
			// ordering invariant the sharded fence rule relies on.
			s.armFailures(s.now + s.cfg.SampleEvery)
		}
	case evResolve:
		s.strat.onResolve(s)
		// aux 1 marks a one-shot failure-reaction solve: it must not spawn a
		// second periodic chain.
		if e.aux == 0 {
			if t := s.now + s.cfg.OptimalEvery; t <= s.end {
				s.push(event{t: t, kind: evResolve})
			}
		}
	case evFail:
		s.failGateway(&s.gws[e.a], sh.now)
	case evRecover:
		s.recoverGateway(&s.gws[e.a], sh.now)
	}
}

// ---- gateway state machinery ----

// awaken adds g to lane sh's active-gateway set. Called exactly where the
// engine fires wake side effects (modem up, switch remap), so set
// membership mirrors "the modem is not sleeping".
//
// It also performs the lazy-sampling catch-up: while g slept, the dense
// pre-refactor tick loop would have kept observing g's (unchanging) SN
// counter, leaving the estimator primed at the last tick. Observing once at
// that tick's time reproduces the identical estimator state — the skipped
// zero-frame samples are invisible to Utilization and ActiveWithin. If no
// tick fired since the estimator's reset, the dense loop would have left it
// unprimed, so neither do we. (tickCount/lastTickT advance only at epoch
// barriers, so shard lanes read a stable snapshot mid-phase.)
func (s *sim) awaken(sh *shard, g *gateway) {
	l := g.id - sh.lo
	w, b := l>>6, uint64(1)<<(uint(l)&63)
	if sh.bits[w]&b != 0 {
		return
	}
	sh.bits[w] |= b
	sh.awakeN++
	if s.tickCount > g.estResetTick {
		g.est.Observe(s.lastTickT, g.sn.Value())
	}
}

// quiesce removes g from lane sh's active-gateway set. Called exactly where
// the engine fires sleep side effects (modem down, estimator reset).
func (s *sim) quiesce(sh *shard, g *gateway) {
	l := g.id - sh.lo
	w, b := l>>6, uint64(1)<<(uint(l)&63)
	if sh.bits[w]&b == 0 {
		return
	}
	sh.bits[w] &^= b
	sh.awakeN--
	g.estResetTick = s.tickCount
}

// touch registers traffic/wake intent on gateway g, firing ISP-side side
// effects when it starts a wake. sh must be g's owning lane (strategy code
// passes s.main, which owns every gateway in the modes strategies run in).
func (s *sim) touch(sh *shard, g *gateway, t float64) {
	if g.failDepth > 0 {
		return // dead line: traffic and wake attempts are lost until recovery
	}
	if s.cfg.RandomWake && g.ctl.State() == power.Sleeping {
		g.ctl.WakeDelay = dsl.WakeTime(s.wakeRNG)
	}
	woke := g.ctl.Touch(t)
	if woke {
		// Line becomes active: modem powers up, switch may remap (the only
		// legal remap instant), cards may wake.
		s.awaken(sh, g)
		g.modem.SetState(t, power.Waking)
		s.lineWake(sh, g.id, t)
		g.lastElapse = t
	}
	s.armGwCheck(sh, g)
}

// armGwCheck schedules the controller's next autonomous transition,
// skipping the push when an outstanding check already fires no later. The
// skipped case is covered because a stale pop re-arms from the then-current
// due time (see gwCheck), so exactly one live check chases each gateway's
// moving deadline instead of one per touch.
func (s *sim) armGwCheck(sh *shard, g *gateway) {
	if next := g.ctl.NextTransition(); !math.IsInf(next, 1) && next < g.checkAt {
		g.checkAt = next
		sh.push(event{t: next, kind: evGwCheck, a: g.id})
	}
}

// gwCheck fires scheduled controller transitions (wake completion or sleep
// deadline) as of sh.now. Stale events re-derive the due time and re-arm.
func (s *sim) gwCheck(sh *shard, g *gateway) {
	now := sh.now
	due := g.ctl.NextTransition()
	if math.IsInf(due, 1) || due > now+1e-9 {
		s.armGwCheck(sh, g) // superseded by later activity: chase the new deadline
		return
	}
	switch g.ctl.State() {
	case power.Waking:
		g.ctl.Advance(now)
		g.modem.SetState(due, power.On)
		g.lastElapse = now
		for _, fi := range g.flows {
			if f := &s.flows[fi]; f.stallFrom >= 0 {
				f.stalled += now - f.stallFrom
				f.stallFrom = -1
			}
		}
		s.scheduleCompletion(sh, g)
		// Hand back exactly the clients that were waiting for this, their
		// home gateway — O(|waiting|), not a scan over every client.
		for _, c := range g.pending {
			cl := &s.clients[c]
			cl.pendingHome = false
			cl.pendingPos = -1
			cl.assigned = g.id
		}
		g.pending = g.pending[:0]
	case power.On:
		// Sleep deadline. A gateway with flows in flight is not idle: the
		// flow's packets are continuous traffic. Extend the idle clock
		// without advancing (Touch at the exact deadline would sleep and
		// immediately re-wake, charging a bogus 60 s stall).
		if len(g.flows) > 0 {
			g.ctl.Busy(now)
			s.armGwCheck(sh, g)
			return
		}
		s.elapse(g, now)
		g.ctl.Advance(now)
		if g.ctl.State() == power.Sleeping {
			g.modem.SetState(due, power.Sleeping)
			s.lineSleep(sh, g.id, due)
			g.est.Reset()
			s.quiesce(sh, g)
		}
	}
	s.armGwCheck(sh, g)
}

// updateCards reconciles line-card power states with the switch policy.
func (s *sim) updateCards(t float64) {
	if !s.strat.sleepCards() {
		return
	}
	s.cardBuf = s.policy.CardsAwakeInto(s.cardBuf)
	for cd, a := range s.cardBuf {
		if a != s.cardOn[cd] {
			st := power.Sleeping
			if a {
				st = power.On
			}
			s.cards[cd].SetState(t, st)
			s.cardOn[cd] = a
		}
	}
}

// ---- pending-home bookkeeping ----

// markPendingHome queues client c on its home gateway's wake hand-back
// list (bh2.ReturnHome while riding a remote until home is operative).
func (s *sim) markPendingHome(c int) {
	cl := &s.clients[c]
	if cl.pendingHome {
		return
	}
	cl.pendingHome = true
	g := &s.gws[cl.home]
	cl.pendingPos = len(g.pending)
	g.pending = append(g.pending, c)
}

// unmarkPendingHome removes client c from its home gateway's hand-back
// list in O(1) (swap-remove; drain order at wake is immaterial since each
// hand-back touches only its own client).
func (s *sim) unmarkPendingHome(c int) {
	cl := &s.clients[c]
	if !cl.pendingHome {
		return
	}
	g := &s.gws[cl.home]
	last := len(g.pending) - 1
	if i := cl.pendingPos; i != last {
		moved := g.pending[last]
		g.pending[i] = moved
		s.clients[moved].pendingPos = i
	}
	g.pending = g.pending[:last]
	cl.pendingHome = false
	cl.pendingPos = -1
}

// ---- transport ----

// elapse integrates service on g's flows up to now.
func (s *sim) elapse(g *gateway, now float64) {
	dt := now - g.lastElapse
	g.lastElapse = now
	if dt <= 0 || len(g.flows) == 0 || !g.ctl.Awake() {
		return
	}
	rate := s.cfg.Trace.Cfg.BackhaulBps / 8 / float64(len(g.flows)) // bytes/s each
	var served float64
	for _, fi := range g.flows {
		f := &s.flows[fi]
		r := rate
		if w := f.capBps / 8; w < r {
			r = w
		}
		x := r * dt
		if x > f.rem {
			x = f.rem
		}
		f.rem -= x
		served += x
		if s.needDemand {
			s.clientBytes[f.client] += x
		}
	}
	// Feed the SN counter for passive load estimation.
	g.byteResidual += served
	frames := int(g.byteResidual / 1500)
	if frames > 0 {
		g.sn.Advance(frames)
		g.byteResidual -= float64(frames) * 1500
	}
}

// reapCompleted finalizes flows with no remaining bytes.
func (s *sim) reapCompleted(sh *shard, g *gateway) {
	keep := g.flows[:0]
	finished := false
	for _, fi := range g.flows {
		f := &s.flows[fi]
		// Sub-byte remainders count as done: scheduling ever-smaller
		// completion deltas would stall the clock on float precision.
		if f.rem < 1 {
			f.done = true
			f.completed = sh.now
			finished = true
		} else {
			keep = append(keep, fi)
		}
	}
	g.flows = keep
	if finished {
		g.flowsGen++           // membership changed: completion cache is stale
		s.touch(sh, g, sh.now) // completion packets reset the idle clock
	}
}

// scheduleCompletion arms the next completion check for g.
//
// The scan for the earliest-completing flow is cached per gateway: between
// membership changes of g.flows (tracked by flowsGen) processor sharing
// serves every flow at an unchanged rate, so each flow's time-to-complete
// shrinks uniformly and the argmin flow is stable — re-arming recomputes
// one flow's time instead of scanning. flowArrival keeps the cache fresh
// across appends on all-elastic gateways, making arming O(1) amortized on
// the hot path; membership changes that invalidate it (reap, migration,
// rate-capped arrivals) already pay an O(flows) elapse, so the fallback
// scan never changes the asymptotics.
func (s *sim) scheduleCompletion(sh *shard, g *gateway) {
	g.complEpoch++
	if len(g.flows) == 0 || !g.ctl.Awake() {
		return
	}
	rate := s.cfg.Trace.Cfg.BackhaulBps / 8 / float64(len(g.flows))
	var tMin float64
	if g.schedGen == g.flowsGen {
		f := &s.flows[g.schedMin]
		r := rate
		if w := f.capBps / 8; w < r {
			r = w
		}
		tMin = f.rem / r
	} else {
		tMin = math.Inf(1)
		allUncapped := true
		for _, fi := range g.flows {
			f := &s.flows[fi]
			r := rate
			if w := f.capBps / 8; w < r {
				r = w
				allUncapped = false
			}
			if t := f.rem / r; t < tMin {
				tMin = t
				g.schedMin = fi
			}
		}
		g.schedGen = g.flowsGen
		g.schedAllUncapped = allUncapped
	}
	if tMin < 1e-9 {
		tMin = 1e-9 // keep the clock moving even for sub-byte remainders
	}
	sh.push(event{t: sh.now + tMin, kind: evComplete, a: g.id, aux: g.complEpoch})
}

// ---- traffic entry points ----

// flowArrival starts trace flow idx on lane sh. The strategy's route is
// safe to call from a shard lane because modeLocal schemes route purely
// (the client's immutable home); every other scheme runs single-lane.
func (s *sim) flowArrival(sh *shard, idx, c int, up bool) {
	f := &s.flows[idx]
	f.up = up
	if up {
		f.done = false
		return // the evaluation simulates downlink only
	}
	s.lastTraffic[c] = sh.now
	gw := s.strat.route(s, c)
	if s.hasFailures {
		s.noteService(c, gw, sh.now)
	}
	g := &s.gws[gw]
	s.elapse(g, sh.now)
	capBps := s.linkBps(c, gw)
	if r := s.cfg.Trace.Flows[idx].Rate; r > 0 && r < capBps {
		capBps = r
	}
	*f = flowState{
		gw: gw, client: c,
		rem:       float64(s.cfg.Trace.Flows[idx].Bytes),
		capBps:    capBps,
		stallFrom: -1,
	}
	// On an all-elastic gateway every flow is served at the shared rate, so
	// the earliest completion is simply the flow with the fewest remaining
	// bytes (rem/rate is monotone in rem) — the cache survives the append
	// and the upcoming scheduleCompletion arms in O(1).
	cacheLive := g.schedGen == g.flowsGen && g.schedAllUncapped
	g.flows = append(g.flows, idx)
	g.flowsGen++
	if cacheLive {
		newRate := s.cfg.Trace.Cfg.BackhaulBps / 8 / float64(len(g.flows))
		if f.capBps/8 >= newRate {
			if f.rem < s.flows[g.schedMin].rem {
				g.schedMin = idx
			}
			g.schedGen = g.flowsGen
		}
	}
	s.touch(sh, g, sh.now)
	if !g.ctl.Awake() {
		f.stallFrom = sh.now
	}
	s.scheduleCompletion(sh, g)
}

func (s *sim) keepalive(sh *shard, c int, bytes int64) {
	s.lastTraffic[c] = sh.now
	gw := s.strat.route(s, c)
	if s.hasFailures {
		s.noteService(c, gw, sh.now)
	}
	g := &s.gws[gw]
	if g.failDepth > 0 {
		return // packet lost: no wake, no frames on the air, no demand served
	}
	s.touch(sh, g, sh.now)
	g.sn.Advance(wifi.FramesFor(bytes))
	if s.needDemand {
		s.clientBytes[c] += float64(bytes)
	}
}

// linkBps returns the usable client-gateway rate; falls back to the
// neighbor rate when the scheme routed outside the measured range (Optimal
// fallback only).
func (s *sim) linkBps(c, gw int) float64 {
	if w := s.cfg.Topo.LinkBps(c, gw); w > 0 {
		return w
	}
	return s.cfg.Topo.NeighborBps
}

// ---- metrics ----

// tick samples the metric series on the main lane. It visits only the
// active-gateway sets — O(awake), not O(all gateways): a sleeping gateway
// needs no controller advance (nothing is due), no transport elapse (it
// carries no flows), and its estimator observations would be zero-frame
// samples invisible to every query (the wake-time catch-up in awaken
// reproduces the estimator state exactly). Its power draw integrates in
// closed form below. Gateways that the set still carries but whose
// controller already crossed its sleep deadline (the deadline fell on this
// very tick) are handled identically to the dense loop: advanced, sampled,
// and counted offline.
//
// When a worker pool is live, the per-gateway prep (controller advance,
// transport elapse, estimator observation — all gateway-private state)
// fans out in parallel first; the float reductions below then run serially
// in ascending gateway id order, so the sums are bit-identical to the
// serial interleaved loop.
func (s *sim) tick() {
	s.tickCount++
	s.lastTickT = s.now
	prepped := false
	if s.pool != nil && s.pool.running {
		s.pool.run(poolCmd{kind: cmdPrep, t: s.now})
		prepped = true
	}
	var userW, ispW float64
	online := 0
	awake := 0
	fullAwake := 0 // multiplicity-weighted awake count (quotient runs)
	for si := range s.shards {
		sh := &s.shards[si]
		awake += sh.awakeN
		for w, word := range sh.bits {
			base := sh.lo + w<<6
			for word != 0 {
				gwID := base + bits.TrailingZeros64(word)
				g := &s.gws[gwID]
				word &= word - 1
				if !prepped {
					g.ctl.Advance(s.now)
					// The estimator needs service progress up to now, not
					// just up to the last transport event.
					s.elapse(g, s.now)
					g.est.Observe(s.now, g.sn.Value())
				}
				if s.weight == nil {
					if g.ctl.State() != power.Sleeping {
						online++
					}
					userW += g.ctl.Device().DrawW()
					ispW += g.modem.DrawW()
				} else {
					// Quotient run: gateway gwID stands for weight[gwID]
					// identically-behaving full gateways. The draw terms
					// are integer watt constants, so the weighted product
					// equals the full run's repeated additions exactly.
					mult := s.weight[gwID]
					if g.ctl.State() != power.Sleeping {
						online += int(mult)
					}
					userW += mult * g.ctl.Device().DrawW()
					ispW += mult * g.modem.DrawW()
					fullAwake += int(mult)
				}
			}
		}
	}
	// Closed-form integration of the quiescent population: every gateway
	// outside the set has its device and port modem Sleeping, each drawing
	// power.SleepWatts. The paper counts sleeping devices as off
	// (SleepWatts == 0), which is what keeps this term bit-identical to
	// the dense loop's interleaved additions; if SleepWatts ever becomes
	// nonzero this stays correct but float summation order changes.
	nSleep := float64(len(s.gws) - awake)
	if s.weight != nil {
		nSleep = float64(s.cfg.Quotient.FullGateways - fullAwake)
	}
	userW += nSleep * power.SleepWatts
	ispW += nSleep * power.SleepWatts
	for _, cd := range s.cards {
		ispW += cd.DrawW()
	}
	ispW += s.shelf.DrawW()
	s.powerTS.Add(s.now, userW+ispW)
	s.userTS.Add(s.now, userW)
	s.ispTS.Add(s.now, ispW)
	s.gwTS.Add(s.now, float64(online))
	s.cardTS.Add(s.now, float64(s.policy.AwakeCardCount()))
	if s.hasFailures {
		stranded := 0
		for si := range s.shards {
			stranded += s.shards[si].strandedN
		}
		s.strandedTS.Add(s.now, float64(stranded))
	}
}

// tickPrepRange runs the per-gateway tick prep over one worker's span:
// words [w0, w1) of sh's active bitset. Everything touched is private to
// the gateway, so spans advance concurrently without synchronization.
func (s *sim) tickPrepRange(sh *shard, w0, w1 int, now float64) {
	for w := w0; w < w1; w++ {
		word := sh.bits[w]
		base := sh.lo + w<<6
		for word != 0 {
			g := &s.gws[base+bits.TrailingZeros64(word)]
			word &= word - 1
			g.ctl.Advance(now)
			s.elapse(g, now)
			g.est.Observe(now, g.sn.Value())
		}
	}
}

func (s *sim) result() *Result {
	res := &Result{
		Scheme: s.cfg.Scheme, Duration: s.end,
		PowerW: s.powerTS, UserPowerW: s.userTS, ISPPowerW: s.ispTS,
		OnlineGWs: s.gwTS, OnlineCards: s.cardTS,
		FCT:           make([]float64, len(s.flows)),
		FlowStall:     make([]float64, len(s.flows)),
		GatewayOnTime: make([]float64, len(s.gws)),
		Moves:         s.moves, Resolves: s.resolves, OptGap: s.optGap,
		DecisionReasons: s.reasons,
	}
	for i := range s.flows {
		f := &s.flows[i]
		if f.done && !f.up {
			res.FCT[i] = f.completed - s.cfg.Trace.Flows[i].Start
			res.FlowStall[i] = f.stalled
		} else {
			res.FCT[i] = nan
			res.FlowStall[i] = nan
		}
	}
	if qp := s.cfg.Quotient; qp != nil {
		// Expand to the full scenario's shape, folding the energy sums in
		// ascending full gateway id order: the addend sequence is then
		// identical to the full run's (class members behave identically),
		// so the float sums are bit-exact, not just algebraically equal.
		// Device reads at a fixed time are idempotent, so re-reading the
		// representative once per mirrored line is safe.
		res.GatewayOnTime = make([]float64, qp.FullGateways)
		for line, q := range qp.FullHome {
			g := &s.gws[q]
			res.GatewayOnTime[line] = g.ctl.Device().OnTimeAt(s.end)
			res.Energy.UserJ += g.ctl.Device().EnergyAt(s.end)
			res.Energy.ISPJ += g.modem.EnergyAt(s.end)
			res.Wakeups += g.ctl.Device().Wakeups()
		}
	} else {
		for gwID := range s.gws {
			g := &s.gws[gwID]
			res.GatewayOnTime[gwID] = g.ctl.Device().OnTimeAt(s.end)
			res.Energy.UserJ += g.ctl.Device().EnergyAt(s.end)
			res.Energy.ISPJ += g.modem.EnergyAt(s.end)
			res.Wakeups += g.ctl.Device().Wakeups()
		}
	}
	res.CardOnTime = make([]float64, len(s.cards))
	for i, cd := range s.cards {
		res.Energy.ISPJ += cd.EnergyAt(s.end)
		res.CardOnTime[i] = cd.OnTimeAt(s.end)
	}
	res.Energy.ISPJ += s.shelf.EnergyAt(s.end)
	res.Availability = 1
	if s.hasFailures {
		// Close the open intervals at the horizon, then reduce the
		// per-client accumulators in index order (bit-stable at every shard
		// and worker count).
		for c := range s.strandedOn {
			if s.strandedOn[c] >= 0 {
				s.strandedSec[c] += s.end - s.strandedFrom[c]
			}
		}
		for gwID := range s.gws {
			if g := &s.gws[gwID]; g.failDepth > 0 {
				s.downTime[gwID] += s.end - g.downSince
			}
		}
		var strandedSec, recSec float64
		recN := 0
		nClients := float64(len(s.clients))
		if qp := s.cfg.Quotient; qp != nil {
			// Fold through the full scenario's client id order. Collapse
			// eligibility forces failure-affected gateways into singleton
			// classes, so every nonzero accumulator maps 1:1 onto a full
			// client and the addend sequence matches the full run's.
			for _, qc := range qp.FullClientOf {
				strandedSec += s.strandedSec[qc]
				recSec += s.reconnSec[qc]
				recN += int(s.reconnN[qc])
			}
			nClients = float64(qp.FullClients)
			dt := make([]float64, qp.FullGateways)
			for line, q := range qp.FullHome {
				dt[line] = s.downTime[q]
			}
			res.GatewayDownTime = dt
		} else {
			for c := range s.strandedSec {
				strandedSec += s.strandedSec[c]
				recSec += s.reconnSec[c]
				recN += int(s.reconnN[c])
			}
			res.GatewayDownTime = s.downTime
		}
		res.Failures = s.failures
		res.FlowsAborted = s.flowsAborted
		res.StrandedSeconds = strandedSec
		res.Reconnects = recN
		if recN > 0 {
			res.MeanRecoveryS = recSec / float64(recN)
		}
		if n := nClients * s.end; n > 0 {
			res.Availability = 1 - strandedSec/n
		}
		res.StrandedClients = s.strandedTS
	}
	return res
}
