package sim

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"

	"insomnia/internal/bh2"
	"insomnia/internal/dsl"
	"insomnia/internal/kswitch"
	"insomnia/internal/optimal"
	"insomnia/internal/power"
	"insomnia/internal/soi"
	"insomnia/internal/stats"
	"insomnia/internal/wifi"
)

// event kinds.
const (
	evComplete = iota // flow completion check on gateway A
	evGwCheck         // gateway A state transition due
	evDecide          // BH2 decision for client A
	evTick            // metric sampling + estimator observation
	evResolve         // Optimal re-solve
)

type event struct {
	t    float64
	seq  int64 // FIFO tie-break for determinism
	kind int
	a    int
	aux  int64 // epoch for evComplete staleness
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

type flowState struct {
	gw        int
	client    int
	rem       float64 // remaining bytes
	capBps    float64 // min(wireless link, application rate) at routing time
	done      bool
	up        bool
	completed float64

	// Wake-stall accounting: time the flow sat waiting for its gateway to
	// finish waking. Fig 9a's paper-comparable variant charges only this
	// to the completion time.
	stallFrom float64 // >=0 while waiting; -1 otherwise
	stalled   float64 // accumulated wake-wait seconds
}

type gateway struct {
	id         int
	ctl        *soi.Controller
	modem      *power.Device
	flows      []int // indices into sim.flows
	lastElapse float64
	complEpoch int64

	sn           wifi.SeqCounter
	byteResidual float64
	est          *wifi.LoadEstimator
}

type client struct {
	home        int
	assigned    int
	pendingHome bool
}

type sim struct {
	cfg Config
	now float64
	end float64
	h   eventHeap
	seq int64

	gws     []*gateway
	clients []*client
	policy  kswitch.Policy
	cards   []*power.Device
	cardOn  []bool
	shelf   *power.Device

	flows   []flowState
	flowIdx int // next trace flow
	keepIdx int // next trace keepalive

	// Optimal bookkeeping.
	clientBytes []float64

	// lastTraffic[c] is the last time client c sent or received anything;
	// a terminal with no traffic for ~2 estimation windows is considered
	// powered off and runs no BH2 decisions (the algorithm lives on the
	// terminal).
	lastTraffic []float64

	decRNG  *rand.Rand
	wakeRNG *rand.Rand

	// Metrics.
	powerTS, userTS, ispTS, gwTS, cardTS *stats.TimeSeries
	moves, resolves, optGap              int
	reasons                              map[bh2.Reason]int
}

func newSim(cfg Config) (*sim, error) {
	nGW := cfg.Topo.NumGateways
	nCl := cfg.Topo.NumClients()
	end := cfg.Trace.Cfg.Duration

	s := &sim{
		cfg: cfg, end: end,
		gws:         make([]*gateway, nGW),
		clients:     make([]*client, nCl),
		cards:       make([]*power.Device, cfg.DSLAM.Cards),
		cardOn:      make([]bool, cfg.DSLAM.Cards),
		clientBytes: make([]float64, nCl),
		decRNG:      stats.NewRNG(cfg.Seed, 0xdec1de),
		wakeRNG:     stats.NewRNG(cfg.Seed, 0x3a7e),
		flows:       make([]flowState, len(cfg.Trace.Flows)),
		reasons:     make(map[bh2.Reason]int),
		lastTraffic: make([]float64, nCl),
	}
	for c := range s.lastTraffic {
		s.lastTraffic[c] = math.Inf(-1)
	}

	bins := int(end / cfg.SampleEvery)
	s.powerTS = stats.NewTimeSeries(0, end, bins)
	s.userTS = stats.NewTimeSeries(0, end, bins)
	s.ispTS = stats.NewTimeSeries(0, end, bins)
	s.gwTS = stats.NewTimeSeries(0, end, bins)
	s.cardTS = stats.NewTimeSeries(0, end, bins)

	initState := power.Sleeping // §5.2: "the simulation starts with all the gateways sleeping"
	idle, wake := cfg.IdleTimeout, cfg.WakeDelay
	switch cfg.Scheme {
	case NoSleep:
		initState = power.On
		idle = math.Inf(1)
	case Optimal:
		idle = math.Inf(1) // sleeps only by resolver fiat
		wake = 0           // idealized instant migration
	}

	for g := 0; g < nGW; g++ {
		dev := power.NewDevice(fmt.Sprintf("gw%d", g), power.GatewayWatts, initState, 0)
		s.gws[g] = &gateway{
			id:    g,
			ctl:   soi.New(dev, idle, wake, 0),
			modem: power.NewDevice(fmt.Sprintf("modem%d", g), power.ISPModemWatts, initState, 0),
			est:   wifi.NewLoadEstimator(cfg.Trace.Cfg.BackhaulBps),
		}
	}
	for c := 0; c < nCl; c++ {
		s.clients[c] = &client{home: cfg.Topo.HomeOf[c], assigned: cfg.Topo.HomeOf[c]}
	}

	var err error
	switch cfg.Scheme {
	case SoIKSwitch, BH2KSwitch, BH2NoBackup, Centralized:
		s.policy, err = kswitch.NewKSwitch(cfg.DSLAM, cfg.K, cfg.PortOf)
	case SoIFullSwitch, BH2FullSwitch, Optimal:
		s.policy, err = kswitch.NewFullSwitch(cfg.DSLAM, cfg.PortOf)
	default:
		s.policy, err = kswitch.NewFixed(cfg.DSLAM, cfg.PortOf)
	}
	if err != nil {
		return nil, err
	}
	for cd := range s.cards {
		st := power.Sleeping
		if cfg.Scheme == NoSleep {
			st = power.On
		}
		s.cards[cd] = power.NewDevice(fmt.Sprintf("card%d", cd), power.LineCardWatts, st, 0)
		s.cardOn[cd] = cfg.Scheme == NoSleep
	}
	// No-sleep keeps every line active so cards and modems never sleep.
	if cfg.Scheme == NoSleep {
		for g := range s.gws {
			s.policy.OnWake(g)
		}
		for cd := range s.cardOn {
			s.cardOn[cd] = true
		}
	}
	s.shelf = power.NewDevice("shelf", power.ShelfWatts, power.On, 0)

	// Seed periodic events.
	s.push(event{t: 0, kind: evTick})
	if cfg.Scheme.usesBH2() {
		r := stats.NewRNG(cfg.Seed, 0x0ff5e7)
		for c := 0; c < nCl; c++ {
			s.push(event{t: r.Float64() * cfg.BH2.PeriodSec, kind: evDecide, a: c})
		}
	}
	if cfg.Scheme == Optimal || cfg.Scheme == Centralized {
		s.push(event{t: cfg.OptimalEvery, kind: evResolve})
	}
	return s, nil
}

func (s *sim) push(e event) {
	s.seq++
	e.seq = s.seq
	heap.Push(&s.h, e)
}

// run drives the merged event streams to the end of the trace.
func (s *sim) run() {
	tr := s.cfg.Trace
	for {
		// Next dynamic event vs next trace records.
		tNext := math.Inf(1)
		src := -1 // 0=heap 1=flow 2=keepalive
		if len(s.h) > 0 {
			tNext, src = s.h[0].t, 0
		}
		if s.flowIdx < len(tr.Flows) && tr.Flows[s.flowIdx].Start < tNext {
			tNext, src = tr.Flows[s.flowIdx].Start, 1
		}
		if s.keepIdx < len(tr.Keepalives) && tr.Keepalives[s.keepIdx].T < tNext {
			tNext, src = tr.Keepalives[s.keepIdx].T, 2
		}
		if src == -1 || tNext > s.end {
			break
		}
		s.now = tNext
		switch src {
		case 0:
			e := heap.Pop(&s.h).(event)
			s.handle(e)
		case 1:
			f := tr.Flows[s.flowIdx]
			s.flowArrival(s.flowIdx, int(f.Client), f.Up)
			s.flowIdx++
		case 2:
			k := tr.Keepalives[s.keepIdx]
			s.keepalive(int(k.Client), int64(k.Bytes))
			s.keepIdx++
		}
	}
	s.now = s.end
}

func (s *sim) handle(e event) {
	switch e.kind {
	case evComplete:
		g := s.gws[e.a]
		if e.aux != g.complEpoch {
			return // superseded
		}
		s.elapse(g)
		s.reapCompleted(g)
		s.scheduleCompletion(g)
	case evGwCheck:
		s.gwCheck(s.gws[e.a], e.t)
	case evDecide:
		s.decide(e.a)
		s.push(event{t: bh2.NextDecisionTime(s.decRNG, s.cfg.BH2, s.now), kind: evDecide, a: e.a})
	case evTick:
		s.tick()
		if t := s.now + s.cfg.SampleEvery; t <= s.end {
			s.push(event{t: t, kind: evTick})
		}
	case evResolve:
		if s.cfg.Scheme == Centralized {
			s.resolveCentralized()
		} else {
			s.resolve()
		}
		if t := s.now + s.cfg.OptimalEvery; t <= s.end {
			s.push(event{t: t, kind: evResolve})
		}
	}
}

// ---- gateway state machinery ----

// touch registers traffic/wake intent on gateway g, firing ISP-side side
// effects when it starts a wake.
func (s *sim) touch(g *gateway, t float64) {
	if s.cfg.RandomWake && g.ctl.State() == power.Sleeping {
		g.ctl.WakeDelay = dsl.WakeTime(s.wakeRNG)
	}
	woke := g.ctl.Touch(t)
	if woke {
		// Line becomes active: modem powers up, switch may remap (the only
		// legal remap instant), cards may wake.
		g.modem.SetState(t, power.Waking)
		s.policy.OnWake(g.id)
		s.updateCards(t)
		g.lastElapse = t
	}
	if next := g.ctl.NextTransition(); !math.IsInf(next, 1) {
		s.push(event{t: next, kind: evGwCheck, a: g.id})
	}
}

// gwCheck fires scheduled controller transitions (wake completion or sleep
// deadline). Stale events are ignored by re-deriving the due time.
func (s *sim) gwCheck(g *gateway, scheduled float64) {
	due := g.ctl.NextTransition()
	if math.IsInf(due, 1) || due > s.now+1e-9 {
		return // superseded by later activity
	}
	switch g.ctl.State() {
	case power.Waking:
		g.ctl.Advance(s.now)
		g.modem.SetState(due, power.On)
		g.lastElapse = s.now
		for _, fi := range g.flows {
			if f := &s.flows[fi]; f.stallFrom >= 0 {
				f.stalled += s.now - f.stallFrom
				f.stallFrom = -1
			}
		}
		s.scheduleCompletion(g)
		// Hand back clients that were waiting for their home gateway.
		for c, cl := range s.clients {
			if cl.pendingHome && cl.home == g.id {
				cl.pendingHome = false
				cl.assigned = g.id
				_ = c
			}
		}
	case power.On:
		// Sleep deadline. A gateway with flows in flight is not idle: the
		// flow's packets are continuous traffic. Extend the idle clock
		// without advancing (Touch at the exact deadline would sleep and
		// immediately re-wake, charging a bogus 60 s stall).
		if len(g.flows) > 0 {
			g.ctl.Busy(s.now)
			if next := g.ctl.NextTransition(); !math.IsInf(next, 1) {
				s.push(event{t: next, kind: evGwCheck, a: g.id})
			}
			return
		}
		s.elapse(g)
		g.ctl.Advance(s.now)
		if g.ctl.State() == power.Sleeping {
			g.modem.SetState(due, power.Sleeping)
			s.policy.OnSleep(g.id)
			s.updateCards(due)
			g.est.Reset()
		}
	}
	if next := g.ctl.NextTransition(); !math.IsInf(next, 1) {
		s.push(event{t: next, kind: evGwCheck, a: g.id})
	}
}

// updateCards reconciles line-card power states with the switch policy.
func (s *sim) updateCards(t float64) {
	if s.cfg.Scheme == NoSleep {
		return
	}
	awake := s.policy.CardsAwake()
	for cd, a := range awake {
		if a != s.cardOn[cd] {
			st := power.Sleeping
			if a {
				st = power.On
			}
			s.cards[cd].SetState(t, st)
			s.cardOn[cd] = a
		}
	}
}

// ---- transport ----

// elapse integrates service on g's flows up to s.now.
func (s *sim) elapse(g *gateway) {
	dt := s.now - g.lastElapse
	g.lastElapse = s.now
	if dt <= 0 || len(g.flows) == 0 || !g.ctl.Awake() {
		return
	}
	rate := s.cfg.Trace.Cfg.BackhaulBps / 8 / float64(len(g.flows)) // bytes/s each
	var served float64
	for _, fi := range g.flows {
		f := &s.flows[fi]
		r := rate
		if w := f.capBps / 8; w < r {
			r = w
		}
		x := r * dt
		if x > f.rem {
			x = f.rem
		}
		f.rem -= x
		served += x
		s.clientBytes[f.client] += x
	}
	// Feed the SN counter for passive load estimation.
	g.byteResidual += served
	frames := int(g.byteResidual / 1500)
	if frames > 0 {
		g.sn.Advance(frames)
		g.byteResidual -= float64(frames) * 1500
	}
}

// reapCompleted finalizes flows with no remaining bytes.
func (s *sim) reapCompleted(g *gateway) {
	keep := g.flows[:0]
	finished := false
	for _, fi := range g.flows {
		f := &s.flows[fi]
		// Sub-byte remainders count as done: scheduling ever-smaller
		// completion deltas would stall the clock on float precision.
		if f.rem < 1 {
			f.done = true
			f.completed = s.now
			finished = true
		} else {
			keep = append(keep, fi)
		}
	}
	g.flows = keep
	if finished {
		s.touch(g, s.now) // completion packets reset the idle clock
	}
}

// scheduleCompletion arms the next completion check for g.
func (s *sim) scheduleCompletion(g *gateway) {
	g.complEpoch++
	if len(g.flows) == 0 || !g.ctl.Awake() {
		return
	}
	rate := s.cfg.Trace.Cfg.BackhaulBps / 8 / float64(len(g.flows))
	tMin := math.Inf(1)
	for _, fi := range g.flows {
		f := &s.flows[fi]
		r := rate
		if w := f.capBps / 8; w < r {
			r = w
		}
		if t := f.rem / r; t < tMin {
			tMin = t
		}
	}
	if tMin < 1e-9 {
		tMin = 1e-9 // keep the clock moving even for sub-byte remainders
	}
	s.push(event{t: s.now + tMin, kind: evComplete, a: g.id, aux: g.complEpoch})
}

// ---- traffic entry points ----

// routeFor picks the gateway that will carry new traffic from client c,
// waking devices as the scheme allows.
func (s *sim) routeFor(c int) int {
	cl := s.clients[c]
	switch {
	case s.cfg.Scheme.usesBH2():
		g := s.gws[cl.assigned]
		if g.ctl.State() == power.Sleeping {
			// Assigned gateway vanished: run an immediate decision (the
			// terminal notices missing beacons right away).
			s.applyDecision(c, bh2.Decide(s.decRNG, s.cfg.BH2, cl.home, cl.assigned, s.views(c)))
		}
		return cl.assigned
	case s.cfg.Scheme == Optimal:
		if g := s.gws[cl.assigned]; g.ctl.Awake() {
			return cl.assigned
		}
		// Prefer any open in-range gateway; else open home by fiat.
		for _, gw := range s.cfg.Topo.InRange(c) {
			if s.gws[gw].ctl.Awake() {
				cl.assigned = gw
				return gw
			}
		}
		cl.assigned = cl.home
		return cl.home
	case s.cfg.Scheme == Centralized:
		// The controller's assignment is authoritative; it may wake the
		// assigned gateway from the ISP side (touch does), but traffic
		// queues for the full wake delay — no fiat here. Prefer an awake
		// in-range gateway when the assigned one is asleep.
		if g := s.gws[cl.assigned]; g.ctl.State() != power.Sleeping {
			return cl.assigned
		}
		for _, gw := range s.cfg.Topo.InRange(c) {
			if s.gws[gw].ctl.Awake() {
				cl.assigned = gw
				return gw
			}
		}
		return cl.assigned
	default:
		return cl.home
	}
}

// resolveCentralized is the §3.3 coordinated variant: the same per-minute
// solve as Optimal, but applied under physical constraints — woken gateways
// pay the wake delay, in-flight flows stay where they are, and gateways
// left out of the solution drain and sleep through their ordinary idle
// timeout rather than by fiat.
func (s *sim) resolveCentralized() {
	nGW := s.cfg.Topo.NumGateways
	in := optimal.Instance{Q: 1, Backup: 0, Caps: make([]float64, nGW)}
	for j := range in.Caps {
		in.Caps[j] = s.cfg.Trace.Cfg.BackhaulBps
	}
	var users []int
	for c, bytes := range s.clientBytes {
		if bytes <= 0 {
			continue
		}
		d := bytes * 8 / s.cfg.OptimalEvery
		if d > s.cfg.Trace.Cfg.BackhaulBps {
			d = s.cfg.Trace.Cfg.BackhaulBps
		}
		row := make([]float64, nGW)
		for _, gw := range s.cfg.Topo.InRange(c) {
			row[gw] = s.cfg.Topo.LinkBps(c, gw)
			if row[gw] < d {
				row[gw] = d
			}
		}
		in.W = append(in.W, row)
		in.Demands = append(in.Demands, d)
		users = append(users, c)
	}
	for c := range s.clientBytes {
		s.clientBytes[c] = 0
	}
	s.resolves++
	if len(users) == 0 {
		return // nothing to coordinate; gateways drain on their own
	}
	sol, err := optimal.Solve(in, 50000)
	if err != nil {
		return
	}
	if !sol.Optimal {
		s.optGap++
	}
	for ui, c := range users {
		target := sol.Assign[ui][0]
		if s.clients[c].assigned != target {
			s.clients[c].assigned = target
			s.moves++
		}
	}
	// Wake the chosen gateways (ISP-side remote wake); everything else is
	// left to drain naturally.
	for gwID, g := range s.gws {
		if sol.Open[gwID] && g.ctl.State() == power.Sleeping {
			s.touch(g, s.now)
		}
	}
}

func (s *sim) flowArrival(idx, c int, up bool) {
	f := &s.flows[idx]
	f.up = up
	if up {
		f.done = false
		return // the evaluation simulates downlink only
	}
	s.lastTraffic[c] = s.now
	gw := s.routeFor(c)
	g := s.gws[gw]
	s.elapse(g)
	capBps := s.linkBps(c, gw)
	if r := s.cfg.Trace.Flows[idx].Rate; r > 0 && r < capBps {
		capBps = r
	}
	*f = flowState{
		gw: gw, client: c,
		rem:       float64(s.cfg.Trace.Flows[idx].Bytes),
		capBps:    capBps,
		stallFrom: -1,
	}
	g.flows = append(g.flows, idx)
	s.touch(g, s.now)
	if !g.ctl.Awake() {
		f.stallFrom = s.now
	}
	s.scheduleCompletion(g)
}

func (s *sim) keepalive(c int, bytes int64) {
	s.lastTraffic[c] = s.now
	gw := s.routeFor(c)
	g := s.gws[gw]
	s.touch(g, s.now)
	g.sn.Advance(wifi.FramesFor(bytes))
	s.clientBytes[c] += float64(bytes)
}

// linkBps returns the usable client-gateway rate; falls back to the
// neighbor rate when the scheme routed outside the measured range (Optimal
// fallback only).
func (s *sim) linkBps(c, gw int) float64 {
	if w := s.cfg.Topo.LinkBps(c, gw); w > 0 {
		return w
	}
	return s.cfg.Topo.NeighborBps
}

// ---- BH2 ----

// views assembles what terminal c can passively observe (§3.2): awake
// gateways in range with their estimated loads.
func (s *sim) views(c int) []bh2.GatewayView {
	rng := s.cfg.Topo.InRange(c)
	out := make([]bh2.GatewayView, 0, len(rng))
	for _, gw := range rng {
		g := s.gws[gw]
		out = append(out, bh2.GatewayView{
			ID:     gw,
			Awake:  g.ctl.State() == power.On,
			Load:   g.est.Utilization(s.now, s.cfg.BH2.EstWindow),
			Active: g.est.ActiveWithin(s.now, s.cfg.BH2.EstWindow),
		})
	}
	return out
}

func (s *sim) decide(c int) {
	// Only powered-on terminals run the algorithm; "recent traffic" is the
	// observable proxy for the terminal being on (keepalives arrive every
	// few seconds while it is).
	if s.now-s.lastTraffic[c] > 2*s.cfg.BH2.EstWindow {
		return
	}
	views := s.views(c)
	d := bh2.Decide(s.decRNG, s.cfg.BH2, s.clients[c].home, s.clients[c].assigned, views)
	if s.cfg.DebugDecisions != nil {
		s.cfg.DebugDecisions(s.now, c, views, d)
	}
	s.applyDecision(c, d)
}

func (s *sim) applyDecision(c int, d bh2.Decision) {
	s.reasons[d.Reason]++
	cl := s.clients[c]
	switch d.Action {
	case bh2.Move:
		if cl.assigned != d.Target {
			cl.assigned = d.Target
			cl.pendingHome = false
			s.moves++
		}
	case bh2.ReturnHome:
		home := s.gws[cl.home]
		if home.ctl.Awake() {
			cl.assigned = cl.home
			cl.pendingHome = false
			return
		}
		if s.cfg.BH2.WakeUpHome {
			s.touch(home, s.now) // wake it up if necessary (§3.1)
		}
		if s.gws[cl.assigned].ctl.Awake() && cl.assigned != cl.home {
			// Keep riding the current remote until home is operative.
			cl.pendingHome = true
		} else {
			cl.assigned = cl.home // nothing usable: queue at home
			cl.pendingHome = false
		}
	}
}

// ---- Optimal ----

func (s *sim) resolve() {
	nGW := s.cfg.Topo.NumGateways
	in := optimal.Instance{Q: 1, Backup: 0, Caps: make([]float64, nGW)}
	for j := range in.Caps {
		in.Caps[j] = s.cfg.Trace.Cfg.BackhaulBps
	}
	var users []int
	for c, bytes := range s.clientBytes {
		if bytes <= 0 {
			continue
		}
		d := bytes * 8 / s.cfg.OptimalEvery
		if d > s.cfg.Trace.Cfg.BackhaulBps {
			d = s.cfg.Trace.Cfg.BackhaulBps
		}
		row := make([]float64, nGW)
		for _, gw := range s.cfg.Topo.InRange(c) {
			row[gw] = s.cfg.Topo.LinkBps(c, gw)
			if row[gw] < d {
				row[gw] = d // in-range gateways stay eligible even at full-rate demand
			}
		}
		in.W = append(in.W, row)
		in.Demands = append(in.Demands, d)
		users = append(users, c)
		s.clientBytes[c] = 0
	}
	for c := range s.clientBytes {
		s.clientBytes[c] = 0
	}
	s.resolves++
	if len(users) == 0 {
		// Nobody active: close everything.
		for _, g := range s.gws {
			s.closeGateway(g)
		}
		return
	}
	sol, err := optimal.Solve(in, 50000)
	if err != nil {
		// Cannot happen with the fallback-eligible W above; keep state.
		return
	}
	if !sol.Optimal {
		s.optGap++
	}
	for ui, c := range users {
		s.clients[c].assigned = sol.Assign[ui][0]
	}
	// Open/close gateways; migrate flows off closing ones first.
	for gwID, g := range s.gws {
		if sol.Open[gwID] {
			if g.ctl.State() != power.On {
				s.touch(g, s.now) // WakeDelay 0: usable immediately
				s.gwCheck(g, s.now)
			}
		}
	}
	for gwID, g := range s.gws {
		if sol.Open[gwID] || g.ctl.State() == power.Sleeping {
			continue
		}
		s.migrateFlows(g)
		s.closeGateway(g)
	}
	s.policy.Repack()
	s.updateCards(s.now)
}

// migrateFlows moves g's in-flight flows to their clients' new gateways
// with zero downtime (the idealized migration of §5.1).
func (s *sim) migrateFlows(g *gateway) {
	if len(g.flows) == 0 {
		return
	}
	s.elapse(g)
	moving := g.flows
	g.flows = nil
	g.complEpoch++
	for _, fi := range moving {
		f := &s.flows[fi]
		target := s.clients[f.client].assigned
		tg := s.gws[target]
		if !tg.ctl.Awake() {
			// Assignment landed on a closed gateway (client had no demand
			// this round): ride any open in-range one.
			target = s.routeFor(f.client)
			tg = s.gws[target]
		}
		s.elapse(tg)
		f.gw = target
		f.capBps = s.linkBps(f.client, target)
		if r := s.cfg.Trace.Flows[fi].Rate; r > 0 && r < f.capBps {
			f.capBps = r
		}
		tg.flows = append(tg.flows, fi)
		s.touch(tg, s.now)
		s.scheduleCompletion(tg)
	}
}

func (s *sim) closeGateway(g *gateway) {
	if g.ctl.State() == power.Sleeping {
		return
	}
	s.elapse(g)
	g.ctl.Sleep(s.now)
	g.modem.SetState(s.now, power.Sleeping)
	s.policy.OnSleep(g.id)
	g.est.Reset()
}

// ---- metrics ----

func (s *sim) tick() {
	var userW, ispW float64
	online := 0
	for _, g := range s.gws {
		g.ctl.Advance(s.now)
		if g.ctl.State() != power.Sleeping {
			online++
		}
		// The estimator needs service progress up to now, not just up to
		// the last transport event.
		s.elapse(g)
		g.est.Observe(s.now, g.sn.Value())
		userW += g.ctl.Device().DrawW()
		ispW += g.modem.DrawW()
	}
	for _, cd := range s.cards {
		ispW += cd.DrawW()
	}
	ispW += s.shelf.DrawW()
	s.powerTS.Add(s.now, userW+ispW)
	s.userTS.Add(s.now, userW)
	s.ispTS.Add(s.now, ispW)
	s.gwTS.Add(s.now, float64(online))
	s.cardTS.Add(s.now, float64(kswitch.AwakeCount(s.policy.CardsAwake())))
}

func (s *sim) result() *Result {
	res := &Result{
		Scheme: s.cfg.Scheme, Duration: s.end,
		PowerW: s.powerTS, UserPowerW: s.userTS, ISPPowerW: s.ispTS,
		OnlineGWs: s.gwTS, OnlineCards: s.cardTS,
		FCT:           make([]float64, len(s.flows)),
		FlowStall:     make([]float64, len(s.flows)),
		GatewayOnTime: make([]float64, len(s.gws)),
		Moves:         s.moves, Resolves: s.resolves, OptGap: s.optGap,
		DecisionReasons: s.reasons,
	}
	for i := range s.flows {
		f := &s.flows[i]
		if f.done && !f.up {
			res.FCT[i] = f.completed - s.cfg.Trace.Flows[i].Start
			res.FlowStall[i] = f.stalled
		} else {
			res.FCT[i] = nan
			res.FlowStall[i] = nan
		}
	}
	for gwID, g := range s.gws {
		res.GatewayOnTime[gwID] = g.ctl.Device().OnTimeAt(s.end)
		res.Energy.UserJ += g.ctl.Device().EnergyAt(s.end)
		res.Energy.ISPJ += g.modem.EnergyAt(s.end)
		res.Wakeups += g.ctl.Device().Wakeups()
	}
	for _, cd := range s.cards {
		res.Energy.ISPJ += cd.EnergyAt(s.end)
	}
	res.Energy.ISPJ += s.shelf.EnergyAt(s.end)
	return res
}
