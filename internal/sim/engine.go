package sim

// The engine core: the scheme-agnostic half of the simulator. It merges the
// trace's flow/keepalive streams with the dynamic event heap, integrates
// processor-sharing transport, drives the SoI power controllers and samples
// the metric series. Everything scheme-specific — routing, decisions,
// re-solves, switch fabric — is delegated to the sim's strategy (scheme.go
// and the scheme_*.go files).

import (
	"container/heap"
	"math"

	"insomnia/internal/dsl"
	"insomnia/internal/kswitch"
	"insomnia/internal/power"
	"insomnia/internal/wifi"
)

// run drives the merged event streams to the end of the trace.
func (s *sim) run() {
	tr := s.cfg.Trace
	for {
		// Next dynamic event vs next trace records.
		tNext := math.Inf(1)
		src := -1 // 0=heap 1=flow 2=keepalive
		if len(s.h) > 0 {
			tNext, src = s.h[0].t, 0
		}
		if s.flowIdx < len(tr.Flows) && tr.Flows[s.flowIdx].Start < tNext {
			tNext, src = tr.Flows[s.flowIdx].Start, 1
		}
		if s.keepIdx < len(tr.Keepalives) && tr.Keepalives[s.keepIdx].T < tNext {
			tNext, src = tr.Keepalives[s.keepIdx].T, 2
		}
		if src == -1 || tNext > s.end {
			break
		}
		s.now = tNext
		switch src {
		case 0:
			e := heap.Pop(&s.h).(event)
			s.handle(e)
		case 1:
			f := tr.Flows[s.flowIdx]
			s.flowArrival(s.flowIdx, int(f.Client), f.Up)
			s.flowIdx++
		case 2:
			k := tr.Keepalives[s.keepIdx]
			s.keepalive(int(k.Client), int64(k.Bytes))
			s.keepIdx++
		}
	}
	s.now = s.end
}

func (s *sim) handle(e event) {
	switch e.kind {
	case evComplete:
		g := s.gws[e.a]
		if e.aux != g.complEpoch {
			return // superseded
		}
		s.elapse(g)
		s.reapCompleted(g)
		s.scheduleCompletion(g)
	case evGwCheck:
		s.gwCheck(s.gws[e.a], e.t)
	case evDecide:
		s.strat.onDecide(s, e.a)
	case evTick:
		s.tick()
		if t := s.now + s.cfg.SampleEvery; t <= s.end {
			s.push(event{t: t, kind: evTick})
		}
	case evResolve:
		s.strat.onResolve(s)
		if t := s.now + s.cfg.OptimalEvery; t <= s.end {
			s.push(event{t: t, kind: evResolve})
		}
	}
}

// ---- gateway state machinery ----

// touch registers traffic/wake intent on gateway g, firing ISP-side side
// effects when it starts a wake.
func (s *sim) touch(g *gateway, t float64) {
	if s.cfg.RandomWake && g.ctl.State() == power.Sleeping {
		g.ctl.WakeDelay = dsl.WakeTime(s.wakeRNG)
	}
	woke := g.ctl.Touch(t)
	if woke {
		// Line becomes active: modem powers up, switch may remap (the only
		// legal remap instant), cards may wake.
		g.modem.SetState(t, power.Waking)
		s.policy.OnWake(g.id)
		s.updateCards(t)
		g.lastElapse = t
	}
	if next := g.ctl.NextTransition(); !math.IsInf(next, 1) {
		s.push(event{t: next, kind: evGwCheck, a: g.id})
	}
}

// gwCheck fires scheduled controller transitions (wake completion or sleep
// deadline). Stale events are ignored by re-deriving the due time.
func (s *sim) gwCheck(g *gateway, scheduled float64) {
	due := g.ctl.NextTransition()
	if math.IsInf(due, 1) || due > s.now+1e-9 {
		return // superseded by later activity
	}
	switch g.ctl.State() {
	case power.Waking:
		g.ctl.Advance(s.now)
		g.modem.SetState(due, power.On)
		g.lastElapse = s.now
		for _, fi := range g.flows {
			if f := &s.flows[fi]; f.stallFrom >= 0 {
				f.stalled += s.now - f.stallFrom
				f.stallFrom = -1
			}
		}
		s.scheduleCompletion(g)
		// Hand back clients that were waiting for their home gateway.
		for c, cl := range s.clients {
			if cl.pendingHome && cl.home == g.id {
				cl.pendingHome = false
				cl.assigned = g.id
				_ = c
			}
		}
	case power.On:
		// Sleep deadline. A gateway with flows in flight is not idle: the
		// flow's packets are continuous traffic. Extend the idle clock
		// without advancing (Touch at the exact deadline would sleep and
		// immediately re-wake, charging a bogus 60 s stall).
		if len(g.flows) > 0 {
			g.ctl.Busy(s.now)
			if next := g.ctl.NextTransition(); !math.IsInf(next, 1) {
				s.push(event{t: next, kind: evGwCheck, a: g.id})
			}
			return
		}
		s.elapse(g)
		g.ctl.Advance(s.now)
		if g.ctl.State() == power.Sleeping {
			g.modem.SetState(due, power.Sleeping)
			s.policy.OnSleep(g.id)
			s.updateCards(due)
			g.est.Reset()
		}
	}
	if next := g.ctl.NextTransition(); !math.IsInf(next, 1) {
		s.push(event{t: next, kind: evGwCheck, a: g.id})
	}
}

// updateCards reconciles line-card power states with the switch policy.
func (s *sim) updateCards(t float64) {
	if !s.strat.sleepCards() {
		return
	}
	awake := s.policy.CardsAwake()
	for cd, a := range awake {
		if a != s.cardOn[cd] {
			st := power.Sleeping
			if a {
				st = power.On
			}
			s.cards[cd].SetState(t, st)
			s.cardOn[cd] = a
		}
	}
}

// ---- transport ----

// elapse integrates service on g's flows up to s.now.
func (s *sim) elapse(g *gateway) {
	dt := s.now - g.lastElapse
	g.lastElapse = s.now
	if dt <= 0 || len(g.flows) == 0 || !g.ctl.Awake() {
		return
	}
	rate := s.cfg.Trace.Cfg.BackhaulBps / 8 / float64(len(g.flows)) // bytes/s each
	var served float64
	for _, fi := range g.flows {
		f := &s.flows[fi]
		r := rate
		if w := f.capBps / 8; w < r {
			r = w
		}
		x := r * dt
		if x > f.rem {
			x = f.rem
		}
		f.rem -= x
		served += x
		s.clientBytes[f.client] += x
	}
	// Feed the SN counter for passive load estimation.
	g.byteResidual += served
	frames := int(g.byteResidual / 1500)
	if frames > 0 {
		g.sn.Advance(frames)
		g.byteResidual -= float64(frames) * 1500
	}
}

// reapCompleted finalizes flows with no remaining bytes.
func (s *sim) reapCompleted(g *gateway) {
	keep := g.flows[:0]
	finished := false
	for _, fi := range g.flows {
		f := &s.flows[fi]
		// Sub-byte remainders count as done: scheduling ever-smaller
		// completion deltas would stall the clock on float precision.
		if f.rem < 1 {
			f.done = true
			f.completed = s.now
			finished = true
		} else {
			keep = append(keep, fi)
		}
	}
	g.flows = keep
	if finished {
		s.touch(g, s.now) // completion packets reset the idle clock
	}
}

// scheduleCompletion arms the next completion check for g.
func (s *sim) scheduleCompletion(g *gateway) {
	g.complEpoch++
	if len(g.flows) == 0 || !g.ctl.Awake() {
		return
	}
	rate := s.cfg.Trace.Cfg.BackhaulBps / 8 / float64(len(g.flows))
	tMin := math.Inf(1)
	for _, fi := range g.flows {
		f := &s.flows[fi]
		r := rate
		if w := f.capBps / 8; w < r {
			r = w
		}
		if t := f.rem / r; t < tMin {
			tMin = t
		}
	}
	if tMin < 1e-9 {
		tMin = 1e-9 // keep the clock moving even for sub-byte remainders
	}
	s.push(event{t: s.now + tMin, kind: evComplete, a: g.id, aux: g.complEpoch})
}

// ---- traffic entry points ----

func (s *sim) flowArrival(idx, c int, up bool) {
	f := &s.flows[idx]
	f.up = up
	if up {
		f.done = false
		return // the evaluation simulates downlink only
	}
	s.lastTraffic[c] = s.now
	gw := s.strat.route(s, c)
	g := s.gws[gw]
	s.elapse(g)
	capBps := s.linkBps(c, gw)
	if r := s.cfg.Trace.Flows[idx].Rate; r > 0 && r < capBps {
		capBps = r
	}
	*f = flowState{
		gw: gw, client: c,
		rem:       float64(s.cfg.Trace.Flows[idx].Bytes),
		capBps:    capBps,
		stallFrom: -1,
	}
	g.flows = append(g.flows, idx)
	s.touch(g, s.now)
	if !g.ctl.Awake() {
		f.stallFrom = s.now
	}
	s.scheduleCompletion(g)
}

func (s *sim) keepalive(c int, bytes int64) {
	s.lastTraffic[c] = s.now
	gw := s.strat.route(s, c)
	g := s.gws[gw]
	s.touch(g, s.now)
	g.sn.Advance(wifi.FramesFor(bytes))
	s.clientBytes[c] += float64(bytes)
}

// linkBps returns the usable client-gateway rate; falls back to the
// neighbor rate when the scheme routed outside the measured range (Optimal
// fallback only).
func (s *sim) linkBps(c, gw int) float64 {
	if w := s.cfg.Topo.LinkBps(c, gw); w > 0 {
		return w
	}
	return s.cfg.Topo.NeighborBps
}

// ---- metrics ----

func (s *sim) tick() {
	var userW, ispW float64
	online := 0
	for _, g := range s.gws {
		g.ctl.Advance(s.now)
		if g.ctl.State() != power.Sleeping {
			online++
		}
		// The estimator needs service progress up to now, not just up to
		// the last transport event.
		s.elapse(g)
		g.est.Observe(s.now, g.sn.Value())
		userW += g.ctl.Device().DrawW()
		ispW += g.modem.DrawW()
	}
	for _, cd := range s.cards {
		ispW += cd.DrawW()
	}
	ispW += s.shelf.DrawW()
	s.powerTS.Add(s.now, userW+ispW)
	s.userTS.Add(s.now, userW)
	s.ispTS.Add(s.now, ispW)
	s.gwTS.Add(s.now, float64(online))
	s.cardTS.Add(s.now, float64(kswitch.AwakeCount(s.policy.CardsAwake())))
}

func (s *sim) result() *Result {
	res := &Result{
		Scheme: s.cfg.Scheme, Duration: s.end,
		PowerW: s.powerTS, UserPowerW: s.userTS, ISPPowerW: s.ispTS,
		OnlineGWs: s.gwTS, OnlineCards: s.cardTS,
		FCT:           make([]float64, len(s.flows)),
		FlowStall:     make([]float64, len(s.flows)),
		GatewayOnTime: make([]float64, len(s.gws)),
		Moves:         s.moves, Resolves: s.resolves, OptGap: s.optGap,
		DecisionReasons: s.reasons,
	}
	for i := range s.flows {
		f := &s.flows[i]
		if f.done && !f.up {
			res.FCT[i] = f.completed - s.cfg.Trace.Flows[i].Start
			res.FlowStall[i] = f.stalled
		} else {
			res.FCT[i] = nan
			res.FlowStall[i] = nan
		}
	}
	for gwID, g := range s.gws {
		res.GatewayOnTime[gwID] = g.ctl.Device().OnTimeAt(s.end)
		res.Energy.UserJ += g.ctl.Device().EnergyAt(s.end)
		res.Energy.ISPJ += g.modem.EnergyAt(s.end)
		res.Wakeups += g.ctl.Device().Wakeups()
	}
	for _, cd := range s.cards {
		res.Energy.ISPJ += cd.EnergyAt(s.end)
	}
	res.Energy.ISPJ += s.shelf.EnergyAt(s.end)
	return res
}
