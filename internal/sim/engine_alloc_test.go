package sim

import (
	"testing"

	"insomnia/internal/trace"
)

// TestTickSteadyStateAllocs pins the tentpole's zero-allocation contract on
// the sampling path: once estimator rings and series buffers have reached
// steady-state capacity, a tick() sample allocates nothing.
func TestTickSteadyStateAllocs(t *testing.T) {
	// NoSleep keeps every gateway in the active set, so the tick loop runs
	// its full per-gateway body (controller advance, elapse, estimator
	// observation, power sampling) — the worst case for allocations.
	s := handSim(t, NoSleep, nil, nil)
	for i := 0; i < 300; i++ {
		s.now += 1
		s.tick()
	}
	allocs := testing.AllocsPerRun(100, func() {
		s.now += 1
		s.tick()
	})
	if allocs != 0 {
		t.Fatalf("steady-state tick allocates %.1f times per sample, want 0", allocs)
	}
}

// TestEventLoopSteadyStateAllocs drives the full event loop (heap pops and
// pushes included) over a keepalive-heavy SoI scenario and requires the
// steady-state event processing to allocate nothing beyond warm-up growth.
func TestEventLoopSteadyStateAllocs(t *testing.T) {
	var keeps []trace.Packet
	for ts := 10.0; ts < 3900; ts += 5 {
		keeps = append(keeps, trace.Packet{T: ts, Client: int32(int(ts) % 4), Bytes: 100})
	}
	s := handSim(t, SoI, nil, keeps)
	// Warm up: process the first half of the trace.
	for i := 0; i < 400; i++ {
		if !s.step() {
			t.Fatal("trace exhausted during warm-up")
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		s.step()
	})
	// Ticks observing newly-woken estimators may still grow a ring once in
	// a while; the budget is "indistinguishable from zero per event".
	if allocs > 0.1 {
		t.Fatalf("steady-state event processing allocates %.2f times per event, want ~0", allocs)
	}
}
