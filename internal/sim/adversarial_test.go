package sim

import (
	"testing"

	"insomnia/internal/topology"
	"insomnia/internal/trace"
)

// TestAdversarialOutWakesSoI closes the loop between the adversarial
// trace search and the engine: hill-climbing keepalive schedules against
// a wakeups-under-SoI objective must find a schedule that forces more
// wakeups than its random seed pattern. This is the adversarial
// robustness probe cmd/tracegen -adversarial exposes.
func TestAdversarialOutWakesSoI(t *testing.T) {
	acfg := trace.AdversaryConfig{Clients: 24, APs: 6, Duration: 1800, Seed: 11, Iters: 25}
	// The client-AP placement is identical for every candidate, so one
	// topology serves the whole search.
	var tp *topology.Topology
	score := func(tr *trace.Trace) float64 {
		if tp == nil {
			g, err := topology.OverlapGraph(acfg.APs, 4, acfg.Seed)
			if err != nil {
				t.Fatal(err)
			}
			if tp, err = topology.FromOverlap(g, tr.ClientAP); err != nil {
				t.Fatal(err)
			}
		}
		res, err := Run(Config{Trace: tr, Topo: tp, Scheme: SoI, Seed: acfg.Seed, K: 2})
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.Wakeups)
	}
	a, err := trace.SearchAdversarial(acfg, score)
	if err != nil {
		t.Fatal(err)
	}
	if a.Score <= a.Initial {
		t.Errorf("adversarial search should out-wake its seed pattern: %v -> %v", a.Initial, a.Score)
	}
	// The returned trace reproduces the reported worst case exactly.
	if got := score(a.Trace); got != a.Score {
		t.Errorf("returned trace scores %v, want %v", got, a.Score)
	}
}
