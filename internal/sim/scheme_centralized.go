package sim

import (
	"insomnia/internal/kswitch"
	"insomnia/internal/optimal"
	"insomnia/internal/power"
)

// centralizedScheme is the §3.3 coordinated variant: the same per-minute
// solve as Optimal, but applied under physical constraints — woken gateways
// pay the wake delay, in-flight flows stay where they are, lines go through
// k-switches, and gateways left out of the solution drain and sleep through
// their ordinary idle timeout rather than by fiat.
type centralizedScheme struct{ baseScheme }

func (centralizedScheme) newPolicy(cfg Config) (kswitch.Policy, error) {
	return kSwitchFabric.build(cfg)
}

// Same global solve as Optimal: demand accounting on, serial engine.
func (centralizedScheme) usesDemand() bool { return true }

func (centralizedScheme) seedEvents(s *sim) {
	s.push(event{t: s.cfg.OptimalEvery, kind: evResolve})
}

// route follows the controller's assignment; it may wake the assigned
// gateway from the ISP side (touch does), but traffic queues for the full
// wake delay — no fiat here. Prefer an awake in-range gateway when the
// assigned one is asleep.
func (sc centralizedScheme) route(s *sim, c int) int {
	cl := &s.clients[c]
	if g := &s.gws[cl.assigned]; g.ctl.State() != power.Sleeping {
		return cl.assigned
	}
	for _, gw := range s.cfg.Topo.InRange(c) {
		if s.gws[gw].ctl.Awake() {
			cl.assigned = gw
			return gw
		}
	}
	return cl.assigned
}

func (sc centralizedScheme) onResolve(s *sim) {
	in, users := demandInstance(s)
	if len(users) == 0 {
		return // nothing to coordinate; gateways drain on their own
	}
	sol, err := optimal.Solve(in, 50000)
	if err != nil {
		return
	}
	if !sol.Optimal {
		s.optGap++
	}
	for ui, c := range users {
		target := sol.Assign[ui][0]
		if s.clients[c].assigned != target {
			s.clients[c].assigned = target
			s.moves++
		}
	}
	// Wake the chosen gateways (ISP-side remote wake); everything else is
	// left to drain naturally. touch is gated on failed gateways, so a
	// solution that picked a dead one simply fails to wake it — the clients
	// re-route at their next traffic.
	for gwID := range s.gws {
		g := &s.gws[gwID]
		if sol.Open[gwID] && g.ctl.State() == power.Sleeping {
			s.touch(s.main, g, s.now)
		}
	}
}

// onFailure: the controller sees the line drop (loss of DSL signal) and
// re-solves immediately instead of waiting out the period, shifting the
// failed area's demand onto live gateways. Recoveries wait for the next
// periodic solve.
func (sc centralizedScheme) onFailure(s *sim, gw int, up bool) {
	if !up {
		scheduleFailureResolve(s)
	}
}
