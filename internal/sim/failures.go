package sim

import (
	"fmt"
	"math"
	"sort"

	"insomnia/internal/power"
	"insomnia/internal/stats"
)

// Failure injection: deterministic gateway crashes, restarts and area power
// outages threaded through the event engine.
//
// The plan is fully expanded at newSim time into a (t, gw, up) schedule with
// every reboot interval pre-drawn, so runtime behavior never consults an RNG
// and is identical at every shard count. The events themselves are injected
// on the main lane — the coordinator lane under the sharded engine — and are
// armed through the metric-tick chain (armFailures below): the fence rule of
// stepLane assumes every coordinator event was pushed while handling an
// earlier coordinator event, and arming failures from the tick handler keeps
// that invariant, so the serial (t, seq) tie order is reproduced exactly.
//
// Failure semantics: a crashed gateway loses power instantly — in-flight
// flows on it abort, its line goes dark (modem + switch fabric see a sleep),
// and wake attempts are lost (touch is gated) until the gateway has rebooted.
// Overlapping failure causes (a crash inside an outage window) nest through
// a per-gateway depth counter: the gateway is operative again only when
// every cause has cleared. Clients discover the failure the way real
// terminals do — when their next packet goes unanswered — and count as
// stranded from that attempt until service resumes (recovery hand-back or a
// scheme moving them to a live gateway).

// GatewayCrash fails one gateway at At; it reboots and comes back operative
// RebootSec later (0 draws from the plan's reboot distribution).
type GatewayCrash struct {
	At        float64
	Gateway   int
	RebootSec float64
}

// OutageWindow cuts power to the contiguous gateway range [FromGW, ToGW)
// over [Start, Start+DurationSec). When power returns each gateway still
// pays its own drawn reboot time before it is operative — the staggered
// boot-up after a neighborhood outage.
type OutageWindow struct {
	Start       float64
	DurationSec float64
	FromGW      int
	ToGW        int

	// Gateways, when non-empty, replaces the contiguous [FromGW, ToGW)
	// range with an explicit gateway list; the range fields are ignored.
	// The reboot draws consume the 0xfa11 stream in list order, so callers
	// remapping gateway ids (the campaign symmetry-collapse pass, whose
	// quotient ids are not contiguous) keep the list in the original
	// scenario's ascending id order to reproduce its draw sequence.
	Gateways []int
}

// gateways returns the affected gateway ids in draw order.
func (o OutageWindow) gateways() []int {
	if len(o.Gateways) > 0 {
		return o.Gateways
	}
	gws := make([]int, 0, o.ToGW-o.FromGW)
	for gw := o.FromGW; gw < o.ToGW; gw++ {
		gws = append(gws, gw)
	}
	return gws
}

// FailurePlan is the failure schedule for one run. The zero value injects
// nothing and adds no runtime cost.
type FailurePlan struct {
	Crashes []GatewayCrash
	Outages []OutageWindow

	// Reboot-time distribution for crashes without an explicit RebootSec and
	// for every outage recovery: lognormal with mean RebootMeanSec and shape
	// RebootSigma (defaults 300 s, 0.5). Draws are pre-generated from
	// Config.Seed, stream 0xfa11, in plan order.
	RebootMeanSec float64
	RebootSigma   float64
}

// Empty reports whether the plan injects nothing.
func (p FailurePlan) Empty() bool { return len(p.Crashes) == 0 && len(p.Outages) == 0 }

// normalized validates the plan against the topology size and fills the
// distribution defaults.
func (p FailurePlan) normalized(nGW int) (FailurePlan, error) {
	if p.Empty() {
		return p, nil
	}
	if p.RebootMeanSec == 0 {
		p.RebootMeanSec = 300
	}
	if p.RebootSigma == 0 {
		p.RebootSigma = 0.5
	}
	if p.RebootMeanSec < 0 || math.IsNaN(p.RebootMeanSec) {
		return p, fmt.Errorf("sim: invalid reboot mean %v", p.RebootMeanSec)
	}
	if p.RebootSigma < 0 || math.IsNaN(p.RebootSigma) {
		return p, fmt.Errorf("sim: invalid reboot sigma %v", p.RebootSigma)
	}
	for i, c := range p.Crashes {
		if c.At < 0 || math.IsNaN(c.At) || math.IsInf(c.At, 0) {
			return p, fmt.Errorf("sim: crash %d at invalid time %v", i, c.At)
		}
		if c.Gateway < 0 || c.Gateway >= nGW {
			return p, fmt.Errorf("sim: crash %d targets gateway %d of %d", i, c.Gateway, nGW)
		}
		if c.RebootSec < 0 || math.IsNaN(c.RebootSec) {
			return p, fmt.Errorf("sim: crash %d has invalid reboot %v", i, c.RebootSec)
		}
	}
	for i, o := range p.Outages {
		if o.Start < 0 || math.IsNaN(o.Start) || math.IsInf(o.Start, 0) {
			return p, fmt.Errorf("sim: outage %d starts at invalid time %v", i, o.Start)
		}
		if o.DurationSec <= 0 || math.IsNaN(o.DurationSec) || math.IsInf(o.DurationSec, 0) {
			return p, fmt.Errorf("sim: outage %d has invalid duration %v", i, o.DurationSec)
		}
		if len(o.Gateways) > 0 {
			for _, gw := range o.Gateways {
				if gw < 0 || gw >= nGW {
					return p, fmt.Errorf("sim: outage %d targets gateway %d of %d", i, gw, nGW)
				}
			}
		} else if o.FromGW < 0 || o.ToGW > nGW || o.FromGW >= o.ToGW {
			return p, fmt.Errorf("sim: outage %d covers invalid gateway range [%d,%d) of %d", i, o.FromGW, o.ToGW, nGW)
		}
	}
	return p, nil
}

// failEvent is one expanded schedule entry: gateway gw loses (up=false) or
// regains (up=true) power at t.
type failEvent struct {
	t  float64
	gw int32
	up bool
}

// buildFailSchedule expands a normalized plan into a sorted event schedule
// with all reboot intervals drawn up front.
func buildFailSchedule(p FailurePlan, seed int64) []failEvent {
	r := stats.NewRNG(seed, 0xfa11)
	// Lognormal parameterized by its mean: mu = ln(mean) - sigma^2/2.
	draw := func() float64 {
		if p.RebootMeanSec == 0 {
			return 0
		}
		return stats.Lognormal(r, math.Log(p.RebootMeanSec)-p.RebootSigma*p.RebootSigma/2, p.RebootSigma)
	}
	var sched []failEvent
	for _, c := range p.Crashes {
		reboot := c.RebootSec
		if reboot == 0 {
			reboot = draw()
		}
		sched = append(sched,
			failEvent{t: c.At, gw: int32(c.Gateway)},
			failEvent{t: c.At + reboot, gw: int32(c.Gateway), up: true})
	}
	for _, o := range p.Outages {
		for _, gw := range o.gateways() {
			sched = append(sched,
				failEvent{t: o.Start, gw: int32(gw)},
				failEvent{t: o.Start + o.DurationSec + draw(), gw: int32(gw), up: true})
		}
	}
	// Total order: time, failures before recoveries at the same instant (a
	// gateway whose reboot completes exactly as a new failure hits stays
	// down until the later recovery), gateway id as the final tie-break.
	sort.Slice(sched, func(i, j int) bool {
		a, b := sched[i], sched[j]
		if a.t != b.t {
			return a.t < b.t
		}
		if a.up != b.up {
			return !a.up
		}
		return a.gw < b.gw
	})
	return sched
}

// initFailures allocates the failure-run state. Called from newSim only when
// the plan is non-empty, so failure-free runs pay nothing.
func (s *sim) initFailures(bins int) {
	s.hasFailures = true
	s.failSched = buildFailSchedule(s.cfg.Failures, s.cfg.Seed)
	nCl := len(s.clients)
	s.strandedFrom = make([]float64, nCl)
	s.strandedOn = make([]int32, nCl)
	s.strandedPos = make([]int32, nCl)
	for c := 0; c < nCl; c++ {
		s.strandedOn[c] = -1
		s.strandedPos[c] = -1
	}
	s.strandedSec = make([]float64, nCl)
	s.reconnSec = make([]float64, nCl)
	s.reconnN = make([]int32, nCl)
	s.downTime = make([]float64, len(s.gws))
	s.strandedTS = stats.NewTimeSeries(0, s.end, bins)
}

// armFailures pushes every not-yet-armed schedule entry due by upTo onto the
// main lane. It is called once at init (upTo 0) and from the tick handler
// with the next tick's time, so each failure event is pushed while handling
// an earlier coordinator event — the ordering invariant the sharded fence
// rule depends on.
func (s *sim) armFailures(upTo float64) {
	for s.failIdx < len(s.failSched) {
		fe := s.failSched[s.failIdx]
		if fe.t > upTo {
			return
		}
		kind := evFail
		if fe.up {
			kind = evRecover
		}
		s.push(event{t: fe.t, kind: kind, a: int(fe.gw)})
		s.failIdx++
	}
}

// laneOf returns the lane owning gateway gw (the single lane outside the
// sharded engine).
func (s *sim) laneOf(gw int) *shard {
	if s.gwShard == nil {
		return &s.shards[0]
	}
	return &s.shards[s.gwShard[gw]]
}

// failGateway applies one evFail: power is cut at now. Runs on the main
// lane; under the sharded engine that is an epoch barrier, so touching the
// owning lane's state is safe.
func (s *sim) failGateway(g *gateway, now float64) {
	g.failDepth++
	if g.failDepth > 1 {
		return // already down for another reason; depth tracks the overlap
	}
	s.failures++
	g.downSince = now
	lane := s.laneOf(g.id)
	// Failure events run at an epoch barrier: the owning lane has processed
	// everything strictly before now, so advancing its clock here mirrors
	// the serial engine (where this event runs on the lane itself) and any
	// event we push below is stamped from the failure instant, not the
	// lane's last event.
	if lane.now < now {
		lane.now = now
	}
	s.elapse(g, now) // integrate service delivered up to the cut
	for _, fi := range g.flows {
		f := &s.flows[fi]
		f.stallFrom = -1
		s.flowsAborted++
		// The client was actively using the gateway: stranded from the cut.
		s.markStranded(f.client, g.id, now)
	}
	g.flows = g.flows[:0]
	g.flowsGen++
	g.complEpoch++ // orphan any scheduled completion check
	if g.ctl.Fail(now) != power.Sleeping {
		// The line was active: modem drops and the switch fabric sees the
		// line go inactive, exactly as a voluntary sleep would.
		g.modem.SetState(now, power.Sleeping)
		s.lineSleep(s.main, g.id, now)
		g.est.Reset()
		s.quiesce(lane, g)
	}
	s.strat.onFailure(s, g.id, false)
}

// recoverGateway applies one evRecover: the gateway finished rebooting at
// now and is operative (its reboot interval elapsed between the matching
// evFail and this event — the device comes up On with a fresh idle clock).
func (s *sim) recoverGateway(g *gateway, now float64) {
	g.failDepth--
	if g.failDepth > 0 {
		return // still inside another failure cause
	}
	s.downTime[g.id] += now - g.downSince
	lane := s.laneOf(g.id)
	if lane.now < now { // see failGateway: barrier semantics
		lane.now = now
	}
	g.ctl.Restore(now)
	s.awaken(lane, g)
	g.modem.SetState(now, power.On)
	s.lineWake(s.main, g.id, now)
	g.lastElapse = now
	// Flows that arrived during the downtime (user retries) queued stalled;
	// service starts now, exactly as after an ordinary wake completion.
	for _, fi := range g.flows {
		if f := &s.flows[fi]; f.stallFrom >= 0 {
			f.stalled += now - f.stallFrom
			f.stallFrom = -1
		}
	}
	s.scheduleCompletion(lane, g)
	// Hand back clients that were waiting for this, their home, gateway —
	// same semantics as an ordinary wake completion (gwCheck).
	for _, c := range g.pending {
		cl := &s.clients[c]
		cl.pendingHome = false
		cl.pendingPos = -1
		cl.assigned = g.id
	}
	g.pending = g.pending[:0]
	// Reconnect storm: every client stranded on this gateway regains
	// service at once. Drain from the tail so each removal is O(1); the
	// per-client accounting makes the order immaterial.
	for len(g.stranded) > 0 {
		s.unstrand(int(g.stranded[len(g.stranded)-1]), now, true)
	}
	s.armGwCheck(lane, g)
	s.strat.onFailure(s, g.id, true)
}

// noteService updates stranded accounting after client c's traffic was
// routed to gateway gw at time t: an attempt on a dead gateway strands the
// client, a served attempt reconnects a stranded one. Called from lane
// context; in modeLocal both the client and its (home) gateway live on the
// calling lane, so the writes stay lane-local.
func (s *sim) noteService(c, gw int, t float64) {
	if s.gws[gw].failDepth > 0 {
		s.markStranded(c, gw, t)
	} else if s.strandedOn[c] >= 0 {
		s.unstrand(c, t, true)
	}
}

// markStranded records that client c found gateway gw dead at t. A client
// already stranded keeps its original stranding time; if the new attempt hit
// a different gateway the client is re-parked on that one, since its
// recovery is now what restores service.
func (s *sim) markStranded(c, gw int, t float64) {
	if s.strandedOn[c] == int32(gw) {
		return
	}
	if s.strandedOn[c] >= 0 {
		s.removeStranded(c)
	} else {
		s.strandedFrom[c] = t
		s.laneOf(gw).strandedN++
	}
	g := &s.gws[gw]
	s.strandedOn[c] = int32(gw)
	s.strandedPos[c] = int32(len(g.stranded))
	g.stranded = append(g.stranded, int32(c))
}

// removeStranded unlinks client c from its parked gateway's stranded list in
// O(1) without closing the stranded interval.
func (s *sim) removeStranded(c int) {
	g := &s.gws[s.strandedOn[c]]
	last := len(g.stranded) - 1
	if i := int(s.strandedPos[c]); i != last {
		moved := g.stranded[last]
		g.stranded[i] = moved
		s.strandedPos[moved] = int32(i)
	}
	g.stranded = g.stranded[:last]
}

// unstrand closes client c's stranded interval at t. reconnected interludes
// count toward the recovery-time metric; the end-of-run sweep passes false.
func (s *sim) unstrand(c int, t float64, reconnected bool) {
	s.laneOf(int(s.strandedOn[c])).strandedN--
	s.removeStranded(c)
	s.strandedOn[c] = -1
	s.strandedPos[c] = -1
	dt := t - s.strandedFrom[c]
	s.strandedSec[c] += dt
	if reconnected {
		s.reconnSec[c] += dt
		s.reconnN[c]++
	}
}

// scheduleFailureResolve queues an immediate one-shot re-solve for the
// coordinated schemes' failure reaction. Pushing an event (rather than
// resolving inline) lets every failure of the same instant land first — an
// outage fails its whole area before the controller reacts — and the
// one-instant dedup keeps an area outage from triggering one solve per
// gateway.
func scheduleFailureResolve(s *sim) {
	if s.lastFailResolve == s.now {
		return
	}
	s.lastFailResolve = s.now
	s.push(event{t: s.now, kind: evResolve, aux: 1})
}
