package sim

import (
	"testing"

	"insomnia/internal/quotient"
	"insomnia/internal/topology"
	"insomnia/internal/trace"
)

// The quotient engine's contract is bit-exactness: a collapsed run expanded
// through its QuotientPlan must reproduce the full symmetric run's Result
// exactly — same float bits, not just close values. These tests build both
// runs from the same spec and compare.

type quotientFixture struct {
	full Config
	quot Config
	q    *quotient.Quotient
}

// buildQuotientFixture constructs a symmetric grid-city scenario and its
// collapsed counterpart. forced marks failure-affected full gateways that
// must stay singleton classes.
func buildQuotientFixture(t *testing.T, nGW, clients int, seed int64, forced []bool) *quotientFixture {
	t.Helper()
	g, err := topology.GridCity(nGW, 4.0, seed)
	if err != nil {
		t.Fatal(err)
	}
	// Flat profile: clients stay active all trace long, so failure windows
	// anywhere in the trace actually strand someone.
	var flat trace.Profile
	for h := range flat {
		flat[h] = 0.5
	}
	tcfg := trace.Config{
		Clients: clients, APs: nGW, Duration: 4 * 3600,
		Profile: flat, Seed: seed,
		Symmetric: true, ClientWeightSigma: 0.8,
	}
	tr, err := trace.Generate(tcfg)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := topology.FromOverlap(g, tr.ClientAP)
	if err != nil {
		t.Fatal(err)
	}

	classes := quotient.Partition(g.NeighborhoodHashes(), quotient.SymmetricCounts(clients, nGW), forced)
	q, err := quotient.Build(classes, nGW, clients)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Classes) >= nGW {
		t.Fatalf("nothing collapsed: %d classes for %d gateways", len(q.Classes), nGW)
	}
	qcfg := tcfg
	qcfg.Clients = q.Clients
	qcfg.APs = len(q.Classes)
	qtr, err := trace.Generate(qcfg)
	if err != nil {
		t.Fatal(err)
	}
	qtopo, err := topology.FromOverlap(&topology.Graph{Adj: make([][]int, len(q.Classes))}, qtr.ClientAP)
	if err != nil {
		t.Fatal(err)
	}
	return &quotientFixture{
		full: Config{Trace: tr, Topo: topo, Seed: seed},
		quot: Config{Trace: qtr, Topo: qtopo, Seed: seed, Quotient: &QuotientPlan{
			FullGateways: nGW, FullClients: clients,
			FullHome: q.FullHome, FullClientOf: q.FullClientOf(),
		}},
		q: q,
	}
}

// compareResults asserts bit-exact equality of every Result field a
// collapsed run must reproduce (FCT/FlowStall are per-flow of the
// respective trace and compared at the campaign layer instead).
func compareResults(t *testing.T, full, quot *Result) {
	t.Helper()
	if full.Energy.UserJ != quot.Energy.UserJ || full.Energy.ISPJ != quot.Energy.ISPJ {
		t.Errorf("energy mismatch: full %+v quotient %+v", full.Energy, quot.Energy)
	}
	if full.Wakeups != quot.Wakeups {
		t.Errorf("wakeups: full %d quotient %d", full.Wakeups, quot.Wakeups)
	}
	if len(full.GatewayOnTime) != len(quot.GatewayOnTime) {
		t.Fatalf("GatewayOnTime length: full %d quotient %d", len(full.GatewayOnTime), len(quot.GatewayOnTime))
	}
	for g := range full.GatewayOnTime {
		if full.GatewayOnTime[g] != quot.GatewayOnTime[g] {
			t.Fatalf("GatewayOnTime[%d]: full %v quotient %v", g, full.GatewayOnTime[g], quot.GatewayOnTime[g])
		}
	}
	series := []struct {
		name       string
		fullS, quS interface {
			Bins() int
			MeanAt(int) float64
		}
	}{
		{"PowerW", full.PowerW, quot.PowerW},
		{"UserPowerW", full.UserPowerW, quot.UserPowerW},
		{"ISPPowerW", full.ISPPowerW, quot.ISPPowerW},
		{"OnlineGWs", full.OnlineGWs, quot.OnlineGWs},
		{"OnlineCards", full.OnlineCards, quot.OnlineCards},
	}
	for _, s := range series {
		if s.fullS.Bins() != s.quS.Bins() {
			t.Fatalf("%s bins: full %d quotient %d", s.name, s.fullS.Bins(), s.quS.Bins())
		}
		for i := 0; i < s.fullS.Bins(); i++ {
			if s.fullS.MeanAt(i) != s.quS.MeanAt(i) {
				t.Fatalf("%s bin %d: full %v quotient %v", s.name, i, s.fullS.MeanAt(i), s.quS.MeanAt(i))
			}
		}
	}
	if full.Availability != quot.Availability {
		t.Errorf("availability: full %v quotient %v", full.Availability, quot.Availability)
	}
}

// TestQuotientMatchesFull: each collapsible scheme, full vs collapsed,
// bit-exact expansion.
func TestQuotientMatchesFull(t *testing.T) {
	fx := buildQuotientFixture(t, 36, 144, 9, nil)
	for _, sc := range []Scheme{NoSleep, SoI, SoIFullSwitch} {
		sc := sc
		t.Run(sc.String(), func(t *testing.T) {
			t.Parallel()
			fcfg, qcfg := fx.full, fx.quot
			fcfg.Scheme, qcfg.Scheme = sc, sc
			full, err := Run(fcfg)
			if err != nil {
				t.Fatal(err)
			}
			quot, err := Run(qcfg)
			if err != nil {
				t.Fatal(err)
			}
			compareResults(t, full, quot)
		})
	}
}

// TestQuotientSharded: the collapsed run stays byte-identical to the full
// serial run under the sharded engine at several shard counts.
func TestQuotientSharded(t *testing.T) {
	fx := buildQuotientFixture(t, 36, 144, 11, nil)
	fcfg := fx.full
	fcfg.Scheme = SoI
	full, err := Run(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 3} {
		qcfg := fx.quot
		qcfg.Scheme = SoI
		qcfg.Shards = shards
		quot, err := Run(qcfg)
		if err != nil {
			t.Fatal(err)
		}
		compareResults(t, full, quot)
	}
}

// TestQuotientFailures: failure-affected gateways collapse as forced
// singletons; crash and outage metrics expand bit-exactly, with the outage
// expressed as an explicit gateway list (quotient ids are not contiguous)
// in full-id order so the reboot draws line up.
func TestQuotientFailures(t *testing.T) {
	const nGW, clients = 36, 144
	affected := []int{2, 3, 4, 7} // outage [2,5) + crash 7
	forced := make([]bool, nGW)
	for _, g := range affected {
		forced[g] = true
	}
	fx := buildQuotientFixture(t, nGW, clients, 13, forced)

	fullPlan := FailurePlan{
		Crashes: []GatewayCrash{{At: 5000, Gateway: 7}},
		Outages: []OutageWindow{{Start: 8000, DurationSec: 1500, FromGW: 2, ToGW: 5}},
	}
	outList := make([]int, 0, 3)
	for gw := 2; gw < 5; gw++ {
		outList = append(outList, int(fx.q.FullHome[gw]))
	}
	quotPlan := FailurePlan{
		Crashes: []GatewayCrash{{At: 5000, Gateway: int(fx.q.FullHome[7])}},
		Outages: []OutageWindow{{Start: 8000, DurationSec: 1500, Gateways: outList}},
	}

	fcfg, qcfg := fx.full, fx.quot
	fcfg.Scheme, qcfg.Scheme = SoI, SoI
	fcfg.Failures, qcfg.Failures = fullPlan, quotPlan
	full, err := Run(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	quot, err := Run(qcfg)
	if err != nil {
		t.Fatal(err)
	}
	compareResults(t, full, quot)
	if full.Failures != quot.Failures || full.FlowsAborted != quot.FlowsAborted {
		t.Errorf("failure counts: full %d/%d quotient %d/%d",
			full.Failures, full.FlowsAborted, quot.Failures, quot.FlowsAborted)
	}
	if full.StrandedSeconds != quot.StrandedSeconds {
		t.Errorf("stranded seconds: full %v quotient %v", full.StrandedSeconds, quot.StrandedSeconds)
	}
	if full.Reconnects != quot.Reconnects || full.MeanRecoveryS != quot.MeanRecoveryS {
		t.Errorf("recovery: full %d/%v quotient %d/%v",
			full.Reconnects, full.MeanRecoveryS, quot.Reconnects, quot.MeanRecoveryS)
	}
	if full.StrandedSeconds == 0 {
		t.Error("failure scenario stranded nobody; test exercises nothing")
	}
	if len(full.GatewayDownTime) != len(quot.GatewayDownTime) {
		t.Fatalf("GatewayDownTime length: %d vs %d", len(full.GatewayDownTime), len(quot.GatewayDownTime))
	}
	for g := range full.GatewayDownTime {
		if full.GatewayDownTime[g] != quot.GatewayDownTime[g] {
			t.Fatalf("GatewayDownTime[%d]: full %v quotient %v", g, full.GatewayDownTime[g], quot.GatewayDownTime[g])
		}
	}
	for i := 0; i < full.StrandedClients.Bins(); i++ {
		if full.StrandedClients.MeanAt(i) != quot.StrandedClients.MeanAt(i) {
			t.Fatalf("StrandedClients bin %d: full %v quotient %v",
				i, full.StrandedClients.MeanAt(i), quot.StrandedClients.MeanAt(i))
		}
	}
}

// TestQuotientRejectsCoupledSchemes: schemes with cross-gateway coupling
// must refuse a quotient plan instead of producing silently-wrong numbers.
func TestQuotientRejectsCoupledSchemes(t *testing.T) {
	fx := buildQuotientFixture(t, 36, 144, 9, nil)
	for _, sc := range []Scheme{SoIKSwitch, BH2KSwitch, BH2FullSwitch, Optimal, Centralized} {
		cfg := fx.quot
		cfg.Scheme = sc
		if _, err := Run(cfg); err == nil {
			t.Errorf("scheme %v accepted a quotient plan", sc)
		}
	}
	cfg := fx.quot
	cfg.Scheme = SoI
	cfg.RandomWake = true
	if _, err := Run(cfg); err == nil {
		t.Error("RandomWake accepted a quotient plan")
	}
}
