package sim

import (
	"math"
	"sync"
)

// The sharded event engine. One simulation is partitioned by gateway into S
// independent lanes (see shard in state.go), each advanced by its own
// worker goroutine, with a coordinator lane carrying the events that need
// global order (metric ticks, BH2 decisions, re-solves). The partition is
// exact, not approximate: results are byte-identical to the serial engine
// at every shard count, pinned by golden_test.go / shard_test.go.
//
// Why this is possible without rollback: the engine's cross-gateway state
// splits into two classes.
//
//   - Pure sinks: the kswitch policy and the line-card/shelf devices.
//     Nothing they compute feeds back into gateway, client or flow
//     dynamics, so shards queue their OnWake/OnSleep effects locally
//     (sinkOp) and the coordinator replays the merged queues in global
//     time order at each epoch barrier — the serial call sequence exactly.
//
//   - Real coupling: shared RNG streams (BH2 decisions, RandomWake) and
//     the coordinated schemes' global re-solves. These cannot be
//     partitioned without changing the serial event order, so the engine
//     degrades per scheme instead of approximating (engineMode below).
//
// Epoch barriers are the coordinator's own events: between two coordinator
// events every remaining event is provably shard-local, so each lane runs
// free until the fence time, then the barrier applies sink ops and the
// coordinator event. With the default 1 s metric tick the fence overhead is
// one pool rendezvous per simulated second.
type engineMode uint8

const (
	// modeSerial: the scheme couples shards through more than sinks
	// (global re-solves reading every client's demand, cross-shard
	// routing); the run uses the serial engine regardless of Shards.
	modeSerial engineMode = iota
	// modeTick: the event loop stays serial (shared-RNG event order), but
	// the per-gateway tick work — controller advance, transport elapse,
	// estimator observation — fans out across workers. This is the BH2
	// and RandomWake mode; ticks dominate those runs' gateway-state work.
	modeTick
	// modeLocal: every non-coordinator event is statically shard-local
	// (routing is always the client's home gateway, no shared RNG), so
	// shards run the full event loop in parallel between fences.
	modeLocal
)

// buildLanes sets up the engine lanes for the configured shard count:
// either the single serial lane or S shard lanes plus the coordinator.
// allAwake seeds the active-gateway bitsets for schemes starting On.
func (s *sim) buildLanes(allAwake bool) {
	nGW := len(s.gws)
	n := s.cfg.Shards
	if n > nGW {
		n = nGW
	}
	if n < 2 || s.mode != modeLocal {
		// Single lane covering everything. modeTick still fans the tick
		// loop out over word ranges of this lane's bitset.
		s.shards = []shard{{lo: 0, hi: nGW, bits: make([]uint64, (nGW+63)/64)}}
		s.main = &s.shards[0]
		if allAwake {
			seedBits(&s.shards[0])
		}
		if n >= 2 && s.mode == modeTick {
			s.pool = newShardPool(s, tickSpans(&s.shards[0], n))
		}
		return
	}

	s.shards = make([]shard, n)
	s.gwShard = make([]int32, nGW)
	for i := 0; i < n; i++ {
		lo, hi := i*nGW/n, (i+1)*nGW/n
		s.shards[i] = shard{
			id: i, lo: lo, hi: hi,
			bits:       make([]uint64, (hi-lo+63)/64),
			deferSinks: true,
		}
		for g := lo; g < hi; g++ {
			s.gwShard[g] = int32(i)
		}
		if allAwake {
			seedBits(&s.shards[i])
		}
	}
	// The coordinator lane owns no gateways and no trace records — only
	// the globally-ordered event heap (ticks, under modeLocal).
	s.co = shard{id: n, deferSinks: false}
	s.main = &s.co

	// Partition the trace streams by the client's home shard. Routing in
	// modeLocal is always the home gateway, so a record's entire effect
	// lands on that shard. Trace order within a shard is time order.
	// The orders start empty but non-nil: nil is the serial sentinel for
	// "consume the whole stream", and a shard that happens to receive no
	// records (quiet trace windows) must consume none, not all.
	tr := s.cfg.Trace
	for i := range s.shards {
		s.shards[i].flowOrder = []int32{}
		s.shards[i].keepOrder = []int32{}
	}
	for i, f := range tr.Flows {
		sh := &s.shards[s.gwShard[s.clients[f.Client].home]]
		sh.flowOrder = append(sh.flowOrder, int32(i))
	}
	for i, k := range tr.Keepalives {
		sh := &s.shards[s.gwShard[s.clients[k.Client].home]]
		sh.keepOrder = append(sh.keepOrder, int32(i))
	}
	s.sinkIdx = make([]int, n)

	spans := make([]poolSpan, n)
	for i := range spans {
		spans[i] = poolSpan{sh: &s.shards[i], w0: 0, w1: len(s.shards[i].bits)}
	}
	s.pool = newShardPool(s, spans)
}

func seedBits(sh *shard) {
	for g := sh.lo; g < sh.hi; g++ {
		sh.bits[(g-sh.lo)>>6] |= 1 << (uint(g-sh.lo) & 63)
	}
	sh.awakeN = sh.hi - sh.lo
}

// tickSpans splits one lane's bitset words into n contiguous ranges for
// the parallel tick prep of modeTick.
func tickSpans(sh *shard, n int) []poolSpan {
	nW := len(sh.bits)
	if n > nW && nW > 0 {
		n = nW
	}
	spans := make([]poolSpan, n)
	for i := range spans {
		spans[i] = poolSpan{sh: sh, w0: i * nW / n, w1: (i + 1) * nW / n}
	}
	return spans
}

// runSharded drives a modeLocal run: epochs of parallel shard progress
// separated by coordinator events. Cancellation is checked once per epoch
// barrier — the natural rendezvous where every lane is quiescent.
func (s *sim) runSharded() {
	s.pool.start()
	defer s.pool.stop()
	for s.shardedStep() {
		if s.canceled() {
			s.aborted = true
			return
		}
	}
	s.now = s.end
}

// shardedStep runs one epoch: advance every shard lane up to the next
// coordinator event's time, replay the deferred sink ops, then fire the
// coordinator event. It returns false after the final epoch, which drains
// the shards to the end of the trace.
//
// Events at exactly the fence time follow the serial tie rule, enforced in
// stepLane: heap events pushed before the phase began beat the coordinator
// event (their serial seq is lower — the coordinator event was pushed while
// handling its predecessor), everything else waits for the next epoch.
func (s *sim) shardedStep() bool {
	if s.main.h.len() == 0 || s.main.h.ev[0].t > s.end {
		s.pool.run(poolCmd{kind: cmdPhase, t: math.Inf(1)})
		s.drainSinks()
		return false
	}
	tF := s.main.h.ev[0].t
	s.pool.run(poolCmd{kind: cmdPhase, t: tF})
	s.drainSinks()
	e := s.main.h.pop()
	s.main.now = e.t
	s.now = e.t
	s.handle(s.main, e)
	return true
}

// drainSinks replays the shards' deferred switch-fabric ops in global time
// order: a k-way merge over the per-shard queues by head-op time (each
// queue is already time-ordered — ops are stamped with the generating
// event's time), ties broken by shard id. Each op updates the shared
// policy and reconciles the line cards exactly as the serial engine does
// inline, so policy state and card energy integration are bit-identical.
func (s *sim) drainSinks() {
	idx := s.sinkIdx
	for i := range idx {
		idx[i] = 0
	}
	for {
		best := -1
		var bt float64
		for si := range s.shards {
			q := s.shards[si].sinks
			if idx[si] >= len(q) {
				continue
			}
			if t := q[idx[si]].t; best == -1 || t < bt {
				best, bt = si, t
			}
		}
		if best == -1 {
			break
		}
		op := s.shards[best].sinks[idx[best]]
		idx[best]++
		s.applyLineOp(int(op.gw), op.wake, op.t)
	}
	for si := range s.shards {
		s.shards[si].sinks = s.shards[si].sinks[:0]
	}
}

// lineWake fires the ISP-side effects of a line going active: immediately
// on single-lane runs, deferred to the next barrier on shard lanes.
func (s *sim) lineWake(sh *shard, gw int, t float64) {
	if sh.deferSinks {
		sh.sinks = append(sh.sinks, sinkOp{t: t, gw: int32(gw), wake: true})
		return
	}
	s.applyLineOp(gw, true, t)
}

// lineSleep is the inactive counterpart of lineWake.
func (s *sim) lineSleep(sh *shard, gw int, t float64) {
	if sh.deferSinks {
		sh.sinks = append(sh.sinks, sinkOp{t: t, gw: int32(gw), wake: false})
		return
	}
	s.applyLineOp(gw, false, t)
}

// applyLineOp applies one gateway's line wake/sleep to the shared switch
// fabric and reconciles the line cards. Under a quotient run the op fans
// out over every full-scenario line the gateway stands for — the mirrored
// lines transition at the same instant, and the fabrics the collapse pass
// admits (fixed, full-switch) derive card states from the active-line set
// alone, so one card reconciliation after the batch reproduces the full
// run's card energy exactly (same-instant transients integrate to zero).
func (s *sim) applyLineOp(gw int, wake bool, t float64) {
	if s.mirror == nil {
		if wake {
			s.policy.OnWake(gw)
		} else {
			s.policy.OnSleep(gw)
		}
		s.updateCards(t)
		return
	}
	for _, line := range s.mirror[gw] {
		if wake {
			s.policy.OnWake(int(line))
		} else {
			s.policy.OnSleep(int(line))
		}
	}
	s.updateCards(t)
}

// ---- worker pool ----

// shardPool owns the persistent worker goroutines. Workers idle on their
// command channel between epochs; commands are plain values and the
// rendezvous is WaitGroup-based, so a steady-state epoch allocates nothing.
type shardPool struct {
	s       *sim
	spans   []poolSpan
	cmds    []chan poolCmd
	wg      sync.WaitGroup
	running bool
}

// poolSpan is one worker's assignment: a lane, and the bitset word range it
// covers during tick prep (the full lane in modeLocal; a slice of the
// single lane in modeTick).
type poolSpan struct {
	sh     *shard
	w0, w1 int
}

type poolCmd struct {
	kind uint8
	t    float64
}

const (
	cmdPhase uint8 = iota + 1 // advance the lane to t (exclusive fence)
	cmdPrep                   // tick prep over the span at time t
)

func newShardPool(s *sim, spans []poolSpan) *shardPool {
	return &shardPool{s: s, spans: spans, cmds: make([]chan poolCmd, len(spans))}
}

func (p *shardPool) start() {
	if p.running {
		return
	}
	p.running = true
	for i := range p.cmds {
		p.cmds[i] = make(chan poolCmd, 1)
		go p.worker(i)
	}
}

func (p *shardPool) stop() {
	if !p.running {
		return
	}
	p.running = false
	for _, c := range p.cmds {
		close(c)
	}
}

// run executes one command on every worker and waits for all of them —
// the epoch barrier. The channel send/receive pairs order each worker's
// writes before the coordinator's reads and vice versa.
func (p *shardPool) run(cmd poolCmd) {
	p.wg.Add(len(p.cmds))
	for _, c := range p.cmds {
		c <- cmd
	}
	p.wg.Wait()
}

func (p *shardPool) worker(i int) {
	for cmd := range p.cmds[i] {
		switch cmd.kind {
		case cmdPhase:
			sh := p.spans[i].sh
			sh.fenceSeq = sh.seq
			for p.s.stepLane(sh, cmd.t) {
			}
		case cmdPrep:
			sp := p.spans[i]
			p.s.tickPrepRange(sp.sh, sp.w0, sp.w1, cmd.t)
		}
		p.wg.Done()
	}
}
