package sim

import (
	"math"
	"testing"

	"insomnia/internal/bh2"
	"insomnia/internal/dsl"
	"insomnia/internal/topology"
	"insomnia/internal/trace"
)

// smallScenario builds a reduced but structurally faithful scenario: 48
// clients on 8 gateways, 2-hour trace, so tests stay fast.
func smallScenario(t *testing.T, seed int64) (*trace.Trace, *topology.Topology) {
	t.Helper()
	// A flat daytime-level activity profile so the 2-hour window carries
	// enough traffic for the schemes to differ.
	var busy trace.Profile
	for i := range busy {
		busy[i] = 0.55
	}
	cfg := trace.Config{
		Clients: 48, APs: 8, Profile: busy, Seed: seed,
		Duration: 2 * 3600,
	}
	tr, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := topology.OverlapGraph(8, 5.0, seed)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := topology.FromOverlap(g, tr.ClientAP)
	if err != nil {
		t.Fatal(err)
	}
	return tr, tp
}

func run(t *testing.T, tr *trace.Trace, tp *topology.Topology, sc Scheme, seed int64) *Result {
	t.Helper()
	res, err := Run(Config{Trace: tr, Topo: tp, Scheme: sc, Seed: seed, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSchemeString(t *testing.T) {
	names := map[Scheme]string{
		NoSleep: "no-sleep", SoI: "SoI", SoIKSwitch: "SoI+k-switch",
		SoIFullSwitch: "SoI+full-switch", BH2KSwitch: "BH2+k-switch",
		BH2FullSwitch: "BH2+full-switch", BH2NoBackup: "BH2-nobackup+k-switch",
		Optimal: "optimal",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d: %q != %q", s, s.String(), want)
		}
	}
	if Scheme(99).String() != "Scheme(99)" {
		t.Error("unknown scheme string")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	tr, tp := smallScenario(t, 1)
	// Mismatched topology.
	g2, err := topology.OverlapGraph(8, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	tp2, err := topology.FromOverlap(g2, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(Config{Trace: tr, Topo: tp2}); err == nil {
		t.Error("client-count mismatch accepted")
	}
	_ = tp
}

func TestNoSleepBaselinePower(t *testing.T) {
	tr, tp := smallScenario(t, 2)
	res := run(t, tr, tp, NoSleep, 2)
	// Everything on for 2 h: 8 gateways x 9W user side; ISP: shelf 21 +
	// 4 cards x 98 + 8 modems x 1 = 421 W.
	dur := 2 * 3600.0
	wantUser := 8 * 9.0 * dur
	wantISP := (21 + 4*98 + 8) * dur
	if math.Abs(res.Energy.UserJ-wantUser) > 1 {
		t.Errorf("user energy = %v, want %v", res.Energy.UserJ, wantUser)
	}
	if math.Abs(res.Energy.ISPJ-wantISP) > 1 {
		t.Errorf("ISP energy = %v, want %v", res.Energy.ISPJ, wantISP)
	}
	// All gateways online at all times.
	for i := 0; i < res.OnlineGWs.Bins(); i++ {
		if res.OnlineGWs.MeanAt(i) != 8 {
			t.Fatalf("bin %d: %v gateways online under no-sleep", i, res.OnlineGWs.MeanAt(i))
		}
	}
	if res.Wakeups != 0 {
		t.Errorf("no-sleep had %d wakeups", res.Wakeups)
	}
}

func TestAllFlowsCompleteUnderNoSleep(t *testing.T) {
	tr, tp := smallScenario(t, 3)
	res := run(t, tr, tp, NoSleep, 3)
	incomplete := 0
	for i, f := range tr.Flows {
		if f.Up {
			continue
		}
		if math.IsNaN(res.FCT[i]) {
			incomplete++
			continue
		}
		// FCT at least the solo transfer time at 6 Mbps, bounded by wireless cap.
		min := float64(f.Bytes) / (6e6 / 8)
		if res.FCT[i] < min-1e-6 {
			t.Fatalf("flow %d finished faster than the link allows: %v < %v", i, res.FCT[i], min)
		}
	}
	// Flows arriving near the end may legitimately not finish.
	if frac := float64(incomplete) / float64(len(tr.Flows)); frac > 0.05 {
		t.Errorf("%.1f%% of flows incomplete under no-sleep", frac*100)
	}
}

func TestSoISavesEnergyButLessThanBH2(t *testing.T) {
	tr, tp := smallScenario(t, 4)
	base := run(t, tr, tp, NoSleep, 4)
	soi := run(t, tr, tp, SoI, 4)
	bh := run(t, tr, tp, BH2KSwitch, 4)
	sSoI, sBH := soi.SavingsVs(base), bh.SavingsVs(base)
	if sSoI <= 0 {
		t.Errorf("SoI savings = %v, want > 0", sSoI)
	}
	if sBH <= sSoI {
		t.Errorf("BH2 (%v) should beat SoI (%v)", sBH, sSoI)
	}
	if bh.Moves == 0 {
		t.Error("BH2 never moved a client")
	}
}

func TestOptimalBeatsEveryone(t *testing.T) {
	tr, tp := smallScenario(t, 5)
	base := run(t, tr, tp, NoSleep, 5)
	bh := run(t, tr, tp, BH2KSwitch, 5)
	opt := run(t, tr, tp, Optimal, 5)
	if opt.SavingsVs(base) < bh.SavingsVs(base)-0.02 {
		t.Errorf("optimal (%v) below BH2 (%v)", opt.SavingsVs(base), bh.SavingsVs(base))
	}
	if opt.Resolves == 0 {
		t.Error("optimal never resolved")
	}
	if opt.OptGap > opt.Resolves/10 {
		t.Errorf("%d/%d resolves hit the node budget", opt.OptGap, opt.Resolves)
	}
}

func TestOnlineGatewaysOrdering(t *testing.T) {
	// Fig 7's qualitative ordering at busy hours: optimal <= BH2 <= SoI.
	tr, tp := smallScenario(t, 6)
	soi := run(t, tr, tp, SoI, 6)
	bh := run(t, tr, tp, BH2KSwitch, 6)
	opt := run(t, tr, tp, Optimal, 6)
	mean := func(r *Result) float64 { return MeanOver(r.OnlineGWs, 0, 2) }
	if !(mean(opt) <= mean(bh)+0.5 && mean(bh) <= mean(soi)+0.5) {
		t.Errorf("online gateways: optimal %.2f, BH2 %.2f, SoI %.2f — ordering broken",
			mean(opt), mean(bh), mean(soi))
	}
}

func TestEnergyConservation(t *testing.T) {
	// Total energy equals the integral of sampled power within sampling
	// error — the accounting and the time series must agree.
	tr, tp := smallScenario(t, 7)
	for _, sc := range []Scheme{NoSleep, SoI, BH2KSwitch} {
		res := run(t, tr, tp, sc, 7)
		var integral float64
		for i := 0; i < res.PowerW.Bins(); i++ {
			integral += res.PowerW.MeanAt(i) * 1.0 // 1 s bins
		}
		total := res.Energy.Total()
		if total <= 0 {
			t.Fatalf("%v: zero energy", sc)
		}
		if rel := math.Abs(integral-total) / total; rel > 0.02 {
			t.Errorf("%v: sampled integral %v vs accounted %v (%.2f%% off)",
				sc, integral, total, rel*100)
		}
	}
}

func TestFCTNeverBelowNoSleep(t *testing.T) {
	// Sleeping can only delay flows. Compare per-flow against no-sleep.
	tr, tp := smallScenario(t, 8)
	base := run(t, tr, tp, NoSleep, 8)
	soi := run(t, tr, tp, SoI, 8)
	worse, total := 0, 0
	for i := range base.FCT {
		if math.IsNaN(base.FCT[i]) || math.IsNaN(soi.FCT[i]) {
			continue
		}
		total++
		if soi.FCT[i] < base.FCT[i]-1e-6 {
			// A flow can finish faster under SoI only if contention
			// differs (other flows were delayed past it). Rare but legal;
			// count it.
			worse++
		}
	}
	if total == 0 {
		t.Fatal("no comparable flows")
	}
	if frac := float64(worse) / float64(total); frac > 0.10 {
		t.Errorf("%.1f%% of flows faster under SoI; transport model suspect", frac*100)
	}
}

func TestDeterminism(t *testing.T) {
	tr, tp := smallScenario(t, 9)
	a := run(t, tr, tp, BH2KSwitch, 9)
	b := run(t, tr, tp, BH2KSwitch, 9)
	if a.Energy != b.Energy || a.Moves != b.Moves || a.Wakeups != b.Wakeups {
		t.Errorf("non-deterministic: %+v vs %+v", a.Energy, b.Energy)
	}
	for i := range a.FCT {
		af, bf := a.FCT[i], b.FCT[i]
		if math.IsNaN(af) != math.IsNaN(bf) || (!math.IsNaN(af) && af != bf) {
			t.Fatalf("flow %d FCT differs: %v vs %v", i, af, bf)
		}
	}
}

func TestBackupAblation(t *testing.T) {
	tr, tp := smallScenario(t, 10)
	withB := run(t, tr, tp, BH2KSwitch, 10)
	noB := run(t, tr, tp, BH2NoBackup, 10)
	// Both must work; the paper's finding is that backup costs nothing in
	// online gateways (§5.2.2) — allow generous slack on a small scenario.
	mw, mn := MeanOver(withB.OnlineGWs, 0, 2), MeanOver(noB.OnlineGWs, 0, 2)
	if math.Abs(mw-mn) > 2.5 {
		t.Errorf("backup changed online gateways drastically: %v vs %v", mw, mn)
	}
}

func TestKSwitchReducesCardsVsFixed(t *testing.T) {
	tr, tp := smallScenario(t, 11)
	plain := run(t, tr, tp, SoI, 11)
	ksw := run(t, tr, tp, SoIKSwitch, 11)
	full := run(t, tr, tp, SoIFullSwitch, 11)
	mp, mk, mf := MeanOver(plain.OnlineCards, 0, 2), MeanOver(ksw.OnlineCards, 0, 2), MeanOver(full.OnlineCards, 0, 2)
	if mk > mp+1e-9 {
		t.Errorf("k-switch (%v) worse than fixed (%v)", mk, mp)
	}
	if mf > mk+1e-9 {
		t.Errorf("full switch (%v) worse than k-switch (%v)", mf, mk)
	}
}

func TestGatewayOnTimeBounded(t *testing.T) {
	tr, tp := smallScenario(t, 12)
	res := run(t, tr, tp, BH2KSwitch, 12)
	for g, ot := range res.GatewayOnTime {
		if ot < 0 || ot > tr.Cfg.Duration+1 {
			t.Errorf("gateway %d on-time %v outside [0,%v]", g, ot, tr.Cfg.Duration)
		}
	}
}

func TestSavingsSeriesAndISPShare(t *testing.T) {
	tr, tp := smallScenario(t, 13)
	base := run(t, tr, tp, NoSleep, 13)
	bh := run(t, tr, tp, BH2KSwitch, 13)
	sav := SavingsSeries(bh, base)
	share := ISPShareSeries(bh, base)
	if len(sav) != bh.PowerW.Bins() || len(share) != len(sav) {
		t.Fatal("series length mismatch")
	}
	anyPos := false
	for i := range sav {
		if sav[i] > 1.0000001 || share[i] < 0 || share[i] > 1.0000001 {
			t.Fatalf("bin %d: savings %v share %v out of range", i, sav[i], share[i])
		}
		if sav[i] > 0 {
			anyPos = true
		}
	}
	if !anyPos {
		t.Error("no positive savings bins")
	}
}

func TestBH2ParamsPropagate(t *testing.T) {
	tr, tp := smallScenario(t, 14)
	p := bh2.DefaultParams()
	p.Low, p.High = 0.02, 0.9 // nearly-never hitch-hike
	res, err := Run(Config{Trace: tr, Topo: tp, Scheme: BH2KSwitch, Seed: 14, K: 2, BH2: p})
	if err != nil {
		t.Fatal(err)
	}
	resDef := run(t, tr, tp, BH2KSwitch, 14)
	if res.Moves > resDef.Moves {
		t.Errorf("tight thresholds moved more (%d) than defaults (%d)", res.Moves, resDef.Moves)
	}
}

func TestCentralizedSchemeBetweenBH2AndOptimal(t *testing.T) {
	tr, tp := smallScenario(t, 15)
	base := run(t, tr, tp, NoSleep, 15)
	bh := run(t, tr, tp, BH2KSwitch, 15)
	cen := run(t, tr, tp, Centralized, 15)
	if cen.Resolves == 0 {
		t.Fatal("centralized never resolved")
	}
	// Coordination must not do worse than the distributed heuristic by a
	// meaningful margin (small scenarios are noisy; allow 5 points).
	if cen.SavingsVs(base) < bh.SavingsVs(base)-0.05 {
		t.Errorf("centralized %.2f well below BH2 %.2f", cen.SavingsVs(base), bh.SavingsVs(base))
	}
	if got := Centralized.String(); got != "centralized+k-switch" {
		t.Errorf("name = %q", got)
	}
}

func TestRandomWakeDelays(t *testing.T) {
	tr, tp := smallScenario(t, 16)
	fixed, err := Run(Config{Trace: tr, Topo: tp, Scheme: SoI, Seed: 16, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	random, err := Run(Config{Trace: tr, Topo: tp, Scheme: SoI, Seed: 16, K: 2, RandomWake: true})
	if err != nil {
		t.Fatal(err)
	}
	if fixed.Energy == random.Energy {
		t.Error("random wake delays had no effect at all")
	}
	// Same order of magnitude: the wake distribution has mean ~60 s too.
	rf, rr := fixed.SavingsVs(fixed), random.SavingsVs(fixed)
	if rf != 0 || rr < -0.5 || rr > 0.5 {
		t.Errorf("random-wake savings delta out of band: %v", rr)
	}
}

func TestDecisionReasonsExposed(t *testing.T) {
	tr, tp := smallScenario(t, 17)
	res := run(t, tr, tp, BH2KSwitch, 17)
	total := 0
	for _, n := range res.DecisionReasons {
		total += n
	}
	if total == 0 {
		t.Error("no decision reasons recorded")
	}
}

func TestDebugDecisionsHook(t *testing.T) {
	tr, tp := smallScenario(t, 18)
	calls := 0
	_, err := Run(Config{
		Trace: tr, Topo: tp, Scheme: BH2KSwitch, Seed: 18, K: 2,
		DebugDecisions: func(tm float64, c int, views []bh2.GatewayView, d bh2.Decision) {
			calls++
			if tm < 0 || c < 0 || len(views) == 0 {
				t.Errorf("bad hook args: t=%v c=%d views=%d", tm, c, len(views))
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Error("debug hook never called")
	}
}

func TestLargeScaleDSLAM(t *testing.T) {
	// §4.1 notes real DSLAMs serve 1000+ ports. Exercise the simulator at
	// that scale: 20 cards of 48 ports, 800 gateways, 2400 clients, one
	// peak hour. Checks that the engine and the k-switch machinery scale
	// and that aggregation still materializes.
	if testing.Short() {
		t.Skip("large-scale run")
	}
	var busy trace.Profile
	for i := range busy {
		busy[i] = 0.5
	}
	tr, err := trace.Generate(trace.Config{
		Clients: 2400, APs: 800, Profile: busy, Seed: 31, Duration: 3600,
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := topology.OverlapGraph(800, 5.6, 31)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := topology.FromOverlap(g, tr.ClientAP)
	if err != nil {
		t.Fatal(err)
	}
	shelf := dsl.DSLAM{Cards: 20, PortsPerCard: 48}
	base, err := Run(Config{Trace: tr, Topo: tp, Scheme: NoSleep, Seed: 31, DSLAM: shelf, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	bh, err := Run(Config{Trace: tr, Topo: tp, Scheme: BH2KSwitch, Seed: 31, DSLAM: shelf, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if s := bh.SavingsVs(base); s <= 0.05 {
		t.Errorf("large-scale BH2 savings = %.1f%%, expected positive aggregation", s*100)
	}
	online := MeanOver(bh.OnlineGWs, 0.5, 1)
	if online >= 800 {
		t.Errorf("no gateways asleep at scale: %v online", online)
	}
	if cards := MeanOver(bh.OnlineCards, 0.5, 1); cards > 20 {
		t.Errorf("online cards %v exceed shelf", cards)
	}
}
