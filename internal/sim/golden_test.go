package sim

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"flag"
	"hash"
	"math"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"insomnia/internal/bh2"
	"insomnia/internal/stats"
	"insomnia/internal/topology"
	"insomnia/internal/trace"
)

// The golden-metrics test pins the simulator's observable output bit-for-bit.
// Performance refactors of the engine (event heap, lazy sampling, completion
// caching) must leave every per-scheme metric byte-identical; this test is
// the contract. Regenerate testdata/golden.json with
//
//	go test ./internal/sim -run TestGoldenMetrics -update-golden
//
// only when an intentional behavior change lands, and say so in the commit.
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden.json from the current engine")

const goldenPath = "testdata/golden.json"

func hashF64(h hash.Hash, v float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	h.Write(b[:])
}

func hashInt(h hash.Hash, v int64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	h.Write(b[:])
}

func hashSeries(h hash.Hash, ts *stats.TimeSeries) {
	hashInt(h, int64(ts.Bins()))
	for i := 0; i < ts.Bins(); i++ {
		hashF64(h, ts.MeanAt(i))
	}
}

// fingerprint reduces every metric a Result carries to one digest. Any bit
// of drift in energy accounting, sampled series, per-flow QoS or decision
// counters changes the digest.
func fingerprint(res *Result) string {
	h := sha256.New()
	hashInt(h, int64(res.Scheme))
	hashF64(h, res.Duration)
	hashF64(h, res.Energy.UserJ)
	hashF64(h, res.Energy.ISPJ)
	hashInt(h, int64(res.Wakeups))
	hashInt(h, int64(res.Moves))
	hashInt(h, int64(res.Resolves))
	hashInt(h, int64(res.OptGap))
	for _, v := range res.FCT {
		hashF64(h, v)
	}
	for _, v := range res.FlowStall {
		hashF64(h, v)
	}
	for _, v := range res.GatewayOnTime {
		hashF64(h, v)
	}
	hashSeries(h, res.PowerW)
	hashSeries(h, res.UserPowerW)
	hashSeries(h, res.ISPPowerW)
	hashSeries(h, res.OnlineGWs)
	hashSeries(h, res.OnlineCards)
	reasons := make([]int, 0, len(res.DecisionReasons))
	for r := range res.DecisionReasons {
		reasons = append(reasons, int(r))
	}
	sort.Ints(reasons)
	for _, r := range reasons {
		hashInt(h, int64(r))
		hashInt(h, int64(res.DecisionReasons[bh2.Reason(r)]))
	}
	// Robustness block, present only for failure-injection runs so every
	// failure-free fingerprint predating it is unchanged.
	if res.GatewayDownTime != nil {
		hashInt(h, int64(res.Failures))
		hashInt(h, int64(res.FlowsAborted))
		hashF64(h, res.StrandedSeconds)
		hashInt(h, int64(res.Reconnects))
		hashF64(h, res.MeanRecoveryS)
		hashF64(h, res.Availability)
		for _, v := range res.GatewayDownTime {
			hashF64(h, v)
		}
		hashSeries(h, res.StrandedClients)
	}
	return hex.EncodeToString(h.Sum(nil))
}

func goldenCases(t *testing.T) map[string]*Result {
	t.Helper()
	out := map[string]*Result{}
	tr9, tp9 := smallScenario(t, 9)
	for _, sc := range []Scheme{
		NoSleep, SoI, SoIKSwitch, SoIFullSwitch,
		BH2KSwitch, BH2FullSwitch, BH2NoBackup, Optimal, Centralized,
	} {
		out["seed9/"+sc.String()] = run(t, tr9, tp9, sc, 9)
	}
	// Random wake delays exercise the wake-RNG path.
	rw, err := Run(Config{Trace: tr9, Topo: tp9, Scheme: SoI, Seed: 9, K: 2, RandomWake: true})
	if err != nil {
		t.Fatal(err)
	}
	out["seed9/SoI-randomwake"] = rw
	// A second trace seed to vary traffic structure.
	tr21, tp21 := smallScenario(t, 21)
	for _, sc := range []Scheme{SoI, BH2KSwitch, Optimal} {
		out["seed21/"+sc.String()] = run(t, tr21, tp21, sc, 21)
	}
	// Failure injection: a mid-run crash plus an area outage, pinned for the
	// schemes whose reactions differ (SoI blind, BH2 terminal-side,
	// Centralized controller-side re-solve).
	fp := testFailurePlan()
	for _, sc := range []Scheme{SoI, BH2KSwitch, Centralized} {
		res, err := Run(Config{Trace: tr9, Topo: tp9, Scheme: sc, Seed: 9, K: 2, Failures: fp})
		if err != nil {
			t.Fatal(err)
		}
		out["seed9/"+sc.String()+"/failures"] = res
	}
	// Full-day §5 scenario (same construction as figures.NewScenario): the
	// acceptance bar for engine refactors is byte-identical day-run metrics.
	if !testing.Short() {
		tr, err := trace.Generate(trace.DefaultSimConfig(2))
		if err != nil {
			t.Fatal(err)
		}
		g, err := topology.OverlapGraph(tr.Cfg.APs, topology.DefaultMeanInRange, 2)
		if err != nil {
			t.Fatal(err)
		}
		tp, err := topology.FromOverlap(g, tr.ClientAP)
		if err != nil {
			t.Fatal(err)
		}
		for _, sc := range []Scheme{NoSleep, SoI, BH2KSwitch} {
			res, err := Run(Config{Trace: tr, Topo: tp, Scheme: sc, Seed: 2})
			if err != nil {
				t.Fatal(err)
			}
			out["day/"+sc.String()] = res
		}
	}
	return out
}

func TestGoldenMetrics(t *testing.T) {
	results := goldenCases(t)
	got := make(map[string]string, len(results))
	for name, res := range results {
		got[name] = fingerprint(res)
	}
	if *updateGolden {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d fingerprints to %s", len(got), goldenPath)
		return
	}
	buf, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden once): %v", err)
	}
	var want map[string]string
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}
	if !testing.Short() && len(want) != len(got) {
		t.Errorf("golden has %d cases, run produced %d", len(want), len(got))
	}
	for name, g := range got {
		if w, ok := want[name]; !ok {
			t.Errorf("%s: no golden entry (regenerate with -update-golden)", name)
		} else if g != w {
			t.Errorf("%s: metrics drifted: %s != golden %s", name, g, w)
		}
	}
}
