package sim

// event kinds.
const (
	evComplete = iota // flow completion check on gateway A
	evGwCheck         // gateway A state transition due
	evDecide          // BH2 decision for client A
	evTick            // metric sampling + estimator observation
	evResolve         // Optimal re-solve
)

type event struct {
	t    float64
	seq  int64 // FIFO tie-break for determinism
	kind int
	a    int
	aux  int64 // epoch for evComplete staleness
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
