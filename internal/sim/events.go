package sim

// event kinds.
const (
	evComplete = iota // flow completion check on gateway A
	evGwCheck         // gateway A state transition due
	evDecide          // BH2 decision for client A
	evTick            // metric sampling + estimator observation
	evResolve         // Optimal re-solve (aux 1: one-shot failure reaction)
	evFail            // gateway A loses power (failure injection)
	evRecover         // gateway A rebooted and is operative again
)

type event struct {
	t    float64
	seq  int64 // FIFO tie-break for determinism
	kind int
	a    int
	aux  int64 // epoch for evComplete staleness
}

// eventHeap is an inlined 4-ary min-heap over event values ordered by
// (t, seq). The engine pushes and pops one event per simulated occurrence,
// so this structure is the hottest path in the simulator; compared with
// container/heap it avoids the interface boxing on every Push/Pop (one heap
// allocation per event) and the Less/Swap indirect calls, and the 4-ary
// layout halves the tree depth so sift-down touches fewer cache lines.
//
// (t, seq) keys are totally ordered in practice — the engine's seq counter
// is strictly increasing — so any correct heap yields the same pop order;
// events_test.go pins that against a container/heap reference.
type eventHeap struct {
	ev []event
}

func (h *eventHeap) len() int { return len(h.ev) }

// before reports strict (t, seq) ordering — the single comparison both
// sift directions specialize on.
func (a *event) before(b *event) bool {
	return a.t < b.t || (a.t == b.t && a.seq < b.seq)
}

func (h *eventHeap) push(e event) {
	h.ev = append(h.ev, e)
	i := len(h.ev) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !h.ev[i].before(&h.ev[p]) {
			break
		}
		h.ev[i], h.ev[p] = h.ev[p], h.ev[i]
		i = p
	}
}

func (h *eventHeap) pop() event {
	root := h.ev[0]
	n := len(h.ev) - 1
	h.ev[0] = h.ev[n]
	h.ev = h.ev[:n]
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if h.ev[j].before(&h.ev[m]) {
				m = j
			}
		}
		if !h.ev[m].before(&h.ev[i]) {
			break
		}
		h.ev[i], h.ev[m] = h.ev[m], h.ev[i]
		i = m
	}
	return root
}
