package sim

import (
	"insomnia/internal/bh2"
	"insomnia/internal/kswitch"
	"insomnia/internal/power"
	"insomnia/internal/stats"
)

// bh2Scheme runs the paper's distributed BH² terminal algorithm (§3.2):
// each terminal periodically observes in-range gateway loads through the
// passive wifi SN-counting estimator and decides on its own jittered clock
// whether to hitch-hike onto a neighbor or return home. The no-backup
// ablation reuses this strategy with cfg.BH2.Backup forced to 0.
type bh2Scheme struct {
	baseScheme
	fabric fabric
}

func (sc bh2Scheme) newPolicy(cfg Config) (kswitch.Policy, error) {
	return sc.fabric.build(cfg)
}

// Decisions (and sleeping-gateway routes) consume the shared decision RNG
// in global event order, so the event loop stays serial; only the tick
// work parallelizes.
func (bh2Scheme) parallelMode() engineMode { return modeTick }

// seedEvents spreads the first decision of every terminal uniformly over
// one period so the population never decides in lockstep.
func (sc bh2Scheme) seedEvents(s *sim) {
	r := stats.NewRNG(s.cfg.Seed, 0x0ff5e7)
	for c := range s.clients {
		s.push(event{t: r.Float64() * s.cfg.BH2.PeriodSec, kind: evDecide, a: c})
	}
}

// route returns the terminal's current association. When the assigned
// gateway vanished, an immediate decision runs first (the terminal notices
// missing beacons right away).
func (sc bh2Scheme) route(s *sim, c int) int {
	cl := &s.clients[c]
	if s.gws[cl.assigned].ctl.State() == power.Sleeping {
		sc.apply(s, c, bh2.Decide(s.decRNG, s.cfg.BH2, cl.home, cl.assigned, sc.views(s, c)))
	}
	return cl.assigned
}

func (sc bh2Scheme) onDecide(s *sim, c int) {
	sc.decide(s, c)
	s.push(event{t: bh2.NextDecisionTime(s.decRNG, s.cfg.BH2, s.now), kind: evDecide, a: c})
}

// views assembles what terminal c can passively observe (§3.2): awake
// gateways in range with their estimated loads.
func (sc bh2Scheme) views(s *sim, c int) []bh2.GatewayView {
	rng := s.cfg.Topo.InRange(c)
	out := make([]bh2.GatewayView, 0, len(rng))
	for _, gw := range rng {
		g := &s.gws[gw]
		out = append(out, bh2.GatewayView{
			ID:     gw,
			Awake:  g.ctl.State() == power.On,
			Load:   g.est.Utilization(s.now, s.cfg.BH2.EstWindow),
			Active: g.est.ActiveWithin(s.now, s.cfg.BH2.EstWindow),
		})
	}
	return out
}

func (sc bh2Scheme) decide(s *sim, c int) {
	// Only powered-on terminals run the algorithm; "recent traffic" is the
	// observable proxy for the terminal being on (keepalives arrive every
	// few seconds while it is).
	if s.now-s.lastTraffic[c] > 2*s.cfg.BH2.EstWindow {
		return
	}
	views := sc.views(s, c)
	d := bh2.Decide(s.decRNG, s.cfg.BH2, s.clients[c].home, s.clients[c].assigned, views)
	if s.cfg.DebugDecisions != nil {
		s.cfg.DebugDecisions(s.now, c, views, d)
	}
	sc.apply(s, c, d)
}

func (sc bh2Scheme) apply(s *sim, c int, d bh2.Decision) {
	s.reasons[d.Reason]++
	cl := &s.clients[c]
	switch d.Action {
	case bh2.Move:
		if cl.assigned != d.Target {
			cl.assigned = d.Target
			s.unmarkPendingHome(c)
			s.moves++
		}
	case bh2.ReturnHome:
		home := &s.gws[cl.home]
		if home.ctl.Awake() {
			cl.assigned = cl.home
			s.unmarkPendingHome(c)
			return
		}
		if s.cfg.BH2.WakeUpHome {
			s.touch(s.main, home, s.now) // wake it up if necessary (§3.1)
		}
		if s.gws[cl.assigned].ctl.Awake() && cl.assigned != cl.home {
			// Keep riding the current remote until home is operative.
			s.markPendingHome(c)
		} else {
			cl.assigned = cl.home // nothing usable: queue at home
			s.unmarkPendingHome(c)
		}
	}
}
