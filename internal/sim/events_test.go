package sim

import (
	"container/heap"
	"testing"

	"insomnia/internal/stats"
)

// refHeap is the pre-refactor container/heap implementation, kept here as
// the differential-test reference for the inlined 4-ary heap.
type refHeap []event

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *refHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// TestHeapDifferential drives the 4-ary heap and container/heap with the
// same interleaved random push/pop stream and requires identical pop
// sequences, including among time-tied events (seq breaks the tie) and
// among fully duplicate (t, seq) keys (where only key order is defined).
func TestHeapDifferential(t *testing.T) {
	r := stats.NewRNG(7, 0x4ea)
	var got eventHeap
	var want refHeap
	seq := int64(0)
	for round := 0; round < 20000; round++ {
		if want.Len() == 0 || r.Float64() < 0.55 {
			// Coarse-grained times force plenty of t-ties; seq, as in the
			// engine, stays strictly increasing and breaks them.
			seq++
			e := event{t: float64(r.Intn(200)), seq: seq, kind: r.Intn(5), a: r.Intn(64)}
			got.push(e)
			heap.Push(&want, e)
		} else {
			g := got.pop()
			w := heap.Pop(&want).(event)
			if g != w {
				t.Fatalf("round %d: pop mismatch: %+v != %+v", round, g, w)
			}
		}
	}
	for want.Len() > 0 {
		g := got.pop()
		w := heap.Pop(&want).(event)
		if g != w {
			t.Fatalf("drain: pop mismatch: %+v != %+v", g, w)
		}
	}
	if got.len() != 0 {
		t.Fatalf("4-ary heap retains %d events after drain", got.len())
	}
}

// TestHeapDuplicateKeys pins behavior when (t, seq) keys collide exactly:
// both heaps must still agree on the popped key sequence.
func TestHeapDuplicateKeys(t *testing.T) {
	var got eventHeap
	var want refHeap
	for i := 0; i < 100; i++ {
		e := event{t: float64(i % 3), seq: int64(i % 2), kind: i}
		got.push(e)
		heap.Push(&want, e)
	}
	for want.Len() > 0 {
		g := got.pop()
		w := heap.Pop(&want).(event)
		if g.t != w.t || g.seq != w.seq {
			t.Fatalf("duplicate-key pop order diverged: (%v,%d) != (%v,%d)", g.t, g.seq, w.t, w.seq)
		}
	}
}

// TestHeapSteadyStateAllocs pins the zero-allocation contract: once the
// backing array has grown, pushing and popping events allocates nothing.
func TestHeapSteadyStateAllocs(t *testing.T) {
	var h eventHeap
	for i := 0; i < 1024; i++ {
		h.push(event{t: float64(1024 - i), seq: int64(i)})
	}
	for h.len() > 256 {
		h.pop()
	}
	seq := int64(2000)
	allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < 64; i++ {
			seq++
			h.push(event{t: float64(seq % 97), seq: seq})
		}
		for i := 0; i < 64; i++ {
			h.pop()
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state push/pop allocates %.1f times per run, want 0", allocs)
	}
}
