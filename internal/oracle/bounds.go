package oracle

import (
	"fmt"
	"math"

	"insomnia/internal/power"
	"insomnia/internal/sim"
)

// bounds.go holds the oracle's non-exact legs: structural invariants that
// every failure-free run must satisfy — the only cross-check available
// for the coupled schemes (BH2*, optimal, centralized, RandomWake) — and
// the exact stationary expectation for full-switch card occupancy used by
// the analytic tests.

// relTol is the slack used where an invariant compares two independently
// ordered float sums (e.g. per-segment dt·W additions vs W·Σdt); the
// quantities are algebraically equal, so only rounding separates them.
const relTol = 1e-9

// Invariants checks a result against the scheme-independent laws of the
// model: unit availability without failures, on-times within [0, horizon],
// gateway energy = GatewayWatts · on-time, the shelf's constant draw as
// an ISP-energy floor, total energy at most the all-on ceiling, and FCT
// at least the backhaul serialization delay with stall a component of
// FCT. It returns one message per violation; empty means the run is
// consistent. Exactness is not claimed — use Reference for that where
// Supported.
func Invariants(cfg sim.Config, res *sim.Result) []string {
	var bad []string
	add := func(format string, args ...any) { bad = append(bad, fmt.Sprintf(format, args...)) }
	end := res.Duration
	if end <= 0 {
		return []string{fmt.Sprintf("non-positive duration %v", end)}
	}
	if res.Availability != 1 {
		add("availability %v on a failure-free run", res.Availability)
	}
	var onSum float64
	for g, on := range res.GatewayOnTime {
		if on < 0 || on > end*(1+relTol) {
			add("gateway %d on-time %v outside [0, %v]", g, on, end)
		}
		onSum += on
	}
	// Each gateway's joules are per-segment dt·GatewayWatts sums; comparing
	// against GatewayWatts·Σdt reorders the floats, hence relTol.
	if wantUser := power.GatewayWatts * onSum; math.Abs(res.Energy.UserJ-wantUser) > relTol*(wantUser+1) {
		add("user energy %v != %v W x %v s gateway on-time", res.Energy.UserJ, float64(power.GatewayWatts), onSum)
	}
	for cd, on := range res.CardOnTime {
		if on < 0 || on > end*(1+relTol) {
			add("card %d on-time %v outside [0, %v]", cd, on, end)
		}
	}
	if floor := power.ShelfWatts * end; res.Energy.ISPJ < floor*(1-relTol) {
		add("ISP energy %v below the always-on shelf floor %v", res.Energy.ISPJ, floor)
	}
	nGW := float64(len(res.GatewayOnTime))
	ceiling := (power.GatewayWatts+power.ISPModemWatts)*nGW*end +
		power.LineCardWatts*float64(len(res.CardOnTime))*end +
		power.ShelfWatts*end
	if total := res.Energy.UserJ + res.Energy.ISPJ; total > ceiling*(1+relTol) {
		add("total energy %v above the all-on ceiling %v", total, ceiling)
	}
	if res.Wakeups < 0 {
		add("negative wakeup count %d", res.Wakeups)
	}
	if res.Scheme == sim.NoSleep && res.Wakeups != 0 {
		add("no-sleep run recorded %d wakeups", res.Wakeups)
	}
	byteRate := cfg.Trace.Cfg.BackhaulBps / 8 // max service bytes/s of any flow
	for i, fct := range res.FCT {
		if math.IsNaN(fct) {
			continue
		}
		f := cfg.Trace.Flows[i]
		// A flow finishes once under a byte remains, after at least
		// (Bytes-1)/byteRate seconds of service (clock floor 1e-9).
		min := (float64(f.Bytes) - 1) / byteRate
		if min < 1e-9 {
			min = 1e-9
		}
		if fct < min*(1-relTol) {
			add("flow %d FCT %v below serialization bound %v", i, fct, min)
		}
		if st := res.FlowStall[i]; st < 0 || st > fct*(1+relTol) {
			add("flow %d stall %v outside [0, FCT=%v]", i, st, fct)
		}
	}
	return bad
}

// FullSwitchExpectedAwakeCards returns the expected number of awake cards
// of an n-line, m-ports-per-card shelf behind an ideal full switch when
// each line is independently active with probability p: the repack rule
// occupies exactly ceil(A/m) cards for A active lines, and A is
// Binomial(n, p), so E[awake] = Σ_a P(A=a)·ceil(a/m). This is the exact
// stationary counterpart of analytic.FullSwitchSleepingCards's floor
// bound, used by the Poisson analytic leg (TestAnalyticFullSwitchCards).
func FullSwitchExpectedAwakeCards(n, m int, p float64) (float64, error) {
	if n < 1 || m < 1 {
		return 0, fmt.Errorf("oracle: invalid n=%d m=%d", n, m)
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("oracle: probability p=%v outside [0,1]", p)
	}
	// Binomial pmf built by the Pascal recurrence to stay exact-ish for
	// the small n (tens of lines) this is used with.
	pmf := make([]float64, n+1)
	pmf[0] = 1
	for line := 0; line < n; line++ {
		for a := line + 1; a > 0; a-- {
			pmf[a] = pmf[a]*(1-p) + pmf[a-1]*p
		}
		pmf[0] *= 1 - p
	}
	var e float64
	for a := 0; a <= n; a++ {
		e += pmf[a] * float64((a+m-1)/m)
	}
	return e, nil
}
