package oracle

import (
	"os"
	"strconv"
	"testing"

	"insomnia/internal/dsl"
	"insomnia/internal/sim"
	"insomnia/internal/stats"
)

// specCount returns the number of randomized tiny specs to cross-check
// per scheme: a short smoke by default (riding in the main `go test`
// run), raised via ORACLE_SPECS for the CI oracle job and local deep
// runs (ORACLE_SPECS=200 is the validated local depth).
func specCount(t *testing.T) int {
	t.Helper()
	n := 6
	if v := os.Getenv("ORACLE_SPECS"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 1 {
			t.Fatalf("bad ORACLE_SPECS=%q: %v", v, err)
		}
		n = parsed
	}
	if testing.Short() {
		n = 2
	}
	return n
}

// exactSchemes are the reference interpreter's domain.
var exactSchemes = []sim.Scheme{sim.NoSleep, sim.SoI, sim.SoIKSwitch, sim.SoIFullSwitch}

// TestReferenceMatchesEngine is the tentpole property: for randomized
// tiny specs, the straight-line reference interpreter and the event
// engine agree bit for bit — FCT, stalls, on-times, card on-times,
// energies, wakeup counts — at 1, 2 and 3 shards. Failures shrink by
// halving before reporting.
func TestReferenceMatchesEngine(t *testing.T) {
	n := specCount(t)
	for _, sc := range exactSchemes {
		sc := sc
		t.Run(sc.String(), func(t *testing.T) {
			t.Parallel()
			r := stats.NewRNG(0x0eac1e+int64(sc), 0x7e57)
			for i := 0; i < n; i++ {
				sp := dsl.TinySpec(r)
				seed := int64(1 + r.Intn(1<<20))
				m, err := CheckSpec(sp, seed, sc, DefaultShards)
				if err != nil {
					t.Fatalf("spec %d: %v", i, err)
				}
				if m != nil {
					t.Fatalf("spec %d diverged; shrunk reproducer:\n%s", i, Shrink(m, DefaultShards))
				}
			}
		})
	}
}

// TestCoupledInvariants runs the coupled schemes — which have no exact
// reference — over randomized tiny specs and checks the structural
// invariants, plus scalar equality across shard counts (coupled schemes
// degrade to tick-parallel or serial execution but must stay
// byte-identical).
func TestCoupledInvariants(t *testing.T) {
	coupled := []sim.Scheme{sim.BH2KSwitch, sim.BH2FullSwitch, sim.BH2NoBackup, sim.Optimal, sim.Centralized}
	n := specCount(t)
	if n > 25 {
		n = 25 // BH2/Optimal runs are pricier; invariants need breadth, not depth
	}
	for _, sc := range coupled {
		sc := sc
		t.Run(sc.String(), func(t *testing.T) {
			t.Parallel()
			r := stats.NewRNG(0xb0c0de+int64(sc), 0x7e57)
			for i := 0; i < n; i++ {
				sp := dsl.TinySpec(r)
				seed := int64(1 + r.Intn(1<<20))
				cfg, err := BuildConfig(sp, seed, sc)
				if err != nil {
					t.Fatalf("spec %d: %v", i, err)
				}
				var first *sim.Result
				for _, shards := range DefaultShards {
					c := cfg
					c.Shards = shards
					res, err := sim.Run(c)
					if err != nil {
						t.Fatalf("spec %d shards=%d: %v", i, shards, err)
					}
					for _, bad := range Invariants(cfg, res) {
						t.Errorf("spec %d (seed %d) shards=%d: %s", i, seed, shards, bad)
					}
					if first == nil {
						first = res
						continue
					}
					if res.Energy != first.Energy || res.Wakeups != first.Wakeups {
						t.Errorf("spec %d (seed %d): shards=%d result differs from serial (energy %v vs %v, wakeups %d vs %d)",
							i, seed, shards, res.Energy, first.Energy, res.Wakeups, first.Wakeups)
					}
				}
				if t.Failed() {
					return
				}
			}
		})
	}
}

// TestInvariantsHoldForExactSchemes pins that the invariant net also
// passes on the schemes the exact reference covers — the invariants must
// never be stricter than the engine's actual behavior.
func TestInvariantsHoldForExactSchemes(t *testing.T) {
	r := stats.NewRNG(0x1d1e, 0x7e57)
	sp := dsl.TinySpec(r)
	for _, sc := range exactSchemes {
		cfg, err := BuildConfig(sp, 11, sc)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, bad := range Invariants(cfg, res) {
			t.Errorf("%v: %s", sc, bad)
		}
	}
}

// TestReferenceRejectsOutOfDomain pins the reference's domain errors.
func TestReferenceRejectsOutOfDomain(t *testing.T) {
	r := stats.NewRNG(0xd0, 0x7e57)
	cfg, err := BuildConfig(dsl.TinySpec(r), 3, sim.BH2KSwitch)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Reference(cfg); err == nil {
		t.Fatal("coupled scheme accepted by the exact reference")
	}
	cfg.Scheme = sim.SoI
	cfg.RandomWake = true
	if _, err := Reference(cfg); err == nil {
		t.Fatal("RandomWake accepted by the exact reference")
	}
}
