package oracle

import (
	"math"

	"insomnia/internal/power"
)

// refDevice is a straight-line re-statement of power.Device: energy and
// on-time integrate lazily between state changes, joules accrue at the
// active draw unless Sleeping (sleep draw is 0 W across the plant), and a
// wakeup is any Sleeping→Waking or Sleeping→On transition. The arithmetic
// — one dt*draw product per transition segment — is kept in the same
// order as the engine's, so energies compare with ==.
type refDevice struct {
	activeW    float64
	state      power.State
	lastChange float64
	joules     float64
	onTime     float64
	wakeups    int
}

func newRefDevice(activeW float64, initial power.State) *refDevice {
	return &refDevice{activeW: activeW, state: initial}
}

func (d *refDevice) draw() float64 {
	if d.state == power.Sleeping {
		return 0
	}
	return d.activeW
}

func (d *refDevice) advance(t float64) {
	if t < d.lastChange {
		panic("oracle: refDevice time went backwards")
	}
	dt := t - d.lastChange
	d.joules += dt * d.draw()
	if d.state != power.Sleeping {
		d.onTime += dt
	}
	d.lastChange = t
}

func (d *refDevice) setState(t float64, s power.State) {
	d.advance(t)
	if d.state == power.Sleeping && (s == power.Waking || s == power.On) {
		d.wakeups++
	}
	d.state = s
}

func (d *refDevice) energyAt(t float64) float64 {
	d.advance(t)
	return d.joules
}

func (d *refDevice) onTimeAt(t float64) float64 {
	d.advance(t)
	return d.onTime
}

// refCtl is a straight-line re-statement of soi.Controller, the
// sleep-on-idle automaton: Sleeping until touched, Waking for exactly
// wake seconds, On until idle seconds pass with no activity. NoSleep
// gateways reuse it with idle = +Inf and an On initial state, which pins
// next() at +Inf so no transition ever fires.
type refCtl struct {
	idle, wake   float64
	dev          *refDevice
	lastActivity float64
	wakeAt       float64
}

func newRefCtl(dev *refDevice, idle, wake float64) *refCtl {
	return &refCtl{idle: idle, wake: wake, dev: dev, wakeAt: math.Inf(1)}
}

// advance fires every transition due at or before t, in order: a pending
// wake completes at wakeAt (activity floored there, so the idle clock
// starts at wake completion), and an idle deadline puts the device to
// sleep at lastActivity+idle exactly — the same floats the engine's
// controller produces.
func (c *refCtl) advance(t float64) {
	for {
		switch c.dev.state {
		case power.Waking:
			if c.wakeAt <= t {
				c.dev.setState(c.wakeAt, power.On)
				if c.wakeAt > c.lastActivity {
					c.lastActivity = c.wakeAt
				}
				c.wakeAt = math.Inf(1)
				continue
			}
		case power.On:
			if deadline := c.lastActivity + c.idle; deadline <= t {
				c.dev.setState(deadline, power.Sleeping)
				continue
			}
		}
		return
	}
}

// touch records traffic at t and reports whether it started a wake
// (Sleeping→Waking with wake completion scheduled at t+wake).
func (c *refCtl) touch(t float64) bool {
	c.advance(t)
	if t > c.lastActivity {
		c.lastActivity = t
	}
	if c.dev.state == power.Sleeping {
		c.dev.setState(t, power.Waking)
		c.wakeAt = t + c.wake
		return true
	}
	return false
}

// busy bumps the activity clock without waking (the engine calls this for
// a gateway found On with flows in service).
func (c *refCtl) busy(t float64) {
	if t > c.lastActivity {
		c.lastActivity = t
	}
}

// next returns the time of the next autonomous transition: wake
// completion while Waking, the idle deadline while On, +Inf while
// Sleeping (only traffic can move a sleeping gateway).
func (c *refCtl) next() float64 {
	switch c.dev.state {
	case power.Waking:
		return c.wakeAt
	case power.On:
		return c.lastActivity + c.idle
	}
	return math.Inf(1)
}

func (c *refCtl) awake() bool {
	return c.dev.state == power.On
}
