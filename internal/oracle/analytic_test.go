package oracle

import (
	"math"
	"sort"
	"testing"

	"insomnia/internal/analytic"
	"insomnia/internal/dsl"
	"insomnia/internal/power"
	"insomnia/internal/sim"
	"insomnia/internal/stats"
	"insomnia/internal/topology"
	"insomnia/internal/trace"
)

// The analytic legs: hand-built Poisson-keepalive scenarios where the
// closed forms in internal/analytic are exact in stationarity, confronted
// with the engine's measured results. Tolerances are statistical, sized
// at ≳4 standard errors of each estimator over the simulated horizon
// (per-gateway on-fraction has ~560 renewal cycles at these parameters;
// the fleet aggregates 48x that), so a failing check means a real
// modeling disagreement, not noise.

const (
	poissonGWs    = 48          // one full EvalDSLAM shelf, one client per line
	poissonLambda = 1.0 / 600.0 // keepalives per second per client
	poissonDays   = 4.0
	poissonDur    = poissonDays * 86400
)

// poissonConfig hand-builds the scenario: 48 gateways, one client each
// (identity ClientAP), isolated topology, keepalives only — each client
// an independent Poisson process of rate lambda.
func poissonConfig(t *testing.T, scheme sim.Scheme, seed int64) sim.Config {
	t.Helper()
	r := stats.NewRNG(seed, 0x0a111e9)
	var keeps []trace.Packet
	clientAP := make([]int, poissonGWs)
	for c := 0; c < poissonGWs; c++ {
		clientAP[c] = c
		for ts := r.ExpFloat64() / poissonLambda; ts <= poissonDur; ts += r.ExpFloat64() / poissonLambda {
			keeps = append(keeps, trace.Packet{T: ts, Client: int32(c), Bytes: 120})
		}
	}
	sort.SliceStable(keeps, func(i, j int) bool { return keeps[i].T < keeps[j].T })
	tr := &trace.Trace{
		Cfg: trace.Config{
			Clients: poissonGWs, APs: poissonGWs, Duration: poissonDur,
			BackhaulBps: trace.DefaultBackhaulBps, UplinkBps: 512e3,
		},
		ClientAP:   clientAP,
		Keepalives: keeps,
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	tp, err := topology.FromOverlap(&topology.Graph{Adj: make([][]int, poissonGWs)}, clientAP)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{
		Trace: tr, Topo: tp,
		DSLAM: dsl.EvalDSLAM, K: 4,
		Scheme: scheme, Seed: seed,
		IdleTimeout: dsl.IdleTimeoutSeconds,
		WakeDelay:   dsl.WakeSeconds,
		SampleEvery: 1,
	}
	cfg.PortOf, err = dsl.RandomAssignment(cfg.DSLAM, poissonGWs, seed)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func relErr(got, want float64) float64 { return math.Abs(got-want) / math.Abs(want) }

// TestAnalyticSoIPoisson confronts plain SoI with the renewal-reward
// closed forms: gateway on-fraction vs 1 - 1/(λW+e^{λT}), total wakeups
// vs λ·P(sleep)·horizon·gateways, and the fixed-fabric card-sleep
// fraction vs the §4.1 product (1-p)^m with p the per-line active
// probability. The same run is also cross-checked bit-exactly against
// the reference interpreter, closing the engine ↔ reference ↔ analytic
// triangle on one scenario.
func TestAnalyticSoIPoisson(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-day analytic scenario")
	}
	cfg := poissonConfig(t, sim.SoI, 41)
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	pSleep, err := analytic.SoIPoissonSleepProbability(poissonLambda, cfg.IdleTimeout, cfg.WakeDelay)
	if err != nil {
		t.Fatal(err)
	}
	wantOnFrac := 1 - pSleep

	// Fleet mean on-fraction: ~27k renewal cycles pooled, rel SE ~0.6%.
	var meanOn float64
	for g, on := range res.GatewayOnTime {
		frac := on / poissonDur
		// Per gateway: ~560 cycles, rel SE ~4%; 20% is a ≳4σ gate.
		if e := relErr(frac, wantOnFrac); e > 0.20 {
			t.Errorf("gateway %d on-fraction %.4f vs analytic %.4f (rel err %.3f)", g, frac, wantOnFrac, e)
		}
		meanOn += frac
	}
	meanOn /= poissonGWs
	t.Logf("on-fraction: measured %.4f analytic %.4f", meanOn, wantOnFrac)
	if e := relErr(meanOn, wantOnFrac); e > 0.03 {
		t.Errorf("fleet mean on-fraction %.4f vs analytic %.4f (rel err %.3f)", meanOn, wantOnFrac, e)
	}

	// Wakeups: one per renewal cycle, λ·P(sleep) per second per gateway.
	rate, err := analytic.SoIPoissonWakeupRate(poissonLambda, cfg.IdleTimeout, cfg.WakeDelay)
	if err != nil {
		t.Fatal(err)
	}
	wantWakeups := rate * poissonDur * poissonGWs
	t.Logf("wakeups: measured %d analytic %.0f", res.Wakeups, wantWakeups)
	if e := relErr(float64(res.Wakeups), wantWakeups); e > 0.03 {
		t.Errorf("wakeups %d vs analytic %.0f (rel err %.3f)", res.Wakeups, wantWakeups, e)
	}

	// Fixed fabric: a card sleeps iff all m=12 of its lines sleep; lines
	// are independent here, so the stationary card-sleep fraction is
	// (1-p)^m with p = wantOnFrac. Card states decorrelate on the ~12 min
	// cycle scale, leaving ~500 effective samples per card — the mean over
	// 4 cards carries ~10% rel SE, so gate at 35%.
	wantCardSleep := analytic.CardSleepNoSwitch(dsl.EvalDSLAM.PortsPerCard, wantOnFrac)
	var meanCardSleep float64
	for _, on := range res.CardOnTime {
		meanCardSleep += 1 - on/poissonDur
	}
	meanCardSleep /= float64(len(res.CardOnTime))
	t.Logf("card sleep fraction: measured %.4f analytic %.4f", meanCardSleep, wantCardSleep)
	if e := relErr(meanCardSleep, wantCardSleep); e > 0.35 {
		t.Errorf("mean card sleep fraction %.4f vs analytic %.4f (rel err %.3f)", meanCardSleep, wantCardSleep, e)
	}

	// Close the triangle: the exact reference must agree with this same
	// run bit for bit.
	exp, err := Reference(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d := Diff(exp, res); len(d) != 0 {
		t.Errorf("reference diverged on the Poisson scenario: %v", d)
	}
}

// TestAnalyticKSwitchBracket checks the k-switch scheme against Eq 2's
// idealization: measured sleeping cards must land between the no-switch
// product (switching can only help) and the Eq 2 sum (a static packing
// ideal the wake-only remap policy cannot beat), with a small statistical
// margin on each side.
func TestAnalyticKSwitchBracket(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-day analytic scenario")
	}
	cfg := poissonConfig(t, sim.SoIKSwitch, 43)
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pSleep, err := analytic.SoIPoissonSleepProbability(poissonLambda, cfg.IdleTimeout, cfg.WakeDelay)
	if err != nil {
		t.Fatal(err)
	}
	pActive := 1 - pSleep
	m := dsl.EvalDSLAM.PortsPerCard

	var sleeping float64 // mean sleeping cards over time
	for _, on := range res.CardOnTime {
		sleeping += 1 - on/poissonDur
	}
	lo := float64(dsl.EvalDSLAM.Cards) * analytic.CardSleepNoSwitch(m, pActive)
	hi, err := analytic.ExpectedSleepingCards(cfg.K, m, pActive)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("k-switch sleeping cards: measured %.3f bracket [%.3f, %.3f]", sleeping, lo, hi)
	if sleeping < lo*0.90 || sleeping > hi*1.10 {
		t.Errorf("k-switch mean sleeping cards %.3f outside bracket [%.3f, %.3f] (no-switch, Eq 2)", sleeping, lo, hi)
	}
	if sleeping <= lo {
		t.Errorf("k-switch (%.3f sleeping cards) failed to beat no-switch (%.3f): switching bought nothing", sleeping, lo)
	}
}

// TestAnalyticFullSwitchCards checks the full-switch scheme against the
// exact stationary expectation E[ceil(A/m)], A ~ Binomial(n, p): repack
// keeps exactly ceil(active/m) cards awake at every instant, so the
// time-average awake-card count must converge on the expectation.
func TestAnalyticFullSwitchCards(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-day analytic scenario")
	}
	cfg := poissonConfig(t, sim.SoIFullSwitch, 47)
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pSleep, err := analytic.SoIPoissonSleepProbability(poissonLambda, cfg.IdleTimeout, cfg.WakeDelay)
	if err != nil {
		t.Fatal(err)
	}
	want, err := FullSwitchExpectedAwakeCards(poissonGWs, dsl.EvalDSLAM.PortsPerCard, 1-pSleep)
	if err != nil {
		t.Fatal(err)
	}
	var awake float64
	for _, on := range res.CardOnTime {
		awake += on / poissonDur
	}
	t.Logf("full-switch awake cards: measured %.3f analytic %.3f", awake, want)
	if e := relErr(awake, want); e > 0.10 {
		t.Errorf("full-switch mean awake cards %.3f vs analytic %.3f (rel err %.3f)", awake, want, e)
	}
	// The floor-form bound in internal/analytic must also hold: at least
	// floor(n(1-p)/m) cards sleep on average.
	floorSleep := analytic.FullSwitchSleepingCards(poissonGWs, dsl.EvalDSLAM.PortsPerCard, 1-pSleep)
	if sleeping := float64(dsl.EvalDSLAM.Cards) - awake; sleeping < float64(floorSleep)*0.95 {
		t.Errorf("full-switch sleeping cards %.3f below the floor bound %d", sleeping, floorSleep)
	}

	// And the §4.1 gateway-side identity: energy split must satisfy
	// UserJ ≈ GatewayWatts · Σ on-time here too.
	var onSum float64
	for _, on := range res.GatewayOnTime {
		onSum += on
	}
	if e := relErr(res.Energy.UserJ, power.GatewayWatts*onSum); e > 1e-9 {
		t.Errorf("user energy %.6g vs %.6g (rel err %g)", res.Energy.UserJ, power.GatewayWatts*onSum, e)
	}
}
