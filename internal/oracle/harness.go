package oracle

import (
	"fmt"
	"strings"

	"insomnia/internal/campaign"
	"insomnia/internal/dsl"
	"insomnia/internal/sim"
)

// harness.go drives the cross-check: build a scenario from a (tiny) DSL
// spec, run the engine at several shard counts, compare each run against
// the reference, and shrink failing specs by halving.

// DefaultShards are the engine shard counts every check triangulates:
// serial, and the two smallest sharded layouts (which exercise the epoch
// fences, deferred sinks, and merge order).
var DefaultShards = []int{1, 2, 3}

// BuildConfig materializes a spec into the explicit sim.Config the
// harness uses for both the engine and the reference: every default the
// engine would fill (shelf shape, port wiring, timeouts, sample period)
// is pinned here so the two sides cannot diverge on defaults.
func BuildConfig(sp dsl.Spec, seed int64, sc sim.Scheme) (sim.Config, error) {
	tr, tp, err := campaign.BuildScenario(sp, seed)
	if err != nil {
		return sim.Config{}, err
	}
	cfg := sim.Config{
		Trace: tr, Topo: tp,
		DSLAM: dsl.EvalDSLAM, K: 4,
		Scheme: sc, Seed: seed,
		IdleTimeout: dsl.IdleTimeoutSeconds,
		WakeDelay:   dsl.WakeSeconds,
		SampleEvery: 1,
	}
	if tp.NumGateways > cfg.DSLAM.Ports() {
		return sim.Config{}, fmt.Errorf("oracle: spec has %d gateways, shelf has %d ports", tp.NumGateways, cfg.DSLAM.Ports())
	}
	ports, err := dsl.RandomAssignment(cfg.DSLAM, tp.NumGateways, seed)
	if err != nil {
		return sim.Config{}, err
	}
	cfg.PortOf = ports
	return cfg, nil
}

// CheckConfig runs cfg through the engine at each shard count and
// compares every run against the reference. It returns one message per
// disagreement (empty means the oracle holds) and an error only when a
// run could not execute at all.
func CheckConfig(cfg sim.Config, shards []int) ([]string, error) {
	if len(shards) == 0 {
		shards = DefaultShards
	}
	exp, err := Reference(cfg)
	if err != nil {
		return nil, err
	}
	return checkAgainst(exp, cfg, shards)
}

func checkAgainst(exp *Expected, cfg sim.Config, shards []int) ([]string, error) {
	var out []string
	for _, n := range shards {
		c := cfg
		c.Shards = n
		res, err := sim.Run(c)
		if err != nil {
			return nil, fmt.Errorf("oracle: engine run at %d shards: %w", n, err)
		}
		for _, d := range Diff(exp, res) {
			out = append(out, fmt.Sprintf("shards=%d: %s", n, d))
		}
	}
	return out, nil
}

// Mismatch describes one oracle failure: the (possibly shrunk) spec that
// reproduces it and the field-level diffs.
type Mismatch struct {
	Spec   dsl.Spec   // reproducing spec (after any shrinking)
	Seed   int64      // scenario seed the divergence occurred at
	Scheme sim.Scheme // scheme under test
	Diffs  []string   // field-level "want X got Y" lines from Diff
}

// String renders the mismatch with enough detail to reproduce it.
func (m *Mismatch) String() string {
	return fmt.Sprintf("scheme %v seed %d gateways=%d clients=%d duration=%.0fs profile=%s:\n  %s",
		m.Scheme, m.Seed, m.Spec.Trace.Gateways, m.Spec.Trace.Clients, m.Spec.Duration,
		m.Spec.Trace.Profile, strings.Join(m.Diffs, "\n  "))
}

// CheckSpec builds the spec's scenario, cross-checks one scheme at the
// given shard counts, and reports a Mismatch when the engine and the
// reference disagree (nil when the oracle holds). A scenario that cannot
// be built or run returns an error instead.
func CheckSpec(sp dsl.Spec, seed int64, sc sim.Scheme, shards []int) (*Mismatch, error) {
	cfg, err := BuildConfig(sp, seed, sc)
	if err != nil {
		return nil, err
	}
	diffs, err := CheckConfig(cfg, shards)
	if err != nil {
		return nil, err
	}
	if len(diffs) == 0 {
		return nil, nil
	}
	return &Mismatch{Spec: sp, Seed: seed, Scheme: sc, Diffs: diffs}, nil
}

// Shrink minimizes a failing spec by repeatedly halving gateways, clients
// and horizon (dsl.ShrinkSpec) while the failure persists, returning the
// smallest still-failing mismatch. A halving step that passes (or fails
// to build) ends the descent — the ladder shrinks all three dimensions
// together, which is what makes it terminate in O(log) steps.
func Shrink(m *Mismatch, shards []int) *Mismatch {
	cur := m
	for {
		smaller, ok := dsl.ShrinkSpec(cur.Spec)
		if !ok {
			return cur
		}
		next, err := CheckSpec(smaller, cur.Seed, cur.Scheme, shards)
		if err != nil || next == nil {
			return cur
		}
		cur = next
	}
}
