package oracle

import (
	"math"

	"insomnia/internal/power"
	"insomnia/internal/sim"
)

// ref.go is the exact reference interpreter's event loop: one gateway at a
// time, straight-line, no heap. Every float expression below re-states the
// corresponding engine expression (internal/sim/engine.go) operand for
// operand, because the contract is bitwise equality, not approximation.
//
// Why per-gateway interpretation is sound: the uncoupled schemes route
// every client to its immutable home gateway and never read another
// gateway's state, so a gateway's trajectory is a function of (its own
// clients' trace records, the global tick grid, its controller). The only
// shared state — switch fabric and line cards — is write-only from the
// gateways' side and replays afterwards in fabric.go from the merged
// line-op streams.

// lineOp is one gateway wake/sleep side effect on the shelf, in the order
// the engine would apply it (lineWake/lineSleep).
type lineOp struct {
	t    float64
	gw   int
	wake bool
}

// refFlow mirrors the engine's flowState for one trace flow.
type refFlow struct {
	rem       float64
	capBps    float64
	done      bool
	completed float64
	stallFrom float64
	stalled   float64
}

// refGateway interprets one gateway's full horizon.
type refGateway struct {
	id    int
	cfg   *sim.Config
	ctl   *refCtl
	dev   *refDevice // the gateway itself (power.GatewayWatts)
	modem *refDevice // its DSLAM port modem (power.ISPModemWatts)

	fs         []refFlow // shared across gateways, indexed by trace flow id
	flows      []int     // in-service trace flow ids, engine list order
	lastElapse float64
	complAt    float64 // next completion check (+Inf when unarmed)
	tickT      float64 // next tick on the global grid 0, +SampleEvery, ...
	inSet      bool    // mirror of the engine's awake-set membership
	ops        []lineOp
}

// Candidate sources in firing priority at exactly equal times. The heap
// trio (check, tick, completion) beats trace records because the engine
// admits trace records only on strictly-earlier times; flows beat
// keepalives the same way. Among the heap trio the order is fixed by
// convention — see the package comment's tie-order note.
const (
	srcCheck = iota
	srcTick
	srcCompl
	srcFlow
	srcKeep
)

// run interprets the gateway over [0, end]. flowIdx and keepIdx are the
// trace record indices routed to this gateway, in trace order (downlink
// flows only; uplink flows are global no-ops handled by the caller).
func (g *refGateway) run(flowIdx, keepIdx []int) {
	tr := g.cfg.Trace
	end := tr.Cfg.Duration
	fcur, kcur := 0, 0
	for {
		tNext, src := math.Inf(1), -1
		if t := g.ctl.next(); t < tNext {
			tNext, src = t, srcCheck
		}
		if g.tickT < tNext {
			tNext, src = g.tickT, srcTick
		}
		if g.complAt < tNext {
			tNext, src = g.complAt, srcCompl
		}
		if fcur < len(flowIdx) {
			if ft := tr.Flows[flowIdx[fcur]].Start; ft < tNext {
				tNext, src = ft, srcFlow
			}
		}
		if kcur < len(keepIdx) {
			if kt := tr.Keepalives[keepIdx[kcur]].T; kt < tNext {
				tNext, src = kt, srcKeep
			}
		}
		// Events past the horizon never fire; events at exactly the horizon
		// do (the engine pushes ticks with t <= end and stops the lane on
		// the first strictly-later event).
		if src < 0 || tNext > end {
			return
		}
		now := tNext
		switch src {
		case srcCheck:
			g.check(now)
		case srcTick:
			// The engine's tick visits only awake-set members: controller
			// advance, then transport elapse (which bumps lastElapse even
			// while Waking — elapse's clock update is unconditional).
			if g.inSet {
				g.ctl.advance(now)
				g.elapse(now)
			}
			g.tickT = now + g.cfg.SampleEvery
		case srcCompl:
			g.complete(now)
		case srcFlow:
			g.flowArrival(now, flowIdx[fcur])
			fcur++
		case srcKeep:
			// Keepalives only touch: no transport elapse, no flow state.
			g.touch(now)
			kcur++
		}
	}
}

// check fires the controller's next autonomous transition, due exactly
// now. The engine arms one chasing evGwCheck per gateway and re-derives
// the due time on pop; stale pops are pure no-ops, so the net effect —
// reproduced here without a heap — is one real check at each value of
// ctl.NextTransition().
func (g *refGateway) check(now float64) {
	due := g.ctl.next() // == now: the caller fires checks only when due
	switch g.ctl.dev.state {
	case power.Waking:
		// Wake completes: modem up, stalled flows released, service clock
		// restarted, completion re-armed.
		g.ctl.advance(now)
		g.modem.setState(due, power.On)
		g.lastElapse = now
		for _, fi := range g.flows {
			if f := &g.fs[fi]; f.stallFrom >= 0 {
				f.stalled += now - f.stallFrom
				f.stallFrom = -1
			}
		}
		g.scheduleCompletion(now)
	case power.On:
		// Sleep deadline. A gateway with flows in flight is not idle: the
		// engine extends the idle clock without advancing.
		if len(g.flows) > 0 {
			g.ctl.busy(now)
			return
		}
		g.elapse(now)
		g.ctl.advance(now)
		if g.ctl.dev.state == power.Sleeping {
			g.modem.setState(due, power.Sleeping)
			g.ops = append(g.ops, lineOp{t: due, gw: g.id, wake: false})
			g.inSet = false
		}
	}
}

// complete handles a completion check: integrate service, reap finished
// flows (sub-byte remainders count as done), touch on any completion, and
// re-arm.
func (g *refGateway) complete(now float64) {
	g.elapse(now)
	keep := g.flows[:0]
	finished := false
	for _, fi := range g.flows {
		f := &g.fs[fi]
		if f.rem < 1 {
			f.done = true
			f.completed = now
			finished = true
		} else {
			keep = append(keep, fi)
		}
	}
	g.flows = keep
	if finished {
		g.touch(now)
	}
	g.scheduleCompletion(now)
}

// flowArrival starts downlink trace flow idx: elapse first (the new flow
// must not be served for the preceding interval), wire the capacity, then
// touch, stall-mark if the gateway is not yet On, and re-arm completion.
func (g *refGateway) flowArrival(now float64, idx int) {
	rec := &g.cfg.Trace.Flows[idx]
	g.elapse(now)
	capBps := g.cfg.Topo.LinkBps(int(rec.Client), g.id)
	if capBps <= 0 {
		capBps = g.cfg.Topo.NeighborBps
	}
	if r := rec.Rate; r > 0 && r < capBps {
		capBps = r
	}
	f := &g.fs[idx]
	*f = refFlow{rem: float64(rec.Bytes), capBps: capBps, stallFrom: -1}
	g.flows = append(g.flows, idx)
	g.touch(now)
	if !g.ctl.awake() {
		f.stallFrom = now
	}
	g.scheduleCompletion(now)
}

// touch registers traffic; a Sleeping→Waking transition powers the port
// modem and emits the line-wake op, exactly where the engine fires its
// wake side effects.
func (g *refGateway) touch(t float64) {
	if g.ctl.touch(t) {
		g.inSet = true
		g.modem.setState(t, power.Waking)
		g.ops = append(g.ops, lineOp{t: t, gw: g.id, wake: true})
		g.lastElapse = t
	}
}

// elapse integrates processor-sharing service since lastElapse. The clock
// update is unconditional — matching the engine — so intervals spent
// Waking or idle are consumed, not carried.
func (g *refGateway) elapse(now float64) {
	dt := now - g.lastElapse
	g.lastElapse = now
	if dt <= 0 || len(g.flows) == 0 || !g.ctl.awake() {
		return
	}
	rate := g.cfg.Trace.Cfg.BackhaulBps / 8 / float64(len(g.flows)) // bytes/s each
	for _, fi := range g.flows {
		f := &g.fs[fi]
		r := rate
		if w := f.capBps / 8; w < r {
			r = w
		}
		x := r * dt
		if x > f.rem {
			x = f.rem
		}
		f.rem -= x
	}
}

// scheduleCompletion re-arms the completion check. The engine caches the
// argmin flow between membership changes; the cached recomputation is
// value-identical to this full scan (strict-less argmin, first flow in
// list order wins ties in both), so the reference always scans.
func (g *refGateway) scheduleCompletion(now float64) {
	if len(g.flows) == 0 || !g.ctl.awake() {
		g.complAt = math.Inf(1)
		return
	}
	rate := g.cfg.Trace.Cfg.BackhaulBps / 8 / float64(len(g.flows))
	tMin := math.Inf(1)
	for _, fi := range g.flows {
		f := &g.fs[fi]
		r := rate
		if w := f.capBps / 8; w < r {
			r = w
		}
		if t := f.rem / r; t < tMin {
			tMin = t
		}
	}
	if tMin < 1e-9 {
		tMin = 1e-9 // the engine's sub-byte clock floor
	}
	g.complAt = now + tMin
}
