package oracle

import (
	"fmt"
	"sort"

	"insomnia/internal/dsl"
	"insomnia/internal/power"
	"insomnia/internal/sim"
)

// fabric.go replays the merged per-gateway line-op streams through a
// straight-line re-statement of the switch policies (internal/kswitch)
// and the engine's card reconciliation, producing the card and shelf
// contributions of the reference result. The fabric is a pure sink — the
// gateways never read it — which is what makes the two-pass structure
// (interpret gateways, then replay the shelf) exact.

type fabricKind int

const (
	fabFixed fabricKind = iota
	fabKSwitch
	fabFullSwitch
)

// refFabric re-states the kswitch bookkeeping: line→port wiring,
// per-card occupancy, and the per-policy remap rule.
type refFabric struct {
	d          dsl.DSLAM
	kind       fabricKind
	k          int   // cards per switch group (k-switch only)
	portOf     []int // line -> port
	lineAt     []int // port -> line, -1 when unwired
	active     []bool
	activeN    int
	cardActive []int // per card: active lines terminating on it
}

func newRefFabric(d dsl.DSLAM, kind fabricKind, k int, initialPort []int) (*refFabric, error) {
	if kind == fabKSwitch && (k < 2 || d.Cards%k != 0) {
		return nil, fmt.Errorf("oracle: %d cards not divisible into groups of %d", d.Cards, k)
	}
	f := &refFabric{
		d: d, kind: kind, k: k,
		portOf:     append([]int(nil), initialPort...),
		lineAt:     make([]int, d.Ports()),
		active:     make([]bool, len(initialPort)),
		cardActive: make([]int, d.Cards),
	}
	for p := range f.lineAt {
		f.lineAt[p] = -1
	}
	for line, p := range f.portOf {
		if p < 0 || p >= d.Ports() {
			return nil, fmt.Errorf("oracle: line %d on invalid port %d", line, p)
		}
		if f.lineAt[p] != -1 {
			return nil, fmt.Errorf("oracle: port %d terminates two lines", p)
		}
		f.lineAt[p] = line
	}
	return f, nil
}

func (f *refFabric) setActive(line int, v bool) {
	if f.active[line] == v {
		return
	}
	f.active[line] = v
	cd := f.d.CardOf(f.portOf[line])
	if v {
		f.activeN++
		f.cardActive[cd]++
	} else {
		f.activeN--
		f.cardActive[cd]--
	}
}

// move re-terminates line onto port dst, swapping with whatever inactive
// line is wired there.
func (f *refFabric) move(line, dst int) {
	src := f.portOf[line]
	if src == dst {
		return
	}
	other := f.lineAt[dst]
	if other != -1 {
		if f.active[other] {
			panic(fmt.Sprintf("oracle: displacing active line %d", other))
		}
		f.portOf[other] = src
	}
	f.lineAt[src] = other
	f.portOf[line] = dst
	f.lineAt[dst] = line
	if f.active[line] {
		sc, dc := f.d.CardOf(src), f.d.CardOf(dst)
		if sc != dc {
			f.cardActive[sc]--
			f.cardActive[dc]++
		}
	}
}

// onWake applies the per-policy wake rule: fixed keeps the wiring;
// k-switch remaps within the line's switch toward the highest-numbered
// card that is already awake (else the highest available), displacing
// only sleeping lines; full switch packs every active line onto the
// lowest-numbered ports.
func (f *refFabric) onWake(line int) {
	switch f.kind {
	case fabFixed:
		f.setActive(line, true)
	case fabKSwitch:
		slot := f.d.SlotOf(f.portOf[line])
		group := f.d.CardOf(f.portOf[line]) / f.k
		best := -1
		for i := f.k - 1; i >= 0; i-- {
			card := group*f.k + i
			p := card*f.d.PortsPerCard + slot
			if other := f.lineAt[p]; other != -1 && f.active[other] {
				continue
			}
			if f.cardActive[card] > 0 {
				best = p
				break
			}
			if best == -1 {
				best = p
			}
		}
		if best != -1 {
			f.move(line, best)
		}
		f.setActive(line, true)
	case fabFullSwitch:
		f.setActive(line, true)
		f.repack()
	}
}

func (f *refFabric) onSleep(line int) {
	f.setActive(line, false)
	if f.kind == fabFullSwitch {
		f.repack()
	}
}

// repack moves every active line onto the lowest-numbered ports (full
// switch only): lines already inside the target prefix stay put, the rest
// move in ascending line order onto ascending free ports.
func (f *refFabric) repack() {
	var movers []int
	n := f.activeN
	taken := make([]bool, n)
	for line := range f.portOf {
		if !f.active[line] {
			continue
		}
		if p := f.portOf[line]; p < n {
			taken[p] = true
		} else {
			movers = append(movers, line)
		}
	}
	next := 0
	for _, line := range movers {
		for taken[next] {
			next++
		}
		f.move(line, next)
		taken[next] = true
	}
}

// replayCards runs the merged line-op stream through the fabric and the
// engine's card reconciliation, returning the card devices at their final
// pre-horizon state. Same-time ops of different gateways replay in
// ascending gateway id (the measure-zero tie convention); a single
// gateway's ops are already time-ordered.
//
// sleepCards mirrors the scheme's flag: no-sleep pins every card On from
// t=0 regardless of fabric state, so reconciliation is skipped and the
// initial state stands for the whole horizon.
func replayCards(cfg *sim.Config, kind fabricKind, sleepCards bool, initial power.State, ops []lineOp) ([]*refDevice, error) {
	fab, err := newRefFabric(cfg.DSLAM, kind, cfg.K, cfg.PortOf)
	if err != nil {
		return nil, err
	}
	sort.SliceStable(ops, func(i, j int) bool {
		if ops[i].t != ops[j].t {
			return ops[i].t < ops[j].t
		}
		return ops[i].gw < ops[j].gw
	})
	cards := make([]*refDevice, cfg.DSLAM.Cards)
	cardOn := make([]bool, cfg.DSLAM.Cards)
	for cd := range cards {
		cards[cd] = newRefDevice(power.LineCardWatts, initial)
		cardOn[cd] = initial == power.On
	}
	for _, op := range ops {
		if op.wake {
			fab.onWake(op.gw)
		} else {
			fab.onSleep(op.gw)
		}
		if !sleepCards {
			continue
		}
		for cd := range cards {
			awake := fab.cardActive[cd] > 0
			if awake != cardOn[cd] {
				st := power.Sleeping
				if awake {
					st = power.On
				}
				cards[cd].setState(op.t, st)
				cardOn[cd] = awake
			}
		}
	}
	return cards, nil
}
