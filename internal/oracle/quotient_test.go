package oracle

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"insomnia/internal/campaign"
	"insomnia/internal/dsl"
	"insomnia/internal/sim"
	"insomnia/internal/stats"
	"insomnia/internal/trace"
)

// TestQuotientTriangulation closes the engine × quotient × reference
// triangle: for symmetric tiny specs that actually collapse, the full
// engine run, the collapsed engine run (expanded through its
// sim.QuotientPlan), and the exact reference must all agree bit for bit,
// at 1, 2 and 3 shards each. The reference interprets only the full
// scenario — agreement with the collapsed run proves the quotient
// expansion independently of the engine's own collapse test suite.
func TestQuotientTriangulation(t *testing.T) {
	r := stats.NewRNG(0x900d, 0x7e57)
	collapsed := 0
	attempts := 0
	for _, scheme := range []sim.Scheme{sim.NoSleep, sim.SoI, sim.SoIFullSwitch} {
		for i := 0; i < 8; i++ {
			sp := dsl.TinySpec(r)
			sp.Trace.Placement = "symmetric"
			seed := int64(1 + r.Intn(1<<20))
			attempts++

			qtr, qtp, plan, err := campaign.BuildCollapsedScenario(sp, seed)
			if err != nil {
				t.Fatalf("%v spec %d: %v", scheme, i, err)
			}
			if plan == nil {
				continue // nothing merged on this draw; symmetry is graph-dependent
			}
			collapsed++

			cfg, err := BuildConfig(sp, seed, scheme)
			if err != nil {
				t.Fatalf("%v spec %d: %v", scheme, i, err)
			}
			exp, err := Reference(cfg)
			if err != nil {
				t.Fatalf("%v spec %d: %v", scheme, i, err)
			}
			// Full engine runs vs the reference.
			if diffs, err := checkAgainst(exp, cfg, DefaultShards); err != nil {
				t.Fatalf("%v spec %d: %v", scheme, i, err)
			} else if len(diffs) != 0 {
				t.Fatalf("%v spec %d (seed %d): full run diverged: %v", scheme, i, seed, diffs)
			}
			// Collapsed engine runs vs the same reference. The quotient
			// shelf stays full-sized, so the full run's port wiring carries
			// over unchanged. The engine expands scalars and per-device
			// arrays back to the full shape, but leaves FCT/FlowStall in
			// quotient flow order — those compare as a weight-expanded
			// multiset instead.
			qcfg := cfg
			qcfg.Trace, qcfg.Topo, qcfg.Quotient = qtr, qtp, plan
			for _, shards := range DefaultShards {
				c := qcfg
				c.Shards = shards
				res, err := sim.Run(c)
				if err != nil {
					t.Fatalf("%v spec %d shards=%d: %v", scheme, i, shards, err)
				}
				scalars := *exp
				scalars.FCT, scalars.FlowStall = nil, nil
				flat := *res
				flat.FCT, flat.FlowStall = nil, nil
				diffs := Diff(&scalars, &flat)
				diffs = append(diffs, diffQuotientFlows(exp, res, qtr, plan)...)
				if len(diffs) != 0 {
					t.Fatalf("%v spec %d (seed %d) shards=%d: collapsed run diverged: %v", scheme, i, seed, shards, diffs)
				}
			}
		}
	}
	t.Logf("%d/%d symmetric specs collapsed", collapsed, attempts)
	if collapsed == 0 {
		t.Fatal("no spec collapsed: the triangulation never ran (draws are deterministic — adjust seeds)")
	}
}

// diffQuotientFlows compares a collapsed run's per-quotient-flow FCT and
// stall against the reference's full-scenario values: each quotient flow
// stands for its class weight's worth of identical full flows, so the
// weight-expanded (FCT, stall) multiset must equal the full one exactly.
func diffQuotientFlows(exp *Expected, res *sim.Result, qtr *trace.Trace, plan *sim.QuotientPlan) []string {
	weightOf := make(map[int]int) // quotient gateway -> class size
	for _, q := range plan.FullHome {
		weightOf[int(q)]++
	}
	type pair struct{ fct, stall float64 }
	var got []pair
	gotNaN := 0
	for i := range res.FCT {
		w := weightOf[qtr.ClientAP[qtr.Flows[i].Client]]
		for k := 0; k < w; k++ {
			if math.IsNaN(res.FCT[i]) {
				gotNaN++
			} else {
				got = append(got, pair{res.FCT[i], res.FlowStall[i]})
			}
		}
	}
	var want []pair
	wantNaN := 0
	for i := range exp.FCT {
		if math.IsNaN(exp.FCT[i]) {
			wantNaN++
		} else {
			want = append(want, pair{exp.FCT[i], exp.FlowStall[i]})
		}
	}
	if gotNaN != wantNaN || len(got) != len(want) {
		return []string{fmt.Sprintf("flow multiset: want %d finished + %d unfinished, got %d + %d",
			len(want), wantNaN, len(got), gotNaN)}
	}
	less := func(s []pair) func(i, j int) bool {
		return func(i, j int) bool {
			if s[i].fct != s[j].fct {
				return s[i].fct < s[j].fct
			}
			return s[i].stall < s[j].stall
		}
	}
	sort.Slice(got, less(got))
	sort.Slice(want, less(want))
	var out []string
	for i := range want {
		if want[i] != got[i] {
			out = append(out, fmt.Sprintf("flow multiset[%d]: want (%.17g, %.17g) got (%.17g, %.17g)",
				i, want[i].fct, want[i].stall, got[i].fct, got[i].stall))
			if len(out) == 5 {
				break
			}
		}
	}
	return out
}
