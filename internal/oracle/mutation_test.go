package oracle

import (
	"testing"

	"insomnia/internal/dsl"
	"insomnia/internal/sim"
	"insomnia/internal/stats"
)

// TestMutationIsCaught is the harness's own smoke detector: a deliberate
// off-by-one in the reference's scheme semantics (idle timeout skewed by
// one second) must produce diffs against the engine on a spec where the
// unmutated reference matches exactly. If this fails, the oracle's
// comparison has gone soft and TestReferenceMatchesEngine proves nothing.
func TestMutationIsCaught(t *testing.T) {
	r := stats.NewRNG(0x5eed, 0x7e57)
	for i := 0; i < 20; i++ {
		sp := dsl.TinySpec(r)
		seed := int64(1 + r.Intn(1<<20))
		cfg, err := BuildConfig(sp, seed, sim.SoI)
		if err != nil {
			t.Fatal(err)
		}
		clean, err := reference(cfg, mutation{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if d := Diff(clean, res); len(d) != 0 {
			t.Fatalf("clean reference diverged on spec %d: %v", i, d)
		}
		mutated, err := reference(cfg, mutation{idleSkew: 1})
		if err != nil {
			t.Fatal(err)
		}
		if d := Diff(mutated, res); len(d) != 0 {
			return // the skew changed observable behavior and was caught
		}
		// A trace can be too quiet for a 1 s idle skew to matter (e.g. the
		// gateway never wakes); try the next spec.
	}
	t.Fatal("idle-timeout mutation went undetected across 20 specs")
}
