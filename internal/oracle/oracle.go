package oracle

import (
	"fmt"
	"math"

	"insomnia/internal/dsl"
	"insomnia/internal/power"
	"insomnia/internal/sim"
)

// Expected is the reference interpreter's prediction of a sim.Result, in
// the same shapes and units. Every field must match the engine's bit for
// bit on supported schemes (Diff compares with ==).
type Expected struct {
	Scheme   sim.Scheme // scheme the prediction is for
	Duration float64    // horizon (seconds)

	// FCT and FlowStall follow trace.Flows order: completion seconds and
	// wake-wait seconds for finished downlink flows, NaN otherwise.
	FCT       []float64
	FlowStall []float64

	GatewayOnTime []float64 // per-gateway non-sleeping seconds
	CardOnTime    []float64 // per-card non-sleeping seconds

	UserJ   float64 // gateway joules
	ISPJ    float64 // port modems + cards + shelf joules
	Wakeups int     // gateway Sleeping→Waking transitions
}

// Supported reports whether the exact reference interpreter covers the
// scheme: the uncoupled ones, where every gateway's trajectory is a pure
// function of its own clients' trace. Coupled schemes are checked with
// Invariants instead.
func Supported(sc sim.Scheme) bool {
	switch sc {
	case sim.NoSleep, sim.SoI, sim.SoIKSwitch, sim.SoIFullSwitch:
		return true
	}
	return false
}

// schemeParams pins the scheme-dependent knobs the interpreter needs,
// mirroring the engine's strategy plumbing (scheme_nosleep.go,
// scheme_soi.go): initial device state, effective idle timeout, switch
// fabric, and whether cards are allowed to sleep.
type schemeParams struct {
	initial    power.State
	idle       float64
	fabric     fabricKind
	sleepCards bool
}

func paramsFor(cfg *sim.Config) (schemeParams, bool) {
	switch cfg.Scheme {
	case sim.NoSleep:
		return schemeParams{initial: power.On, idle: math.Inf(1), fabric: fabFixed, sleepCards: false}, true
	case sim.SoI:
		return schemeParams{initial: power.Sleeping, idle: cfg.IdleTimeout, fabric: fabFixed, sleepCards: true}, true
	case sim.SoIKSwitch:
		return schemeParams{initial: power.Sleeping, idle: cfg.IdleTimeout, fabric: fabKSwitch, sleepCards: true}, true
	case sim.SoIFullSwitch:
		return schemeParams{initial: power.Sleeping, idle: cfg.IdleTimeout, fabric: fabFullSwitch, sleepCards: true}, true
	}
	return schemeParams{}, false
}

// mutation is the test-only fault-injection knob: the mutation check
// skews the reference's idle timeout to prove the harness actually
// detects a wrong interpretation (see mutation_test.go).
type mutation struct {
	idleSkew float64 // seconds added to the reference's idle timeout
}

// Reference interprets cfg exactly and returns the predicted result. The
// config must describe a failure-free, full (non-quotient), fixed-wake
// run of a supported scheme.
func Reference(cfg sim.Config) (*Expected, error) {
	return reference(cfg, mutation{})
}

// normalize fills the engine's defaults for exactly the fields the
// interpreter reads, so a partially-specified config means the same thing
// to both sides, and rejects configurations outside the reference's
// domain.
func normalize(cfg sim.Config) (sim.Config, schemeParams, error) {
	var p schemeParams
	if cfg.Trace == nil || cfg.Topo == nil {
		return cfg, p, fmt.Errorf("oracle: missing trace or topology")
	}
	if cfg.Quotient != nil {
		return cfg, p, fmt.Errorf("oracle: the reference interprets the full scenario; collapse the engine run, not the oracle")
	}
	if !cfg.Failures.Empty() {
		return cfg, p, fmt.Errorf("oracle: failure plans are out of the reference's domain")
	}
	if cfg.RandomWake {
		return cfg, p, fmt.Errorf("oracle: RandomWake draws from a shared RNG stream; use Invariants")
	}
	if cfg.DSLAM.Cards == 0 {
		cfg.DSLAM = dsl.EvalDSLAM
	}
	nGW := cfg.Topo.NumGateways
	if cfg.DSLAM.Ports() < nGW {
		return cfg, p, fmt.Errorf("oracle: %d gateways exceed %d DSLAM ports", nGW, cfg.DSLAM.Ports())
	}
	if cfg.PortOf == nil {
		ports, err := dsl.RandomAssignment(cfg.DSLAM, nGW, cfg.Seed)
		if err != nil {
			return cfg, p, err
		}
		cfg.PortOf = ports
	}
	if cfg.K == 0 {
		cfg.K = 4
	}
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = dsl.IdleTimeoutSeconds
	}
	if cfg.WakeDelay == 0 {
		cfg.WakeDelay = dsl.WakeSeconds
	}
	if cfg.SampleEvery == 0 {
		cfg.SampleEvery = 1
	}
	var ok bool
	if p, ok = paramsFor(&cfg); !ok {
		return cfg, p, fmt.Errorf("oracle: no exact reference for scheme %v (coupled); use Invariants", cfg.Scheme)
	}
	return cfg, p, nil
}

func reference(cfg sim.Config, mut mutation) (*Expected, error) {
	cfg, p, err := normalize(cfg)
	if err != nil {
		return nil, err
	}
	tr := cfg.Trace
	nGW := cfg.Topo.NumGateways
	end := tr.Cfg.Duration

	// Route each trace record to its client's home gateway — the only
	// routing the uncoupled schemes perform. Uplink flows never enter
	// service (the evaluation simulates downlink only) and stay NaN.
	flowsOf := make([][]int, nGW)
	for i := range tr.Flows {
		if tr.Flows[i].Up {
			continue
		}
		gw := cfg.Topo.HomeOf[tr.Flows[i].Client]
		flowsOf[gw] = append(flowsOf[gw], i)
	}
	keepsOf := make([][]int, nGW)
	for i := range tr.Keepalives {
		gw := cfg.Topo.HomeOf[tr.Keepalives[i].Client]
		keepsOf[gw] = append(keepsOf[gw], i)
	}

	idle := p.idle + mut.idleSkew
	fs := make([]refFlow, len(tr.Flows))
	var ops []lineOp
	if cfg.Scheme == sim.NoSleep {
		// postInit: every line active from t=0, ascending gateway order.
		for g := 0; g < nGW; g++ {
			ops = append(ops, lineOp{t: 0, gw: g, wake: true})
		}
	}
	gws := make([]*refGateway, nGW)
	for g := 0; g < nGW; g++ {
		dev := newRefDevice(power.GatewayWatts, p.initial)
		rg := &refGateway{
			id:      g,
			cfg:     &cfg,
			ctl:     newRefCtl(dev, idle, cfg.WakeDelay),
			dev:     dev,
			modem:   newRefDevice(power.ISPModemWatts, p.initial),
			fs:      fs,
			complAt: math.Inf(1),
			inSet:   p.initial != power.Sleeping,
		}
		rg.run(flowsOf[g], keepsOf[g])
		gws[g] = rg
		ops = append(ops, rg.ops...)
	}

	exp := &Expected{
		Scheme: cfg.Scheme, Duration: end,
		FCT:           make([]float64, len(tr.Flows)),
		FlowStall:     make([]float64, len(tr.Flows)),
		GatewayOnTime: make([]float64, nGW),
	}
	for i := range fs {
		f := &fs[i]
		if f.done && !tr.Flows[i].Up {
			exp.FCT[i] = f.completed - tr.Flows[i].Start
			exp.FlowStall[i] = f.stalled
		} else {
			exp.FCT[i] = math.NaN()
			exp.FlowStall[i] = math.NaN()
		}
	}
	// Fold energies in the engine's result() order — gateways ascending,
	// then cards ascending, then the shelf — so the float sums are the
	// same addend sequences, not just algebraically equal.
	for g, rg := range gws {
		exp.GatewayOnTime[g] = rg.dev.onTimeAt(end)
		exp.UserJ += rg.dev.energyAt(end)
		exp.ISPJ += rg.modem.energyAt(end)
		exp.Wakeups += rg.dev.wakeups
	}
	cards, err := replayCards(&cfg, p.fabric, p.sleepCards, p.initial, ops)
	if err != nil {
		return nil, err
	}
	exp.CardOnTime = make([]float64, len(cards))
	for cd, c := range cards {
		exp.ISPJ += c.energyAt(end)
		exp.CardOnTime[cd] = c.onTimeAt(end)
	}
	exp.ISPJ += newRefDevice(power.ShelfWatts, power.On).energyAt(end)
	return exp, nil
}

// Diff compares a reference prediction against an engine result exactly:
// every float with == (NaN matches NaN), every count with ==. It returns
// one message per disagreeing field, capped at 20.
func Diff(want *Expected, got *sim.Result) []string {
	const maxDiffs = 20
	var out []string
	add := func(format string, args ...any) {
		if len(out) < maxDiffs {
			out = append(out, fmt.Sprintf(format, args...))
		}
	}
	if want.Duration != got.Duration {
		add("duration: want %v got %v", want.Duration, got.Duration)
	}
	if want.Wakeups != got.Wakeups {
		add("wakeups: want %d got %d", want.Wakeups, got.Wakeups)
	}
	if want.UserJ != got.Energy.UserJ {
		add("user energy: want %.17g got %.17g (delta %g)", want.UserJ, got.Energy.UserJ, got.Energy.UserJ-want.UserJ)
	}
	if want.ISPJ != got.Energy.ISPJ {
		add("ISP energy: want %.17g got %.17g (delta %g)", want.ISPJ, got.Energy.ISPJ, got.Energy.ISPJ-want.ISPJ)
	}
	diffSlice := func(name string, want, got []float64) {
		if len(want) != len(got) {
			add("%s: want %d entries got %d", name, len(want), len(got))
			return
		}
		for i := range want {
			if w, g := want[i], got[i]; w != g && !(math.IsNaN(w) && math.IsNaN(g)) {
				add("%s[%d]: want %.17g got %.17g", name, i, w, g)
			}
		}
	}
	diffSlice("gateway on-time", want.GatewayOnTime, got.GatewayOnTime)
	diffSlice("card on-time", want.CardOnTime, got.CardOnTime)
	diffSlice("FCT", want.FCT, got.FCT)
	diffSlice("flow stall", want.FlowStall, got.FlowStall)
	if len(out) == maxDiffs {
		out = append(out, "... (more diffs suppressed)")
	}
	return out
}
