// Package oracle is the analytic cross-check harness: an independent,
// deliberately naive re-statement of what each scheme *means*, confronted
// with what the event engine (internal/sim) *does*.
//
// It provides two kinds of oracle:
//
//   - An exact reference interpreter (ref.go) for the uncoupled schemes —
//     no-sleep and the SoI family — that re-simulates a small scenario one
//     gateway at a time with straight-line code: no event heap, no shards,
//     no epoch fences, no completion caches, no lazy sampling. Because a
//     modeLocal gateway's trajectory depends only on its own clients'
//     trace records and the global tick grid, and because every float
//     operation is re-stated in the engine's exact order, the reference
//     result must match sim.Run bit for bit (Diff uses ==, not
//     tolerances). The switch fabric and line cards are pure sinks, so
//     they replay afterwards from the merged per-gateway line-op streams
//     (fabric.go).
//
//   - Closed-form expectations from internal/analytic for hand-built
//     Poisson-keepalive scenarios (analytic legs, see the tests): SoI
//     sleep probability 1/(λW+e^{λT}), wakeup rate, the (1-p)^m fixed-
//     fabric card product, Eq 2 bracketing for k-switches and the exact
//     binomial expectation for the full switch (bounds.go). These hold in
//     stationarity, so the harness asserts them with documented
//     statistical tolerances, not equality.
//
// Coupled schemes (BH2*, optimal, centralized, RandomWake ablations)
// cannot be interpreted gateway-by-gateway — they share RNG streams or
// re-solve globally — so for them the harness checks structural
// invariants instead (oracle.go: energy/on-time identities, no-sleep
// ceiling, shelf floor, FCT lower bounds, cross-shard equality).
//
// # Tie-order assumptions
//
// The reference replays the engine's comparison logic exactly — heap
// events beat trace records at equal times, flows beat keepalives, trace
// admission is strict-< — on the same float values, so those comparisons
// cannot disagree. Two orderings are not recoverable from per-gateway
// state and are fixed by convention instead: (1) among same-time *heap*
// events the reference fires check, then tick, then completion, matching
// the engine's push-sequence order in every reachable case with the
// default ≥1 s timeouts; (2) same-time line ops of *different* gateways
// replay in ascending gateway id order. Both matter only on exact float
// ties between independently drawn continuous event times — measure-zero
// for generated traces, and pinned in practice by the property suite.
//
// docs/SCHEMES.md is written from this package and names the test backing
// each behavioral claim.
package oracle
