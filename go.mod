module insomnia

go 1.22
